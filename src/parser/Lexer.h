//===- parser/Lexer.h - Tokenizer for the program syntaxes -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer shared by the structured-language and CFG-syntax parsers.
/// `#` starts a comment running to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef AM_PARSER_LEXER_H
#define AM_PARSER_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace am {

/// Token kinds.  Keywords are recognized by the parsers from Ident tokens
/// so that identifiers like "out" can still be diagnosed helpfully.
enum class TokKind : uint8_t {
  Ident,
  Number,
  Assign,   // := or =
  Plus,     // +
  Minus,    // -
  Star,     // *
  Slash,    // /
  Lt,       // <
  Le,       // <=
  Gt,       // >
  Ge,       // >=
  EqEq,     // ==
  Ne,       // !=
  LParen,   // (
  RParen,   // )
  LBrace,   // {
  RBrace,   // }
  Comma,    // ,
  Semi,     // ;
  Colon,    // :
  Eof,
  Error,
};

/// One token with its source location (1-based line/column).
struct Token {
  TokKind K = TokKind::Eof;
  std::string Text;   // identifier spelling or number digits
  int64_t Value = 0;  // numeric value for Number
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Tokenizes \p Src completely.  On a lexical error the final token has
/// kind Error and Text holds the message; otherwise the list ends in Eof.
std::vector<Token> tokenize(std::string_view Src);

/// Human-readable token-kind name for diagnostics.
const char *tokKindName(TokKind K);

} // namespace am

#endif // AM_PARSER_LEXER_H
