//===- parser/Lexer.cpp - Tokenizer implementation --------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <cstdint>

using namespace am;

namespace {

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Src) : Src(Src) {}

  std::vector<Token> run() {
    std::vector<Token> Out;
    while (true) {
      skipTrivia();
      Token T = next();
      Out.push_back(T);
      if (T.K == TokKind::Eof || T.K == TokKind::Error)
        break;
    }
    return Out;
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek() const { return atEnd() ? '\0' : Src[Pos]; }
  char peek2() const { return Pos + 1 < Src.size() ? Src[Pos + 1] : '\0'; }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (C == '#') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      break;
    }
  }

  Token make(TokKind K, std::string Text = {}) {
    Token T;
    T.K = K;
    T.Text = std::move(Text);
    T.Line = TokLine;
    T.Col = TokCol;
    return T;
  }

  Token next() {
    TokLine = Line;
    TokCol = Col;
    if (atEnd())
      return make(TokKind::Eof);
    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text(1, C);
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        Text.push_back(advance());
      return make(TokKind::Ident, std::move(Text));
    }

    if (std::isdigit(static_cast<unsigned char>(C))) {
      std::string Digits(1, C);
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Digits.push_back(advance());
      // Accumulate with an explicit overflow check: std::stoll throws on
      // out-of-range input, which would escape as an uncaught exception.
      int64_t Value = 0;
      for (char D : Digits) {
        int64_t Digit = D - '0';
        if (Value > (INT64_MAX - Digit) / 10)
          return make(TokKind::Error,
                      "number literal '" + Digits + "' is too large");
        Value = Value * 10 + Digit;
      }
      Token T = make(TokKind::Number, Digits);
      T.Value = Value;
      return T;
    }

    switch (C) {
    case '+':
      return make(TokKind::Plus);
    case '-':
      return make(TokKind::Minus);
    case '*':
      return make(TokKind::Star);
    case '/':
      return make(TokKind::Slash);
    case '(':
      return make(TokKind::LParen);
    case ')':
      return make(TokKind::RParen);
    case '{':
      return make(TokKind::LBrace);
    case '}':
      return make(TokKind::RBrace);
    case ',':
      return make(TokKind::Comma);
    case ';':
      return make(TokKind::Semi);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq);
      }
      return make(TokKind::Assign);
    case ':':
      if (peek() == '=') {
        advance();
        return make(TokKind::Assign);
      }
      return make(TokKind::Colon);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokKind::Le);
      }
      return make(TokKind::Lt);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ge);
      }
      return make(TokKind::Gt);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ne);
      }
      return make(TokKind::Error, "stray '!'");
    default: {
      // Non-printable and non-ASCII bytes are rendered as hex escapes so
      // the diagnostic stays one clean line of printable text.
      unsigned char U = static_cast<unsigned char>(C);
      std::string Shown;
      if (U >= 0x20 && U < 0x7F) {
        Shown = std::string("'") + C + "'";
      } else {
        static const char Hex[] = "0123456789abcdef";
        Shown = "byte 0x";
        Shown += Hex[U >> 4];
        Shown += Hex[U & 0xF];
      }
      return make(TokKind::Error, "unexpected character " + Shown);
    }
    }
  }

  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  unsigned TokLine = 1;
  unsigned TokCol = 1;
};

} // namespace

std::vector<Token> am::tokenize(std::string_view Src) {
  return LexerImpl(Src).run();
}

const char *am::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Ident:
    return "identifier";
  case TokKind::Number:
    return "number";
  case TokKind::Assign:
    return "':='";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::Ne:
    return "'!='";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Colon:
    return "':'";
  case TokKind::Eof:
    return "end of input";
  case TokKind::Error:
    return "lexical error";
  }
  return "?";
}
