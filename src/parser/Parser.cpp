//===- parser/Parser.cpp - Program parser implementation --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"
#include "parser/Lexer.h"

#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace am;

namespace {

bool isKeyword(const std::string &S) {
  static const char *Keywords[] = {"graph",  "program", "temp",   "goto",
                                   "halt",   "br",      "if",     "then",
                                   "else",   "while",   "out",    "skip",
                                   "choose", "or",      "repeat", "until",
                                   "synthetic"};
  for (const char *K : Keywords)
    if (S == K)
      return true;
  return false;
}

/// Shared token-stream machinery for both parsers.
class ParserBase {
public:
  explicit ParserBase(std::string_view Src) : Toks(tokenize(Src)) {
    if (!Toks.empty() && Toks.back().K == TokKind::Error)
      fail(Toks.back(), Toks.back().Text);
  }

  bool failed() const { return !Error.empty(); }
  const std::string &error() const { return Error; }

protected:
  const Token &peek() const { return Toks[std::min(Pos, Toks.size() - 1)]; }

  const Token &peekAhead(size_t N) const {
    return Toks[std::min(Pos + N, Toks.size() - 1)];
  }

  const Token &advance() {
    const Token &T = peek();
    if (Pos + 1 < Toks.size())
      ++Pos;
    return T;
  }

  bool check(TokKind K) const { return peek().K == K; }

  bool checkIdent(const char *Text) const {
    return peek().K == TokKind::Ident && peek().Text == Text;
  }

  bool accept(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }

  bool acceptIdent(const char *Text) {
    if (!checkIdent(Text))
      return false;
    advance();
    return true;
  }

  bool expect(TokKind K, const char *What) {
    if (accept(K))
      return true;
    fail(peek(), std::string("expected ") + What + ", found " +
                     tokKindName(peek().K));
    return false;
  }

  bool expectIdent(const char *Text) {
    if (acceptIdent(Text))
      return true;
    fail(peek(), std::string("expected '") + Text + "', found " +
                     describe(peek()));
    return false;
  }

  std::string describe(const Token &T) const {
    if (T.K == TokKind::Ident)
      return "'" + T.Text + "'";
    return tokKindName(T.K);
  }

  void fail(const Token &At, std::string Msg) {
    if (!Error.empty())
      return;
    ErrLine = At.Line;
    ErrCol = At.Col;
    RawMsg = Msg;
    Error = "line " + std::to_string(At.Line) + ":" + std::to_string(At.Col) +
            ": " + std::move(Msg);
  }

  /// The failure as a structured diagnostic (empty if the parse is fine).
  diag::Diagnostic takeDiag() const {
    if (Error.empty())
      return diag::Diagnostic();
    return diag::Diagnostic::error("parse", RawMsg, ErrLine, ErrCol);
  }

  /// Parses an identifier that is a variable name (not a keyword).
  std::optional<std::string> parseVarName() {
    if (!check(TokKind::Ident)) {
      fail(peek(), "expected variable name, found " + describe(peek()));
      return std::nullopt;
    }
    if (isKeyword(peek().Text)) {
      fail(peek(), "keyword '" + peek().Text + "' cannot name a variable");
      return std::nullopt;
    }
    return advance().Text;
  }

  /// operand := ident | number | '-' number
  std::optional<Operand> parseOperand(FlowGraph &G) {
    if (accept(TokKind::Minus)) {
      if (!check(TokKind::Number)) {
        fail(peek(), "expected number after unary '-'");
        return std::nullopt;
      }
      return Operand::imm(-advance().Value);
    }
    if (check(TokKind::Number))
      return Operand::imm(advance().Value);
    auto Name = parseVarName();
    if (!Name)
      return std::nullopt;
    return Operand::var(G.Vars.getOrCreate(*Name));
  }

  std::optional<OpCode> acceptBinOp() {
    if (accept(TokKind::Plus))
      return OpCode::Add;
    if (accept(TokKind::Minus))
      return OpCode::Sub;
    if (accept(TokKind::Star))
      return OpCode::Mul;
    if (accept(TokKind::Slash))
      return OpCode::Div;
    return std::nullopt;
  }

  /// term := operand (binop operand)?
  std::optional<Term> parseTerm(FlowGraph &G) {
    auto A = parseOperand(G);
    if (!A)
      return std::nullopt;
    // Unary-minus lookahead conflict: `a - 5` lexes Minus Number, which
    // parseOperand would not consume here; the binop path below handles it.
    if (auto Op = acceptBinOp()) {
      auto B = parseOperand(G);
      if (!B)
        return std::nullopt;
      return Term::binary(*Op, *A, *B);
    }
    return Term::atom(*A);
  }

  std::optional<RelOp> parseRelOp() {
    if (accept(TokKind::Lt))
      return RelOp::Lt;
    if (accept(TokKind::Le))
      return RelOp::Le;
    if (accept(TokKind::Gt))
      return RelOp::Gt;
    if (accept(TokKind::Ge))
      return RelOp::Ge;
    if (accept(TokKind::EqEq))
      return RelOp::Eq;
    if (accept(TokKind::Ne))
      return RelOp::Ne;
    fail(peek(), "expected relational operator, found " + describe(peek()));
    return std::nullopt;
  }

  /// out-args := '(' (var (',' var)*)? ')'
  std::optional<std::vector<VarId>> parseOutArgs(FlowGraph &G) {
    if (!expect(TokKind::LParen, "'('"))
      return std::nullopt;
    std::vector<VarId> Vars;
    if (!check(TokKind::RParen)) {
      do {
        auto Name = parseVarName();
        if (!Name)
          return std::nullopt;
        Vars.push_back(G.Vars.getOrCreate(*Name));
      } while (accept(TokKind::Comma));
    }
    if (!expect(TokKind::RParen, "')'"))
      return std::nullopt;
    return Vars;
  }

  std::vector<Token> Toks;
  size_t Pos = 0;
  std::string Error;
  std::string RawMsg;
  unsigned ErrLine = 0;
  unsigned ErrCol = 0;
};

//===----------------------------------------------------------------------===//
// CFG syntax
//===----------------------------------------------------------------------===//

class CfgParser : ParserBase {
public:
  explicit CfgParser(std::string_view Src) : ParserBase(Src) {}

  ParseResult run() {
    ParseResult R;
    if (!failed())
      parseGraph(R.Graph);
    if (!failed())
      finalize(R.Graph);
    R.Error = Error;
    R.Diag = takeDiag();
    return R;
  }

private:
  /// Returns the id of the *defined* block \p Name, creating it on its
  /// definition.  Block ids follow definition order so print -> parse
  /// round-trips preserve the numbering; forward references are kept by
  /// name and resolved in finalize().
  BlockId defineBlock(FlowGraph &G, const std::string &Name) {
    BlockId Id = G.addBlock();
    BlockIds.emplace(Name, Id);
    return Id;
  }

  void parseGraph(FlowGraph &G) {
    if (!expectIdent("graph") || !expect(TokKind::LBrace, "'{'"))
      return;
    if (acceptIdent("temp")) {
      do {
        auto Name = parseVarName();
        if (!Name)
          return;
        TempNames.push_back(*Name);
      } while (accept(TokKind::Comma));
    }
    bool First = true;
    while (!check(TokKind::RBrace)) {
      if (check(TokKind::Eof)) {
        fail(peek(), "unterminated graph: expected '}'");
        return;
      }
      if (!parseBlock(G, First))
        return;
      First = false;
    }
    advance(); // consume '}'
  }

  /// blockdef := name ':' instr* terminator
  bool parseBlock(FlowGraph &G, bool IsFirst) {
    if (!check(TokKind::Ident) || isKeyword(peek().Text)) {
      fail(peek(), "expected block label, found " + describe(peek()));
      return false;
    }
    std::string Name = advance().Text;
    if (!expect(TokKind::Colon, "':' after block label"))
      return false;
    if (BlockIds.count(Name)) {
      fail(peek(), "block '" + Name + "' defined twice");
      return false;
    }
    BlockId B = defineBlock(G, Name);
    if (IsFirst)
      G.setStart(B);
    // Optional marker re-establishing edge-splitting provenance.
    if (acceptIdent("synthetic"))
      G.block(B).Synthetic = true;

    while (true) {
      if (acceptIdent("goto")) {
        auto Target = parseBlockRef();
        if (!Target)
          return false;
        PendingEdges.push_back({B, {*Target}});
        return true;
      }
      if (acceptIdent("halt")) {
        if (G.end() != InvalidBlock) {
          fail(peek(), "multiple 'halt' blocks; the end node must be unique");
          return false;
        }
        G.setEnd(B);
        return true;
      }
      if (acceptIdent("br")) {
        std::vector<std::string> Targets;
        // An identifier followed by ':' starts the next block's label, not
        // another branch target.
        while (check(TokKind::Ident) && !isKeyword(peek().Text) &&
               peekAhead(1).K != TokKind::Colon) {
          auto Target = parseBlockRef();
          if (!Target)
            return false;
          Targets.push_back(std::move(*Target));
        }
        if (Targets.size() < 2) {
          fail(peek(), "'br' needs at least two targets");
          return false;
        }
        PendingEdges.push_back({B, std::move(Targets)});
        return true;
      }
      if (acceptIdent("if")) {
        auto L = parseTerm(G);
        if (!L)
          return false;
        auto Rel = parseRelOp();
        if (!Rel)
          return false;
        auto Rhs = parseTerm(G);
        if (!Rhs)
          return false;
        if (!expectIdent("then"))
          return false;
        auto Then = parseBlockRef();
        if (!Then)
          return false;
        if (!expectIdent("else"))
          return false;
        auto Else = parseBlockRef();
        if (!Else)
          return false;
        G.block(B).Instrs.push_back(Instr::branch(*L, *Rel, *Rhs));
        PendingEdges.push_back({B, {*Then, *Else}});
        return true;
      }
      if (acceptIdent("skip")) {
        G.block(B).Instrs.push_back(Instr::skip());
        continue;
      }
      if (acceptIdent("out")) {
        auto Args = parseOutArgs(G);
        if (!Args)
          return false;
        G.block(B).Instrs.push_back(Instr::out(std::move(*Args)));
        continue;
      }
      // Assignment: var ':=' term.
      auto Name2 = parseVarName();
      if (!Name2) {
        fail(peek(), "expected instruction or terminator");
        return false;
      }
      if (!expect(TokKind::Assign, "':='"))
        return false;
      auto Rhs = parseTerm(G);
      if (!Rhs)
        return false;
      G.block(B).Instrs.push_back(
          Instr::assign(G.Vars.getOrCreate(*Name2), *Rhs));
    }
  }

  std::optional<std::string> parseBlockRef() {
    if (!check(TokKind::Ident) || isKeyword(peek().Text)) {
      fail(peek(), "expected block name, found " + describe(peek()));
      return std::nullopt;
    }
    return advance().Text;
  }

  void finalize(FlowGraph &G) {
    for (const auto &[From, Targets] : PendingEdges) {
      for (const std::string &Target : Targets) {
        auto It = BlockIds.find(Target);
        if (It == BlockIds.end()) {
          fail(peek(), "block '" + Target + "' referenced but never defined");
          return;
        }
        G.addEdge(From, It->second);
      }
    }
    if (G.end() == InvalidBlock) {
      fail(peek(), "no 'halt' block: the graph needs a unique end node");
      return;
    }
    // Restore temp-ness for declared temporaries, inferring the associated
    // expression pattern from the first initialization `h := <expr>`.
    for (const std::string &Name : TempNames) {
      VarId V = G.Vars.lookup(Name);
      if (!isValid(V)) {
        fail(peek(), "declared temp '" + Name + "' never occurs");
        return;
      }
      ExprId E = ExprId::Invalid;
      for (BlockId B = 0; B < G.numBlocks() && !isValid(E); ++B)
        for (const Instr &I : G.block(B).Instrs)
          if (I.isAssign() && I.Lhs == V && I.Rhs.isNonTrivial()) {
            E = G.Exprs.intern(I.Rhs);
            break;
          }
      G.Vars.markTemp(V, E);
      if (isValid(E) && !isValid(G.Exprs.temporaryIfPresent(E)))
        G.Exprs.setTemporary(E, V);
    }
    for (const std::string &Problem : G.validate()) {
      fail(peek(), "invalid graph: " + Problem);
      return;
    }
  }

  std::unordered_map<std::string, BlockId> BlockIds;
  std::vector<std::pair<BlockId, std::vector<std::string>>> PendingEdges;
  std::vector<std::string> TempNames;
};

//===----------------------------------------------------------------------===//
// Structured language
//===----------------------------------------------------------------------===//

class StructuredParser : ParserBase {
public:
  explicit StructuredParser(std::string_view Src) : ParserBase(Src) {}

private:
  /// Fresh decomposition variable (the `t` of the paper's Section 6
  /// 3-address decomposition).  Ordinary variables — subject to motion
  /// like any other assignment, which is exactly the Figure 18 story.
  VarId freshDecompVar(FlowGraph &G) {
    std::string Name;
    do {
      Name = "t$" + std::to_string(NumDecompVars++);
    } while (isValid(G.Vars.lookup(Name)));
    return G.Vars.getOrCreate(Name);
  }

  /// Recursion ceiling for nested expressions and statement blocks: deep
  /// enough for any sane program, shallow enough that adversarial nesting
  /// (ten thousand '('s) fails with a diagnostic instead of exhausting the
  /// stack.
  static constexpr unsigned MaxNesting = 256;
  unsigned Depth = 0;

  struct DepthGuard {
    unsigned &D;
    explicit DepthGuard(unsigned &D) : D(D) { ++D; }
    ~DepthGuard() { --D; }
  };

  /// Emits `Dst := T` into \p Cur and returns Dst as an operand.
  Operand spill(FlowGraph &G, BlockId Cur, const Term &T) {
    VarId Dst = freshDecompVar(G);
    G.block(Cur).Instrs.push_back(Instr::assign(Dst, T));
    return Operand::var(Dst);
  }

  /// atom := operand | '(' expr ')'.  Nested expressions are decomposed
  /// into fresh assignments appended to \p Cur.
  std::optional<Operand> parseAtom(FlowGraph &G, BlockId Cur) {
    if (accept(TokKind::LParen)) {
      DepthGuard Guard(Depth);
      if (Depth > MaxNesting) {
        fail(peek(), "expression nesting too deep (limit " +
                         std::to_string(MaxNesting) + ")");
        return std::nullopt;
      }
      auto T = parseExpr(G, Cur);
      if (!T || !expect(TokKind::RParen, "')'"))
        return std::nullopt;
      if (!T->isNonTrivial())
        return T->A;
      return spill(G, Cur, *T);
    }
    return parseOperand(G);
  }

  /// mulexpr := atom (('*' | '/') atom)*
  std::optional<Term> parseMulExpr(FlowGraph &G, BlockId Cur) {
    auto Lhs = parseAtom(G, Cur);
    if (!Lhs)
      return std::nullopt;
    Term Result = Term::atom(*Lhs);
    while (check(TokKind::Star) || check(TokKind::Slash)) {
      OpCode Op = accept(TokKind::Star) ? OpCode::Mul
                                        : (advance(), OpCode::Div);
      auto Rhs = parseAtom(G, Cur);
      if (!Rhs)
        return std::nullopt;
      Operand A = Result.isNonTrivial() ? spill(G, Cur, Result) : Result.A;
      Result = Term::binary(Op, A, *Rhs);
    }
    return Result;
  }

  /// expr := mulexpr (('+' | '-') mulexpr)*  — left-associative, three-
  /// address decomposed on the fly (`a + b + c` emits `t$0 := a + b` and
  /// yields `t$0 + c`, the paper's Figure 18(b) shape).
  std::optional<Term> parseExpr(FlowGraph &G, BlockId Cur) {
    auto Lhs = parseMulExpr(G, Cur);
    if (!Lhs)
      return std::nullopt;
    Term Result = *Lhs;
    while (check(TokKind::Plus) || check(TokKind::Minus)) {
      OpCode Op = accept(TokKind::Plus) ? OpCode::Add
                                        : (advance(), OpCode::Sub);
      auto RhsTerm = parseMulExpr(G, Cur);
      if (!RhsTerm)
        return std::nullopt;
      Operand A = Result.isNonTrivial() ? spill(G, Cur, Result) : Result.A;
      Operand B = RhsTerm->isNonTrivial() ? spill(G, Cur, *RhsTerm)
                                          : RhsTerm->A;
      Result = Term::binary(Op, A, B);
    }
    return Result;
  }

  unsigned NumDecompVars = 0;

public:

  ParseResult run() {
    ParseResult R;
    FlowGraph &G = R.Graph;
    if (!failed()) {
      if (expectIdent("program") && expect(TokKind::LBrace, "'{'")) {
        BlockId Start = G.addBlock();
        G.setStart(Start);
        BlockId Tail = parseStmtList(G, Start, TokKind::RBrace);
        if (!failed()) {
          expect(TokKind::RBrace, "'}'");
          G.setEnd(Tail);
        }
      }
    }
    if (!failed())
      for (const std::string &Problem : G.validate()) {
        fail(peek(), "invalid graph: " + Problem);
        break;
      }
    R.Error = Error;
    R.Diag = takeDiag();
    return R;
  }

private:
  /// Parses statements, appending to \p Cur, until \p Stop; returns the
  /// block control flow falls out of.
  BlockId parseStmtList(FlowGraph &G, BlockId Cur, TokKind Stop) {
    while (!check(Stop)) {
      if (check(TokKind::Eof)) {
        fail(peek(), "unexpected end of input in statement list");
        return Cur;
      }
      Cur = parseStmt(G, Cur);
      if (failed())
        return Cur;
    }
    return Cur;
  }

  BlockId parseStmt(FlowGraph &G, BlockId Cur) {
    DepthGuard Guard(Depth);
    if (Depth > MaxNesting) {
      fail(peek(), "statement nesting too deep (limit " +
                       std::to_string(MaxNesting) + ")");
      return Cur;
    }
    if (acceptIdent("skip")) {
      expect(TokKind::Semi, "';'");
      G.block(Cur).Instrs.push_back(Instr::skip());
      return Cur;
    }
    if (acceptIdent("out")) {
      auto Args = parseOutArgs(G);
      if (!Args)
        return Cur;
      expect(TokKind::Semi, "';'");
      G.block(Cur).Instrs.push_back(Instr::out(std::move(*Args)));
      return Cur;
    }
    if (acceptIdent("if"))
      return parseIf(G, Cur);
    if (acceptIdent("while"))
      return parseWhile(G, Cur);
    if (acceptIdent("repeat"))
      return parseRepeat(G, Cur);
    if (acceptIdent("choose"))
      return parseChoose(G, Cur);

    // Assignment; nested right-hand sides are decomposed into 3-address
    // form on the fly.
    auto Name = parseVarName();
    if (!Name)
      return Cur;
    if (!expect(TokKind::Assign, "':='"))
      return Cur;
    auto Rhs = parseExpr(G, Cur);
    if (!Rhs)
      return Cur;
    expect(TokKind::Semi, "';'");
    G.block(Cur).Instrs.push_back(
        Instr::assign(G.Vars.getOrCreate(*Name), *Rhs));
    return Cur;
  }

  /// cond := '(' expr relop expr ')', appended to \p Cur as a branch.
  bool parseCondInto(FlowGraph &G, BlockId Cur) {
    if (!expect(TokKind::LParen, "'('"))
      return false;
    auto L = parseExpr(G, Cur);
    if (!L)
      return false;
    auto Rel = parseRelOp();
    if (!Rel)
      return false;
    auto R = parseExpr(G, Cur);
    if (!R)
      return false;
    if (!expect(TokKind::RParen, "')'"))
      return false;
    G.block(Cur).Instrs.push_back(Instr::branch(*L, *Rel, *R));
    return true;
  }

  /// Parses '{' stmt* '}' into a fresh block; returns (entry, fallout).
  std::optional<std::pair<BlockId, BlockId>> parseBracedBody(FlowGraph &G) {
    if (!expect(TokKind::LBrace, "'{'"))
      return std::nullopt;
    BlockId Entry = G.addBlock();
    BlockId Tail = parseStmtList(G, Entry, TokKind::RBrace);
    if (failed())
      return std::nullopt;
    expect(TokKind::RBrace, "'}'");
    return std::make_pair(Entry, Tail);
  }

  BlockId parseIf(FlowGraph &G, BlockId Cur) {
    if (!parseCondInto(G, Cur))
      return Cur;
    auto Then = parseBracedBody(G);
    if (!Then)
      return Cur;
    BlockId Join = G.addBlock();
    G.addEdge(Cur, Then->first);
    G.addEdge(Then->second, Join);
    if (acceptIdent("else")) {
      auto Else = parseBracedBody(G);
      if (!Else)
        return Cur;
      G.addEdge(Cur, Else->first);
      G.addEdge(Else->second, Join);
    } else {
      // No else: the false edge is Cur -> Join, which is critical whenever
      // Join has another predecessor; transformations split it later.
      G.addEdge(Cur, Join);
    }
    return Join;
  }

  BlockId parseWhile(FlowGraph &G, BlockId Cur) {
    BlockId Header = G.addBlock();
    G.addEdge(Cur, Header);
    if (!parseCondInto(G, Header))
      return Cur;
    auto Body = parseBracedBody(G);
    if (!Body)
      return Cur;
    BlockId Exit = G.addBlock();
    G.addEdge(Header, Body->first);
    G.addEdge(Header, Exit);
    G.addEdge(Body->second, Header);
    return Exit;
  }

  /// repeat { body } until (cond);  — the body runs at least once, which
  /// makes loop-invariant motion out of the body admissible (down-safe).
  BlockId parseRepeat(FlowGraph &G, BlockId Cur) {
    auto Body = parseBracedBody(G);
    if (!Body)
      return Cur;
    G.addEdge(Cur, Body->first);
    if (!expectIdent("until"))
      return Cur;
    if (!parseCondInto(G, Body->second))
      return Cur;
    expect(TokKind::Semi, "';'");
    BlockId Exit = G.addBlock();
    G.addEdge(Body->second, Exit);        // condition true: leave the loop
    G.addEdge(Body->second, Body->first); // condition false: iterate again
    return Exit;
  }

  BlockId parseChoose(FlowGraph &G, BlockId Cur) {
    BlockId Join = G.addBlock();
    unsigned NumAlts = 0;
    do {
      auto Alt = parseBracedBody(G);
      if (!Alt)
        return Cur;
      G.addEdge(Cur, Alt->first);
      G.addEdge(Alt->second, Join);
      ++NumAlts;
    } while (acceptIdent("or"));
    if (NumAlts < 2)
      fail(peek(), "'choose' needs at least two alternatives ('or { ... }')");
    return Join;
  }
};

} // namespace

ParseResult am::parseCfg(std::string_view Src) { return CfgParser(Src).run(); }

ParseResult am::parseStructured(std::string_view Src) {
  return StructuredParser(Src).run();
}

ParseResult am::parseProgram(std::string_view Src) {
  std::vector<Token> Toks = tokenize(Src);
  if (!Toks.empty() && Toks.front().K == TokKind::Ident &&
      Toks.front().Text == "program")
    return parseStructured(Src);
  return parseCfg(Src);
}
