//===- parser/Parser.h - Program parsers -----------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two front-ends producing FlowGraphs:
///
///  * the *CFG syntax* (`graph { ... }`), a direct textual form of basic
///    blocks and edges that can express arbitrary — including irreducible —
///    control flow and round-trips with printGraph();
///  * the *structured language* (`program { ... }`) with assignments,
///    `if`/`else`, `while`, `repeat`/`until`, nondeterministic
///    `choose`/`or`, `out` and `skip`, lowered to a reducible FlowGraph.
///
/// Both front-ends validate the resulting graph (unique start/end, every
/// node on a start-to-end path) and report violations as parse errors.
///
//===----------------------------------------------------------------------===//

#ifndef AM_PARSER_PARSER_H
#define AM_PARSER_PARSER_H

#include "ir/FlowGraph.h"
#include "support/Diag.h"

#include <string>
#include <string_view>

namespace am {

/// Outcome of a parse: a graph on success, a located message on failure.
struct ParseResult {
  FlowGraph Graph;
  std::string Error;
  /// Structured form of Error: component "parse" with the 1-based line
  /// and column of the offending token.
  diag::Diagnostic Diag;

  bool ok() const { return Error.empty(); }
};

/// Parses the CFG syntax, e.g.:
///
///   graph {
///   temp h1
///   b0:
///     x := a + b
///     goto b1
///   b1:
///     if x > 0 then b2 else b3
///   b2:
///     out(x)
///     br b1 b3        # nondeterministic branch
///   b3:
///     halt
///   }
///
/// The first block is the start node; the unique block ending in `halt` is
/// the end node.  `temp` declares compiler temporaries so re-parsed
/// optimized programs keep their temp/expression association.
ParseResult parseCfg(std::string_view Src);

/// Parses the structured language, e.g.:
///
///   program {
///     x := (a + b) * c + d;     # decomposed into 3-address form
///     while (i < n) { i := i + 1; out(i); }
///     repeat { s := s + i; i := i - 1; } until (i <= 0);
///     if (x > 0) { y := x + 1; } else { y := 2; }
///     choose { z := 1; } or { z := 2; }
///     out(x, y, z);
///   }
///
/// Right-hand sides and condition operands may be arbitrarily nested
/// (+ - * /, parentheses, standard precedence); the parser decomposes
/// them into fresh `t$N` assignments per the paper's Section 6, so the
/// motion passes see plain 3-address code.
ParseResult parseStructured(std::string_view Src);

/// Dispatches on the leading keyword (`graph` or `program`).
ParseResult parseProgram(std::string_view Src);

} // namespace am

#endif // AM_PARSER_PARSER_H
