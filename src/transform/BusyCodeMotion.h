//===- transform/BusyCodeMotion.h - BCM baseline ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Busy code motion — the *earliest*-placement variant of expression
/// motion from the paper's refs [15, 16].  Computationally equivalent to
/// lazy code motion (same number of expression evaluations on every
/// path), but it moves initializations as early as safely possible, which
/// maximizes temporary lifetimes.  It exists here as the classic contrast
/// to LCM: the lifetime metrics of analysis/Lifetime.h quantify exactly
/// what laziness buys.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_BUSYCODEMOTION_H
#define AM_TRANSFORM_BUSYCODEMOTION_H

#include "ir/FlowGraph.h"

namespace am {

/// Runs busy code motion on a copy of \p G (critical edges are split
/// internally) and returns the transformed program.
FlowGraph runBusyCodeMotion(const FlowGraph &G);

} // namespace am

#endif // AM_TRANSFORM_BUSYCODEMOTION_H
