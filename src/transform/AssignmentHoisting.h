//===- transform/AssignmentHoisting.h - aht procedure ----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aht procedure (Section 4.3.2): moves assignments as far as possible
/// against the control flow to their earliest safe program points.  The
/// insertion step processes every basic block, inserting instances of
/// every pattern whose N-INSERT (entry) or X-INSERT (exit) predicate holds
/// and simultaneously removing all hoisting candidates.
///
/// Exit insertions at a block whose branch condition blocks the pattern
/// are realized at the entries of its successors — equivalent placement,
/// since after critical-edge splitting every successor of a multi-successor
/// block has exactly one predecessor.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_ASSIGNMENTHOISTING_H
#define AM_TRANSFORM_ASSIGNMENTHOISTING_H

#include "ir/FlowGraph.h"
#include "support/BitVector.h"

#include <functional>

namespace am {

class AmContext;

/// Filters the patterns a hoisting pass may move; used by the restricted
/// (Dhamdhere-style) baseline.  Receives the pattern index universe size;
/// returns a mask of allowed patterns.
using HoistFilter = std::function<BitVector(const class AssignPatternTable &)>;

/// One aht pass over \p G.  The graph must have no critical edges.
/// Returns true if the program changed.  If \p Filter is provided, only
/// patterns in the returned mask are hoisted.
bool runAssignmentHoisting(FlowGraph &G, const HoistFilter &Filter = nullptr);

/// As above, against the shared state of an AM fixpoint: the context's
/// pattern table, hoistability solver and block-local predicate cache are
/// reused across rounds.
bool runAssignmentHoisting(FlowGraph &G, AmContext &Ctx,
                           const HoistFilter &Filter = nullptr);

} // namespace am

#endif // AM_TRANSFORM_ASSIGNMENTHOISTING_H
