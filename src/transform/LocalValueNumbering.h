//===- transform/LocalValueNumbering.h - Local CSE --------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local value numbering: within one basic block, a recomputation of a
/// syntactically identical right-hand side whose operands are unchanged
/// is rewritten into a copy from the earlier result.  The classic
/// companion of PRE (the paper's ref [2], Briggs/Cooper "Effective
/// partial redundancy elimination" pairs exactly this kind of local
/// canonicalization with expression motion); EM formulations generally
/// assume blocks are locally clean.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_LOCALVALUENUMBERING_H
#define AM_TRANSFORM_LOCALVALUENUMBERING_H

#include "ir/FlowGraph.h"

namespace am {

/// Runs local value numbering in place.  Returns the number of rewritten
/// computations.  Only assignment right-hand sides are rewritten (branch
/// operands stay put — they have no destination to copy from).
unsigned runLocalValueNumbering(FlowGraph &G);

} // namespace am

#endif // AM_TRANSFORM_LOCALVALUENUMBERING_H
