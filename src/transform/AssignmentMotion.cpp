//===- transform/AssignmentMotion.cpp - AM phase driver ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/AssignmentMotion.h"
#include "transform/AssignmentHoisting.h"
#include "transform/RedundantAssignElim.h"

using namespace am;

AmPhaseStats am::runAssignmentMotionPhase(FlowGraph &G,
                                          unsigned MaxIterations) {
  AmPhaseStats Stats;
  // The phase provably terminates (Section 4.5); the hard cap below is a
  // defensive backstop far above the quadratic worst case.
  unsigned Cap = MaxIterations
                     ? MaxIterations
                     : static_cast<unsigned>(G.numInstrs() * G.numInstrs() +
                                             G.numBlocks() + 16);
  while (Stats.Iterations < Cap) {
    ++Stats.Iterations;
    unsigned Eliminated = runRedundantAssignmentElimination(G);
    Stats.Eliminated += Eliminated;
    bool Hoisted = runAssignmentHoisting(G);
    if (Hoisted)
      ++Stats.HoistRounds;
    if (Eliminated == 0 && !Hoisted)
      break;
  }
  return Stats;
}
