//===- transform/AssignmentMotion.cpp - AM phase driver ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/AssignmentMotion.h"
#include "report/Recorder.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "transform/AssignmentHoisting.h"
#include "transform/RedundantAssignElim.h"

#include <cstdint>
#include <limits>

using namespace am;

AmPhaseStats am::runAssignmentMotionPhase(FlowGraph &G, AmContext &Ctx,
                                          unsigned MaxIterations) {
  AmPhaseStats Stats;
  AM_STAT_COUNTER(NumFixpoints, "am.fixpoints");
  AM_STAT_COUNTER(NumRounds, "am.rounds");
  AM_STAT_COUNTER(NumEliminated, "am.eliminated");
  AM_STAT_COUNTER(NumHoistRounds, "am.hoist_rounds");
  AM_STAT_TIMER(FixpointTimer, "am.fixpoint_ns");
  AM_STAT_INC(NumFixpoints);
  AM_STAT_TIME_SCOPE(FixpointTimer);
  AM_PROF_SCOPE("am.fixpoint");
  trace::TraceSpan Span("am.fixpoint");

  // The phase provably terminates (Section 4.5); the hard cap below is a
  // defensive backstop far above the quadratic worst case.  Computed in
  // 64 bits and clamped: on large programs numInstrs² overflows unsigned,
  // which could wrap the cap down to a value the phase actually reaches.
  unsigned Cap = MaxIterations;
  if (Cap == 0) {
    uint64_t Instrs = G.numInstrs();
    uint64_t Wide = Instrs * Instrs + G.numBlocks() + 16;
    Cap = Wide > std::numeric_limits<unsigned>::max()
              ? std::numeric_limits<unsigned>::max()
              : static_cast<unsigned>(Wide);
  }
  report::RecorderSession *Rec = report::RecorderSession::current();
  while (Stats.Iterations < Cap) {
    ++Stats.Iterations;
    AM_STAT_INC(NumRounds);
    AM_REMARK_SET_ROUND(Stats.Iterations);
    if (Rec)
      Rec->setRound(Stats.Iterations);
    unsigned Eliminated = runRedundantAssignmentElimination(G, Ctx);
    Stats.Eliminated += Eliminated;
    AM_STAT_ADD(NumEliminated, Eliminated);
    if (Rec)
      Rec->snapshot(G, "rae", Stats.Iterations);
    bool Hoisted = runAssignmentHoisting(G, Ctx);
    if (Hoisted) {
      ++Stats.HoistRounds;
      AM_STAT_INC(NumHoistRounds);
    }
    if (Rec)
      Rec->snapshot(G, "aht", Stats.Iterations);
    trace::instant("am.round", {{"round", Stats.Iterations},
                                {"eliminated", Eliminated},
                                {"hoisted", Hoisted ? 1 : 0}});
    if (Eliminated == 0 && !Hoisted)
      break;
  }
  AM_REMARK_SET_ROUND(0);
  if (Rec)
    Rec->setRound(0);
  Span.arg("rounds", Stats.Iterations);
  Span.arg("eliminated", Stats.Eliminated);
  Span.arg("hoist_rounds", Stats.HoistRounds);
  return Stats;
}

AmPhaseStats am::runAssignmentMotionPhase(FlowGraph &G,
                                          unsigned MaxIterations) {
  AmContext Ctx;
  return runAssignmentMotionPhase(G, Ctx, MaxIterations);
}
