//===- transform/AssignmentMotion.cpp - AM phase driver ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/AssignmentMotion.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "transform/AssignmentHoisting.h"
#include "transform/RedundantAssignElim.h"

using namespace am;

AmPhaseStats am::runAssignmentMotionPhase(FlowGraph &G,
                                          unsigned MaxIterations) {
  AmPhaseStats Stats;
  AM_STAT_COUNTER(NumFixpoints, "am.fixpoints");
  AM_STAT_COUNTER(NumRounds, "am.rounds");
  AM_STAT_COUNTER(NumEliminated, "am.eliminated");
  AM_STAT_COUNTER(NumHoistRounds, "am.hoist_rounds");
  AM_STAT_TIMER(FixpointTimer, "am.fixpoint_ns");
  AM_STAT_INC(NumFixpoints);
  AM_STAT_TIME_SCOPE(FixpointTimer);
  trace::TraceSpan Span("am.fixpoint");

  // The phase provably terminates (Section 4.5); the hard cap below is a
  // defensive backstop far above the quadratic worst case.
  unsigned Cap = MaxIterations
                     ? MaxIterations
                     : static_cast<unsigned>(G.numInstrs() * G.numInstrs() +
                                             G.numBlocks() + 16);
  while (Stats.Iterations < Cap) {
    ++Stats.Iterations;
    AM_STAT_INC(NumRounds);
    unsigned Eliminated = runRedundantAssignmentElimination(G);
    Stats.Eliminated += Eliminated;
    AM_STAT_ADD(NumEliminated, Eliminated);
    bool Hoisted = runAssignmentHoisting(G);
    if (Hoisted) {
      ++Stats.HoistRounds;
      AM_STAT_INC(NumHoistRounds);
    }
    trace::instant("am.round", {{"round", Stats.Iterations},
                                {"eliminated", Eliminated},
                                {"hoisted", Hoisted ? 1 : 0}});
    if (Eliminated == 0 && !Hoisted)
      break;
  }
  Span.arg("rounds", Stats.Iterations);
  Span.arg("eliminated", Stats.Eliminated);
  Span.arg("hoist_rounds", Stats.HoistRounds);
  return Stats;
}
