//===- transform/Normalize.h - Skip and self-assign cleanup ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-place normalizations used between phases: `x := x` is identified
/// with `skip` (Section 2), and skips carry no information, so both are
/// removed.  Unlike simplified(), this never changes the block structure,
/// so analyses and block ids stay aligned.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_NORMALIZE_H
#define AM_TRANSFORM_NORMALIZE_H

#include "ir/FlowGraph.h"

namespace am {

/// Deletes all `skip` instructions and all `x := x` self-assignments.
/// Returns the number of instructions removed.
unsigned removeSkips(FlowGraph &G);

} // namespace am

#endif // AM_TRANSFORM_NORMALIZE_H
