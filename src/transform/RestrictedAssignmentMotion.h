//===- transform/RestrictedAssignmentMotion.h - Dhamdhere AM ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The restricted assignment-motion baseline modelled on Dhamdhere's
/// practical adaptation (the paper's ref [6], discussed in Section 1.4):
/// an assignment pattern is hoisted only when the hoisting is *immediately
/// profitable*, i.e. it enables the elimination of a partially redundant
/// occurrence of the same pattern.  Unprofitable enabling hoistings — the
/// ones that merely unblock *other* assignments — are not performed, which
/// is exactly why this baseline misses the paper's Figure 8/9 optimization
/// while the unrestricted algorithm finds it.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_RESTRICTEDASSIGNMENTMOTION_H
#define AM_TRANSFORM_RESTRICTEDASSIGNMENTMOTION_H

#include "ir/FlowGraph.h"

namespace am {

/// Statistics of a restricted-AM run.
struct RestrictedAmStats {
  unsigned ProfitableHoistings = 0;
  unsigned Eliminated = 0;
};

/// Runs restricted assignment motion on a copy of \p G.
FlowGraph runRestrictedAssignmentMotion(const FlowGraph &G,
                                        RestrictedAmStats *Stats = nullptr);

} // namespace am

#endif // AM_TRANSFORM_RESTRICTEDASSIGNMENTMOTION_H
