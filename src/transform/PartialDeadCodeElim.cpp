//===- transform/PartialDeadCodeElim.cpp - PDE implementation --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/PartialDeadCodeElim.h"
#include "analysis/Liveness.h"
#include "dfa/Dataflow.h"
#include "ir/Patterns.h"

using namespace am;

namespace {

/// Sinking delayability: a pattern occurrence can be delayed (sunk) past
/// an instruction unless the instruction blocks it — uses or modifies the
/// left-hand side, or modifies an operand (the blocking relation is the
/// same in both motion directions).  Forward, all-path, greatest fixpoint:
/// X-DELAY = OCCURRENCE + N-DELAY · ¬BLOCKED.
class SinkDelayProblem : public DataflowProblem {
public:
  explicit SinkDelayProblem(const AssignPatternTable &Pats) : Pats(Pats) {}

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return Pats.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = Pats.makeVector();
    size_t Idx = Pats.occurrence(I);
    if (Idx != AssignPatternTable::npos)
      Out.set(Idx);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Pats.blockedBy(I, Out);
  }

private:
  const AssignPatternTable &Pats;
};

} // namespace

bool am::runAssignmentSinking(FlowGraph &G) {
  assert(!G.hasCriticalEdges() &&
         "assignment sinking requires split critical edges");
  AssignPatternTable Pats;
  Pats.build(G);
  if (Pats.size() == 0)
    return false;
  SinkDelayProblem Problem(Pats);
  DataflowResult Delay = solve(G, Problem);
  LivenessAnalysis Live = LivenessAnalysis::run(G);

  // Phase 1: record decisions against the frozen graph.
  struct BlockDecision {
    std::vector<BitVector> InsertBefore; // per instruction
    BitVector InsertAtExit;
    std::vector<bool> RemoveInstr;
  };
  std::vector<BlockDecision> Decisions(G.numBlocks());
  BitVector Blocked = Pats.makeVector();

  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    const auto &Instrs = G.block(B).Instrs;
    BlockDecision &D = Decisions[B];
    D.InsertBefore.resize(Instrs.size());
    D.RemoveInstr.assign(Instrs.size(), false);
    DataflowResult::InstrFacts DelayFacts = Delay.instrFacts(B);
    DataflowResult::InstrFacts LiveFacts = Live.facts(B);

    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      // Every occurrence is deleted; the latest points re-materialize the
      // ones that are still needed.
      if (Pats.occurrence(Instrs[Idx]) != AssignPatternTable::npos)
        D.RemoveInstr[Idx] = true;
      // N-LATEST = N-DELAY* · BLOCKED, guarded by liveness of the
      // left-hand side immediately before the blocking instruction.
      Pats.blockedBy(Instrs[Idx], Blocked);
      BitVector Latest = DelayFacts.Before[Idx];
      Latest &= Blocked;
      D.InsertBefore[Idx] = Pats.makeVector();
      for (size_t Pat : Latest.setBits())
        if (LiveFacts.Before[Idx].test(index(Pats.pattern(Pat).Lhs)))
          D.InsertBefore[Idx].set(Pat);
    }

    // X-LATEST = X-DELAY* · ∃succ ¬N-DELAY*, guarded by liveness at exit.
    BitVector AtExit = Delay.exit(B);
    BitVector AnySuccStops(Pats.size());
    for (BlockId S : G.block(B).Succs) {
      BitVector NotDelay = Delay.entry(S);
      NotDelay.flipAll();
      AnySuccStops |= NotDelay;
    }
    AtExit &= AnySuccStops;
    D.InsertAtExit = Pats.makeVector();
    for (size_t Pat : AtExit.setBits())
      if (Live.liveOut(B).test(index(Pats.pattern(Pat).Lhs)))
        D.InsertAtExit.set(Pat);
  }

  // Phase 2: rebuild.  Exit insertions at multi-successor blocks cannot
  // occur (each successor has a unique predecessor after edge splitting,
  // so delayability never stops at such an exit).
  bool Changed = false;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BasicBlock &BB = G.block(B);
    const BlockDecision &D = Decisions[B];
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size());
    auto Emit = [&](size_t Pat) {
      NewInstrs.push_back(
          Instr::assign(Pats.pattern(Pat).Lhs, Pats.pattern(Pat).Rhs));
    };
    for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
      for (size_t Pat : D.InsertBefore[Idx].setBits())
        Emit(Pat);
      if (!D.RemoveInstr[Idx])
        NewInstrs.push_back(BB.Instrs[Idx]);
    }
    assert((D.InsertAtExit.none() || !BB.branchInstr()) &&
           "exit insertion at a branching block");
    for (size_t Pat : D.InsertAtExit.setBits())
      Emit(Pat);
    if (NewInstrs != BB.Instrs) {
      BB.Instrs = std::move(NewInstrs);
      G.touchBlock(B);
      Changed = true;
    }
  }
  return Changed;
}

PdeStats am::runPartialDeadCodeElim(FlowGraph &G, unsigned MaxRounds) {
  PdeStats Stats;
  int Before = static_cast<int>(G.numInstrs());
  unsigned Cap = MaxRounds ? MaxRounds
                           : static_cast<unsigned>(G.numInstrs() +
                                                   G.numBlocks() + 16);
  while (Stats.Rounds < Cap) {
    ++Stats.Rounds;
    if (!runAssignmentSinking(G))
      break;
  }
  Stats.Removed = Before - static_cast<int>(G.numInstrs());
  return Stats;
}
