//===- transform/UniformEmAm.cpp - Global algorithm driver -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/UniformEmAm.h"
#include "report/Recorder.h"
#include "support/Profiler.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/Normalize.h"

using namespace am;

FlowGraph am::runUniformEmAm(const FlowGraph &G, const UniformOptions &Options,
                             UniformStats *Stats) {
  AM_PROF_SCOPE("uniform");
  UniformStats Local;
  UniformStats &S = Stats ? *Stats : Local;
  report::RecorderSession *Rec = report::RecorderSession::current();

  FlowGraph Work = G;
  removeSkips(Work);
  if (Options.SplitCriticalEdges) {
    AM_PROF_SCOPE("split");
    S.EdgesSplit = Work.splitCriticalEdges();
  }
  if (Rec)
    Rec->snapshot(Work, "split");

  // The motion passes are only admissible on graphs without critical
  // edges (Section 2.1); if splitting was suppressed and the graph has
  // some, return the (normalized) input unchanged.
  if (Work.hasCriticalEdges())
    return Options.SimplifyResult ? simplified(Work) : Work;

  if (Options.RunInitialization)
    S.Decompositions = runInitializationPhase(Work);
  if (Rec)
    Rec->snapshot(Work, "init");

  if (Options.Context) {
    // The shared context was last bound to some other graph (a previous
    // request, an earlier pass); detach it before binding to Work.
    Options.Context->reset();
    S.AmPhase =
        runAssignmentMotionPhase(Work, *Options.Context,
                                 Options.MaxAmIterations);
  } else {
    S.AmPhase = runAssignmentMotionPhase(Work, Options.MaxAmIterations);
  }

  if (Options.RunFinalFlush)
    S.FlushChanged = runFinalFlush(Work);
  if (Rec)
    Rec->snapshot(Work, "flush");

  return Options.SimplifyResult ? simplified(Work) : Work;
}

FlowGraph am::runAssignmentMotionOnly(const FlowGraph &G,
                                      UniformStats *Stats) {
  UniformOptions Options;
  Options.RunInitialization = false;
  Options.RunFinalFlush = false;
  return runUniformEmAm(G, Options, Stats);
}
