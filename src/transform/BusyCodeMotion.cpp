//===- transform/BusyCodeMotion.cpp - BCM implementation -------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/BusyCodeMotion.h"
#include "analysis/LcmAnalyses.h"
#include "transform/Normalize.h"

using namespace am;

FlowGraph am::runBusyCodeMotion(const FlowGraph &G) {
  FlowGraph Work = G;
  removeSkips(Work);
  Work.splitCriticalEdges();

  ExprPatternTable Exprs;
  Exprs.build(Work);
  if (Exprs.size() == 0)
    return simplified(Work);

  LcmAnalysis Lcm = LcmAnalysis::run(Work, Exprs);
  size_t Bits = Exprs.size();

  // Local COMP ("computed and still available at the block's exit").
  std::vector<BitVector> Comp(Work.numBlocks(), BitVector(Bits));
  {
    BitVector Computed(Bits), Killed(Bits);
    for (BlockId B = 0; B < Work.numBlocks(); ++B) {
      BitVector KilledAfter(Bits);
      const auto &Instrs = Work.block(B).Instrs;
      for (size_t Idx = Instrs.size(); Idx-- > 0;) {
        Exprs.computedBy(Instrs[Idx], Computed);
        Exprs.killedBy(Instrs[Idx], Killed);
        Computed.andNot(Killed); // self-killing computations don't count
        Computed.andNot(KilledAfter);
        Comp[B] |= Computed;
        KilledAfter |= Killed;
      }
    }
  }

  // Availability of the temporaries under BCM placement:
  //   HAVAILIN(b)  = ∧ over in-edges (EARLIEST(m,b) ∨ HAVAILOUT(m)),
  //                  with HAVAILIN(s) = ANTIN(s)  (insertion at s's entry);
  //   HAVAILOUT(b) = COMP(b) ∨ (HAVAILIN(b) ∧ TRANSP(b)).
  // Greatest fixpoint.
  std::vector<std::vector<std::pair<BlockId, size_t>>> InEdges(
      Work.numBlocks());
  for (BlockId B = 0; B < Work.numBlocks(); ++B)
    for (size_t SuccIdx = 0; SuccIdx < Work.block(B).Succs.size(); ++SuccIdx)
      InEdges[Work.block(B).Succs[SuccIdx]].emplace_back(B, SuccIdx);

  std::vector<BitVector> HAvailIn(Work.numBlocks(), BitVector(Bits, true));
  std::vector<BitVector> HAvailOut(Work.numBlocks(), BitVector(Bits, true));
  std::vector<BlockId> Order = Work.reversePostorder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Order) {
      BitVector NewIn(Bits, true);
      if (B == Work.start()) {
        NewIn = Lcm.antIn(B);
      } else {
        for (const auto &[M, SuccIdx] : InEdges[B]) {
          BitVector Edge = Lcm.earliest(M, SuccIdx);
          Edge |= HAvailOut[M];
          NewIn &= Edge;
        }
      }
      BitVector NewOut = NewIn;
      NewOut &= Lcm.transp(B);
      NewOut |= Comp[B];
      if (NewIn != HAvailIn[B] || NewOut != HAvailOut[B]) {
        HAvailIn[B] = NewIn;
        HAvailOut[B] = NewOut;
        Changed = true;
      }
    }
  }

  // Record insertions: the earliest edges, plus the entry of s.
  std::vector<std::vector<size_t>> AtEnd(Work.numBlocks());
  std::vector<std::vector<size_t>> AtEntry(Work.numBlocks());
  AtEntry[Work.start()] = Lcm.antIn(Work.start()).setBits();
  for (BlockId B = 0; B < Work.numBlocks(); ++B) {
    const auto &Succs = Work.block(B).Succs;
    for (size_t SuccIdx = 0; SuccIdx < Succs.size(); ++SuccIdx) {
      BitVector Ins = Lcm.earliest(B, SuccIdx);
      if (Ins.none())
        continue;
      for (size_t E : Ins.setBits()) {
        if (Succs.size() == 1)
          AtEnd[B].push_back(E);
        else
          AtEntry[Succs[SuccIdx]].push_back(E);
      }
    }
  }

  auto TempFor = [&](size_t E) {
    ExprId Id = Work.Exprs.intern(Exprs.term(E));
    return Work.Exprs.temporary(Id, Work.Vars);
  };

  // Rewrite blocks exactly like the LCM transform, with HAVAILIN as the
  // entry availability.
  BitVector Killed(Bits);
  for (BlockId B = 0; B < Work.numBlocks(); ++B) {
    BasicBlock &BB = Work.block(B);
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size() + AtEntry[B].size() + AtEnd[B].size());
    auto EmitInit = [&](size_t E) {
      NewInstrs.push_back(Instr::assign(TempFor(E), Exprs.term(E)));
    };
    for (size_t E : AtEntry[B])
      EmitInit(E);
    BitVector Avail = HAvailIn[B];
    for (const Instr &I : BB.Instrs) {
      Instr NewI = I;
      auto RewriteTerm = [&](Term &T) {
        if (!T.isNonTrivial())
          return;
        size_t E = Exprs.indexOf(T);
        if (E == ExprPatternTable::npos)
          return;
        if (!Avail.test(E)) {
          EmitInit(E);
          Avail.set(E);
        }
        T = Term::var(TempFor(E));
      };
      if (NewI.isAssign()) {
        RewriteTerm(NewI.Rhs);
      } else if (NewI.isBranch()) {
        RewriteTerm(NewI.CondL);
        RewriteTerm(NewI.CondR);
      }
      NewInstrs.push_back(std::move(NewI));
      Exprs.killedBy(I, Killed);
      Avail.andNot(Killed);
    }
    for (size_t E : AtEnd[B])
      EmitInit(E);
    if (NewInstrs != BB.Instrs) {
      BB.Instrs = std::move(NewInstrs);
      Work.touchBlock(B);
    }
  }

  removeSkips(Work);
  return simplified(Work);
}
