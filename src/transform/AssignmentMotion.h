//===- transform/AssignmentMotion.h - AM phase fixpoint driver -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assignment motion phase (Section 4.3): exhaustive interleaving of
/// redundant assignment elimination (rae) and assignment hoisting (aht)
/// until the program stabilizes.  This captures all second-order effects:
/// hoisting-elimination, hoisting-hoisting, elimination-hoisting and
/// elimination-elimination.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_ASSIGNMENTMOTION_H
#define AM_TRANSFORM_ASSIGNMENTMOTION_H

#include "ir/FlowGraph.h"

namespace am {

/// Statistics from one run of the AM phase, used by the complexity
/// experiments (Section 4.5 claims the number of iterations is at most
/// quadratic in the program size but linear for realistic programs).
struct AmPhaseStats {
  /// Number of rae+aht rounds until stabilization (including the final
  /// no-change round).
  unsigned Iterations = 0;
  /// Total assignments removed by rae across all rounds.
  unsigned Eliminated = 0;
  /// Number of rounds in which aht changed the program.
  unsigned HoistRounds = 0;
};

/// Runs rae and aht to a fixpoint on \p G (critical edges must be split).
/// \p MaxIterations of 0 means unbounded (the phase always terminates).
AmPhaseStats runAssignmentMotionPhase(FlowGraph &G,
                                      unsigned MaxIterations = 0);

} // namespace am

#endif // AM_TRANSFORM_ASSIGNMENTMOTION_H
