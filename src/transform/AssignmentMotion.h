//===- transform/AssignmentMotion.h - AM phase fixpoint driver -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The assignment motion phase (Section 4.3): exhaustive interleaving of
/// redundant assignment elimination (rae) and assignment hoisting (aht)
/// until the program stabilizes.  This captures all second-order effects:
/// hoisting-elimination, hoisting-hoisting, elimination-hoisting and
/// elimination-elimination.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_ASSIGNMENTMOTION_H
#define AM_TRANSFORM_ASSIGNMENTMOTION_H

#include "analysis/PaperAnalyses.h"
#include "dfa/Dataflow.h"
#include "ir/FlowGraph.h"
#include "ir/Patterns.h"

namespace am {

/// State shared across the rae/aht rounds of one AM fixpoint so each
/// round pays only for what the previous round changed:
///
///  * one AssignPatternTable, rebuilt (arena-reusing) only when the graph
///    tick moved, with a generation number that advances only when the
///    rebuilt *contents* differ — unchanged contents keep every
///    tick-stamped solver cache valid;
///  * one DataflowSolver per analysis (redundancy, hoistability), whose
///    transfer caches and previous solutions persist across rounds;
///  * the hoistability analysis' block-local predicate cache.
///
/// The context is bound to the one live graph the phase mutates; do not
/// reuse it for a different graph.  The plain two-argument entry points
/// construct a throwaway context, so one-shot callers are unaffected.
class AmContext {
public:
  /// Rebuilds the pattern table if the graph changed since the last
  /// refresh; advances the pattern generation only if the rebuild changed
  /// the table's contents.
  void refreshPatterns(const FlowGraph &G) {
    if (PatsValid && !G.instrsChangedSince(PatsTick))
      return;
    if (Pats.build(G))
      ++PatsGen;
    PatsTick = G.modTick();
    PatsValid = true;
  }

  const AssignPatternTable &patterns() const { return Pats; }
  uint64_t patternGeneration() const { return PatsGen; }
  DataflowSolver &redundancySolver() { return RedundancySolver; }
  DataflowSolver &hoistSolver() { return HoistSolver; }
  HoistLocalPredicates &hoistLocals() { return HoistLocals; }

  /// Detaches the context from its graph so it may be bound to another
  /// one: every graph-identity-keyed cache (pattern tick, solver
  /// solutions/transfers/orders, block-local predicates) is dropped —
  /// a different graph's address and ticks could otherwise alias a
  /// stale cache — while arenas, scratch capacity and the pattern
  /// generation counter survive.  This is what lets a long-lived
  /// service worker reuse one context across requests (per-worker
  /// context reuse, support/Service.h) without reallocating.
  void reset() {
    PatsValid = false;
    PatsTick = 0;
    RedundancySolver.invalidate();
    HoistSolver.invalidate();
    HoistLocals.invalidate();
  }

private:
  AssignPatternTable Pats;
  DataflowSolver RedundancySolver;
  DataflowSolver HoistSolver;
  HoistLocalPredicates HoistLocals;
  Tick PatsTick = 0;
  bool PatsValid = false;
  uint64_t PatsGen = 0;
};

/// Statistics from one run of the AM phase, used by the complexity
/// experiments (Section 4.5 claims the number of iterations is at most
/// quadratic in the program size but linear for realistic programs).
struct AmPhaseStats {
  /// Number of rae+aht rounds until stabilization (including the final
  /// no-change round).
  unsigned Iterations = 0;
  /// Total assignments removed by rae across all rounds.
  unsigned Eliminated = 0;
  /// Number of rounds in which aht changed the program.
  unsigned HoistRounds = 0;
};

/// Runs rae and aht to a fixpoint on \p G (critical edges must be split).
/// \p MaxIterations of 0 means unbounded (the phase always terminates).
AmPhaseStats runAssignmentMotionPhase(FlowGraph &G,
                                      unsigned MaxIterations = 0);

/// As above, with caller-provided shared state (pattern table, solvers)
/// that persists across the rounds — the incremental fast path.
AmPhaseStats runAssignmentMotionPhase(FlowGraph &G, AmContext &Ctx,
                                      unsigned MaxIterations = 0);

} // namespace am

#endif // AM_TRANSFORM_ASSIGNMENTMOTION_H
