//===- transform/RestrictedAssignmentMotion.cpp - Dhamdhere AM --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/RestrictedAssignmentMotion.h"
#include "ir/Patterns.h"
#include "transform/AssignmentHoisting.h"
#include "transform/Normalize.h"
#include "transform/RedundantAssignElim.h"

using namespace am;

namespace {

/// Number of occurrences of pattern `Lhs := Rhs` in \p G.
unsigned countOccurrences(const FlowGraph &G, VarId Lhs, const Term &Rhs) {
  unsigned N = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (const Instr &I : G.block(B).Instrs)
      if (I.isAssign() && I.Lhs == Lhs && I.Rhs == Rhs)
        ++N;
  return N;
}

} // namespace

FlowGraph am::runRestrictedAssignmentMotion(const FlowGraph &G,
                                            RestrictedAmStats *Stats) {
  RestrictedAmStats Local;
  RestrictedAmStats &S = Stats ? *Stats : Local;

  FlowGraph Work = G;
  removeSkips(Work);
  Work.splitCriticalEdges();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    S.Eliminated += runRedundantAssignmentElimination(Work);

    // Try each pattern in isolation; accept a hoisting only if, followed
    // by redundancy elimination, it reduces the number of occurrences of
    // the hoisted pattern itself ("immediately profitable").
    AssignPatternTable Pats;
    Pats.build(Work);
    for (size_t PatIdx = 0; PatIdx < Pats.size(); ++PatIdx) {
      const AssignPat Pat = Pats.pattern(PatIdx);
      unsigned Before = countOccurrences(Work, Pat.Lhs, Pat.Rhs);
      FlowGraph Trial = Work;
      bool Hoisted = runAssignmentHoisting(
          Trial, [&](const AssignPatternTable &TrialPats) {
            BitVector Allowed(TrialPats.size());
            size_t Idx = TrialPats.indexOf(Pat.Lhs, Pat.Rhs);
            if (Idx != AssignPatternTable::npos)
              Allowed.set(Idx);
            return Allowed;
          });
      if (!Hoisted)
        continue;
      unsigned TrialEliminated = runRedundantAssignmentElimination(Trial);
      if (countOccurrences(Trial, Pat.Lhs, Pat.Rhs) >= Before)
        continue;
      Work = std::move(Trial);
      S.Eliminated += TrialEliminated;
      ++S.ProfitableHoistings;
      Changed = true;
      break; // re-analyze from scratch
    }
  }
  return simplified(Work);
}
