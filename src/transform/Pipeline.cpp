//===- transform/Pipeline.cpp - Named pass pipelines ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"
#include "report/Recorder.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "transform/AssignmentHoisting.h"
#include "transform/AssignmentMotion.h"
#include "transform/BusyCodeMotion.h"
#include "transform/CopyPropagation.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/LazyCodeMotion.h"
#include "transform/LocalValueNumbering.h"
#include "transform/Normalize.h"
#include "transform/PartialDeadCodeElim.h"
#include "transform/RedundantAssignElim.h"
#include "transform/UniformEmAm.h"

#include <chrono>
#include <sstream>

using namespace am;

namespace {

std::vector<std::string> splitSpec(const std::string &Spec) {
  std::vector<std::string> Names;
  std::string Cur;
  for (char C : Spec) {
    if (C == ',') {
      if (!Cur.empty())
        Names.push_back(Cur);
      Cur.clear();
      continue;
    }
    if (C != ' ' && C != '\t')
      Cur.push_back(C);
  }
  if (!Cur.empty())
    Names.push_back(Cur);
  return Names;
}

uint64_t countAssignments(const FlowGraph &G) {
  uint64_t N = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (const Instr &I : G.block(B).Instrs)
      N += I.isAssign();
  return N;
}

/// Captures registry counters and IR shape around one pass body, then
/// fills in the delta fields of a PassRecord and the enclosing trace
/// span's args.
class PassScope {
public:
  PassScope(const std::string &Name, const FlowGraph &G)
      : Rec(), Span("pipeline.pass") {
    Rec.Name = Name;
    Rec.BlocksBefore = G.numBlocks();
    Rec.InstrsBefore = G.numInstrs();
    Rec.AssignsBefore = countAssignments(G);
    auto &Reg = stats::Registry::get();
    DfaSolves0 = Reg.counterValue("dfa.solves");
    DfaSweeps0 = Reg.counterValue("dfa.sweeps");
    DfaBlocks0 = Reg.counterValue("dfa.blocks_processed");
    AmRounds0 = Reg.counterValue("am.rounds");
    AmElim0 = Reg.counterValue("am.eliminated");
    AmHoist0 = Reg.counterValue("am.hoist_rounds");
    FlushDel0 = Reg.counterValue("flush.inits_deleted");
    FlushSunk0 = Reg.counterValue("flush.inits_sunk");
    Span.arg("pass", Name);
    Start = std::chrono::steady_clock::now();
  }

  /// Finalizes the record against the post-pass graph.
  PassRecord finish(const FlowGraph &G, std::string Detail) {
    Rec.WallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    Rec.Detail = std::move(Detail);
    Rec.BlocksAfter = G.numBlocks();
    Rec.InstrsAfter = G.numInstrs();
    Rec.AssignsAfter = countAssignments(G);
    auto &Reg = stats::Registry::get();
    Rec.DfaSolves = Reg.counterValue("dfa.solves") - DfaSolves0;
    Rec.DfaSweeps = Reg.counterValue("dfa.sweeps") - DfaSweeps0;
    Rec.DfaBlocksProcessed =
        Reg.counterValue("dfa.blocks_processed") - DfaBlocks0;
    Rec.AmRounds = Reg.counterValue("am.rounds") - AmRounds0;
    Rec.AmEliminated = Reg.counterValue("am.eliminated") - AmElim0;
    Rec.AmHoistRounds = Reg.counterValue("am.hoist_rounds") - AmHoist0;
    Rec.FlushInitsDeleted =
        Reg.counterValue("flush.inits_deleted") - FlushDel0;
    Rec.FlushInitsSunk = Reg.counterValue("flush.inits_sunk") - FlushSunk0;
    Span.arg("instrs_before", Rec.InstrsBefore);
    Span.arg("instrs_after", Rec.InstrsAfter);
    Span.arg("assigns_before", Rec.AssignsBefore);
    Span.arg("assigns_after", Rec.AssignsAfter);
    Span.arg("blocks_before", Rec.BlocksBefore);
    Span.arg("blocks_after", Rec.BlocksAfter);
    Span.arg("dfa_solves", Rec.DfaSolves);
    Span.arg("dfa_sweeps", Rec.DfaSweeps);
    Span.arg("detail", Rec.Detail);
    return Rec;
  }

private:
  PassRecord Rec;
  trace::TraceSpan Span;
  std::chrono::steady_clock::time_point Start;
  uint64_t DfaSolves0 = 0, DfaSweeps0 = 0, DfaBlocks0 = 0;
  uint64_t AmRounds0 = 0, AmElim0 = 0, AmHoist0 = 0;
  uint64_t FlushDel0 = 0, FlushSunk0 = 0;
};

/// Several passes require split critical edges; split on demand so pass
/// specs compose without boilerplate.
void ensureSplit(FlowGraph &G, PipelineResult &R) {
  if (!G.hasCriticalEdges())
    return;
  PassScope Scope("(split)", G);
  unsigned N = G.splitCriticalEdges();
  std::string Detail = std::to_string(N) + " critical edges";
  R.Log.push_back("(split " + std::to_string(N) + " critical edges)");
  R.Records.push_back(Scope.finish(G, std::move(Detail)));
}

} // namespace

bool am::isKnownPass(const std::string &Name) {
  static const char *Known[] = {"uniform", "am",   "init",  "rae",  "aht",
                                "flush",   "lcm",  "bcm",   "cp",   "lvn",
                                "pde",     "split", "simplify"};
  for (const char *K : Known)
    if (Name == K)
      return true;
  return false;
}

PipelineResult am::runPipeline(const FlowGraph &G, const std::string &Spec) {
  PipelineResult R;
  std::vector<std::string> Names = splitSpec(Spec);
  for (const std::string &Name : Names) {
    if (!isKnownPass(Name)) {
      R.Error = "unknown pass '" + Name + "'";
      return R;
    }
  }
  if (Names.empty()) {
    R.Error = "empty pipeline";
    return R;
  }

  AM_STAT_COUNTER(NumPipelines, "pipeline.runs");
  AM_STAT_COUNTER(NumPasses, "pipeline.passes");
  AM_STAT_INC(NumPipelines);
  trace::TraceSpan PipeSpan("pipeline.run");
  PipeSpan.arg("spec", Spec);

  R.Graph = G;
  for (const std::string &Name : Names) {
    AM_STAT_INC(NumPasses);
    std::ostringstream Line;
    if (Name == "uniform") {
      PassScope Scope(Name, R.Graph);
      UniformStats Stats;
      R.Graph = runUniformEmAm(R.Graph, UniformOptions(), &Stats);
      Line << Stats.AmPhase.Iterations << " AM iterations, "
           << Stats.AmPhase.Eliminated << " eliminated";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "am") {
      PassScope Scope(Name, R.Graph);
      UniformStats Stats;
      R.Graph = runAssignmentMotionOnly(R.Graph, &Stats);
      Line << Stats.AmPhase.Iterations << " AM iterations, "
           << Stats.AmPhase.Eliminated << " eliminated";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "init") {
      ensureSplit(R.Graph, R);
      PassScope Scope(Name, R.Graph);
      Line << runInitializationPhase(R.Graph) << " decompositions";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "rae") {
      PassScope Scope(Name, R.Graph);
      Line << runRedundantAssignmentElimination(R.Graph) << " eliminated";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "aht") {
      ensureSplit(R.Graph, R);
      PassScope Scope(Name, R.Graph);
      Line << (runAssignmentHoisting(R.Graph) ? "changed" : "no change");
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "flush") {
      ensureSplit(R.Graph, R);
      PassScope Scope(Name, R.Graph);
      Line << (runFinalFlush(R.Graph) ? "changed" : "no change");
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "lcm") {
      PassScope Scope(Name, R.Graph);
      R.Graph = runLazyCodeMotion(R.Graph);
      Line << "done";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "bcm") {
      PassScope Scope(Name, R.Graph);
      R.Graph = runBusyCodeMotion(R.Graph);
      Line << "done";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "cp") {
      PassScope Scope(Name, R.Graph);
      Line << runCopyPropagation(R.Graph) << " uses rewritten";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "lvn") {
      PassScope Scope(Name, R.Graph);
      Line << runLocalValueNumbering(R.Graph) << " reuses";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "pde") {
      ensureSplit(R.Graph, R);
      PassScope Scope(Name, R.Graph);
      PdeStats Stats = runPartialDeadCodeElim(R.Graph);
      Line << Stats.Rounds << " rounds, net " << Stats.Removed << " removed";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else if (Name == "split") {
      PassScope Scope(Name, R.Graph);
      Line << R.Graph.splitCriticalEdges() << " edges split";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    } else { // simplify
      PassScope Scope(Name, R.Graph);
      R.Graph = simplified(R.Graph);
      Line << "done";
      R.Records.push_back(Scope.finish(R.Graph, Line.str()));
    }
    R.Log.push_back(Line.str().empty() ? Name
                                       : (Name + ": " + Line.str()));
    // The composite drivers snapshot their internal phases themselves;
    // this generic capture records every pass boundary, so single-pass
    // specs ("rae", "cp", ...) show up in the report too.
    if (report::RecorderSession *Rec = report::RecorderSession::current())
      Rec->snapshot(R.Graph, Name);
  }
  return R;
}

std::string am::passRecordsJson(const std::vector<PassRecord> &Records) {
  std::string Out;
  json::Writer W(Out);
  W.beginArray();
  for (const PassRecord &Rec : Records) {
    W.beginObject();
    W.key("name").value(Rec.Name);
    W.key("detail").value(Rec.Detail);
    W.key("wall_ms").value(Rec.WallMs);
    W.key("blocks_before").value(Rec.BlocksBefore);
    W.key("blocks_after").value(Rec.BlocksAfter);
    W.key("instrs_before").value(Rec.InstrsBefore);
    W.key("instrs_after").value(Rec.InstrsAfter);
    W.key("assigns_before").value(Rec.AssignsBefore);
    W.key("assigns_after").value(Rec.AssignsAfter);
    W.key("dfa_solves").value(Rec.DfaSolves);
    W.key("dfa_sweeps").value(Rec.DfaSweeps);
    W.key("dfa_blocks_processed").value(Rec.DfaBlocksProcessed);
    W.key("am_rounds").value(Rec.AmRounds);
    W.key("am_eliminated").value(Rec.AmEliminated);
    W.key("am_hoist_rounds").value(Rec.AmHoistRounds);
    W.key("flush_inits_deleted").value(Rec.FlushInitsDeleted);
    W.key("flush_inits_sunk").value(Rec.FlushInitsSunk);
    W.endObject();
  }
  W.endArray();
  return Out;
}
