//===- transform/Pipeline.cpp - Named pass pipelines ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"
#include "transform/AssignmentHoisting.h"
#include "transform/AssignmentMotion.h"
#include "transform/BusyCodeMotion.h"
#include "transform/CopyPropagation.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/LazyCodeMotion.h"
#include "transform/LocalValueNumbering.h"
#include "transform/Normalize.h"
#include "transform/PartialDeadCodeElim.h"
#include "transform/RedundantAssignElim.h"
#include "transform/UniformEmAm.h"

#include <sstream>

using namespace am;

namespace {

std::vector<std::string> splitSpec(const std::string &Spec) {
  std::vector<std::string> Names;
  std::string Cur;
  for (char C : Spec) {
    if (C == ',') {
      if (!Cur.empty())
        Names.push_back(Cur);
      Cur.clear();
      continue;
    }
    if (C != ' ' && C != '\t')
      Cur.push_back(C);
  }
  if (!Cur.empty())
    Names.push_back(Cur);
  return Names;
}

/// Several passes require split critical edges; split on demand so pass
/// specs compose without boilerplate.
void ensureSplit(FlowGraph &G, std::vector<std::string> &Log) {
  if (!G.hasCriticalEdges())
    return;
  unsigned N = G.splitCriticalEdges();
  Log.push_back("(split " + std::to_string(N) + " critical edges)");
}

} // namespace

bool am::isKnownPass(const std::string &Name) {
  static const char *Known[] = {"uniform", "am",   "init",  "rae",  "aht",
                                "flush",   "lcm",  "bcm",   "cp",   "lvn",
                                "pde",     "split", "simplify"};
  for (const char *K : Known)
    if (Name == K)
      return true;
  return false;
}

PipelineResult am::runPipeline(const FlowGraph &G, const std::string &Spec) {
  PipelineResult R;
  std::vector<std::string> Names = splitSpec(Spec);
  for (const std::string &Name : Names) {
    if (!isKnownPass(Name)) {
      R.Error = "unknown pass '" + Name + "'";
      return R;
    }
  }
  if (Names.empty()) {
    R.Error = "empty pipeline";
    return R;
  }

  R.Graph = G;
  for (const std::string &Name : Names) {
    std::ostringstream Line;
    Line << Name << ": ";
    if (Name == "uniform") {
      UniformStats Stats;
      R.Graph = runUniformEmAm(R.Graph, UniformOptions(), &Stats);
      Line << Stats.AmPhase.Iterations << " AM iterations, "
           << Stats.AmPhase.Eliminated << " eliminated";
    } else if (Name == "am") {
      UniformStats Stats;
      R.Graph = runAssignmentMotionOnly(R.Graph, &Stats);
      Line << Stats.AmPhase.Iterations << " AM iterations, "
           << Stats.AmPhase.Eliminated << " eliminated";
    } else if (Name == "init") {
      ensureSplit(R.Graph, R.Log);
      Line << runInitializationPhase(R.Graph) << " decompositions";
    } else if (Name == "rae") {
      Line << runRedundantAssignmentElimination(R.Graph) << " eliminated";
    } else if (Name == "aht") {
      ensureSplit(R.Graph, R.Log);
      Line << (runAssignmentHoisting(R.Graph) ? "changed" : "no change");
    } else if (Name == "flush") {
      ensureSplit(R.Graph, R.Log);
      Line << (runFinalFlush(R.Graph) ? "changed" : "no change");
    } else if (Name == "lcm") {
      R.Graph = runLazyCodeMotion(R.Graph);
      Line << "done";
    } else if (Name == "bcm") {
      R.Graph = runBusyCodeMotion(R.Graph);
      Line << "done";
    } else if (Name == "cp") {
      Line << runCopyPropagation(R.Graph) << " uses rewritten";
    } else if (Name == "lvn") {
      Line << runLocalValueNumbering(R.Graph) << " reuses";
    } else if (Name == "pde") {
      ensureSplit(R.Graph, R.Log);
      PdeStats Stats = runPartialDeadCodeElim(R.Graph);
      Line << Stats.Rounds << " rounds, net " << Stats.Removed << " removed";
    } else if (Name == "split") {
      Line << R.Graph.splitCriticalEdges() << " edges split";
    } else { // simplify
      R.Graph = simplified(R.Graph);
      Line << "done";
    }
    R.Log.push_back(Line.str());
  }
  return R;
}
