//===- transform/Pipeline.cpp - Named pass pipelines ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"
#include "interp/Equivalence.h"
#include "report/Recorder.h"
#include "support/Json.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "transform/AssignmentHoisting.h"
#include "transform/AssignmentMotion.h"
#include "transform/BusyCodeMotion.h"
#include "transform/CopyPropagation.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/LazyCodeMotion.h"
#include "transform/LocalValueNumbering.h"
#include "transform/Normalize.h"
#include "transform/PartialDeadCodeElim.h"
#include "transform/RedundantAssignElim.h"
#include "transform/UniformEmAm.h"
#include "verify/FaultInjector.h"
#include "verify/GraphVerifier.h"

#include <chrono>
#include <cstdlib>
#include <optional>
#include <sstream>

using namespace am;

namespace {

std::vector<std::string> splitSpec(const std::string &Spec) {
  std::vector<std::string> Names;
  std::string Cur;
  for (char C : Spec) {
    if (C == ',') {
      if (!Cur.empty())
        Names.push_back(Cur);
      Cur.clear();
      continue;
    }
    if (C != ' ' && C != '\t')
      Cur.push_back(C);
  }
  if (!Cur.empty())
    Names.push_back(Cur);
  return Names;
}

uint64_t countAssignments(const FlowGraph &G) {
  uint64_t N = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (const Instr &I : G.block(B).Instrs)
      N += I.isAssign();
  return N;
}

/// Captures registry counters and IR shape around one pass body, then
/// fills in the delta fields of a PassRecord and the enclosing trace
/// span's args.
class PassScope {
public:
  PassScope(const std::string &Name, const FlowGraph &G)
      : Rec(), Prof(Name), Span("pipeline.pass") {
    Rec.Name = Name;
    Rec.BlocksBefore = G.numBlocks();
    Rec.InstrsBefore = G.numInstrs();
    Rec.AssignsBefore = countAssignments(G);
    auto &Reg = stats::Registry::get();
    DfaSolves0 = Reg.counterValue("dfa.solves");
    DfaSweeps0 = Reg.counterValue("dfa.sweeps");
    DfaBlocks0 = Reg.counterValue("dfa.blocks_processed");
    AmRounds0 = Reg.counterValue("am.rounds");
    AmElim0 = Reg.counterValue("am.eliminated");
    AmHoist0 = Reg.counterValue("am.hoist_rounds");
    FlushDel0 = Reg.counterValue("flush.inits_deleted");
    FlushSunk0 = Reg.counterValue("flush.inits_sunk");
    Span.arg("pass", Name);
    Start = std::chrono::steady_clock::now();
  }

  /// Finalizes the record against the post-pass graph.
  PassRecord finish(const FlowGraph &G, std::string Detail) {
    Rec.WallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - Start)
                     .count();
    Rec.Detail = std::move(Detail);
    Rec.BlocksAfter = G.numBlocks();
    Rec.InstrsAfter = G.numInstrs();
    Rec.AssignsAfter = countAssignments(G);
    auto &Reg = stats::Registry::get();
    Rec.DfaSolves = Reg.counterValue("dfa.solves") - DfaSolves0;
    Rec.DfaSweeps = Reg.counterValue("dfa.sweeps") - DfaSweeps0;
    Rec.DfaBlocksProcessed =
        Reg.counterValue("dfa.blocks_processed") - DfaBlocks0;
    Rec.AmRounds = Reg.counterValue("am.rounds") - AmRounds0;
    Rec.AmEliminated = Reg.counterValue("am.eliminated") - AmElim0;
    Rec.AmHoistRounds = Reg.counterValue("am.hoist_rounds") - AmHoist0;
    Rec.FlushInitsDeleted =
        Reg.counterValue("flush.inits_deleted") - FlushDel0;
    Rec.FlushInitsSunk = Reg.counterValue("flush.inits_sunk") - FlushSunk0;
    Span.arg("instrs_before", Rec.InstrsBefore);
    Span.arg("instrs_after", Rec.InstrsAfter);
    Span.arg("assigns_before", Rec.AssignsBefore);
    Span.arg("assigns_after", Rec.AssignsAfter);
    Span.arg("blocks_before", Rec.BlocksBefore);
    Span.arg("blocks_after", Rec.BlocksAfter);
    Span.arg("dfa_solves", Rec.DfaSolves);
    Span.arg("dfa_sweeps", Rec.DfaSweeps);
    Span.arg("detail", Rec.Detail);
    return Rec;
  }

private:
  PassRecord Rec;
  /// Profiler node for this pass; the transform's own AM_PROF_SCOPE
  /// ("rae", "analysis.redundancy", ...) nests beneath it, so the phase
  /// tree mirrors the pipeline structure.
  prof::Scope Prof;
  trace::TraceSpan Span;
  std::chrono::steady_clock::time_point Start;
  uint64_t DfaSolves0 = 0, DfaSweeps0 = 0, DfaBlocks0 = 0;
  uint64_t AmRounds0 = 0, AmElim0 = 0, AmHoist0 = 0;
  uint64_t FlushDel0 = 0, FlushSunk0 = 0;
};

/// Several passes require split critical edges; split on demand so pass
/// specs compose without boilerplate.
void ensureSplit(FlowGraph &G, PipelineResult &R) {
  if (!G.hasCriticalEdges())
    return;
  PassScope Scope("(split)", G);
  unsigned N = G.splitCriticalEdges();
  std::string Detail = std::to_string(N) + " critical edges";
  R.Log.push_back("(split " + std::to_string(N) + " critical edges)");
  R.Records.push_back(Scope.finish(G, std::move(Detail)));
}

/// Runs one named pass over R.Graph, appending its record and log line.
/// \p Limits carries the per-pass AM round cap (0 = unlimited); \p Ctx,
/// when non-null, is the caller's reusable AM context (reset at each
/// rebinding — see PipelineOptions::Context).
void runOnePass(const std::string &Name, PipelineResult &R,
                const PipelineLimits &Limits, AmContext *Ctx) {
  std::ostringstream Line;
  if (Name == "uniform") {
    PassScope Scope(Name, R.Graph);
    UniformOptions UO;
    UO.MaxAmIterations = Limits.MaxAmRounds;
    UO.Context = Ctx;
    UniformStats Stats;
    R.Graph = runUniformEmAm(R.Graph, UO, &Stats);
    Line << Stats.AmPhase.Iterations << " AM iterations, "
         << Stats.AmPhase.Eliminated << " eliminated";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "am") {
    PassScope Scope(Name, R.Graph);
    UniformOptions UO;
    UO.RunInitialization = false;
    UO.RunFinalFlush = false;
    UO.MaxAmIterations = Limits.MaxAmRounds;
    UO.Context = Ctx;
    UniformStats Stats;
    R.Graph = runUniformEmAm(R.Graph, UO, &Stats);
    Line << Stats.AmPhase.Iterations << " AM iterations, "
         << Stats.AmPhase.Eliminated << " eliminated";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "init") {
    ensureSplit(R.Graph, R);
    PassScope Scope(Name, R.Graph);
    Line << runInitializationPhase(R.Graph) << " decompositions";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "rae") {
    PassScope Scope(Name, R.Graph);
    if (Ctx) {
      Ctx->reset();
      Line << runRedundantAssignmentElimination(R.Graph, *Ctx)
           << " eliminated";
    } else {
      Line << runRedundantAssignmentElimination(R.Graph) << " eliminated";
    }
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "aht") {
    ensureSplit(R.Graph, R);
    PassScope Scope(Name, R.Graph);
    bool Changed;
    if (Ctx) {
      Ctx->reset();
      Changed = runAssignmentHoisting(R.Graph, *Ctx);
    } else {
      Changed = runAssignmentHoisting(R.Graph);
    }
    Line << (Changed ? "changed" : "no change");
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "flush") {
    ensureSplit(R.Graph, R);
    PassScope Scope(Name, R.Graph);
    Line << (runFinalFlush(R.Graph) ? "changed" : "no change");
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "lcm") {
    PassScope Scope(Name, R.Graph);
    R.Graph = runLazyCodeMotion(R.Graph);
    Line << "done";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "bcm") {
    PassScope Scope(Name, R.Graph);
    R.Graph = runBusyCodeMotion(R.Graph);
    Line << "done";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "cp") {
    PassScope Scope(Name, R.Graph);
    Line << runCopyPropagation(R.Graph) << " uses rewritten";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "lvn") {
    PassScope Scope(Name, R.Graph);
    Line << runLocalValueNumbering(R.Graph) << " reuses";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "pde") {
    ensureSplit(R.Graph, R);
    PassScope Scope(Name, R.Graph);
    PdeStats Stats = runPartialDeadCodeElim(R.Graph);
    Line << Stats.Rounds << " rounds, net " << Stats.Removed << " removed";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else if (Name == "split") {
    PassScope Scope(Name, R.Graph);
    Line << R.Graph.splitCriticalEdges() << " edges split";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  } else { // simplify
    PassScope Scope(Name, R.Graph);
    R.Graph = simplified(R.Graph);
    Line << "done";
    R.Records.push_back(Scope.finish(R.Graph, Line.str()));
  }
  R.Log.push_back(Line.str().empty() ? Name : (Name + ": " + Line.str()));
}

/// The edge-corrupt fault class fires here, between the pass body and the
/// guard checks: rewire one successor edge without touching the matching
/// predecessor list — exactly the asymmetry GraphVerifier must catch.
void maybeCorruptEdge(FlowGraph &G) {
  fault::FaultInjector *FI = fault::FaultInjector::current();
  if (!FI || !FI->armedFor(fault::FaultClass::CorruptEdge))
    return;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    auto &Succs = G.block(B).Succs;
    if (Succs.empty())
      continue;
    if (!FI->fire(fault::FaultClass::CorruptEdge))
      continue;
    // Redirect to any other block; the end node is a safe target (a
    // non-end block pointing at it stays in range but breaks symmetry).
    BlockId To = Succs[0] == G.end() ? G.start() : G.end();
    Succs[0] = To;
    G.touchBlock(B);
    return;
  }
}

/// Pseudo-random input battery shared with `amopt --verify`: small signed
/// values, deterministic in (round, variable index).
std::unordered_map<std::string, int64_t>
equivalenceInputs(const FlowGraph &G, uint64_t Round) {
  std::unordered_map<std::string, int64_t> Inputs;
  for (uint32_t V = 0; V < G.Vars.size(); ++V)
    Inputs[G.Vars.name(makeVarId(V))] =
        static_cast<int64_t>((Round * 2654435761u + V * 40503u) % 41) - 20;
  return Inputs;
}

} // namespace

const char *am::passStatusName(PassStatus S) {
  switch (S) {
  case PassStatus::Ok:
    return "ok";
  case PassStatus::RolledBack:
    return "rolled-back";
  case PassStatus::LimitExhausted:
    return "limit-exhausted";
  }
  return "?";
}

bool am::isKnownPass(const std::string &Name) {
  static const char *Known[] = {"uniform", "am",   "init",  "rae",  "aht",
                                "flush",   "lcm",  "bcm",   "cp",   "lvn",
                                "pde",     "split", "simplify"};
  for (const char *K : Known)
    if (Name == K)
      return true;
  return false;
}

diag::Expected<std::vector<std::string>>
am::parsePassSpec(const std::string &Spec) {
  std::vector<std::string> Names = splitSpec(Spec);
  for (const std::string &Name : Names)
    if (!isKnownPass(Name))
      return diag::Diagnostic::error("pipeline",
                                     "unknown pass '" + Name + "'");
  if (Names.empty())
    return diag::Diagnostic::error("pipeline", "empty pipeline");
  return Names;
}

diag::Expected<PipelineLimits> am::parseLimitsSpec(const std::string &Spec) {
  PipelineLimits L;
  for (const std::string &Item : splitSpec(Spec)) {
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos || Eq + 1 == Item.size())
      return diag::Diagnostic::error(
          "limits", "expected key=value, got '" + Item + "'");
    std::string Key = Item.substr(0, Eq);
    std::string Val = Item.substr(Eq + 1);
    char *End = nullptr;
    double Num = std::strtod(Val.c_str(), &End);
    if (End == Val.c_str() || *End != '\0' || Num < 0)
      return diag::Diagnostic::error(
          "limits", "value '" + Val + "' for '" + Key +
                        "' is not a non-negative number");
    if (Key == "am-rounds")
      L.MaxAmRounds = static_cast<unsigned>(Num);
    else if (Key == "growth")
      L.MaxInstrGrowth = Num;
    else if (Key == "sweeps")
      L.MaxSolverSweeps = static_cast<uint64_t>(Num);
    else if (Key == "wall-ms")
      L.MaxWallMs = Num;
    else {
      diag::Diagnostic D = diag::Diagnostic::error(
          "limits", "unknown limit '" + Key + "'");
      D.note("known limits: am-rounds, growth, sweeps, wall-ms");
      return D;
    }
  }
  return L;
}

PipelineResult am::runPipeline(const FlowGraph &G, const std::string &Spec) {
  return runPipeline(G, Spec, PipelineOptions());
}

PipelineResult am::runPipeline(const FlowGraph &G, const std::string &Spec,
                               const PipelineOptions &Opts) {
  // When the caller owns a telemetry session, make it current for the
  // whole run so every AM_STAT_* / remark / profiler scope below lands in
  // it; otherwise inherit whatever session is already installed (or the
  // process default).
  std::optional<telemetry::SessionScope> SessionGuard;
  if (Opts.Telemetry)
    SessionGuard.emplace(*Opts.Telemetry);
  if (Opts.Threads != 0)
    threads::setGlobalThreadCount(Opts.Threads);
  AM_PROF_SCOPE("pipeline");

  PipelineResult R;
  diag::Expected<std::vector<std::string>> Parsed = parsePassSpec(Spec);
  if (!Parsed.ok()) {
    R.Diag = Parsed.diagnostic();
    R.Error = R.Diag.Message;
    return R;
  }
  const std::vector<std::string> &Names = *Parsed;
  const bool Guarded = Opts.Guarded;
  const bool VerifyIR = Opts.VerifyIR || Guarded;

  AM_STAT_COUNTER(NumPipelines, "pipeline.runs");
  AM_STAT_COUNTER(NumPasses, "pipeline.passes");
  AM_STAT_COUNTER(NumRollbacks, "pipeline.rollbacks");
  AM_STAT_INC(NumPipelines);
  trace::TraceSpan PipeSpan("pipeline.run");
  PipeSpan.arg("spec", Spec);

  if (VerifyIR) {
    // A broken *input* is the caller's bug, not a pass's: report it as an
    // error instead of blaming (and rolling back) the first pass.
    VerifyResult VR = verifyGraph(G);
    if (!VR.ok()) {
      R.Diag = diag::Diagnostic::error(
          "pipeline", "input graph fails IR verification: " +
                          VR.renderText());
      R.Error = R.Diag.Message;
      return R;
    }
  }

  R.Graph = G;
  const uint64_t InputInstrs = G.numInstrs();
  auto &Reg = stats::Registry::get();
  const uint64_t Sweeps0 = Reg.counterValue("dfa.sweeps");
  const auto RunStart = std::chrono::steady_clock::now();

  for (const std::string &Name : Names) {
    // External cancellation (a service watchdog's deadline) stops the
    // pipeline at the pass boundary: everything committed so far is
    // verified and semantics-preserving, the pass that would run next
    // never starts.  Reported as budget exhaustion so callers share one
    // "stopped early, graph is safe" path with the wall-clock limit.
    if (Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed)) {
      R.LimitsExhausted = true;
      R.Diag = diag::Diagnostic::error(
          "pipeline",
          "canceled before pass '" + Name + "': deadline exceeded");
      R.Error = R.Diag.Message;
      return R;
    }

    AM_STAT_INC(NumPasses);

    FlowGraph Snapshot;
    if (Guarded)
      Snapshot = R.Graph;

    runOnePass(Name, R, Opts.Limits, Opts.Context);
    PassRecord &Rec = R.Records.back();
    maybeCorruptEdge(R.Graph);

    // Guard checks: structural invariants first (a corrupt graph must not
    // reach the interpreter), then a semantic spot-check against the
    // snapshot.
    std::string Why;
    if (VerifyIR) {
      VerifyResult VR = verifyGraph(R.Graph);
      if (!VR.ok())
        Why = "IR verification failed: " + VR.renderText();
    }
    if (Why.empty() && Guarded) {
      for (uint64_t Round = 0; Round < Opts.EquivalenceRounds; ++Round) {
        Interpreter::Options IOpts;
        IOpts.MaxSteps = Opts.EquivalenceMaxSteps;
        EquivalenceReport Rep =
            checkEquivalent(Snapshot, R.Graph,
                            equivalenceInputs(Snapshot, Round), Round, IOpts);
        if (!Rep.Equivalent) {
          Why = "semantic check failed (round " + std::to_string(Round) +
                "): " + Rep.Detail;
          break;
        }
      }
    }

    if (!Why.empty()) {
      if (!Guarded) {
        // --verify-ir without rollback: stop at the first violation.
        R.Diag = diag::Diagnostic::error(
            "pipeline", "after pass '" + Name + "': " + Why);
        R.Error = R.Diag.Message;
        return R;
      }
      R.Graph = std::move(Snapshot);
      Rec.Status = PassStatus::RolledBack;
      Rec.Violation = Why;
      ++R.RollbackCount;
      AM_STAT_INC(NumRollbacks);
      R.Log.back() = Name + ": ROLLED BACK (" + Why + ")";
      if (AM_REMARKS_ENABLED()) {
        remarks::Remark Rem;
        Rem.K = remarks::Kind::Rollback;
        Rem.Pass = Name;
        Rem.fact("reason", Why);
        remarks::Sink::get().add(std::move(Rem));
      }
    }

    // The composite drivers snapshot their internal phases themselves;
    // this generic capture records every pass boundary, so single-pass
    // specs ("rae", "cp", ...) show up in the report too.
    if (report::RecorderSession *Rec2 = report::RecorderSession::current())
      Rec2->snapshot(R.Graph, Name);

    // Resource budgets, checked at pass boundaries: the pass that tripped
    // one commits (or rolls back) normally, then the pipeline stops with
    // a diagnostic and the partial records.
    if (Opts.Limits.any()) {
      std::string Exhausted;
      if (Opts.Limits.MaxInstrGrowth > 0.0 && InputInstrs > 0 &&
          static_cast<double>(R.Graph.numInstrs()) >
              Opts.Limits.MaxInstrGrowth * static_cast<double>(InputInstrs))
        Exhausted = "instruction growth " +
                    std::to_string(R.Graph.numInstrs()) + " exceeds " +
                    std::to_string(Opts.Limits.MaxInstrGrowth) + "x input (" +
                    std::to_string(InputInstrs) + ")";
      else if (Opts.Limits.MaxSolverSweeps != 0 &&
               Reg.counterValue("dfa.sweeps") - Sweeps0 >
                   Opts.Limits.MaxSolverSweeps)
        Exhausted = "solver sweep budget " +
                    std::to_string(Opts.Limits.MaxSolverSweeps) + " exceeded";
      else if (Opts.Limits.MaxWallMs > 0.0) {
        double Ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - RunStart)
                        .count();
        if (Ms > Opts.Limits.MaxWallMs)
          Exhausted = "wall-clock budget " +
                      std::to_string(Opts.Limits.MaxWallMs) + " ms exceeded";
      }
      if (!Exhausted.empty()) {
        Rec.Status = PassStatus::LimitExhausted;
        if (Rec.Violation.empty())
          Rec.Violation = Exhausted;
        R.LimitsExhausted = true;
        R.Diag = diag::Diagnostic::error(
            "pipeline",
            "resource budget exhausted after pass '" + Name + "': " +
                Exhausted);
        R.Error = R.Diag.Message;
        return R;
      }
    }
  }
  return R;
}

std::string am::passRecordsJson(const std::vector<PassRecord> &Records) {
  std::string Out;
  json::Writer W(Out);
  W.beginArray();
  for (const PassRecord &Rec : Records) {
    W.beginObject();
    W.key("name").value(Rec.Name);
    W.key("detail").value(Rec.Detail);
    W.key("wall_ms").value(Rec.WallMs);
    W.key("status").value(passStatusName(Rec.Status));
    if (!Rec.Violation.empty())
      W.key("violation").value(Rec.Violation);
    W.key("blocks_before").value(Rec.BlocksBefore);
    W.key("blocks_after").value(Rec.BlocksAfter);
    W.key("instrs_before").value(Rec.InstrsBefore);
    W.key("instrs_after").value(Rec.InstrsAfter);
    W.key("assigns_before").value(Rec.AssignsBefore);
    W.key("assigns_after").value(Rec.AssignsAfter);
    W.key("dfa_solves").value(Rec.DfaSolves);
    W.key("dfa_sweeps").value(Rec.DfaSweeps);
    W.key("dfa_blocks_processed").value(Rec.DfaBlocksProcessed);
    W.key("am_rounds").value(Rec.AmRounds);
    W.key("am_eliminated").value(Rec.AmEliminated);
    W.key("am_hoist_rounds").value(Rec.AmHoistRounds);
    W.key("flush_inits_deleted").value(Rec.FlushInitsDeleted);
    W.key("flush_inits_sunk").value(Rec.FlushInitsSunk);
    W.endObject();
  }
  W.endArray();
  return Out;
}
