//===- transform/UniformEmAm.h - The paper's global algorithm --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global algorithm of Section 4: critical-edge splitting, the
/// initialization phase, the assignment-motion fixpoint and the final
/// flush.  The result is expression-optimal in the universe of EM/AM
/// interleavings (Theorem 5.2) and relatively assignment- and
/// temporary-optimal (Theorems 5.3/5.4).
///
/// Options toggle individual phases for the ablation experiments and the
/// baselines ("AM only" is the pipeline without initialization and flush).
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_UNIFORMEMAM_H
#define AM_TRANSFORM_UNIFORMEMAM_H

#include "ir/FlowGraph.h"
#include "transform/AssignmentMotion.h"

namespace am {

/// Pipeline configuration.  Defaults run the full paper algorithm.
struct UniformOptions {
  /// Split critical edges first (Section 2.1).  Disabling this is only
  /// meaningful for the ablation study; the motion passes require split
  /// edges and will be skipped on graphs that still have critical edges.
  bool SplitCriticalEdges = true;
  /// Phase 1: decompose computations into temporary initializations.
  bool RunInitialization = true;
  /// Phase 3: flush unnecessary temporary initializations.
  bool RunFinalFlush = true;
  /// Cap on AM-phase iterations (0 = until stabilization).
  unsigned MaxAmIterations = 0;
  /// Drop skips and splice out empty synthetic blocks at the end.
  bool SimplifyResult = true;
  /// Caller-owned AM context for the motion phase, reset here before
  /// use (the phase runs on an internal working copy of the graph) so
  /// its arenas and scratch survive across calls — the service's
  /// per-worker reuse.  Null (the default) uses a throwaway context.
  /// The output is byte-identical either way.
  class AmContext *Context = nullptr;
};

/// Statistics of one pipeline run.
struct UniformStats {
  unsigned EdgesSplit = 0;
  unsigned Decompositions = 0;
  AmPhaseStats AmPhase;
  bool FlushChanged = false;
};

/// Runs the global algorithm on a copy of \p G and returns the optimized
/// program.  \p Stats, if non-null, receives phase statistics.
FlowGraph runUniformEmAm(const FlowGraph &G, const UniformOptions &Options = {},
                         UniformStats *Stats = nullptr);

/// Convenience: plain assignment motion (no initialization, no flush) —
/// the paper's AM-only comparison of Figure 6(b).
FlowGraph runAssignmentMotionOnly(const FlowGraph &G,
                                  UniformStats *Stats = nullptr);

} // namespace am

#endif // AM_TRANSFORM_UNIFORMEMAM_H
