//===- transform/PartialDeadCodeElim.h - PDE extension ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Partial dead code elimination — the dual of the paper's assignment
/// hoisting, after Knoop/Rüthing/Steffen'94 (the paper's ref [17], whose
/// delayability analysis Table 1 explicitly mirrors).  Assignments are
/// *sunk* as far as possible with the control flow to their latest safe
/// program points; a sunk assignment whose left-hand side is dead at its
/// latest point simply disappears.  Sinking into branches eliminates
/// assignments that are dead along some paths only ("partially dead").
///
/// The final flush phase of the uniform algorithm is exactly this
/// transformation restricted to temporary initializations; this extension
/// generalizes it to every assignment pattern.
///
/// Note: eliminating dead assignments may reduce the potential of runtime
/// errors (Section 3's caveat about dead-code elimination) — a trapping
/// right-hand side of a dead assignment no longer traps.  This is why PDE
/// is an extension rather than part of the paper's semantics-preserving
/// universe.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_PARTIALDEADCODEELIM_H
#define AM_TRANSFORM_PARTIALDEADCODEELIM_H

#include "ir/FlowGraph.h"

namespace am {

/// Statistics of a PDE run.
struct PdeStats {
  /// Sinking rounds until stabilization (incl. the final no-change one).
  unsigned Rounds = 0;
  /// Net assignments removed (occurrences before minus after).
  int Removed = 0;
};

/// One assignment-sinking pass over \p G (critical edges must be split):
/// deletes every assignment occurrence and re-materializes each pattern at
/// its latest safe points, skipping points where the left-hand side is
/// dead.  Returns true if the program changed.
bool runAssignmentSinking(FlowGraph &G);

/// Iterates sinking to a fixpoint, capturing second-order effects (a sunk
/// assignment may unblock further sinking).  \p MaxRounds of 0 means until
/// stabilization.
PdeStats runPartialDeadCodeElim(FlowGraph &G, unsigned MaxRounds = 0);

} // namespace am

#endif // AM_TRANSFORM_PARTIALDEADCODEELIM_H
