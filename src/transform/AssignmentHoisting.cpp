//===- transform/AssignmentHoisting.cpp - aht implementation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/AssignmentHoisting.h"
#include "analysis/PaperAnalyses.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "report/Recorder.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "transform/AssignmentMotion.h"
#include "verify/FaultInjector.h"

using namespace am;

namespace {

/// A remark buffered during the rebuild of one block.  Remarks are only
/// published if the block's rebuild actually commits (NewInstrs differs
/// from the old list): a remove+reinsert that reproduces the identical
/// instruction sequence is a no-op whose old instructions — and old ids —
/// survive, so publishing its remarks would fabricate history.
struct PendingRemark {
  remarks::Remark R;
  size_t Pat;     // pattern index, for post-hoc parent linking
  bool IsInsert;  // inserted instance (Parents filled after the loop)
};

} // namespace

bool am::runAssignmentHoisting(FlowGraph &G, AmContext &Ctx,
                               const HoistFilter &Filter) {
  assert(!G.hasCriticalEdges() &&
         "assignment hoisting requires split critical edges");
  AM_PROF_SCOPE("aht");
  AM_REMARK_PASS_SCOPE("aht");
  if (AM_REMARKS_ENABLED())
    ensureInstrIds(G);
  Ctx.refreshPatterns(G);
  const AssignPatternTable &Pats = Ctx.patterns();
  if (Pats.size() == 0)
    return false;
  HoistabilityAnalysis Hoist =
      HoistabilityAnalysis::run(G, Pats, Ctx.hoistSolver(), Ctx.hoistLocals(),
                                Ctx.patternGeneration());
  if (report::RecorderSession *Rec = report::RecorderSession::current())
    Rec->captureHoistability(G, Pats, Hoist, Rec->round());

  BitVector Allowed(Pats.size(), true);
  if (Filter)
    Allowed = Filter(Pats);

  // Phase 1: record all decisions against the frozen graph.
  struct BlockDecision {
    /// Exit-inserts realized here on behalf of a branching predecessor
    /// whose condition blocks the pattern: (pattern, pred block).
    std::vector<std::pair<size_t, BlockId>> FromPreds;
    std::vector<size_t> AtEntry;      // N-INSERT
    std::vector<bool> RemoveInstr;    // hoisting candidates
    std::vector<size_t> BeforeBranch; // X-INSERT, branch does not block
    std::vector<size_t> AtEnd;        // X-INSERT, no branch instruction
  };
  std::vector<BlockDecision> Decisions(G.numBlocks());

  BitVector Tmp = Pats.makeVector();
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    const BasicBlock &BB = G.block(B);
    BlockDecision &D = Decisions[B];

    BitVector EntryIns = Hoist.entryInsert(B);
    EntryIns &= Allowed;
    // Footnote 6: after edge splitting there are never entry insertions at
    // join nodes.
    assert((EntryIns.none() || BB.Preds.size() <= 1 || B == G.start()) &&
           "unexpected entry insertion at a join node");
    EntryIns.forEachSetBit([&](size_t Pat) { D.AtEntry.push_back(Pat); });

    // Hoisting candidates: occurrences not preceded by a blocker within
    // their block.  The cached LOC-HOISTABLE predicate tells us whether
    // the per-instruction scan can find anything at all.
    D.RemoveInstr.assign(BB.Instrs.size(), false);
    Tmp = Hoist.locHoistable(B);
    Tmp &= Allowed;
    if (!Tmp.none()) {
      BitVector BlockedSoFar = Pats.makeVector();
      // First in-block blocker per pattern, for Blocked remark payloads.
      std::vector<uint32_t> FirstBlocker;
      if (AM_REMARKS_ENABLED())
        FirstBlocker.assign(Pats.size(), 0);
      for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
        size_t Pat = Pats.occurrence(BB.Instrs[Idx]);
        if (Pat != AssignPatternTable::npos && Allowed.test(Pat)) {
          bool Blocked = BlockedSoFar.test(Pat);
          if (Blocked)
            if (fault::FaultInjector *FI = fault::FaultInjector::current())
              // aht-skip-block: skip one blockage check, hoisting the
              // occurrence past its in-block blocker.
              Blocked = !FI->fire(fault::FaultClass::AhtSkipBlockage);
          if (!Blocked) {
            D.RemoveInstr[Idx] = true;
          } else if (AM_REMARKS_ENABLED()) {
            // The occurrence stays put this round: something earlier in
            // the block blocks its pattern.  Informational (non-terminal)
            // and true whether or not the block's rebuild commits, so it
            // is published directly.
            remarks::Remark R;
            R.K = remarks::Kind::Blocked;
            R.InstrId = BB.Instrs[Idx].Id;
            R.Block = B;
            R.InstrIndex = static_cast<uint32_t>(Idx);
            R.Pattern = printInstr(BB.Instrs[Idx], G.Vars);
            if (BB.Instrs[Idx].isAssign())
              R.Var = G.Vars.name(BB.Instrs[Idx].Lhs);
            R.Solve = Hoist.solveSerial();
            R.fact("LOC-BLOCKED", "1");
            if (!FirstBlocker.empty() && FirstBlocker[Pat] != 0)
              R.fact("blocked_by", "#" + std::to_string(FirstBlocker[Pat]));
            remarks::Sink::get().add(std::move(R));
          }
        }
        if (AM_REMARKS_ENABLED()) {
          Pats.blockedBy(BB.Instrs[Idx], Tmp);
          Tmp.forEachSetBit([&](size_t BPat) {
            if (!BlockedSoFar.test(BPat) && FirstBlocker[BPat] == 0)
              FirstBlocker[BPat] = BB.Instrs[Idx].Id;
          });
          BlockedSoFar |= Tmp;
        } else {
          Pats.blockedBy(BB.Instrs[Idx], Tmp);
          BlockedSoFar |= Tmp;
        }
      }
    }

    // Exit insertions.
    BitVector ExitIns = Hoist.exitInsert(B);
    ExitIns &= Allowed;
    if (ExitIns.none())
      continue;
    const Instr *Br = BB.branchInstr();
    if (!Br) {
      ExitIns.forEachSetBit([&](size_t Pat) { D.AtEnd.push_back(Pat); });
      continue;
    }
    BitVector BranchBlocks = Pats.makeVector();
    Pats.blockedBy(*Br, BranchBlocks);
    ExitIns.forEachSetBit([&](size_t Pat) {
      if (!BranchBlocks.test(Pat)) {
        D.BeforeBranch.push_back(Pat);
        return;
      }
      // The branch condition itself blocks the pattern: place the
      // insertion after the condition, i.e. at the entry of every
      // successor (each has a single predecessor after edge splitting).
      for (BlockId S : BB.Succs) {
        assert(G.block(S).Preds.size() == 1 &&
               "successor of a branching block must have a unique pred");
        Decisions[S].FromPreds.push_back({Pat, B});
      }
    });
  }

  // Phase 2: rebuild the instruction lists.
  bool Changed = false;
  std::vector<PendingRemark> Accepted;
  // Committed removed-occurrence ids per pattern; inserted instances of a
  // pattern descend from the occurrences hoisted away this round.
  std::vector<std::vector<uint32_t>> RemovedIds;
  if (AM_REMARKS_ENABLED())
    RemovedIds.resize(Pats.size());
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BasicBlock &BB = G.block(B);
    const BlockDecision &D = Decisions[B];

    std::vector<PendingRemark> Pending;
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size() + D.AtEntry.size() +
                      D.FromPreds.size() + D.AtEnd.size() +
                      D.BeforeBranch.size());
    auto Emit = [&](size_t Pat, remarks::Placement Place,
                    BlockId FromBlock, const char *Predicate) {
      NewInstrs.push_back(
          Instr::assign(Pats.pattern(Pat).Lhs, Pats.pattern(Pat).Rhs));
      if (AM_REMARKS_ENABLED()) {
        Instr &New = NewInstrs.back();
        New.Id = remarks::Sink::get().freshId();
        PendingRemark P;
        P.Pat = Pat;
        P.IsInsert = true;
        P.R.K = remarks::Kind::Hoist;
        P.R.Act = remarks::Action::Insert;
        P.R.InstrId = New.Id;
        P.R.Block = B;
        P.R.InstrIndex = static_cast<uint32_t>(NewInstrs.size() - 1);
        P.R.Place = Place;
        if (FromBlock != static_cast<BlockId>(-1))
          P.R.FromBlock = FromBlock;
        P.R.Pattern = printInstr(New, G.Vars);
        P.R.Var = G.Vars.name(Pats.pattern(Pat).Lhs);
        P.R.Solve = Hoist.solveSerial();
        P.R.fact(Predicate, "1");
        Pending.push_back(std::move(P));
      }
    };
    // Predecessor-exit insertions precede this block's own entry point.
    for (auto [Pat, Pred] : D.FromPreds)
      Emit(Pat, remarks::Placement::FromPred, Pred, "X-INSERT");
    std::vector<size_t> Misplaced;
    for (size_t Pat : D.AtEntry) {
      if (fault::FaultInjector *FI = fault::FaultInjector::current())
        // aht-misplace: realize one entry insertion at the block *end*.
        if (FI->fire(fault::FaultClass::AhtMisplaceInsert)) {
          Misplaced.push_back(Pat);
          continue;
        }
      Emit(Pat, remarks::Placement::Entry, static_cast<BlockId>(-1),
           "N-INSERT");
    }
    const Instr *Br = BB.branchInstr();
    for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
      if (D.RemoveInstr[Idx]) {
        if (AM_REMARKS_ENABLED()) {
          PendingRemark P;
          P.Pat = Pats.occurrence(BB.Instrs[Idx]);
          P.IsInsert = false;
          P.R.K = remarks::Kind::Hoist;
          P.R.Act = remarks::Action::Remove;
          P.R.InstrId = BB.Instrs[Idx].Id;
          P.R.Block = B;
          P.R.InstrIndex = static_cast<uint32_t>(Idx);
          P.R.Terminal = true;
          P.R.Pattern = printInstr(BB.Instrs[Idx], G.Vars);
          if (BB.Instrs[Idx].isAssign())
            P.R.Var = G.Vars.name(BB.Instrs[Idx].Lhs);
          P.R.Solve = Hoist.solveSerial();
          P.R.fact("LOC-HOISTABLE", "1").fact("candidate", "1");
          Pending.push_back(std::move(P));
        }
        continue;
      }
      if (Br && &BB.Instrs[Idx] == Br)
        for (size_t Pat : D.BeforeBranch)
          Emit(Pat, remarks::Placement::BeforeBranch,
               static_cast<BlockId>(-1), "X-INSERT");
      NewInstrs.push_back(BB.Instrs[Idx]);
    }
    for (size_t Pat : D.AtEnd)
      Emit(Pat, remarks::Placement::Exit, static_cast<BlockId>(-1),
           "X-INSERT");
    for (size_t Pat : Misplaced)
      Emit(Pat, remarks::Placement::Entry, static_cast<BlockId>(-1),
           "N-INSERT");

    if (NewInstrs != BB.Instrs) {
      BB.Instrs = std::move(NewInstrs);
      G.touchBlock(B);
      Changed = true;
      if (AM_REMARKS_ENABLED()) {
        for (PendingRemark &P : Pending) {
          if (!P.IsInsert && P.Pat != AssignPatternTable::npos)
            RemovedIds[P.Pat].push_back(P.R.InstrId);
          Accepted.push_back(std::move(P));
        }
      }
    }
    // A non-committing rebuild drops its pending remarks: the old
    // instructions (and their ids) are still the program.
  }

  if (AM_REMARKS_ENABLED()) {
    for (PendingRemark &P : Accepted) {
      if (P.IsInsert && P.Pat < RemovedIds.size())
        P.R.Parents = RemovedIds[P.Pat];
      remarks::Sink::get().add(std::move(P.R));
    }
  }
  return Changed;
}

bool am::runAssignmentHoisting(FlowGraph &G, const HoistFilter &Filter) {
  AmContext Ctx;
  return runAssignmentHoisting(G, Ctx, Filter);
}
