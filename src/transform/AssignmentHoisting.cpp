//===- transform/AssignmentHoisting.cpp - aht implementation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/AssignmentHoisting.h"
#include "analysis/PaperAnalyses.h"
#include "transform/AssignmentMotion.h"

using namespace am;

bool am::runAssignmentHoisting(FlowGraph &G, AmContext &Ctx,
                               const HoistFilter &Filter) {
  assert(!G.hasCriticalEdges() &&
         "assignment hoisting requires split critical edges");
  Ctx.refreshPatterns(G);
  const AssignPatternTable &Pats = Ctx.patterns();
  if (Pats.size() == 0)
    return false;
  HoistabilityAnalysis Hoist =
      HoistabilityAnalysis::run(G, Pats, Ctx.hoistSolver(), Ctx.hoistLocals(),
                                Ctx.patternGeneration());

  BitVector Allowed(Pats.size(), true);
  if (Filter)
    Allowed = Filter(Pats);

  // Phase 1: record all decisions against the frozen graph.
  struct BlockDecision {
    std::vector<size_t> FromPreds;    // exit-inserts of a branching pred
    std::vector<size_t> AtEntry;      // N-INSERT
    std::vector<bool> RemoveInstr;    // hoisting candidates
    std::vector<size_t> BeforeBranch; // X-INSERT, branch does not block
    std::vector<size_t> AtEnd;        // X-INSERT, no branch instruction
  };
  std::vector<BlockDecision> Decisions(G.numBlocks());

  BitVector Tmp = Pats.makeVector();
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    const BasicBlock &BB = G.block(B);
    BlockDecision &D = Decisions[B];

    BitVector EntryIns = Hoist.entryInsert(B);
    EntryIns &= Allowed;
    // Footnote 6: after edge splitting there are never entry insertions at
    // join nodes.
    assert((EntryIns.none() || BB.Preds.size() <= 1 || B == G.start()) &&
           "unexpected entry insertion at a join node");
    EntryIns.forEachSetBit([&](size_t Pat) { D.AtEntry.push_back(Pat); });

    // Hoisting candidates: occurrences not preceded by a blocker within
    // their block.  The cached LOC-HOISTABLE predicate tells us whether
    // the per-instruction scan can find anything at all.
    D.RemoveInstr.assign(BB.Instrs.size(), false);
    Tmp = Hoist.locHoistable(B);
    Tmp &= Allowed;
    if (!Tmp.none()) {
      BitVector BlockedSoFar = Pats.makeVector();
      for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
        size_t Pat = Pats.occurrence(BB.Instrs[Idx]);
        if (Pat != AssignPatternTable::npos && Allowed.test(Pat) &&
            !BlockedSoFar.test(Pat))
          D.RemoveInstr[Idx] = true;
        Pats.blockedBy(BB.Instrs[Idx], Tmp);
        BlockedSoFar |= Tmp;
      }
    }

    // Exit insertions.
    BitVector ExitIns = Hoist.exitInsert(B);
    ExitIns &= Allowed;
    if (ExitIns.none())
      continue;
    const Instr *Br = BB.branchInstr();
    if (!Br) {
      ExitIns.forEachSetBit([&](size_t Pat) { D.AtEnd.push_back(Pat); });
      continue;
    }
    BitVector BranchBlocks = Pats.makeVector();
    Pats.blockedBy(*Br, BranchBlocks);
    ExitIns.forEachSetBit([&](size_t Pat) {
      if (!BranchBlocks.test(Pat)) {
        D.BeforeBranch.push_back(Pat);
        return;
      }
      // The branch condition itself blocks the pattern: place the
      // insertion after the condition, i.e. at the entry of every
      // successor (each has a single predecessor after edge splitting).
      for (BlockId S : BB.Succs) {
        assert(G.block(S).Preds.size() == 1 &&
               "successor of a branching block must have a unique pred");
        Decisions[S].FromPreds.push_back(Pat);
      }
    });
  }

  // Phase 2: rebuild the instruction lists.
  bool Changed = false;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BasicBlock &BB = G.block(B);
    const BlockDecision &D = Decisions[B];

    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size() + D.AtEntry.size() +
                      D.FromPreds.size() + D.AtEnd.size() +
                      D.BeforeBranch.size());
    auto Emit = [&](size_t Pat) {
      NewInstrs.push_back(
          Instr::assign(Pats.pattern(Pat).Lhs, Pats.pattern(Pat).Rhs));
    };
    // Predecessor-exit insertions precede this block's own entry point.
    for (size_t Pat : D.FromPreds)
      Emit(Pat);
    for (size_t Pat : D.AtEntry)
      Emit(Pat);
    const Instr *Br = BB.branchInstr();
    for (size_t Idx = 0; Idx < BB.Instrs.size(); ++Idx) {
      if (D.RemoveInstr[Idx])
        continue;
      if (Br && &BB.Instrs[Idx] == Br)
        for (size_t Pat : D.BeforeBranch)
          Emit(Pat);
      NewInstrs.push_back(BB.Instrs[Idx]);
    }
    for (size_t Pat : D.AtEnd)
      Emit(Pat);

    if (NewInstrs != BB.Instrs) {
      BB.Instrs = std::move(NewInstrs);
      G.touchBlock(B);
      Changed = true;
    }
  }
  return Changed;
}

bool am::runAssignmentHoisting(FlowGraph &G, const HoistFilter &Filter) {
  AmContext Ctx;
  return runAssignmentHoisting(G, Ctx, Filter);
}
