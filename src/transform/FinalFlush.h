//===- transform/FinalFlush.h - Phase 3: final flush -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The final flush phase (Section 4.4, Table 3): a lazy-code-motion-style
/// sinking of the temporary initializations `h_e := e` to their latest
/// safe points.  Initializations that serve no partial-redundancy
/// elimination disappear: a single immediately-following use is
/// *reconstructed* to compute e directly, and initializations whose value
/// is never used are dropped.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_FINALFLUSH_H
#define AM_TRANSFORM_FINALFLUSH_H

#include "ir/FlowGraph.h"

namespace am {

/// Runs the final flush in place (critical edges must be split).
/// Returns true if the program changed.
bool runFinalFlush(FlowGraph &G);

} // namespace am

#endif // AM_TRANSFORM_FINALFLUSH_H
