//===- transform/FinalFlush.cpp - Final flush implementation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/FinalFlush.h"
#include "analysis/PaperAnalyses.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "report/Recorder.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Trace.h"

using namespace am;

namespace {

/// True if the single use of temp \p H in \p I sits in a position where the
/// original expression can be reconstructed in place.
bool reconstructUse(Instr &I, VarId H, const Term &Expr) {
  if (I.isAssign() && I.Rhs.isVarAtom(H)) {
    I.Rhs = Expr;
    return true;
  }
  if (I.isBranch()) {
    if (I.CondL.isVarAtom(H)) {
      I.CondL = Expr;
      return true;
    }
    if (I.CondR.isVarAtom(H)) {
      I.CondR = Expr;
      return true;
    }
  }
  return false;
}

unsigned countUses(const Instr &I, VarId H) {
  unsigned N = 0;
  I.forEachUsedVar([&](VarId V) { N += (V == H); });
  return N;
}

/// A remark buffered during one block's rebuild, published only if the
/// rebuild commits (see AssignmentHoisting.cpp for the rationale).
struct PendingRemark {
  remarks::Remark R;
  size_t TempIdx; // flush-universe index, for parent linking
  bool IsSink;    // SinkInit (Parents filled after the loop)
};

} // namespace

bool am::runFinalFlush(FlowGraph &G) {
  assert(!G.hasCriticalEdges() &&
         "the final flush requires split critical edges");
  AM_PROF_SCOPE("flush");
  AM_REMARK_PASS_SCOPE("flush");
  if (AM_REMARKS_ENABLED())
    ensureInstrIds(G);
  AM_STAT_COUNTER(NumFlushes, "flush.runs");
  AM_STAT_COUNTER(NumInitsDeleted, "flush.inits_deleted");
  AM_STAT_COUNTER(NumInitsSunk, "flush.inits_sunk");
  AM_STAT_INC(NumFlushes);
  trace::TraceSpan Span("flush.run");

  FlushAnalysis Analysis = FlushAnalysis::run(G);
  const FlushUniverse &U = Analysis.universe();
  Span.arg("temps", U.size());
  if (report::RecorderSession *Rec = report::RecorderSession::current())
    Rec->captureFlush(G, Analysis);
  if (U.size() == 0)
    return false;

  // Phase 1: record every decision against the frozen graph.
  struct BlockDecision {
    FlushAnalysis::BlockPlan Plan;
    std::vector<size_t> FromPreds; // exit inits realized at succ entries
  };
  std::vector<BlockDecision> Decisions(G.numBlocks());
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    Decisions[B].Plan = Analysis.plan(B);

  // Distribute exit initializations of branching blocks to their
  // successors' entries.  (With split critical edges this cannot actually
  // occur — a successor of a multi-successor block has a unique
  // predecessor, so delayability never stops at such an exit — but the
  // fallback keeps the transformation total.)
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BlockDecision &D = Decisions[B];
    const Instr *Br = G.block(B).branchInstr();
    if (!Br || D.Plan.InitAtExit.none())
      continue;
    assert(false && "exit initialization at a branching block");
    for (size_t Idx : D.Plan.InitAtExit.setBits())
      for (BlockId S : G.block(B).Succs)
        Decisions[S].FromPreds.push_back(Idx);
    D.Plan.InitAtExit.resetAll();
  }

  // Phase 2: rebuild instruction lists.  "Sunk" counts the justified
  // initializations re-materialized at their latest points; "deleted"
  // counts original initialization instances dropped from the program —
  // the difference is the paper's "final flush deletes unjustified
  // initializations" claim, made measurable.  Both are tallied per block
  // and only accumulated when the rebuild commits, so the counters (and
  // the remark stream) describe what actually happened to the program: a
  // delete+reinsert that reproduces the identical instruction list is a
  // no-op, not one deletion plus one sink.
  bool Changed = false;
  uint64_t InitsSunk = 0, InitsDeleted = 0;
  std::vector<PendingRemark> Accepted;
  // Committed deleted-instance ids per temp; a sunk initialization
  // descends from the original instances the flush dropped.
  std::vector<std::vector<uint32_t>> DeletedIds;
  if (AM_REMARKS_ENABLED())
    DeletedIds.resize(U.size());
  BitVector IsInst = U.makeVector();
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BasicBlock &BB = G.block(B);
    BlockDecision &D = Decisions[B];

    uint64_t BlockSunk = 0, BlockDeleted = 0;
    std::vector<PendingRemark> Pending;
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size() + 4);
    auto EmitInit = [&](size_t Idx, remarks::Placement Place,
                        const char *Via) {
      ++BlockSunk;
      NewInstrs.push_back(Instr::assign(U.temp(Idx), U.expr(Idx)));
      if (AM_REMARKS_ENABLED()) {
        Instr &New = NewInstrs.back();
        New.Id = remarks::Sink::get().freshId();
        PendingRemark P;
        P.TempIdx = Idx;
        P.IsSink = true;
        P.R.K = remarks::Kind::SinkInit;
        P.R.InstrId = New.Id;
        P.R.Block = B;
        P.R.InstrIndex = static_cast<uint32_t>(NewInstrs.size() - 1);
        P.R.Place = Place;
        P.R.Pattern = printInstr(New, G.Vars);
        P.R.Var = G.Vars.name(U.temp(Idx));
        P.R.Solve = Analysis.delayability().SolveSerial;
        P.R.fact("via", Via);
        Pending.push_back(std::move(P));
      }
    };

    for (size_t Idx : D.FromPreds)
      EmitInit(Idx, remarks::Placement::FromPred, "X-INIT");

    for (size_t InstrIdx = 0; InstrIdx < BB.Instrs.size(); ++InstrIdx) {
      const Instr &I = BB.Instrs[InstrIdx];
      D.Plan.InitBefore[InstrIdx].forEachSetBit([&](size_t TempIdx) {
        EmitInit(TempIdx, remarks::Placement::None, "N-INIT");
      });
      // Delete every original initialization instance; the latest points
      // re-materialize exactly the ones that are justified.
      U.isInst(I, IsInst);
      if (IsInst.any()) {
        ++BlockDeleted;
        if (AM_REMARKS_ENABLED()) {
          PendingRemark P;
          P.TempIdx = IsInst.findFirst();
          P.IsSink = false;
          P.R.K = remarks::Kind::DeleteInit;
          P.R.InstrId = I.Id;
          P.R.Block = B;
          P.R.InstrIndex = static_cast<uint32_t>(InstrIdx);
          P.R.Terminal = true;
          P.R.Pattern = printInstr(I, G.Vars);
          P.R.Var = G.Vars.name(U.temp(P.TempIdx));
          P.R.Solve = Analysis.delayability().SolveSerial;
          P.R.fact("IS-INST", "1");
          Pending.push_back(std::move(P));
        }
        continue;
      }
      Instr NewI = I;
      D.Plan.Reconstruct[InstrIdx].forEachSetBit([&](size_t TempIdx) {
        VarId H = U.temp(TempIdx);
        if (countUses(NewI, H) == 1 &&
            reconstructUse(NewI, H, U.expr(TempIdx))) {
          if (AM_REMARKS_ENABLED()) {
            PendingRemark P;
            P.TempIdx = TempIdx;
            P.IsSink = false;
            P.R.K = remarks::Kind::Reconstruct;
            P.R.InstrId = I.Id; // the rewritten instruction keeps its id
            P.R.Block = B;
            P.R.InstrIndex = static_cast<uint32_t>(InstrIdx);
            P.R.Pattern = printInstr(I, G.Vars);
            P.R.Var = G.Vars.name(H);
            P.R.Solve = Analysis.usability().SolveSerial;
            P.R.fact("RECONSTRUCT", "1")
                .fact("rewritten", printInstr(NewI, G.Vars));
            Pending.push_back(std::move(P));
          }
          return;
        }
        // Multiple or non-replaceable uses: keep the temporary and
        // initialize it here instead.
        EmitInit(TempIdx, remarks::Placement::None, "RECONSTRUCT-multi-use");
      });
      NewInstrs.push_back(std::move(NewI));
    }

    D.Plan.InitAtExit.forEachSetBit([&](size_t TempIdx) {
      EmitInit(TempIdx, remarks::Placement::Exit, "X-INIT");
    });

    if (NewInstrs != BB.Instrs) {
      BB.Instrs = std::move(NewInstrs);
      G.touchBlock(B);
      Changed = true;
      InitsSunk += BlockSunk;
      InitsDeleted += BlockDeleted;
      if (AM_REMARKS_ENABLED()) {
        for (PendingRemark &P : Pending) {
          if (!P.IsSink && P.R.K == remarks::Kind::DeleteInit)
            DeletedIds[P.TempIdx].push_back(P.R.InstrId);
          Accepted.push_back(std::move(P));
        }
      }
    }
  }

  if (AM_REMARKS_ENABLED()) {
    for (PendingRemark &P : Accepted) {
      if (P.IsSink)
        P.R.Parents = DeletedIds[P.TempIdx];
      remarks::Sink::get().add(std::move(P.R));
    }
  }

  AM_STAT_ADD(NumInitsDeleted, InitsDeleted);
  AM_STAT_ADD(NumInitsSunk, InitsSunk);
  Span.arg("inits_deleted", InitsDeleted);
  Span.arg("inits_sunk", InitsSunk);
  Span.arg("changed", Changed ? 1 : 0);
  return Changed;
}
