//===- transform/FinalFlush.cpp - Final flush implementation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/FinalFlush.h"
#include "analysis/PaperAnalyses.h"
#include "support/Stats.h"
#include "support/Trace.h"

using namespace am;

namespace {

/// True if the single use of temp \p H in \p I sits in a position where the
/// original expression can be reconstructed in place.
bool reconstructUse(Instr &I, VarId H, const Term &Expr) {
  if (I.isAssign() && I.Rhs.isVarAtom(H)) {
    I.Rhs = Expr;
    return true;
  }
  if (I.isBranch()) {
    if (I.CondL.isVarAtom(H)) {
      I.CondL = Expr;
      return true;
    }
    if (I.CondR.isVarAtom(H)) {
      I.CondR = Expr;
      return true;
    }
  }
  return false;
}

unsigned countUses(const Instr &I, VarId H) {
  unsigned N = 0;
  I.forEachUsedVar([&](VarId V) { N += (V == H); });
  return N;
}

} // namespace

bool am::runFinalFlush(FlowGraph &G) {
  assert(!G.hasCriticalEdges() &&
         "the final flush requires split critical edges");
  AM_STAT_COUNTER(NumFlushes, "flush.runs");
  AM_STAT_COUNTER(NumInitsDeleted, "flush.inits_deleted");
  AM_STAT_COUNTER(NumInitsSunk, "flush.inits_sunk");
  AM_STAT_INC(NumFlushes);
  trace::TraceSpan Span("flush.run");

  FlushAnalysis Analysis = FlushAnalysis::run(G);
  const FlushUniverse &U = Analysis.universe();
  Span.arg("temps", U.size());
  if (U.size() == 0)
    return false;

  // Phase 1: record every decision against the frozen graph.
  struct BlockDecision {
    FlushAnalysis::BlockPlan Plan;
    std::vector<size_t> FromPreds; // exit inits realized at succ entries
  };
  std::vector<BlockDecision> Decisions(G.numBlocks());
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    Decisions[B].Plan = Analysis.plan(B);

  // Distribute exit initializations of branching blocks to their
  // successors' entries.  (With split critical edges this cannot actually
  // occur — a successor of a multi-successor block has a unique
  // predecessor, so delayability never stops at such an exit — but the
  // fallback keeps the transformation total.)
  BitVector Tmp = U.makeVector();
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BlockDecision &D = Decisions[B];
    const Instr *Br = G.block(B).branchInstr();
    if (!Br || D.Plan.InitAtExit.none())
      continue;
    assert(false && "exit initialization at a branching block");
    for (size_t Idx : D.Plan.InitAtExit.setBits())
      for (BlockId S : G.block(B).Succs)
        Decisions[S].FromPreds.push_back(Idx);
    D.Plan.InitAtExit.resetAll();
  }

  // Phase 2: rebuild instruction lists.  "Sunk" counts the justified
  // initializations re-materialized at their latest points; "deleted"
  // counts original initialization instances dropped from the program —
  // the difference is the paper's "final flush deletes unjustified
  // initializations" claim, made measurable.
  bool Changed = false;
  uint64_t InitsSunk = 0, InitsDeleted = 0;
  BitVector IsInst = U.makeVector();
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BasicBlock &BB = G.block(B);
    BlockDecision &D = Decisions[B];

    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size() + 4);
    auto EmitInit = [&](size_t Idx) {
      ++InitsSunk;
      NewInstrs.push_back(Instr::assign(U.temp(Idx), U.expr(Idx)));
    };

    for (size_t Idx : D.FromPreds)
      EmitInit(Idx);

    for (size_t InstrIdx = 0; InstrIdx < BB.Instrs.size(); ++InstrIdx) {
      const Instr &I = BB.Instrs[InstrIdx];
      D.Plan.InitBefore[InstrIdx].forEachSetBit(
          [&](size_t TempIdx) { EmitInit(TempIdx); });
      // Delete every original initialization instance; the latest points
      // re-materialize exactly the ones that are justified.
      U.isInst(I, IsInst);
      if (IsInst.any()) {
        ++InitsDeleted;
        continue;
      }
      Instr NewI = I;
      D.Plan.Reconstruct[InstrIdx].forEachSetBit([&](size_t TempIdx) {
        VarId H = U.temp(TempIdx);
        if (countUses(NewI, H) == 1 && reconstructUse(NewI, H, U.expr(TempIdx)))
          return;
        // Multiple or non-replaceable uses: keep the temporary and
        // initialize it here instead.
        EmitInit(TempIdx);
      });
      NewInstrs.push_back(std::move(NewI));
    }

    D.Plan.InitAtExit.forEachSetBit([&](size_t TempIdx) { EmitInit(TempIdx); });

    if (NewInstrs != BB.Instrs) {
      BB.Instrs = std::move(NewInstrs);
      G.touchBlock(B);
      Changed = true;
    }
  }
  AM_STAT_ADD(NumInitsDeleted, InitsDeleted);
  AM_STAT_ADD(NumInitsSunk, InitsSunk);
  Span.arg("inits_deleted", InitsDeleted);
  Span.arg("inits_sunk", InitsSunk);
  Span.arg("changed", Changed ? 1 : 0);
  return Changed;
}
