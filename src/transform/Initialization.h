//===- transform/Initialization.h - Phase 1 of the algorithm ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The initialization phase (Section 4.2): every assignment `x := t` with a
/// non-trivial right-hand side is decomposed into `h_t := t; x := h_t`,
/// where h_t is the unique temporary associated with t; every non-trivial
/// branch-condition operand e is likewise replaced by h_e after prepending
/// `h_e := e`.  This simple transformation is an admissible expression
/// motion and makes assignment motion subsume expression motion.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_INITIALIZATION_H
#define AM_TRANSFORM_INITIALIZATION_H

#include "ir/FlowGraph.h"

namespace am {

/// Runs the initialization phase in place.  Idempotent: assignments that
/// are already initializations `h_t := t` are left alone.  Returns the
/// number of decomposed computations.
unsigned runInitializationPhase(FlowGraph &G);

} // namespace am

#endif // AM_TRANSFORM_INITIALIZATION_H
