//===- transform/RedundantAssignElim.cpp - rae implementation --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/RedundantAssignElim.h"
#include "analysis/PaperAnalyses.h"
#include "transform/AssignmentMotion.h"

using namespace am;

unsigned am::runRedundantAssignmentElimination(FlowGraph &G, AmContext &Ctx) {
  Ctx.refreshPatterns(G);
  const AssignPatternTable &Pats = Ctx.patterns();
  if (Pats.size() == 0)
    return 0;
  RedundancyAnalysis Redundancy = RedundancyAnalysis::run(
      G, Pats, Ctx.redundancySolver(), Ctx.patternGeneration());

  // Record all decisions first, then mutate.
  unsigned NumEliminated = 0;
  std::vector<bool> Remove;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    auto &Instrs = G.block(B).Instrs;
    if (Instrs.empty())
      continue;
    // Instruction-level facts are only needed where an occurrence could
    // actually be eliminated.
    bool HasOccurrence = false;
    for (const Instr &I : Instrs) {
      if (Pats.occurrence(I) != AssignPatternTable::npos) {
        HasOccurrence = true;
        break;
      }
    }
    if (!HasOccurrence)
      continue;
    DataflowResult::InstrFacts Facts = Redundancy.facts(B);
    Remove.assign(Instrs.size(), false);
    unsigned RemovedHere = 0;
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      size_t Pat = Pats.occurrence(Instrs[Idx]);
      if (Pat == AssignPatternTable::npos)
        continue;
      if (Facts.Before[Idx].test(Pat)) {
        Remove[Idx] = true;
        ++RemovedHere;
      }
    }
    if (RemovedHere == 0)
      continue;
    NumEliminated += RemovedHere;
    std::vector<Instr> Kept;
    Kept.reserve(Instrs.size() - RemovedHere);
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
      if (!Remove[Idx])
        Kept.push_back(std::move(Instrs[Idx]));
    Instrs = std::move(Kept);
    G.touchBlock(B);
  }
  return NumEliminated;
}

unsigned am::runRedundantAssignmentElimination(FlowGraph &G) {
  AmContext Ctx;
  return runRedundantAssignmentElimination(G, Ctx);
}
