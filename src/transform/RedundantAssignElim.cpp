//===- transform/RedundantAssignElim.cpp - rae implementation --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/RedundantAssignElim.h"
#include "analysis/PaperAnalyses.h"

using namespace am;

unsigned am::runRedundantAssignmentElimination(FlowGraph &G) {
  AssignPatternTable Pats;
  Pats.build(G);
  if (Pats.size() == 0)
    return 0;
  RedundancyAnalysis Redundancy = RedundancyAnalysis::run(G, Pats);

  // Record all decisions first, then mutate.
  unsigned NumEliminated = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    auto &Instrs = G.block(B).Instrs;
    if (Instrs.empty())
      continue;
    DataflowResult::InstrFacts Facts = Redundancy.facts(B);
    std::vector<bool> Remove(Instrs.size(), false);
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      size_t Pat = Pats.occurrence(Instrs[Idx]);
      if (Pat == AssignPatternTable::npos)
        continue;
      if (Facts.Before[Idx].test(Pat)) {
        Remove[Idx] = true;
        ++NumEliminated;
      }
    }
    std::vector<Instr> Kept;
    Kept.reserve(Instrs.size());
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
      if (!Remove[Idx])
        Kept.push_back(std::move(Instrs[Idx]));
    Instrs = std::move(Kept);
  }
  return NumEliminated;
}
