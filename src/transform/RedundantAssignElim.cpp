//===- transform/RedundantAssignElim.cpp - rae implementation --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/RedundantAssignElim.h"
#include "analysis/PaperAnalyses.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "report/Recorder.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "transform/AssignmentMotion.h"
#include "verify/FaultInjector.h"

using namespace am;

namespace {

/// Names the occurrence that makes the kill at \p Idx redundant: the
/// nearest preceding same-pattern occurrence in the block, or — when the
/// redundancy flows in over the block entry — the predecessors whose exit
/// carries the X-REDUNDANT bit.  Purely for remark payloads.
std::string describeDefiner(const FlowGraph &G, BlockId B, size_t Idx,
                            size_t Pat, const AssignPatternTable &Pats,
                            const RedundancyAnalysis &Redundancy) {
  const auto &Instrs = G.block(B).Instrs;
  for (size_t Prev = Idx; Prev-- > 0;) {
    if (Pats.occurrence(Instrs[Prev]) == Pat)
      return "#" + std::to_string(Instrs[Prev].Id) + " (same block)";
  }
  std::string Out;
  for (BlockId P : G.block(B).Preds) {
    if (Redundancy.exit(P).test(Pat)) {
      if (!Out.empty())
        Out += ", ";
      Out += "exit(b" + std::to_string(P) + ")";
    }
  }
  return Out.empty() ? std::string("entry") : Out;
}

} // namespace

unsigned am::runRedundantAssignmentElimination(FlowGraph &G, AmContext &Ctx) {
  AM_PROF_SCOPE("rae");
  AM_REMARK_PASS_SCOPE("rae");
  if (AM_REMARKS_ENABLED())
    ensureInstrIds(G);
  Ctx.refreshPatterns(G);
  const AssignPatternTable &Pats = Ctx.patterns();
  if (Pats.size() == 0)
    return 0;
  RedundancyAnalysis Redundancy = RedundancyAnalysis::run(
      G, Pats, Ctx.redundancySolver(), Ctx.patternGeneration());
  if (report::RecorderSession *Rec = report::RecorderSession::current())
    Rec->captureRedundancy(G, Pats, Redundancy, Rec->round());

  // Record all decisions first, then mutate.
  unsigned NumEliminated = 0;
  std::vector<bool> Remove;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    auto &Instrs = G.block(B).Instrs;
    if (Instrs.empty())
      continue;
    // Instruction-level facts are only needed where an occurrence could
    // actually be eliminated.
    bool HasOccurrence = false;
    for (const Instr &I : Instrs) {
      if (Pats.occurrence(I) != AssignPatternTable::npos) {
        HasOccurrence = true;
        break;
      }
    }
    if (!HasOccurrence)
      continue;
    DataflowResult::InstrFacts Facts = Redundancy.facts(B);
    Remove.assign(Instrs.size(), false);
    unsigned RemovedHere = 0;
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      size_t Pat = Pats.occurrence(Instrs[Idx]);
      if (Pat == AssignPatternTable::npos)
        continue;
      bool Redundant = Facts.Before[Idx].test(Pat);
      if (!Redundant)
        if (fault::FaultInjector *FI = fault::FaultInjector::current())
          // rae-flip: treat one non-redundant occurrence as redundant, as
          // if a N-REDUNDANT dataflow bit were flipped.
          Redundant = FI->fire(fault::FaultClass::RaeFlipBit);
      if (Redundant) {
        Remove[Idx] = true;
        ++RemovedHere;
        if (AM_REMARKS_ENABLED()) {
          // A removal always commits (the list shrinks), so the remark
          // can be emitted directly.
          remarks::Remark R;
          R.K = remarks::Kind::Eliminate;
          R.InstrId = Instrs[Idx].Id;
          R.Block = B;
          R.InstrIndex = static_cast<uint32_t>(Idx);
          R.Terminal = true;
          R.Pattern = printInstr(Instrs[Idx], G.Vars);
          if (Instrs[Idx].isAssign())
            R.Var = G.Vars.name(Instrs[Idx].Lhs);
          R.Solve = Redundancy.solveSerial();
          R.fact("N-REDUNDANT", "1")
              .fact("defined_by",
                    describeDefiner(G, B, Idx, Pat, Pats, Redundancy));
          remarks::Sink::get().add(std::move(R));
        }
      }
    }
    if (RemovedHere == 0)
      continue;
    NumEliminated += RemovedHere;
    std::vector<Instr> Kept;
    Kept.reserve(Instrs.size() - RemovedHere);
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
      if (!Remove[Idx])
        Kept.push_back(std::move(Instrs[Idx]));
    Instrs = std::move(Kept);
    G.touchBlock(B);
  }
  return NumEliminated;
}

unsigned am::runRedundantAssignmentElimination(FlowGraph &G) {
  AmContext Ctx;
  return runRedundantAssignmentElimination(G, Ctx);
}
