//===- transform/CopyPropagation.h - CP baseline ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic copy propagation, the standard companion of expression motion
/// (Section 6: EM is usually interleaved with CP to mitigate the 3-address
/// decomposition problem; the paper's Figure 20 compares EM+CP against the
/// uniform algorithm).  Uses of x for which a copy `x := y` reaches on
/// every path are rewritten to y.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_COPYPROPAGATION_H
#define AM_TRANSFORM_COPYPROPAGATION_H

#include "ir/FlowGraph.h"

namespace am {

/// Runs copy propagation in place until no more uses can be rewritten.
/// Uses in `out` statements are left untouched (they observe variables by
/// name).  Returns the number of rewritten uses.
unsigned runCopyPropagation(FlowGraph &G);

} // namespace am

#endif // AM_TRANSFORM_COPYPROPAGATION_H
