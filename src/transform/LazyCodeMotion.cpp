//===- transform/LazyCodeMotion.cpp - EM baseline implementation -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/LazyCodeMotion.h"
#include "analysis/LcmAnalyses.h"
#include "transform/Normalize.h"

using namespace am;

FlowGraph am::runLazyCodeMotion(const FlowGraph &G, LcmStats *Stats) {
  LcmStats Local;
  LcmStats &S = Stats ? *Stats : Local;

  FlowGraph Work = G;
  removeSkips(Work);
  Work.splitCriticalEdges();

  ExprPatternTable Exprs;
  Exprs.build(Work);
  if (Exprs.size() == 0)
    return simplified(Work);

  LcmAnalysis Lcm = LcmAnalysis::run(Work, Exprs);

  // Record edge insertions.  An edge (m, n) with a single-successor m gets
  // the initialization appended at m's end; otherwise n has a unique
  // predecessor (split edges) and gets it at its entry.
  std::vector<std::vector<size_t>> AtEnd(Work.numBlocks());
  std::vector<std::vector<size_t>> AtEntry(Work.numBlocks());
  for (BlockId B = 0; B < Work.numBlocks(); ++B) {
    const auto &Succs = Work.block(B).Succs;
    for (size_t SuccIdx = 0; SuccIdx < Succs.size(); ++SuccIdx) {
      BitVector Ins = Lcm.insertOnEdge(B, SuccIdx);
      if (Ins.none())
        continue;
      for (size_t E : Ins.setBits()) {
        if (Succs.size() == 1) {
          AtEnd[B].push_back(E);
        } else {
          assert(Work.block(Succs[SuccIdx]).Preds.size() == 1 &&
                 "critical edge left unsplit");
          AtEntry[Succs[SuccIdx]].push_back(E);
        }
        ++S.InsertedOnEdges;
      }
    }
  }

  // Capture DELETE before mutating.
  std::vector<BitVector> DeleteIn(Work.numBlocks());
  for (BlockId B = 0; B < Work.numBlocks(); ++B)
    DeleteIn[B] = Lcm.deleteIn(B);

  auto TempFor = [&](size_t E) {
    ExprId Id = Work.Exprs.intern(Exprs.term(E));
    return Work.Exprs.temporary(Id, Work.Vars);
  };

  // Rewrite blocks.
  BitVector Killed(Exprs.size());
  for (BlockId B = 0; B < Work.numBlocks(); ++B) {
    BasicBlock &BB = Work.block(B);
    std::vector<Instr> NewInstrs;
    NewInstrs.reserve(BB.Instrs.size() + AtEntry[B].size() + AtEnd[B].size());
    auto EmitInit = [&](size_t E) {
      NewInstrs.push_back(Instr::assign(TempFor(E), Exprs.term(E)));
    };

    for (size_t E : AtEntry[B])
      EmitInit(E);

    // `Avail` tracks the expressions whose temporary currently holds the
    // right value: DELETE guarantees availability at entry; every kept
    // computation re-defines its temporary below.
    BitVector Avail = DeleteIn[B];
    for (const Instr &I : BB.Instrs) {
      Instr NewI = I;
      auto RewriteTerm = [&](Term &T) {
        if (!T.isNonTrivial())
          return;
        size_t E = Exprs.indexOf(T);
        if (E == ExprPatternTable::npos)
          return;
        if (!Avail.test(E)) {
          EmitInit(E);
          Avail.set(E);
        }
        T = Term::var(TempFor(E));
        ++S.RewrittenComputations;
      };
      if (NewI.isAssign()) {
        RewriteTerm(NewI.Rhs);
      } else if (NewI.isBranch()) {
        RewriteTerm(NewI.CondL);
        RewriteTerm(NewI.CondR);
      }
      NewInstrs.push_back(std::move(NewI));
      Exprs.killedBy(I, Killed);
      Avail.andNot(Killed);
    }

    for (size_t E : AtEnd[B])
      EmitInit(E);
    if (NewInstrs != BB.Instrs) {
      BB.Instrs = std::move(NewInstrs);
      Work.touchBlock(B);
    }
  }

  // `h_e := h_e` degenerates when e already was a temporary initialization;
  // normalize those away.
  removeSkips(Work);
  return simplified(Work);
}
