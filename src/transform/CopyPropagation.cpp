//===- transform/CopyPropagation.cpp - CP implementation --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/CopyPropagation.h"
#include "analysis/CopyAnalysis.h"

using namespace am;

namespace {

/// One propagation pass; returns the number of rewritten uses.
unsigned propagateOnce(FlowGraph &G) {
  CopyAnalysis Analysis = CopyAnalysis::run(G);
  const CopyUniverse &U = Analysis.universe();
  if (U.size() == 0)
    return 0;

  unsigned Rewritten = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    auto &Instrs = G.block(B).Instrs;
    if (Instrs.empty())
      continue;
    DataflowResult::InstrFacts Facts = Analysis.facts(B);
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      const BitVector &Reaching = Facts.Before[Idx];
      if (Reaching.none())
        continue;
      auto RewriteOperand = [&](Operand &O) {
        if (!O.isVar())
          return;
        for (size_t C = 0; C < U.size(); ++C) {
          if (U.dst(C) == O.Var && Reaching.test(C)) {
            O.Var = U.src(C);
            ++Rewritten;
            return;
          }
        }
      };
      Instr &I = Instrs[Idx];
      if (I.isAssign()) {
        RewriteOperand(I.Rhs.A);
        if (I.Rhs.isNonTrivial())
          RewriteOperand(I.Rhs.B);
      } else if (I.isBranch()) {
        RewriteOperand(I.CondL.A);
        if (I.CondL.isNonTrivial())
          RewriteOperand(I.CondL.B);
        RewriteOperand(I.CondR.A);
        if (I.CondR.isNonTrivial())
          RewriteOperand(I.CondR.B);
      }
    }
  }
  return Rewritten;
}

} // namespace

unsigned am::runCopyPropagation(FlowGraph &G) {
  unsigned Total = 0;
  // Copy chains (x := y; z := x; use z) resolve in at most |V| passes;
  // cap defensively.
  for (unsigned Pass = 0; Pass < G.Vars.size() + 2; ++Pass) {
    unsigned Rewritten = propagateOnce(G);
    Total += Rewritten;
    if (Rewritten == 0)
      break;
  }
  return Total;
}
