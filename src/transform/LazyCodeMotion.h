//===- transform/LazyCodeMotion.h - EM baseline ----------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression-motion baseline: lazy code motion (the paper's refs
/// [15, 16], in the Drechsler/Stadel edge-placement formulation [10]).
/// Inserts `h_e := e` on the computed insertion edges and rewrites every
/// original computation of e to go through h_e — exactly the classic EM
/// shape the paper contrasts with (Figures 6(a), 19): without the uniform
/// algorithm's final flush, single-use initializations like `h1 := a+b;
/// t := h1` remain in the program.
///
/// Computationally optimal placement; no isolation analysis (the flush
/// phase of the uniform algorithm is the paper's replacement for it).
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_LAZYCODEMOTION_H
#define AM_TRANSFORM_LAZYCODEMOTION_H

#include "ir/FlowGraph.h"

namespace am {

/// Statistics of one LCM run.
struct LcmStats {
  unsigned InsertedOnEdges = 0;
  unsigned RewrittenComputations = 0;
};

/// Runs lazy code motion on a copy of \p G (critical edges are split
/// internally) and returns the transformed program.
FlowGraph runLazyCodeMotion(const FlowGraph &G, LcmStats *Stats = nullptr);

} // namespace am

#endif // AM_TRANSFORM_LAZYCODEMOTION_H
