//===- transform/RedundantAssignElim.h - rae procedure ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rae procedure (Section 4.3.1): eliminates every assignment
/// occurrence that is redundant at its entry per the Table 2 analysis.
/// A redundant occurrence is dynamically a no-op, so all redundant
/// occurrences can be removed simultaneously without re-analysis.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_REDUNDANTASSIGNELIM_H
#define AM_TRANSFORM_REDUNDANTASSIGNELIM_H

#include "ir/FlowGraph.h"

namespace am {

class AmContext;

/// One rae pass over \p G.  Returns the number of assignments eliminated.
unsigned runRedundantAssignmentElimination(FlowGraph &G);

/// As above, against the shared state of an AM fixpoint: the context's
/// pattern table and redundancy solver are reused, so a round after a
/// small change re-solves only the dirty region.
unsigned runRedundantAssignmentElimination(FlowGraph &G, AmContext &Ctx);

} // namespace am

#endif // AM_TRANSFORM_REDUNDANTASSIGNELIM_H
