//===- transform/LocalValueNumbering.cpp - Local CSE ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/LocalValueNumbering.h"
#include "transform/Normalize.h"

#include <unordered_map>

using namespace am;

unsigned am::runLocalValueNumbering(FlowGraph &G) {
  unsigned Rewritten = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    // Available values: term hash -> (term, holder variable).
    struct Available {
      Term T;
      VarId Holder;
    };
    std::unordered_multimap<size_t, Available> Values;

    auto Invalidate = [&](VarId Def) {
      for (auto It = Values.begin(); It != Values.end();) {
        if (It->second.Holder == Def || It->second.T.usesVar(Def))
          It = Values.erase(It);
        else
          ++It;
      }
    };

    unsigned RewrittenBefore = Rewritten;
    for (Instr &I : G.block(B).Instrs) {
      if (I.isAssign() && I.Rhs.isNonTrivial()) {
        // Look up the value.
        VarId Holder = VarId::Invalid;
        auto [It, End] = Values.equal_range(hashTerm(I.Rhs));
        for (; It != End; ++It)
          if (It->second.T == I.Rhs) {
            Holder = It->second.Holder;
            break;
          }
        if (isValid(Holder)) {
          // Reuse: x := <holder> (a plain copy; x := x normalizes away).
          I.Rhs = Term::var(Holder);
          ++Rewritten;
        }
        VarId Def = I.definedVar();
        if (isValid(Def))
          Invalidate(Def);
        // Record the new value — unless the assignment consumed its own
        // left-hand side (x := x+1: the recorded term would refer to the
        // *old* x).
        if (!isValid(Holder) && I.Rhs.isNonTrivial() &&
            !I.Rhs.usesVar(I.Lhs))
          Values.emplace(hashTerm(I.Rhs), Available{I.Rhs, I.Lhs});
        continue;
      }
      VarId Def = I.definedVar();
      if (isValid(Def))
        Invalidate(Def);
    }
    if (Rewritten != RewrittenBefore)
      G.touchBlock(B);
  }
  removeSkips(G);
  return Rewritten;
}
