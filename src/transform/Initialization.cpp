//===- transform/Initialization.cpp - Phase 1 implementation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/Initialization.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "support/Profiler.h"
#include "support/Remarks.h"

using namespace am;

unsigned am::runInitializationPhase(FlowGraph &G) {
  AM_PROF_SCOPE("init");
  AM_REMARK_PASS_SCOPE("init");
  if (AM_REMARKS_ENABLED())
    ensureInstrIds(G);
  unsigned NumDecomposed = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    std::vector<Instr> NewInstrs;
    auto &Instrs = G.block(B).Instrs;
    NewInstrs.reserve(Instrs.size() * 2);
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      Instr &I = Instrs[Idx];
      if (I.isAssign() && I.Rhs.isNonTrivial()) {
        ExprId E = G.Exprs.intern(I.Rhs);
        VarId H = G.Exprs.temporary(E, G.Vars);
        if (I.Lhs == H) {
          // Already an initialization h_t := t.
          NewInstrs.push_back(I);
          continue;
        }
        NewInstrs.push_back(Instr::assign(H, I.Rhs));
        NewInstrs.push_back(Instr::assign(I.Lhs, Term::var(H)));
        if (AM_REMARKS_ENABLED()) {
          Instr &Init = NewInstrs[NewInstrs.size() - 2];
          Instr &Copy = NewInstrs.back();
          Init.Id = remarks::Sink::get().freshId();
          Copy.Id = remarks::Sink::get().freshId();
          remarks::Remark R;
          R.K = remarks::Kind::Decompose;
          R.InstrId = I.Id;
          R.Block = B;
          R.InstrIndex = static_cast<uint32_t>(Idx);
          R.Terminal = true; // the composite assignment leaves the program
          R.Pattern = printInstr(I, G.Vars);
          R.Var = G.Vars.name(I.Lhs);
          R.NewIds = {Init.Id, Copy.Id};
          R.fact("non_trivial_rhs", "1")
              .fact("temp", G.Vars.name(H))
              .fact("init", printInstr(Init, G.Vars))
              .fact("copy", printInstr(Copy, G.Vars));
          remarks::Sink::get().add(std::move(R));
        }
        ++NumDecomposed;
        continue;
      }
      if (I.isBranch()) {
        Instr Branch = I;
        auto DecomposeSide = [&](Term &Side, const char *Which) {
          if (!Side.isNonTrivial())
            return;
          ExprId E = G.Exprs.intern(Side);
          VarId H = G.Exprs.temporary(E, G.Vars);
          NewInstrs.push_back(Instr::assign(H, Side));
          if (AM_REMARKS_ENABLED()) {
            Instr &Init = NewInstrs.back();
            Init.Id = remarks::Sink::get().freshId();
            remarks::Remark R;
            R.K = remarks::Kind::Decompose;
            R.InstrId = I.Id;
            R.Block = B;
            R.InstrIndex = static_cast<uint32_t>(Idx);
            // The branch itself survives (with the operand rewritten).
            R.Terminal = false;
            R.Pattern = printInstr(I, G.Vars);
            R.Var = G.Vars.name(H);
            R.NewIds = {Init.Id};
            R.fact("non_trivial_operand", Which)
                .fact("temp", G.Vars.name(H))
                .fact("init", printInstr(Init, G.Vars));
            remarks::Sink::get().add(std::move(R));
          }
          Side = Term::var(H);
          ++NumDecomposed;
        };
        DecomposeSide(Branch.CondL, "left");
        DecomposeSide(Branch.CondR, "right");
        NewInstrs.push_back(std::move(Branch));
        continue;
      }
      NewInstrs.push_back(I);
    }
    if (NewInstrs != Instrs) {
      Instrs = std::move(NewInstrs);
      G.touchBlock(B);
    }
  }
  return NumDecomposed;
}
