//===- transform/Initialization.cpp - Phase 1 implementation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/Initialization.h"

using namespace am;

unsigned am::runInitializationPhase(FlowGraph &G) {
  unsigned NumDecomposed = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    std::vector<Instr> NewInstrs;
    auto &Instrs = G.block(B).Instrs;
    NewInstrs.reserve(Instrs.size() * 2);
    for (Instr &I : Instrs) {
      if (I.isAssign() && I.Rhs.isNonTrivial()) {
        ExprId E = G.Exprs.intern(I.Rhs);
        VarId H = G.Exprs.temporary(E, G.Vars);
        if (I.Lhs == H) {
          // Already an initialization h_t := t.
          NewInstrs.push_back(I);
          continue;
        }
        NewInstrs.push_back(Instr::assign(H, I.Rhs));
        NewInstrs.push_back(Instr::assign(I.Lhs, Term::var(H)));
        ++NumDecomposed;
        continue;
      }
      if (I.isBranch()) {
        auto DecomposeSide = [&](Term &Side) {
          if (!Side.isNonTrivial())
            return;
          ExprId E = G.Exprs.intern(Side);
          VarId H = G.Exprs.temporary(E, G.Vars);
          NewInstrs.push_back(Instr::assign(H, Side));
          Side = Term::var(H);
          ++NumDecomposed;
        };
        Instr Branch = I;
        DecomposeSide(Branch.CondL);
        DecomposeSide(Branch.CondR);
        NewInstrs.push_back(std::move(Branch));
        continue;
      }
      NewInstrs.push_back(I);
    }
    if (NewInstrs != Instrs) {
      Instrs = std::move(NewInstrs);
      G.touchBlock(B);
    }
  }
  return NumDecomposed;
}
