//===- transform/Normalize.cpp - Skip and self-assign cleanup ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "transform/Normalize.h"

using namespace am;

unsigned am::removeSkips(FlowGraph &G) {
  unsigned Removed = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    auto &Instrs = G.block(B).Instrs;
    size_t Before = Instrs.size();
    std::erase_if(Instrs, [](const Instr &I) {
      return I.isSkip() || (I.isAssign() && I.Rhs.isVarAtom(I.Lhs));
    });
    if (Instrs.size() != Before)
      G.touchBlock(B);
    Removed += static_cast<unsigned>(Before - Instrs.size());
  }
  return Removed;
}
