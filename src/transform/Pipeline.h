//===- transform/Pipeline.h - Named pass pipelines --------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes the library's passes from a comma-separated specification,
/// e.g. "lcm,cp,lcm" (the paper's Section 6 EM+CP interleaving) or
/// "uniform,pde".  Used by the `amopt` CLI (tools/amopt.cpp) via
/// `amopt --passes=p1,p2,...` — optionally with `--stats[=json]` and
/// `--trace=out.json` to observe the run — and by experiments that
/// compare pass orders.
///
/// Known pass names:
///   uniform      the full paper algorithm
///   am           assignment motion only (no init/flush)
///   init         the initialization phase alone
///   rae          one redundant-assignment-elimination pass
///   aht          one assignment-hoisting pass
///   flush        the final flush alone
///   lcm | bcm    lazy / busy code motion
///   cp           copy propagation
///   lvn          local value numbering
///   pde          partial dead code elimination
///   split        critical-edge splitting
///   simplify     drop skips and empty synthetic blocks
///
/// Guarded execution (PipelineOptions::Guarded): each pass's input is
/// snapshotted, the pass runs, then the IR invariants are verified
/// (verify/GraphVerifier.h) and semantic equivalence against the snapshot
/// is spot-checked via the interpreter.  A failing pass is *rolled back* —
/// the graph reverts to the snapshot, the PassRecord is marked RolledBack
/// with the violation attached, a remark and a `pipeline.rollbacks` stat
/// are emitted — and the remaining passes still run: one bad pass no
/// longer poisons the run.  PipelineLimits bound AM rounds, instruction
/// growth, solver sweeps and wall clock so adversarial inputs exhaust a
/// budget with a clean diagnostic and partial records instead of spinning.
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_PIPELINE_H
#define AM_TRANSFORM_PIPELINE_H

#include "ir/FlowGraph.h"
#include "support/Diag.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace am {

class AmContext;

namespace telemetry {
class Session;
} // namespace telemetry

/// How one pass of a run ended.
enum class PassStatus : uint8_t {
  Ok,             ///< Ran and committed.
  RolledBack,     ///< Guarded run detected corruption; input restored.
  LimitExhausted, ///< Pass committed but tripped a resource budget; the
                  ///< pipeline stopped after it.
};

const char *passStatusName(PassStatus S);

/// Structured record of one executed pass: what it was, how long it took,
/// how it changed the IR, and how hard the dataflow solver worked for it.
/// Benches and tests consume these instead of parsing log strings.
struct PassRecord {
  std::string Name;
  /// Free-text detail, e.g. "3 AM iterations, 4 eliminated".
  std::string Detail;
  /// Wall-clock time of the pass body.
  double WallMs = 0.0;

  /// Outcome of the pass under guarded execution (always Ok unguarded).
  PassStatus Status = PassStatus::Ok;
  /// For RolledBack/LimitExhausted: what the guard detected.
  std::string Violation;

  // IR deltas (before -> after this pass).
  uint64_t BlocksBefore = 0, BlocksAfter = 0;
  uint64_t InstrsBefore = 0, InstrsAfter = 0;
  uint64_t AssignsBefore = 0, AssignsAfter = 0;

  // Dataflow solver work attributed to this pass (deltas of the stats
  // registry's dfa.* counters around the pass body).
  uint64_t DfaSolves = 0;
  uint64_t DfaSweeps = 0;
  uint64_t DfaBlocksProcessed = 0;

  // AM fixpoint behaviour (uniform/am passes; zero elsewhere).
  uint64_t AmRounds = 0;
  uint64_t AmEliminated = 0;
  uint64_t AmHoistRounds = 0;

  // Final-flush behaviour (uniform/flush passes; zero elsewhere).
  uint64_t FlushInitsDeleted = 0;
  uint64_t FlushInitsSunk = 0;
};

/// Resource budgets for one pipeline run.  A zero field means unlimited.
/// When a budget is exhausted the pipeline stops with a clean diagnostic
/// and partial PassRecords (PipelineResult::LimitsExhausted) instead of
/// spinning or growing without bound.
struct PipelineLimits {
  /// Cap on AM fixpoint iterations per uniform/am pass.
  unsigned MaxAmRounds = 0;
  /// Max instruction count as a factor of the input's ("2.5" = the
  /// program may grow to 2.5x its input size).
  double MaxInstrGrowth = 0.0;
  /// Cumulative dataflow solver sweep budget across the whole run
  /// (requires the stats registry to be enabled, which it is by default).
  uint64_t MaxSolverSweeps = 0;
  /// Cumulative wall-clock budget in milliseconds.
  double MaxWallMs = 0.0;

  bool any() const {
    return MaxAmRounds != 0 || MaxInstrGrowth > 0.0 ||
           MaxSolverSweeps != 0 || MaxWallMs > 0.0;
  }
};

/// Parses a limits spec like "am-rounds=8,growth=2.5,sweeps=100000,
/// wall-ms=5000".  Unknown keys or malformed numbers are diagnostics, not
/// aborts.
diag::Expected<PipelineLimits> parseLimitsSpec(const std::string &Spec);

/// Execution mode of runPipeline.
struct PipelineOptions {
  /// Snapshot each pass's input, verify IR invariants and spot-check
  /// semantic equivalence after the pass body, and roll back on failure.
  bool Guarded = false;
  /// Verify IR invariants after every pass without snapshots or rollback;
  /// the pipeline stops at the first violation (a corrupt graph must not
  /// feed later passes).  Implied by Guarded.
  bool VerifyIR = false;
  /// Resource budgets (zero fields = unlimited).
  PipelineLimits Limits;
  /// Guarded equivalence spot-check: number of pseudo-random input rounds
  /// per pass and the interpreter step bound per round.  The bound keeps
  /// the check cheap on non-terminating inputs (both graphs run the same
  /// bounded prefix and compare traces); injected miscompiles diverge
  /// within a few hundred steps, so a small budget loses no detection.
  unsigned EquivalenceRounds = 4;
  uint64_t EquivalenceMaxSteps = 20000;
  /// Telemetry session to run under.  When set, runPipeline installs it
  /// for the duration of the run, so stats, remarks, profiler scopes and
  /// the recorder hook all land in this job's session instead of the
  /// calling thread's current one.  Null inherits the caller's session
  /// (or the process default) — the pre-session behaviour.
  telemetry::Session *Telemetry = nullptr;
  /// Worker threads for the batch-parallel dataflow solves (see
  /// support/ThreadPool.h).  0 inherits the process policy (`--threads` /
  /// AM_THREADS / 1); any other value pins the count for this run.  The
  /// optimized output and all machine-independent counters are identical
  /// for every value — threads only change wall-clock.
  unsigned Threads = 0;
  /// External cancellation flag (a service watchdog's deadline, see
  /// support/Service.h).  Checked at every pass boundary: once set, the
  /// pipeline stops before the next pass with LimitsExhausted and a
  /// "canceled" diagnostic — the graph keeps only fully committed (and,
  /// under Guarded, verified) passes, never a half-applied one.  Null
  /// means no external cancellation.
  const std::atomic<bool> *Cancel = nullptr;
  /// Caller-owned AM analysis context reused across the run's uniform/
  /// am/rae/aht passes *and* across runs (the service's per-worker
  /// context).  Each pass rebinding resets the context's validity (the
  /// graph identity changes between passes and requests) but keeps its
  /// arenas and scratch capacity, so a warm worker stops allocating.
  /// Null uses throwaway contexts — the pre-service behaviour.  Outputs
  /// are byte-identical either way.
  AmContext *Context = nullptr;
};

/// Outcome of a pipeline run.
struct PipelineResult {
  FlowGraph Graph;
  /// One human-readable line per executed pass.
  std::vector<std::string> Log;
  /// One structured record per executed pass, parallel to Log; implicit
  /// on-demand edge splitting records as a pass named "(split)".
  std::vector<PassRecord> Records;
  /// Empty on success; otherwise names the unknown pass.
  std::string Error;
  /// Structured form of Error plus guarded-mode failures (rollbacks are
  /// *not* errors; this is set for spec errors, invalid input graphs,
  /// verify-only violations and budget exhaustion).
  diag::Diagnostic Diag;
  /// Number of passes rolled back under guarded execution.
  unsigned RollbackCount = 0;
  /// True if the run stopped because a PipelineLimits budget was hit.
  bool LimitsExhausted = false;

  bool ok() const { return Error.empty(); }
};

/// Splits \p Spec on commas and validates every name.  The empty pipeline
/// is a diagnostic, as is any unknown pass name.
diag::Expected<std::vector<std::string>> parsePassSpec(const std::string &Spec);

/// Splits \p Spec on commas and runs each named pass over \p G in order.
/// Unknown names abort before anything runs.
PipelineResult runPipeline(const FlowGraph &G, const std::string &Spec);

/// As above with explicit execution options (guarded mode, IR
/// verification, resource limits).
PipelineResult runPipeline(const FlowGraph &G, const std::string &Spec,
                           const PipelineOptions &Opts);

/// True if \p Name is a known pass name.
bool isKnownPass(const std::string &Name);

/// Renders \p Records as a JSON array (one object per pass, snake_case
/// keys mirroring the PassRecord fields) — the `amopt --stats=json`
/// "passes" payload.
std::string passRecordsJson(const std::vector<PassRecord> &Records);

} // namespace am

#endif // AM_TRANSFORM_PIPELINE_H
