//===- transform/Pipeline.h - Named pass pipelines --------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes the library's passes from a comma-separated specification,
/// e.g. "lcm,cp,lcm" (the paper's Section 6 EM+CP interleaving) or
/// "uniform,pde".  Used by `amopt --passes=...` and by experiments that
/// compare pass orders.
///
/// Known pass names:
///   uniform      the full paper algorithm
///   am           assignment motion only (no init/flush)
///   init         the initialization phase alone
///   rae          one redundant-assignment-elimination pass
///   aht          one assignment-hoisting pass
///   flush        the final flush alone
///   lcm | bcm    lazy / busy code motion
///   cp           copy propagation
///   lvn          local value numbering
///   pde          partial dead code elimination
///   split        critical-edge splitting
///   simplify     drop skips and empty synthetic blocks
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_PIPELINE_H
#define AM_TRANSFORM_PIPELINE_H

#include "ir/FlowGraph.h"

#include <string>
#include <vector>

namespace am {

/// Outcome of a pipeline run.
struct PipelineResult {
  FlowGraph Graph;
  /// One human-readable line per executed pass.
  std::vector<std::string> Log;
  /// Empty on success; otherwise names the unknown pass.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Splits \p Spec on commas and runs each named pass over \p G in order.
/// Unknown names abort before anything runs.
PipelineResult runPipeline(const FlowGraph &G, const std::string &Spec);

/// True if \p Name is a known pass name.
bool isKnownPass(const std::string &Name);

} // namespace am

#endif // AM_TRANSFORM_PIPELINE_H
