//===- transform/Pipeline.h - Named pass pipelines --------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes the library's passes from a comma-separated specification,
/// e.g. "lcm,cp,lcm" (the paper's Section 6 EM+CP interleaving) or
/// "uniform,pde".  Used by the `amopt` CLI (tools/amopt.cpp) via
/// `amopt --passes=p1,p2,...` — optionally with `--stats[=json]` and
/// `--trace=out.json` to observe the run — and by experiments that
/// compare pass orders.
///
/// Known pass names:
///   uniform      the full paper algorithm
///   am           assignment motion only (no init/flush)
///   init         the initialization phase alone
///   rae          one redundant-assignment-elimination pass
///   aht          one assignment-hoisting pass
///   flush        the final flush alone
///   lcm | bcm    lazy / busy code motion
///   cp           copy propagation
///   lvn          local value numbering
///   pde          partial dead code elimination
///   split        critical-edge splitting
///   simplify     drop skips and empty synthetic blocks
///
//===----------------------------------------------------------------------===//

#ifndef AM_TRANSFORM_PIPELINE_H
#define AM_TRANSFORM_PIPELINE_H

#include "ir/FlowGraph.h"

#include <cstdint>
#include <string>
#include <vector>

namespace am {

/// Structured record of one executed pass: what it was, how long it took,
/// how it changed the IR, and how hard the dataflow solver worked for it.
/// Benches and tests consume these instead of parsing log strings.
struct PassRecord {
  std::string Name;
  /// Free-text detail, e.g. "3 AM iterations, 4 eliminated".
  std::string Detail;
  /// Wall-clock time of the pass body.
  double WallMs = 0.0;

  // IR deltas (before -> after this pass).
  uint64_t BlocksBefore = 0, BlocksAfter = 0;
  uint64_t InstrsBefore = 0, InstrsAfter = 0;
  uint64_t AssignsBefore = 0, AssignsAfter = 0;

  // Dataflow solver work attributed to this pass (deltas of the stats
  // registry's dfa.* counters around the pass body).
  uint64_t DfaSolves = 0;
  uint64_t DfaSweeps = 0;
  uint64_t DfaBlocksProcessed = 0;

  // AM fixpoint behaviour (uniform/am passes; zero elsewhere).
  uint64_t AmRounds = 0;
  uint64_t AmEliminated = 0;
  uint64_t AmHoistRounds = 0;

  // Final-flush behaviour (uniform/flush passes; zero elsewhere).
  uint64_t FlushInitsDeleted = 0;
  uint64_t FlushInitsSunk = 0;
};

/// Outcome of a pipeline run.
struct PipelineResult {
  FlowGraph Graph;
  /// One human-readable line per executed pass.
  std::vector<std::string> Log;
  /// One structured record per executed pass, parallel to Log; implicit
  /// on-demand edge splitting records as a pass named "(split)".
  std::vector<PassRecord> Records;
  /// Empty on success; otherwise names the unknown pass.
  std::string Error;

  bool ok() const { return Error.empty(); }
};

/// Splits \p Spec on commas and runs each named pass over \p G in order.
/// Unknown names abort before anything runs.
PipelineResult runPipeline(const FlowGraph &G, const std::string &Spec);

/// True if \p Name is a known pass name.
bool isKnownPass(const std::string &Name);

/// Renders \p Records as a JSON array (one object per pass, snake_case
/// keys mirroring the PassRecord fields) — the `amopt --stats=json`
/// "passes" payload.
std::string passRecordsJson(const std::vector<PassRecord> &Records);

} // namespace am

#endif // AM_TRANSFORM_PIPELINE_H
