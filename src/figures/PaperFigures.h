//===- figures/PaperFigures.h - The paper's example programs ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every example program from the paper's figures, as FlowGraph builders.
/// These drive the per-figure tests and the figure benches (the paper's
/// "evaluation" is its worked examples).  Where a figure's topology is
/// only partially recoverable from the text (Figure 7's 12-node drawing),
/// the builder constructs a topology that exhibits exactly the claims the
/// paper makes about it; the doc comment on each builder states what must
/// hold.
///
//===----------------------------------------------------------------------===//

#ifndef AM_FIGURES_PAPERFIGURES_H
#define AM_FIGURES_PAPERFIGURES_H

#include "ir/FlowGraph.h"

namespace am {

/// Figure 1(a)/2(a) topology: start branches to a straight block
/// (`z := a+b; x := a+b`) and to a self-loop block (`x := a+b; y := x+y`),
/// joining at `out(...)`.  Figure 1 motivates EM (a+b evaluated once per
/// path via a temporary), Figure 2 motivates AM (x := a+b hoisted to the
/// start, the loop copy eliminated).
FlowGraph figure1a();

/// Same graph with `out(x, y)` (Figure 2's variant).
FlowGraph figure2a();

/// Expected AM result for Figure 2(b): `x := a+b` in node 1 only.
FlowGraph figure2b();

/// Figure 4, the running example.
FlowGraph figure4();

/// Figure 5 = Figure 15: the expected result of the full uniform
/// algorithm on Figure 4.
FlowGraph figure5();

/// Figure 7-style program: a first loop containing a definition of x, a
/// partially redundant `x := y+z` before it, and occurrences below an
/// irreducible two-entry loop.  The claims to reproduce: the occurrences
/// below are hoisted across the irreducible loop to the first loop's exit
/// edge; the hoisted copy remains partially redundant; nothing is moved
/// into the first loop.
FlowGraph figure7();

/// Figure 8: `x := y+z` at the join is partially redundant but blocked by
/// `a := x+y`; restricted (profitable-only) AM cannot touch it.
FlowGraph figure8();

/// Figure 9(b): the expected unrestricted-AM result for Figure 8.
FlowGraph figure9b();

/// Figure 10(a): the critical-edge example (two entries into the join,
/// one of them from a branch).
FlowGraph figure10a();

/// Figure 16: the example showing full assignment- and temporary-
/// optimality are unattainable (two incomparable expression-optimal
/// solutions, Figure 17(a)/(b)).
FlowGraph figure16();

/// Figure 17(a)-style expression-optimal variant of Figure 16 (temporary
/// for c+d initialized in both branches; assignment counts 4/4 on the two
/// paths).
FlowGraph figure17a();

/// Figure 17(b)-style expression-optimal variant (copy in one branch;
/// assignment counts 3/5-style, incomparable with 17(a)).
FlowGraph figure17b();

/// Figure 18(b): the 3-address decomposition of the loop-invariant
/// `x := a+b+c` (`t := a+b; x := t+c` inside a loop).  EM alone gets
/// stuck (Figure 19), EM+CP reaches Figure 20(a), uniform EM&AM empties
/// the loop entirely (Figure 20(b)).
FlowGraph figure18b();

} // namespace am

#endif // AM_FIGURES_PAPERFIGURES_H
