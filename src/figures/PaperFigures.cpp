//===- figures/PaperFigures.cpp - Figure program builders ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "figures/PaperFigures.h"
#include "parser/Parser.h"

#include <cstdio>
#include <cstdlib>

using namespace am;

namespace {

/// Parses a figure program; figure sources are compiled-in and must parse.
FlowGraph mustParse(const char *Src) {
  ParseResult R = parseCfg(Src);
  if (!R.ok()) {
    std::fprintf(stderr, "internal figure program failed to parse: %s\n",
                 R.Error.c_str());
    std::abort();
  }
  return std::move(R.Graph);
}

} // namespace

FlowGraph am::figure1a() {
  return mustParse(R"(
graph {
b1:
  br b2 b3
b2:
  z := a + b
  x := a + b
  goto b4
b3:
  x := a + b
  y := x + y
  br b3 b4
b4:
  out(x, y, z)
  halt
}
)");
}

FlowGraph am::figure2a() {
  return mustParse(R"(
graph {
b1:
  br b2 b3
b2:
  z := a + b
  x := a + b
  goto b4
b3:
  x := a + b
  y := x + y
  br b3 b4
b4:
  out(x, y)
  halt
}
)");
}

FlowGraph am::figure2b() {
  return mustParse(R"(
graph {
b1:
  x := a + b
  br b2 b3
b2:
  z := a + b
  goto b4
b3:
  y := x + y
  br b3 b4
b4:
  out(x, y)
  halt
}
)");
}

FlowGraph am::figure4() {
  return mustParse(R"(
graph {
b1:
  y := c + d
  goto b2
b2:
  if x + z > y + i then b3 else b4
b3:
  y := c + d
  x := y + z
  i := i + x
  goto b2
b4:
  x := y + z
  x := c + d
  out(i, x, y)
  halt
}
)");
}

FlowGraph am::figure5() {
  return mustParse(R"(
graph {
temp h1, h2
b1:
  h1 := c + d
  y := h1
  h2 := x + z
  x := y + z
  goto b2
b2:
  if h2 > y + i then b3 else b4
b3:
  i := i + x
  h2 := x + z
  goto b2
b4:
  x := h1
  out(i, x, y)
  halt
}
)");
}

FlowGraph am::figure7() {
  // Reconstructed 10-node topology exhibiting the Figure 7 claims: a first
  // loop (b2/b3) whose body kills x, an up-front occurrence in b1, and
  // occurrences in b5 / b8 / b9 below the irreducible two-entry loop
  // {b7, b8}.
  return mustParse(R"(
graph {
b1:
  x := y + z
  br b2 b4
b2:
  br b3 b4
b3:
  x := 1
  goto b2
b4:
  br b5 b6
b5:
  x := y + z
  goto b9
b6:
  br b7 b8
b7:
  br b8 b9
b8:
  x := y + z
  br b7 b9
b9:
  x := y + z
  goto b10
b10:
  out(x)
  halt
}
)");
}

FlowGraph am::figure8() {
  return mustParse(R"(
graph {
b1:
  br b2 b3
b2:
  x := y + z
  goto b4
b3:
  goto b4
b4:
  a := x + y
  x := y + z
  out(a, x)
  halt
}
)");
}

FlowGraph am::figure9b() {
  return mustParse(R"(
graph {
b1:
  br b2 b3
b2:
  x := y + z
  a := x + y
  goto b4
b3:
  a := x + y
  x := y + z
  goto b4
b4:
  out(a, x)
  halt
}
)");
}

FlowGraph am::figure10a() {
  return mustParse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  br b3 b5
b3:
  x := a + b
  goto b6
b5:
  goto b6
b6:
  out(x)
  halt
}
)");
}

FlowGraph am::figure16() {
  return mustParse(R"(
graph {
b0:
  br b1 b2
b1:
  a := c + d
  goto b3
b2:
  b := c + d
  goto b3
b3:
  br b4 b5
b4:
  goto b6
b5:
  x := 7
  goto b6
b6:
  x := a + b
  a := c + d
  out(a, b, x)
  halt
}
)");
}

FlowGraph am::figure17a() {
  return mustParse(R"(
graph {
temp h
b0:
  br b1 b2
b1:
  h := c + d
  a := h
  goto b3
b2:
  h := c + d
  b := h
  goto b3
b3:
  br b4 b5
b4:
  goto b6
b5:
  x := 7
  goto b6
b6:
  x := a + b
  a := h
  out(a, b, x)
  halt
}
)");
}

FlowGraph am::figure17b() {
  return mustParse(R"(
graph {
temp h, h2
b0:
  br b1 b2
b1:
  a := c + d
  h := a + b
  goto b3
b2:
  h2 := c + d
  b := h2
  h := a + b
  a := h2
  goto b3
b3:
  br b4 b5
b4:
  goto b6
b5:
  x := 7
  goto b6
b6:
  x := h
  out(a, b, x)
  halt
}
)");
}

FlowGraph am::figure18b() {
  return mustParse(R"(
graph {
b1:
  goto b2
b2:
  t := a + b
  x := t + c
  br b2 b3
b3:
  out(x)
  halt
}
)");
}
