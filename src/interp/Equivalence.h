//===- interp/Equivalence.h - Semantic-equivalence checking ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observational-equivalence checking between a program and its
/// transformed version: identical `out` traces on the same inputs and the
/// same nondeterministic choices.  Used pervasively by the property tests
/// (every admissible EM/AM transformation preserves semantics).
///
//===----------------------------------------------------------------------===//

#ifndef AM_INTERP_EQUIVALENCE_H
#define AM_INTERP_EQUIVALENCE_H

#include "interp/Interpreter.h"

#include <string>

namespace am {

/// Result of one equivalence check.
struct EquivalenceReport {
  bool Equivalent = false;
  std::string Detail;
  ExecResult Lhs;
  ExecResult Rhs;
};

/// Executes both graphs on the same inputs/seed and compares observable
/// behaviour: both must finish and produce identical output traces (if
/// both trap, one trace must be a prefix of the other — code motion may
/// legally move a trapping computation across writes).
EquivalenceReport checkEquivalent(
    const FlowGraph &A, const FlowGraph &B,
    const std::unordered_map<std::string, int64_t> &Inputs,
    uint64_t NondetSeed = 0,
    Interpreter::Options Opts = Interpreter::Options());

} // namespace am

#endif // AM_INTERP_EQUIVALENCE_H
