//===- interp/Interpreter.h - Reference interpreter ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic reference interpreter for flow graphs.  It is the
/// measurement substrate for the paper's dynamic claims: it counts
/// expression evaluations (the quantity Theorem 5.2 minimizes), assignment
/// executions (Theorem 5.3) and assignments to temporaries (Theorem 5.4),
/// and captures the `out` trace used to check semantic preservation of
/// every transformation.
///
/// Arithmetic is 64-bit two's-complement wrapping; division by zero traps.
/// Blocks with several successors and no branch condition (the paper's
/// nondeterministic branching) are resolved by a seeded RNG keyed on the
/// order of nondeterministic choices, so the same seed drives corresponding
/// executions of a program and its transformed version through the same
/// paths.
///
//===----------------------------------------------------------------------===//

#ifndef AM_INTERP_INTERPRETER_H
#define AM_INTERP_INTERPRETER_H

#include "ir/FlowGraph.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace am {

/// Execution counters.
struct ExecStats {
  /// Non-trivial term evaluations (assignment right-hand sides and branch
  /// condition operands with an operator).
  uint64_t ExprEvaluations = 0;
  /// Executed assignments (including temporaries, excluding skip).
  uint64_t AssignExecutions = 0;
  /// Executed assignments whose left-hand side is a compiler temporary.
  uint64_t TempAssignExecutions = 0;
  /// Executed instructions.
  uint64_t Steps = 0;
  /// Executed conditional branches.
  uint64_t BranchesExecuted = 0;
  /// Block-to-block transfers taken.
  uint64_t BlocksEntered = 0;
};

/// Outcome of one execution.
struct ExecResult {
  enum class Status { Finished, Trapped, StepLimit };

  Status St = Status::Finished;
  /// Values written by `out`, in order.
  std::vector<int64_t> Output;
  ExecStats Stats;
  std::string TrapMessage;

  bool finished() const { return St == Status::Finished; }
};

/// Interpreter entry point.
struct Interpreter {
  struct Options {
    uint64_t MaxSteps = 1u << 22;
  };

  /// Executes \p G with the given named initial values (missing names
  /// default to 0) and a seed for nondeterministic branches.
  static ExecResult
  execute(const FlowGraph &G,
          const std::unordered_map<std::string, int64_t> &Inputs,
          uint64_t NondetSeed, Options Opts);

  static ExecResult
  execute(const FlowGraph &G,
          const std::unordered_map<std::string, int64_t> &Inputs,
          uint64_t NondetSeed = 0) {
    return execute(G, Inputs, NondetSeed, Options());
  }
};

} // namespace am

#endif // AM_INTERP_INTERPRETER_H
