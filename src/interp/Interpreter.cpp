//===- interp/Interpreter.cpp - Interpreter implementation -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include <random>

using namespace am;

namespace {

int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}

} // namespace

ExecResult Interpreter::execute(
    const FlowGraph &G, const std::unordered_map<std::string, int64_t> &Inputs,
    uint64_t NondetSeed, Options Opts) {
  ExecResult R;
  std::vector<int64_t> Env(G.Vars.size(), 0);
  for (uint32_t V = 0; V < G.Vars.size(); ++V) {
    auto It = Inputs.find(G.Vars.name(makeVarId(V)));
    if (It != Inputs.end())
      Env[V] = It->second;
  }
  std::mt19937_64 Nondet(NondetSeed);

  auto ReadOperand = [&](const Operand &O) {
    return O.isVar() ? Env[index(O.Var)] : O.Const;
  };

  bool Trapped = false;
  auto EvalTerm = [&](const Term &T) -> int64_t {
    if (!T.isNonTrivial())
      return ReadOperand(T.A);
    ++R.Stats.ExprEvaluations;
    int64_t A = ReadOperand(T.A);
    int64_t B = ReadOperand(T.B);
    switch (T.Op) {
    case OpCode::Add:
      return wrapAdd(A, B);
    case OpCode::Sub:
      return wrapSub(A, B);
    case OpCode::Mul:
      return wrapMul(A, B);
    case OpCode::Div:
      if (B == 0) {
        Trapped = true;
        R.TrapMessage = "division by zero";
        return 0;
      }
      if (A == INT64_MIN && B == -1)
        return INT64_MIN; // wrap instead of UB
      return A / B;
    case OpCode::None:
      break;
    }
    return 0;
  };

  auto Compare = [](int64_t A, RelOp Rel, int64_t B) {
    switch (Rel) {
    case RelOp::Lt:
      return A < B;
    case RelOp::Le:
      return A <= B;
    case RelOp::Gt:
      return A > B;
    case RelOp::Ge:
      return A >= B;
    case RelOp::Eq:
      return A == B;
    case RelOp::Ne:
      return A != B;
    }
    return false;
  };

  BlockId Cur = G.start();
  while (true) {
    ++R.Stats.BlocksEntered;
    const BasicBlock &BB = G.block(Cur);
    // Default transfer; a branch instruction overrides it.
    size_t TakenSucc = 0;

    for (const Instr &I : BB.Instrs) {
      if (++R.Stats.Steps > Opts.MaxSteps) {
        R.St = ExecResult::Status::StepLimit;
        return R;
      }
      switch (I.K) {
      case Instr::Kind::Skip:
        break;
      case Instr::Kind::Assign: {
        int64_t V = EvalTerm(I.Rhs);
        if (Trapped) {
          R.St = ExecResult::Status::Trapped;
          return R;
        }
        Env[index(I.Lhs)] = V;
        ++R.Stats.AssignExecutions;
        if (G.Vars.isTemp(I.Lhs))
          ++R.Stats.TempAssignExecutions;
        break;
      }
      case Instr::Kind::Out:
        for (VarId V : I.OutVars)
          R.Output.push_back(Env[index(V)]);
        break;
      case Instr::Kind::Branch: {
        int64_t L = EvalTerm(I.CondL);
        int64_t Rv = Trapped ? 0 : EvalTerm(I.CondR);
        if (Trapped) {
          R.St = ExecResult::Status::Trapped;
          return R;
        }
        ++R.Stats.BranchesExecuted;
        TakenSucc = Compare(L, I.Rel, Rv) ? 0 : 1;
        break;
      }
      }
    }

    if (BB.Succs.empty()) {
      R.St = Cur == G.end() ? ExecResult::Status::Finished
                            : ExecResult::Status::Trapped;
      if (Cur != G.end())
        R.TrapMessage = "fell off a block with no successors";
      return R;
    }
    if (!BB.branchInstr() && BB.Succs.size() > 1)
      TakenSucc = Nondet() % BB.Succs.size();
    Cur = BB.Succs[TakenSucc];
  }
}
