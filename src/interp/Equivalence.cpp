//===- interp/Equivalence.cpp - Equivalence implementation -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "interp/Equivalence.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <algorithm>

using namespace am;

EquivalenceReport am::checkEquivalent(
    const FlowGraph &A, const FlowGraph &B,
    const std::unordered_map<std::string, int64_t> &Inputs,
    uint64_t NondetSeed, Interpreter::Options Opts) {
  AM_STAT_COUNTER(NumChecks, "equivalence.checks");
  AM_STAT_TIMER(CheckTimer, "equivalence.check_ns");
  AM_STAT_INC(NumChecks);
  AM_STAT_TIME_SCOPE(CheckTimer);
  trace::TraceSpan Span("equivalence.check");
  EquivalenceReport Rep;
  Rep.Lhs = Interpreter::execute(A, Inputs, NondetSeed, Opts);
  Rep.Rhs = Interpreter::execute(B, Inputs, NondetSeed, Opts);

  using Status = ExecResult::Status;
  if (Rep.Lhs.St == Status::Finished && Rep.Rhs.St == Status::Finished) {
    if (Rep.Lhs.Output == Rep.Rhs.Output) {
      Rep.Equivalent = true;
      return Rep;
    }
    Rep.Detail = "finished with different output traces";
    return Rep;
  }
  // A trap or a step-limit cutoff truncates the trace at a point that may
  // legally shift under code motion; require prefix agreement.
  bool LhsPartial = Rep.Lhs.St != Status::Finished;
  bool RhsPartial = Rep.Rhs.St != Status::Finished;
  bool TrapVsFinish = (Rep.Lhs.St == Status::Trapped &&
                       Rep.Rhs.St == Status::Finished) ||
                      (Rep.Rhs.St == Status::Trapped &&
                       Rep.Lhs.St == Status::Finished);
  if (TrapVsFinish) {
    Rep.Detail = "one execution trapped, the other finished";
    return Rep;
  }
  if (LhsPartial || RhsPartial) {
    const auto &Shorter =
        Rep.Lhs.Output.size() <= Rep.Rhs.Output.size() ? Rep.Lhs.Output
                                                       : Rep.Rhs.Output;
    const auto &Longer =
        Rep.Lhs.Output.size() <= Rep.Rhs.Output.size() ? Rep.Rhs.Output
                                                       : Rep.Lhs.Output;
    if (std::equal(Shorter.begin(), Shorter.end(), Longer.begin())) {
      Rep.Equivalent = true;
      return Rep;
    }
    Rep.Detail = "truncated traces diverge";
    return Rep;
  }
  Rep.Detail = "execution statuses differ";
  return Rep;
}
