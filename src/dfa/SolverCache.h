//===- dfa/SolverCache.h - Reusable solver state ----------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// State a DataflowSolver keeps alive between solves so that re-solving a
/// lightly modified graph does not redo work:
///
///  * TransferCache — the per-block composed gen/kill transfers, stamped
///    with the graph tick they were composed at.  A refresh recomposes
///    only blocks the graph reports dirty since then (`dfa.transfers_
///    recomputed` counts recompositions, so a cache-friendly fixpoint
///    shows it far below `dfa.blocks_processed`).
///  * WorklistRing — a flat, index-ordered pending set over the solver's
///    iteration order.  Replaces the heap-based priority queue: pushes and
///    pops are word scans over a bit set, with no allocation in the
///    steady-state inner loop.
///
//===----------------------------------------------------------------------===//

#ifndef AM_DFA_SOLVERCACHE_H
#define AM_DFA_SOLVERCACHE_H

#include "ir/FlowGraph.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace am {

class DataflowProblem;

/// One basic block's composed transfer: f(v) = Gen | (v & ~Kill).
struct BlockTransfer {
  BitVector Gen;
  BitVector Kill;

  void apply(const BitVector &In, BitVector &Out) const {
    Out = In;
    Out.andNot(Kill);
    Out |= Gen;
  }
};

/// Caches the composed per-block transfers of one (graph, problem) pair
/// across solves.  Validity is tick-based: a refresh recomposes a block
/// only if the graph stamped it after the previous refresh.  The caller
/// identifies the *semantics* of the problem's transfer functions with a
/// generation number: bump it whenever gen/kill may answer differently
/// for an unchanged instruction (e.g. the pattern universe it indexes
/// into was rebuilt with different contents).
class TransferCache {
public:
  /// Brings the cache up to date for \p G / \p P.  Returns true if the
  /// refresh was incremental (previous transfers were still valid and
  /// only dirty blocks were recomposed); false if everything was rebuilt.
  bool refresh(const FlowGraph &G, const DataflowProblem &P,
               uint64_t ProblemGen);

  const BlockTransfer &transfer(BlockId B) const { return Transfers[B]; }

  /// Tick of the most recent refresh (the graph's modTick at that point).
  Tick refreshedAt() const { return RefreshTick; }

  /// Forgets the cached graph identity so the next refresh rebuilds
  /// everything.  Required before reusing the cache for a *different*
  /// graph: a recycled allocation could otherwise alias CachedG with
  /// ticks that happen to validate.
  void invalidate() {
    Valid = false;
    CachedG = nullptr;
  }

private:
  void compose(const FlowGraph &G, const DataflowProblem &P, BlockId B);

  std::vector<BlockTransfer> Transfers;
  const FlowGraph *CachedG = nullptr;
  uint64_t CachedGen = 0;
  size_t CachedBits = 0;
  bool CachedForward = true;
  Tick RefreshTick = 0;
  bool Valid = false;
  // Scratch for compose(); reused so steady-state recomposition does not
  // allocate for the composed masks.
  BitVector GenScratch;
  BitVector KillScratch;
};

/// A flat, index-ordered bucket ring over a solver iteration order of
/// size N: order indices are pushed in any order and popped ascending
/// from a cursor, wrapping around — the classic round-based schedule for
/// iterative bit-vector analyses, with no heap in push or pop.
class WorklistRing {
public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Empties the ring and sizes it for order indices in [0, N).
  void reset(size_t N) {
    Pending.clearAndResize(N);
    Cursor = 0;
    Count = 0;
  }

  void push(size_t OrderIdx) {
    if (!Pending.test(OrderIdx)) {
      Pending.set(OrderIdx);
      ++Count;
    }
  }

  /// Pops the next pending index at or after the cursor, wrapping to the
  /// lowest pending index when the scan runs off the end.  npos if empty.
  size_t pop() {
    if (Count == 0)
      return npos;
    size_t Idx = Pending.findNext(Cursor);
    if (Idx == Pending.size())
      Idx = Pending.findFirst();
    Pending.reset(Idx);
    --Count;
    Cursor = Idx + 1;
    return Idx;
  }

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

private:
  BitVector Pending;
  size_t Cursor = 0;
  size_t Count = 0;
};

} // namespace am

#endif // AM_DFA_SOLVERCACHE_H
