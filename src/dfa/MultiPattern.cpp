//===- dfa/MultiPattern.cpp - Transposed multi-pattern solver --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "dfa/MultiPattern.h"
#include "dfa/Dataflow.h"
#include "support/Profiler.h"
#include "support/Stats.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace am;

namespace {

/// Folds block \p B's per-instruction transfers into one composed
/// gen/kill pair — the identical fold TransferCache::compose runs, so
/// the packed transfers cannot drift from the wide-vector ones.
/// \p At maps an instruction index to the instruction.
template <typename InstrAt>
void composeInto(const DataflowProblem &P, bool Forward, BlockId B,
                 size_t NumInstrs, InstrAt &&At, BitVector &GenAcc,
                 BitVector &KillAcc, BitVector &GenScratch,
                 BitVector &KillScratch) {
  size_t Bits = P.numBits();
  GenAcc.clearAndResize(Bits);
  KillAcc.clearAndResize(Bits);
  auto Step = [&](size_t Idx) {
    const Instr &I = At(Idx);
    P.gen(B, Idx, I, GenScratch);
    P.kill(B, Idx, I, KillScratch);
    GenAcc.andNot(KillScratch);
    GenAcc |= GenScratch;
    KillAcc |= KillScratch;
  };
  if (Forward) {
    for (size_t Idx = 0; Idx < NumInstrs; ++Idx)
      Step(Idx);
  } else {
    for (size_t Idx = NumInstrs; Idx-- > 0;)
      Step(Idx);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// MultiPatternTransfers
//===----------------------------------------------------------------------===//

bool MultiPatternTransfers::refresh(const FlowGraph &G,
                                    const DataflowProblem &P,
                                    uint64_t ProblemGen,
                                    PackedLaneMatrix &Lanes,
                                    const std::vector<BlockId> &Order,
                                    const std::vector<size_t> &OrderIndex) {
  AM_STAT_COUNTER(NumRecomposed, "dfa.transfers_recomputed");
  size_t Bits = P.numBits();
  bool Forward = P.direction() == Direction::Forward;
  size_t NumBlocks = G.numBlocks();
  size_t NumPos = Order.size();

  // Maps a block to its packed row; unreachable blocks (order index 0
  // without actually being Order[0]) map to npos.
  auto PosOf = [&](BlockId B) -> size_t {
    size_t Idx = OrderIndex[B];
    if (Idx == 0 && (NumPos == 0 || Order[0] != B))
      return size_t(-1);
    return Idx;
  };

  // A packed matrix cannot grow rows in place (the slice stride changes),
  // so any block-count change rebuilds everything; so does any structural
  // change, because both the iteration order and the position-space edge
  // lists derive from the structure.  Block splitting and edge rewiring
  // happen before the fixpoint rounds; steady-state refreshes see a
  // stable structure and stay incremental.  (The engine reshapes Lanes
  // before calling in, so matching cached dimensions also mean the
  // gen/kill lanes were not wiped.)
  bool Incremental = Valid && CachedG == &G && CachedGen == ProblemGen &&
                     CachedBits == Bits && CachedForward == Forward &&
                     Lanes.rows() == NumPos + 1 && Lanes.bits() == Bits &&
                     Flat.structAt() == G.structTick();

  uint64_t Recomposed = 0;
  if (!Incremental) {
    Flat.build(G);
    Recomposed = NumBlocks;
    // One linear pass over the flat instruction stream, split into
    // contiguous *position* ranges across the pool (position I is block
    // Order[I]; unreachable blocks have no position and keep the dummy
    // row's identity transfer).  Rows are disjoint per position and the
    // problem's gen/kill are const reads, so the split is free of shared
    // mutable state; scratch lives per range.  Composed transfers are
    // staged 64 rows at a time and flushed per tile so the packed
    // scatter writes each group region in contiguous bursts instead of
    // one strided cache line per row (see setTransferTile).
    threads::pool().parallelRanges(
        NumPos, [&](size_t Begin, size_t End) {
          constexpr size_t TileRows = 64;
          BitVector GenS, KillS;
          BitVector GenT[TileRows], KillT[TileRows];
          for (size_t TBase = Begin; TBase < End; TBase += TileRows) {
            size_t TEnd = TBase + TileRows < End ? TBase + TileRows : End;
            for (size_t I = TBase; I < TEnd; ++I) {
              BlockId B = Order[I];
              FlatProgram::Span Sp = Flat.span(B);
              composeInto(
                  P, Forward, B, Sp.End - Sp.Begin,
                  [&](size_t Idx) -> const Instr & {
                    return *Flat.slot(Sp.Begin + Idx).I;
                  },
                  GenT[I - TBase], KillT[I - TBase], GenS, KillS);
            }
            Lanes.setTransferTile(TBase, TEnd - TBase, GenT, KillT);
          }
        });
    // Retarget the CSR edge lists into position space.  Meet edges from
    // an unreachable neighbor read the dummy row; requeue edges into one
    // are dropped (evaluating the dummy is a no-op by construction).
    MeetOff.assign(NumPos + 1, 0);
    DepOff.assign(NumPos + 1, 0);
    MeetPos.clear();
    DepPos.clear();
    for (size_t I = 0; I < NumPos; ++I) {
      BlockId B = Order[I];
      FlatProgram::Edges ME = Forward ? Flat.preds(B) : Flat.succs(B);
      FlatProgram::Edges DE = Forward ? Flat.succs(B) : Flat.preds(B);
      for (BlockId N : ME) {
        size_t Pos = PosOf(N);
        MeetPos.push_back(uint32_t(Pos == size_t(-1) ? NumPos : Pos));
      }
      for (BlockId N : DE) {
        size_t Pos = PosOf(N);
        if (Pos != size_t(-1))
          DepPos.push_back(uint32_t(Pos));
      }
      MeetOff[I + 1] = uint32_t(MeetPos.size());
      DepOff[I + 1] = uint32_t(DepPos.size());
    }
  } else {
    for (BlockId B = 0; B < NumBlocks; ++B) {
      if (G.blockTick(B) > RefreshTick) {
        size_t Row = PosOf(B);
        if (Row == size_t(-1))
          continue;
        const auto &Instrs = G.block(B).Instrs;
        composeInto(
            P, Forward, B, Instrs.size(),
            [&](size_t Idx) -> const Instr & { return Instrs[Idx]; }, GenAcc,
            KillAcc, GenScratch, KillScratch);
        Lanes.setTransfer(Row, GenAcc, KillAcc);
        ++Recomposed;
      }
    }
  }
  AM_STAT_ADD(NumRecomposed, Recomposed);

  CachedG = &G;
  CachedGen = ProblemGen;
  CachedBits = Bits;
  CachedForward = Forward;
  RefreshTick = G.modTick();
  Valid = true;
  return Incremental;
}

//===----------------------------------------------------------------------===//
// TransposedEngine
//===----------------------------------------------------------------------===//

bool TransposedEngine::solutionValidFor(const FlowGraph &G,
                                        const DataflowProblem &P,
                                        uint64_t ProblemGen) const {
  return HasSolution && SolG == &G && SolGen == ProblemGen &&
         SolBits == P.numBits() && SolRows == G.numBlocks() &&
         SolForward == (P.direction() == Direction::Forward) &&
         SolMeetAll == (P.meet() == Meet::All);
}

uint64_t TransposedEngine::drainGroup(size_t Gr, const SolveRequest &R,
                                      size_t NumPos, size_t BoundaryPos) {
  // The meet-operator branch selects the template instantiation; the
  // direction is already folded into the position-space edge lists.
  if (R.MeetAll)
    return drainGroupImpl<true>(Gr, R, NumPos, BoundaryPos);
  return drainGroupImpl<false>(Gr, R, NumPos, BoundaryPos);
}

template <bool MeetAll>
uint64_t TransposedEngine::drainGroupImpl(size_t Gr, const SolveRequest &R,
                                          size_t NumPos, size_t BoundaryPos) {
  constexpr size_t GW = PackedLaneMatrix::GroupWidth;
  const uint32_t *MeetOff = Transfers.meetOff();
  const uint32_t *MeetPos = Transfers.meetPos();
  const uint32_t *DepOff = Transfers.depOff();
  const uint32_t *DepPos = Transfers.depPos();
  uint64_t *Lane = LaneM.groupLanes(Gr);
  uint64_t *Out = OutM.groupRow(Gr);
  uint64_t *InP = InM.groupRow(Gr);
  const size_t NumSlices = LaneM.slices();
  uint64_t InitW[GW], BoundaryW[GW];
  for (size_t W = 0; W < GW; ++W) {
    size_t S = Gr * GW + W;
    InitW[W] = MeetAll ? LaneM.sliceMask(S) : 0;
    BoundaryW[W] = S < NumSlices ? R.Boundary->word(S) : 0;
  }
  WorklistRing &WL = GroupWork[Gr];
  uint64_t Processed = 0;

  // Recomputes position I; returns true if its transferred side changed
  // in any word of the group.  Rows are keyed by iteration position, so
  // in the sweep below every array this touches — the gen/kill pair,
  // the in and out planes, the edge offsets and targets — advances
  // strictly sequentially; only the meet gathers jump, and those stay
  // inside this group's dense out plane (rows() * GW words), which is
  // what keeps them cache hits even when the gen/kill stream is far too
  // large to be resident.  Dead tail words of a partial final group
  // carry the identity transfer over an all-zero meet, so they never
  // report a change.
  auto Eval = [&](size_t I) {
    const uint64_t *L = Lane + I * 2 * GW;
    uint64_t NewIn[GW];
    if (I == BoundaryPos) {
      for (size_t W = 0; W < GW; ++W)
        NewIn[W] = BoundaryW[W];
    } else {
      uint32_t EI = MeetOff[I], EE = MeetOff[I + 1];
      if (EI == EE) {
        for (size_t W = 0; W < GW; ++W)
          NewIn[W] = InitW[W];
      } else {
        const uint64_t *N = Out + size_t(MeetPos[EI]) * GW;
        for (size_t W = 0; W < GW; ++W)
          NewIn[W] = N[W];
        while (++EI != EE) {
          N = Out + size_t(MeetPos[EI]) * GW;
          for (size_t W = 0; W < GW; ++W) {
            if (MeetAll)
              NewIn[W] &= N[W];
            else
              NewIn[W] |= N[W];
          }
        }
      }
    }
    uint64_t *InRow = InP + I * GW;
    uint64_t *OutRow = Out + I * GW;
    uint64_t Changed = 0;
    for (size_t W = 0; W < GW; ++W) {
      uint64_t NewOut = L[W] | (NewIn[W] & ~L[GW + W]);
      InRow[W] = NewIn[W];
      Changed |= NewOut ^ OutRow[W];
      OutRow[W] = NewOut;
    }
    return Changed != 0;
  };

  if (!R.Incremental) {
    // First cycle as a straight sweep.  With every index pending, a ring
    // drain pops in iteration order anyway, so this visits the same
    // positions in the same order — but without a bit-scan pop per
    // block, and pushing only dependents at or before the cursor (later
    // ones are reached by the sweep itself and see the new value).  The
    // per-group payoff: a group whose patterns converge in the sweep
    // never pushes at all, so its ring drain below is empty.
    for (size_t I = 0; I < NumPos; ++I) {
      ++Processed;
      if (Eval(I)) {
        for (uint32_t D = DepOff[I], DE = DepOff[I + 1]; D != DE; ++D) {
          size_t DepIdx = DepPos[D];
          if (DepIdx <= I)
            WL.push(DepIdx);
        }
      }
    }
  }

  while (true) {
    size_t I = WL.pop();
    if (I == WorklistRing::npos)
      break;
    ++Processed;
    if (Eval(I)) {
      for (uint32_t D = DepOff[I], DE = DepOff[I + 1]; D != DE; ++D)
        WL.push(DepPos[D]);
    }
  }
  return Processed;
}

uint64_t TransposedEngine::solve(const SolveRequest &R) {
  const FlowGraph &G = *R.G;
  const DataflowProblem &P = *R.P;
  size_t Bits = P.numBits();
  size_t NumBlocks = G.numBlocks();

  size_t NumPos = R.Order->size();
  size_t BoundaryPos = (*R.OrderIndex)[R.BoundaryBlock];

  // Reshape before refreshing the transfers: a wiped lane matrix must
  // never pass the refresh's incremental check (its cached dimensions
  // would mismatch, forcing the full rebuild that repopulates gen/kill).
  // Rows are order positions plus the unreachable-block dummy.
  if (LaneM.rows() != NumPos + 1 || LaneM.bits() != Bits) {
    LaneM.reshape(NumPos + 1, Bits);
    OutM.reshape(NumPos + 1, Bits);
    InM.reshape(NumPos + 1, Bits);
    HasSolution = false;
  }
  Transfers.refresh(G, P, R.ProblemGen, LaneM, *R.Order, *R.OrderIndex);

  constexpr size_t GW = PackedLaneMatrix::GroupWidth;
  size_t NumGroups = LaneM.groups();
  if (GroupWork.size() < NumGroups)
    GroupWork.resize(NumGroups);

  std::vector<uint64_t> Processed(NumGroups, 0);

  // Worker-side profiling goes to private per-group trees (the session
  // profiler's scope stack is not thread-safe) merged below in group
  // order — the deterministic fold support/Profiler.h documents.
  prof::Profiler &SessionProf = prof::Profiler::get();
  bool Prof = SessionProf.enabled();
  std::vector<std::unique_ptr<prof::Profiler>> GroupProfs;
  if (Prof) {
    GroupProfs.resize(NumGroups);
    for (auto &Ptr : GroupProfs) {
      Ptr = std::make_unique<prof::Profiler>();
      Ptr->setEnabled(true);
    }
  }

  auto RunGroup = [&](size_t Gr) {
    prof::OverrideScope Ov(Prof ? GroupProfs[Gr].get() : nullptr);
    AM_PROF_SCOPE("dfa.solve.slice");
    uint64_t *InP = InM.groupRow(Gr);
    uint64_t *Out = OutM.groupRow(Gr);
    uint64_t InitW[GW];
    for (size_t W = 0; W < GW; ++W)
      InitW[W] = R.MeetAll ? LaneM.sliceMask(Gr * GW + W) : 0;
    WorklistRing &WL = GroupWork[Gr];
    WL.reset(NumPos);
    if (R.Incremental) {
      for (BlockId B : *R.Dirty) {
        size_t Pos = (*R.OrderIndex)[B];
        if (Pos == 0 && (NumPos == 0 || (*R.Order)[0] != B))
          continue; // unreachable: no packed row, and nothing reads it
        for (size_t W = 0; W < GW; ++W) {
          InP[Pos * GW + W] = InitW[W];
          Out[Pos * GW + W] = InitW[W];
        }
        WL.push(Pos);
      }
    } else {
      // No seeding pushes: drainGroup runs the first cycle as a straight
      // sweep over the iteration order and only the back-edge requeues
      // enter the ring.  Row NumPos is the dummy, pinned at the initial
      // value so meets from unreachable neighbors read the same words
      // the wide solver would.
      for (size_t Row = 0; Row <= NumPos; ++Row)
        for (size_t W = 0; W < GW; ++W) {
          InP[Row * GW + W] = InitW[W];
          Out[Row * GW + W] = InitW[W];
        }
    }
    Processed[Gr] = drainGroup(Gr, R, NumPos, BoundaryPos);
  };

  threads::ThreadPool &Pool = threads::pool();
  if (NumGroups > 1 && Pool.workers() > 1)
    Pool.parallelFor(NumGroups, RunGroup);
  else
    for (size_t Gr = 0; Gr < NumGroups; ++Gr)
      RunGroup(Gr);

  if (Prof)
    for (size_t Gr = 0; Gr < NumGroups; ++Gr)
      SessionProf.merge(*GroupProfs[Gr]);

  SolG = &G;
  SolGen = R.ProblemGen;
  SolBits = Bits;
  SolRows = NumBlocks;
  SolOrder = R.Order;
  SolForward = R.Forward;
  SolMeetAll = R.MeetAll;
  HasSolution = true;

  uint64_t Total = 0;
  for (uint64_t C : Processed)
    Total += C;
  return Total;
}

void TransposedEngine::exportSolution(std::vector<BitVector> &In,
                                      std::vector<BitVector> &Out) const {
  const std::vector<BlockId> &Order = *SolOrder;
  size_t NumPos = Order.size();
  In.resize(SolRows);
  Out.resize(SolRows);
  for (size_t B = 0; B < SolRows; ++B) {
    if (In[B].size() != SolBits)
      In[B].clearAndResize(SolBits);
    if (Out[B].size() != SolBits)
      Out[B].clearAndResize(SolBits);
  }
  if (NumPos != SolRows) {
    // Unreachable blocks have no packed row: they keep the optimistic
    // initial value, exactly as the wide solver leaves them.
    BitVector Init;
    Init.clearAndResize(SolBits);
    if (SolMeetAll)
      Init.setAll();
    std::vector<uint8_t> Mapped(SolRows, 0);
    for (BlockId B : Order)
      Mapped[B] = 1;
    for (size_t B = 0; B < SolRows; ++B)
      if (!Mapped[B]) {
        In[B] = Init;
        Out[B] = Init;
      }
  }
  // Tiled transpose: a naive row-at-a-time gather strides the whole
  // matrix once per row (rows * 8 bytes between consecutive reads).
  // Walking 64-row tiles instead keeps each tile's group runs — 64
  // contiguous lane triples per group — resident while every group
  // visits them.  Row I belongs to block Order[I]; with the order close
  // to layout order the scattered side stays nearly sequential too.
  constexpr size_t GW = PackedLaneMatrix::GroupWidth;
  const size_t Tile = 64;
  const size_t NumSlices = LaneM.slices();
  const size_t NumGroups = LaneM.groups();
  for (size_t Base = 0; Base < NumPos; Base += Tile) {
    size_t End = Base + Tile < NumPos ? Base + Tile : NumPos;
    for (size_t Gr = 0; Gr < NumGroups; ++Gr) {
      const uint64_t *InP = InM.groupRow(Gr);
      const uint64_t *OutP = OutM.groupRow(Gr);
      size_t WEnd = NumSlices - Gr * GW < GW ? NumSlices - Gr * GW : GW;
      for (size_t I = Base; I < End; ++I) {
        BlockId B = Order[I];
        for (size_t W = 0; W < WEnd; ++W) {
          In[B].setWord(Gr * GW + W, InP[I * GW + W]);
          Out[B].setWord(Gr * GW + W, OutP[I * GW + W]);
        }
      }
    }
  }
}
