//===- dfa/SolverCache.cpp - Transfer cache implementation -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "dfa/SolverCache.h"
#include "dfa/Dataflow.h"
#include "support/Stats.h"

using namespace am;

void TransferCache::compose(const FlowGraph &G, const DataflowProblem &P,
                            BlockId B) {
  size_t Bits = P.numBits();
  BlockTransfer &T = Transfers[B];
  T.Gen.clearAndResize(Bits);
  T.Kill.clearAndResize(Bits);
  const auto &Instrs = G.block(B).Instrs;

  // Compose the per-instruction transfers in execution order (forward) or
  // reverse execution order (backward): applying "later" transfer g to the
  // composed f gives gen' = g.gen | (gen & ~g.kill), kill' = kill | g.kill.
  auto Step = [&](size_t Idx) {
    const Instr &I = Instrs[Idx];
    P.gen(B, Idx, I, GenScratch);
    P.kill(B, Idx, I, KillScratch);
    T.Gen.andNot(KillScratch);
    T.Gen |= GenScratch;
    T.Kill |= KillScratch;
  };

  if (P.direction() == Direction::Forward) {
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
      Step(Idx);
  } else {
    for (size_t Idx = Instrs.size(); Idx-- > 0;)
      Step(Idx);
  }
}

bool TransferCache::refresh(const FlowGraph &G, const DataflowProblem &P,
                            uint64_t ProblemGen) {
  AM_STAT_COUNTER(NumRecomposed, "dfa.transfers_recomputed");
  size_t Bits = P.numBits();
  bool Forward = P.direction() == Direction::Forward;
  size_t NumBlocks = G.numBlocks();

  // Blocks are only ever appended in place (splitting), never removed, so
  // a shrunken block array means a different graph generation.
  bool Incremental = Valid && CachedG == &G && CachedGen == ProblemGen &&
                     CachedBits == Bits && CachedForward == Forward &&
                     Transfers.size() <= NumBlocks;

  uint64_t Recomposed = 0;
  Transfers.resize(NumBlocks);
  if (!Incremental) {
    for (BlockId B = 0; B < NumBlocks; ++B)
      compose(G, P, B);
    Recomposed = NumBlocks;
  } else {
    for (BlockId B = 0; B < NumBlocks; ++B) {
      if (G.blockTick(B) > RefreshTick) {
        compose(G, P, B);
        ++Recomposed;
      }
    }
  }
  AM_STAT_ADD(NumRecomposed, Recomposed);

  CachedG = &G;
  CachedGen = ProblemGen;
  CachedBits = Bits;
  CachedForward = Forward;
  RefreshTick = G.modTick();
  Valid = true;
  return Incremental;
}
