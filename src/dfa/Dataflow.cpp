//===- dfa/Dataflow.cpp - Dataflow solver implementation --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The solver object carries three layers of reuse across solves:
//
//  1. composed block transfers, recomputed only for tick-dirty blocks
//     (TransferCache);
//  2. the previous converged solution: if the graph did not change at all,
//     it is returned outright; if it changed locally, iteration restarts
//     only over the dirty blocks' dependence closure;
//  3. all fixpoint scratch (meet/transfer vectors, the worklist ring), so
//     the steady-state inner loop performs no heap allocation.
//
// Why the incremental restart is exact (not merely safe): let D be the
// dirty blocks and A their closure under the dependence direction (succs
// for forward problems, preds for backward).  Blocks outside A take no
// input from A, their transfers are unchanged, so the old solution still
// satisfies their equations — and because fixpoint iteration of that
// closed subsystem never reads A's values, its greatest (least) solution
// is unchanged too.  Inside A we restart from the optimistic
// initialization against those converged boundary values; the worklist
// invariant ("an unsatisfied equation is pending") plus monotonicity
// pins the converged result to the global greatest (least) fixpoint, the
// same one a from-scratch solve computes.
//
//===----------------------------------------------------------------------===//

#include "dfa/Dataflow.h"
#include "dfa/MultiPattern.h"
#include "support/Profiler.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace am;

namespace {
/// Monotone id per solve() call, for remark provenance (see
/// DataflowResult::SolveSerial).
std::atomic<uint64_t> GlobalSolveSerial{0};

/// Per-thread solve observer (see setSolveObserver).  Thread-local so
/// concurrent optimization jobs — one telemetry session per worker
/// thread — observe only their own solves; the check in the hot path
/// stays one load + branch.
thread_local void (*ObserverFn)(const SolveInfo &, void *) = nullptr;
thread_local void *ObserverCtx = nullptr;

void notifyObserver(const SolveInfo &Info) {
  if (ObserverFn)
    ObserverFn(Info, ObserverCtx);
}
} // namespace

void am::setSolveObserver(void (*Fn)(const SolveInfo &, void *), void *Ctx) {
  ObserverFn = Fn;
  ObserverCtx = Ctx;
}

namespace {
/// -1 = no programmatic override; fall through to AM_SOLVER.
std::atomic<int> LayoutOverride{-1};

SolverLayout envLayout() {
  static SolverLayout Cached = [] {
    const char *Env = std::getenv("AM_SOLVER");
    if (!Env)
      return SolverLayout::Auto;
    if (std::strcmp(Env, "scalar") == 0)
      return SolverLayout::Scalar;
    if (std::strcmp(Env, "transposed") == 0)
      return SolverLayout::Transposed;
    return SolverLayout::Auto;
  }();
  return Cached;
}
} // namespace

SolverLayout am::solverLayout() {
  int V = LayoutOverride.load(std::memory_order_relaxed);
  return V < 0 ? envLayout() : static_cast<SolverLayout>(V);
}

void am::setSolverLayout(SolverLayout L) {
  LayoutOverride.store(static_cast<int>(L), std::memory_order_relaxed);
}

DataflowSolver::DataflowSolver() = default;
DataflowSolver::~DataflowSolver() = default;

void DataflowSolver::invalidate() {
  HaveSolution = false;
  SolG = nullptr;
  OrderG = nullptr;
  Cache.invalidate();
  if (Engine)
    Engine->hardInvalidate();
}
DataflowSolver::DataflowSolver(DataflowSolver &&) noexcept = default;
DataflowSolver &DataflowSolver::operator=(DataflowSolver &&) noexcept = default;

bool DataflowSolver::solutionValid(const FlowGraph &G,
                                   const DataflowProblem &P,
                                   uint64_t ProblemGen) const {
  return HaveSolution && SolG == &G && SolStructTick == G.structTick() &&
         SolGen == ProblemGen && SolBits == P.numBits() &&
         SolForward == (P.direction() == Direction::Forward) &&
         SolMeetAll == (P.meet() == Meet::All) && In.size() == G.numBlocks();
}

void DataflowSolver::refreshOrder(const FlowGraph &G, bool Forward) {
  if (OrderG == &G && OrderStructTick == G.structTick() &&
      OrderForward == Forward)
    return;
  Order = Forward ? G.reversePostorder() : G.reverseGraphReversePostorder();
  OrderIndex.assign(G.numBlocks(), 0);
  for (size_t Idx = 0; Idx < Order.size(); ++Idx)
    OrderIndex[Order[Idx]] = Idx;
  OrderG = &G;
  OrderStructTick = G.structTick();
  OrderForward = Forward;
}

DataflowResult DataflowSolver::snapshot(const FlowGraph &G,
                                        const DataflowProblem &P,
                                        bool Forward) const {
  DataflowResult R;
  R.G = &G;
  R.Problem = &P;
  size_t NumBlocks = G.numBlocks();
  R.Entry.resize(NumBlocks);
  R.Exit.resize(NumBlocks);
  for (BlockId B = 0; B < NumBlocks; ++B) {
    R.Entry[B] = Forward ? In[B] : Out[B];
    R.Exit[B] = Forward ? Out[B] : In[B];
  }
  return R;
}

DataflowResult DataflowSolver::solve(const FlowGraph &G,
                                     const DataflowProblem &P,
                                     SolverKind Kind, uint64_t ProblemGen) {
  size_t Bits = P.numBits();
  size_t NumBlocks = G.numBlocks();
  bool Forward = P.direction() == Direction::Forward;
  bool MeetAll = P.meet() == Meet::All;

  AM_STAT_COUNTER(NumSolves, "dfa.solves");
  AM_STAT_COUNTER(NumSolvesRoundRobin, "dfa.solves.round_robin");
  AM_STAT_COUNTER(NumSolvesWorklist, "dfa.solves.worklist");
  AM_STAT_COUNTER(NumSolvesCached, "dfa.solves.cached");
  AM_STAT_COUNTER(NumSolvesIncremental, "dfa.solves.incremental");
  AM_STAT_TIMER(SolveTimer, "dfa.solve_ns");
  AM_STAT_INC(NumSolves);
  uint64_t Serial =
      GlobalSolveSerial.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Kind == SolverKind::RoundRobin)
    AM_STAT_INC(NumSolvesRoundRobin);
  else
    AM_STAT_INC(NumSolvesWorklist);
  AM_STAT_TIME_SCOPE(SolveTimer);
  AM_PROF_SCOPE("dfa.solve");

  trace::TraceSpan Span("dfa.solve");
  Span.arg("bits", Bits);
  Span.arg("blocks", NumBlocks);
  Span.arg("direction", Forward ? "forward" : "backward");
  Span.arg("meet", MeetAll ? "all" : "any");
  Span.arg("solver", Kind == SolverKind::RoundRobin ? "round-robin"
                                                    : "worklist");

  bool PrevValid = solutionValid(G, P, ProblemGen);

  // Nothing changed since this solver's last converged solve of the same
  // problem: the cached solution is the answer.
  if (PrevValid && !G.instrsChangedSince(SolTick)) {
    AM_STAT_INC(NumSolvesCached);
    Span.arg("cached", 1);
    DataflowResult R = snapshot(G, P, Forward);
    R.SolveSerial = Serial;
    SolveInfo Info;
    Info.Serial = Serial;
    Info.Bits = Bits;
    Info.Blocks = NumBlocks;
    Info.P = SolveInfo::Path::Cached;
    Info.Forward = Forward;
    Info.MeetAll = MeetAll;
    notifyObserver(Info);
    return R;
  }

  refreshOrder(G, Forward);

  P.boundary(Boundary);
  assert(Boundary.size() == Bits && "boundary width mismatch");
  BlockId BoundaryBlock = Forward ? G.start() : G.end();

  uint64_t BlocksProcessed = 0, Sweeps = 0;
  bool Incremental = false;

  // Dirty blocks' closure under the dependence direction, shared by both
  // substrates' incremental restarts.
  auto ComputeDirtyClosure = [&]() {
    DirtyScratch.clear();
    AffectedSet.clearAndResize(NumBlocks);
    for (BlockId B = 0; B < NumBlocks; ++B) {
      if (G.blockTick(B) > SolTick) {
        AffectedSet.set(B);
        DirtyScratch.push_back(B);
      }
    }
    for (size_t Idx = 0; Idx < DirtyScratch.size(); ++Idx) {
      BlockId B = DirtyScratch[Idx];
      const auto &Deps = Forward ? G.block(B).Succs : G.block(B).Preds;
      for (BlockId D : Deps) {
        if (!AffectedSet.test(D)) {
          AffectedSet.set(D);
          DirtyScratch.push_back(D);
        }
      }
    }
  };

  // Substrate selection: never a function of the thread count (that
  // would make work counters scheduling-dependent), only of the layout
  // policy and the problem width.
  bool UseTransposed = Kind == SolverKind::Worklist;
  if (UseTransposed) {
    switch (solverLayout()) {
    case SolverLayout::Scalar:
      UseTransposed = false;
      break;
    case SolverLayout::Transposed:
      UseTransposed = Bits > 0;
      break;
    case SolverLayout::Auto:
      UseTransposed = Bits > 64;
      break;
    }
  }

  if (UseTransposed) {
    if (!Engine)
      Engine = std::make_unique<TransposedEngine>();
    Incremental = PrevValid && Engine->solutionValidFor(G, P, ProblemGen);
    if (Incremental) {
      ComputeDirtyClosure();
      AM_STAT_INC(NumSolvesIncremental);
      Span.arg("incremental", 1);
      Span.arg("dirty_closure", DirtyScratch.size());
    }
    Span.arg("layout", "transposed");
    Span.arg("slices", (Bits + 63) / 64);
    TransposedEngine::SolveRequest Req;
    Req.G = &G;
    Req.P = &P;
    Req.ProblemGen = ProblemGen;
    Req.Order = &Order;
    Req.OrderIndex = &OrderIndex;
    Req.Forward = Forward;
    Req.MeetAll = MeetAll;
    Req.BoundaryBlock = BoundaryBlock;
    Req.Boundary = &Boundary;
    Req.Incremental = Incremental;
    Req.Dirty = &DirtyScratch;
    BlocksProcessed = Engine->solve(Req);
    Engine->exportSolution(In, Out);
  } else {
  // A wide-vector solve leaves the engine's packed solution behind the
  // mirrors below; drop it so a later transposed solve restarts full.
  if (Engine)
    Engine->invalidate();
  Cache.refresh(G, P, ProblemGen);

  Init.clearAndResize(Bits); // optimistic interior initialization
  if (MeetAll)
    Init.setAll();

  // Recomputes block B; returns true if its Out side changed.  "In" is
  // the meet side (block entry for forward, block exit for backward);
  // "Out" the transferred side.
  auto Process = [&](BlockId B) {
    ++BlocksProcessed;
    if (B == BoundaryBlock) {
      NewIn = Boundary;
    } else {
      const auto &Edges = Forward ? G.block(B).Preds : G.block(B).Succs;
      if (Edges.empty()) {
        // Only the boundary block may lack incoming edges in a valid
        // graph; be conservative for invalid inputs.
        NewIn = Init;
      } else {
        // The meet input is always the neighbor's *transferred* side:
        // its exit value for forward problems, its entry value for
        // backward ones — both live in Out.
        NewIn = Out[Edges[0]];
        for (size_t EdgeIdx = 1; EdgeIdx < Edges.size(); ++EdgeIdx) {
          if (MeetAll)
            NewIn &= Out[Edges[EdgeIdx]];
          else
            NewIn |= Out[Edges[EdgeIdx]];
        }
      }
    }
    Cache.transfer(B).apply(NewIn, NewOut);
    bool OutChanged = NewOut != Out[B];
    bool AnyChanged = OutChanged || NewIn != In[B];
    if (AnyChanged) {
      In[B] = NewIn;
      Out[B] = NewOut;
    }
    return OutChanged;
  };

  auto Drain = [&]() {
    while (true) {
      size_t Idx = Work.pop();
      if (Idx == WorklistRing::npos)
        break;
      BlockId B = Order[Idx];
      if (!Process(B))
        continue;
      const auto &Dependents = Forward ? G.block(B).Succs : G.block(B).Preds;
      for (BlockId D : Dependents)
        Work.push(OrderIndex[D]);
    }
  };

  Incremental = Kind == SolverKind::Worklist && PrevValid;
  if (Incremental) {
    // Seed only the dirty blocks' dependence closure, reset to the
    // optimistic value; everything outside keeps its converged value.
    ComputeDirtyClosure();
    AM_STAT_INC(NumSolvesIncremental);
    Span.arg("incremental", 1);
    Span.arg("dirty_closure", DirtyScratch.size());
    Work.reset(Order.size());
    for (BlockId B : DirtyScratch) {
      In[B] = Init;
      Out[B] = Init;
      Work.push(OrderIndex[B]);
    }
    Drain();
  } else {
    In.resize(NumBlocks);
    Out.resize(NumBlocks);
    for (BlockId B = 0; B < NumBlocks; ++B) {
      In[B] = Init;
      Out[B] = Init;
    }
    if (Kind == SolverKind::RoundRobin) {
      // Stop after a sweep in which no transferred side changed: every
      // meet side was recomputed from final neighbor values during that
      // sweep, so the whole solution is consistent.
      bool Changed = true;
      while (Changed) {
        Changed = false;
        ++Sweeps;
        for (BlockId B : Order)
          Changed |= Process(B);
      }
    } else {
      // Full worklist solve: seed every block once in iteration order,
      // then only revisit the dependents of blocks whose transferred
      // side changed — the classic near-optimal schedule for iterative
      // bit-vector analyses (the paper's refs [13, 14]).
      Work.reset(Order.size());
      for (size_t Idx = 0; Idx < Order.size(); ++Idx)
        Work.push(Idx);
      Drain();
    }
  }
  } // scalar substrate

  SolG = &G;
  SolTick = G.modTick();
  SolStructTick = G.structTick();
  SolGen = ProblemGen;
  SolBits = Bits;
  SolForward = Forward;
  SolMeetAll = MeetAll;
  HaveSolution = true;

  // Every transfer evaluation touches the meet result, the transferred
  // vector and both transfer masks, word by word: all (Bits+63)/64 words
  // per wide-vector evaluation, one GroupWidth-word run per group
  // evaluation on the transposed substrate.
  uint64_t WordsPerEval = UseTransposed ? 4 * PackedLaneMatrix::GroupWidth
                                        : 4 * ((Bits + 63) / 64);
  AM_STAT_COUNTER(NumSweeps, "dfa.sweeps");
  AM_STAT_COUNTER(NumBlocksProcessed, "dfa.blocks_processed");
  AM_STAT_COUNTER(NumWordsTouched, "dfa.words_touched");
  AM_STAT_ADD(NumSweeps, Sweeps);
  AM_STAT_ADD(NumBlocksProcessed, BlocksProcessed);
  AM_STAT_ADD(NumWordsTouched, BlocksProcessed * WordsPerEval);

  Span.arg("sweeps", Sweeps);
  Span.arg("blocks_processed", BlocksProcessed);
  Span.arg("words_touched", BlocksProcessed * WordsPerEval);

  DataflowResult R = snapshot(G, P, Forward);
  R.Sweeps = Sweeps;
  R.BlocksProcessed = BlocksProcessed;
  R.SolveSerial = Serial;

  SolveInfo Info;
  Info.Serial = Serial;
  Info.Bits = Bits;
  Info.Blocks = NumBlocks;
  Info.Sweeps = Sweeps;
  Info.BlocksProcessed = BlocksProcessed;
  Info.DirtyClosure = Incremental ? DirtyScratch.size() : 0;
  Info.P = Incremental ? SolveInfo::Path::Incremental : SolveInfo::Path::Full;
  Info.Forward = Forward;
  Info.MeetAll = MeetAll;
  notifyObserver(Info);
  return R;
}

DataflowResult am::solve(const FlowGraph &G, const DataflowProblem &P,
                         SolverKind Kind) {
  DataflowSolver Solver;
  return Solver.solve(G, P, Kind);
}

DataflowResult::InstrFacts DataflowResult::instrFacts(BlockId B) const {
  assert(G && Problem && "result not produced by solve()");
  const auto &Instrs = G->block(B).Instrs;
  size_t N = Instrs.size();
  size_t Bits = Problem->numBits();
  InstrFacts F;
  F.Before.resize(N);
  F.After.resize(N);
  BitVector Gen(Bits), Kill(Bits);

  if (Problem->direction() == Direction::Forward) {
    BitVector Cur = Entry[B];
    for (size_t Idx = 0; Idx < N; ++Idx) {
      F.Before[Idx] = Cur;
      Problem->gen(B, Idx, Instrs[Idx], Gen);
      Problem->kill(B, Idx, Instrs[Idx], Kill);
      Cur.andNot(Kill);
      Cur |= Gen;
      F.After[Idx] = Cur;
    }
    assert(N == 0 || F.After[N - 1] == Exit[B]);
  } else {
    BitVector Cur = Exit[B];
    for (size_t Idx = N; Idx-- > 0;) {
      F.After[Idx] = Cur;
      Problem->gen(B, Idx, Instrs[Idx], Gen);
      Problem->kill(B, Idx, Instrs[Idx], Kill);
      Cur.andNot(Kill);
      Cur |= Gen;
      F.Before[Idx] = Cur;
    }
    assert(N == 0 || F.Before[0] == Entry[B]);
  }
  return F;
}
