//===- dfa/Dataflow.cpp - Dataflow solver implementation --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "dfa/Dataflow.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cassert>
#include <queue>

using namespace am;

namespace {

/// One basic block's composed transfer: f(v) = Gen | (v & ~Kill).
struct BlockTransfer {
  BitVector Gen;
  BitVector Kill;

  void apply(const BitVector &In, BitVector &Out) const {
    Out = In;
    Out.andNot(Kill);
    Out |= Gen;
  }
};

/// Composes the per-instruction transfers of \p B in execution order
/// (forward) or reverse execution order (backward).
BlockTransfer composeBlock(const FlowGraph &G, const DataflowProblem &P,
                           BlockId B) {
  size_t Bits = P.numBits();
  BlockTransfer T{BitVector(Bits), BitVector(Bits)};
  BitVector Gen(Bits), Kill(Bits);
  const auto &Instrs = G.block(B).Instrs;

  auto Step = [&](size_t Idx) {
    const Instr &I = Instrs[Idx];
    P.gen(B, Idx, I, Gen);
    P.kill(B, Idx, I, Kill);
    // Apply "later" transfer g to composed f: gen' = g.gen | (gen & ~g.kill),
    // kill' = kill | g.kill.
    T.Gen.andNot(Kill);
    T.Gen |= Gen;
    T.Kill |= Kill;
  };

  if (P.direction() == Direction::Forward) {
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
      Step(Idx);
  } else {
    for (size_t Idx = Instrs.size(); Idx-- > 0;)
      Step(Idx);
  }
  return T;
}

} // namespace

DataflowResult am::solve(const FlowGraph &G, const DataflowProblem &P,
                         SolverKind Kind) {
  size_t Bits = P.numBits();
  size_t NumBlocks = G.numBlocks();
  bool Forward = P.direction() == Direction::Forward;
  bool MeetAll = P.meet() == Meet::All;

  AM_STAT_COUNTER(NumSolves, "dfa.solves");
  AM_STAT_COUNTER(NumSolvesRoundRobin, "dfa.solves.round_robin");
  AM_STAT_COUNTER(NumSolvesWorklist, "dfa.solves.worklist");
  AM_STAT_TIMER(SolveTimer, "dfa.solve_ns");
  AM_STAT_INC(NumSolves);
  if (Kind == SolverKind::RoundRobin)
    AM_STAT_INC(NumSolvesRoundRobin);
  else
    AM_STAT_INC(NumSolvesWorklist);
  AM_STAT_TIME_SCOPE(SolveTimer);

  trace::TraceSpan Span("dfa.solve");
  Span.arg("bits", Bits);
  Span.arg("blocks", NumBlocks);
  Span.arg("direction", Forward ? "forward" : "backward");
  Span.arg("meet", MeetAll ? "all" : "any");
  Span.arg("solver", Kind == SolverKind::RoundRobin ? "round-robin"
                                                    : "worklist");

  std::vector<BlockTransfer> Transfers;
  Transfers.reserve(NumBlocks);
  for (BlockId B = 0; B < NumBlocks; ++B)
    Transfers.push_back(composeBlock(G, P, B));

  DataflowResult R;
  R.G = &G;
  R.Problem = &P;

  // "In" is the meet side (block entry for forward, block exit for
  // backward); "Out" the transferred side.
  std::vector<BitVector> In(NumBlocks), Out(NumBlocks);
  BitVector Init(Bits, MeetAll); // optimistic interior initialization
  for (BlockId B = 0; B < NumBlocks; ++B) {
    In[B] = Init;
    Out[B] = Init;
  }

  BitVector Boundary;
  P.boundary(Boundary);
  assert(Boundary.size() == Bits && "boundary width mismatch");

  BlockId BoundaryBlock = Forward ? G.start() : G.end();
  std::vector<BlockId> Order =
      Forward ? G.reversePostorder() : G.reverseGraphReversePostorder();

  BitVector NewIn(Bits), NewOut(Bits);
  // Recomputes block \p B; returns true if its Out side changed.
  auto Process = [&](BlockId B) {
    ++R.BlocksProcessed;
    // Meet over the incoming edges.
    if (B == BoundaryBlock) {
      NewIn = Boundary;
    } else {
      const auto &Edges = Forward ? G.block(B).Preds : G.block(B).Succs;
      if (Edges.empty()) {
        // Only the boundary block may lack incoming edges in a valid
        // graph; be conservative for invalid inputs.
        NewIn = BitVector(Bits, MeetAll);
      } else {
        // The meet input is always the neighbor's *transferred* side:
        // its exit value for forward problems, its entry value for
        // backward ones — both live in Out.
        NewIn = Out[Edges[0]];
        for (size_t EdgeIdx = 1; EdgeIdx < Edges.size(); ++EdgeIdx) {
          if (MeetAll)
            NewIn &= Out[Edges[EdgeIdx]];
          else
            NewIn |= Out[Edges[EdgeIdx]];
        }
      }
    }
    Transfers[B].apply(NewIn, NewOut);
    bool OutChanged = NewOut != Out[B];
    bool AnyChanged = OutChanged || NewIn != In[B];
    if (AnyChanged) {
      In[B] = NewIn;
      Out[B] = NewOut;
    }
    return OutChanged;
  };

  if (Kind == SolverKind::RoundRobin) {
    // Stop after a sweep in which no transferred side changed: every meet
    // side was recomputed from final neighbor values during that sweep, so
    // the whole solution is consistent.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      ++R.Sweeps;
      for (BlockId B : Order)
        Changed |= Process(B);
    }
  } else {
    // Worklist ordered by (reverse-graph) reverse postorder: seed every
    // block once, then only revisit the dependents of blocks whose
    // transferred side changed, always picking the earliest pending block
    // in iteration order — the classic near-optimal schedule for
    // iterative bit-vector analyses (the paper's refs [13, 14]).
    std::vector<size_t> OrderIndex(NumBlocks, SIZE_MAX);
    for (size_t Idx = 0; Idx < Order.size(); ++Idx)
      OrderIndex[Order[Idx]] = Idx;
    std::priority_queue<std::pair<size_t, BlockId>,
                        std::vector<std::pair<size_t, BlockId>>,
                        std::greater<>>
        Work;
    std::vector<bool> Queued(NumBlocks, true);
    for (BlockId B : Order)
      Work.emplace(OrderIndex[B], B);
    while (!Work.empty()) {
      BlockId B = Work.top().second;
      Work.pop();
      Queued[B] = false;
      if (!Process(B))
        continue;
      const auto &Dependents = Forward ? G.block(B).Succs : G.block(B).Preds;
      for (BlockId D : Dependents) {
        if (!Queued[D]) {
          Queued[D] = true;
          Work.emplace(OrderIndex[D], D);
        }
      }
    }
  }

  R.Entry.resize(NumBlocks);
  R.Exit.resize(NumBlocks);
  for (BlockId B = 0; B < NumBlocks; ++B) {
    R.Entry[B] = Forward ? In[B] : Out[B];
    R.Exit[B] = Forward ? Out[B] : In[B];
  }

  // Every transfer evaluation touches the meet result, the transferred
  // vector and both transfer masks, word by word.
  uint64_t WordsPerBlock = 4 * ((Bits + 63) / 64);
  AM_STAT_COUNTER(NumSweeps, "dfa.sweeps");
  AM_STAT_COUNTER(NumBlocksProcessed, "dfa.blocks_processed");
  AM_STAT_COUNTER(NumWordsTouched, "dfa.words_touched");
  AM_STAT_ADD(NumSweeps, R.Sweeps);
  AM_STAT_ADD(NumBlocksProcessed, R.BlocksProcessed);
  AM_STAT_ADD(NumWordsTouched, R.BlocksProcessed * WordsPerBlock);

  Span.arg("sweeps", R.Sweeps);
  Span.arg("blocks_processed", R.BlocksProcessed);
  Span.arg("words_touched", R.BlocksProcessed * WordsPerBlock);
  return R;
}

DataflowResult::InstrFacts DataflowResult::instrFacts(BlockId B) const {
  assert(G && Problem && "result not produced by solve()");
  const auto &Instrs = G->block(B).Instrs;
  size_t N = Instrs.size();
  size_t Bits = Problem->numBits();
  InstrFacts F;
  F.Before.resize(N);
  F.After.resize(N);
  BitVector Gen(Bits), Kill(Bits);

  if (Problem->direction() == Direction::Forward) {
    BitVector Cur = Entry[B];
    for (size_t Idx = 0; Idx < N; ++Idx) {
      F.Before[Idx] = Cur;
      Problem->gen(B, Idx, Instrs[Idx], Gen);
      Problem->kill(B, Idx, Instrs[Idx], Kill);
      Cur.andNot(Kill);
      Cur |= Gen;
      F.After[Idx] = Cur;
    }
    assert(N == 0 || F.After[N - 1] == Exit[B]);
  } else {
    BitVector Cur = Exit[B];
    for (size_t Idx = N; Idx-- > 0;) {
      F.After[Idx] = Cur;
      Problem->gen(B, Idx, Instrs[Idx], Gen);
      Problem->kill(B, Idx, Instrs[Idx], Kill);
      Cur.andNot(Kill);
      Cur |= Gen;
      F.Before[Idx] = Cur;
    }
    assert(N == 0 || F.Before[0] == Entry[B]);
  }
  return F;
}
