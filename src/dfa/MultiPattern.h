//===- dfa/MultiPattern.h - Transposed multi-pattern solver ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transposed ("bit-slice") substrate for the per-pattern dataflow
/// problems of Tables 1-3.  The paper's problems are independent per
/// pattern; the wide-vector solver already packs 64 of them per machine
/// word, but it converges them *together*: one slow pattern keeps every
/// word of every block in the sweep.  Here the width is partitioned into
/// word slices — patterns [64k, 64k+63] form slice k — grouped
/// GroupWidth slices at a time, and each group runs its own worklist
/// fixpoint:
///
///   X[B] = gen[B] | (N[B] & ~kill[B])     (GroupWidth uint64_t each)
///
/// over a flat, arena-backed interleaved lane array per group
/// (PackedLaneMatrix).  Groups share nothing but read-only inputs, so
/// they drain concurrently on the support/ThreadPool — and even on one
/// thread the early-converging groups stop being reswept, while the
/// per-evaluation control cost (worklist, edge walks) is amortized over
/// GroupWidth words.  That combination is where the serial win over the
/// wide-vector path comes from.
///
/// Determinism contract: the per-group fixpoints are exact (same
/// greatest/least solution as the wide solver), each group's schedule is
/// sequential within its task, groups write disjoint arrays, and all
/// counters are per-group sums — so results *and* machine-independent
/// counters are identical for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef AM_DFA_MULTIPATTERN_H
#define AM_DFA_MULTIPATTERN_H

#include "dfa/SolverCache.h"
#include "ir/FlatProgram.h"
#include "ir/FlowGraph.h"
#include "support/Arena.h"
#include "support/BitVector.h"

#include <cstdint>
#include <vector>

namespace am {

class DataflowProblem;

/// Struct-of-arrays bit matrix: NumBits columns over NumRows rows,
/// stored slice-major — slice k is a contiguous uint64_t[NumRows] run
/// holding bit k*64..k*64+63 of every row.  One arena allocation backs
/// the whole matrix; rows are plain offsets, so a slice fixpoint touches
/// a dense array with no per-row indirection.
class PackedBitMatrix {
public:
  size_t rows() const { return NumRows; }
  size_t bits() const { return NumBits; }
  size_t slices() const { return NumSlices; }

  /// Resizes to \p Rows x \p Bits and zero-fills.  One bump allocation;
  /// previous contents are dropped.
  void reshape(size_t Rows, size_t Bits) {
    NumRows = Rows;
    NumBits = Bits;
    NumSlices = (Bits + 63) / 64;
    Mem.reset();
    size_t Total = NumRows * NumSlices;
    Data = Total ? Mem.allocate<uint64_t>(Total) : nullptr;
    for (size_t I = 0; I < Total; ++I)
      Data[I] = 0;
  }

  uint64_t *sliceRow(size_t S) { return Data + S * NumRows; }
  const uint64_t *sliceRow(size_t S) const { return Data + S * NumRows; }

  /// Mask of the valid (in-width) bits of slice \p S: all-ones except
  /// for the partial final slice of a non-multiple-of-64 width.
  uint64_t sliceMask(size_t S) const {
    size_t Rem = NumBits % 64;
    if (S + 1 == NumSlices && Rem != 0)
      return (uint64_t(1) << Rem) - 1;
    return ~uint64_t(0);
  }

  /// Scatters \p V (width bits()) across the slices of row \p Row.
  void setRow(size_t Row, const BitVector &V) {
    for (size_t S = 0; S < NumSlices; ++S)
      Data[S * NumRows + Row] = V.word(S);
  }

  /// Gathers row \p Row into \p Out (resized to bits()).
  void readRow(size_t Row, BitVector &Out) const {
    if (Out.size() != NumBits)
      Out.clearAndResize(NumBits);
    for (size_t S = 0; S < NumSlices; ++S)
      Out.setWord(S, Data[S * NumRows + Row]);
  }

private:
  support::Arena Mem;
  uint64_t *Data = nullptr;
  size_t NumRows = 0;
  size_t NumBits = 0;
  size_t NumSlices = 0;
};

/// The transfer side of the solve-loop working set, interleaved and
/// grouped: slices come in groups of GroupWidth, and per (group, row)
/// the matrix stores one contiguous {gen[GroupWidth], kill[GroupWidth]}
/// lane pair.  One transfer evaluation reads both masks from a single
/// 64-byte lane — with the separate-matrix layout they live megabytes
/// apart and a large solve becomes latency-bound on independent
/// streams.  The group width trades the two overheads against each
/// other: wider groups amortize the per-evaluation control cost
/// (worklist, edge lists, branches) over more words, narrower groups
/// converge and stop resweeping independently sooner.
///
/// The out words the meet side gathers are deliberately NOT in here:
/// they live in their own dense plane (PackedGroupPlane) of GroupWidth
/// words per row, so a group's whole meet-visible state spans
/// rows() * GroupWidth * 8 bytes — small enough to stay cache-resident
/// while the much larger gen/kill pairs stream past once per sweep.
class PackedLaneMatrix {
public:
  /// Word slices per group; 16 * 64 = 1024 patterns advance per evaluation.
  static constexpr size_t GroupWidth = 16;

  size_t rows() const { return NumRows; }
  size_t bits() const { return NumBits; }
  size_t slices() const { return NumSlices; }
  size_t groups() const { return NumGroups; }

  /// Resizes to \p Rows x \p Bits and zero-fills all lanes.
  void reshape(size_t Rows, size_t Bits) {
    NumRows = Rows;
    NumBits = Bits;
    NumSlices = (Bits + 63) / 64;
    NumGroups = (NumSlices + GroupWidth - 1) / GroupWidth;
    Mem.reset();
    size_t Total = NumRows * NumGroups * 2 * GroupWidth;
    Data = Total ? Mem.allocate<uint64_t>(Total) : nullptr;
    for (size_t I = 0; I < Total; ++I)
      Data[I] = 0;
  }

  /// The lane array of group \p Gr: row B's pair starts at index
  /// B * 2 * GroupWidth, laid out gen words, then kill words.
  uint64_t *groupLanes(size_t Gr) {
    return Data + Gr * NumRows * 2 * GroupWidth;
  }
  const uint64_t *groupLanes(size_t Gr) const {
    return Data + Gr * NumRows * 2 * GroupWidth;
  }

  /// Mask of the valid (in-width) bits of slice \p S; zero for the dead
  /// tail words of a partial final group.
  uint64_t sliceMask(size_t S) const {
    if (S >= NumSlices)
      return 0;
    size_t Rem = NumBits % 64;
    if (S + 1 == NumSlices && Rem != 0)
      return (uint64_t(1) << Rem) - 1;
    return ~uint64_t(0);
  }

  /// Scatters a composed transfer (width bits()) into row \p Row's gen
  /// and kill lanes.  Dead tail words of a partial final group stay zero
  /// (the identity transfer).
  void setTransfer(size_t Row, const BitVector &Gen, const BitVector &Kill) {
    for (size_t Gr = 0; Gr < NumGroups; ++Gr) {
      uint64_t *L = groupLanes(Gr) + Row * 2 * GroupWidth;
      for (size_t W = 0; W < GroupWidth; ++W) {
        size_t S = Gr * GroupWidth + W;
        L[W] = S < NumSlices ? Gen.word(S) : 0;
        L[GroupWidth + W] = S < NumSlices ? Kill.word(S) : 0;
      }
    }
  }

  /// Tile flush: writes \p N consecutive rows starting at \p Row0 from
  /// the staged transfers Gen[0..N) / Kill[0..N).  One setTransfer per
  /// row touches every group region (a cache-line-sized write per group,
  /// strided megabytes apart on large programs — the full rebuild spends
  /// its time waiting on that scatter); flushing a tile walks the groups
  /// in the outer loop instead, so each group region receives one
  /// contiguous N-row burst while the staged vectors stay resident.
  void setTransferTile(size_t Row0, size_t N, const BitVector *Gen,
                       const BitVector *Kill) {
    for (size_t Gr = 0; Gr < NumGroups; ++Gr) {
      uint64_t *Base = groupLanes(Gr) + Row0 * 2 * GroupWidth;
      for (size_t R = 0; R < N; ++R) {
        uint64_t *L = Base + R * 2 * GroupWidth;
        for (size_t W = 0; W < GroupWidth; ++W) {
          size_t S = Gr * GroupWidth + W;
          L[W] = S < NumSlices ? Gen[R].word(S) : 0;
          L[GroupWidth + W] = S < NumSlices ? Kill[R].word(S) : 0;
        }
      }
    }
  }

private:
  support::Arena Mem;
  uint64_t *Data = nullptr;
  size_t NumRows = 0;
  size_t NumBits = 0;
  size_t NumSlices = 0;
  size_t NumGroups = 0;
};

/// A group-major plane companion to PackedLaneMatrix: per (group, row)
/// GroupWidth contiguous words.  The engine keeps two — the dense out
/// plane the meet side gathers from, and the in plane written once per
/// evaluation and read back only by exportSolution.
class PackedGroupPlane {
public:
  static constexpr size_t GroupWidth = PackedLaneMatrix::GroupWidth;

  void reshape(size_t Rows, size_t Bits) {
    NumRows = Rows;
    size_t NumSlices = (Bits + 63) / 64;
    NumGroups = (NumSlices + GroupWidth - 1) / GroupWidth;
    Mem.reset();
    size_t Total = NumRows * NumGroups * GroupWidth;
    Data = Total ? Mem.allocate<uint64_t>(Total) : nullptr;
    for (size_t I = 0; I < Total; ++I)
      Data[I] = 0;
  }

  size_t rows() const { return NumRows; }
  uint64_t *groupRow(size_t Gr) { return Data + Gr * NumRows * GroupWidth; }
  const uint64_t *groupRow(size_t Gr) const {
    return Data + Gr * NumRows * GroupWidth;
  }

private:
  support::Arena Mem;
  uint64_t *Data = nullptr;
  size_t NumRows = 0;
  size_t NumGroups = 0;
};

/// The transposed analog of TransferCache: composed per-block gen/kill
/// transfers stored as packed matrices, refreshed tick-incrementally.
/// A full rebuild walks an arena-backed FlatProgram snapshot (one linear
/// pass over the whole instruction stream, parallelized over block
/// ranges); an incremental refresh recomposes only tick-dirty blocks.
/// Composition goes through the problem's own gen/kill, so the packed
/// transfers agree bit-for-bit with the wide-vector path.
class MultiPatternTransfers {
public:
  /// Brings the gen/kill lanes of \p Lanes (the engine's interleaved
  /// working set, already shaped for this solve) up to date for
  /// \p G / \p P; counts recompositions into `dfa.transfers_recomputed`.
  /// Returns true when the refresh was incremental (out lanes of
  /// non-dirty rows were not touched).
  ///
  /// Rows are keyed by *iteration-order position*, not BlockId: block
  /// Order[I] owns row I, so the solver's seed sweep walks the lane
  /// array strictly sequentially.  Unreachable blocks (absent from the
  /// order) share the dummy row Order.size(), whose transfer stays the
  /// identity and whose out word stays the initial value — exactly what
  /// the wide solver reads from a never-evaluated neighbor.  A full
  /// rebuild also retargets the CSR edge lists into position space
  /// (meetOff/meetPos, depOff/depPos), which is valid as long as the
  /// order is — both are functions of the graph structure and the
  /// problem direction, and either changing forces the full rebuild.
  bool refresh(const FlowGraph &G, const DataflowProblem &P,
               uint64_t ProblemGen, PackedLaneMatrix &Lanes,
               const std::vector<BlockId> &Order,
               const std::vector<size_t> &OrderIndex);

  /// The flat snapshot backing the last refresh.
  const FlatProgram &flat() const { return Flat; }

  /// Forgets the cached graph identity (next refresh is a full rebuild)
  /// — required before binding to a different graph, whose address and
  /// ticks could alias the cached ones.
  void invalidate() {
    Valid = false;
    CachedG = nullptr;
  }

  /// Position-space CSR: the meet neighbors of position I are
  /// meetPos()[meetOff()[I] .. meetOff()[I + 1]), likewise the requeue
  /// dependents.  Meet entries may name the dummy row; dependent lists
  /// never do.
  const uint32_t *meetOff() const { return MeetOff.data(); }
  const uint32_t *meetPos() const { return MeetPos.data(); }
  const uint32_t *depOff() const { return DepOff.data(); }
  const uint32_t *depPos() const { return DepPos.data(); }

private:
  FlatProgram Flat;
  std::vector<uint32_t> MeetOff, MeetPos, DepOff, DepPos;
  const FlowGraph *CachedG = nullptr;
  uint64_t CachedGen = 0;
  size_t CachedBits = 0;
  bool CachedForward = true;
  Tick RefreshTick = 0;
  bool Valid = false;
  // Scratch for the serial (incremental) compose path.
  BitVector GenAcc, KillAcc, GenScratch, KillScratch;
};

/// The per-solver transposed engine: packed transfers, the packed
/// previous solution, and one worklist ring per slice group.
/// DataflowSolver owns one and routes worklist solves here when the
/// transposed layout is selected (see solverLayout() in dfa/Dataflow.h).
class TransposedEngine {
public:
  struct SolveRequest {
    const FlowGraph *G = nullptr;
    const DataflowProblem *P = nullptr;
    uint64_t ProblemGen = 0;
    const std::vector<BlockId> *Order = nullptr;
    const std::vector<size_t> *OrderIndex = nullptr;
    bool Forward = true;
    bool MeetAll = true;
    BlockId BoundaryBlock = 0;
    const BitVector *Boundary = nullptr;
    /// When set, seed only the blocks in *Dirty (already closed under
    /// the dependence direction); the packed previous solution must be
    /// valid (solutionValidFor).
    bool Incremental = false;
    const std::vector<BlockId> *Dirty = nullptr;
  };

  /// True if the engine still holds the converged packed solution for
  /// this identity — the precondition for an incremental request.
  bool solutionValidFor(const FlowGraph &G, const DataflowProblem &P,
                        uint64_t ProblemGen) const;

  /// Runs the grouped fixpoint (transfers are refreshed internally);
  /// returns the number of group-block transfer evaluations (each one
  /// advances GroupWidth words of every pattern in the group).
  uint64_t solve(const SolveRequest &R);

  /// Copies the converged packed solution into wide per-block vectors
  /// (meet side → In, transferred side → Out), resizing as needed.
  void exportSolution(std::vector<BitVector> &In,
                      std::vector<BitVector> &Out) const;

  /// Drops the packed solution (the next solve must be full).
  void invalidate() { HasSolution = false; }

  /// invalidate() plus the packed transfers' graph identity — the
  /// cross-graph reset (see DataflowSolver::invalidate).
  void hardInvalidate() {
    HasSolution = false;
    Transfers.invalidate();
  }

private:
  uint64_t drainGroup(size_t Gr, const SolveRequest &R, size_t NumPos,
                      size_t BoundaryPos);
  template <bool MeetAll>
  uint64_t drainGroupImpl(size_t Gr, const SolveRequest &R, size_t NumPos,
                          size_t BoundaryPos);

  MultiPatternTransfers Transfers;
  /// Interleaved {gen, kill} solve-loop lanes (see PackedLaneMatrix),
  /// keyed by iteration-order position; the last row is the unreachable-
  /// block dummy.
  PackedLaneMatrix LaneM;
  /// The transferred side — the words the meet gathers read.  Dense (one
  /// GroupWidth run per row) so a group's whole meet-visible state stays
  /// cache-resident across the fixpoint.
  PackedGroupPlane OutM;
  /// The meet side, written once per evaluation and read back only by
  /// exportSolution — kept out of the hot loop's read set.
  PackedGroupPlane InM;
  std::vector<WorklistRing> GroupWork;

  bool HasSolution = false;
  const FlowGraph *SolG = nullptr;
  uint64_t SolGen = 0;
  size_t SolBits = 0;
  size_t SolRows = 0; ///< Block-space row count (the export size).
  /// The iteration order the packed rows are keyed by.  Borrowed from the
  /// solver's SolveRequest; the solver keeps it alive and stable until
  /// the structure changes, which also invalidates this solution.
  const std::vector<BlockId> *SolOrder = nullptr;
  bool SolForward = true;
  bool SolMeetAll = true;
};

} // namespace am

#endif // AM_DFA_MULTIPATTERN_H
