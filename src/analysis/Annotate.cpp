//===- analysis/Annotate.cpp - Annotated listings ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "analysis/Annotate.h"
#include "analysis/Liveness.h"
#include "analysis/PaperAnalyses.h"
#include "ir/Patterns.h"
#include "ir/Printer.h"

#include <sstream>

using namespace am;

namespace {

std::string patternName(const FlowGraph &G, const AssignPat &P) {
  return G.Vars.name(P.Lhs) + " := " + printTerm(P.Rhs, G.Vars);
}

/// Lists the set bits of \p V using \p NameOf, or "-" when empty.
template <typename NameFn>
std::string setToString(const BitVector &V, NameFn NameOf) {
  if (V.none())
    return "-";
  std::string S;
  for (size_t Idx : V.setBits()) {
    if (!S.empty())
      S += ", ";
    S += NameOf(Idx);
  }
  return S;
}

std::string annotateRedundancy(const FlowGraph &G) {
  AssignPatternTable Pats;
  Pats.build(G);
  RedundancyAnalysis An = RedundancyAnalysis::run(G, Pats);
  auto Name = [&](size_t Idx) { return patternName(G, Pats.pattern(Idx)); };

  std::ostringstream OS;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    OS << "b" << B << ":\n";
    DataflowResult::InstrFacts F = An.facts(B);
    for (size_t Idx = 0; Idx < G.block(B).Instrs.size(); ++Idx) {
      const Instr &I = G.block(B).Instrs[Idx];
      OS << "  " << printInstr(I, G.Vars);
      size_t Pat = Pats.occurrence(I);
      if (Pat != AssignPatternTable::npos && F.Before[Idx].test(Pat))
        OS << "    ;; REDUNDANT";
      OS << "\n    ;; redundant here: " << setToString(F.Before[Idx], Name)
         << "\n";
    }
  }
  return OS.str();
}

std::string annotateHoistability(const FlowGraph &G) {
  AssignPatternTable Pats;
  Pats.build(G);
  HoistabilityAnalysis An = HoistabilityAnalysis::run(G, Pats);
  auto Name = [&](size_t Idx) { return patternName(G, Pats.pattern(Idx)); };

  std::ostringstream OS;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    OS << "b" << B << ":\n";
    OS << "  ;; N-HOISTABLE: " << setToString(An.entryHoistable(B), Name)
       << "\n";
    OS << "  ;; N-INSERT:    " << setToString(An.entryInsert(B), Name)
       << "\n";
    BitVector BlockedSoFar = Pats.makeVector();
    BitVector Tmp = Pats.makeVector();
    for (const Instr &I : G.block(B).Instrs) {
      OS << "  " << printInstr(I, G.Vars);
      size_t Pat = Pats.occurrence(I);
      if (Pat != AssignPatternTable::npos && !BlockedSoFar.test(Pat))
        OS << "    ;; CANDIDATE";
      OS << "\n";
      Pats.blockedBy(I, Tmp);
      BlockedSoFar |= Tmp;
    }
    OS << "  ;; X-HOISTABLE: " << setToString(An.exitHoistable(B), Name)
       << "\n";
    OS << "  ;; X-INSERT:    " << setToString(An.exitInsert(B), Name) << "\n";
  }
  return OS.str();
}

std::string annotateFlush(const FlowGraph &G) {
  FlushAnalysis An = FlushAnalysis::run(G);
  const FlushUniverse &U = An.universe();
  auto Name = [&](size_t Idx) { return G.Vars.name(U.temp(Idx)); };

  std::ostringstream OS;
  OS << ";; temporaries: ";
  if (U.size() == 0)
    OS << "(none)";
  for (size_t Idx = 0; Idx < U.size(); ++Idx)
    OS << (Idx ? ", " : "") << Name(Idx) << " := "
       << printTerm(U.expr(Idx), G.Vars);
  OS << "\n";
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    OS << "b" << B << ":\n";
    DataflowResult::InstrFacts Delay = An.delayability().instrFacts(B);
    DataflowResult::InstrFacts Usable = An.usability().instrFacts(B);
    FlushAnalysis::BlockPlan Plan = An.plan(B);
    for (size_t Idx = 0; Idx < G.block(B).Instrs.size(); ++Idx) {
      if (Plan.InitBefore[Idx].any())
        OS << "  ;; INIT: " << setToString(Plan.InitBefore[Idx], Name)
           << "\n";
      OS << "  " << printInstr(G.block(B).Instrs[Idx], G.Vars);
      if (Plan.Reconstruct[Idx].any())
        OS << "    ;; RECONSTRUCT "
           << setToString(Plan.Reconstruct[Idx], Name);
      OS << "\n    ;; delayable: " << setToString(Delay.Before[Idx], Name)
         << "  usable-after: " << setToString(Usable.After[Idx], Name)
         << "\n";
    }
    if (Plan.InitAtExit.any())
      OS << "  ;; INIT-AT-EXIT: " << setToString(Plan.InitAtExit, Name)
         << "\n";
  }
  return OS.str();
}

std::string annotateLiveness(const FlowGraph &G) {
  LivenessAnalysis An = LivenessAnalysis::run(G);
  auto Name = [&](size_t Idx) {
    return G.Vars.name(makeVarId(static_cast<uint32_t>(Idx)));
  };

  std::ostringstream OS;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    OS << "b" << B << ":\n";
    DataflowResult::InstrFacts F = An.facts(B);
    for (size_t Idx = 0; Idx < G.block(B).Instrs.size(); ++Idx)
      OS << "  " << printInstr(G.block(B).Instrs[Idx], G.Vars)
         << "\n    ;; live: " << setToString(F.Before[Idx], Name) << "\n";
    OS << "  ;; live-out: " << setToString(An.liveOut(B), Name) << "\n";
  }
  return OS.str();
}

} // namespace

std::string am::annotate(const FlowGraph &G, AnnotationKind Kind) {
  switch (Kind) {
  case AnnotationKind::Redundancy:
    return annotateRedundancy(G);
  case AnnotationKind::Hoistability:
    return annotateHoistability(G);
  case AnnotationKind::Flush:
    return annotateFlush(G);
  case AnnotationKind::Liveness:
    return annotateLiveness(G);
  }
  return "";
}

bool am::parseAnnotationKind(const std::string &Name, AnnotationKind &Out) {
  if (Name == "redundancy" || Name == "rae") {
    Out = AnnotationKind::Redundancy;
    return true;
  }
  if (Name == "hoist" || Name == "hoistability") {
    Out = AnnotationKind::Hoistability;
    return true;
  }
  if (Name == "flush" || Name == "delay") {
    Out = AnnotationKind::Flush;
    return true;
  }
  if (Name == "live" || Name == "liveness") {
    Out = AnnotationKind::Liveness;
    return true;
  }
  return false;
}
