//===- analysis/Lifetime.h - Live-range length metrics ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static live-range metrics.  Theorem 5.4 (relative temporary-optimality)
/// speaks about "the number of assignments to temporaries or the length of
/// temporary lifetimes"; this module measures both so the benches and
/// tests can quantify them: a lifetime is counted as the number of program
/// points (instruction boundaries) at which a variable is live.
///
//===----------------------------------------------------------------------===//

#ifndef AM_ANALYSIS_LIFETIME_H
#define AM_ANALYSIS_LIFETIME_H

#include "ir/FlowGraph.h"

#include <cstdint>

namespace am {

/// Aggregated live-range metrics of one program.
struct LifetimeStats {
  /// Σ over all program points of the number of live *temporaries*.
  uint64_t TempLifetimePoints = 0;
  /// Σ over all program points of the number of live variables.
  uint64_t TotalLifetimePoints = 0;
  /// Maximum number of simultaneously live temporaries ("register
  /// pressure" contributed by the transformation).
  uint32_t MaxLiveTemps = 0;
  /// Static number of assignments whose left-hand side is a temporary.
  uint32_t TempAssignments = 0;
};

/// Computes the metrics via a liveness analysis over \p G.
LifetimeStats computeLifetimeStats(const FlowGraph &G);

} // namespace am

#endif // AM_ANALYSIS_LIFETIME_H
