//===- analysis/LcmAnalyses.cpp - LCM analyses implementation --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "analysis/LcmAnalyses.h"

using namespace am;

namespace {

/// Anticipability (down-safety): N-ANT = COMP + TRANSP · X-ANT.
class AnticipabilityProblem : public DataflowProblem {
public:
  AnticipabilityProblem(const ExprPatternTable &E) : E(E) {}

  Direction direction() const override { return Direction::Backward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return E.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    E.computedBy(I, Out);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    E.killedBy(I, Out);
  }

private:
  const ExprPatternTable &E;
};

/// Availability (up-safety): X-AV = (N-AV + COMP) · TRANSP.  In gen/kill
/// form: gen = COMP & TRANSP (self-killing computations like `x := x+1` do
/// not make x+1 available), kill = ¬TRANSP.
class AvailabilityProblem : public DataflowProblem {
public:
  AvailabilityProblem(const ExprPatternTable &E) : E(E) {}

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return E.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    E.computedBy(I, Out);
    BitVector Killed = E.makeVector();
    E.killedBy(I, Killed);
    Out.andNot(Killed);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    E.killedBy(I, Out);
  }

private:
  const ExprPatternTable &E;
};

} // namespace

LcmAnalysis LcmAnalysis::run(const FlowGraph &G,
                             const ExprPatternTable &Exprs) {
  assert(!G.hasCriticalEdges() &&
         "LCM requires critical edges to be split first");
  LcmAnalysis A;
  A.G = &G;
  A.Exprs = &Exprs;
  A.AntProblem = std::make_unique<AnticipabilityProblem>(Exprs);
  A.AvProblem = std::make_unique<AvailabilityProblem>(Exprs);
  A.Ant = solve(G, *A.AntProblem);
  A.Av = solve(G, *A.AvProblem);

  // Local predicates.
  size_t Bits = Exprs.size();
  A.Antloc.assign(G.numBlocks(), BitVector(Bits));
  A.Transp.assign(G.numBlocks(), BitVector(Bits, true));
  BitVector Comp(Bits), Killed(Bits);
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    BitVector KilledSoFar(Bits);
    for (const Instr &I : G.block(B).Instrs) {
      Exprs.computedBy(I, Comp);
      Comp.andNot(KilledSoFar);
      A.Antloc[B] |= Comp;
      Exprs.killedBy(I, Killed);
      KilledSoFar |= Killed;
    }
    A.Transp[B] = ~KilledSoFar;
  }

  // LATER / LATERIN (greatest fixpoint over edges, with a virtual entry
  // edge into s whose EARLIEST is simply ANTIN(s): the program entry has
  // no further "up").  With that edge, LATERIN(s) = ANTIN(s), so
  // up-exposed originals in s are never deleted and placement is lazily
  // delayed to first uses — no insertions at the entry of s are needed.
  A.LaterVirtual = A.antIn(G.start());
  A.LaterIn.assign(G.numBlocks(), BitVector(Bits, true));
  A.Later.resize(G.numBlocks());
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    A.Later[B].assign(G.block(B).Succs.size(), BitVector(Bits, true));

  // In-edge lists: block -> (pred, pred succ index).
  std::vector<std::vector<std::pair<BlockId, size_t>>> InEdges(G.numBlocks());
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (size_t SuccIdx = 0; SuccIdx < G.block(B).Succs.size(); ++SuccIdx)
      InEdges[G.block(B).Succs[SuccIdx]].emplace_back(B, SuccIdx);

  std::vector<BlockId> Order = G.reversePostorder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Order) {
      // LATERIN(B) = meet over incoming LATER edges.
      BitVector NewIn(Bits, true);
      if (B == G.start()) {
        NewIn = A.LaterVirtual;
      } else if (InEdges[B].empty()) {
        NewIn = BitVector(Bits); // unreachable join: be conservative
      } else {
        NewIn = A.Later[InEdges[B][0].first][InEdges[B][0].second];
        for (size_t EdgeIdx = 1; EdgeIdx < InEdges[B].size(); ++EdgeIdx)
          NewIn &= A.Later[InEdges[B][EdgeIdx].first][InEdges[B][EdgeIdx].second];
      }
      if (NewIn != A.LaterIn[B]) {
        A.LaterIn[B] = NewIn;
        Changed = true;
      }
      // LATER(B, succ) = EARLIEST(B, succ) | (LATERIN(B) & ¬ANTLOC(B)).
      BitVector Delayable = A.LaterIn[B];
      Delayable.andNot(A.Antloc[B]);
      for (size_t SuccIdx = 0; SuccIdx < G.block(B).Succs.size(); ++SuccIdx) {
        BitVector NewLater = A.earliest(B, SuccIdx);
        NewLater |= Delayable;
        if (NewLater != A.Later[B][SuccIdx]) {
          A.Later[B][SuccIdx] = NewLater;
          Changed = true;
        }
      }
    }
  }
  return A;
}

BitVector LcmAnalysis::earliest(BlockId B, size_t SuccIdx) const {
  BlockId N = G->block(B).Succs[SuccIdx];
  // EARLIEST(m,n) = ANTIN(n) · ¬AVOUT(m) · (¬TRANSP(m) + ¬ANTOUT(m)).
  BitVector E = antIn(N);
  E.andNot(avOut(B));
  BitVector ThirdFactor = ~transp(B);
  ThirdFactor |= ~antOut(B);
  E &= ThirdFactor;
  return E;
}

BitVector LcmAnalysis::insertOnEdge(BlockId B, size_t SuccIdx) const {
  // INSERT(m,n) = LATER(m,n) · ¬LATERIN(n).
  BitVector Ins = Later[B][SuccIdx];
  Ins.andNot(LaterIn[G->block(B).Succs[SuccIdx]]);
  return Ins;
}

BitVector LcmAnalysis::deleteIn(BlockId B) const {
  // DELETE(b) = ANTLOC(b) · ¬LATERIN(b).
  BitVector Del = Antloc[B];
  Del.andNot(LaterIn[B]);
  return Del;
}
