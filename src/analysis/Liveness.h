//===- analysis/Liveness.h - Variable liveness ------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic backward any-path liveness over variables.  Substrate for the
/// partial-dead-code-elimination extension (the paper's ref [17]) and for
/// statistics.  A variable is live at a point if some path from the point
/// reads it before writing it.
///
//===----------------------------------------------------------------------===//

#ifndef AM_ANALYSIS_LIVENESS_H
#define AM_ANALYSIS_LIVENESS_H

#include "dfa/Dataflow.h"

#include <memory>

namespace am {

/// Liveness facts for one graph snapshot, one bit per variable.
class LivenessAnalysis {
public:
  /// Runs liveness on \p G.  By default every variable is considered dead
  /// at the end node's exit; writes are observable only through `out`.
  static LivenessAnalysis run(const FlowGraph &G);

  const BitVector &liveIn(BlockId B) const { return Result.entry(B); }
  const BitVector &liveOut(BlockId B) const { return Result.exit(B); }

  /// Per-instruction liveness facts of \p B.
  DataflowResult::InstrFacts facts(BlockId B) const {
    return Result.instrFacts(B);
  }

private:
  std::unique_ptr<DataflowProblem> Problem;
  DataflowResult Result;
};

} // namespace am

#endif // AM_ANALYSIS_LIVENESS_H
