//===- analysis/Liveness.cpp - Variable liveness implementation -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

using namespace am;

namespace {

class LivenessProblem : public DataflowProblem {
public:
  explicit LivenessProblem(size_t NumVars) : NumVars(NumVars) {}

  Direction direction() const override { return Direction::Backward; }
  Meet meet() const override { return Meet::Any; }
  size_t numBits() const override { return NumVars; }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    I.forEachUsedVar([&](VarId V) { Out.set(index(V)); });
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    VarId Def = I.definedVar();
    if (isValid(Def))
      Out.set(index(Def));
  }

private:
  size_t NumVars;
};

} // namespace

LivenessAnalysis LivenessAnalysis::run(const FlowGraph &G) {
  LivenessAnalysis A;
  A.Problem = std::make_unique<LivenessProblem>(G.Vars.size());
  A.Result = solve(G, *A.Problem);
  return A;
}
