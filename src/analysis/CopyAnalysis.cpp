//===- analysis/CopyAnalysis.cpp - Reaching copies ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "analysis/CopyAnalysis.h"

using namespace am;

void CopyUniverse::build(const FlowGraph &G) {
  Copies.clear();
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (const Instr &I : G.block(B).Instrs) {
      if (!I.isAssign() || I.Rhs.isNonTrivial() || !I.Rhs.A.isVar() ||
          I.Rhs.A.Var == I.Lhs)
        continue;
      if (occurrence(I) == npos)
        Copies.push_back({I.Lhs, I.Rhs.A.Var});
    }
  }
}

size_t CopyUniverse::occurrence(const Instr &I) const {
  if (!I.isAssign() || I.Rhs.isNonTrivial() || !I.Rhs.A.isVar())
    return npos;
  for (size_t Idx = 0; Idx < Copies.size(); ++Idx)
    if (Copies[Idx].Dst == I.Lhs && Copies[Idx].Src == I.Rhs.A.Var)
      return Idx;
  return npos;
}

void CopyUniverse::killedBy(const Instr &I, BitVector &Out) const {
  Out = makeVector();
  VarId Def = I.definedVar();
  if (!isValid(Def))
    return;
  for (size_t Idx = 0; Idx < Copies.size(); ++Idx)
    if (Copies[Idx].Dst == Def || Copies[Idx].Src == Def)
      Out.set(Idx);
}

namespace {

class ReachingCopiesProblem : public DataflowProblem {
public:
  explicit ReachingCopiesProblem(const CopyUniverse &U) : U(U) {}

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return U.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = U.makeVector();
    size_t Idx = U.occurrence(I);
    if (Idx != CopyUniverse::npos)
      Out.set(Idx);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    U.killedBy(I, Out);
  }

private:
  const CopyUniverse &U;
};

} // namespace

CopyAnalysis CopyAnalysis::run(const FlowGraph &G) {
  CopyAnalysis A;
  A.U = std::make_unique<CopyUniverse>();
  A.U->build(G);
  A.Problem = std::make_unique<ReachingCopiesProblem>(*A.U);
  A.Result = solve(G, *A.Problem);
  return A;
}
