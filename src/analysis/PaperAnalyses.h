//===- analysis/PaperAnalyses.h - Tables 1-3 of the paper ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The three dataflow analyses of Knoop/Rüthing/Steffen, "The Power of
/// Assignment Motion" (PLDI'95):
///
///  * Table 2 — redundant assignment analysis (forward, all-path):
///      N-REDUNDANT = false at s's first instruction, else ∧ preds
///      X-REDUNDANT = EXECUTED + ASS-TRANSP · N-REDUNDANT
///  * Table 1 — hoistability analysis (backward, all-path) plus the
///    N-INSERT / X-INSERT insertion predicates;
///  * Table 3 — final-flush analyses over temporary initializations:
///    delayability (forward, all-path, greatest), usability (backward,
///    any-path, least), latestness, and the N-INIT / X-INIT / RECONSTRUCT
///    placement predicates.
///
/// All results are computed against a frozen snapshot of the graph: callers
/// must not mutate the graph while reading facts, and the referenced
/// pattern tables must outlive the analysis object.
///
//===----------------------------------------------------------------------===//

#ifndef AM_ANALYSIS_PAPERANALYSES_H
#define AM_ANALYSIS_PAPERANALYSES_H

#include "dfa/Dataflow.h"
#include "ir/Patterns.h"

#include <memory>

namespace am {

//===----------------------------------------------------------------------===//
// Table 2: redundancy
//===----------------------------------------------------------------------===//

/// Redundant-assignment facts.  A bit (for pattern a at a point p) means:
/// every path from s to p contains an occurrence of a with no modification
/// of a's left-hand side or operands in between — i.e. an occurrence of a
/// at p would be redundant (Definition 3.4).
class RedundancyAnalysis {
public:
  /// Runs the analysis.  \p Pats must outlive the returned object.
  static RedundancyAnalysis run(const FlowGraph &G,
                                const AssignPatternTable &Pats);

  /// As above, against a caller-owned reusable solver.  \p PatsGen
  /// identifies the pattern table's contents (see DataflowSolver): pass
  /// the generation the table reported so the solver's caches survive
  /// rounds whose rebuild left the universe unchanged.
  static RedundancyAnalysis run(const FlowGraph &G,
                                const AssignPatternTable &Pats,
                                DataflowSolver &Solver, uint64_t PatsGen);

  /// N-/X-REDUNDANT at every instruction boundary of \p B.
  DataflowResult::InstrFacts facts(BlockId B) const {
    return Result.instrFacts(B);
  }

  const BitVector &entry(BlockId B) const { return Result.entry(B); }
  const BitVector &exit(BlockId B) const { return Result.exit(B); }

  /// Serial of the dataflow solve these facts came from (for remarks).
  uint64_t solveSerial() const { return Result.SolveSerial; }

private:
  std::unique_ptr<DataflowProblem> Problem;
  DataflowResult Result;
};

//===----------------------------------------------------------------------===//
// Table 1: hoistability
//===----------------------------------------------------------------------===//

/// The hoistability analysis' block-local predicates (LOC-BLOCKED and
/// LOC-HOISTABLE), cacheable across rounds of the AM fixpoint: a refresh
/// recomputes only blocks the graph stamped dirty since the previous
/// refresh, mirroring the solver's transfer cache one layer up.
class HoistLocalPredicates {
public:
  /// Brings the predicates up to date for \p G / \p Pats.  \p PatsGen
  /// identifies the pattern table's contents; a changed generation (or
  /// graph identity / width) rebuilds everything.
  void refresh(const FlowGraph &G, const AssignPatternTable &Pats,
               uint64_t PatsGen);

  const BitVector &locBlocked(BlockId B) const { return LocBlocked[B]; }
  const BitVector &locHoistable(BlockId B) const { return LocHoistable[B]; }

  /// Forgets the cached graph identity so the next refresh rebuilds
  /// everything — required before reusing the cache for a different
  /// graph (AmContext::reset); capacity is kept.
  void invalidate() {
    Valid = false;
    CachedG = nullptr;
  }

private:
  void computeBlock(const FlowGraph &G, const AssignPatternTable &Pats,
                    BlockId B, BitVector &Scratch);

  std::vector<BitVector> LocBlocked;
  std::vector<BitVector> LocHoistable;
  const FlowGraph *CachedG = nullptr;
  uint64_t CachedGen = 0;
  size_t CachedBits = 0;
  Tick RefreshTick = 0;
  bool Valid = false;
  BitVector Tmp; // blockedBy scratch
};

/// Hoistability facts and insertion points.  A bit at a block boundary
/// means some hoisting candidate of the pattern can be moved (backwards,
/// against control flow) to that boundary while preserving semantics.
class HoistabilityAnalysis {
public:
  /// Runs the analysis.  \p Pats must outlive the returned object.
  static HoistabilityAnalysis run(const FlowGraph &G,
                                  const AssignPatternTable &Pats);

  /// As above, against a caller-owned reusable solver and block-local
  /// predicate cache (both must outlive the returned object).  \p PatsGen
  /// as for RedundancyAnalysis::run.
  static HoistabilityAnalysis run(const FlowGraph &G,
                                  const AssignPatternTable &Pats,
                                  DataflowSolver &Solver,
                                  HoistLocalPredicates &Locals,
                                  uint64_t PatsGen);

  /// N-HOISTABLE* / X-HOISTABLE* (greatest solution).
  const BitVector &entryHoistable(BlockId B) const { return Result.entry(B); }
  const BitVector &exitHoistable(BlockId B) const { return Result.exit(B); }

  /// LOC-BLOCKED: patterns blocked by some instruction of the block.
  const BitVector &locBlocked(BlockId B) const {
    return Locals->locBlocked(B);
  }

  /// LOC-HOISTABLE: patterns with a hoisting candidate in the block.
  const BitVector &locHoistable(BlockId B) const {
    return Locals->locHoistable(B);
  }

  /// N-INSERT: patterns to insert at the entry of \p B.  The start node's
  /// entry is the hoisting frontier when hoistability reaches it.
  BitVector entryInsert(BlockId B) const;

  /// X-INSERT: patterns to insert at the exit of \p B.
  BitVector exitInsert(BlockId B) const;

  /// Serial of the dataflow solve these facts came from (for remarks).
  uint64_t solveSerial() const { return Result.SolveSerial; }

private:
  const FlowGraph *G = nullptr;
  std::unique_ptr<DataflowProblem> Problem;
  DataflowResult Result;
  /// Points at OwnedLocals or a caller-provided cache.
  const HoistLocalPredicates *Locals = nullptr;
  std::unique_ptr<HoistLocalPredicates> OwnedLocals;
};

//===----------------------------------------------------------------------===//
// Table 3: final flush
//===----------------------------------------------------------------------===//

/// The universe the flush analyses range over: the temporaries h_e whose
/// initialization `h_e := e` occurs in the program.
class FlushUniverse {
public:
  void build(const FlowGraph &G);

  size_t size() const { return Temps.size(); }
  VarId temp(size_t Idx) const { return Temps[Idx].Var; }
  const Term &expr(size_t Idx) const { return Temps[Idx].Expr; }

  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t indexOfTemp(VarId V) const;

  /// IS-INST: the temporaries whose initialization \p I is an instance of.
  void isInst(const Instr &I, BitVector &Out) const;

  /// USED: the temporaries \p I reads.
  void used(const Instr &I, BitVector &Out) const;

  /// BLOCKED: the temporaries h_e whose initialization cannot be moved
  /// (sunk) across \p I: an operand of e or h_e itself is modified.
  void blocked(const Instr &I, BitVector &Out) const;

  BitVector makeVector() const { return BitVector(Temps.size()); }

private:
  struct TempInfo {
    VarId Var;
    Term Expr;
  };
  std::vector<TempInfo> Temps;
  std::vector<size_t> VarToIdx; // dense var index -> temp index or npos
};

/// Delayability + usability facts (Table 3) with the derived latestness
/// and placement predicates, at instruction granularity.
class FlushAnalysis {
public:
  static FlushAnalysis run(const FlowGraph &G);

  const FlushUniverse &universe() const { return *UniversePtr; }

  /// Placement decisions for one block, index-aligned with its
  /// instructions at the time of analysis.
  struct BlockPlan {
    /// For instruction i, temps whose init goes immediately before i
    /// (N-INIT).
    std::vector<BitVector> InitBefore;
    /// Temps whose use in instruction i is reconstructed to the original
    /// expression (RECONSTRUCT).
    std::vector<BitVector> Reconstruct;
    /// Temps whose init goes at the block's exit (X-INIT).
    BitVector InitAtExit;
  };

  /// Computes the full placement plan for block \p B.
  BlockPlan plan(BlockId B) const;

  /// Raw delayability facts (greatest solution), for tests.
  const DataflowResult &delayability() const { return Delay; }

  /// Raw usability facts (least solution), for tests.
  const DataflowResult &usability() const { return Usable; }

private:
  const FlowGraph *G = nullptr;
  std::unique_ptr<FlushUniverse> UniversePtr;
  std::unique_ptr<DataflowProblem> DelayProblem;
  std::unique_ptr<DataflowProblem> UsableProblem;
  DataflowResult Delay;
  DataflowResult Usable;
};

} // namespace am

#endif // AM_ANALYSIS_PAPERANALYSES_H
