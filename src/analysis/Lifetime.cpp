//===- analysis/Lifetime.cpp - Live-range metrics ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lifetime.h"
#include "analysis/Liveness.h"

using namespace am;

LifetimeStats am::computeLifetimeStats(const FlowGraph &G) {
  LifetimeStats Stats;
  LivenessAnalysis Live = LivenessAnalysis::run(G);

  // Which variable indices are temporaries?
  BitVector TempMask(G.Vars.size());
  for (uint32_t V = 0; V < G.Vars.size(); ++V)
    if (G.Vars.isTemp(makeVarId(V)))
      TempMask.set(V);

  auto Note = [&](const BitVector &LiveSet) {
    Stats.TotalLifetimePoints += LiveSet.count();
    BitVector LiveTemps = LiveSet;
    LiveTemps &= TempMask;
    size_t N = LiveTemps.count();
    Stats.TempLifetimePoints += N;
    Stats.MaxLiveTemps = std::max(Stats.MaxLiveTemps,
                                  static_cast<uint32_t>(N));
  };

  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    DataflowResult::InstrFacts F = Live.facts(B);
    // Count the point before every instruction plus the block exit; empty
    // blocks contribute their single entry/exit point.
    for (const BitVector &V : F.Before)
      Note(V);
    Note(Live.liveOut(B));
    for (const Instr &I : G.block(B).Instrs)
      if (I.isAssign() && G.Vars.isTemp(I.Lhs))
        ++Stats.TempAssignments;
  }
  return Stats;
}
