//===- analysis/PaperAnalyses.cpp - Tables 1-3 implementation --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "analysis/PaperAnalyses.h"
#include "support/Profiler.h"
#include "support/ThreadPool.h"

using namespace am;

namespace {

//===----------------------------------------------------------------------===//
// Table 2: X-REDUNDANT = EXECUTED + ASS-TRANSP · N-REDUNDANT
//===----------------------------------------------------------------------===//

class RedundancyProblem : public DataflowProblem {
public:
  RedundancyProblem(const AssignPatternTable &Pats) : Pats(Pats) {}

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return Pats.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out.clearAndResize(Pats.size());
    size_t Idx = Pats.occurrence(I);
    // Only patterns `v := t` with v not an operand of t can be redundant
    // (Table 2 precondition).
    if (Idx != AssignPatternTable::npos && Pats.redundancyEligible().test(Idx))
      Out.set(Idx);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Pats.killedBy(I, Out);
  }

private:
  const AssignPatternTable &Pats;
};

//===----------------------------------------------------------------------===//
// Table 1: N-HOISTABLE = LOC-HOISTABLE + X-HOISTABLE · ¬LOC-BLOCKED,
// decomposed to instruction granularity (gen at occurrences, kill at
// blockers; the within-block composition reproduces the candidate rule:
// only occurrences not preceded by a blocker count).
//===----------------------------------------------------------------------===//

class HoistabilityProblem : public DataflowProblem {
public:
  HoistabilityProblem(const AssignPatternTable &Pats) : Pats(Pats) {}

  Direction direction() const override { return Direction::Backward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return Pats.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out.clearAndResize(Pats.size());
    size_t Idx = Pats.occurrence(I);
    if (Idx != AssignPatternTable::npos)
      Out.set(Idx);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Pats.blockedBy(I, Out);
  }

private:
  const AssignPatternTable &Pats;
};

//===----------------------------------------------------------------------===//
// Table 3 problems
//===----------------------------------------------------------------------===//

/// X-DELAYABLE = IS-INST + N-DELAYABLE · ¬USED · ¬BLOCKED (forward, all).
class DelayabilityProblem : public DataflowProblem {
public:
  DelayabilityProblem(const FlushUniverse &U) : U(U) {}

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return U.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    U.isInst(I, Out);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    // thread_local (not a member): kill() is invoked concurrently from
    // the transfer-composition workers, which share one problem instance.
    static thread_local BitVector Tmp;
    U.used(I, Out);
    U.blocked(I, Tmp);
    Out |= Tmp;
  }

private:
  const FlushUniverse &U;
};

/// N-USABLE = USED + ¬IS-INST · X-USABLE (backward, any).  Solved as a
/// least fixpoint: "h is used on some program continuation before being
/// re-initialized" — the liveness-style semantics footnote 7 describes.
class UsabilityProblem : public DataflowProblem {
public:
  UsabilityProblem(const FlushUniverse &U) : U(U) {}

  Direction direction() const override { return Direction::Backward; }
  Meet meet() const override { return Meet::Any; }
  size_t numBits() const override { return U.size(); }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    U.used(I, Out);
  }

  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    U.isInst(I, Out);
  }

private:
  const FlushUniverse &U;
};

} // namespace

//===----------------------------------------------------------------------===//
// RedundancyAnalysis
//===----------------------------------------------------------------------===//

RedundancyAnalysis RedundancyAnalysis::run(const FlowGraph &G,
                                           const AssignPatternTable &Pats) {
  AM_PROF_SCOPE("analysis.redundancy");
  RedundancyAnalysis A;
  A.Problem = std::make_unique<RedundancyProblem>(Pats);
  A.Result = solve(G, *A.Problem, SolverKind::Worklist);
  return A;
}

RedundancyAnalysis RedundancyAnalysis::run(const FlowGraph &G,
                                           const AssignPatternTable &Pats,
                                           DataflowSolver &Solver,
                                           uint64_t PatsGen) {
  AM_PROF_SCOPE("analysis.redundancy");
  RedundancyAnalysis A;
  A.Problem = std::make_unique<RedundancyProblem>(Pats);
  A.Result = Solver.solve(G, *A.Problem, SolverKind::Worklist, PatsGen);
  return A;
}

//===----------------------------------------------------------------------===//
// HoistLocalPredicates
//===----------------------------------------------------------------------===//

void HoistLocalPredicates::computeBlock(const FlowGraph &G,
                                        const AssignPatternTable &Pats,
                                        BlockId B, BitVector &Scratch) {
  size_t Bits = Pats.size();
  BitVector &Hoistable = LocHoistable[B];
  BitVector &BlockedSoFar = LocBlocked[B];
  Hoistable.clearAndResize(Bits);
  BlockedSoFar.clearAndResize(Bits);
  for (const Instr &I : G.block(B).Instrs) {
    // A hoisting candidate is an occurrence not preceded (within the
    // block) by an instruction blocking it.
    size_t Idx = Pats.occurrence(I);
    if (Idx != AssignPatternTable::npos && !BlockedSoFar.test(Idx))
      Hoistable.set(Idx);
    Pats.blockedBy(I, Scratch);
    BlockedSoFar |= Scratch;
  }
}

void HoistLocalPredicates::refresh(const FlowGraph &G,
                                   const AssignPatternTable &Pats,
                                   uint64_t PatsGen) {
  size_t NumBlocks = G.numBlocks();
  bool Incremental = Valid && CachedG == &G && CachedGen == PatsGen &&
                     CachedBits == Pats.size() &&
                     LocBlocked.size() <= NumBlocks;
  LocBlocked.resize(NumBlocks);
  LocHoistable.resize(NumBlocks);
  if (!Incremental) {
    // Full rebuild: each block's predicates depend only on that block's
    // instructions and the (const) pattern table, so contiguous block
    // ranges go to the pool with one scratch vector per range.
    threads::pool().parallelRanges(NumBlocks, [&](size_t Begin, size_t End) {
      BitVector Scratch;
      for (size_t B = Begin; B < End; ++B)
        computeBlock(G, Pats, static_cast<BlockId>(B), Scratch);
    });
  } else {
    for (BlockId B = 0; B < NumBlocks; ++B) {
      if (G.blockTick(B) > RefreshTick)
        computeBlock(G, Pats, B, Tmp);
    }
  }
  CachedG = &G;
  CachedGen = PatsGen;
  CachedBits = Pats.size();
  RefreshTick = G.modTick();
  Valid = true;
}

//===----------------------------------------------------------------------===//
// HoistabilityAnalysis
//===----------------------------------------------------------------------===//

HoistabilityAnalysis HoistabilityAnalysis::run(const FlowGraph &G,
                                               const AssignPatternTable &Pats) {
  AM_PROF_SCOPE("analysis.hoistability");
  HoistabilityAnalysis A;
  A.G = &G;
  A.Problem = std::make_unique<HoistabilityProblem>(Pats);
  A.Result = solve(G, *A.Problem, SolverKind::Worklist);
  A.OwnedLocals = std::make_unique<HoistLocalPredicates>();
  A.OwnedLocals->refresh(G, Pats, /*PatsGen=*/0);
  A.Locals = A.OwnedLocals.get();
  return A;
}

HoistabilityAnalysis HoistabilityAnalysis::run(const FlowGraph &G,
                                               const AssignPatternTable &Pats,
                                               DataflowSolver &Solver,
                                               HoistLocalPredicates &Locals,
                                               uint64_t PatsGen) {
  AM_PROF_SCOPE("analysis.hoistability");
  HoistabilityAnalysis A;
  A.G = &G;
  A.Problem = std::make_unique<HoistabilityProblem>(Pats);
  A.Result = Solver.solve(G, *A.Problem, SolverKind::Worklist, PatsGen);
  Locals.refresh(G, Pats, PatsGen);
  A.Locals = &Locals;
  return A;
}

BitVector HoistabilityAnalysis::entryInsert(BlockId B) const {
  BitVector Insert = entryHoistable(B);
  if (B == G->start())
    // The start node has no predecessors: its entry is the hoisting
    // frontier for everything still hoistable there.
    return Insert;
  BitVector AnyPredStops(Insert.size());
  for (BlockId P : G->block(B).Preds) {
    BitVector NotHoistable = exitHoistable(P);
    NotHoistable.flipAll();
    AnyPredStops |= NotHoistable;
  }
  Insert &= AnyPredStops;
  return Insert;
}

BitVector HoistabilityAnalysis::exitInsert(BlockId B) const {
  BitVector Insert = exitHoistable(B);
  Insert &= locBlocked(B);
  return Insert;
}

//===----------------------------------------------------------------------===//
// FlushUniverse
//===----------------------------------------------------------------------===//

void FlushUniverse::build(const FlowGraph &G) {
  Temps.clear();
  VarToIdx.assign(G.Vars.size(), npos);
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (const Instr &I : G.block(B).Instrs) {
      if (!I.isAssign() || !I.Rhs.isNonTrivial())
        continue;
      if (!G.Vars.isTemp(I.Lhs))
        continue;
      ExprId E = G.Exprs.lookup(I.Rhs);
      if (!isValid(E) || G.Vars.tempFor(I.Lhs) != E)
        continue;
      if (VarToIdx[index(I.Lhs)] != npos)
        continue;
      VarToIdx[index(I.Lhs)] = Temps.size();
      Temps.push_back({I.Lhs, I.Rhs});
    }
  }
}

size_t FlushUniverse::indexOfTemp(VarId V) const {
  size_t Idx = index(V);
  return Idx < VarToIdx.size() ? VarToIdx[Idx] : npos;
}

void FlushUniverse::isInst(const Instr &I, BitVector &Out) const {
  Out.clearAndResize(Temps.size());
  if (!I.isAssign())
    return;
  size_t Idx = indexOfTemp(I.Lhs);
  if (Idx != npos && I.Rhs == Temps[Idx].Expr)
    Out.set(Idx);
}

void FlushUniverse::used(const Instr &I, BitVector &Out) const {
  Out.clearAndResize(Temps.size());
  I.forEachUsedVar([&](VarId V) {
    size_t Idx = indexOfTemp(V);
    if (Idx != npos)
      Out.set(Idx);
  });
}

void FlushUniverse::blocked(const Instr &I, BitVector &Out) const {
  Out.clearAndResize(Temps.size());
  VarId Def = I.definedVar();
  if (!isValid(Def))
    return;
  for (size_t Idx = 0; Idx < Temps.size(); ++Idx) {
    if (Temps[Idx].Var == Def || Temps[Idx].Expr.usesVar(Def))
      Out.set(Idx);
  }
}

//===----------------------------------------------------------------------===//
// FlushAnalysis
//===----------------------------------------------------------------------===//

FlushAnalysis FlushAnalysis::run(const FlowGraph &G) {
  FlushAnalysis A;
  A.G = &G;
  A.UniversePtr = std::make_unique<FlushUniverse>();
  A.UniversePtr->build(G);
  A.DelayProblem = std::make_unique<DelayabilityProblem>(*A.UniversePtr);
  A.UsableProblem = std::make_unique<UsabilityProblem>(*A.UniversePtr);
  {
    AM_PROF_SCOPE("analysis.delayability");
    A.Delay = solve(G, *A.DelayProblem, SolverKind::Worklist);
  }
  {
    AM_PROF_SCOPE("analysis.usability");
    A.Usable = solve(G, *A.UsableProblem, SolverKind::Worklist);
  }
  return A;
}

FlushAnalysis::BlockPlan FlushAnalysis::plan(BlockId B) const {
  const FlushUniverse &U = *UniversePtr;
  const auto &Instrs = G->block(B).Instrs;
  DataflowResult::InstrFacts D = Delay.instrFacts(B);
  DataflowResult::InstrFacts Us = Usable.instrFacts(B);

  BlockPlan Plan;
  Plan.InitBefore.resize(Instrs.size());
  Plan.Reconstruct.resize(Instrs.size());

  BitVector Used = U.makeVector(), Blocked = U.makeVector();
  for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
    U.used(Instrs[Idx], Used);
    U.blocked(Instrs[Idx], Blocked);
    // N-LATEST = N-DELAYABLE* · (USED + BLOCKED).
    BitVector NLatest = D.Before[Idx];
    NLatest &= (Used | Blocked);
    // N-INIT = N-LATEST · X-USABLE;  RECONSTRUCT = USED · N-LATEST ·
    // ¬X-USABLE (usability *after* the instruction: its own use does not
    // justify an initialization by itself).
    const BitVector &XUsable = Us.After[Idx];
    Plan.InitBefore[Idx] = NLatest & XUsable;
    Plan.Reconstruct[Idx] = Used & NLatest & ~XUsable;
  }

  // X-LATEST = X-DELAYABLE* · ∃succ ¬N-DELAYABLE*, guarded by usability at
  // the exit so dead initializations vanish instead of being inserted.
  BitVector InitAtExit = Delay.exit(B);
  BitVector AnySuccStops(U.size());
  for (BlockId S : G->block(B).Succs) {
    BitVector NotDelay = Delay.entry(S);
    NotDelay.flipAll();
    AnySuccStops |= NotDelay;
  }
  InitAtExit &= AnySuccStops;
  InitAtExit &= Usable.exit(B);
  Plan.InitAtExit = InitAtExit;
  return Plan;
}
