//===- analysis/Dominators.h - Dominator tree and natural loops -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator computation (Cooper/Harvey/Kennedy's "engineered" iterative
/// algorithm) and natural-loop detection from dominance back edges.  Used
/// by the benches to report "assignments moved out of loops" and by the
/// generator statistics; loop detection also classifies reducibility,
/// which the paper's complexity discussion distinguishes (structured vs
/// unrestricted control flow).
///
//===----------------------------------------------------------------------===//

#ifndef AM_ANALYSIS_DOMINATORS_H
#define AM_ANALYSIS_DOMINATORS_H

#include "ir/FlowGraph.h"
#include "support/BitVector.h"

#include <vector>

namespace am {

/// Immediate-dominator tree of a flow graph.
class DominatorTree {
public:
  /// Builds the tree; the graph must be valid (every node reachable).
  static DominatorTree compute(const FlowGraph &G);

  /// Immediate dominator of \p B (InvalidBlock for the start node).
  BlockId idom(BlockId B) const { return Idom[B]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;

private:
  std::vector<BlockId> Idom;
};

/// One natural loop: a dominance back edge Latch -> Header plus the set of
/// blocks that can reach the latch without passing the header.
struct NaturalLoop {
  BlockId Header = InvalidBlock;
  BlockId Latch = InvalidBlock;
  BitVector Blocks; // indexed by block id
};

/// Loop structure of a graph.
struct LoopInfo {
  std::vector<NaturalLoop> Loops;
  /// Blocks contained in at least one natural loop.
  BitVector InAnyLoop;
  /// A retreating edge whose target does not dominate its source was
  /// found: the graph is irreducible (Figure 7's construct).
  bool Irreducible = false;

  /// Computes loops from the dominator tree.
  static LoopInfo compute(const FlowGraph &G);

  /// Number of assignment instructions inside some natural loop.
  unsigned assignmentsInLoops(const FlowGraph &G) const;
};

} // namespace am

#endif // AM_ANALYSIS_DOMINATORS_H
