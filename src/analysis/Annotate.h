//===- analysis/Annotate.h - Annotated analysis listings -------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a program with per-instruction analysis facts as comments —
/// the debugging view of Tables 1-3.  Used by `amopt --annotate=...`
/// (tools/amopt.cpp) and
/// handy when studying why the algorithm did (or did not) move something.
///
//===----------------------------------------------------------------------===//

#ifndef AM_ANALYSIS_ANNOTATE_H
#define AM_ANALYSIS_ANNOTATE_H

#include "ir/FlowGraph.h"

#include <string>

namespace am {

/// Which analysis to annotate with.
enum class AnnotationKind {
  Redundancy,   ///< Table 2: which patterns are redundant at each entry
  Hoistability, ///< Table 1: hoistable patterns + candidate/insert marks
  Flush,        ///< Table 3: delayable/usable temporaries
  Liveness,     ///< live variables at each point
};

/// Returns the program listing with `;; fact` annotations interleaved.
/// The graph must be valid; for Hoistability/Flush annotations it must
/// also have no critical edges (callers typically split first).
std::string annotate(const FlowGraph &G, AnnotationKind Kind);

/// Parses an annotation kind name ("redundancy", "hoist", "flush",
/// "live"); returns false on unknown names.
bool parseAnnotationKind(const std::string &Name, AnnotationKind &Out);

} // namespace am

#endif // AM_ANALYSIS_ANNOTATE_H
