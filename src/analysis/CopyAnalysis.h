//===- analysis/CopyAnalysis.h - Reaching copies ----------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reaching-copy analysis for the copy-propagation baseline (used in the
/// paper's Section 6 comparison of "EM + CP" against uniform EM & AM).
/// A copy `x := y` reaches a point if it was executed on every path from s
/// and neither x nor y was modified since.
///
//===----------------------------------------------------------------------===//

#ifndef AM_ANALYSIS_COPYANALYSIS_H
#define AM_ANALYSIS_COPYANALYSIS_H

#include "dfa/Dataflow.h"

#include <memory>
#include <vector>

namespace am {

/// The copy patterns `x := y` (variable-to-variable) of one snapshot.
class CopyUniverse {
public:
  void build(const FlowGraph &G);

  size_t size() const { return Copies.size(); }
  VarId dst(size_t Idx) const { return Copies[Idx].Dst; }
  VarId src(size_t Idx) const { return Copies[Idx].Src; }

  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Index of the copy pattern \p I is an occurrence of, or npos.
  size_t occurrence(const Instr &I) const;

  /// Copies invalidated by \p I (either side modified).
  void killedBy(const Instr &I, BitVector &Out) const;

  BitVector makeVector() const { return BitVector(Copies.size()); }

private:
  struct Copy {
    VarId Dst;
    VarId Src;
  };
  std::vector<Copy> Copies;
};

/// Forward all-path reaching-copies facts.
class CopyAnalysis {
public:
  static CopyAnalysis run(const FlowGraph &G);

  const CopyUniverse &universe() const { return *U; }

  /// Per-instruction reaching facts of \p B.
  DataflowResult::InstrFacts facts(BlockId B) const {
    return Result.instrFacts(B);
  }

private:
  std::unique_ptr<CopyUniverse> U;
  std::unique_ptr<DataflowProblem> Problem;
  DataflowResult Result;
};

} // namespace am

#endif // AM_ANALYSIS_COPYANALYSIS_H
