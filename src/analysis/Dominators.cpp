//===- analysis/Dominators.cpp - Dominators and loops -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>

using namespace am;

DominatorTree DominatorTree::compute(const FlowGraph &G) {
  DominatorTree T;
  size_t N = G.numBlocks();
  T.Idom.assign(N, InvalidBlock);

  // Cooper/Harvey/Kennedy: iterate "intersect" over reverse postorder.
  std::vector<BlockId> Rpo = G.reversePostorder();
  std::vector<size_t> RpoIndex(N, SIZE_MAX);
  for (size_t Idx = 0; Idx < Rpo.size(); ++Idx)
    RpoIndex[Rpo[Idx]] = Idx;

  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = T.Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = T.Idom[B];
    }
    return A;
  };

  T.Idom[G.start()] = G.start(); // sentinel during iteration
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Rpo) {
      if (B == G.start())
        continue;
      BlockId NewIdom = InvalidBlock;
      for (BlockId P : G.block(B).Preds) {
        if (T.Idom[P] == InvalidBlock)
          continue; // unprocessed predecessor
        NewIdom = NewIdom == InvalidBlock ? P : Intersect(P, NewIdom);
      }
      if (NewIdom != InvalidBlock && T.Idom[B] != NewIdom) {
        T.Idom[B] = NewIdom;
        Changed = true;
      }
    }
  }
  T.Idom[G.start()] = InvalidBlock;
  return T;
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  while (B != InvalidBlock) {
    if (A == B)
      return true;
    B = Idom[B];
  }
  return false;
}

LoopInfo LoopInfo::compute(const FlowGraph &G) {
  LoopInfo Info;
  Info.InAnyLoop = BitVector(G.numBlocks());
  DominatorTree Doms = DominatorTree::compute(G);

  // Retreating edges: target already on the DFS stack.  The dominance
  // test splits them into back edges (natural loops) and witnesses of
  // irreducibility.
  std::vector<BlockId> Rpo = G.reversePostorder();
  std::vector<size_t> RpoIndex(G.numBlocks(), SIZE_MAX);
  for (size_t Idx = 0; Idx < Rpo.size(); ++Idx)
    RpoIndex[Rpo[Idx]] = Idx;

  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (BlockId S : G.block(B).Succs) {
      // Tree, forward and cross edges all have a larger target RPO index;
      // only retreating (including self) edges point backwards.
      if (RpoIndex[S] > RpoIndex[B])
        continue;
      if (!Doms.dominates(S, B)) {
        Info.Irreducible = true;
        continue;
      }
      // Natural loop of back edge B -> S: everything reaching B without
      // passing S.
      NaturalLoop Loop;
      Loop.Header = S;
      Loop.Latch = B;
      Loop.Blocks = BitVector(G.numBlocks());
      Loop.Blocks.set(S);
      std::vector<BlockId> Work;
      if (!Loop.Blocks.test(B)) {
        Loop.Blocks.set(B);
        Work.push_back(B);
      }
      while (!Work.empty()) {
        BlockId Cur = Work.back();
        Work.pop_back();
        for (BlockId P : G.block(Cur).Preds)
          if (!Loop.Blocks.test(P)) {
            Loop.Blocks.set(P);
            Work.push_back(P);
          }
      }
      Info.InAnyLoop |= Loop.Blocks;
      Info.Loops.push_back(std::move(Loop));
    }
  }
  return Info;
}

unsigned LoopInfo::assignmentsInLoops(const FlowGraph &G) const {
  unsigned N = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    if (!InAnyLoop.test(B))
      continue;
    for (const Instr &I : G.block(B).Instrs)
      N += I.isAssign();
  }
  return N;
}
