//===- analysis/LcmAnalyses.h - Lazy-code-motion analyses ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dataflow analyses behind the expression-motion baseline: lazy code
/// motion in the Drechsler/Stadel edge-placement formulation (the paper's
/// refs [10, 15, 16]).  Computes, per expression pattern:
///
///   ANTIN/ANTOUT   anticipability (down-safety), backward all-path
///   AVIN/AVOUT     availability (up-safety), forward all-path
///   EARLIEST(m,n)  earliest safe insertion edges
///   LATER/LATERIN  delayed (lazy) placement
///   INSERT(m,n)    h_e := e insertions on edges
///   DELETE(b)      up-exposed original computations covered by insertions
///
/// The graph must have its critical edges split before running this.
///
//===----------------------------------------------------------------------===//

#ifndef AM_ANALYSIS_LCMANALYSES_H
#define AM_ANALYSIS_LCMANALYSES_H

#include "dfa/Dataflow.h"
#include "ir/Patterns.h"

#include <memory>

namespace am {

/// All block- and edge-level LCM facts for one graph snapshot.  \p Exprs
/// must outlive the analysis object.
class LcmAnalysis {
public:
  static LcmAnalysis run(const FlowGraph &G, const ExprPatternTable &Exprs);

  const BitVector &antIn(BlockId B) const { return Ant.entry(B); }
  const BitVector &antOut(BlockId B) const { return Ant.exit(B); }
  const BitVector &avIn(BlockId B) const { return Av.entry(B); }
  const BitVector &avOut(BlockId B) const { return Av.exit(B); }

  /// ANTLOC: expressions computed in B before any operand modification.
  const BitVector &antloc(BlockId B) const { return Antloc[B]; }

  /// TRANSP: expressions with no operand modification in B.
  const BitVector &transp(BlockId B) const { return Transp[B]; }

  /// EARLIEST for the edge B -> Succs[SuccIdx].
  BitVector earliest(BlockId B, size_t SuccIdx) const;

  /// INSERT for the edge B -> Succs[SuccIdx]: place `h_e := e` there.
  /// With the virtual entry edge, LATERIN(s) = ANTIN(s), so no insertions
  /// at the entry of s are ever required.
  BitVector insertOnEdge(BlockId B, size_t SuccIdx) const;

  /// DELETE: up-exposed computations of e in B are redundant and must be
  /// replaced by h_e.
  BitVector deleteIn(BlockId B) const;

  /// LATERIN, exposed for tests.
  const BitVector &laterIn(BlockId B) const { return LaterIn[B]; }

private:
  const FlowGraph *G = nullptr;
  const ExprPatternTable *Exprs = nullptr;
  std::unique_ptr<DataflowProblem> AntProblem;
  std::unique_ptr<DataflowProblem> AvProblem;
  DataflowResult Ant;
  DataflowResult Av;
  std::vector<BitVector> Antloc;
  std::vector<BitVector> Transp;
  std::vector<std::vector<BitVector>> Later; // per block, per succ edge
  BitVector LaterVirtual;                    // virtual entry edge into s
  std::vector<BitVector> LaterIn;
};

} // namespace am

#endif // AM_ANALYSIS_LCMANALYSES_H
