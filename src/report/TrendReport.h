//===- report/TrendReport.h - Longitudinal trend dashboard -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the run history (support/History.h) and its trend analysis
/// (support/Trend.h) as one self-contained HTML dashboard — the
/// longitudinal counterpart of the per-run fleet dashboard
/// (report/FleetReport.h): a status strip (entries, commit span,
/// regressed / improved / drifting counts, machine events), per-preset
/// sparklines with changepoint markers, a counter heat strip showing
/// every machine-independent series across the whole history at a
/// glance, and a commit-to-commit diff table of the two most recent
/// entries.  Inline CSS and SVG only, light and dark mode from one set
/// of role tokens, and byte-deterministic: two renders of the same
/// history file are identical (no render-time clocks, fixed number
/// formatting).
///
//===----------------------------------------------------------------------===//

#ifndef AM_REPORT_TRENDREPORT_H
#define AM_REPORT_TRENDREPORT_H

#include <string>

namespace am::hist {
struct HistoryFile;
} // namespace am::hist

namespace am::trend {
struct TrendAnalysis;
} // namespace am::trend

namespace am::report {

struct TrendReportOptions {
  std::string Title = "run history";
  /// Rows in the counter heat strip (the rest are summarized).
  unsigned MaxHeatRows = 24;
  /// The gate factor the analysis ran with, echoed in the header.
  double GateFactor = 1.5;
};

/// The trend dashboard.  \p Analysis must be the analysis of \p H's
/// entries in their current (chronologically sorted) order — amtrend
/// sorts, analyzes, then renders.
std::string renderTrendDashboard(const hist::HistoryFile &H,
                                 const trend::TrendAnalysis &Analysis,
                                 const TrendReportOptions &Opts);

} // namespace am::report

#endif // AM_REPORT_TRENDREPORT_H
