//===- report/Recorder.h - Flight recorder for the AM pipeline -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in flight recorder for the optimizer: while a RecorderSession is
/// installed, the pipeline snapshots the program after initialization,
/// after every rae/aht round of the AM fixpoint and after the final flush,
/// captures the per-block predicate vectors of the paper's Tables 1-3 at
/// each analysis run, and keeps one record per dataflow solve (via the
/// dfa solve observer).  The session is the data model behind
/// `amopt --report=out.html` / `--facts=out.json` (see HtmlReport.h).
///
/// Cost model mirrors support/Stats.h and support/Remarks.h: every hook in
/// the transforms is `if (RecorderSession *S = RecorderSession::current())`
/// — one relaxed atomic load when recording is off.  Recording never
/// mutates the graph, so optimized output is byte-identical with a session
/// installed (tests/report_test.cpp locks this in).
///
/// Snapshots are structure-shared: instruction text is interned once per
/// distinct rendering, so a snapshot is a vector of (stable id, text
/// index) pairs per block — cheap even for per-round captures.  Diffs
/// between consecutive snapshots are computed on demand, keyed on the
/// stable Instr::Id (see InstrNumbering.h): an id present only in the new
/// snapshot was inserted, only in the old one deleted, in both at a
/// different position moved, and with different text rewritten in place.
///
/// Determinism contract (tests/report_test.cpp): two recordings of the
/// same run produce byte-identical facts JSON.  Counters are stored as
/// deltas from the session's install baseline, solve serials are
/// normalized relative to the session's first observed serial at JSON
/// emission, and nothing time- or address-dependent is captured.
///
//===----------------------------------------------------------------------===//

#ifndef AM_REPORT_RECORDER_H
#define AM_REPORT_RECORDER_H

#include "dfa/Dataflow.h"
#include "ir/FlowGraph.h"
#include "support/Remarks.h"
#include "support/StringInterner.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace am {
class RedundancyAnalysis;
class HoistabilityAnalysis;
class FlushAnalysis;
class AssignPatternTable;
} // namespace am

namespace am::telemetry {
class Session;
} // namespace am::telemetry

namespace am::report {

/// One instruction of a snapshot: its stable provenance id (0 when the
/// run assigned none) and its rendered text, interned session-wide.
struct InstrSnap {
  uint32_t Id = 0;
  uint32_t Text = 0;
};

/// One basic block of a snapshot.
struct BlockSnap {
  std::vector<InstrSnap> Instrs;
  std::vector<uint32_t> Succs;
  bool Synthetic = false;
};

/// The program at one pipeline point.
struct Snapshot {
  /// Pipeline point: "input", "split", "init", "rae", "aht", "flush",
  /// "final", or a pass name for generic pipelines.
  std::string Label;
  /// AM fixpoint round (1-based) for "rae"/"aht"; 0 elsewhere.
  uint32_t Round = 0;
  std::vector<BlockSnap> Blocks;
  uint32_t StartBlock = 0;
  uint32_t EndBlock = 0;
  /// Cumulative counter deltas since session install, aligned with
  /// counterNames().  Empty when counters were unavailable (stats
  /// compiled out or disabled at runtime) — HasCounters distinguishes
  /// "zero work" from "not measured".
  std::vector<uint64_t> Counters;
  bool HasCounters = false;

  size_t numInstrs() const {
    size_t N = 0;
    for (const BlockSnap &B : Blocks)
      N += B.Instrs.size();
    return N;
  }
};

/// Structural diff between two snapshots, keyed on stable instruction
/// ids.  Instructions without an id (recording without remark collection)
/// are only counted.
struct SnapshotDiff {
  struct Pos {
    uint32_t Id = 0;
    uint32_t Block = 0;
    uint32_t Index = 0;
  };
  struct Move {
    uint32_t Id = 0;
    uint32_t FromBlock = 0, FromIndex = 0;
    uint32_t ToBlock = 0, ToIndex = 0;
  };
  struct Rewrite {
    uint32_t Id = 0;
    uint32_t Block = 0, Index = 0;
    uint32_t OldText = 0, NewText = 0; ///< Interned text indices.
  };
  std::vector<Pos> Inserted;    ///< Present only in the newer snapshot.
  std::vector<Pos> Deleted;     ///< Present only in the older snapshot.
  std::vector<Move> Moved;      ///< Different (block, index) across the two.
  std::vector<Rewrite> Rewritten; ///< Same id, different text (in place or
                                  ///< combined with a move).
  size_t UnkeyedFrom = 0, UnkeyedTo = 0; ///< Id==0 instructions per side.

  bool empty() const {
    return Inserted.empty() && Deleted.empty() && Moved.empty() &&
           Rewritten.empty();
  }
};

/// The per-block predicate vectors of one analysis run (Tables 1-3).
/// Bit vectors render as '0'/'1' strings, bit 0 first, over Universe.
struct FactTable {
  /// "redundancy" (Table 2), "hoistability" (Table 1), "delayability" or
  /// "usability" (Table 3).
  std::string Analysis;
  std::string Pass;  ///< "rae", "aht" or "flush".
  uint32_t Round = 0;
  uint64_t Solve = 0; ///< Raw solve serial; normalized at JSON emission.
  /// The pattern universe the bits range over, e.g. "h1 := c + d" (or
  /// "h1" for the flush analyses' temporary universe), interned.
  std::vector<uint32_t> Universe;
  struct Row {
    uint32_t Block = 0;
    std::string Entry, Exit;
  };
  std::vector<Row> Rows; ///< One per block, in block order.
  /// Named additional per-block vectors (LOC-BLOCKED, LOC-HOISTABLE,
  /// N-INSERT, X-INSERT), in the same block order as Rows.
  struct Extra {
    std::string Name;
    std::vector<std::string> PerBlock;
  };
  std::vector<Extra> Extras;
};

/// One dataflow solve observed through the dfa solve observer, for the
/// convergence panel.  Mirrors am::SolveInfo plus the pipeline position.
struct SolveRecord {
  uint64_t Serial = 0;
  size_t Bits = 0;
  size_t Blocks = 0;
  uint64_t Sweeps = 0;
  uint64_t BlocksProcessed = 0;
  size_t DirtyClosure = 0;
  uint8_t Path = 0; ///< Matches SolveInfo::Path.
  bool Forward = true;
  std::string Label; ///< Label of the pipeline point active at the solve.
  uint32_t Round = 0;
};

/// One recording of one pipeline run.  Not thread-safe; the optimizer
/// pipeline is single-threaded.  install()/uninstall() make the session
/// visible to the transform hooks via current().
class RecorderSession {
public:
  RecorderSession();
  ~RecorderSession();
  RecorderSession(const RecorderSession &) = delete;
  RecorderSession &operator=(const RecorderSession &) = delete;

  /// Attaches this recorder to the calling thread's telemetry session
  /// (and registers the dfa solve observer).  At most one recorder may be
  /// attached to a session at a time.
  void install();
  void uninstall();

  /// The recorder attached to the calling thread's telemetry session, or
  /// nullptr — two thread-local reads, so the hooks in the transforms are
  /// cheap when recording is off.
  static RecorderSession *current();

  /// Runtime switch for counter capture (amopt turns it off under
  /// AM_DISABLE_STATS in the environment so reports stay deterministic
  /// against a disabled registry).
  void setCaptureCounters(bool On) { CaptureCounters = On; }

  /// AM fixpoint round context, set by the fixpoint driver so the
  /// analysis capture hooks can stamp their tables (mirrors
  /// remarks::Sink::setRound, which is unavailable under
  /// AM_DISABLE_STATS).
  void setRound(uint32_t R) { CurrentRound = R; }
  uint32_t round() const { return CurrentRound; }

  //===------------------------------------------------------------------===//
  // Capture hooks (called by the transforms; no-ops are the callers'
  // responsibility via current()).
  //===------------------------------------------------------------------===//

  /// Records the program as it stands.  \p Label/\p Round as in Snapshot.
  /// Consecutive identical snapshots are still recorded — the timeline
  /// shows rounds that changed nothing.
  void snapshot(const FlowGraph &G, std::string Label, uint32_t Round = 0);

  /// Table 2 facts of one rae run.
  void captureRedundancy(const FlowGraph &G, const AssignPatternTable &Pats,
                         const RedundancyAnalysis &A, uint32_t Round);

  /// Table 1 facts (plus LOC-* and the insertion predicates) of one aht
  /// run.
  void captureHoistability(const FlowGraph &G, const AssignPatternTable &Pats,
                           const HoistabilityAnalysis &A, uint32_t Round);

  /// Table 3 facts (delayability + usability) of the final flush.
  void captureFlush(const FlowGraph &G, const FlushAnalysis &A);

  //===------------------------------------------------------------------===//
  // Read side
  //===------------------------------------------------------------------===//

  const std::vector<Snapshot> &snapshots() const { return Snapshots; }
  const std::vector<FactTable> &facts() const { return Facts; }
  const std::vector<SolveRecord> &solves() const { return Solves; }
  const std::string &text(uint32_t Idx) const { return Strings.str(Idx); }

  /// Diff between snapshots \p FromIdx and \p ToIdx (usually consecutive).
  SnapshotDiff diff(size_t FromIdx, size_t ToIdx) const;

  /// The fixed counter set a snapshot captures (machine-independent
  /// counts only — never timers).
  static const std::vector<std::string> &counterNames();

  /// True if any instruction of any snapshot carries \p Id.
  bool resolvesId(uint32_t Id) const;

  /// Raw-to-normalized solve-serial mapping (1.. in first-observation
  /// order over facts, then solves, then \p Remarks).  Both the JSON and
  /// the HTML renderings apply it, so the two agree and neither leaks the
  /// process-wide solve counter into the output.
  std::unordered_map<uint64_t, uint64_t>
  serialMap(const std::vector<remarks::Remark> *Remarks = nullptr) const;

  /// The session's facts/snapshots/solves as one JSON object (the
  /// `--facts=out.json` payload).  \p Remarks, when non-null, is embedded
  /// with the same keys the remark sink's own dump uses, but with solve
  /// serials normalized alongside the session's — the whole document is
  /// deterministic across runs despite the process-wide solve counter.
  std::string
  toJsonString(const std::vector<remarks::Remark> *Remarks = nullptr) const;

private:
  static void onSolve(const SolveInfo &Info, void *Ctx);
  uint32_t intern(const std::string &S) { return Strings.intern(S); }
  void captureCounters(Snapshot &S) const;
  void attributeSolve(uint64_t Serial, const char *Pass, uint32_t Round);

  /// The telemetry session this recorder is attached to (install()
  /// through uninstall()); null while detached.
  telemetry::Session *Attached = nullptr;

  StringInterner Strings;
  std::vector<Snapshot> Snapshots;
  std::vector<FactTable> Facts;
  std::vector<SolveRecord> Solves;
  std::vector<uint64_t> CounterBase;
  bool CaptureCounters = true;
  bool Installed = false;
  uint32_t CurrentRound = 0;
};

} // namespace am::report

#endif // AM_REPORT_RECORDER_H
