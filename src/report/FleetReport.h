//===- report/FleetReport.h - Fleet dashboard & corpus diff ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders corpus-level observability as self-contained HTML, the fleet
/// counterpart of report/HtmlReport.h's single-job report: a dashboard
/// over one run (status tiles, per-preset throughput, phase-time
/// histograms, the top-K slowest / most-rolled-back programs with their
/// per-job facts, the deterministic counter aggregates) and a
/// differential view comparing two runs' event logs per counter, ranked
/// by relative magnitude.  Everything is one file: inline CSS and SVG,
/// no external assets, light and dark mode from one set of role tokens.
///
//===----------------------------------------------------------------------===//

#ifndef AM_REPORT_FLEETREPORT_H
#define AM_REPORT_FLEETREPORT_H

#include <cstdint>
#include <string>

namespace am::fleet {
struct EventLogFile;
class Aggregate;
} // namespace am::fleet

namespace am::report {

struct FleetReportOptions {
  std::string Title = "fleet report";
  /// Rows in the slowest / most-rolled-back tables.
  unsigned TopK = 10;
  /// End-to-end wall time of the whole batch (all workers), for the
  /// honest wall-clock throughput tile; 0 hides it and only the
  /// per-core (sum-of-job-wall) figures are shown.
  uint64_t RunWallNs = 0;
  unsigned Threads = 1;
};

/// The one-run dashboard.  \p Agg must be the aggregate of \p Log's
/// events (ambatch hands both over; `--report` from an existing log
/// rebuilds the aggregate first).
std::string renderFleetDashboard(const fleet::EventLogFile &Log,
                                 const fleet::Aggregate &Agg,
                                 const FleetReportOptions &Opts);

/// The two-run differential report: per-counter aggregate comparison
/// ranked by |relative delta|, status flips, and the per-job movers of
/// the top-ranked counter.  \p NameA / \p NameB caption the columns
/// (typically the two file names).
std::string renderFleetDiff(const fleet::EventLogFile &A,
                            const fleet::EventLogFile &B,
                            const std::string &NameA,
                            const std::string &NameB);

} // namespace am::report

#endif // AM_REPORT_FLEETREPORT_H
