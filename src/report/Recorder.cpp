//===- report/Recorder.cpp - Flight recorder implementation ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "report/Recorder.h"

#include "analysis/PaperAnalyses.h"
#include "ir/Patterns.h"
#include "ir/Printer.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

using namespace am;
using namespace am::report;

RecorderSession::RecorderSession() = default;

RecorderSession::~RecorderSession() {
  if (Installed)
    uninstall();
}

RecorderSession *RecorderSession::current() {
  return telemetry::Session::current().recorder();
}

void RecorderSession::install() {
  telemetry::Session &S = telemetry::Session::current();
  assert(!S.recorder() && "a recorder session is already installed");
  Installed = true;
  Attached = &S;
  CounterBase.clear();
#ifndef AM_DISABLE_STATS
  for (const std::string &Name : counterNames())
    CounterBase.push_back(stats::Registry::get().counterValue(Name));
#endif
  setSolveObserver(&RecorderSession::onSolve, this);
  S.setRecorder(this);
}

void RecorderSession::uninstall() {
  if (Attached) {
    Attached->setRecorder(nullptr);
    Attached = nullptr;
  }
  setSolveObserver(nullptr, nullptr);
  Installed = false;
}

const std::vector<std::string> &RecorderSession::counterNames() {
  // Machine-independent counts only: timers would break the determinism
  // contract (two recordings of the same run must be byte-identical).
  static const std::vector<std::string> Names = {
      "dfa.solves",        "dfa.sweeps",     "dfa.blocks_processed",
      "dfa.words_touched", "am.rounds",      "am.eliminated",
      "flush.inits_deleted", "flush.inits_sunk",
  };
  return Names;
}

void RecorderSession::captureCounters(Snapshot &S) const {
#ifndef AM_DISABLE_STATS
  if (!CaptureCounters || CounterBase.empty())
    return;
  const auto &Names = counterNames();
  S.Counters.reserve(Names.size());
  for (size_t Idx = 0; Idx < Names.size(); ++Idx)
    S.Counters.push_back(stats::Registry::get().counterValue(Names[Idx]) -
                         CounterBase[Idx]);
  S.HasCounters = true;
#else
  (void)S;
#endif
}

void RecorderSession::snapshot(const FlowGraph &G, std::string Label,
                               uint32_t Round) {
  Snapshot S;
  S.Label = std::move(Label);
  S.Round = Round;
  S.StartBlock = G.start();
  S.EndBlock = G.end();
  S.Blocks.reserve(G.numBlocks());
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    const BasicBlock &BB = G.block(B);
    BlockSnap BS;
    BS.Synthetic = BB.Synthetic;
    BS.Succs.assign(BB.Succs.begin(), BB.Succs.end());
    BS.Instrs.reserve(BB.Instrs.size());
    for (const Instr &I : BB.Instrs)
      BS.Instrs.push_back({I.Id, intern(printInstr(I, G.Vars))});
    S.Blocks.push_back(std::move(BS));
  }
  captureCounters(S);
  Snapshots.push_back(std::move(S));
}

namespace {
std::string patternText(const AssignPat &P, const VarTable &Vars) {
  return Vars.name(P.Lhs) + " := " + printTerm(P.Rhs, Vars);
}
} // namespace

void RecorderSession::captureRedundancy(const FlowGraph &G,
                                        const AssignPatternTable &Pats,
                                        const RedundancyAnalysis &A,
                                        uint32_t Round) {
  FactTable T;
  T.Analysis = "redundancy";
  T.Pass = "rae";
  T.Round = Round;
  T.Solve = A.solveSerial();
  T.Universe.reserve(Pats.size());
  for (size_t Idx = 0; Idx < Pats.size(); ++Idx)
    T.Universe.push_back(intern(patternText(Pats.pattern(Idx), G.Vars)));
  T.Rows.reserve(G.numBlocks());
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    T.Rows.push_back({B, A.entry(B).toString(), A.exit(B).toString()});
  attributeSolve(T.Solve, "rae", Round);
  Facts.push_back(std::move(T));
}

void RecorderSession::captureHoistability(const FlowGraph &G,
                                          const AssignPatternTable &Pats,
                                          const HoistabilityAnalysis &A,
                                          uint32_t Round) {
  FactTable T;
  T.Analysis = "hoistability";
  T.Pass = "aht";
  T.Round = Round;
  T.Solve = A.solveSerial();
  T.Universe.reserve(Pats.size());
  for (size_t Idx = 0; Idx < Pats.size(); ++Idx)
    T.Universe.push_back(intern(patternText(Pats.pattern(Idx), G.Vars)));
  FactTable::Extra LocBlocked{"LOC-BLOCKED", {}};
  FactTable::Extra LocHoistable{"LOC-HOISTABLE", {}};
  FactTable::Extra NInsert{"N-INSERT", {}};
  FactTable::Extra XInsert{"X-INSERT", {}};
  T.Rows.reserve(G.numBlocks());
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    T.Rows.push_back(
        {B, A.entryHoistable(B).toString(), A.exitHoistable(B).toString()});
    LocBlocked.PerBlock.push_back(A.locBlocked(B).toString());
    LocHoistable.PerBlock.push_back(A.locHoistable(B).toString());
    NInsert.PerBlock.push_back(A.entryInsert(B).toString());
    XInsert.PerBlock.push_back(A.exitInsert(B).toString());
  }
  T.Extras.push_back(std::move(LocBlocked));
  T.Extras.push_back(std::move(LocHoistable));
  T.Extras.push_back(std::move(NInsert));
  T.Extras.push_back(std::move(XInsert));
  attributeSolve(T.Solve, "aht", Round);
  Facts.push_back(std::move(T));
}

void RecorderSession::captureFlush(const FlowGraph &G, const FlushAnalysis &A) {
  const FlushUniverse &U = A.universe();
  std::vector<uint32_t> Universe;
  Universe.reserve(U.size());
  for (size_t Idx = 0; Idx < U.size(); ++Idx)
    Universe.push_back(intern(G.Vars.name(U.temp(Idx)) + " := " +
                              printTerm(U.expr(Idx), G.Vars)));

  auto Capture = [&](const char *Analysis, const DataflowResult &R) {
    FactTable T;
    T.Analysis = Analysis;
    T.Pass = "flush";
    T.Solve = R.SolveSerial;
    T.Universe = Universe;
    T.Rows.reserve(G.numBlocks());
    for (BlockId B = 0; B < G.numBlocks(); ++B)
      T.Rows.push_back({B, R.entry(B).toString(), R.exit(B).toString()});
    attributeSolve(T.Solve, "flush", 0);
    Facts.push_back(std::move(T));
  };
  Capture("delayability", A.delayability());
  Capture("usability", A.usability());
}

void RecorderSession::attributeSolve(uint64_t Serial, const char *Pass,
                                     uint32_t Round) {
  if (Serial == 0)
    return;
  for (SolveRecord &R : Solves)
    if (R.Serial == Serial) {
      R.Label = Pass;
      R.Round = Round;
    }
}

void RecorderSession::onSolve(const SolveInfo &Info, void *Ctx) {
  auto *Self = static_cast<RecorderSession *>(Ctx);
  SolveRecord R;
  R.Serial = Info.Serial;
  R.Bits = Info.Bits;
  R.Blocks = Info.Blocks;
  R.Sweeps = Info.Sweeps;
  R.BlocksProcessed = Info.BlocksProcessed;
  R.DirtyClosure = Info.DirtyClosure;
  R.Path = static_cast<uint8_t>(Info.P);
  R.Forward = Info.Forward;
  // Provisional attribution: the most recent pipeline point.  The capture
  // hooks re-attribute analysis solves precisely (by serial) once the
  // analysis identifies itself — a phase's solves happen *before* its own
  // snapshot, so the provisional label is the preceding point's.
  if (!Self->Snapshots.empty()) {
    R.Label = Self->Snapshots.back().Label;
    R.Round = Self->Snapshots.back().Round;
  }
  Self->Solves.push_back(std::move(R));
}

SnapshotDiff RecorderSession::diff(size_t FromIdx, size_t ToIdx) const {
  assert(FromIdx < Snapshots.size() && ToIdx < Snapshots.size());
  const Snapshot &From = Snapshots[FromIdx];
  const Snapshot &To = Snapshots[ToIdx];

  struct Loc {
    uint32_t Block, Index, Text;
  };
  std::unordered_map<uint32_t, Loc> FromById;
  SnapshotDiff D;

  for (uint32_t B = 0; B < From.Blocks.size(); ++B)
    for (uint32_t Idx = 0; Idx < From.Blocks[B].Instrs.size(); ++Idx) {
      const InstrSnap &I = From.Blocks[B].Instrs[Idx];
      if (I.Id == 0)
        ++D.UnkeyedFrom;
      else
        FromById[I.Id] = {B, Idx, I.Text};
    }

  for (uint32_t B = 0; B < To.Blocks.size(); ++B)
    for (uint32_t Idx = 0; Idx < To.Blocks[B].Instrs.size(); ++Idx) {
      const InstrSnap &I = To.Blocks[B].Instrs[Idx];
      if (I.Id == 0) {
        ++D.UnkeyedTo;
        continue;
      }
      auto It = FromById.find(I.Id);
      if (It == FromById.end()) {
        D.Inserted.push_back({I.Id, B, Idx});
        continue;
      }
      const Loc &Old = It->second;
      if (Old.Text != I.Text)
        D.Rewritten.push_back({I.Id, B, Idx, Old.Text, I.Text});
      if (Old.Block != B || Old.Index != Idx)
        D.Moved.push_back({I.Id, Old.Block, Old.Index, B, Idx});
      FromById.erase(It);
    }

  // Whatever survives in the map exists only in the older snapshot.
  for (const auto &[Id, Old] : FromById)
    D.Deleted.push_back({Id, Old.Block, Old.Index});
  std::sort(D.Deleted.begin(), D.Deleted.end(),
            [](const SnapshotDiff::Pos &A, const SnapshotDiff::Pos &B) {
              return A.Block != B.Block ? A.Block < B.Block
                                        : A.Index < B.Index;
            });
  return D;
}

bool RecorderSession::resolvesId(uint32_t Id) const {
  if (Id == 0)
    return false;
  for (const Snapshot &S : Snapshots)
    for (const BlockSnap &B : S.Blocks)
      for (const InstrSnap &I : B.Instrs)
        if (I.Id == Id)
          return true;
  return false;
}

//===----------------------------------------------------------------------===//
// JSON emission
//===----------------------------------------------------------------------===//

std::unordered_map<uint64_t, uint64_t> RecorderSession::serialMap(
    const std::vector<remarks::Remark> *Remarks) const {
  // Process-wide solve serials drift across runs of the same program
  // inside one process (tests, repeated solves), so every rendering
  // rebases them to 1.. in first-observation order over the document:
  // facts, then solves, then remarks.
  std::unordered_map<uint64_t, uint64_t> Map;
  auto Add = [&Map](uint64_t Raw) {
    if (Raw != 0)
      Map.try_emplace(Raw, Map.size() + 1);
  };
  for (const FactTable &T : Facts)
    Add(T.Solve);
  for (const SolveRecord &R : Solves)
    Add(R.Serial);
  if (Remarks)
    for (const remarks::Remark &R : *Remarks)
      Add(R.Solve);
  return Map;
}

namespace {

/// Looks \p Raw up in a serialMap(); unknown serials map to 0 rather than
/// leaking the raw process-wide value.
uint64_t mapSerial(const std::unordered_map<uint64_t, uint64_t> &Serials,
                   uint64_t Raw) {
  auto It = Serials.find(Raw);
  return It == Serials.end() ? 0 : It->second;
}

void emitDiff(json::Writer &W, const SnapshotDiff &D,
              const RecorderSession &S) {
  W.beginObject();
  W.key("inserted").beginArray();
  for (const auto &P : D.Inserted) {
    W.beginObject();
    W.key("id").value(static_cast<uint64_t>(P.Id));
    W.key("block").value(static_cast<uint64_t>(P.Block));
    W.key("index").value(static_cast<uint64_t>(P.Index));
    W.endObject();
  }
  W.endArray();
  W.key("deleted").beginArray();
  for (const auto &P : D.Deleted) {
    W.beginObject();
    W.key("id").value(static_cast<uint64_t>(P.Id));
    W.key("block").value(static_cast<uint64_t>(P.Block));
    W.key("index").value(static_cast<uint64_t>(P.Index));
    W.endObject();
  }
  W.endArray();
  W.key("moved").beginArray();
  for (const auto &M : D.Moved) {
    W.beginObject();
    W.key("id").value(static_cast<uint64_t>(M.Id));
    W.key("from_block").value(static_cast<uint64_t>(M.FromBlock));
    W.key("from_index").value(static_cast<uint64_t>(M.FromIndex));
    W.key("to_block").value(static_cast<uint64_t>(M.ToBlock));
    W.key("to_index").value(static_cast<uint64_t>(M.ToIndex));
    W.endObject();
  }
  W.endArray();
  W.key("rewritten").beginArray();
  for (const auto &R : D.Rewritten) {
    W.beginObject();
    W.key("id").value(static_cast<uint64_t>(R.Id));
    W.key("block").value(static_cast<uint64_t>(R.Block));
    W.key("index").value(static_cast<uint64_t>(R.Index));
    W.key("old").value(S.text(R.OldText));
    W.key("new").value(S.text(R.NewText));
    W.endObject();
  }
  W.endArray();
  if (D.UnkeyedFrom || D.UnkeyedTo) {
    W.key("unkeyed_from").value(static_cast<uint64_t>(D.UnkeyedFrom));
    W.key("unkeyed_to").value(static_cast<uint64_t>(D.UnkeyedTo));
  }
  W.endObject();
}

void emitRemark(json::Writer &W, const remarks::Remark &R,
                const std::unordered_map<uint64_t, uint64_t> &Serials) {
  // Key-compatible with remarks::Sink::toJsonString(), except "solve" is
  // normalized so the whole facts document is run-independent.
  W.beginObject();
  W.key("kind").value(remarks::kindName(R.K));
  if (R.Act != remarks::Action::None)
    W.key("action").value(R.Act == remarks::Action::Remove ? "remove"
                                                           : "insert");
  W.key("pass").value(R.Pass);
  W.key("round").value(static_cast<uint64_t>(R.Round));
  W.key("instr_id").value(static_cast<uint64_t>(R.InstrId));
  if (R.Block != 0xFFFFFFFFu)
    W.key("block").value(static_cast<uint64_t>(R.Block));
  if (R.InstrIndex != 0xFFFFFFFFu)
    W.key("index").value(static_cast<uint64_t>(R.InstrIndex));
  W.key("terminal").value(R.Terminal);
  if (R.Place != remarks::Placement::None)
    W.key("placement").value(remarks::placementName(R.Place));
  if (R.FromBlock != 0xFFFFFFFFu)
    W.key("from_block").value(static_cast<uint64_t>(R.FromBlock));
  if (!R.Pattern.empty())
    W.key("pattern").value(R.Pattern);
  if (!R.Var.empty())
    W.key("var").value(R.Var);
  if (!R.Parents.empty()) {
    W.key("parents").beginArray();
    for (uint32_t P : R.Parents)
      W.value(static_cast<uint64_t>(P));
    W.endArray();
  }
  if (!R.NewIds.empty()) {
    W.key("new_ids").beginArray();
    for (uint32_t N : R.NewIds)
      W.value(static_cast<uint64_t>(N));
    W.endArray();
  }
  if (R.Solve != 0)
    W.key("solve").value(mapSerial(Serials, R.Solve));
  if (!R.Facts.empty()) {
    W.key("facts").beginObject();
    for (const auto &[Name, Value] : R.Facts)
      W.key(Name).value(Value);
    W.endObject();
  }
  W.endObject();
}

} // namespace

std::string RecorderSession::toJsonString(
    const std::vector<remarks::Remark> *Remarks) const {
  const std::unordered_map<uint64_t, uint64_t> Serials = serialMap(Remarks);

  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("version").value(static_cast<uint64_t>(1));

  W.key("counter_names").beginArray();
  for (const std::string &Name : counterNames())
    W.value(Name);
  W.endArray();

  W.key("snapshots").beginArray();
  for (const Snapshot &S : Snapshots) {
    W.beginObject();
    W.key("label").value(S.Label);
    if (S.Round)
      W.key("round").value(static_cast<uint64_t>(S.Round));
    W.key("start").value(static_cast<uint64_t>(S.StartBlock));
    W.key("end").value(static_cast<uint64_t>(S.EndBlock));
    W.key("blocks").beginArray();
    for (const BlockSnap &B : S.Blocks) {
      W.beginObject();
      if (B.Synthetic)
        W.key("synthetic").value(true);
      W.key("succs").beginArray();
      for (uint32_t Succ : B.Succs)
        W.value(static_cast<uint64_t>(Succ));
      W.endArray();
      W.key("instrs").beginArray();
      for (const InstrSnap &I : B.Instrs) {
        W.beginObject();
        W.key("id").value(static_cast<uint64_t>(I.Id));
        W.key("text").value(text(I.Text));
        W.endObject();
      }
      W.endArray();
      W.endObject();
    }
    W.endArray();
    if (S.HasCounters) {
      W.key("counters").beginArray();
      for (uint64_t C : S.Counters)
        W.value(C);
      W.endArray();
    }
    W.endObject();
  }
  W.endArray();

  W.key("diffs").beginArray();
  for (size_t Idx = 1; Idx < Snapshots.size(); ++Idx) {
    W.beginObject();
    W.key("from").value(static_cast<uint64_t>(Idx - 1));
    W.key("to").value(static_cast<uint64_t>(Idx));
    W.key("changes");
    emitDiff(W, diff(Idx - 1, Idx), *this);
    W.endObject();
  }
  W.endArray();

  W.key("facts").beginArray();
  for (const FactTable &T : Facts) {
    W.beginObject();
    W.key("analysis").value(T.Analysis);
    W.key("pass").value(T.Pass);
    if (T.Round)
      W.key("round").value(static_cast<uint64_t>(T.Round));
    if (T.Solve)
      W.key("solve").value(mapSerial(Serials, T.Solve));
    W.key("universe").beginArray();
    for (uint32_t U : T.Universe)
      W.value(text(U));
    W.endArray();
    W.key("blocks").beginArray();
    for (const FactTable::Row &R : T.Rows) {
      W.beginObject();
      W.key("block").value(static_cast<uint64_t>(R.Block));
      W.key("entry").value(R.Entry);
      W.key("exit").value(R.Exit);
      for (const FactTable::Extra &E : T.Extras)
        W.key(E.Name).value(E.PerBlock[R.Block]);
      W.endObject();
    }
    W.endArray();
    W.endObject();
  }
  W.endArray();

  W.key("solves").beginArray();
  for (const SolveRecord &R : Solves) {
    W.beginObject();
    W.key("serial").value(mapSerial(Serials, R.Serial));
    W.key("label").value(R.Label);
    if (R.Round)
      W.key("round").value(static_cast<uint64_t>(R.Round));
    W.key("bits").value(static_cast<uint64_t>(R.Bits));
    W.key("blocks").value(static_cast<uint64_t>(R.Blocks));
    W.key("direction").value(R.Forward ? "forward" : "backward");
    const char *Path = R.Path == 2 ? "cached"
                       : R.Path == 1 ? "incremental"
                                     : "full";
    W.key("path").value(Path);
    W.key("sweeps").value(R.Sweeps);
    W.key("blocks_processed").value(R.BlocksProcessed);
    W.key("dirty_closure").value(static_cast<uint64_t>(R.DirtyClosure));
    W.endObject();
  }
  W.endArray();

  if (Remarks) {
    W.key("remarks").beginArray();
    for (const remarks::Remark &R : *Remarks)
      emitRemark(W, R, Serials);
    W.endArray();
  }

  W.endObject();
  return Out;
}
