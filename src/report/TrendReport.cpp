//===- report/TrendReport.cpp - Longitudinal trend dashboard -------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "report/TrendReport.h"
#include "support/History.h"
#include "support/Html.h"
#include "support/Trend.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

using namespace am;
using namespace am::report;
using trend::Series;
using trend::SeriesKind;
using trend::SeriesStatus;
using trend::SeriesVerdict;

namespace {

//===----------------------------------------------------------------------===//
// Style: the fleet dashboard's role tokens plus sparkline / heat-strip
// marks.  Statuses always carry their text label; color only reinforces.
//===----------------------------------------------------------------------===//

const char *TrendCss = R"css(
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --good: #0ca30c; --warn: #fab219; --serious: #ec835a; --critical: #d03b3b;
  --delta-up: #b42a2a; --delta-down: #006300;
  --heat: 42,120,214;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --delta-up: #e66767; --delta-down: #0ca30c;
    --heat: 57,135,229;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { min-width: 130px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .note { color: var(--ink-muted); font-size: 12px; }
.hero .value { font-size: 48px; }
.status-dot {
  display: inline-block; width: 9px; height: 9px; border-radius: 50%;
  margin-right: 6px; vertical-align: 1px;
}
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 5px 10px 5px 0;
  border-bottom: 1px solid var(--grid); vertical-align: baseline;
}
th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.mono { font-family: ui-monospace, monospace; font-size: 12px;
          color: var(--ink-2); }
.delta-up { color: var(--delta-up); }
.delta-down { color: var(--delta-down); }
.muted { color: var(--ink-muted); }
.charts { display: flex; flex-wrap: wrap; gap: 16px; }
.chart-title { font-size: 13px; color: var(--ink-2); margin-bottom: 4px; }
.chart-note { font-size: 11px; color: var(--ink-muted); }
svg text { fill: var(--ink-muted); font: 10px system-ui, sans-serif; }
svg .cap { fill: var(--ink-2); }
svg .line { fill: none; stroke: var(--series-1); stroke-width: 1.5; }
svg .base { stroke: var(--baseline); stroke-width: 1; }
svg .cpmark { stroke: var(--critical); stroke-width: 1; stroke-dasharray: 3 2; }
svg .cpdot { fill: var(--critical); }
.heat td.cell { padding: 2px; }
.heat .swatch {
  display: block; width: 14px; height: 14px; border-radius: 3px;
}
)css";

std::string fmtVal(double V) {
  char Buf[48];
  double A = std::fabs(V);
  if (A >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.3g", V);
  else if (A >= 100)
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.3f", V);
  return Buf;
}

std::string fmtUtc(uint64_t UnixMs) {
  std::time_t Secs = static_cast<std::time_t>(UnixMs / 1000);
  std::tm Tm = {};
#if defined(_WIN32)
  gmtime_s(&Tm, &Secs);
#else
  gmtime_r(&Secs, &Tm);
#endif
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "%04d-%02d-%02d %02d:%02d",
                Tm.tm_year + 1900, Tm.tm_mon + 1, Tm.tm_mday, Tm.tm_hour,
                Tm.tm_min);
  return Buf;
}

std::string shortSha(const std::string &Sha) {
  return Sha.size() > 8 ? Sha.substr(0, 8) : Sha;
}

const char *statusVar(SeriesStatus S) {
  switch (S) {
  case SeriesStatus::Regressed:
    return "var(--critical)";
  case SeriesStatus::Step:
    return "var(--serious)";
  case SeriesStatus::Drifting:
    return "var(--warn)";
  case SeriesStatus::Improved:
    return "var(--good)";
  case SeriesStatus::Flat:
    return "var(--baseline)";
  }
  return "var(--baseline)";
}

void appendTile(std::string &Out, const std::string &Label,
                const std::string &Value, const std::string &Note,
                bool Hero = false) {
  Out += Hero ? "<div class=\"card tile hero\">" : "<div class=\"card tile\">";
  html::appendTag(Out, "div", Label, "label");
  html::appendTag(Out, "div", Value, "value");
  if (!Note.empty())
    html::appendTag(Out, "div", Note, "note");
  Out += "</div>";
}

/// A sparkline over \p V with an optional changepoint marker: the data
/// polyline, min/max captions, and — when found — a dashed vertical
/// line at the step with a dot on the first new-level point.
void appendSparklineSvg(std::string &Out, const std::vector<double> &V,
                        const trend::Changepoint &CP) {
  if (V.empty()) {
    Out += "<div class=\"chart-note\">no points</div>";
    return;
  }
  double Lo = V[0], Hi = V[0];
  for (double X : V) {
    Lo = std::min(Lo, X);
    Hi = std::max(Hi, X);
  }
  double Span = Hi - Lo;
  if (Span <= 0)
    Span = std::max(std::fabs(Hi), 1.0); // flat series draw mid-height
  double W = 240.0, H = 64.0, PadX = 4.0, PadT = 6.0, PadB = 14.0;
  double PlotH = H - PadT - PadB;
  auto XAt = [&](size_t I) {
    return V.size() == 1
               ? W / 2
               : PadX + (W - 2 * PadX) * static_cast<double>(I) /
                     static_cast<double>(V.size() - 1);
  };
  auto YAt = [&](double Val) {
    return PadT + PlotH * (1.0 - (Val - Lo) / Span);
  };
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "<svg width=\"%.0f\" height=\"%.0f\" role=\"img\">", W, H);
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "<line class=\"base\" x1=\"0\" y1=\"%.1f\" x2=\"%.0f\" "
                "y2=\"%.1f\"/>",
                PadT + PlotH + 0.5, W, PadT + PlotH + 0.5);
  Out += Buf;
  if (CP.Found && CP.Index < V.size()) {
    double CX = (XAt(CP.Index - 1) + XAt(CP.Index)) / 2.0;
    std::snprintf(Buf, sizeof(Buf),
                  "<line class=\"cpmark\" x1=\"%.1f\" y1=\"%.1f\" "
                  "x2=\"%.1f\" y2=\"%.1f\"/>",
                  CX, PadT, CX, PadT + PlotH);
    Out += Buf;
  }
  Out += "<polyline class=\"line\" points=\"";
  for (size_t I = 0; I < V.size(); ++I) {
    std::snprintf(Buf, sizeof(Buf), "%s%.1f,%.1f", I ? " " : "", XAt(I),
                  YAt(V[I]));
    Out += Buf;
  }
  Out += "\"/>";
  if (CP.Found && CP.Index < V.size()) {
    std::snprintf(Buf, sizeof(Buf),
                  "<circle class=\"cpdot\" cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\">",
                  XAt(CP.Index), YAt(V[CP.Index]));
    Out += Buf;
    html::appendTag(Out, "title",
                    "changepoint: " + fmtVal(CP.Before) + " -> " +
                        fmtVal(CP.After));
    Out += "</circle>";
  }
  std::snprintf(Buf, sizeof(Buf), "<text x=\"2\" y=\"%.1f\">%s</text>",
                H - 3.0, fmtVal(Lo).c_str());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>",
                W - 2.0, H - 3.0, fmtVal(Hi).c_str());
  Out += Buf;
  Out += "</svg>";
}

void appendStatusBadge(std::string &Out, SeriesStatus S) {
  Out += "<span class=\"status-dot\" style=\"background:";
  Out += statusVar(S);
  Out += "\"></span>";
  html::appendEscaped(Out, trend::statusName(S));
}

} // namespace

std::string report::renderTrendDashboard(const hist::HistoryFile &H,
                                         const trend::TrendAnalysis &A,
                                         const TrendReportOptions &Opts) {
  const std::vector<hist::HistoryEntry> &Entries = H.Entries;
  std::string Out;
  Out += "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">";
  html::appendTag(Out, "title", Opts.Title);
  Out += "<style>";
  Out += TrendCss;
  Out += "</style></head><body>";
  html::appendTag(Out, "h1", Opts.Title);
  {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.2f", Opts.GateFactor);
    std::string Sub = "amhist-v1 · " + std::to_string(Entries.size()) +
                      " entries · gate factor " + Buf + "x";
    if (!Entries.empty())
      Sub += " · " + shortSha(Entries.front().GitSha) + " … " +
             shortSha(Entries.back().GitSha);
    if (H.SkippedLines)
      Sub += " · " + std::to_string(H.SkippedLines) + " line(s) skipped";
    html::appendTag(Out, "p", Sub, "sub");
  }

  uint64_t NumRegressed = 0, NumImproved = 0, NumDrifting = 0, NumStep = 0;
  for (const SeriesVerdict &V : A.Verdicts) {
    NumRegressed += V.Status == SeriesStatus::Regressed;
    NumImproved += V.Status == SeriesStatus::Improved;
    NumDrifting += V.Status == SeriesStatus::Drifting;
    NumStep += V.Status == SeriesStatus::Step;
  }
  Out += "<div class=\"tiles\">";
  appendTile(Out, "runs", std::to_string(Entries.size()), "", true);
  appendTile(Out, "series", std::to_string(A.Verdicts.size()), "");
  appendTile(Out, "regressed", std::to_string(NumRegressed),
             NumRegressed ? "gate fails" : "gate passes");
  appendTile(Out, "improved", std::to_string(NumImproved), "");
  appendTile(Out, "drifting", std::to_string(NumDrifting), "");
  appendTile(Out, "machine events", std::to_string(uint64_t(A.CalibrationStepped)),
             "calibration steps");
  if (H.SkippedLines)
    appendTile(Out, "skipped lines", std::to_string(H.SkippedLines),
               "reader recovery");
  Out += "</div>";

  // Per-preset sparklines: normalized wall series plus the calibration
  // series, in the analysis ranking (worst first).
  html::appendTag(Out, "h2", "Wall-time trends (calibration-normalized)");
  Out += "<div class=\"charts\">";
  for (const SeriesVerdict &V : A.Verdicts) {
    if (V.S.Kind != SeriesKind::NormalizedWall &&
        V.S.Kind != SeriesKind::Calibration)
      continue;
    Out += "<div class=\"card\">";
    std::string Title;
    html::appendEscaped(Title, V.S.Name);
    Out += "<div class=\"chart-title\">" + Title + " · ";
    appendStatusBadge(Out, V.Status);
    Out += "</div>";
    appendSparklineSvg(Out, V.S.Values, V.CP);
    std::string Note = std::to_string(V.S.Values.size()) + " points";
    if (V.CP.Found) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), " · %s -> %s (%.2fx) at run %zu",
                    fmtVal(V.CP.Before).c_str(), fmtVal(V.CP.After).c_str(),
                    V.CP.Ratio, V.CP.Index);
      Note += Buf;
      if (V.CP.Index < V.S.Entries.size()) {
        size_t EI = V.S.Entries[V.CP.Index];
        if (EI < Entries.size())
          Note += " [" + shortSha(Entries[EI].GitSha) + "]";
      }
    } else if (V.Status == SeriesStatus::Drifting) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), " · drift %+.1f%% across the series",
                    V.DriftRel * 100.0);
      Note += Buf;
    }
    html::appendTag(Out, "div", Note, "chart-note");
    Out += "</div>";
  }
  Out += "</div>";

  // Counter heat strip: every machine-independent series across the
  // whole history at a glance, one swatch per run, intensity by value
  // within the series' own range.  Ranked worst-first; capped with an
  // explicit "+N more" note, never silently.
  html::appendTag(Out, "h2", "Counter heat strip (machine-independent)");
  {
    std::vector<const SeriesVerdict *> Rows;
    for (const SeriesVerdict &V : A.Verdicts)
      if (V.S.Kind == SeriesKind::Counter || V.S.Kind == SeriesKind::Work)
        Rows.push_back(&V);
    size_t Shown = std::min<size_t>(Rows.size(), Opts.MaxHeatRows);
    Out += "<div class=\"card\"><table class=\"heat\"><tr><th>series</th>"
           "<th>status</th>";
    for (size_t I = 0; I < Entries.size(); ++I)
      Out += "<th class=\"num\">" + std::to_string(I) + "</th>";
    Out += "<th class=\"num\">last</th></tr>";
    for (size_t R = 0; R < Shown; ++R) {
      const SeriesVerdict &V = *Rows[R];
      double Lo = 0, Hi = 0;
      if (!V.S.Values.empty()) {
        Lo = Hi = V.S.Values[0];
        for (double X : V.S.Values) {
          Lo = std::min(Lo, X);
          Hi = std::max(Hi, X);
        }
      }
      Out += "<tr><td>";
      html::appendEscaped(Out, V.S.Name);
      Out += "</td><td>";
      appendStatusBadge(Out, V.Status);
      Out += "</td>";
      // One cell per run; runs the series has no point for stay blank.
      size_t PI = 0;
      for (size_t I = 0; I < Entries.size(); ++I) {
        if (PI < V.S.Entries.size() && V.S.Entries[PI] == I) {
          double Frac =
              Hi > Lo ? (V.S.Values[PI] - Lo) / (Hi - Lo) : 0.5;
          char Buf[128];
          std::snprintf(Buf, sizeof(Buf),
                        "<td class=\"cell\"><span class=\"swatch\" "
                        "style=\"background:rgba(var(--heat),%.2f)\" "
                        "title=\"%s\"></span></td>",
                        0.10 + 0.75 * Frac, fmtVal(V.S.Values[PI]).c_str());
          Out += Buf;
          ++PI;
        } else {
          Out += "<td class=\"cell\"></td>";
        }
      }
      Out += "<td class=\"num\">" +
             html::escaped(V.S.Values.empty() ? std::string("-")
                                              : fmtVal(V.S.Values.back())) +
             "</td></tr>";
    }
    Out += "</table>";
    if (Rows.size() > Shown)
      html::appendTag(Out, "div",
                      "(+" + std::to_string(Rows.size() - Shown) +
                          " more series in the history file)",
                      "chart-note");
    Out += "</div>";
  }

  // Commit-to-commit diff: the two most recent runs, per series.
  if (Entries.size() >= 2) {
    size_t Last = Entries.size() - 1, Prev = Entries.size() - 2;
    html::appendTag(Out, "h2",
                    "Latest run vs previous (" +
                        shortSha(Entries[Prev].GitSha) + " -> " +
                        shortSha(Entries[Last].GitSha) + ")");
    Out += "<div class=\"card\"><table><tr><th>series</th>"
           "<th class=\"num\">previous</th><th class=\"num\">latest</th>"
           "<th class=\"num\">Δ %</th></tr>";
    for (const SeriesVerdict &V : A.Verdicts) {
      double PrevV = 0, LastV = 0;
      bool HasPrev = false, HasLast = false;
      for (size_t I = 0; I < V.S.Entries.size(); ++I) {
        if (V.S.Entries[I] == Prev) {
          PrevV = V.S.Values[I];
          HasPrev = true;
        }
        if (V.S.Entries[I] == Last) {
          LastV = V.S.Values[I];
          HasLast = true;
        }
      }
      if (!HasPrev || !HasLast)
        continue;
      double Delta = LastV - PrevV;
      Out += "<tr><td>";
      html::appendEscaped(Out, V.S.Name);
      Out += "</td><td class=\"num\">" + html::escaped(fmtVal(PrevV)) +
             "</td>";
      Out += "<td class=\"num\">" + html::escaped(fmtVal(LastV)) + "</td>";
      Out += "<td class=\"num ";
      Out += Delta == 0 ? "muted" : (Delta > 0 ? "delta-up" : "delta-down");
      Out += "\">";
      if (Delta == 0)
        Out += "0.0%";
      else if (PrevV != 0) {
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%+.1f%%", 100.0 * Delta / PrevV);
        Out += Buf;
      } else
        Out += Delta > 0 ? "new" : "gone";
      Out += "</td></tr>";
    }
    Out += "</table></div>";
  }

  // Attribution: who measured what, when, at which commit.
  html::appendTag(Out, "h2", "Runs");
  Out += "<div class=\"card\"><table><tr><th class=\"num\">#</th>"
         "<th>time (UTC)</th><th>source</th><th>commit</th><th>host</th>"
         "<th class=\"num\">solver threads</th><th class=\"num\">calib</th>"
         "<th class=\"num\">jobs</th></tr>";
  for (size_t I = 0; I < Entries.size(); ++I) {
    const hist::HistoryEntry &E = Entries[I];
    Out += "<tr><td class=\"num\">" + std::to_string(I) + "</td>";
    Out += "<td>" + html::escaped(fmtUtc(E.TimeUnixMs)) + "</td><td>";
    html::appendEscaped(Out, E.Source);
    Out += "</td><td class=\"mono\">";
    html::appendEscaped(Out, shortSha(E.GitSha));
    Out += "</td><td>";
    html::appendEscaped(Out, E.Host);
    Out += "</td><td class=\"num\">" + std::to_string(E.SolverThreads) +
           "</td>";
    Out += "<td class=\"num\">" +
           html::escaped(fmtVal(static_cast<double>(E.CalibNs) / 1e6) +
                         " ms") +
           "</td>";
    Out += "<td class=\"num\">" +
           (E.HasAggregate ? std::to_string(E.AggJobs) : std::string("-")) +
           "</td></tr>";
  }
  Out += "</table></div>";

  if (!A.Notes.empty() || !H.Warnings.empty()) {
    html::appendTag(Out, "h2", "Notes");
    Out += "<div class=\"card\">";
    for (const std::string &N : A.Notes)
      html::appendTag(Out, "div", N, "muted");
    for (const std::string &W : H.Warnings)
      html::appendTag(Out, "div", W, "muted");
    Out += "</div>";
  }

  Out += "</body></html>";
  return Out;
}
