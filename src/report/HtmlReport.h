//===- report/HtmlReport.h - Self-contained HTML report --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders one RecorderSession as a single self-contained HTML document
/// (inline CSS, inline SVG sparklines, no scripts, no external assets):
///
///  * a phase/round timeline with per-phase counter deltas,
///  * side-by-side diffs between consecutive snapshots with the remarks
///    of that phase/round anchored inline on the exact instruction they
///    explain,
///  * the Tables 1-3 per-block fact tables of every captured analysis,
///  * convergence sparklines (blocks processed and dirty-closure size per
///    solve, eliminations per round) — marked unavailable instead of
///    omitted when the stats registry was disabled.
///
/// The generator reads only the session and the metadata struct below, so
/// report/ stays independent of transform/ (amopt assembles the metadata).
///
//===----------------------------------------------------------------------===//

#ifndef AM_REPORT_HTMLREPORT_H
#define AM_REPORT_HTMLREPORT_H

#include "report/Recorder.h"
#include "support/Remarks.h"

#include <string>
#include <vector>

namespace am::report {

/// Everything the report shows that is not recorded by the session.
struct ReportMeta {
  std::string Title;    ///< Usually the input file name.
  std::string PassSpec; ///< The pipeline that ran, e.g. "uniform".
  std::string InputText;  ///< Pretty-printed input program.
  std::string OutputText; ///< Pretty-printed optimized program.
  /// Remarks collected during the run (empty when collection was off).
  std::vector<remarks::Remark> Remarks;
  /// True when the stats registry was live; false renders the counter and
  /// convergence panels as "unavailable".
  bool StatsAvailable = true;
};

/// Renders the complete document.
std::string renderHtmlReport(const RecorderSession &S, const ReportMeta &Meta);

} // namespace am::report

#endif // AM_REPORT_HTMLREPORT_H
