//===- report/HtmlReport.cpp - Self-contained HTML report ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "report/HtmlReport.h"

#include "support/Html.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

using namespace am;
using namespace am::report;

namespace {

//===----------------------------------------------------------------------===//
// Styling
//===----------------------------------------------------------------------===//

const char *Css = R"css(
body { font: 14px/1.5 system-ui, sans-serif; margin: 0 auto; max-width: 72rem;
       padding: 1rem 2rem; color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #4a4e8c; padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; color: #37386e; }
h3 { font-size: 1rem; margin-bottom: .3rem; }
code, pre, td.ir, table.facts { font: 12px/1.45 ui-monospace, monospace; }
pre { background: #fff; border: 1px solid #ddd; border-radius: 4px; padding: .6rem .8rem;
      overflow-x: auto; }
table { border-collapse: collapse; margin: .5rem 0; }
th, td { border: 1px solid #ccc; padding: .15rem .5rem; text-align: left;
         vertical-align: top; }
th { background: #ececf5; }
.num { text-align: right; font-variant-numeric: tabular-nums; }
.phase { font-weight: 600; }
.diffcols { display: flex; gap: 1rem; flex-wrap: wrap; }
.diffcols > div { flex: 1 1 24rem; min-width: 0; }
.blk { background: #fff; border: 1px solid #ddd; border-radius: 4px;
       margin: .4rem 0; padding: .3rem .6rem; }
.blk .bname { color: #666; font-size: 11px; }
.iline { white-space: pre; font: 12px/1.5 ui-monospace, monospace; }
.iline.del { background: #fde8e8; text-decoration: line-through; color: #8a2f2f; }
.iline.ins { background: #e3f6e3; color: #1d5c1d; }
.iline.mov { background: #fff6d9; }
.iline.rew { background: #e7eefc; }
.iid { color: #999; font-size: 10px; }
.remark { display: block; margin-left: 1.5rem; font-size: 11px; color: #555;
          background: #f4f4fc; border-left: 3px solid #4a4e8c; padding: .1rem .4rem; }
.remark .rk { font-weight: 600; color: #37386e; }
.legend span { display: inline-block; padding: 0 .4rem; margin-right: .6rem;
               border-radius: 3px; font-size: 11px; }
.unavailable { color: #a33; font-style: italic; }
.spark { vertical-align: middle; }
details { margin: .4rem 0; }
summary { cursor: pointer; color: #37386e; }
.facts td { font-size: 11px; letter-spacing: .15em; }
.facts td.lbl { letter-spacing: normal; }
.muted { color: #777; }
)css";

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

void appendNum(std::string &Out, uint64_t V) { Out += std::to_string(V); }

/// An inline SVG sparkline over \p Values (polyline, auto-scaled).
void appendSparkline(std::string &Out, const std::vector<uint64_t> &Values,
                     const char *Stroke = "#4a4e8c") {
  if (Values.empty()) {
    Out += "<span class=\"muted\">&mdash;</span>";
    return;
  }
  const int W = 160, H = 28, Pad = 2;
  uint64_t Max = *std::max_element(Values.begin(), Values.end());
  if (Max == 0)
    Max = 1;
  Out += "<svg class=\"spark\" width=\"" + std::to_string(W) + "\" height=\"" +
         std::to_string(H) + "\" viewBox=\"0 0 " + std::to_string(W) + " " +
         std::to_string(H) + "\"><polyline fill=\"none\" stroke=\"";
  Out += Stroke;
  Out += "\" stroke-width=\"1.5\" points=\"";
  size_t N = Values.size();
  for (size_t Idx = 0; Idx < N; ++Idx) {
    double X = N == 1 ? W / 2.0
                      : Pad + (W - 2.0 * Pad) * Idx / double(N - 1);
    double Y = (H - Pad) - (H - 2.0 * Pad) * double(Values[Idx]) / double(Max);
    Out += std::to_string(int(X + 0.5)) + "," + std::to_string(int(Y + 0.5));
    if (Idx + 1 != N)
      Out += ' ';
  }
  Out += "\"/></svg> <span class=\"muted\">max ";
  appendNum(Out, Max);
  Out += "</span>";
}

std::string phaseName(const Snapshot &S) {
  std::string Name = S.Label;
  if (S.Round) {
    Name += " round ";
    Name += std::to_string(S.Round);
  }
  return Name;
}

/// Raw-to-normalized solve serials (RecorderSession::serialMap); the HTML
/// shows only normalized serials, like the facts JSON.
using SerialTable = std::unordered_map<uint64_t, uint64_t>;

uint64_t mapSerial(const SerialTable &Serials, uint64_t Raw) {
  auto It = Serials.find(Raw);
  return It == Serials.end() ? 0 : It->second;
}

/// One rendered remark line (anchored under its instruction).
void appendRemark(std::string &Out, const remarks::Remark &R,
                  const SerialTable &Serials) {
  Out += "<span class=\"remark\"><span class=\"rk\">";
  html::appendEscaped(Out, remarks::kindName(R.K));
  if (R.Act == remarks::Action::Remove)
    Out += " (remove)";
  else if (R.Act == remarks::Action::Insert)
    Out += " (insert)";
  Out += "</span>";
  if (!R.Pattern.empty()) {
    Out += " <code>";
    html::appendEscaped(Out, R.Pattern);
    Out += "</code>";
  }
  if (R.Place != remarks::Placement::None) {
    Out += " @";
    html::appendEscaped(Out, remarks::placementName(R.Place));
  }
  for (const auto &[Name, Value] : R.Facts) {
    Out += " &middot; ";
    html::appendEscaped(Out, Name);
    Out += "=";
    html::appendEscaped(Out, Value);
  }
  if (R.Solve) {
    Out += " &middot; solve #";
    appendNum(Out, mapSerial(Serials, R.Solve));
  }
  Out += "</span>";
}

//===----------------------------------------------------------------------===//
// Sections
//===----------------------------------------------------------------------===//

void appendTimeline(std::string &Out, const RecorderSession &S,
                    bool StatsAvailable) {
  const auto &Names = RecorderSession::counterNames();
  Out += "<h2>Timeline</h2>\n";
  Out += "<p>One row per recorded pipeline point; counters are cumulative "
         "deltas since recording started.</p>\n<table><tr><th>#</th>"
         "<th>phase</th><th class=\"num\">blocks</th>"
         "<th class=\"num\">instrs</th>";
  if (StatsAvailable)
    for (const std::string &Name : Names) {
      Out += "<th class=\"num\">";
      html::appendEscaped(Out, Name);
      Out += "</th>";
    }
  Out += "</tr>\n";
  for (size_t Idx = 0; Idx < S.snapshots().size(); ++Idx) {
    const Snapshot &Snap = S.snapshots()[Idx];
    Out += "<tr><td class=\"num\">" + std::to_string(Idx) +
           "</td><td class=\"phase\">";
    html::appendEscaped(Out, phaseName(Snap));
    Out += "</td><td class=\"num\">" + std::to_string(Snap.Blocks.size()) +
           "</td><td class=\"num\">" + std::to_string(Snap.numInstrs()) +
           "</td>";
    if (StatsAvailable) {
      if (Snap.HasCounters)
        for (uint64_t C : Snap.Counters) {
          Out += "<td class=\"num\">";
          appendNum(Out, C);
          Out += "</td>";
        }
      else
        for (size_t C = 0; C < Names.size(); ++C)
          Out += "<td class=\"num muted\">&mdash;</td>";
    }
    Out += "</tr>\n";
  }
  Out += "</table>\n";
  if (!StatsAvailable)
    Out += "<p class=\"unavailable\">Counter columns unavailable: the stats "
           "registry was disabled for this run.</p>\n";
}

void appendConvergence(std::string &Out, const RecorderSession &S,
                       bool StatsAvailable) {
  Out += "<h2>Convergence</h2>\n";
  if (!StatsAvailable) {
    Out += "<p class=\"unavailable\">Convergence panels unavailable: the "
           "stats registry was disabled for this run.</p>\n";
    return;
  }
  std::vector<uint64_t> Processed, Dirty;
  for (const SolveRecord &R : S.solves()) {
    Processed.push_back(R.BlocksProcessed);
    Dirty.push_back(R.DirtyClosure);
  }
  Out += "<table><tr><th>series</th><th>sparkline</th></tr>\n";
  Out += "<tr><td>blocks processed per solve (" +
         std::to_string(Processed.size()) + " solves)</td><td>";
  appendSparkline(Out, Processed);
  Out += "</td></tr>\n<tr><td>dirty-closure size per solve</td><td>";
  appendSparkline(Out, Dirty, "#8c4a4a");
  Out += "</td></tr>\n";

  // Eliminations per snapshot interval, from the am.eliminated counter
  // deltas between consecutive snapshots.
  const auto &Names = RecorderSession::counterNames();
  size_t ElimIdx = 0;
  for (; ElimIdx < Names.size(); ++ElimIdx)
    if (Names[ElimIdx] == "am.eliminated")
      break;
  std::vector<uint64_t> Elims;
  const auto &Snaps = S.snapshots();
  for (size_t Idx = 1; Idx < Snaps.size(); ++Idx)
    if (Snaps[Idx].HasCounters && Snaps[Idx - 1].HasCounters &&
        ElimIdx < Snaps[Idx].Counters.size())
      Elims.push_back(Snaps[Idx].Counters[ElimIdx] -
                      Snaps[Idx - 1].Counters[ElimIdx]);
  Out += "<tr><td>eliminations per phase step</td><td>";
  appendSparkline(Out, Elims, "#4a8c5c");
  Out += "</td></tr>\n</table>\n";
}

/// Remarks of one phase step, grouped by the instruction id they anchor
/// on.  A remark belongs to the step whose destination snapshot has
/// Label == remark Pass and Round == remark Round.
using RemarksByInstr = std::unordered_map<uint32_t, std::vector<size_t>>;

RemarksByInstr remarksForStep(const std::vector<remarks::Remark> &Remarks,
                              const Snapshot &To) {
  RemarksByInstr M;
  for (size_t Idx = 0; Idx < Remarks.size(); ++Idx) {
    const remarks::Remark &R = Remarks[Idx];
    if (R.Pass == To.Label && R.Round == To.Round)
      M[R.InstrId].push_back(Idx);
  }
  return M;
}

/// Renders one snapshot's program with per-instruction CSS classes from
/// \p Classes (id -> class) and remark anchors from \p Anchors.
void appendProgram(std::string &Out, const RecorderSession &S,
                   const Snapshot &Snap,
                   const std::unordered_map<uint32_t, const char *> &Classes,
                   const RemarksByInstr *Anchors,
                   const std::vector<remarks::Remark> &Remarks,
                   const SerialTable &Serials) {
  for (size_t B = 0; B < Snap.Blocks.size(); ++B) {
    const BlockSnap &Blk = Snap.Blocks[B];
    Out += "<div class=\"blk\"><span class=\"bname\">b" + std::to_string(B);
    if (Blk.Synthetic)
      Out += " (synthetic)";
    if (!Blk.Succs.empty()) {
      Out += " &rarr;";
      for (uint32_t Succ : Blk.Succs)
        Out += " b" + std::to_string(Succ);
    }
    Out += "</span>\n";
    for (const InstrSnap &I : Blk.Instrs) {
      const char *Cls = "";
      auto It = Classes.find(I.Id);
      if (I.Id && It != Classes.end())
        Cls = It->second;
      Out += "<span class=\"iline ";
      Out += Cls;
      Out += "\">";
      html::appendEscaped(Out, S.text(I.Text));
      if (I.Id) {
        Out += "  <span class=\"iid\">#" + std::to_string(I.Id) + "</span>";
      }
      Out += "</span>\n";
      if (Anchors && I.Id) {
        auto AIt = Anchors->find(I.Id);
        if (AIt != Anchors->end())
          for (size_t RIdx : AIt->second)
            appendRemark(Out, Remarks[RIdx], Serials);
      }
    }
    Out += "</div>\n";
  }
}

void appendDiffs(std::string &Out, const RecorderSession &S,
                 const std::vector<remarks::Remark> &Remarks,
                 const SerialTable &Serials) {
  const auto &Snaps = S.snapshots();
  Out += "<h2>Phase steps</h2>\n";
  Out += "<p class=\"legend\"><span class=\"iline ins\">inserted</span>"
         "<span class=\"iline del\">deleted</span>"
         "<span class=\"iline mov\">moved</span>"
         "<span class=\"iline rew\">rewritten</span></p>\n";
  for (size_t Idx = 1; Idx < Snaps.size(); ++Idx) {
    const Snapshot &From = Snaps[Idx - 1];
    const Snapshot &To = Snaps[Idx];
    SnapshotDiff D = S.diff(Idx - 1, Idx);
    RemarksByInstr Anchors = remarksForStep(Remarks, To);

    Out += "<details";
    if (!D.empty())
      Out += " open";
    Out += "><summary><b>";
    html::appendEscaped(Out, phaseName(From));
    Out += " &rarr; ";
    html::appendEscaped(Out, phaseName(To));
    Out += "</b> &middot; " + std::to_string(D.Inserted.size()) +
           " inserted, " + std::to_string(D.Deleted.size()) + " deleted, " +
           std::to_string(D.Moved.size()) + " moved, " +
           std::to_string(D.Rewritten.size()) + " rewritten";
    if (D.empty())
      Out += " (no change)";
    Out += "</summary>\n<div class=\"diffcols\"><div><h3>before</h3>\n";

    std::unordered_map<uint32_t, const char *> FromClasses, ToClasses;
    for (const auto &P : D.Deleted)
      FromClasses[P.Id] = "del";
    for (const auto &P : D.Inserted)
      ToClasses[P.Id] = "ins";
    for (const auto &M : D.Moved)
      ToClasses[M.Id] = "mov";
    for (const auto &R : D.Rewritten)
      ToClasses[R.Id] = "rew"; // rewrite wins over move in the display

    // Remarks about instructions that do not survive the step (e.g. an
    // rae elimination) anchor on the "before" side.
    RemarksByInstr FromAnchors, ToAnchors;
    std::unordered_map<uint32_t, bool> InTo;
    for (const BlockSnap &B : To.Blocks)
      for (const InstrSnap &I : B.Instrs)
        if (I.Id)
          InTo[I.Id] = true;
    for (auto &[Id, Events] : Anchors) {
      if (InTo.count(Id))
        ToAnchors[Id] = Events;
      else
        FromAnchors[Id] = Events;
    }

    appendProgram(Out, S, From, FromClasses, &FromAnchors, Remarks, Serials);
    Out += "</div><div><h3>after</h3>\n";
    appendProgram(Out, S, To, ToClasses, &ToAnchors, Remarks, Serials);
    Out += "</div></div></details>\n";
  }
}

void appendFactTables(std::string &Out, const RecorderSession &S,
                      const SerialTable &Serials) {
  Out += "<h2>Dataflow facts (Tables 1&ndash;3)</h2>\n";
  if (S.facts().empty()) {
    Out += "<p class=\"muted\">No analysis facts were captured.</p>\n";
    return;
  }
  Out += "<p>Bit strings render bit 0 first, over the universe listed with "
         "each table.</p>\n";
  for (const FactTable &T : S.facts()) {
    Out += "<details><summary><b>";
    html::appendEscaped(Out, T.Analysis);
    Out += "</b> (pass ";
    html::appendEscaped(Out, T.Pass);
    if (T.Round)
      Out += ", round " + std::to_string(T.Round);
    if (T.Solve)
      Out += ", solve #" + std::to_string(mapSerial(Serials, T.Solve));
    Out += ")</summary>\n<p>universe:";
    for (size_t Idx = 0; Idx < T.Universe.size(); ++Idx) {
      Out += Idx ? ", " : " ";
      Out += "<code>" + std::to_string(Idx) + ": ";
      html::appendEscaped(Out, S.text(T.Universe[Idx]));
      Out += "</code>";
    }
    Out += "</p>\n<table class=\"facts\"><tr><th>block</th><th>entry</th>"
           "<th>exit</th>";
    for (const FactTable::Extra &E : T.Extras) {
      Out += "<th>";
      html::appendEscaped(Out, E.Name);
      Out += "</th>";
    }
    Out += "</tr>\n";
    for (const FactTable::Row &R : T.Rows) {
      Out += "<tr><td class=\"lbl\">b" + std::to_string(R.Block) + "</td><td>";
      html::appendEscaped(Out, R.Entry);
      Out += "</td><td>";
      html::appendEscaped(Out, R.Exit);
      Out += "</td>";
      for (const FactTable::Extra &E : T.Extras) {
        Out += "<td>";
        html::appendEscaped(Out, E.PerBlock[R.Block]);
        Out += "</td>";
      }
      Out += "</tr>\n";
    }
    Out += "</table></details>\n";
  }
}

void appendSolves(std::string &Out, const RecorderSession &S) {
  Out += "<h2>Dataflow solves</h2>\n";
  if (S.solves().empty()) {
    Out += "<p class=\"muted\">No solves were observed.</p>\n";
    return;
  }
  Out += "<table><tr><th>phase</th><th>direction</th><th>path</th>"
         "<th class=\"num\">bits</th><th class=\"num\">blocks</th>"
         "<th class=\"num\">processed</th><th class=\"num\">dirty</th>"
         "</tr>\n";
  for (const SolveRecord &R : S.solves()) {
    Out += "<tr><td>";
    html::appendEscaped(Out, R.Label);
    if (R.Round)
      Out += " round " + std::to_string(R.Round);
    Out += "</td><td>";
    Out += R.Forward ? "forward" : "backward";
    Out += "</td><td>";
    Out += R.Path == 2 ? "cached" : R.Path == 1 ? "incremental" : "full";
    Out += "</td><td class=\"num\">" + std::to_string(R.Bits) +
           "</td><td class=\"num\">" + std::to_string(R.Blocks) +
           "</td><td class=\"num\">";
    appendNum(Out, R.BlocksProcessed);
    Out += "</td><td class=\"num\">" + std::to_string(R.DirtyClosure) +
           "</td></tr>\n";
  }
  Out += "</table>\n";
}

} // namespace

std::string am::report::renderHtmlReport(const RecorderSession &S,
                                         const ReportMeta &Meta) {
  std::string Out;
  Out.reserve(1 << 16);
  Out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
         "<meta charset=\"utf-8\">\n<title>";
  html::appendEscaped(Out, Meta.Title.empty() ? "optimization report"
                                              : Meta.Title);
  Out += "</title>\n<style>";
  Out += Css;
  Out += "</style>\n</head>\n<body>\n<h1>Optimization report";
  if (!Meta.Title.empty()) {
    Out += ": ";
    html::appendEscaped(Out, Meta.Title);
  }
  Out += "</h1>\n<p>pipeline: <code>";
  html::appendEscaped(Out, Meta.PassSpec);
  Out += "</code> &middot; " + std::to_string(S.snapshots().size()) +
         " snapshots &middot; " + std::to_string(S.facts().size()) +
         " fact tables &middot; " + std::to_string(Meta.Remarks.size()) +
         " remarks</p>\n";

  const SerialTable Serials = S.serialMap(&Meta.Remarks);
  appendTimeline(Out, S, Meta.StatsAvailable);
  appendConvergence(Out, S, Meta.StatsAvailable);
  appendDiffs(Out, S, Meta.Remarks, Serials);
  appendFactTables(Out, S, Serials);
  appendSolves(Out, S);

  Out += "<h2>Input program</h2>\n<pre>";
  html::appendEscaped(Out, Meta.InputText);
  Out += "</pre>\n<h2>Optimized program</h2>\n<pre>";
  html::appendEscaped(Out, Meta.OutputText);
  Out += "</pre>\n</body>\n</html>\n";
  return Out;
}
