//===- report/FleetReport.cpp - Fleet dashboard & corpus diff ------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "report/FleetReport.h"
#include "support/Aggregate.h"
#include "support/EventLog.h"
#include "support/Html.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

using namespace am;
using namespace am::report;
using am::fleet::Aggregate;
using am::fleet::DiffRow;
using am::fleet::EventLogFile;
using am::fleet::Histogram;
using am::fleet::JobEvent;
using am::fleet::MetricAgg;

namespace {

//===----------------------------------------------------------------------===//
// Style: role tokens from the validated reference palette.  Single-series
// charts use the sequential blue; statuses use the fixed status palette
// (always icon+label, never color alone); all text wears text tokens.
//===----------------------------------------------------------------------===//

const char *FleetCss = R"css(
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --good: #0ca30c; --warn: #fab219; --serious: #ec835a; --critical: #d03b3b;
  --delta-up: #b42a2a; --delta-down: #006300;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --delta-up: #e66767; --delta-down: #0ca30c;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 2px; }
h2 { font-size: 15px; margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px;
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile { min-width: 130px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
.tile .note { color: var(--ink-muted); font-size: 12px; }
.hero .value { font-size: 48px; }
.status-dot {
  display: inline-block; width: 9px; height: 9px; border-radius: 50%;
  margin-right: 6px; vertical-align: 1px;
}
table { border-collapse: collapse; width: 100%; }
th, td {
  text-align: left; padding: 5px 10px 5px 0;
  border-bottom: 1px solid var(--grid); vertical-align: baseline;
}
th { color: var(--ink-2); font-weight: 500; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
td.mono { font-family: ui-monospace, monospace; font-size: 12px;
          color: var(--ink-2); }
.delta-up { color: var(--delta-up); }
.delta-down { color: var(--delta-down); }
.muted { color: var(--ink-muted); }
.charts { display: flex; flex-wrap: wrap; gap: 16px; }
.chart-title { font-size: 13px; color: var(--ink-2); margin-bottom: 4px; }
.chart-note { font-size: 11px; color: var(--ink-muted); }
svg text { fill: var(--ink-muted); font: 10px system-ui, sans-serif; }
svg .cap { fill: var(--ink-2); }
svg .col { fill: var(--series-1); }
svg .col:hover { opacity: 0.85; }
svg .base { stroke: var(--baseline); stroke-width: 1; }
)css";

std::string fmtNs(double Ns) {
  char Buf[48];
  if (Ns >= 1e9)
    std::snprintf(Buf, sizeof(Buf), "%.2f s", Ns / 1e9);
  else if (Ns >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.2f ms", Ns / 1e6);
  else if (Ns >= 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.1f µs", Ns / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0f ns", Ns);
  return Buf;
}

std::string fmtNum(double V) {
  char Buf[48];
  if (V >= 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.2fM", V / 1e6);
  else if (V >= 1e4)
    std::snprintf(Buf, sizeof(Buf), "%.1fK", V / 1e3);
  else if (V == std::floor(V) && std::fabs(V) < 1e15)
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2f", V);
  return Buf;
}

const char *statusVar(const std::string &S) {
  if (S == "ok")
    return "var(--good)";
  if (S == "rolled_back")
    return "var(--serious)";
  if (S == "limits")
    return "var(--warn)";
  return "var(--critical)";
}

void appendTile(std::string &Out, const std::string &Label,
                const std::string &Value, const std::string &Note,
                bool Hero = false) {
  Out += Hero ? "<div class=\"card tile hero\">" : "<div class=\"card tile\">";
  html::appendTag(Out, "div", Label, "label");
  html::appendTag(Out, "div", Value, "value");
  if (!Note.empty())
    html::appendTag(Out, "div", Note, "note");
  Out += "</div>";
}

/// One column with a 4px-rounded data end and a square baseline.
void appendColumn(std::string &Out, double X, double YTop, double W, double H,
                  double YBase, const std::string &Tooltip) {
  double R = std::min({4.0, W / 2.0, H});
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "<path class=\"col\" d=\"M%.1f %.1f L%.1f %.1f Q%.1f %.1f "
                "%.1f %.1f L%.1f %.1f Q%.1f %.1f %.1f %.1f L%.1f %.1f Z\">",
                X, YBase, X, YTop + R, X, YTop, X + R, YTop, X + W - R, YTop,
                X + W, YTop, X + W, YTop + R, X + W, YBase);
  Out += Buf;
  html::appendTag(Out, "title", Tooltip);
  Out += "</path>";
}

/// A log2-bucket column chart over \p H's occupied range.  \p Unit: true
/// renders bucket bounds as durations, false as plain counts.
void appendHistogramSvg(std::string &Out, const Histogram &H, bool NsUnits) {
  size_t Lo = Histogram::NumBuckets, Hi = 0;
  uint64_t Peak = 0;
  for (size_t B = 0; B < Histogram::NumBuckets; ++B)
    if (uint64_t N = H.bucket(B)) {
      Lo = std::min(Lo, B);
      Hi = std::max(Hi, B);
      Peak = std::max(Peak, N);
    }
  if (Peak == 0) {
    Out += "<div class=\"chart-note\">no samples</div>";
    return;
  }
  // Keep the chart readable: at most 24 columns, preferring the top end.
  if (Hi - Lo + 1 > 24)
    Lo = Hi - 23;
  size_t NCols = Hi - Lo + 1;
  double W = 14.0, Gap = 2.0, PlotH = 86.0, TopPad = 14.0, BotPad = 16.0;
  double Width = NCols * (W + Gap) + Gap;
  double YBase = TopPad + PlotH;
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "<svg width=\"%.0f\" height=\"%.0f\" role=\"img\">", Width,
                YBase + BotPad);
  Out += Buf;
  for (size_t B = Lo; B <= Hi; ++B) {
    uint64_t N = H.bucket(B);
    double X = Gap + (B - Lo) * (W + Gap);
    if (N == 0)
      continue;
    double ColH =
        std::max(1.5, PlotH * static_cast<double>(N) / static_cast<double>(Peak));
    double BucketLo = std::pow(2.0, static_cast<double>(B));
    std::string Range = NsUnits
                            ? fmtNs(BucketLo) + " – " + fmtNs(BucketLo * 2)
                            : fmtNum(BucketLo) + " – " + fmtNum(BucketLo * 2);
    appendColumn(Out, X, YBase - ColH, W, ColH, YBase,
                 Range + ": " + std::to_string(N) + " samples");
    if (N == Peak) { // label the mode only — selective, not exhaustive
      std::snprintf(Buf, sizeof(Buf),
                    "<text class=\"cap\" x=\"%.1f\" y=\"%.1f\" "
                    "text-anchor=\"middle\">%llu</text>",
                    X + W / 2, YBase - ColH - 3, (unsigned long long)N);
      Out += Buf;
    }
  }
  std::snprintf(Buf, sizeof(Buf),
                "<line class=\"base\" x1=\"0\" y1=\"%.1f\" x2=\"%.0f\" "
                "y2=\"%.1f\"/>",
                YBase + 0.5, Width, YBase + 0.5);
  Out += Buf;
  // Axis: the range ends, in the bucket unit.
  double LoV = std::pow(2.0, static_cast<double>(Lo));
  double HiV = std::pow(2.0, static_cast<double>(Hi + 1));
  std::snprintf(Buf, sizeof(Buf), "<text x=\"2\" y=\"%.1f\">%s</text>",
                YBase + 12, (NsUnits ? fmtNs(LoV) : fmtNum(LoV)).c_str());
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf),
                "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>",
                Width - 2, YBase + 12,
                (NsUnits ? fmtNs(HiV) : fmtNum(HiV)).c_str());
  Out += Buf;
  Out += "</svg>";
}

void beginDocument(std::string &Out, const std::string &Title) {
  Out += "<!DOCTYPE html><html lang=\"en\"><head><meta charset=\"utf-8\">";
  html::appendTag(Out, "title", Title);
  Out += "<style>";
  Out += FleetCss;
  Out += "</style></head><body>";
}

void appendStatusTiles(std::string &Out,
                       const std::map<std::string, uint64_t> &Statuses) {
  for (const auto &[S, N] : Statuses) {
    Out += "<div class=\"card tile\"><div class=\"label\">"
           "<span class=\"status-dot\" style=\"background:";
    Out += statusVar(S);
    Out += "\"></span>";
    html::appendEscaped(Out, S);
    Out += "</div>";
    html::appendTag(Out, "div", std::to_string(N), "value");
    Out += "</div>";
  }
}

std::string jobLabel(const JobEvent &E) {
  return E.Name + " (" + E.Hash.substr(0, 8) + ")";
}

uint64_t counterOf(const JobEvent &E, const std::string &Name) {
  for (const auto &[N, V] : E.Counters)
    if (N == Name)
      return V;
  return 0;
}

} // namespace

std::string report::renderFleetDashboard(const EventLogFile &Log,
                                         const Aggregate &Agg,
                                         const FleetReportOptions &Opts) {
  std::string Out;
  beginDocument(Out, Opts.Title);
  html::appendTag(Out, "h1", Opts.Title);
  {
    std::string Sub = "amevents-v1 · passes: " + Log.Passes + " · " +
                      std::to_string(Log.Events.size()) + " jobs";
    if (Log.SkippedLines)
      Sub += " · " + std::to_string(Log.SkippedLines) + " line(s) skipped";
    html::appendTag(Out, "p", Sub, "sub");
  }

  // Per-preset + whole-run work sums (wall facts come from the raw event
  // log — the machine-specific layer; the aggregate stays time-free).
  struct PresetSums {
    uint64_t Jobs = 0;
    uint64_t WallNs = 0;
  };
  std::map<std::string, PresetSums> Presets;
  uint64_t TotalWallNs = 0;
  for (const JobEvent &E : Log.Events) {
    PresetSums &P = Presets[E.Preset];
    ++P.Jobs;
    P.WallNs += E.WallNs;
    TotalWallNs += E.WallNs;
  }

  Out += "<div class=\"tiles\">";
  appendTile(Out, "programs", std::to_string(Log.Events.size()), "", true);
  if (TotalWallNs) {
    double PerCore = static_cast<double>(Log.Events.size()) /
                     (static_cast<double>(TotalWallNs) / 1e9);
    appendTile(Out, "throughput (per core)", fmtNum(PerCore) + "/s",
               "jobs ÷ summed job wall");
  }
  if (Opts.RunWallNs) {
    double WallClock = static_cast<double>(Log.Events.size()) /
                       (static_cast<double>(Opts.RunWallNs) / 1e9);
    appendTile(Out, "throughput (wall clock)", fmtNum(WallClock) + "/s",
               std::to_string(Opts.Threads) + " worker thread(s)");
  }
  appendStatusTiles(Out, Agg.statuses());
  // Reader data loss belongs in the status strip, not just the subtitle:
  // a corpus missing records must not read as a smaller healthy corpus.
  if (Agg.skippedLines())
    appendTile(Out, "skipped lines", std::to_string(Agg.skippedLines()),
               "event-log records lost");
  Out += "</div>";

  html::appendTag(Out, "h2", "Per-preset throughput");
  Out += "<div class=\"card\"><table><tr><th>preset</th>"
         "<th class=\"num\">jobs</th><th class=\"num\">total job wall</th>"
         "<th class=\"num\">programs/s (per core)</th><th></th></tr>";
  double MaxRate = 0;
  for (const auto &[Name, P] : Presets)
    if (P.WallNs)
      MaxRate = std::max(MaxRate, static_cast<double>(P.Jobs) /
                                      (static_cast<double>(P.WallNs) / 1e9));
  for (const auto &[Name, P] : Presets) {
    double Rate = P.WallNs ? static_cast<double>(P.Jobs) /
                                 (static_cast<double>(P.WallNs) / 1e9)
                           : 0.0;
    Out += "<tr><td>";
    html::appendEscaped(Out, Name.empty() ? "(none)" : Name);
    Out += "</td><td class=\"num\">" + std::to_string(P.Jobs) + "</td>";
    Out += "<td class=\"num\">" +
           html::escaped(fmtNs(static_cast<double>(P.WallNs))) + "</td>";
    Out += "<td class=\"num\">" + html::escaped(fmtNum(Rate)) + "</td><td>";
    // One-series magnitude bar (sequential hue), rounded data end.
    double Frac = MaxRate > 0 ? Rate / MaxRate : 0.0;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "<svg width=\"160\" height=\"14\"><rect class=\"col\" "
                  "x=\"0\" y=\"2\" width=\"%.1f\" height=\"10\" rx=\"4\"/>"
                  "</svg>",
                  std::max(2.0, 160.0 * Frac));
    Out += Buf;
    Out += "</td></tr>";
  }
  Out += "</table></div>";

  // Phase-time histograms from the raw per-job phase timings.
  std::map<std::string, Histogram> PhaseHists;
  std::map<std::string, uint64_t> PhaseTotals;
  for (const JobEvent &E : Log.Events)
    for (const auto &[Phase, Ns] : E.Phases) {
      PhaseHists[Phase].add(Ns);
      PhaseTotals[Phase] += Ns;
    }
  Histogram JobWall;
  for (const JobEvent &E : Log.Events)
    JobWall.add(E.WallNs);
  html::appendTag(Out, "h2", "Phase-time distributions");
  Out += "<div class=\"charts\">";
  auto PhaseCard = [&Out](const std::string &Name, const Histogram &H,
                          uint64_t TotalNs) {
    Out += "<div class=\"card\">";
    html::appendTag(Out, "div", Name, "chart-title");
    appendHistogramSvg(Out, H, /*NsUnits=*/true);
    std::string Note = std::to_string(H.count()) + " samples · total " +
                       fmtNs(static_cast<double>(TotalNs)) + " · p50 " +
                       fmtNs(static_cast<double>(H.percentile(0.5))) +
                       " · p95 " +
                       fmtNs(static_cast<double>(H.percentile(0.95))) +
                       " · p99 " +
                       fmtNs(static_cast<double>(H.percentile(0.99)));
    html::appendTag(Out, "div", Note, "chart-note");
    Out += "</div>";
  };
  PhaseCard("job wall time", JobWall, TotalWallNs);
  unsigned Shown = 0;
  for (const auto &[Phase, H] : PhaseHists) {
    if (++Shown > 8) { // no silent cap: say what was folded away
      html::appendTag(Out, "div",
                      "(+" +
                          std::to_string(PhaseHists.size() - (Shown - 1)) +
                          " more phases in the event log)",
                      "chart-note");
      break;
    }
    PhaseCard(Phase, H, PhaseTotals[Phase]);
  }
  Out += "</div>";

  // Top-K tables over the raw events.
  auto JobTable = [&Out](const std::vector<const JobEvent *> &Rows) {
    Out += "<div class=\"card\"><table><tr><th>program</th><th>preset</th>"
           "<th>status</th><th class=\"num\">wall</th>"
           "<th class=\"num\">rollbacks</th><th class=\"num\">instrs</th>"
           "<th class=\"num\">dfa sweeps</th></tr>";
    for (const JobEvent *E : Rows) {
      Out += "<tr><td>";
      html::appendEscaped(Out, E->Name);
      Out += " <span class=\"mono\">";
      html::appendEscaped(Out, E->Hash.substr(0, 8));
      Out += "</span></td><td>";
      html::appendEscaped(Out, E->Preset);
      Out += "</td><td><span class=\"status-dot\" style=\"background:";
      Out += statusVar(E->Status);
      Out += "\"></span>";
      html::appendEscaped(Out, E->Status);
      Out += "</td><td class=\"num\">" +
             html::escaped(fmtNs(static_cast<double>(E->WallNs))) + "</td>";
      Out += "<td class=\"num\">" + std::to_string(E->Rollbacks) + "</td>";
      Out += "<td class=\"num\">" + std::to_string(E->InstrsBefore) +
             " → " + std::to_string(E->InstrsAfter) + "</td>";
      Out += "<td class=\"num\">" +
             std::to_string(counterOf(*E, "dfa.sweeps")) + "</td></tr>";
    }
    Out += "</table></div>";
  };

  std::vector<const JobEvent *> ByWall;
  ByWall.reserve(Log.Events.size());
  for (const JobEvent &E : Log.Events)
    ByWall.push_back(&E);
  std::stable_sort(ByWall.begin(), ByWall.end(),
                   [](const JobEvent *A, const JobEvent *B) {
                     return A->WallNs > B->WallNs;
                   });
  if (ByWall.size() > Opts.TopK)
    ByWall.resize(Opts.TopK);
  html::appendTag(Out, "h2",
                  "Slowest programs (top " +
                      std::to_string(ByWall.size()) + ")");
  JobTable(ByWall);

  std::vector<const JobEvent *> ByRollbacks;
  for (const JobEvent &E : Log.Events)
    if (E.Rollbacks > 0 || E.Status != "ok")
      ByRollbacks.push_back(&E);
  std::stable_sort(ByRollbacks.begin(), ByRollbacks.end(),
                   [](const JobEvent *A, const JobEvent *B) {
                     return A->Rollbacks > B->Rollbacks;
                   });
  if (ByRollbacks.size() > Opts.TopK)
    ByRollbacks.resize(Opts.TopK);
  html::appendTag(Out, "h2", "Rolled-back / failed programs");
  if (ByRollbacks.empty())
    html::appendTag(Out, "p", "none — every job completed clean", "sub");
  else
    JobTable(ByRollbacks);

  // The deterministic aggregate, as the table view of the histograms.
  html::appendTag(Out, "h2", "Counter aggregates (machine-independent)");
  Out += "<div class=\"card\"><table><tr><th>counter</th>"
         "<th class=\"num\">jobs</th><th class=\"num\">sum</th>"
         "<th class=\"num\">mean</th><th class=\"num\">min</th>"
         "<th class=\"num\">p50</th><th class=\"num\">p95</th>"
         "<th class=\"num\">p99</th><th class=\"num\">max</th></tr>";
  for (const auto &[Name, M] : Agg.counters()) {
    Out += "<tr><td>";
    html::appendEscaped(Out, Name);
    Out += "</td><td class=\"num\">" + std::to_string(M.Jobs) + "</td>";
    Out += "<td class=\"num\">" + std::to_string(M.Sum) + "</td>";
    Out += "<td class=\"num\">" + html::escaped(fmtNum(M.mean())) + "</td>";
    Out += "<td class=\"num\">" + std::to_string(M.Jobs ? M.Min : 0) + "</td>";
    Out += "<td class=\"num\">" + std::to_string(M.Hist.percentile(0.5)) +
           "</td>";
    Out += "<td class=\"num\">" + std::to_string(M.Hist.percentile(0.95)) +
           "</td>";
    Out += "<td class=\"num\">" + std::to_string(M.Hist.percentile(0.99)) +
           "</td>";
    Out += "<td class=\"num\">" + std::to_string(M.Max) + "</td></tr>";
  }
  Out += "</table></div>";

  if (!Log.Warnings.empty()) {
    html::appendTag(Out, "h2", "Reader warnings");
    Out += "<div class=\"card\">";
    for (const std::string &W : Log.Warnings)
      html::appendTag(Out, "div", W, "muted");
    Out += "</div>";
  }

  Out += "</body></html>";
  return Out;
}

std::string report::renderFleetDiff(const EventLogFile &A,
                                    const EventLogFile &B,
                                    const std::string &NameA,
                                    const std::string &NameB) {
  Aggregate AggA, AggB;
  for (const JobEvent &E : A.Events)
    AggA.addJob(E);
  for (const JobEvent &E : B.Events)
    AggB.addJob(E);
  std::vector<DiffRow> Rows = fleet::diffAggregates(AggA, AggB);

  std::string Out;
  beginDocument(Out, "fleet diff");
  html::appendTag(Out, "h1", "Corpus diff: " + NameA + " vs " + NameB);
  html::appendTag(Out, "p",
                  "A = " + NameA + " (" + std::to_string(A.Events.size()) +
                      " jobs, passes: " + A.Passes + ") · B = " + NameB +
                      " (" + std::to_string(B.Events.size()) +
                      " jobs, passes: " + B.Passes + ")",
                  "sub");

  Out += "<div class=\"tiles\">";
  appendTile(Out, "jobs A", std::to_string(A.Events.size()), NameA);
  appendTile(Out, "jobs B", std::to_string(B.Events.size()), NameB);
  auto StatusOf = [](const Aggregate &G, const char *S) {
    auto It = G.statuses().find(S);
    return It == G.statuses().end() ? uint64_t(0) : It->second;
  };
  appendTile(Out, "ok A → B",
             std::to_string(StatusOf(AggA, "ok")) + " → " +
                 std::to_string(StatusOf(AggB, "ok")),
             "");
  uint64_t BadA = A.Events.size() - StatusOf(AggA, "ok");
  uint64_t BadB = B.Events.size() - StatusOf(AggB, "ok");
  appendTile(Out, "not-ok A → B",
             std::to_string(BadA) + " → " + std::to_string(BadB), "");
  Out += "</div>";

  // Per-counter comparison, ranked by |relative delta|.  Up-arrows are
  // regressions (more work), down-arrows improvements; the sign and
  // arrow carry the direction, color only reinforces it.
  html::appendTag(Out, "h2", "Per-counter deltas (ranked by magnitude)");
  Out += "<div class=\"card\"><table><tr><th>counter</th>"
         "<th class=\"num\">mean A</th><th class=\"num\">mean B</th>"
         "<th class=\"num\">Δ mean</th><th class=\"num\">Δ %</th>"
         "<th class=\"num\">sum A</th><th class=\"num\">sum B</th></tr>";
  for (const DiffRow &R : Rows) {
    bool Up = R.Delta > 0, Flat = R.Delta == 0;
    Out += "<tr><td>";
    html::appendEscaped(Out, R.Counter);
    Out += "</td><td class=\"num\">" + html::escaped(fmtNum(R.MeanA)) +
           "</td>";
    Out += "<td class=\"num\">" + html::escaped(fmtNum(R.MeanB)) + "</td>";
    Out += "<td class=\"num ";
    Out += Flat ? "muted" : (Up ? "delta-up" : "delta-down");
    Out += "\">";
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%s%s%s",
                  Flat ? "" : (Up ? "▲ +" : "▼ "),
                  fmtNum(R.Delta).c_str(), "");
    Out += html::escaped(Buf);
    Out += "</td><td class=\"num ";
    Out += Flat ? "muted" : (Up ? "delta-up" : "delta-down");
    Out += "\">";
    if (std::fabs(R.RelDelta) >= 1e9)
      Out += Up ? "new" : "gone";
    else {
      std::snprintf(Buf, sizeof(Buf), "%+.1f%%", R.RelDelta * 100.0);
      Out += Buf;
    }
    Out += "</td><td class=\"num\">" + std::to_string(R.SumA) + "</td>";
    Out += "<td class=\"num\">" + std::to_string(R.SumB) + "</td></tr>";
  }
  Out += "</table></div>";

  // Jobs present in both runs: status flips and the movers of the
  // top-ranked changed counter.
  std::map<std::string, const JobEvent *> JobsA;
  for (const JobEvent &E : A.Events)
    JobsA.emplace(E.Name, &E);
  std::vector<std::pair<const JobEvent *, const JobEvent *>> Matched;
  for (const JobEvent &E : B.Events) {
    auto It = JobsA.find(E.Name);
    if (It != JobsA.end())
      Matched.emplace_back(It->second, &E);
  }

  html::appendTag(Out, "h2", "Status changes");
  std::string Flips;
  for (const auto &[EA, EB] : Matched)
    if (EA->Status != EB->Status) {
      Flips += "<tr><td>";
      html::appendEscaped(Flips, jobLabel(*EA));
      Flips += "</td><td>";
      html::appendEscaped(Flips, EA->Status);
      Flips += " → ";
      html::appendEscaped(Flips, EB->Status);
      Flips += "</td></tr>";
    }
  if (Flips.empty())
    html::appendTag(Out, "p", "none — every matched job kept its status",
                    "sub");
  else
    Out += "<div class=\"card\"><table><tr><th>program</th><th>status"
           "</th></tr>" +
           Flips + "</table></div>";

  const DiffRow *Top = nullptr;
  for (const DiffRow &R : Rows)
    if (R.Delta != 0.0) {
      Top = &R;
      break;
    }
  if (Top && !Matched.empty()) {
    html::appendTag(Out, "h2",
                    "Biggest per-job movers: " + Top->Counter);
    struct Mover {
      const JobEvent *EA;
      const JobEvent *EB;
      int64_t Delta;
    };
    std::vector<Mover> Movers;
    for (const auto &[EA, EB] : Matched) {
      int64_t D = static_cast<int64_t>(counterOf(*EB, Top->Counter)) -
                  static_cast<int64_t>(counterOf(*EA, Top->Counter));
      if (D != 0)
        Movers.push_back({EA, EB, D});
    }
    std::stable_sort(Movers.begin(), Movers.end(),
                     [](const Mover &X, const Mover &Y) {
                       return std::llabs(X.Delta) > std::llabs(Y.Delta);
                     });
    if (Movers.size() > 10)
      Movers.resize(10);
    if (Movers.empty()) {
      html::appendTag(Out, "p",
                      "no matched job moved on this counter (the delta "
                      "comes from unmatched jobs)",
                      "sub");
    } else {
      Out += "<div class=\"card\"><table><tr><th>program</th>"
             "<th class=\"num\">A</th><th class=\"num\">B</th>"
             "<th class=\"num\">Δ</th></tr>";
      for (const Mover &M : Movers) {
        Out += "<tr><td>";
        html::appendEscaped(Out, jobLabel(*M.EA));
        Out += "</td><td class=\"num\">" +
               std::to_string(counterOf(*M.EA, Top->Counter)) + "</td>";
        Out += "<td class=\"num\">" +
               std::to_string(counterOf(*M.EB, Top->Counter)) + "</td>";
        Out += "<td class=\"num ";
        Out += M.Delta > 0 ? "delta-up" : "delta-down";
        Out += "\">";
        char Buf[32];
        std::snprintf(Buf, sizeof(Buf), "%+lld", (long long)M.Delta);
        Out += Buf;
        Out += "</td></tr>";
      }
      Out += "</table></div>";
    }
  }

  Out += "</body></html>";
  return Out;
}
