//===- verify/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, flag-selected fault injection for proving the guarded
/// pipeline's detectors work.  Each *fault class* names one specific way a
/// transform could be wrong; while an injector is installed and armed for
/// a class, the corresponding hook inside the transform fires the fault at
/// exactly one *site* (the N-th dynamic opportunity of that class in the
/// run, counted deterministically).  The guard layers must then catch it:
///
///   rae-flip       rae treats one non-redundant occurrence as redundant
///                  (one flipped N-REDUNDANT dataflow bit) and wrongly
///                  eliminates it — a semantic fault the equivalence
///                  spot-check catches;
///   aht-skip-block aht skips one blockage check and hoists an occurrence
///                  past its blocker — a semantic fault;
///   aht-misplace   aht realizes one entry insertion at the block *end*
///                  instead of the entry — a placement fault, semantic
///                  whenever the block body interferes with the pattern;
///   edge-corrupt   a pass leaves one successor edge rewired without
///                  updating the predecessor list — a structural fault
///                  GraphVerifier's adjacency check catches.
///
/// The service-level classes fire inside support/Service.h's request
/// engine instead of a transform, proving the daemon's failure envelope
/// (the response statuses) rather than the guard detectors:
///
///   svc-worker-throw a worker thread throws mid-request — the engine
///                    must answer `error` and keep serving;
///   svc-slow-request the worker wedges past the request deadline — the
///                    watchdog/deadline path must answer `timeout` with
///                    the input intact;
///   svc-bad-alloc    the request allocator fails — downgraded to a
///                    `resource_exhausted` response, never process death.
///
/// Cost model mirrors report::RecorderSession: every hook is
/// `if (FaultInjector *FI = FaultInjector::current())` — one relaxed
/// atomic load when injection is off, which is always outside tests and
/// `amopt --inject=...`.
///
//===----------------------------------------------------------------------===//

#ifndef AM_VERIFY_FAULTINJECTOR_H
#define AM_VERIFY_FAULTINJECTOR_H

#include "support/Diag.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

namespace am::fault {

enum class FaultClass : uint8_t {
  RaeFlipBit,        ///< "rae-flip"
  AhtSkipBlockage,   ///< "aht-skip-block"
  AhtMisplaceInsert, ///< "aht-misplace"
  CorruptEdge,       ///< "edge-corrupt"
  SvcWorkerThrow,    ///< "svc-worker-throw"
  SvcSlowRequest,    ///< "svc-slow-request"
  SvcBadAlloc,       ///< "svc-bad-alloc"
};

constexpr unsigned NumFaultClasses = 7;

const char *faultClassName(FaultClass C);

/// Parses a class name; returns false if unknown.
bool parseFaultClass(const std::string &Name, FaultClass &Out);

/// Parses "<class>[:<site>]" (site defaults to 0 = the first opportunity).
diag::Expected<std::pair<FaultClass, unsigned>>
parseFaultSpec(const std::string &Spec);

/// One armed fault per class, fired at a deterministic site.  Install one
/// instance process-wide; the hooks in the transforms consult current().
/// arm()/install() are setup-time (single-threaded); fire() serializes
/// its site counting internally, so the service workers of `amserved`
/// can race through the svc-* hooks without corrupting the slots.
class FaultInjector {
public:
  FaultInjector() = default;
  ~FaultInjector() {
    if (Installed)
      uninstall();
  }
  FaultInjector(const FaultInjector &) = delete;
  FaultInjector &operator=(const FaultInjector &) = delete;

  /// Makes this the process-wide active injector.  At most one at a time.
  void install();
  void uninstall();

  /// The active injector, or nullptr — one relaxed atomic load.
  static FaultInjector *current() {
    return Active.load(std::memory_order_relaxed);
  }

  /// Arms \p C to fire at its \p Site-th dynamic opportunity.
  void arm(FaultClass C, unsigned Site = 0) {
    Slot &S = slot(C);
    S.Armed = true;
    S.Site = Site;
  }

  bool armedFor(FaultClass C) const { return slot(C).Armed; }

  /// Called by the transform hooks at every opportunity of class \p C.
  /// Returns true exactly when the armed site index is reached; each armed
  /// fault fires at most once per run.
  bool fire(FaultClass C) {
    std::lock_guard<std::mutex> Lock(FireMu);
    Slot &S = slot(C);
    if (!S.Armed || S.Fired)
      return false;
    if (S.Counter++ != S.Site)
      return false;
    S.Fired = true;
    return true;
  }

  /// How many armed faults actually fired (tests assert the injected
  /// fault really happened — an undetected fault that never fired would
  /// make the detection matrix vacuous).
  unsigned firedCount() const {
    unsigned N = 0;
    for (const Slot &S : Slots)
      N += S.Fired;
    return N;
  }

  /// Resets site counters and fired flags (armed classes stay armed), for
  /// deterministic re-runs within one test.
  void resetCounters() {
    for (Slot &S : Slots) {
      S.Counter = 0;
      S.Fired = false;
    }
  }

private:
  struct Slot {
    bool Armed = false;
    bool Fired = false;
    unsigned Site = 0;
    unsigned Counter = 0;
  };

  Slot &slot(FaultClass C) { return Slots[static_cast<unsigned>(C)]; }
  const Slot &slot(FaultClass C) const {
    return Slots[static_cast<unsigned>(C)];
  }

  static std::atomic<FaultInjector *> Active;

  std::mutex FireMu;
  Slot Slots[NumFaultClasses];
  bool Installed = false;
};

} // namespace am::fault

#endif // AM_VERIFY_FAULTINJECTOR_H
