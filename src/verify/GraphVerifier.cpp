//===- verify/GraphVerifier.cpp - IR invariant checker ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "verify/GraphVerifier.h"
#include "ir/Patterns.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

using namespace am;

const char *am::violationKindName(ViolationKind K) {
  switch (K) {
  case ViolationKind::StartEnd:
    return "start-end";
  case ViolationKind::Adjacency:
    return "adjacency";
  case ViolationKind::Reachability:
    return "reachability";
  case ViolationKind::BranchPlacement:
    return "branch-placement";
  case ViolationKind::VarRef:
    return "var-ref";
  case ViolationKind::ExprRef:
    return "expr-ref";
  case ViolationKind::DuplicateInstrId:
    return "duplicate-instr-id";
  case ViolationKind::CriticalEdge:
    return "critical-edge";
  case ViolationKind::PatternTable:
    return "pattern-table";
  }
  return "?";
}

std::string VerifyResult::renderText(size_t MaxItems) const {
  std::string Out;
  size_t N = std::min(MaxItems, Violations.size());
  for (size_t I = 0; I < N; ++I) {
    if (!Out.empty())
      Out += "; ";
    Out += violationKindName(Violations[I].K);
    Out += ": ";
    Out += Violations[I].Message;
  }
  if (Violations.size() > N)
    Out += " (+" + std::to_string(Violations.size() - N) + " more)";
  return Out;
}

namespace {

class Verifier {
public:
  Verifier(const FlowGraph &G, const VerifierOptions &Opts)
      : G(G), Opts(Opts) {}

  VerifyResult run() {
    if (!checkStartEnd())
      return std::move(R); // no usable anchor blocks; stop here
    checkAdjacency();
    checkReachability();
    checkBranchPlacement();
    checkReferences();
    checkInstrIds();
    if (Opts.RequireSplitEdges)
      checkCriticalEdges();
    return std::move(R);
  }

private:
  bool full() const { return R.Violations.size() >= Opts.MaxViolations; }

  void add(ViolationKind K, std::string Msg, BlockId B = InvalidBlock,
           uint32_t Idx = 0xFFFFFFFFu) {
    if (full())
      return;
    Violation V;
    V.K = K;
    V.Message = std::move(Msg);
    V.Block = B;
    V.InstrIndex = Idx;
    R.Violations.push_back(std::move(V));
  }

  /// Returns false if start/end are unusable (later traversals would be
  /// meaningless).
  bool checkStartEnd() {
    bool Ok = true;
    if (G.start() == InvalidBlock || G.start() >= G.numBlocks()) {
      add(ViolationKind::StartEnd, "start node is not set or out of range");
      Ok = false;
    }
    if (G.end() == InvalidBlock || G.end() >= G.numBlocks()) {
      add(ViolationKind::StartEnd, "end node is not set or out of range");
      Ok = false;
    }
    if (!Ok)
      return false;
    if (!G.block(G.start()).Preds.empty())
      add(ViolationKind::StartEnd, "start node has predecessors",
          G.start());
    if (!G.block(G.end()).Succs.empty())
      add(ViolationKind::StartEnd, "end node has successors", G.end());
    return true;
  }

  void checkAdjacency() {
    for (BlockId B = 0; B < G.numBlocks() && !full(); ++B) {
      const BasicBlock &BB = G.block(B);
      for (BlockId S : BB.Succs) {
        if (S >= G.numBlocks()) {
          add(ViolationKind::Adjacency,
              "block " + std::to_string(B) + " has out-of-range successor " +
                  std::to_string(S),
              B);
          continue;
        }
        const auto &P = G.block(S).Preds;
        auto CountS =
            std::count(BB.Succs.begin(), BB.Succs.end(), S);
        if (std::count(P.begin(), P.end(), B) != CountS)
          add(ViolationKind::Adjacency,
              "edge " + std::to_string(B) + "->" + std::to_string(S) +
                  " has asymmetric adjacency lists",
              B);
      }
      for (BlockId P : BB.Preds) {
        if (P >= G.numBlocks()) {
          add(ViolationKind::Adjacency,
              "block " + std::to_string(B) +
                  " has out-of-range predecessor " + std::to_string(P),
              B);
          continue;
        }
        const auto &S = G.block(P).Succs;
        if (std::count(S.begin(), S.end(), B) == 0)
          add(ViolationKind::Adjacency,
              "block " + std::to_string(B) + " lists predecessor " +
                  std::to_string(P) + " that does not list it back",
              B);
      }
      if (B != G.end() && BB.Succs.empty())
        add(ViolationKind::Adjacency,
            "non-end block " + std::to_string(B) + " has no successors", B);
    }
  }

  void checkReachability() {
    std::vector<bool> FromStart(G.numBlocks(), false),
        ToEnd(G.numBlocks(), false);
    std::vector<BlockId> Work{G.start()};
    FromStart[G.start()] = true;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (BlockId S : G.block(B).Succs)
        if (S < G.numBlocks() && !FromStart[S]) {
          FromStart[S] = true;
          Work.push_back(S);
        }
    }
    Work.push_back(G.end());
    ToEnd[G.end()] = true;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (BlockId P : G.block(B).Preds)
        if (P < G.numBlocks() && !ToEnd[P]) {
          ToEnd[P] = true;
          Work.push_back(P);
        }
    }
    for (BlockId B = 0; B < G.numBlocks() && !full(); ++B) {
      if (!FromStart[B])
        add(ViolationKind::Reachability,
            "block " + std::to_string(B) + " unreachable from start", B);
      else if (!ToEnd[B])
        add(ViolationKind::Reachability,
            "block " + std::to_string(B) + " cannot reach end", B);
    }
  }

  void checkBranchPlacement() {
    for (BlockId B = 0; B < G.numBlocks() && !full(); ++B) {
      const auto &Instrs = G.block(B).Instrs;
      for (size_t I = 0; I < Instrs.size(); ++I)
        if (Instrs[I].isBranch() && I + 1 != Instrs.size())
          add(ViolationKind::BranchPlacement,
              "block " + std::to_string(B) +
                  " has a branch condition before its last instruction",
              B, static_cast<uint32_t>(I));
      if (!Instrs.empty() && Instrs.back().isBranch() &&
          G.block(B).Succs.size() < 2)
        add(ViolationKind::BranchPlacement,
            "block " + std::to_string(B) +
                " has a branch condition but fewer than two successors",
            B, static_cast<uint32_t>(Instrs.size() - 1));
    }
  }

  bool varOk(VarId V) const {
    return isValid(V) && index(V) < G.Vars.size();
  }

  void checkTermVars(const Term &T, BlockId B, uint32_t Idx,
                     const char *What) {
    T.forEachVar([&](VarId V) {
      if (!varOk(V))
        add(ViolationKind::VarRef,
            "block " + std::to_string(B) + "[" + std::to_string(Idx) +
                "]: " + What + " references unknown variable id " +
                std::to_string(index(V)),
            B, Idx);
    });
  }

  void checkReferences() {
    for (BlockId B = 0; B < G.numBlocks() && !full(); ++B) {
      const auto &Instrs = G.block(B).Instrs;
      for (size_t I = 0; I < Instrs.size(); ++I) {
        uint32_t Idx = static_cast<uint32_t>(I);
        const Instr &In = Instrs[I];
        switch (In.K) {
        case Instr::Kind::Assign:
          if (!varOk(In.Lhs))
            add(ViolationKind::VarRef,
                "block " + std::to_string(B) + "[" + std::to_string(Idx) +
                    "]: assignment to unknown variable id " +
                    std::to_string(index(In.Lhs)),
                B, Idx);
          checkTermVars(In.Rhs, B, Idx, "right-hand side");
          break;
        case Instr::Kind::Out:
          for (VarId V : In.OutVars)
            if (!varOk(V))
              add(ViolationKind::VarRef,
                  "block " + std::to_string(B) + "[" + std::to_string(Idx) +
                      "]: out() of unknown variable id " +
                      std::to_string(index(V)),
                  B, Idx);
          break;
        case Instr::Kind::Branch:
          checkTermVars(In.CondL, B, Idx, "condition");
          checkTermVars(In.CondR, B, Idx, "condition");
          break;
        case Instr::Kind::Skip:
          break;
        }
      }
    }
    // Temporaries must point at interned expression patterns.
    for (uint32_t V = 0; V < G.Vars.size() && !full(); ++V) {
      VarId Id = makeVarId(V);
      if (!G.Vars.isTemp(Id))
        continue;
      ExprId E = G.Vars.tempFor(Id);
      if (isValid(E) && index(E) >= G.Exprs.size())
        add(ViolationKind::ExprRef,
            "temporary '" + G.Vars.name(Id) +
                "' references unknown expression pattern id " +
                std::to_string(index(E)));
    }
  }

  void checkInstrIds() {
    std::unordered_map<uint32_t, std::pair<BlockId, uint32_t>> Seen;
    for (BlockId B = 0; B < G.numBlocks() && !full(); ++B) {
      const auto &Instrs = G.block(B).Instrs;
      for (size_t I = 0; I < Instrs.size(); ++I) {
        uint32_t Id = Instrs[I].Id;
        if (Id == 0)
          continue;
        auto [It, Inserted] =
            Seen.emplace(Id, std::make_pair(B, static_cast<uint32_t>(I)));
        if (!Inserted)
          add(ViolationKind::DuplicateInstrId,
              "instruction id " + std::to_string(Id) + " appears at block " +
                  std::to_string(It->second.first) + "[" +
                  std::to_string(It->second.second) + "] and block " +
                  std::to_string(B) + "[" + std::to_string(I) + "]",
              B, static_cast<uint32_t>(I));
      }
    }
  }

  void checkCriticalEdges() {
    for (BlockId B = 0; B < G.numBlocks() && !full(); ++B) {
      if (G.block(B).Succs.size() < 2)
        continue;
      for (BlockId S : G.block(B).Succs)
        if (S < G.numBlocks() && G.block(S).Preds.size() > 1)
          add(ViolationKind::CriticalEdge,
              "critical edge " + std::to_string(B) + "->" +
                  std::to_string(S) + " is not split",
              B);
    }
  }

  const FlowGraph &G;
  const VerifierOptions &Opts;
  VerifyResult R;
};

} // namespace

VerifyResult am::verifyGraph(const FlowGraph &G, const VerifierOptions &Opts) {
  return Verifier(G, Opts).run();
}

VerifyResult am::verifyPatternCoherence(const FlowGraph &G,
                                        const AssignPatternTable &Pats) {
  VerifyResult R;
  std::vector<bool> Occurs(Pats.size(), false);
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    const auto &Instrs = G.block(B).Instrs;
    for (size_t I = 0; I < Instrs.size(); ++I) {
      const Instr &In = Instrs[I];
      if (!In.isAssign() || In.Rhs.isVarAtom(In.Lhs))
        continue;
      size_t Pat = Pats.occurrence(In);
      if (Pat == AssignPatternTable::npos) {
        Violation V;
        V.K = ViolationKind::PatternTable;
        V.Message = "assignment occurrence at block " + std::to_string(B) +
                    "[" + std::to_string(I) +
                    "] resolves to no pattern (stale table?)";
        V.Block = B;
        V.InstrIndex = static_cast<uint32_t>(I);
        R.Violations.push_back(std::move(V));
      } else if (Pat < Occurs.size()) {
        Occurs[Pat] = true;
      }
    }
  }
  for (size_t Pat = 0; Pat < Occurs.size(); ++Pat) {
    if (Occurs[Pat])
      continue;
    Violation V;
    V.K = ViolationKind::PatternTable;
    V.Message = "pattern " + std::to_string(Pat) +
                " has no occurrence in the graph (stale table?)";
    R.Violations.push_back(std::move(V));
  }
  return R;
}
