//===- verify/FaultInjector.cpp - Deterministic fault injection -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "verify/FaultInjector.h"

#include <cassert>
#include <cctype>

using namespace am;
using namespace am::fault;

std::atomic<FaultInjector *> FaultInjector::Active{nullptr};

void FaultInjector::install() {
  assert(!Active.load(std::memory_order_relaxed) &&
         "another FaultInjector is already installed");
  Installed = true;
  Active.store(this, std::memory_order_relaxed);
}

void FaultInjector::uninstall() {
  if (!Installed)
    return;
  Installed = false;
  Active.store(nullptr, std::memory_order_relaxed);
}

const char *fault::faultClassName(FaultClass C) {
  switch (C) {
  case FaultClass::RaeFlipBit:
    return "rae-flip";
  case FaultClass::AhtSkipBlockage:
    return "aht-skip-block";
  case FaultClass::AhtMisplaceInsert:
    return "aht-misplace";
  case FaultClass::CorruptEdge:
    return "edge-corrupt";
  case FaultClass::SvcWorkerThrow:
    return "svc-worker-throw";
  case FaultClass::SvcSlowRequest:
    return "svc-slow-request";
  case FaultClass::SvcBadAlloc:
    return "svc-bad-alloc";
  }
  return "?";
}

bool fault::parseFaultClass(const std::string &Name, FaultClass &Out) {
  for (unsigned I = 0; I < NumFaultClasses; ++I) {
    FaultClass C = static_cast<FaultClass>(I);
    if (Name == faultClassName(C)) {
      Out = C;
      return true;
    }
  }
  return false;
}

diag::Expected<std::pair<FaultClass, unsigned>>
fault::parseFaultSpec(const std::string &Spec) {
  std::string Name = Spec;
  unsigned Site = 0;
  size_t Colon = Spec.find(':');
  if (Colon != std::string::npos) {
    Name = Spec.substr(0, Colon);
    std::string SiteStr = Spec.substr(Colon + 1);
    if (SiteStr.empty())
      return diag::Diagnostic::error(
          "inject", "missing site after ':' in '" + Spec + "'");
    for (char C : SiteStr)
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return diag::Diagnostic::error(
            "inject", "site '" + SiteStr + "' is not a number");
    // Sites are small (they index opportunities within one run); clamp
    // absurd values rather than overflowing.
    unsigned long long V = std::stoull(SiteStr.substr(0, 9));
    Site = static_cast<unsigned>(V);
  }
  FaultClass C;
  if (!parseFaultClass(Name, C)) {
    diag::Diagnostic D =
        diag::Diagnostic::error("inject", "unknown fault class '" + Name + "'");
    std::string Known;
    for (unsigned I = 0; I < NumFaultClasses; ++I) {
      if (!Known.empty())
        Known += ", ";
      Known += faultClassName(static_cast<FaultClass>(I));
    }
    D.note("known classes: " + Known);
    return D;
  }
  return std::make_pair(C, Site);
}
