//===- verify/RemarkVerifier.cpp - Replay remark justifications ----------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The verifier re-drives the uniform pipeline stage by stage, snapshotting
// the graph before every transform invocation and checking the remarks
// that invocation emitted against from-scratch analyses of the snapshot.
// Subject remarks (eliminations, removals, deletions, decompositions,
// reconstructions) are located in the *pre*-stage snapshot by their
// recorded (block, index) and must carry the instruction's stable id;
// insertion remarks (hoist inserts, sunk initializations) are located in
// the *post*-stage graph the same way.
//
//===----------------------------------------------------------------------===//

#include "verify/RemarkVerifier.h"

#include "analysis/PaperAnalyses.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "support/Remarks.h"
#include "transform/AssignmentHoisting.h"
#include "transform/AssignmentMotion.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/Normalize.h"
#include "transform/RedundantAssignElim.h"

#include <sstream>

using namespace am;
using namespace am::remarks;

namespace {

class Verifier {
public:
  explicit Verifier(RemarkVerifyReport &Report) : Report(Report) {}

  /// Checks the remarks emitted between \p FirstRemark and the current
  /// sink size against \p Before (pre-stage) and \p After (post-stage).
  void checkStage(const char *Stage, size_t FirstRemark,
                  const FlowGraph &Before, const FlowGraph &After) {
    std::vector<Remark> All = Sink::get().remarks();
    for (size_t Idx = FirstRemark; Idx < All.size(); ++Idx)
      checkRemark(Stage, All[Idx], Before, After);
  }

private:
  RemarkVerifyReport &Report;

  void fail(const char *Stage, const Remark &R, const std::string &Why) {
    std::ostringstream OS;
    OS << Stage << ": " << kindName(R.K) << " #" << R.InstrId << " at b"
       << R.Block << "[" << R.InstrIndex << "]";
    if (!R.Pattern.empty())
      OS << " `" << R.Pattern << "`";
    OS << ": " << Why;
    Report.Failures.push_back(OS.str());
    ++Report.Failed;
  }

  /// The instruction a subject remark points at, or nullptr (with a
  /// recorded failure) when the (block, index, id) triple does not
  /// resolve in \p G.
  const Instr *subject(const char *Stage, const Remark &R, const FlowGraph &G,
                       const char *Which) {
    if (R.Block >= G.numBlocks()) {
      fail(Stage, R, std::string("block out of range in ") + Which);
      return nullptr;
    }
    const auto &Instrs = G.block(R.Block).Instrs;
    if (R.InstrIndex >= Instrs.size()) {
      fail(Stage, R, std::string("instruction index out of range in ") + Which);
      return nullptr;
    }
    const Instr &I = Instrs[R.InstrIndex];
    if (I.Id != R.InstrId) {
      fail(Stage, R,
           "instruction id mismatch (found #" + std::to_string(I.Id) +
               std::string(") in ") + Which);
      return nullptr;
    }
    return &I;
  }

  /// Pattern-table index of the remark's pattern text in a fresh table
  /// over \p G, or npos.  Remarks carry the printed pattern, which is the
  /// stable identity across snapshots (bit indices are not).
  static size_t patternByText(const FlowGraph &G,
                              const AssignPatternTable &Pats,
                              const std::string &Text) {
    for (size_t Idx = 0; Idx < Pats.size(); ++Idx) {
      const AssignPat &P = Pats.pattern(Idx);
      if (G.Vars.name(P.Lhs) + " := " + printTerm(P.Rhs, G.Vars) == Text)
        return Idx;
    }
    return AssignPatternTable::npos;
  }

  void checkRemark(const char *Stage, const Remark &R, const FlowGraph &Before,
                   const FlowGraph &After) {
    ++Report.Checked;
    switch (R.K) {
    case Kind::Decompose:
      checkDecompose(Stage, R, Before);
      return;
    case Kind::Eliminate:
      checkEliminate(Stage, R, Before);
      return;
    case Kind::Hoist:
      if (R.Act == Action::Remove)
        checkHoistRemove(Stage, R, Before);
      else
        checkHoistInsert(Stage, R, Before, After);
      return;
    case Kind::Blocked:
      checkBlocked(Stage, R, Before);
      return;
    case Kind::DeleteInit:
      checkDeleteInit(Stage, R, Before);
      return;
    case Kind::SinkInit:
      checkSinkInit(Stage, R, Before, After);
      return;
    case Kind::Reconstruct:
      checkReconstruct(Stage, R, Before);
      return;
    case Kind::Rollback:
      // Administrative: records that a guarded pipeline discarded a pass's
      // result.  No position or facts to cross-check against the graphs.
      return;
    }
  }

  void checkDecompose(const char *Stage, const Remark &R,
                      const FlowGraph &Before) {
    const Instr *I = subject(Stage, R, Before, "pre-stage graph");
    if (!I)
      return;
    if (R.Terminal) {
      if (!I->isAssign() || !I->Rhs.isNonTrivial())
        fail(Stage, R, "decomposed assignment has no non-trivial rhs");
      return;
    }
    if (!I->isBranch() || (!I->CondL.isNonTrivial() && !I->CondR.isNonTrivial()))
      fail(Stage, R, "decomposed branch has no non-trivial operand");
  }

  void checkEliminate(const char *Stage, const Remark &R,
                      const FlowGraph &Before) {
    const Instr *I = subject(Stage, R, Before, "pre-stage graph");
    if (!I)
      return;
    AssignPatternTable Pats;
    Pats.build(Before);
    size_t Pat = Pats.occurrence(*I);
    if (Pat == AssignPatternTable::npos) {
      fail(Stage, R, "eliminated instruction is not a pattern occurrence");
      return;
    }
    RedundancyAnalysis Fresh = RedundancyAnalysis::run(Before, Pats);
    DataflowResult::InstrFacts Facts = Fresh.facts(R.Block);
    if (!Facts.Before[R.InstrIndex].test(Pat))
      fail(Stage, R, "N-REDUNDANT not set in a fresh redundancy analysis");
  }

  void checkHoistRemove(const char *Stage, const Remark &R,
                        const FlowGraph &Before) {
    const Instr *I = subject(Stage, R, Before, "pre-stage graph");
    if (!I)
      return;
    AssignPatternTable Pats;
    Pats.build(Before);
    size_t Pat = Pats.occurrence(*I);
    if (Pat == AssignPatternTable::npos) {
      fail(Stage, R, "removed instruction is not a pattern occurrence");
      return;
    }
    HoistabilityAnalysis Fresh = HoistabilityAnalysis::run(Before, Pats);
    if (!Fresh.locHoistable(R.Block).test(Pat)) {
      fail(Stage, R, "LOC-HOISTABLE not set in a fresh hoistability analysis");
      return;
    }
    // A hoisting candidate must be the first unblocked occurrence: no
    // earlier instruction of the block may block the pattern.
    BitVector Blocked = Pats.makeVector();
    const auto &Instrs = Before.block(R.Block).Instrs;
    for (size_t Idx = 0; Idx < R.InstrIndex; ++Idx) {
      Pats.blockedBy(Instrs[Idx], Blocked);
      if (Blocked.test(Pat)) {
        fail(Stage, R, "a preceding instruction blocks the removed pattern");
        return;
      }
    }
  }

  void checkHoistInsert(const char *Stage, const Remark &R,
                        const FlowGraph &Before, const FlowGraph &After) {
    if (!subject(Stage, R, After, "post-stage graph"))
      return;
    AssignPatternTable Pats;
    Pats.build(Before);
    size_t Pat = patternByText(Before, Pats, R.Pattern);
    if (Pat == AssignPatternTable::npos) {
      fail(Stage, R, "inserted pattern does not occur in the pre-stage graph");
      return;
    }
    HoistabilityAnalysis Fresh = HoistabilityAnalysis::run(Before, Pats);
    switch (R.Place) {
    case Placement::Entry:
      if (!Fresh.entryInsert(R.Block).test(Pat))
        fail(Stage, R, "N-INSERT not set in a fresh hoistability analysis");
      return;
    case Placement::Exit:
      if (!Fresh.exitInsert(R.Block).test(Pat))
        fail(Stage, R, "X-INSERT not set in a fresh hoistability analysis");
      return;
    case Placement::BeforeBranch: {
      if (!Fresh.exitInsert(R.Block).test(Pat)) {
        fail(Stage, R, "X-INSERT not set in a fresh hoistability analysis");
        return;
      }
      const Instr *Br = Before.block(R.Block).branchInstr();
      if (Br) {
        BitVector BranchBlocks = Pats.makeVector();
        Pats.blockedBy(*Br, BranchBlocks);
        if (BranchBlocks.test(Pat))
          fail(Stage, R, "branch blocks the pattern; insertion should have "
                         "moved to the successors");
      }
      return;
    }
    case Placement::FromPred: {
      // Realized at this block's entry on behalf of a branching
      // predecessor whose condition blocks the pattern.
      BlockId Pred = R.FromBlock;
      if (Pred >= Before.numBlocks()) {
        fail(Stage, R, "from_block out of range");
        return;
      }
      if (!Fresh.exitInsert(Pred).test(Pat)) {
        fail(Stage, R, "X-INSERT not set at the branching predecessor");
        return;
      }
      const Instr *Br = Before.block(Pred).branchInstr();
      if (!Br) {
        fail(Stage, R, "from_block has no branch instruction");
        return;
      }
      BitVector BranchBlocks = Pats.makeVector();
      Pats.blockedBy(*Br, BranchBlocks);
      if (!BranchBlocks.test(Pat))
        fail(Stage, R, "predecessor branch does not block the pattern");
      return;
    }
    case Placement::None:
      fail(Stage, R, "hoist insertion without a placement");
      return;
    }
  }

  void checkBlocked(const char *Stage, const Remark &R,
                    const FlowGraph &Before) {
    const Instr *I = subject(Stage, R, Before, "pre-stage graph");
    if (!I)
      return;
    AssignPatternTable Pats;
    Pats.build(Before);
    size_t Pat = Pats.occurrence(*I);
    if (Pat == AssignPatternTable::npos) {
      fail(Stage, R, "blocked instruction is not a pattern occurrence");
      return;
    }
    BitVector Blocked = Pats.makeVector();
    const auto &Instrs = Before.block(R.Block).Instrs;
    for (size_t Idx = 0; Idx < R.InstrIndex; ++Idx) {
      Pats.blockedBy(Instrs[Idx], Blocked);
      if (Blocked.test(Pat))
        return; // justified: an earlier instruction blocks the pattern
    }
    fail(Stage, R, "no preceding instruction blocks the pattern");
  }

  void checkDeleteInit(const char *Stage, const Remark &R,
                       const FlowGraph &Before) {
    const Instr *I = subject(Stage, R, Before, "pre-stage graph");
    if (!I)
      return;
    FlushUniverse U;
    U.build(Before);
    BitVector IsInst = U.makeVector();
    U.isInst(*I, IsInst);
    if (IsInst.none())
      fail(Stage, R, "IS-INST does not hold: not an initialization instance");
  }

  /// Resolves the temp named by the remark's Var in the fresh universe.
  size_t tempOf(const char *Stage, const Remark &R, const FlowGraph &G,
                const FlushUniverse &U) {
    VarId V = G.Vars.lookup(R.Var);
    if (V == VarId::Invalid) {
      fail(Stage, R, "unknown temporary `" + R.Var + "`");
      return FlushUniverse::npos;
    }
    size_t Idx = U.indexOfTemp(V);
    if (Idx == FlushUniverse::npos)
      fail(Stage, R, "`" + R.Var + "` is not in the flush universe");
    return Idx;
  }

  void checkSinkInit(const char *Stage, const Remark &R,
                     const FlowGraph &Before, const FlowGraph &After) {
    if (!subject(Stage, R, After, "post-stage graph"))
      return;
    FlushAnalysis Fresh = FlushAnalysis::run(Before);
    size_t TempIdx = tempOf(Stage, R, Before, Fresh.universe());
    if (TempIdx == FlushUniverse::npos)
      return;
    const std::string &Via = R.factValue("via");
    // The remark's (block, index) locate the initialization in the
    // rebuilt block, so the justification is checked at the temp level:
    // the cited placement predicate must fire for this temp somewhere in
    // the recorded block of the pre-stage plan.
    BlockId B = R.Block;
    if (B >= Before.numBlocks()) {
      // The fallback FromPred path writes into a successor; the plan to
      // consult is the predecessor's.
      fail(Stage, R, "block out of range in pre-stage graph");
      return;
    }
    FlushAnalysis::BlockPlan Plan = Fresh.plan(B);
    if (Via == "N-INIT" || Via == "RECONSTRUCT-multi-use") {
      for (const BitVector &Bits :
           Via == "N-INIT" ? Plan.InitBefore : Plan.Reconstruct)
        if (Bits.test(TempIdx))
          return;
      fail(Stage, R,
           Via + " does not fire for this temp in a fresh flush analysis");
      return;
    }
    if (Via == "X-INIT") {
      if (R.Place == Placement::FromPred) {
        if (R.FromBlock >= Before.numBlocks() ||
            !Fresh.plan(R.FromBlock).InitAtExit.test(TempIdx))
          fail(Stage, R, "X-INIT not set at the branching predecessor");
        return;
      }
      if (!Plan.InitAtExit.test(TempIdx))
        fail(Stage, R, "X-INIT not set in a fresh flush analysis");
      return;
    }
    fail(Stage, R, "unknown via fact `" + Via + "`");
  }

  void checkReconstruct(const char *Stage, const Remark &R,
                        const FlowGraph &Before) {
    const Instr *I = subject(Stage, R, Before, "pre-stage graph");
    if (!I)
      return;
    FlushAnalysis Fresh = FlushAnalysis::run(Before);
    size_t TempIdx = tempOf(Stage, R, Before, Fresh.universe());
    if (TempIdx == FlushUniverse::npos)
      return;
    FlushAnalysis::BlockPlan Plan = Fresh.plan(R.Block);
    if (!Plan.Reconstruct[R.InstrIndex].test(TempIdx))
      fail(Stage, R, "RECONSTRUCT not set in a fresh flush analysis");
  }
};

} // namespace

RemarkVerifyReport am::verifyUniformRemarks(const FlowGraph &Input) {
  RemarkVerifyReport Report;
  CollectionScope Collect(true);
  Sink::get().clear();

  FlowGraph Work = Input;
  ensureInstrIds(Work);

  // Mirror runUniformEmAm with default options, pausing between stages.
  removeSkips(Work);
  Work.splitCriticalEdges();
  if (Work.hasCriticalEdges()) {
    Report.Output = simplified(Work);
    return Report;
  }

  Verifier V(Report);
  auto RunStage = [&](const char *Stage, auto &&Fn) {
    FlowGraph Before = Work;
    size_t Watermark = Sink::get().size();
    Fn();
    V.checkStage(Stage, Watermark, Before, Work);
  };

  RunStage("init", [&] { runInitializationPhase(Work); });

  // The AM fixpoint, stage-checked per pass per round.  The loop mirrors
  // runAssignmentMotionPhase: rae then aht, shared incremental context,
  // until neither changes.  The defensive cap mirrors the driver's.
  AmContext Ctx;
  uint64_t Instrs = Work.numInstrs();
  uint64_t Cap = Instrs * Instrs + Work.numBlocks() + 16;
  for (uint64_t Round = 1; Round <= Cap; ++Round) {
    Sink::get().setRound(static_cast<uint32_t>(Round));
    unsigned Eliminated = 0;
    RunStage("rae",
             [&] { Eliminated = runRedundantAssignmentElimination(Work, Ctx); });
    bool Hoisted = false;
    RunStage("aht", [&] { Hoisted = runAssignmentHoisting(Work, Ctx); });
    if (Eliminated == 0 && !Hoisted)
      break;
  }
  Sink::get().setRound(0);

  RunStage("flush", [&] { runFinalFlush(Work); });

  Report.Output = simplified(Work);
  return Report;
}
