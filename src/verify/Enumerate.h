//===- verify/Enumerate.h - Bounded universe enumeration -------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive (bounded) enumeration of the EM/AM universe for small
/// programs — the strongest check of Theorem 5.2 this side of a proof
/// assistant.  Starting from the program and its initialized form
/// (Lemma 4.1: after initialization AM subsumes EM), breadth-first search
/// applies every applicable atomic step:
///
///   * eliminate one redundant assignment occurrence,
///   * hoist one assignment pattern (the pattern-filtered aht step),
///   * run the final flush,
///
/// deduplicating states by their printed form.  The tests then verify
/// that *no* enumerated member evaluates fewer expressions than the
/// uniform algorithm's result on any execution.
///
//===----------------------------------------------------------------------===//

#ifndef AM_VERIFY_ENUMERATE_H
#define AM_VERIFY_ENUMERATE_H

#include "ir/FlowGraph.h"

#include <vector>

namespace am {

/// Bounds for the breadth-first enumeration.
struct EnumerationOptions {
  /// Stop after visiting this many distinct programs.
  unsigned MaxStates = 1000;
  /// Maximum number of atomic steps from a seed.
  unsigned MaxDepth = 10;
};

/// Enumeration outcome.
struct EnumerationResult {
  /// Every distinct program reached (including the seeds).
  std::vector<FlowGraph> Members;
  /// True if MaxStates cut the search short (the set is then a subset of
  /// the bounded universe rather than all of it).
  bool Truncated = false;
};

/// Enumerates the bounded EM/AM universe of \p G.
EnumerationResult enumerateUniverse(const FlowGraph &G,
                                    const EnumerationOptions &Opts = {});

} // namespace am

#endif // AM_VERIFY_ENUMERATE_H
