//===- verify/RemarkVerifier.h - Replay remark justifications -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns the remark stream into a correctness oracle: re-runs the uniform
/// EM/AM pipeline on a program with remark collection enabled, and checks
/// every emitted remark's cited dataflow facts against *fresh, from-
/// scratch* analyses of the program state the decision was made on.  A
/// deletion whose N-REDUNDANT bit is not actually set, a hoist insertion
/// outside the insertion frontier, a sunk initialization without its
/// latestness bit — each is reported as a verification failure.  Because
/// the replay analyses share no solver state with the optimizer (no
/// incremental caches, no pattern-table reuse), this doubles as a
/// differential test of the incremental machinery.
///
//===----------------------------------------------------------------------===//

#ifndef AM_VERIFY_REMARKVERIFIER_H
#define AM_VERIFY_REMARKVERIFIER_H

#include "ir/FlowGraph.h"

#include <string>
#include <vector>

namespace am {

/// Outcome of one remark-verification run.
struct RemarkVerifyReport {
  /// Remarks examined / remarks whose justification did not replay.
  unsigned Checked = 0;
  unsigned Failed = 0;
  /// One human-readable line per failure.
  std::vector<std::string> Failures;
  /// The optimized program the instrumented run produced (identical to
  /// runUniformEmAm's result).
  FlowGraph Output;

  bool ok() const { return Failed == 0; }
};

/// Runs the uniform pipeline on \p Input with remark collection enabled
/// and replays every remark's cited facts against fresh analyses.  The
/// remark sink is cleared and left populated with the run's remarks (so
/// callers may render them afterwards); collection is restored to its
/// previous enablement on return.
RemarkVerifyReport verifyUniformRemarks(const FlowGraph &Input);

} // namespace am

#endif // AM_VERIFY_REMARKVERIFIER_H
