//===- verify/Enumerate.cpp - Bounded universe enumeration -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "verify/Enumerate.h"
#include "analysis/PaperAnalyses.h"
#include "ir/Patterns.h"
#include "ir/Printer.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "transform/AssignmentHoisting.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/Normalize.h"

#include <deque>
#include <unordered_set>

using namespace am;

namespace {

/// All single-occurrence elimination successors of \p G.
void eliminationSuccessors(const FlowGraph &G,
                           std::vector<FlowGraph> &Out) {
  AssignPatternTable Pats;
  Pats.build(G);
  if (Pats.size() == 0)
    return;
  RedundancyAnalysis Redundancy = RedundancyAnalysis::run(G, Pats);
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    if (G.block(B).Instrs.empty())
      continue;
    DataflowResult::InstrFacts Facts = Redundancy.facts(B);
    for (size_t Idx = 0; Idx < G.block(B).Instrs.size(); ++Idx) {
      size_t Pat = Pats.occurrence(G.block(B).Instrs[Idx]);
      if (Pat == AssignPatternTable::npos || !Facts.Before[Idx].test(Pat))
        continue;
      FlowGraph Next = G;
      auto &Instrs = Next.block(B).Instrs;
      Instrs.erase(Instrs.begin() + static_cast<long>(Idx));
      Next.touchBlock(B);
      Out.push_back(std::move(Next));
    }
  }
}

/// All single-pattern hoisting successors of \p G.
void hoistingSuccessors(const FlowGraph &G, std::vector<FlowGraph> &Out) {
  AssignPatternTable Pats;
  Pats.build(G);
  for (size_t PatIdx = 0; PatIdx < Pats.size(); ++PatIdx) {
    const AssignPat Pat = Pats.pattern(PatIdx);
    FlowGraph Next = G;
    bool Changed = runAssignmentHoisting(
        Next, [&](const AssignPatternTable &NextPats) {
          BitVector Allowed(NextPats.size());
          size_t Idx = NextPats.indexOf(Pat.Lhs, Pat.Rhs);
          if (Idx != AssignPatternTable::npos)
            Allowed.set(Idx);
          return Allowed;
        });
    if (Changed)
      Out.push_back(std::move(Next));
  }
}

} // namespace

EnumerationResult am::enumerateUniverse(const FlowGraph &G,
                                        const EnumerationOptions &Opts) {
  AM_STAT_COUNTER(NumEnumerations, "enumerate.runs");
  AM_STAT_COUNTER(NumCandidates, "enumerate.candidates");
  AM_STAT_COUNTER(NumDistinctStates, "enumerate.states");
  AM_STAT_INC(NumEnumerations);
  trace::TraceSpan Span("enumerate.universe");

  EnumerationResult Result;
  std::unordered_set<std::string> Seen;
  std::deque<std::pair<FlowGraph, unsigned>> Work;
  uint64_t Candidates = 0;

  auto Push = [&](FlowGraph Member, unsigned Depth) {
    ++Candidates;
    AM_STAT_INC(NumCandidates);
    if (Result.Members.size() >= Opts.MaxStates) {
      Result.Truncated = true;
      return;
    }
    std::string Key = printGraph(Member);
    if (!Seen.insert(Key).second)
      return;
    AM_STAT_INC(NumDistinctStates);
    Result.Members.push_back(Member);
    if (Depth < Opts.MaxDepth)
      Work.emplace_back(std::move(Member), Depth);
  };

  // Seeds: the split program and its initialized form (Lemma 4.1).
  FlowGraph Base = G;
  removeSkips(Base);
  Base.splitCriticalEdges();
  Push(Base, 0);
  FlowGraph Init = Base;
  runInitializationPhase(Init);
  Push(Init, 0);

  std::vector<FlowGraph> Successors;
  while (!Work.empty()) {
    auto [Cur, Depth] = std::move(Work.front());
    Work.pop_front();
    if (Result.Members.size() >= Opts.MaxStates) {
      Result.Truncated = true;
      break;
    }
    Successors.clear();
    eliminationSuccessors(Cur, Successors);
    hoistingSuccessors(Cur, Successors);
    FlowGraph Flushed = Cur;
    if (runFinalFlush(Flushed))
      Successors.push_back(std::move(Flushed));
    for (FlowGraph &Next : Successors)
      Push(std::move(Next), Depth + 1);
  }
  Span.arg("candidates", Candidates);
  Span.arg("states", Result.Members.size());
  Span.arg("truncated", Result.Truncated ? 1 : 0);
  return Result;
}
