//===- verify/GraphVerifier.h - IR invariant checker -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structural and semantic invariant checker for FlowGraphs, returning
/// *structured violations* instead of aborting.  The guarded pipeline runs
/// it after every pass to notice when a transform corrupted the IR; tests
/// use it to pin down exactly which invariant a deliberately injected
/// fault breaks.
///
/// Checked invariants:
///  * unique start node without predecessors, unique end node without
///    successors;
///  * edge-list symmetry: Succs/Preds adjacency lists agree (with
///    multiplicity) and never reference out-of-range blocks;
///  * every block lies on a start-to-end path (Section 2 assumption);
///  * branch conditions only as the last instruction of a block with at
///    least two successors;
///  * every VarId referenced by any instruction (Lhs, term operands, out
///    arguments, condition operands) resolves in the graph's VarTable,
///    and every temporary's associated ExprId resolves in its ExprTable;
///  * nonzero provenance ids (Instr::Id) are unique across the graph;
///  * optionally: no critical edges (for passes that require split input);
///  * optionally: a pattern table is coherent with the graph (see
///    verifyPatternCoherence) — the check an AM round needs when it trusts
///    a table built at an earlier graph tick.
///
//===----------------------------------------------------------------------===//

#ifndef AM_VERIFY_GRAPHVERIFIER_H
#define AM_VERIFY_GRAPHVERIFIER_H

#include "ir/FlowGraph.h"

#include <string>
#include <vector>

namespace am {

class AssignPatternTable;

/// Which invariant a violation breaks.
enum class ViolationKind : uint8_t {
  StartEnd,        ///< start/end missing, dangling, or with wrong degree
  Adjacency,       ///< Succs/Preds asymmetry or out-of-range edge
  Reachability,    ///< block off every start-to-end path
  BranchPlacement, ///< branch condition not last / too few successors
  VarRef,          ///< instruction references an unknown VarId
  ExprRef,         ///< temporary references an unknown ExprId
  DuplicateInstrId, ///< nonzero Instr::Id appears twice
  CriticalEdge,    ///< unsplit critical edge where a pass requires none
  PatternTable,    ///< pattern table incoherent with the graph
};

const char *violationKindName(ViolationKind K);

/// One broken invariant, located as precisely as the check allows.
struct Violation {
  ViolationKind K = ViolationKind::StartEnd;
  std::string Message;
  BlockId Block = InvalidBlock;       ///< InvalidBlock if not block-local.
  uint32_t InstrIndex = 0xFFFFFFFFu;  ///< ~0 if not instruction-local.
};

struct VerifierOptions {
  /// Also flag unsplit critical edges (passes like aht/init/flush assume
  /// split input).
  bool RequireSplitEdges = false;
  /// Cap on collected violations; further ones are dropped (a corrupted
  /// graph can violate thousands of instances of one invariant).
  size_t MaxViolations = 64;
};

/// Result of one verification run.
struct VerifyResult {
  std::vector<Violation> Violations;

  bool ok() const { return Violations.empty(); }

  /// First \p MaxItems violations as "kind: message" lines.
  std::string renderText(size_t MaxItems = 8) const;
};

/// Checks every invariant listed above over \p G.  Never mutates, never
/// asserts; a graph too broken to traverse reports what it can.
VerifyResult verifyGraph(const FlowGraph &G,
                         const VerifierOptions &Opts = VerifierOptions());

/// Checks that \p Pats is coherent with \p G: every assignment occurrence
/// in the graph resolves to a pattern, and every pattern has at least one
/// occurrence.  An AM round that reuses a table built at an earlier graph
/// tick relies on exactly this.
VerifyResult verifyPatternCoherence(const FlowGraph &G,
                                    const AssignPatternTable &Pats);

} // namespace am

#endif // AM_VERIFY_GRAPHVERIFIER_H
