//===- verify/AdversarialSearch.h - Optimality fuzzing ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An adversarial probe of Theorem 5.2 (expression optimality).  The
/// theorem quantifies over the whole universe G of programs reachable by
/// interleaving admissible EM and AM transformations — too large to
/// enumerate, but easy to *sample*: starting from the initialized program
/// (after which AM subsumes EM, Lemma 4.1), we apply random sequences of
/// admissible steps
///
///   * partial redundant-assignment eliminations (any subset of redundant
///     occurrences — each is dynamically a no-op, so every subset is
///     admissible),
///   * assignment hoistings restricted to random pattern subsets,
///   * the final flush (itself a sequence of admissible sinkings),
///
/// yielding random members of the universe.  A derivation that evaluated
/// fewer expressions than the uniform algorithm's result on any execution
/// would falsify the implementation; the property tests assert none does.
///
//===----------------------------------------------------------------------===//

#ifndef AM_VERIFY_ADVERSARIALSEARCH_H
#define AM_VERIFY_ADVERSARIALSEARCH_H

#include "ir/FlowGraph.h"
#include "support/Rng.h"

namespace am {

/// Configuration for one random derivation.
struct DerivationOptions {
  /// Number of random steps to apply.
  unsigned Steps = 8;
  /// Probability that a step is a (partial) elimination rather than a
  /// hoisting.
  double EliminationProb = 0.4;
  /// Probability of finishing with the final flush.
  double FlushProb = 0.5;
};

/// Eliminates a random subset of the currently redundant assignment
/// occurrences.  Returns the number eliminated.
unsigned eliminateRandomRedundant(FlowGraph &G, Rng &R,
                                  double KeepProb = 0.5);

/// Produces a random member of the EM/AM universe of \p G: splits
/// critical edges, runs the initialization phase, then applies random
/// admissible motion steps.  Every result is semantically equivalent to
/// \p G (the property tests double-check with the interpreter).
FlowGraph randomUniverseMember(const FlowGraph &G, uint64_t Seed,
                               const DerivationOptions &Opts = {});

} // namespace am

#endif // AM_VERIFY_ADVERSARIALSEARCH_H
