//===- verify/AdversarialSearch.cpp - Optimality fuzzing --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "verify/AdversarialSearch.h"
#include "analysis/PaperAnalyses.h"
#include "ir/Patterns.h"
#include "transform/AssignmentHoisting.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/Normalize.h"

using namespace am;

unsigned am::eliminateRandomRedundant(FlowGraph &G, Rng &R, double KeepProb) {
  AssignPatternTable Pats;
  Pats.build(G);
  if (Pats.size() == 0)
    return 0;
  RedundancyAnalysis Redundancy = RedundancyAnalysis::run(G, Pats);

  unsigned NumEliminated = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    auto &Instrs = G.block(B).Instrs;
    if (Instrs.empty())
      continue;
    DataflowResult::InstrFacts Facts = Redundancy.facts(B);
    std::vector<Instr> Kept;
    Kept.reserve(Instrs.size());
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      size_t Pat = Pats.occurrence(Instrs[Idx]);
      bool Redundant =
          Pat != AssignPatternTable::npos && Facts.Before[Idx].test(Pat);
      if (Redundant && R.chance(KeepProb)) {
        ++NumEliminated;
        continue;
      }
      Kept.push_back(std::move(Instrs[Idx]));
    }
    Instrs = std::move(Kept);
  }
  return NumEliminated;
}

FlowGraph am::randomUniverseMember(const FlowGraph &G, uint64_t Seed,
                                   const DerivationOptions &Opts) {
  Rng R(Seed);
  FlowGraph Work = G;
  removeSkips(Work);
  Work.splitCriticalEdges();
  runInitializationPhase(Work);

  for (unsigned Step = 0; Step < Opts.Steps; ++Step) {
    if (R.chance(Opts.EliminationProb)) {
      eliminateRandomRedundant(Work, R);
      continue;
    }
    // Hoist a random subset of the patterns.
    runAssignmentHoisting(Work, [&](const AssignPatternTable &Pats) {
      BitVector Allowed(Pats.size());
      for (size_t Idx = 0; Idx < Pats.size(); ++Idx)
        if (R.chance(0.5))
          Allowed.set(Idx);
      return Allowed;
    });
  }
  if (R.chance(Opts.FlushProb))
    runFinalFlush(Work);
  return Work;
}
