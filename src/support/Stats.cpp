//===- support/Stats.cpp - Process-wide statistics registry --------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Stats.h"
#include "support/Json.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

using namespace am;
using namespace am::stats;

size_t stats::log2BucketIndex(uint64_t V, size_t NumBuckets) {
  size_t Bucket = 0;
  while (V > 1 && Bucket + 1 < NumBuckets) {
    V >>= 1;
    ++Bucket;
  }
  return Bucket;
}

uint64_t stats::log2BucketPercentile(const uint64_t *Buckets,
                                     size_t NumBuckets, uint64_t Count,
                                     double Q, uint64_t MaxFallback) {
  if (Count == 0)
    return 0;
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  // Nearest-rank: the ceil(Q*N)-th smallest sample, clamped to [1, N].
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (static_cast<double>(Rank) < Q * static_cast<double>(Count))
    ++Rank;
  if (Rank < 1)
    Rank = 1;
  if (Rank > Count)
    Rank = Count;
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    Seen += Buckets[B];
    if (Seen >= Rank) {
      // Bucket B covers [2^B, 2^{B+1}) (0 and 1 both land in bucket 0);
      // report its midpoint.
      uint64_t Lo = static_cast<uint64_t>(1) << B;
      return Lo + Lo / 2;
    }
  }
  return MaxFallback;
}

std::string stats::percentileLabel(double Q) {
  if (Q < 0.0)
    Q = 0.0;
  if (Q > 1.0)
    Q = 1.0;
  // Render Q*100 with enough precision for labels like p99.9, trimming
  // trailing zeros ("50.000000" -> "50").
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", Q * 100.0);
  std::string S(Buf);
  while (!S.empty() && S.back() == '0')
    S.pop_back();
  if (!S.empty() && S.back() == '.')
    S.pop_back();
  return "p" + S;
}

void Timer::record(uint64_t Ns) {
  Count.fetch_add(1, std::memory_order_relaxed);
  TotalNs.fetch_add(Ns, std::memory_order_relaxed);
  // min/max via CAS loops; contention here is negligible (timers wrap
  // coarse regions, not per-bit work).
  uint64_t Cur = MinNs.load(std::memory_order_relaxed);
  while (Ns < Cur &&
         !MinNs.compare_exchange_weak(Cur, Ns, std::memory_order_relaxed))
    ;
  Cur = MaxNs.load(std::memory_order_relaxed);
  while (Ns > Cur &&
         !MaxNs.compare_exchange_weak(Cur, Ns, std::memory_order_relaxed))
    ;
  Buckets[log2BucketIndex(Ns, NumBuckets)].fetch_add(
      1, std::memory_order_relaxed);
}

uint64_t Timer::percentileNs(double Q) const {
  uint64_t Snapshot[NumBuckets];
  for (size_t B = 0; B < NumBuckets; ++B)
    Snapshot[B] = Buckets[B].load(std::memory_order_relaxed);
  return log2BucketPercentile(Snapshot, NumBuckets,
                              Count.load(std::memory_order_relaxed), Q,
                              maxNs());
}

void Timer::reset() {
  Count.store(0, std::memory_order_relaxed);
  TotalNs.store(0, std::memory_order_relaxed);
  MinNs.store(UINT64_MAX, std::memory_order_relaxed);
  MaxNs.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Instruments live in deques so that creating a new one never moves an
/// existing one — the macros cache references for the registry lifetime.
struct Registry::Impl {
  mutable std::mutex Mu;
  std::deque<Counter> Counters;
  std::deque<Gauge> Gauges;
  std::deque<Timer> Timers;
  std::map<std::string, Counter *> CounterByName;
  std::map<std::string, Gauge *> GaugeByName;
  std::map<std::string, Timer *> TimerByName;
  std::vector<double> DumpPercentiles{0.5, 0.95, 0.99};
};

namespace {
// Generation 0 is reserved as "never resolved" in the macro caches.
std::atomic<uint64_t> NextGeneration{1};
} // namespace

Registry::Registry()
    : I(std::make_unique<Impl>()),
      Generation(NextGeneration.fetch_add(1, std::memory_order_relaxed)) {}

Registry::~Registry() = default;

Registry &Registry::get() {
  // The process-default session's registry is leaked (see
  // telemetry::Session::processDefault), so default-session instrument
  // references outlive every static destructor that might still fire an
  // increment — the pre-session contract.
  return telemetry::Session::current().stats();
}

Counter &Registry::counter(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  auto It = I.CounterByName.find(Name);
  if (It != I.CounterByName.end())
    return *It->second;
  I.Counters.emplace_back(Name);
  Counter &C = I.Counters.back();
  I.CounterByName.emplace(Name, &C);
  return C;
}

Gauge &Registry::gauge(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  auto It = I.GaugeByName.find(Name);
  if (It != I.GaugeByName.end())
    return *It->second;
  I.Gauges.emplace_back(Name);
  Gauge &G = I.Gauges.back();
  I.GaugeByName.emplace(Name, &G);
  return G;
}

Timer &Registry::timer(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  auto It = I.TimerByName.find(Name);
  if (It != I.TimerByName.end())
    return *It->second;
  I.Timers.emplace_back(Name);
  Timer &T = I.Timers.back();
  I.TimerByName.emplace(Name, &T);
  return T;
}

const Counter *Registry::findCounter(const std::string &Name) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  auto It = I.CounterByName.find(Name);
  return It == I.CounterByName.end() ? nullptr : It->second;
}

const Gauge *Registry::findGauge(const std::string &Name) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  auto It = I.GaugeByName.find(Name);
  return It == I.GaugeByName.end() ? nullptr : It->second;
}

const Timer *Registry::findTimer(const std::string &Name) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  auto It = I.TimerByName.find(Name);
  return It == I.TimerByName.end() ? nullptr : It->second;
}

uint64_t Registry::counterValue(const std::string &Name) const {
  const Counter *C = findCounter(Name);
  return C ? C->get() : 0;
}

void Registry::resetAll() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  for (Counter &C : I.Counters)
    C.reset();
  for (Gauge &G : I.Gauges)
    G.reset();
  for (Timer &T : I.Timers)
    T.reset();
}

void Registry::setDumpPercentiles(std::vector<double> Qs) {
  for (double &Q : Qs) {
    if (Q < 0.0)
      Q = 0.0;
    if (Q > 1.0)
      Q = 1.0;
  }
  // Drop label duplicates (keep first) so a dump never emits the same
  // JSON key twice.
  std::vector<double> Unique;
  std::vector<std::string> Labels;
  for (double Q : Qs) {
    std::string L = percentileLabel(Q);
    if (std::find(Labels.begin(), Labels.end(), L) == Labels.end()) {
      Labels.push_back(L);
      Unique.push_back(Q);
    }
  }
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.DumpPercentiles = std::move(Unique);
}

std::vector<double> Registry::dumpPercentiles() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.DumpPercentiles;
}

std::vector<std::pair<std::string, uint64_t>> Registry::counterEntries() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::vector<std::pair<std::string, uint64_t>> Out;
  Out.reserve(I.CounterByName.size());
  for (const auto &[Name, C] : I.CounterByName)
    Out.emplace_back(Name, C->get());
  return Out;
}

std::vector<std::pair<std::string, int64_t>> Registry::gaugeEntries() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::vector<std::pair<std::string, int64_t>> Out;
  Out.reserve(I.GaugeByName.size());
  for (const auto &[Name, G] : I.GaugeByName)
    Out.emplace_back(Name, G->get());
  return Out;
}

void Registry::dumpText(std::ostream &OS) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  // The by-name maps are already sorted; interleave all three kinds into
  // one alphabetical listing.
  std::vector<std::pair<std::string, std::string>> Lines;
  for (const auto &[Name, C] : I.CounterByName)
    Lines.emplace_back(Name, std::to_string(C->get()));
  for (const auto &[Name, G] : I.GaugeByName)
    Lines.emplace_back(Name, std::to_string(G->get()));
  for (const auto &[Name, T] : I.TimerByName) {
    std::ostringstream V;
    uint64_t N = T->count();
    V << N << " samples, total " << T->totalNs() << " ns";
    if (N) {
      V << ", mean " << (T->totalNs() / N) << " ns, min " << T->minNs()
        << " ns, max " << T->maxNs() << " ns";
      for (double Q : I.DumpPercentiles)
        V << ", " << percentileLabel(Q) << " ~" << T->percentileNs(Q) << " ns";
    }
    Lines.emplace_back(Name, V.str());
  }
  std::sort(Lines.begin(), Lines.end());
  size_t Width = 0;
  for (const auto &[Name, Value] : Lines)
    Width = std::max(Width, Name.size());
  for (const auto &[Name, Value] : Lines)
    OS << Name << std::string(Width - Name.size() + 2, ' ') << Value << "\n";
}

void Registry::dumpJson(std::ostream &OS) const {
  OS << dumpJsonString();
}

std::string Registry::dumpJsonString() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  std::string Out;
  json::Writer W(Out);
  W.beginObject();

  W.key("counters").beginObject();
  for (const auto &[Name, C] : I.CounterByName)
    W.key(Name).value(C->get());
  W.endObject();

  W.key("gauges").beginObject();
  for (const auto &[Name, G] : I.GaugeByName)
    W.key(Name).value(G->get());
  W.endObject();

  W.key("timers").beginObject();
  for (const auto &[Name, T] : I.TimerByName) {
    W.key(Name).beginObject();
    uint64_t N = T->count();
    W.key("count").value(N);
    W.key("total_ns").value(T->totalNs());
    W.key("min_ns").value(T->minNs());
    W.key("max_ns").value(T->maxNs());
    W.key("mean_ns").value(N ? T->totalNs() / N : 0);
    for (double Q : I.DumpPercentiles)
      W.key(percentileLabel(Q) + "_ns").value(T->percentileNs(Q));
    // Sparse log2 histogram: {"<floor log2 ns>": count}.
    W.key("log2_buckets").beginObject();
    for (size_t B = 0; B < Timer::NumBuckets; ++B)
      if (uint64_t BN = T->bucket(B))
        W.key(std::to_string(B)).value(BN);
    W.endObject();
    W.endObject();
  }
  W.endObject();

  W.endObject();
  return Out;
}
