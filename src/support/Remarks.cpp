//===- support/Remarks.cpp - Optimization remarks & provenance -----------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Remarks.h"

#include "support/Json.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <mutex>

using namespace am;
using namespace am::remarks;

const char *remarks::kindName(Kind K) {
  switch (K) {
  case Kind::Decompose:
    return "decompose";
  case Kind::Hoist:
    return "hoist";
  case Kind::Eliminate:
    return "eliminate";
  case Kind::SinkInit:
    return "sink_init";
  case Kind::DeleteInit:
    return "delete_init";
  case Kind::Reconstruct:
    return "reconstruct";
  case Kind::Blocked:
    return "blocked";
  case Kind::Rollback:
    return "rollback";
  }
  return "unknown";
}

const char *remarks::placementName(Placement P) {
  switch (P) {
  case Placement::None:
    return "none";
  case Placement::Entry:
    return "entry";
  case Placement::Exit:
    return "exit";
  case Placement::BeforeBranch:
    return "before_branch";
  case Placement::FromPred:
    return "from_pred";
  }
  return "unknown";
}

const std::string &Remark::factValue(const std::string &Name) const {
  static const std::string Empty;
  for (const auto &[K, V] : Facts)
    if (K == Name)
      return V;
  return Empty;
}

//===----------------------------------------------------------------------===//
// Sink
//===----------------------------------------------------------------------===//

struct Sink::Impl {
  mutable std::mutex Mu;
  std::vector<Remark> Remarks;
};

Sink::Sink() : I(std::make_unique<Impl>()) {}

Sink::~Sink() = default;

Sink &Sink::get() {
  // The process-default session's sink is leaked (see
  // telemetry::Session::processDefault): instrumentation may fire from
  // static destructors.
  return telemetry::Session::current().remarks();
}

void Sink::clear() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.Remarks.clear();
  NextId.store(1, std::memory_order_relaxed);
  CurrentPass = "";
  CurrentRound = 0;
}

void Sink::add(Remark R) {
  if (!enabled())
    return;
  if (R.Pass.empty())
    R.Pass = CurrentPass;
  if (R.Round == 0)
    R.Round = CurrentRound;
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  I.Remarks.push_back(std::move(R));
}

size_t Sink::size() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Remarks.size();
}

uint64_t Sink::countKind(Kind K) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  uint64_t N = 0;
  for (const Remark &R : I.Remarks)
    N += R.K == K;
  return N;
}

std::vector<Remark> Sink::remarks() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mu);
  return I.Remarks;
}

std::string Sink::toJsonString() const {
  std::vector<Remark> Rs = remarks();
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("remarks").beginArray();
  for (const Remark &R : Rs) {
    W.beginObject();
    W.key("kind").value(kindName(R.K));
    if (R.Act != Action::None)
      W.key("action").value(R.Act == Action::Remove ? "remove" : "insert");
    W.key("pass").value(R.Pass);
    W.key("round").value(static_cast<uint64_t>(R.Round));
    W.key("instr_id").value(static_cast<uint64_t>(R.InstrId));
    if (R.Block != 0xFFFFFFFFu)
      W.key("block").value(static_cast<uint64_t>(R.Block));
    if (R.InstrIndex != 0xFFFFFFFFu)
      W.key("index").value(static_cast<uint64_t>(R.InstrIndex));
    W.key("terminal").value(R.Terminal);
    if (R.Place != Placement::None)
      W.key("placement").value(placementName(R.Place));
    if (R.FromBlock != 0xFFFFFFFFu)
      W.key("from_block").value(static_cast<uint64_t>(R.FromBlock));
    if (!R.Pattern.empty())
      W.key("pattern").value(R.Pattern);
    if (!R.Var.empty())
      W.key("var").value(R.Var);
    if (!R.Parents.empty()) {
      W.key("parents").beginArray();
      for (uint32_t P : R.Parents)
        W.value(static_cast<uint64_t>(P));
      W.endArray();
    }
    if (!R.NewIds.empty()) {
      W.key("new_ids").beginArray();
      for (uint32_t N : R.NewIds)
        W.value(static_cast<uint64_t>(N));
      W.endArray();
    }
    if (R.Solve != 0)
      W.key("solve").value(R.Solve);
    if (!R.Facts.empty()) {
      W.key("facts").beginObject();
      for (const auto &[Name, Value] : R.Facts)
        W.key(Name).value(Value);
      W.endObject();
    }
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return Out;
}

//===----------------------------------------------------------------------===//
// Provenance
//===----------------------------------------------------------------------===//

const Provenance::Node *Provenance::find(uint32_t Id) const {
  auto It = std::lower_bound(
      Nodes.begin(), Nodes.end(), Id,
      [](const Node &N, uint32_t Want) { return N.Id < Want; });
  if (It != Nodes.end() && It->Id == Id)
    return &*It;
  return nullptr;
}

Provenance::Node &Provenance::getOrCreate(uint32_t Id) {
  auto It = std::lower_bound(
      Nodes.begin(), Nodes.end(), Id,
      [](const Node &N, uint32_t Want) { return N.Id < Want; });
  if (It != Nodes.end() && It->Id == Id)
    return *It;
  Node N;
  N.Id = Id;
  return *Nodes.insert(It, std::move(N));
}

const Provenance::Node *Provenance::node(uint32_t Id) const {
  return find(Id);
}

Provenance Provenance::build(const std::vector<Remark> &Remarks) {
  Provenance P;
  auto Link = [&P](uint32_t Parent, uint32_t Child) {
    if (Parent == 0 || Child == 0 || Parent == Child)
      return;
    Node &PN = P.getOrCreate(Parent);
    if (std::find(PN.Children.begin(), PN.Children.end(), Child) ==
        PN.Children.end())
      PN.Children.push_back(Child);
    Node &CN = P.getOrCreate(Child);
    if (std::find(CN.Parents.begin(), CN.Parents.end(), Parent) ==
        CN.Parents.end())
      CN.Parents.push_back(Parent);
  };
  for (size_t Idx = 0; Idx < Remarks.size(); ++Idx) {
    const Remark &R = Remarks[Idx];
    if (R.InstrId != 0)
      P.getOrCreate(R.InstrId).Events.push_back(Idx);
    for (uint32_t N : R.NewIds) {
      Node &NN = P.getOrCreate(N);
      if (NN.Events.empty() || NN.Events.back() != Idx)
        NN.Events.push_back(Idx);
      Link(R.InstrId, N);
    }
    for (uint32_t Par : R.Parents)
      Link(Par, R.InstrId);
  }
  return P;
}

std::vector<uint32_t> Provenance::family(uint32_t Id) const {
  std::vector<uint32_t> Result;
  if (!find(Id))
    return Result;
  // Ancestor closure (including Id), then descendant closure of every
  // ancestor — one assignment's whole family tree.
  std::vector<uint32_t> Work{Id};
  std::vector<uint32_t> Ancestors;
  while (!Work.empty()) {
    uint32_t Cur = Work.back();
    Work.pop_back();
    if (std::find(Ancestors.begin(), Ancestors.end(), Cur) != Ancestors.end())
      continue;
    Ancestors.push_back(Cur);
    if (const Node *N = find(Cur))
      for (uint32_t P : N->Parents)
        Work.push_back(P);
  }
  Work = Ancestors;
  while (!Work.empty()) {
    uint32_t Cur = Work.back();
    Work.pop_back();
    if (std::find(Result.begin(), Result.end(), Cur) != Result.end())
      continue;
    Result.push_back(Cur);
    if (const Node *N = find(Cur))
      for (uint32_t C : N->Children)
        Work.push_back(C);
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

std::vector<uint32_t>
Provenance::idsForVar(const std::string &Var,
                      const std::vector<Remark> &Remarks) const {
  std::vector<uint32_t> Ids;
  auto Add = [&Ids](uint32_t Id) {
    if (Id != 0 &&
        std::find(Ids.begin(), Ids.end(), Id) == Ids.end())
      Ids.push_back(Id);
  };
  for (const Remark &R : Remarks) {
    if (R.Var != Var)
      continue;
    Add(R.InstrId);
    for (uint32_t N : R.NewIds)
      Add(N);
  }
  std::sort(Ids.begin(), Ids.end());
  return Ids;
}

//===----------------------------------------------------------------------===//
// explainId
//===----------------------------------------------------------------------===//

std::string remarks::explainId(uint32_t Id, const std::vector<Remark> &Remarks,
                               const Provenance &Prov,
                               const std::string (*FinalLocation)(uint32_t,
                                                                  const void *),
                               const void *FinalCtx) {
  std::string Out;
  std::vector<uint32_t> Family = Prov.family(Id);
  if (Family.empty()) {
    Out += "instr #" + std::to_string(Id) + ": no remarks recorded\n";
    return Out;
  }
  Out += "lineage of instr #" + std::to_string(Id) + " (family:";
  for (uint32_t F : Family)
    Out += " #" + std::to_string(F);
  Out += ")\n";

  // Emission order == decision order, so replay the remark stream and
  // print every remark that touches the family.
  auto InFamily = [&Family](uint32_t Want) {
    return std::binary_search(Family.begin(), Family.end(), Want);
  };
  for (const Remark &R : Remarks) {
    bool Touches = InFamily(R.InstrId);
    for (uint32_t N : R.NewIds)
      Touches = Touches || InFamily(N);
    if (!Touches)
      continue;
    Out += "  [" + R.Pass;
    if (R.Round != 0)
      Out += " round " + std::to_string(R.Round);
    Out += "] " + std::string(kindName(R.K));
    if (R.Act == Action::Remove)
      Out += "/remove";
    else if (R.Act == Action::Insert)
      Out += "/insert";
    Out += " #" + std::to_string(R.InstrId);
    if (!R.Pattern.empty())
      Out += " `" + R.Pattern + "`";
    if (R.Block != 0xFFFFFFFFu) {
      Out += " at b" + std::to_string(R.Block);
      if (R.Place != Placement::None && R.Place != Placement::Entry)
        Out += "/" + std::string(placementName(R.Place));
      else if (R.Place == Placement::Entry)
        Out += "/entry";
    }
    if (R.FromBlock != 0xFFFFFFFFu)
      Out += " (for branch block b" + std::to_string(R.FromBlock) + ")";
    if (!R.NewIds.empty()) {
      Out += " -> new";
      for (uint32_t N : R.NewIds)
        Out += " #" + std::to_string(N);
    }
    if (!R.Parents.empty()) {
      Out += " from";
      for (uint32_t P : R.Parents)
        Out += " #" + std::to_string(P);
    }
    if (R.Terminal)
      Out += " [terminal]";
    if (!R.Facts.empty()) {
      Out += "\n      because:";
      for (const auto &[Name, Value] : R.Facts)
        Out += " " + Name + "=" + Value;
      if (R.Solve != 0)
        Out += " (solve " + std::to_string(R.Solve) + ")";
    }
    Out += "\n";
  }

  if (FinalLocation) {
    for (uint32_t F : Family) {
      std::string Loc = FinalLocation(F, FinalCtx);
      if (!Loc.empty())
        Out += "  final: #" + std::to_string(F) + " " + Loc + "\n";
    }
  }
  return Out;
}
