//===- support/Aggregate.cpp - Deterministic cross-job aggregation -------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Aggregate.h"
#include "support/EventLog.h"
#include "support/Json.h"
#include "support/Stats.h"

#include <algorithm>
#include <cmath>
#include <ostream>

using namespace am;
using namespace am::fleet;

void Histogram::add(uint64_t V) {
  Buckets[stats::log2BucketIndex(V, NumBuckets)] += 1;
  ++Count;
  if (V > Max)
    Max = V;
}

void Histogram::merge(const Histogram &O) {
  for (size_t B = 0; B < NumBuckets; ++B)
    Buckets[B] += O.Buckets[B];
  Count += O.Count;
  if (O.Max > Max)
    Max = O.Max;
}

uint64_t Histogram::percentile(double Q) const {
  return stats::log2BucketPercentile(Buckets, NumBuckets, Count, Q, Max);
}

void MetricAgg::add(uint64_t V) {
  if (Jobs == 0) {
    Min = Max = V;
  } else {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  ++Jobs;
  Sum += V;
  Hist.add(V);
}

void MetricAgg::merge(const MetricAgg &O) {
  if (O.Jobs == 0)
    return;
  if (Jobs == 0) {
    Min = O.Min;
    Max = O.Max;
  } else {
    Min = std::min(Min, O.Min);
    Max = std::max(Max, O.Max);
  }
  Jobs += O.Jobs;
  Sum += O.Sum;
  Hist.merge(O.Hist);
}

void Aggregate::addJob(const JobEvent &E) {
  ++Jobs;
  Statuses[E.Status] += 1;
  for (const auto &[Kind, N] : E.RemarkKinds)
    RemarkKinds[Kind] += N;
  for (const auto &[Name, V] : E.Counters)
    Counters[Name].add(V);
  Counters["ir.blocks_before"].add(E.BlocksBefore);
  Counters["ir.blocks_after"].add(E.BlocksAfter);
  Counters["ir.instrs_before"].add(E.InstrsBefore);
  Counters["ir.instrs_after"].add(E.InstrsAfter);
}

void Aggregate::merge(const Aggregate &O) {
  Jobs += O.Jobs;
  SkippedLines += O.SkippedLines;
  for (const auto &[S, N] : O.Statuses)
    Statuses[S] += N;
  for (const auto &[K, N] : O.RemarkKinds)
    RemarkKinds[K] += N;
  for (const auto &[Name, M] : O.Counters)
    Counters[Name].merge(M);
}

void Aggregate::writeJson(std::ostream &OS) const {
  json::Writer W(OS);
  W.beginObject();
  W.key("schema").value("amagg-v1");
  W.key("jobs").value(Jobs);
  W.key("skipped_lines").value(SkippedLines);

  W.key("status").beginObject();
  for (const auto &[S, N] : Statuses)
    W.key(S).value(N);
  W.endObject();

  W.key("remarks").beginObject();
  for (const auto &[K, N] : RemarkKinds)
    W.key(K).value(N);
  W.endObject();

  W.key("counters").beginObject();
  for (const auto &[Name, M] : Counters) {
    W.key(Name).beginObject();
    W.key("jobs").value(M.Jobs);
    W.key("sum").value(M.Sum);
    W.key("min").value(M.Jobs ? M.Min : 0);
    W.key("max").value(M.Max);
    W.key("mean").value(M.mean());
    W.key("p50").value(M.Hist.percentile(0.5));
    W.key("p95").value(M.Hist.percentile(0.95));
    W.key("p99").value(M.Hist.percentile(0.99));
    W.key("hist").beginObject();
    for (size_t B = 0; B < Histogram::NumBuckets; ++B)
      if (uint64_t N = M.Hist.bucket(B))
        W.key(std::to_string(B)).value(N);
    W.endObject();
    W.endObject();
  }
  W.endObject();

  W.endObject();
}

std::vector<DiffRow> fleet::diffAggregates(const Aggregate &A,
                                           const Aggregate &B) {
  std::vector<DiffRow> Rows;
  auto Add = [&Rows](const std::string &Name, const MetricAgg *MA,
                     const MetricAgg *MB) {
    DiffRow R;
    R.Counter = Name;
    if (MA) {
      R.MeanA = MA->mean();
      R.SumA = MA->Sum;
    }
    if (MB) {
      R.MeanB = MB->mean();
      R.SumB = MB->Sum;
    }
    R.Delta = R.MeanB - R.MeanA;
    if (R.Delta == 0.0)
      R.RelDelta = 0.0;
    else if (R.MeanA != 0.0)
      R.RelDelta = R.Delta / R.MeanA;
    else
      R.RelDelta = R.Delta > 0 ? 1e9 : -1e9; // appeared/vanished entirely
    Rows.push_back(std::move(R));
  };
  for (const auto &[Name, MA] : A.counters()) {
    auto It = B.counters().find(Name);
    Add(Name, &MA, It == B.counters().end() ? nullptr : &It->second);
  }
  for (const auto &[Name, MB] : B.counters())
    if (!A.counters().count(Name))
      Add(Name, nullptr, &MB);
  std::sort(Rows.begin(), Rows.end(), [](const DiffRow &X, const DiffRow &Y) {
    double AX = std::fabs(X.RelDelta), AY = std::fabs(Y.RelDelta);
    if (AX != AY)
      return AX > AY;
    return X.Counter < Y.Counter;
  });
  return Rows;
}
