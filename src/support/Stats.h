//===- support/Stats.h - Process-wide statistics registry ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named monotonic counters, gauges and timer
/// histograms, built so that the paper's empirical claims (near-linear
/// dataflow sweeps, a quickly stabilizing AM fixpoint, a final flush that
/// deletes unjustified initializations) are observable on every run.
///
/// Usage inside library code:
///
/// \code
///   AM_STAT_COUNTER(NumSweeps, "dfa.sweeps");
///   AM_STAT_INC(NumSweeps);              // one relaxed atomic add
///   AM_STAT_ADD(NumSweeps, 4);
///
///   AM_STAT_GAUGE(LastBits, "dfa.last_bits");
///   AM_STAT_SET(LastBits, Problem.numBits());
///
///   AM_STAT_TIMER(SolveTimer, "dfa.solve_ns");
///   { am::stats::TimerScope T(SolveTimer); ...hot work... }
/// \endcode
///
/// Cost model: `AM_STAT_COUNTER` resolves its registry slot once per call
/// site (a function-local static reference), so the steady-state cost of
/// an increment is a single relaxed atomic add — no map lookups, no
/// locks, no allocation.  Compiling with `-DAM_DISABLE_STATS` turns every
/// macro into nothing at all (branch-free: the counter update is not
/// conditionally skipped, it does not exist).  Timer scopes additionally
/// honor the runtime `Registry::setEnabled(false)` switch so the clock is
/// never read when observation is off.
///
/// Counter naming convention: lower-case dotted paths,
/// `<subsystem>.<quantity>[_<unit>]` — e.g. `dfa.sweeps`,
/// `am.rounds`, `flush.inits_deleted`, `dfa.solve_ns`.  Timers always end
/// in `_ns`.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_STATS_H
#define AM_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace am::stats {

/// A monotonically increasing event count.
class Counter {
public:
  explicit Counter(std::string Name) : Name(std::move(Name)) {}

  void add(uint64_t Delta) { Value.fetch_add(Delta, std::memory_order_relaxed); }
  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<uint64_t> Value{0};
};

/// A last-write-wins level (e.g. "bits in the most recent solve").
class Gauge {
public:
  explicit Gauge(std::string Name) : Name(std::move(Name)) {}

  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  int64_t get() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<int64_t> Value{0};
};

/// A duration histogram: count, sum, min, max and a log2 bucket per
/// power-of-two of nanoseconds (bucket i counts samples in [2^i, 2^{i+1})).
class Timer {
public:
  static constexpr size_t NumBuckets = 40; // up to ~18 minutes per sample

  explicit Timer(std::string Name) : Name(std::move(Name)) {}

  void record(uint64_t Ns);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t totalNs() const { return TotalNs.load(std::memory_order_relaxed); }
  uint64_t minNs() const { return Count.load(std::memory_order_relaxed) ? MinNs.load(std::memory_order_relaxed) : 0; }
  uint64_t maxNs() const { return MaxNs.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t Idx) const { return Buckets[Idx].load(std::memory_order_relaxed); }

  /// Nearest-rank percentile estimated from the log2 histogram: the
  /// returned value is the midpoint of the bucket containing the Q-th
  /// sample (exact min/max come from minNs()/maxNs()).  \p Q in [0, 1];
  /// 0 when no samples were recorded.
  uint64_t percentileNs(double Q) const;
  void reset();
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> TotalNs{0};
  std::atomic<uint64_t> MinNs{UINT64_MAX};
  std::atomic<uint64_t> MaxNs{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// The process-wide registry.  Instruments register lazily on first use
/// (under a lock) and are never deallocated, so references handed out by
/// the AM_STAT_* macros stay valid for the life of the process.
class Registry {
public:
  static Registry &get();

  /// Returns the uniquely named instrument, creating it on first use.
  /// Thread-safe; the returned reference is stable forever.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Timer &timer(const std::string &Name);

  /// Lookup without creation; nullptr when the name was never registered.
  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const Timer *findTimer(const std::string &Name) const;

  /// Runtime switch consulted by TimerScope (and by the tracer).  Counter
  /// and gauge updates are always live — they are one relaxed atomic and
  /// not worth a branch.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Zeroes every registered instrument (names stay registered).
  void resetAll();

  /// `name value` lines, sorted by name; timers render count/total/mean.
  void dumpText(std::ostream &OS) const;

  /// One JSON object: {"counters": {...}, "gauges": {...}, "timers":
  /// {name: {count, total_ns, min_ns, max_ns, mean_ns, buckets}}}.
  void dumpJson(std::ostream &OS) const;
  std::string dumpJsonString() const;

  /// Current value of a counter, 0 if never registered.  Handy for
  /// before/after deltas around a region (see PassRecord).
  uint64_t counterValue(const std::string &Name) const;

private:
  Registry() = default;

  struct Impl;
  Impl &impl() const;

  std::atomic<bool> Enabled{true};
};

/// RAII wall-clock scope feeding a Timer.  Does not touch the clock when
/// the registry is disabled at runtime.
class TimerScope {
public:
  explicit TimerScope(Timer &T)
      : Target(Registry::get().enabled() ? &T : nullptr) {
    if (Target)
      Start = std::chrono::steady_clock::now();
  }
  ~TimerScope() {
    if (Target)
      Target->record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()));
  }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer *Target;
  std::chrono::steady_clock::time_point Start;
};

} // namespace am::stats

//===----------------------------------------------------------------------===//
// Instrumentation macros
//===----------------------------------------------------------------------===//

#ifndef AM_DISABLE_STATS

/// Declares a function-local static reference to the named counter.  The
/// registry lookup happens once per call site; increments after that are
/// a single relaxed atomic add.
#define AM_STAT_COUNTER(Var, Name)                                             \
  static ::am::stats::Counter &Var = ::am::stats::Registry::get().counter(Name)
#define AM_STAT_INC(Var) (Var).add(1)
#define AM_STAT_ADD(Var, Delta) (Var).add(Delta)

#define AM_STAT_GAUGE(Var, Name)                                               \
  static ::am::stats::Gauge &Var = ::am::stats::Registry::get().gauge(Name)
#define AM_STAT_SET(Var, Value) (Var).set(static_cast<int64_t>(Value))

#define AM_STAT_TIMER(Var, Name)                                               \
  static ::am::stats::Timer &Var = ::am::stats::Registry::get().timer(Name)
/// RAII: times the rest of the enclosing scope into timer \p Var.
#define AM_STAT_TIME_SCOPE(Var)                                                \
  ::am::stats::TimerScope am_stat_scope_##Var(Var)

#else // AM_DISABLE_STATS — everything compiles away; branch-free because
      // the update does not exist at all.

#define AM_STAT_COUNTER(Var, Name) do { } while (false)
#define AM_STAT_INC(Var) do { } while (false)
#define AM_STAT_ADD(Var, Delta) do { } while (false)
#define AM_STAT_GAUGE(Var, Name) do { } while (false)
#define AM_STAT_SET(Var, Value) do { } while (false)
#define AM_STAT_TIMER(Var, Name) do { } while (false)
#define AM_STAT_TIME_SCOPE(Var) do { } while (false)

#endif // AM_DISABLE_STATS

#endif // AM_SUPPORT_STATS_H
