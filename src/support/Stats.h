//===- support/Stats.h - Session-scoped statistics registry ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named monotonic counters, gauges and timer histograms,
/// built so that the paper's empirical claims (near-linear dataflow
/// sweeps, a quickly stabilizing AM fixpoint, a final flush that deletes
/// unjustified initializations) are observable on every run.  One
/// registry belongs to one telemetry session (support/Telemetry.h);
/// `Registry::get()` resolves to the calling thread's current session, so
/// concurrent optimization jobs count into disjoint registries.  Code
/// that never installs a session sees the leaked process-default
/// registry — the pre-session singleton behavior, unchanged.
///
/// Usage inside library code:
///
/// \code
///   AM_STAT_COUNTER(NumSweeps, "dfa.sweeps");
///   AM_STAT_INC(NumSweeps);              // one relaxed atomic add
///   AM_STAT_ADD(NumSweeps, 4);
///
///   AM_STAT_GAUGE(LastBits, "dfa.last_bits");
///   AM_STAT_SET(LastBits, Problem.numBits());
///
///   AM_STAT_TIMER(SolveTimer, "dfa.solve_ns");
///   { am::stats::TimerScope T(SolveTimer); ...hot work... }
/// \endcode
///
/// Cost model: `AM_STAT_COUNTER` declares a function-local thread-local
/// cache of the instrument, keyed on the current registry's generation
/// id.  The registry lookup (lock + map) happens once per call site per
/// session; the steady-state cost of an increment is a thread-local read,
/// one integer compare and a single relaxed atomic add — no map lookups,
/// no locks, no allocation.  Compiling with `-DAM_DISABLE_STATS` turns
/// every macro into nothing at all (branch-free: the counter update is
/// not conditionally skipped, it does not exist).  Timer scopes
/// additionally honor the runtime `Registry::setEnabled(false)` switch so
/// the clock is never read when observation is off.
///
/// Counter naming convention: lower-case dotted paths,
/// `<subsystem>.<quantity>[_<unit>]` — e.g. `dfa.sweeps`,
/// `am.rounds`, `flush.inits_deleted`, `dfa.solve_ns`.  Timers always end
/// in `_ns`.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_STATS_H
#define AM_SUPPORT_STATS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace am::stats {

//===----------------------------------------------------------------------===//
// Shared log2-histogram helpers
//===----------------------------------------------------------------------===//
//
// One implementation of the log-scale bucket geometry, used by
// stats::Timer here and by the fleet aggregator's value histograms
// (support/Aggregate.h) so the two can never drift: bucket i counts
// samples in [2^i, 2^{i+1}), with 0 and 1 sharing bucket 0.

/// floor(log2(max(V, 1))), clamped to NumBuckets - 1.
size_t log2BucketIndex(uint64_t V, size_t NumBuckets);

/// Nearest-rank percentile estimated from a log2 bucket array: returns
/// the midpoint of the bucket containing the ceil(Q*Count)-th smallest
/// sample (Lo + Lo/2 for bucket lower bound Lo), \p MaxFallback when the
/// rank lies past the populated buckets, and 0 when Count is 0.  \p Q is
/// clamped to [0, 1].
uint64_t log2BucketPercentile(const uint64_t *Buckets, size_t NumBuckets,
                              uint64_t Count, double Q, uint64_t MaxFallback);

/// Display label for a percentile: 0.5 -> "p50", 0.99 -> "p99",
/// 0.999 -> "p99.9".
std::string percentileLabel(double Q);

/// A monotonically increasing event count.
class Counter {
public:
  explicit Counter(std::string Name) : Name(std::move(Name)) {}

  void add(uint64_t Delta) { Value.fetch_add(Delta, std::memory_order_relaxed); }
  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<uint64_t> Value{0};
};

/// A last-write-wins level (e.g. "bits in the most recent solve").
class Gauge {
public:
  explicit Gauge(std::string Name) : Name(std::move(Name)) {}

  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  int64_t get() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<int64_t> Value{0};
};

/// A duration histogram: count, sum, min, max and a log2 bucket per
/// power-of-two of nanoseconds (bucket i counts samples in [2^i, 2^{i+1})).
class Timer {
public:
  static constexpr size_t NumBuckets = 40; // up to ~18 minutes per sample

  explicit Timer(std::string Name) : Name(std::move(Name)) {}

  void record(uint64_t Ns);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t totalNs() const { return TotalNs.load(std::memory_order_relaxed); }
  uint64_t minNs() const { return Count.load(std::memory_order_relaxed) ? MinNs.load(std::memory_order_relaxed) : 0; }
  uint64_t maxNs() const { return MaxNs.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t Idx) const { return Buckets[Idx].load(std::memory_order_relaxed); }

  /// Nearest-rank percentile estimated from the log2 histogram: the
  /// returned value is the midpoint of the bucket containing the Q-th
  /// sample (exact min/max come from minNs()/maxNs()).  \p Q in [0, 1];
  /// 0 when no samples were recorded.
  uint64_t percentileNs(double Q) const;
  void reset();
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> TotalNs{0};
  std::atomic<uint64_t> MinNs{UINT64_MAX};
  std::atomic<uint64_t> MaxNs{0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// One session's registry.  Instruments register lazily on first use
/// (under a lock) and live as long as their registry; the process-default
/// registry is leaked, so its instrument references stay valid for the
/// life of the process (the pre-session contract every existing caller
/// relies on).
class Registry {
public:
  Registry();
  ~Registry();
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// The calling thread's session registry (telemetry::Session::current).
  static Registry &get();

  /// A process-unique id, distinct even across destroy/recreate at the
  /// same address — the cache key of the AM_STAT_* macros (see Cached*
  /// below), so a cached instrument pointer can never dangle into a dead
  /// registry.
  uint64_t generation() const { return Generation; }

  /// Returns the uniquely named instrument, creating it on first use.
  /// Thread-safe; the returned reference is stable forever.
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Timer &timer(const std::string &Name);

  /// Lookup without creation; nullptr when the name was never registered.
  const Counter *findCounter(const std::string &Name) const;
  const Gauge *findGauge(const std::string &Name) const;
  const Timer *findTimer(const std::string &Name) const;

  /// Runtime switch consulted by TimerScope (and by the tracer).  Counter
  /// and gauge updates are always live — they are one relaxed atomic and
  /// not worth a branch.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Zeroes every registered instrument (names stay registered).
  void resetAll();

  /// The percentiles rendered by dumpText/dumpJson for every timer.
  /// Default {0.5, 0.95, 0.99}; values are clamped to [0, 1] and label
  /// collisions (e.g. 0.5 twice) keep the first occurrence.
  void setDumpPercentiles(std::vector<double> Qs);
  std::vector<double> dumpPercentiles() const;

  /// Name-sorted snapshot of every registered counter / gauge — the
  /// fleet event log records these per job.
  std::vector<std::pair<std::string, uint64_t>> counterEntries() const;
  std::vector<std::pair<std::string, int64_t>> gaugeEntries() const;

  /// `name value` lines, sorted by name; timers render count/total/mean.
  void dumpText(std::ostream &OS) const;

  /// One JSON object: {"counters": {...}, "gauges": {...}, "timers":
  /// {name: {count, total_ns, min_ns, max_ns, mean_ns, buckets}}}.
  void dumpJson(std::ostream &OS) const;
  std::string dumpJsonString() const;

  /// Current value of a counter, 0 if never registered.  Handy for
  /// before/after deltas around a region (see PassRecord).
  uint64_t counterValue(const std::string &Name) const;

private:
  struct Impl;
  Impl &impl() const { return *I; }

  std::unique_ptr<Impl> I;
  std::atomic<bool> Enabled{true};
  uint64_t Generation;
};

//===----------------------------------------------------------------------===//
// Per-call-site instrument caches (the AM_STAT_* macro storage)
//===----------------------------------------------------------------------===//

/// A per-call-site, per-thread cache of one named counter.  Re-resolves
/// through `Registry::get()` only when the thread's current registry has
/// a different generation than the cached one, so the steady-state cost
/// of an update is a compare plus the relaxed atomic op.  Constant-
/// initializable, so the `static thread_local` the macros declare needs
/// no init guard.  Implicitly convertible to the underlying instrument
/// for call sites that want the reference itself.
class CachedCounter {
public:
  explicit constexpr CachedCounter(const char *Name) : Name(Name) {}

  Counter &ref() {
    Registry &R = Registry::get();
    if (Gen != R.generation()) {
      Ptr = &R.counter(Name);
      Gen = R.generation();
    }
    return *Ptr;
  }
  operator Counter &() { return ref(); }

  void add(uint64_t Delta) { ref().add(Delta); }
  uint64_t get() { return ref().get(); }
  void reset() { ref().reset(); }

private:
  const char *Name;
  uint64_t Gen = 0; // 0 never matches a live registry
  Counter *Ptr = nullptr;
};

/// As CachedCounter, for gauges.
class CachedGauge {
public:
  explicit constexpr CachedGauge(const char *Name) : Name(Name) {}

  Gauge &ref() {
    Registry &R = Registry::get();
    if (Gen != R.generation()) {
      Ptr = &R.gauge(Name);
      Gen = R.generation();
    }
    return *Ptr;
  }
  operator Gauge &() { return ref(); }

  void set(int64_t V) { ref().set(V); }
  int64_t get() { return ref().get(); }
  void reset() { ref().reset(); }

private:
  const char *Name;
  uint64_t Gen = 0;
  Gauge *Ptr = nullptr;
};

/// As CachedCounter, for timers.
class CachedTimer {
public:
  explicit constexpr CachedTimer(const char *Name) : Name(Name) {}

  Timer &ref() {
    Registry &R = Registry::get();
    if (Gen != R.generation()) {
      Ptr = &R.timer(Name);
      Gen = R.generation();
    }
    return *Ptr;
  }
  operator Timer &() { return ref(); }

  void record(uint64_t Ns) { ref().record(Ns); }

private:
  const char *Name;
  uint64_t Gen = 0;
  Timer *Ptr = nullptr;
};

/// RAII wall-clock scope feeding a Timer.  Does not touch the clock when
/// the registry is disabled at runtime.
class TimerScope {
public:
  explicit TimerScope(Timer &T)
      : Target(Registry::get().enabled() ? &T : nullptr) {
    if (Target)
      Start = std::chrono::steady_clock::now();
  }
  ~TimerScope() {
    if (Target)
      Target->record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()));
  }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer *Target;
  std::chrono::steady_clock::time_point Start;
};

} // namespace am::stats

//===----------------------------------------------------------------------===//
// Instrumentation macros
//===----------------------------------------------------------------------===//

#ifndef AM_DISABLE_STATS

/// Declares a function-local per-thread cache of the named counter,
/// resolved against the calling thread's current session registry.  The
/// registry lookup happens once per call site per session; increments
/// after that are a generation compare plus a single relaxed atomic add.
#define AM_STAT_COUNTER(Var, Name)                                             \
  static thread_local ::am::stats::CachedCounter Var{Name}
#define AM_STAT_INC(Var) (Var).add(1)
#define AM_STAT_ADD(Var, Delta) (Var).add(Delta)

#define AM_STAT_GAUGE(Var, Name)                                               \
  static thread_local ::am::stats::CachedGauge Var{Name}
#define AM_STAT_SET(Var, Value) (Var).set(static_cast<int64_t>(Value))

#define AM_STAT_TIMER(Var, Name)                                               \
  static thread_local ::am::stats::CachedTimer Var{Name}
/// RAII: times the rest of the enclosing scope into timer \p Var.
#define AM_STAT_TIME_SCOPE(Var)                                                \
  ::am::stats::TimerScope am_stat_scope_##Var(Var)

#else // AM_DISABLE_STATS — everything compiles away; branch-free because
      // the update does not exist at all.

#define AM_STAT_COUNTER(Var, Name) do { } while (false)
#define AM_STAT_INC(Var) do { } while (false)
#define AM_STAT_ADD(Var, Delta) do { } while (false)
#define AM_STAT_GAUGE(Var, Name) do { } while (false)
#define AM_STAT_SET(Var, Value) do { } while (false)
#define AM_STAT_TIMER(Var, Name) do { } while (false)
#define AM_STAT_TIME_SCOPE(Var) do { } while (false)

#endif // AM_DISABLE_STATS

#endif // AM_SUPPORT_STATS_H
