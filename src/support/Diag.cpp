//===- support/Diag.cpp - Recoverable diagnostics ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Diag.h"

using namespace am;

const char *diag::severityName(Severity S) {
  switch (S) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "?";
}

std::string diag::Diagnostic::render() const {
  std::string Out;
  if (!Component.empty()) {
    Out += Component;
    if (Line != 0) {
      Out += ':';
      Out += std::to_string(Line);
      Out += ':';
      Out += std::to_string(Col);
    }
    Out += ": ";
  } else if (Line != 0) {
    Out += "line " + std::to_string(Line) + ":" + std::to_string(Col) + ": ";
  }
  Out += severityName(Sev);
  Out += ": ";
  Out += Message;
  for (const std::string &N : Notes) {
    Out += "\n  note: ";
    Out += N;
  }
  return Out;
}
