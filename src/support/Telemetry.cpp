//===- support/Telemetry.cpp - Per-job telemetry session -----------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/Profiler.h"
#include "support/Remarks.h"
#include "support/Stats.h"

#include <atomic>

using namespace am;
using namespace am::telemetry;

namespace {

thread_local Session *CurrentSession = nullptr;

} // namespace

Session::Session()
    : Stats(std::make_unique<stats::Registry>()),
      Remarks(std::make_unique<remarks::Sink>()),
      Prof(std::make_unique<prof::Profiler>()) {}

Session::~Session() = default;

stats::Registry &Session::stats() { return *Stats; }
remarks::Sink &Session::remarks() { return *Remarks; }
prof::Profiler &Session::profiler() { return *Prof; }

Session &Session::current() {
  Session *S = CurrentSession;
  return S ? *S : processDefault();
}

Session &Session::processDefault() {
  // Leaked on purpose: instruments handed out through the default session
  // must outlive every static destructor that might still fire an update.
  static Session *S = new Session();
  return *S;
}

SessionScope::SessionScope(Session &S) : Prev(CurrentSession) {
  CurrentSession = &S;
}

SessionScope::~SessionScope() { CurrentSession = Prev; }
