//===- support/Telemetry.h - Per-job telemetry session ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One `telemetry::Session` owns every observation sink of one
/// optimization job: the stats `Registry` (support/Stats.h), the remark
/// `Sink` (support/Remarks.h), the phase `Profiler` (support/Profiler.h)
/// and the flight-recorder hook slot (report/Recorder.h).  Before this
/// refactor each of those was a process-wide singleton; now the
/// singletons' `get()` accessors resolve through the calling thread's
/// *current* session, so a multi-client daemon (ROADMAP item 1) can run
/// one job per worker thread with fully isolated telemetry — nothing the
/// optimizer observes is process-global any more.
///
/// Compatibility contract: code that never installs a session keeps the
/// exact pre-refactor behavior.  A leaked process-default session backs
/// every thread whose current pointer is unset, so `Registry::get()`,
/// `Sink::get()` and friends still hand out stable, never-deallocated
/// instruments in single-job binaries (amopt today, every test).
///
/// \code
///   am::telemetry::Session Job;           // fresh registry/sink/profiler
///   {
///     am::telemetry::SessionScope Scope(Job);   // this thread now
///     runPipeline(G, Passes, Opts);             // observes into Job
///   }                                     // previous session restored
///   std::string Stats = Job.stats().dumpJsonString();
/// \endcode
///
/// What stays process-wide on purpose: the Chrome tracer (one timeline
/// per process is what trace viewers expect; its clock epoch is shared
/// with the profiler via trace::epochNowUs) and the two cumulative
/// allocation counters (operator new has no session context).
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_TELEMETRY_H
#define AM_SUPPORT_TELEMETRY_H

#include <cstdint>
#include <memory>

namespace am::stats {
class Registry;
} // namespace am::stats
namespace am::remarks {
class Sink;
} // namespace am::remarks
namespace am::prof {
class Profiler;
} // namespace am::prof
namespace am::report {
class RecorderSession;
} // namespace am::report

namespace am::telemetry {

/// Owns the telemetry sinks of one optimization job.  Sessions are
/// independent: instruments registered in one are invisible to another.
/// A session must outlive every SessionScope that installs it.
class Session {
public:
  Session();
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  stats::Registry &stats();
  remarks::Sink &remarks();
  prof::Profiler &profiler();

  /// The flight-recorder hook slot: RecorderSession::install() attaches
  /// here, RecorderSession::current() reads it back.  Owned by the
  /// caller, not the session.
  report::RecorderSession *recorder() const { return Recorder; }
  void setRecorder(report::RecorderSession *R) { Recorder = R; }

  /// The session observing the calling thread: the innermost installed
  /// SessionScope's, or the process default.
  static Session &current();

  /// The leaked process-default session backing threads with no scope
  /// installed.  Never destroyed, so instrument references handed out by
  /// the macros survive static destruction (pre-refactor behavior).
  static Session &processDefault();

private:
  std::unique_ptr<stats::Registry> Stats;
  std::unique_ptr<remarks::Sink> Remarks;
  std::unique_ptr<prof::Profiler> Prof;
  report::RecorderSession *Recorder = nullptr;
};

/// RAII: makes \p S the calling thread's current session; restores the
/// previous current (possibly none) on destruction.  Scopes nest.
class SessionScope {
public:
  explicit SessionScope(Session &S);
  ~SessionScope();
  SessionScope(const SessionScope &) = delete;
  SessionScope &operator=(const SessionScope &) = delete;

private:
  Session *Prev;
};

} // namespace am::telemetry

#endif // AM_SUPPORT_TELEMETRY_H
