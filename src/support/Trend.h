//===- support/Trend.h - Longitudinal trend analytics ----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Time-series analytics over the run history (support/History.h): the
/// layer `tools/amtrend` and the trend dashboard
/// (report/TrendReport.h) share.  From a chronologically sorted history
/// it extracts one series per measured quantity —
///
///   wall/<preset>     calibration-normalized preset wall time
///                     (wall_ns / calib_ns, machine-neutral by
///                     construction: a uniformly slower machine scales
///                     numerator and denominator alike),
///   counter/<name>    machine-independent counters,
///   work/<preset>/<fact>  per-preset workload facts, and
///   calib/spin_ns     the raw calibration series itself (a step here
///                     is a *machine* event, never gated) —
///
/// and runs a robust step/changepoint detector on each: segment medians
/// on both sides of every candidate split, scored against the in-
/// segment absolute deviation around those medians, so a single
/// scheduler-hiccup outlier cannot fake a step (its effect on a segment
/// median is nil) while a genuine level shift scores far above the
/// noise.  Slow monotone drift is detected separately via a Theil–Sen
/// median slope and reported, not gated as a step.
///
/// The gate contract mirrors the repo's other checkers: a series FAILS
/// when a step *up* (slower / more work) of ratio >= GateFactor is
/// found; improvements and sub-factor steps are reported as notes.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_TREND_H
#define AM_SUPPORT_TREND_H

#include <cstdint>
#include <string>
#include <vector>

namespace am::hist {
struct HistoryEntry;
} // namespace am::hist

namespace am::trend {

/// What a series measures — controls units in reports and whether the
/// gate may fire on it.
enum class SeriesKind : uint8_t {
  NormalizedWall, ///< wall/<preset>: wall_ns / calib_ns, unitless.
  Counter,        ///< counter/<name>: machine-independent work count.
  Work,           ///< work/<preset>/<fact>: workload shape fact.
  Calibration,    ///< calib/spin_ns: raw machine speed (never gated).
};

/// One quantity over time.  Values[i] was measured by history entry
/// Entries[i] (an index into the sorted entry vector); entries missing
/// the quantity simply contribute no point, so series of different
/// density coexist.
struct Series {
  std::string Name;
  SeriesKind Kind = SeriesKind::Counter;
  std::vector<double> Values;
  std::vector<size_t> Entries;
};

/// A detected level shift: the series was statistically flat at Before
/// up to (exclusive) Index, and flat at After from Index on.
struct Changepoint {
  bool Found = false;
  size_t Index = 0;   ///< First point of the right (new-level) segment.
  double Before = 0;  ///< Left-segment median.
  double After = 0;   ///< Right-segment median.
  double Score = 0;   ///< |After-Before| / in-segment noise scale.
  double Ratio = 0;   ///< After / Before; huge when Before == 0.
};

struct StepOptions {
  /// Minimum points per segment: a "step" needs at least this many
  /// observations on each side, so one outlier can never be a segment.
  unsigned MinSeg = 3;
  /// Detection threshold on Score (step size in units of the mean
  /// absolute deviation around the segment medians).
  double KMad = 4.0;
  /// Minimum relative level change; sub-10% shifts are not steps.
  double MinRel = 0.10;
};

/// Runs the step detector over \p Values.  Deterministic; O(n^2) over
/// series lengths that are dozens of points.
Changepoint detectStep(const std::vector<double> &Values,
                       const StepOptions &Opts = StepOptions());

/// Theil–Sen median slope per step of \p Values (robust to outliers);
/// 0 when fewer than 2 points.
double theilSenSlope(const std::vector<double> &Values);

enum class SeriesStatus : uint8_t {
  Flat,     ///< No step, no drift.
  Step,     ///< Step up below the gate factor (reported, not gated).
  Regressed,///< Step up at or above the gate factor (gate fails).
  Improved, ///< Step down.
  Drifting, ///< No step, but a monotone drift beyond the threshold.
};

const char *statusName(SeriesStatus S);

/// One series with its verdict, ready for ranking and rendering.
struct SeriesVerdict {
  Series S;
  Changepoint CP;
  SeriesStatus Status = SeriesStatus::Flat;
  /// Theil–Sen slope * (n-1) / |median|: the relative level change a
  /// sustained drift amounts to across the whole series.
  double DriftRel = 0;
};

struct TrendOptions {
  StepOptions Step;
  /// A step up must reach this ratio (After/Before) to fail the gate.
  double GateFactor = 1.5;
  /// |DriftRel| beyond this flags the series as Drifting.
  double DriftThreshold = 0.25;
};

/// The full analysis of one history.
struct TrendAnalysis {
  /// Every series with its verdict, ranked most-severe first:
  /// Regressed, then Step, then Drifting, then Improved, then Flat;
  /// within a class by |relative change| descending, name ascending.
  std::vector<SeriesVerdict> Verdicts;
  /// Informational lines (too-short series, zero-calibration entries,
  /// calibration steps = machine events).
  std::vector<std::string> Notes;
  size_t NumEntries = 0;
  /// The calibration series stepped: the machine itself changed speed
  /// somewhere in the history.  Normalization already cancels it from
  /// the wall series; this is surfaced so a coincident raw-wall change
  /// reads as a machine event, not a code regression.
  bool CalibrationStepped = false;
};

/// Extracts every series from \p Entries (which must already be in
/// chronological order — hist::sortByTime).  Entries with CalibNs == 0
/// contribute no normalized-wall points (noted by analyzeHistory).
std::vector<Series> buildSeries(const std::vector<hist::HistoryEntry> &Entries);

/// buildSeries + detectStep/drift per series + ranking.
TrendAnalysis analyzeHistory(const std::vector<hist::HistoryEntry> &Entries,
                             const TrendOptions &Opts = TrendOptions());

/// The series that fail the gate (Status == Regressed).  Convenience
/// over scanning Verdicts.
std::vector<const SeriesVerdict *> gateFailures(const TrendAnalysis &A);

} // namespace am::trend

#endif // AM_SUPPORT_TREND_H
