//===- support/Service.cpp - Optimization service failure envelope --------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Service.h"

#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/Ipc.h"
#include "support/Json.h"
#include "support/Remarks.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include "transform/AssignmentMotion.h"
#include "transform/Pipeline.h"
#include "verify/FaultInjector.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <new>
#include <optional>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace am;
using namespace am::service;

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

std::string service::renderRequest(const Request &R) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("schema").value(ProtocolSchema);
  W.key("id").value(R.Id);
  W.key("source").value(R.Source);
  W.key("passes").value(R.Passes);
  if (!R.LimitsSpec.empty())
    W.key("limits").value(R.LimitsSpec);
  W.key("guarded").value(R.Guarded);
  W.endObject();
  return Out;
}

bool service::parseRequest(const std::string &Line, Request &Out,
                           std::string *Err) {
  std::string JsonErr;
  std::unique_ptr<json::Value> V = json::parse(Line, &JsonErr);
  if (!V || !V->isObject()) {
    if (Err)
      *Err = V ? "request is not a JSON object" : ("malformed JSON: " + JsonErr);
    return false;
  }
  const json::Value *Src = V->find("source");
  if (!Src || !Src->isString()) {
    if (Err)
      *Err = "request has no string 'source'";
    return false;
  }
  Out = Request();
  Out.Id = V->getU64("id");
  Out.Source = Src->str();
  Out.Passes = V->getString("passes", "uniform");
  Out.LimitsSpec = V->getString("limits");
  if (const json::Value *G = V->find("guarded"))
    Out.Guarded = G->isBool() ? G->boolean() : true;
  return true;
}

static void appendCountMap(
    json::Writer &W, const char *Key,
    const std::vector<std::pair<std::string, uint64_t>> &Entries) {
  W.key(Key).beginObject();
  for (const auto &[Name, Value] : Entries)
    W.key(Name).value(Value);
  W.endObject();
}

std::string service::renderResponse(const Response &R) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("schema").value(ProtocolSchema);
  W.key("id").value(R.Id);
  W.key("status").value(R.Status);
  W.key("hash").value(R.Hash);
  W.key("cached").value(R.Cached);
  W.key("limits_hit").value(R.LimitsHit);
  W.key("wall_ns").value(R.WallNs);
  W.key("rollbacks").value(R.Rollbacks);
  if (R.RetryAfterMs != 0)
    W.key("retry_after_ms").value(R.RetryAfterMs);
  W.key("blocks_before").value(R.BlocksBefore);
  W.key("blocks_after").value(R.BlocksAfter);
  W.key("instrs_before").value(R.InstrsBefore);
  W.key("instrs_after").value(R.InstrsAfter);
  if (!R.Error.empty())
    W.key("error").value(R.Error);
  W.key("program").value(R.Program);
  appendCountMap(W, "counters", R.Counters);
  appendCountMap(W, "remarks", R.RemarkKinds);
  W.endObject();
  return Out;
}

bool service::parseResponse(const std::string &Line, Response &Out,
                            std::string *Err) {
  std::string JsonErr;
  std::unique_ptr<json::Value> V = json::parse(Line, &JsonErr);
  if (!V || !V->isObject()) {
    if (Err)
      *Err = V ? "response is not a JSON object"
               : ("malformed JSON: " + JsonErr);
    return false;
  }
  std::string Schema = V->getString("schema");
  if (Schema != ProtocolSchema) {
    if (Err)
      *Err = "schema is '" + Schema + "', expected '" + ProtocolSchema + "'";
    return false;
  }
  Out = Response();
  Out.Id = V->getU64("id");
  Out.Status = V->getString("status");
  Out.Hash = V->getString("hash");
  Out.Error = V->getString("error");
  Out.Program = V->getString("program");
  if (const json::Value *C = V->find("cached"))
    Out.Cached = C->isBool() && C->boolean();
  if (const json::Value *L = V->find("limits_hit"))
    Out.LimitsHit = L->isBool() && L->boolean();
  Out.WallNs = V->getU64("wall_ns");
  Out.Rollbacks = V->getU64("rollbacks");
  Out.RetryAfterMs = V->getU64("retry_after_ms");
  Out.BlocksBefore = V->getU64("blocks_before");
  Out.BlocksAfter = V->getU64("blocks_after");
  Out.InstrsBefore = V->getU64("instrs_before");
  Out.InstrsAfter = V->getU64("instrs_after");
  auto ReadMap = [&](const char *Key,
                     std::vector<std::pair<std::string, uint64_t>> &Dst) {
    if (const json::Value *M = V->find(Key))
      if (M->isObject())
        for (const auto &[Name, Val] : M->members())
          Dst.emplace_back(Name, Val.asU64());
  };
  ReadMap("counters", Out.Counters);
  ReadMap("remarks", Out.RemarkKinds);
  if (Out.Status.empty()) {
    if (Err)
      *Err = "response has no status";
    return false;
  }
  return true;
}

uint64_t service::requestKey(const std::string &CanonicalProgram,
                             const Request &R) {
  // One flat identity string: the canonical text plus every knob that can
  // change the answer.  '\n' separators cannot occur inside the knobs.
  std::string Id = CanonicalProgram;
  Id += '\n';
  Id += R.Passes.empty() ? "uniform" : R.Passes;
  Id += '\n';
  Id += R.LimitsSpec;
  Id += '\n';
  Id += R.Guarded ? 'g' : 'u';
  return fleet::fnv1a64(Id);
}

uint64_t service::backoffDelayMs(unsigned Attempt, uint64_t BaseMs,
                                 uint64_t CapMs, uint64_t Seed) {
  if (BaseMs == 0)
    BaseMs = 1;
  // Exponential window, capped.
  uint64_t Window = BaseMs;
  for (unsigned I = 0; I < Attempt && Window < CapMs; ++I)
    Window *= 2;
  if (CapMs != 0 && Window > CapMs)
    Window = CapMs;
  // Deterministic jitter in [Window/2, Window): a splitmix64 step over
  // (Seed, Attempt) — reproducible for tests, decorrelated across
  // clients.
  uint64_t X = Seed ^ (0x9e3779b97f4a7c15ull * (Attempt + 1));
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ull;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebull;
  X ^= X >> 31;
  uint64_t Half = Window / 2;
  if (Half == 0)
    return Window;
  return Half + X % (Window - Half);
}

//===----------------------------------------------------------------------===//
// ResultCache
//===----------------------------------------------------------------------===//

bool ResultCache::lookup(uint64_t Key, Response &Out) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Order.splice(Order.begin(), Order, It->second.It);
  Out = It->second.R;
  Out.Cached = true;
  Hits.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::insert(uint64_t Key, const Response &R) {
  if (Capacity == 0)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Map.find(Key);
  if (It != Map.end()) {
    It->second.R = R;
    Order.splice(Order.begin(), Order, It->second.It);
    return;
  }
  Order.push_front(Key);
  Map[Key] = Entry{R, Order.begin()};
  while (Map.size() > Capacity) {
    Map.erase(Order.back());
    Order.pop_back();
  }
}

size_t ResultCache::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Map.size();
}

//===----------------------------------------------------------------------===//
// Engine
//===----------------------------------------------------------------------===//

Response Engine::overloadedResponse(uint64_t Id) const {
  Response R;
  R.Id = Id;
  R.Status = "overloaded";
  R.Error = "admission queue full (" + std::to_string(L.QueueCapacity) +
            " in flight); retry later";
  R.RetryAfterMs = L.RetryAfterMs ? L.RetryAfterMs : 1;
  return R;
}

Response Engine::oversizedResponse(uint64_t Id) const {
  Response R;
  R.Id = Id;
  R.Status = "oversized";
  R.Error = "request frame exceeds " + std::to_string(L.MaxRequestBytes) +
            " bytes";
  return R;
}

Response Engine::handle(const Request &Req, std::atomic<bool> *Cancel) {
  Response Resp;
  Resp.Id = Req.Id;
  const auto T0 = std::chrono::steady_clock::now();
  auto ElapsedMs = [&T0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - T0)
        .count();
  };
  auto Canceled = [Cancel] {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  };

  // One isolated telemetry session per request: counters and remarks in
  // the response come from this run alone, never a neighbor's.
  telemetry::Session Job;
  telemetry::SessionScope Scope(Job);
  Job.remarks().setEnabled(true);

  auto Finish = [&] {
    Resp.WallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    Resp.Counters = Job.stats().counterEntries();
    static const remarks::Kind AllKinds[] = {
        remarks::Kind::Decompose,  remarks::Kind::Hoist,
        remarks::Kind::Eliminate,  remarks::Kind::SinkInit,
        remarks::Kind::DeleteInit, remarks::Kind::Reconstruct,
        remarks::Kind::Blocked,    remarks::Kind::Rollback};
    for (remarks::Kind K : AllKinds)
      if (uint64_t N = Job.remarks().countKind(K))
        Resp.RemarkKinds.emplace_back(remarks::kindName(K), N);
  };

  ParseResult P = parseProgram(Req.Source);
  if (!P.ok()) {
    Resp.Status = "bad_request";
    Resp.Error = "parse error: " + P.Error;
    Finish();
    return Resp;
  }
  FlowGraph Input = std::move(P.Graph);
  const std::string Canonical = printGraph(Input);
  Resp.Hash = fleet::hex16(fleet::fnv1a64(Canonical));
  Resp.BlocksBefore = Resp.BlocksAfter = Input.numBlocks();
  Resp.InstrsBefore = Resp.InstrsAfter = Input.numInstrs();

  const std::string PassSpec = Req.Passes.empty() ? "uniform" : Req.Passes;
  diag::Expected<std::vector<std::string>> Spec = parsePassSpec(PassSpec);
  if (!Spec.ok()) {
    Resp.Status = "bad_request";
    Resp.Error = Spec.diagnostic().render();
    Finish();
    return Resp;
  }
  PipelineLimits Limits;
  if (!Req.LimitsSpec.empty()) {
    diag::Expected<PipelineLimits> E = parseLimitsSpec(Req.LimitsSpec);
    if (!E.ok()) {
      Resp.Status = "bad_request";
      Resp.Error = E.diagnostic().render();
      Finish();
      return Resp;
    }
    Limits = *E;
  }
  // The service deadline folds into the pipeline wall budget; the
  // tighter of the two wins, so a request cannot ask its way past the
  // server's policy.
  if (L.DeadlineMs > 0.0 &&
      (Limits.MaxWallMs <= 0.0 || Limits.MaxWallMs > L.DeadlineMs))
    Limits.MaxWallMs = L.DeadlineMs;

  const uint64_t Key = requestKey(Canonical, Req);
  if (L.CacheEntries != 0 && Cache.lookup(Key, Resp)) {
    // The stored body (program bytes, counters, remark digest) is
    // byte-identical to the uncached run's; only identity and timing are
    // this request's own.
    Resp.Id = Req.Id;
    Resp.WallNs = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count());
    return Resp;
  }

  auto FailClean = [&](const char *Status, std::string Error) {
    // The contained-failure contract: the response carries the canonical
    // *input* — nothing half-transformed ever leaves the engine.
    Resp.Status = Status;
    Resp.Error = std::move(Error);
    Resp.Program = Canonical;
    Resp.BlocksAfter = Resp.BlocksBefore;
    Resp.InstrsAfter = Resp.InstrsBefore;
  };

  try {
    // Service-level fault hooks (see verify/FaultInjector.h): each one
    // simulates a worker gone wrong, and must surface as a response, not
    // process damage.
    if (fault::FaultInjector *FI = fault::FaultInjector::current()) {
      if (FI->armedFor(fault::FaultClass::SvcWorkerThrow) &&
          FI->fire(fault::FaultClass::SvcWorkerThrow))
        throw std::runtime_error("injected fault: svc-worker-throw");
      if (FI->armedFor(fault::FaultClass::SvcBadAlloc) &&
          FI->fire(fault::FaultClass::SvcBadAlloc))
        throw std::bad_alloc();
      if (FI->armedFor(fault::FaultClass::SvcSlowRequest) &&
          FI->fire(fault::FaultClass::SvcSlowRequest)) {
        // Wedge past the deadline (bounded, so a no-deadline config
        // cannot hang a test); the watchdog's cancel ends it early.
        double Budget = L.DeadlineMs > 0.0 ? L.DeadlineMs + 25.0 : 50.0;
        while (ElapsedMs() < Budget && !Canceled())
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (Canceled() || (L.DeadlineMs > 0.0 && ElapsedMs() > L.DeadlineMs)) {
      FailClean("timeout", "deadline exceeded before optimization started");
      Finish();
      return Resp;
    }

    ensureInstrIds(Input);
    PipelineOptions POpts;
    POpts.Guarded = Req.Guarded;
    POpts.Limits = Limits;
    POpts.Telemetry = &Job;
    POpts.Cancel = Cancel;
    // Per-worker context reuse: each worker thread owns one AmContext
    // for its whole lifetime; runPipeline resets it at every rebinding,
    // so only the arena/scratch capacity carries over — outputs are
    // byte-identical to a cold context.
    static thread_local AmContext WorkerCtx;
    POpts.Context = &WorkerCtx;

    PipelineResult R = runPipeline(Input, PassSpec, POpts);
    Resp.Rollbacks = R.RollbackCount;
    Resp.LimitsHit = R.LimitsExhausted;
    if (!R.ok() && !R.LimitsExhausted) {
      FailClean("error", R.Diag.empty() ? R.Error : R.Diag.render());
    } else if (R.LimitsExhausted) {
      // Deadline-driven exhaustion (watchdog cancel, or the folded wall
      // budget at/after the deadline) is a timeout; every other budget
      // is a limits stop.
      bool Deadline =
          Canceled() || (L.DeadlineMs > 0.0 && ElapsedMs() >= L.DeadlineMs);
      FailClean(Deadline ? "timeout" : "limits", R.Diag.render());
    } else {
      Resp.Status = R.RollbackCount != 0 ? "rolled_back" : "ok";
      Resp.Program = printGraph(R.Graph);
      Resp.BlocksAfter = R.Graph.numBlocks();
      Resp.InstrsAfter = R.Graph.numInstrs();
    }
  } catch (const std::bad_alloc &) {
    FailClean("resource_exhausted", "allocation failed (std::bad_alloc)");
  } catch (const std::exception &E) {
    FailClean("error", std::string("worker exception: ") + E.what());
  } catch (...) {
    FailClean("error", "unknown worker exception");
  }

  Finish();
  if (Resp.Status == "ok" && L.CacheEntries != 0)
    Cache.insert(Key, Resp);
  return Resp;
}

fleet::JobEvent service::responseEvent(const Response &R, uint64_t Index) {
  fleet::JobEvent E;
  E.Index = Index;
  E.Name = "req:" + std::to_string(R.Id);
  E.Hash = R.Hash;
  E.Preset = "serve";
  E.Status = R.Status;
  E.Error = R.Error;
  E.WallNs = R.WallNs;
  E.Rollbacks = R.Rollbacks;
  E.LimitsHit = R.LimitsHit;
  E.BlocksBefore = R.BlocksBefore;
  E.BlocksAfter = R.BlocksAfter;
  E.InstrsBefore = R.InstrsBefore;
  E.InstrsAfter = R.InstrsAfter;
  E.Counters = R.Counters;
  E.RemarkKinds = R.RemarkKinds;
  return E;
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

struct Server::Impl {
  explicit Impl(const ServerOptions &O) : Opts(O) {}

  ServerOptions Opts;
  std::atomic<bool> Draining{false};
  int WakePipe[2] = {-1, -1};
  int ListenFd = -1;

  // Admission slots: bounds queued-plus-running requests.
  std::mutex AdmitMu;
  unsigned InFlight = 0;

  // Watchdog registry of running requests.
  struct Flight {
    std::chrono::steady_clock::time_point Deadline;
    std::shared_ptr<std::atomic<bool>> Cancel;
  };
  std::mutex FlightMu;
  std::unordered_map<uint64_t, Flight> Flights;
  uint64_t NextFlight = 0;
  std::thread Watchdog;
  std::atomic<bool> StopWatchdog{false};

  // Event log and drain-time rollup.
  std::mutex EvMu;
  std::ofstream EventsOut;
  std::optional<fleet::EventLogWriter> EvWriter;
  std::vector<fleet::JobEvent> Events;

  std::atomic<uint64_t> Accepted{0}, Completed{0}, Shed{0}, Oversized{0},
      BadFrames{0}, Seq{0};

  std::mutex ConnMu;
  std::vector<int> OpenConns;

  bool tryAdmit(unsigned Capacity) {
    std::lock_guard<std::mutex> Lock(AdmitMu);
    if (Capacity != 0 && InFlight >= Capacity)
      return false;
    ++InFlight;
    return true;
  }
  void release() {
    std::lock_guard<std::mutex> Lock(AdmitMu);
    --InFlight;
  }

  uint64_t registerFlight(double DeadlineMs,
                          const std::shared_ptr<std::atomic<bool>> &Cancel) {
    std::lock_guard<std::mutex> Lock(FlightMu);
    uint64_t Id = NextFlight++;
    Flight F;
    F.Cancel = Cancel;
    F.Deadline = std::chrono::steady_clock::now() +
                 std::chrono::microseconds(static_cast<int64_t>(
                     DeadlineMs > 0.0 ? DeadlineMs * 1000.0 : 0.0));
    if (DeadlineMs > 0.0)
      Flights.emplace(Id, std::move(F));
    return Id;
  }
  void unregisterFlight(uint64_t Id) {
    std::lock_guard<std::mutex> Lock(FlightMu);
    Flights.erase(Id);
  }

  void watchdogLoop() {
    while (!StopWatchdog.load(std::memory_order_relaxed)) {
      {
        std::lock_guard<std::mutex> Lock(FlightMu);
        auto Now = std::chrono::steady_clock::now();
        for (auto &[Id, F] : Flights)
          if (Now >= F.Deadline)
            F.Cancel->store(true, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  void recordEvent(const Response &R, uint64_t Index) {
    fleet::JobEvent E = responseEvent(R, Index);
    std::lock_guard<std::mutex> Lock(EvMu);
    if (EvWriter)
      EvWriter->append(E);
    Events.push_back(std::move(E));
  }

  void serveStream(Engine &Eng, threads::ThreadPool &Pool, int InFd, int OutFd,
                   int WakeFd);
};

Server::Server(const ServerOptions &Opts)
    : I(std::make_unique<Impl>(Opts)), Eng(Opts.Limits) {}

Server::~Server() = default;

void Server::requestDrain() {
  I->Draining.store(true, std::memory_order_relaxed);
  if (I->WakePipe[1] >= 0) {
    char C = 'd';
    ipc::writeFull(I->WakePipe[1], &C, 1);
  }
}

Server::Stats Server::stats() const {
  Stats S;
  S.Accepted = I->Accepted.load();
  S.Completed = I->Completed.load();
  S.Shed = I->Shed.load();
  S.Oversized = I->Oversized.load();
  S.BadFrames = I->BadFrames.load();
  return S;
}

std::vector<fleet::JobEvent> Server::takeEvents() {
  std::lock_guard<std::mutex> Lock(I->EvMu);
  return std::move(I->Events);
}

/// One connection's request loop, shared by socket connections (InFd ==
/// OutFd == the connection) and stdio mode (fd 0 -> fd 1).  Returns when
/// the peer closes, the frame stream errors, or drain pokes the wake fd.
void Server::Impl::serveStream(Engine &Eng, threads::ThreadPool &Pool,
                               int InFd, int OutFd, int WakeFd) {
  Impl &I = *this;
  ipc::LineReader Reader(InFd, Eng.limits().MaxRequestBytes);
  if (WakeFd >= 0)
    Reader.setWakeFd(WakeFd);
  auto WriteMu = std::make_shared<std::mutex>();
  std::vector<std::future<void>> Pending;
  auto Respond = [&](const Response &R) {
    std::lock_guard<std::mutex> Lock(*WriteMu);
    ipc::writeLine(OutFd, renderResponse(R));
  };

  std::string Line;
  for (;;) {
    ipc::LineReader::Status S = Reader.readLine(Line);
    if (S == ipc::LineReader::Status::Eof ||
        S == ipc::LineReader::Status::Error)
      break;
    if (S == ipc::LineReader::Status::TooLong) {
      // The frame was discarded before parsing, so its id is unknown.
      I.Oversized.fetch_add(1, std::memory_order_relaxed);
      Respond(Eng.oversizedResponse(0));
      continue;
    }
    if (Line.empty())
      continue;
    Request Req;
    std::string Err;
    if (!parseRequest(Line, Req, &Err)) {
      I.BadFrames.fetch_add(1, std::memory_order_relaxed);
      Response R;
      R.Status = "bad_request";
      R.Error = Err;
      Respond(R);
      continue;
    }
    if (I.Draining.load(std::memory_order_relaxed)) {
      // Drain sheds instead of queueing: the client's backoff retries
      // land on the replacement server.
      I.Shed.fetch_add(1, std::memory_order_relaxed);
      Respond(Eng.overloadedResponse(Req.Id));
      continue;
    }
    if (!I.tryAdmit(Eng.limits().QueueCapacity)) {
      I.Shed.fetch_add(1, std::memory_order_relaxed);
      Respond(Eng.overloadedResponse(Req.Id));
      continue;
    }
    I.Accepted.fetch_add(1, std::memory_order_relaxed);
    uint64_t Index = I.Seq.fetch_add(1, std::memory_order_relaxed);
    auto Cancel = std::make_shared<std::atomic<bool>>(false);
    uint64_t FlightId = I.registerFlight(Eng.limits().DeadlineMs, Cancel);
    Pending.push_back(Pool.submit([&I, &Eng, Req = std::move(Req), Cancel,
                                   FlightId, Index, WriteMu, OutFd] {
      Response R = Eng.handle(Req, Cancel.get());
      I.unregisterFlight(FlightId);
      I.release();
      I.recordEvent(R, Index);
      I.Completed.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> Lock(*WriteMu);
        // A vanished client is its own problem; EPIPE is not ours.
        ipc::writeLine(OutFd, renderResponse(R));
      }
      if (I.Opts.Verbose)
        std::fprintf(stderr, "amserved: req %llu -> %s (%llu ns)\n",
                     static_cast<unsigned long long>(R.Id),
                     R.Status.c_str(),
                     static_cast<unsigned long long>(R.WallNs));
    }));
    // Prune settled futures so a long connection does not accumulate.
    if (Pending.size() >= 64) {
      std::vector<std::future<void>> Live;
      for (std::future<void> &F : Pending)
        if (F.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
          Live.push_back(std::move(F));
        else
          F.get();
      Pending = std::move(Live);
    }
  }
  // In-flight requests of this connection finish (or time out via the
  // watchdog) before the stream closes.
  for (std::future<void> &F : Pending)
    F.get();
}

int Server::run() {
  ipc::ignoreSigpipe();
  if (::pipe(I->WakePipe) != 0) {
    std::fprintf(stderr, "amserved: cannot create wake pipe\n");
    return 1;
  }
  if (!I->Opts.EventsPath.empty()) {
    I->EventsOut.open(I->Opts.EventsPath);
    if (!I->EventsOut) {
      std::fprintf(stderr, "amserved: cannot open events log '%s'\n",
                   I->Opts.EventsPath.c_str());
      return 1;
    }
    I->EvWriter.emplace(I->EventsOut);
    // A daemon does not know its job count up front; 0 declares "stream"
    // (validators pass an explicit --jobs).
    I->EvWriter->writeHeader("(per-request)", 0);
  }

  unsigned Workers = I->Opts.Workers == 0 ? 1 : I->Opts.Workers;
  // Solves run inline on each request's worker (the ambatch fan-out
  // policy): parallelism is across requests, and a worker never blocks
  // on a pool it is part of.
  threads::setGlobalThreadCount(1);
  threads::ThreadPool Pool(Workers);
  I->Watchdog = std::thread([this] { I->watchdogLoop(); });

  int Rc = 0;
  if (I->Opts.SocketPath.empty()) {
    I->serveStream(Eng, Pool, STDIN_FILENO, STDOUT_FILENO, I->WakePipe[0]);
  } else {
    std::string Err;
    I->ListenFd = ipc::listenUnix(I->Opts.SocketPath, 64, &Err);
    if (I->ListenFd < 0) {
      std::fprintf(stderr, "amserved: %s\n", Err.c_str());
      Rc = 1;
    } else {
      std::vector<std::thread> ConnThreads;
      for (;;) {
        struct pollfd Fds[2];
        Fds[0].fd = I->ListenFd;
        Fds[0].events = POLLIN;
        Fds[1].fd = I->WakePipe[0];
        Fds[1].events = POLLIN;
        int PollRc;
        do {
          PollRc = ::poll(Fds, 2, -1);
        } while (PollRc < 0 && errno == EINTR);
        if (PollRc < 0)
          break;
        if (Fds[1].revents != 0 ||
            I->Draining.load(std::memory_order_relaxed))
          break;
        if (Fds[0].revents == 0)
          continue;
        int Conn = ipc::acceptRetry(I->ListenFd);
        if (Conn < 0) {
          if (I->Draining.load(std::memory_order_relaxed))
            break;
          continue;
        }
        {
          std::lock_guard<std::mutex> Lock(I->ConnMu);
          I->OpenConns.push_back(Conn);
        }
        ConnThreads.emplace_back([this, &Pool, Conn] {
          I->serveStream(Eng, Pool, Conn, Conn, -1);
          ::close(Conn);
          std::lock_guard<std::mutex> Lock(I->ConnMu);
          for (auto It = I->OpenConns.begin(); It != I->OpenConns.end(); ++It)
            if (*It == Conn) {
              I->OpenConns.erase(It);
              break;
            }
        });
      }
      // Drain: stop accepting, wake blocked readers, let every
      // connection finish its in-flight work.
      ::close(I->ListenFd);
      I->ListenFd = -1;
      ::unlink(I->Opts.SocketPath.c_str());
      {
        std::lock_guard<std::mutex> Lock(I->ConnMu);
        for (int Conn : I->OpenConns)
          ::shutdown(Conn, SHUT_RD);
      }
      for (std::thread &T : ConnThreads)
        T.join();
    }
  }

  I->StopWatchdog.store(true, std::memory_order_relaxed);
  I->Watchdog.join();
  {
    std::lock_guard<std::mutex> Lock(I->EvMu);
    if (I->EventsOut.is_open())
      I->EventsOut.flush();
  }
  ::close(I->WakePipe[0]);
  ::close(I->WakePipe[1]);
  I->WakePipe[0] = I->WakePipe[1] = -1;
  return Rc;
}
