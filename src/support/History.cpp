//===- support/History.cpp - Longitudinal run-history store --------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/History.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define AM_HIST_HAVE_UNISTD 1
#endif

using namespace am;
using namespace am::hist;

#define AM_STRINGIFY_(X) #X
#define AM_STRINGIFY(X) AM_STRINGIFY_(X)

std::string hist::gitSha() {
  if (const char *Env = std::getenv("AM_GIT_SHA"))
    if (*Env)
      return Env;
#ifdef AM_GIT_SHA
  return AM_STRINGIFY(AM_GIT_SHA);
#else
  return "unknown";
#endif
}

std::string hist::hostName() {
#ifdef AM_HIST_HAVE_UNISTD
  char Buf[256] = {0};
  if (gethostname(Buf, sizeof(Buf) - 1) == 0 && Buf[0])
    return Buf;
#endif
  return "unknown";
}

std::string hist::cpuModel() {
#ifdef __linux__
  std::ifstream In("/proc/cpuinfo");
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("model name", 0) == 0) {
      size_t Colon = Line.find(':');
      if (Colon != std::string::npos) {
        size_t Start = Line.find_first_not_of(" \t", Colon + 1);
        if (Start != std::string::npos)
          return Line.substr(Start);
      }
    }
  }
#endif
  return "unknown";
}

void hist::stampFingerprint(HistoryEntry &E) {
  E.TimeUnixMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  E.Host = hostName();
  E.Cpu = cpuModel();
#ifdef __VERSION__
  E.Compiler = __VERSION__;
#else
  E.Compiler = "unknown";
#endif
  E.GitSha = gitSha();
  E.HwThreads = std::thread::hardware_concurrency();
}

uint64_t hist::calibrationSpin(uint64_t Iters) {
  uint64_t X = 0x9e3779b97f4a7c15ull, Acc = 0;
  for (uint64_t I = 0; I < Iters; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    Acc += X;
  }
  return Acc;
}

uint64_t hist::measureCalibrationSpin(unsigned Reps, uint64_t Iters) {
  if (Reps == 0)
    Reps = 1;
  std::vector<uint64_t> Samples;
  Samples.reserve(Reps);
  volatile uint64_t Sink = 0; // keep the spin observable
  for (unsigned R = 0; R < Reps; ++R) {
    auto T0 = std::chrono::steady_clock::now();
    Sink = Sink + calibrationSpin(Iters);
    Samples.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - T0)
            .count()));
  }
  std::sort(Samples.begin(), Samples.end());
  size_t N = Samples.size();
  return N % 2 ? Samples[N / 2] : (Samples[N / 2 - 1] + Samples[N / 2]) / 2;
}

void hist::appendHistoryJson(std::string &Out, const HistoryEntry &E) {
  json::Writer W(Out);
  W.beginObject();
  W.key("schema").value("amhist-v1");
  W.key("source").value(E.Source);
  W.key("time_unix_ms").value(E.TimeUnixMs);
  W.key("fingerprint").beginObject();
  W.key("host").value(E.Host);
  W.key("cpu").value(E.Cpu);
  W.key("compiler").value(E.Compiler);
  W.key("git_sha").value(E.GitSha);
  W.key("threads").value(E.HwThreads);
  W.key("solver_threads").value(E.SolverThreads);
  W.endObject();
  W.key("calib_ns").value(E.CalibNs);
  W.key("presets").beginObject();
  for (const auto &[Name, P] : E.Presets) {
    W.key(Name).beginObject();
    W.key("wall_ns").value(P.WallNs);
    W.key("mad_ns").value(P.MadNs);
    if (!P.Work.empty()) {
      W.key("work").beginObject();
      for (const auto &[K, V] : P.Work)
        W.key(K).value(V);
      W.endObject();
    }
    W.endObject();
  }
  W.endObject();
  W.key("counters").beginObject();
  for (const auto &[Name, V] : E.Counters)
    W.key(Name).value(V);
  W.endObject();
  if (E.HasAggregate) {
    W.key("aggregate").beginObject();
    W.key("jobs").value(E.AggJobs);
    W.key("hash").value(E.AggHash);
    W.key("skipped_lines").value(E.AggSkippedLines);
    W.key("status").beginObject();
    for (const auto &[S, N] : E.AggStatuses)
      W.key(S).value(N);
    W.endObject();
    W.endObject();
  }
  W.endObject();
}

bool hist::appendHistoryFile(const std::string &Path, const HistoryEntry &E,
                             std::string *Error) {
  std::ofstream Out(Path, std::ios::binary | std::ios::app);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for append";
    return false;
  }
  std::string Line;
  appendHistoryJson(Line, E);
  Out << Line << '\n';
  Out.flush();
  if (!Out.good()) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

namespace {

void readPairs(const json::Value &Obj,
               std::vector<std::pair<std::string, uint64_t>> &Out) {
  for (const auto &[Name, V] : Obj.members())
    if (V.isNumber())
      Out.emplace_back(Name, V.asU64());
}

bool parseEntry(const json::Value &V, HistoryEntry &E) {
  if (!V.isObject())
    return false;
  E.Source = V.getString("source");
  E.TimeUnixMs = V.getU64("time_unix_ms");
  if (const json::Value *F = V.find("fingerprint")) {
    E.Host = F->getString("host");
    E.Cpu = F->getString("cpu");
    E.Compiler = F->getString("compiler");
    E.GitSha = F->getString("git_sha", "unknown");
    E.HwThreads = F->getU64("threads");
    E.SolverThreads = F->getU64("solver_threads");
  }
  E.CalibNs = V.getU64("calib_ns");
  if (const json::Value *P = V.find("presets"); P && P->isObject())
    for (const auto &[Name, PV] : P->members()) {
      if (!PV.isObject())
        continue;
      PresetStat S;
      S.WallNs = PV.getU64("wall_ns");
      S.MadNs = PV.getU64("mad_ns");
      if (const json::Value *Wk = PV.find("work"))
        readPairs(*Wk, S.Work);
      E.Presets.emplace_back(Name, std::move(S));
    }
  if (const json::Value *C = V.find("counters"))
    readPairs(*C, E.Counters);
  if (const json::Value *A = V.find("aggregate"); A && A->isObject()) {
    E.HasAggregate = true;
    E.AggJobs = A->getU64("jobs");
    E.AggHash = A->getString("hash");
    E.AggSkippedLines = A->getU64("skipped_lines");
    if (const json::Value *S = A->find("status"))
      readPairs(*S, E.AggStatuses);
  }
  // An entry without a source is not a run record.
  return !E.Source.empty();
}

} // namespace

bool hist::readHistory(std::istream &In, HistoryFile &Out) {
  std::string Line;
  uint64_t LineNo = 0;
  bool SawValid = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    // getline strips '\n'; a line at EOF that was never terminated is a
    // partial record from a killed appender.
    bool Unterminated = In.eof();
    if (Line.empty())
      continue;
    std::string ParseError;
    std::unique_ptr<json::Value> V = json::parse(Line, &ParseError);
    if (!V || !V->isObject()) {
      ++Out.SkippedLines;
      Out.Warnings.push_back(
          "line " + std::to_string(LineNo) +
          (Unterminated ? ": ignoring partial trailing record ("
                        : ": ignoring malformed record (") +
          ParseError + ")");
      continue;
    }
    std::string Schema = V->getString("schema");
    if (Schema != "amhist-v1") {
      // The first well-formed line decides: a different schema means the
      // file is something else (an event log, an aggregate) — refuse it
      // rather than silently reading zero entries.
      if (!SawValid)
        return false;
      ++Out.SkippedLines;
      Out.Warnings.push_back("line " + std::to_string(LineNo) +
                             ": ignoring record with schema '" + Schema +
                             "'");
      continue;
    }
    HistoryEntry E;
    if (!parseEntry(*V, E)) {
      ++Out.SkippedLines;
      Out.Warnings.push_back("line " + std::to_string(LineNo) +
                             ": ignoring record without a source");
      continue;
    }
    SawValid = true;
    Out.Entries.push_back(std::move(E));
  }
  return true;
}

bool hist::readHistoryFile(const std::string &Path, HistoryFile &Out,
                           std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  if (!readHistory(In, Out)) {
    if (Error)
      *Error = "'" + Path + "' is not an amhist-v1 history (first record "
               "announces a different schema)";
    return false;
  }
  return true;
}

void hist::sortByTime(HistoryFile &H) {
  std::stable_sort(H.Entries.begin(), H.Entries.end(),
                   [](const HistoryEntry &A, const HistoryEntry &B) {
                     return A.TimeUnixMs < B.TimeUnixMs;
                   });
}
