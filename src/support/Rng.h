//===- support/Rng.h - Seeded random utilities ------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thin, deterministic wrapper over std::mt19937_64 used by the random
/// program generators and the property tests.  All randomness in the
/// library flows through explicit seeds so every test and benchmark is
/// reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_RNG_H
#define AM_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>
#include <random>

namespace am {

/// Deterministic random source.  Construct with a seed; identical seeds
/// yield identical streams on every platform.
class Rng {
public:
  explicit Rng(uint64_t Seed) : Engine(Seed) {}

  /// Uniform integer in [Lo, Hi] inclusive.  Requires Lo <= Hi.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Engine);
  }

  /// Uniform index in [0, N).  Requires N > 0.
  size_t index(size_t N) {
    assert(N > 0 && "index over empty set");
    return static_cast<size_t>(range(0, static_cast<int64_t>(N) - 1));
  }

  /// Bernoulli draw: true with probability \p P (clamped to [0,1]).
  bool chance(double P) {
    return std::uniform_real_distribution<double>(0.0, 1.0)(Engine) < P;
  }

  /// Raw 64-bit draw (e.g. to derive child seeds).
  uint64_t next() { return Engine(); }

private:
  std::mt19937_64 Engine;
};

} // namespace am

#endif // AM_SUPPORT_RNG_H
