//===- support/ThreadPool.h - Fixed-size worker pool -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size worker pool for the batch-parallel dataflow solves: the
/// transposed multi-pattern solver partitions the Table 1-3 problems into
/// 64-pattern word slices and drains each slice's fixpoint independently
/// (see dfa/MultiPattern.h).  The pool is deliberately minimal — fixed
/// workers, FIFO queue, futures with exception propagation — because the
/// tasks it runs are coarse (one slice fixpoint each) and the determinism
/// contract forbids anything schedule-dependent from leaking out of them.
///
/// Telemetry contract: submit() captures the *submitting* thread's
/// telemetry session and installs it around the task, so worker-side
/// AM_STAT_* updates land in the owning session's registry (whose
/// instruments are atomic and safe to share).  The session profiler is
/// NOT thread-safe; workers that want profiling install a private
/// profiler via prof::OverrideScope and the caller merges the trees
/// deterministically after the join (see support/Profiler.h).
///
/// Thread-count policy, used by every tool and the pipeline:
///
///   * `--threads=N` / `--threads=max` → setGlobalThreadCount();
///   * otherwise the AM_THREADS environment variable ("N" or "max");
///   * otherwise 1 — and a pool of one worker runs every task inline on
///     the submitting thread, so the default build has no threads at all.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_THREADPOOL_H
#define AM_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace am::threads {

/// Number of hardware threads, never 0.
unsigned hardwareConcurrency();

/// Parses a thread-count spec: a positive decimal ("4") or "max" (the
/// hardware concurrency).  Returns 0 and fills \p Error on bad input.
unsigned parseThreadSpec(const std::string &Spec, std::string *Error = nullptr);

/// The process-wide effective thread count: the last setGlobalThreadCount
/// value if one was set, else AM_THREADS from the environment (parsed
/// once; invalid values fall back to 1), else 1.
unsigned globalThreadCount();

/// Overrides the global thread count (0 restores the environment/default
/// resolution).  Call at startup or between jobs, not while solves run.
void setGlobalThreadCount(unsigned N);

/// A fixed pool of \p Workers threads.  With Workers <= 1 no thread is
/// ever created and submit()/parallelFor() run tasks inline on the
/// calling thread — the N=1 collapse that keeps single-threaded runs
/// byte-for-byte identical to a build without this header.
class ThreadPool {
public:
  explicit ThreadPool(unsigned Workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workers() const { return NumWorkers; }

  /// Enqueues \p Task; the future reports completion and rethrows any
  /// exception the task let escape.  The submitting thread's telemetry
  /// session is installed around the task body.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Body(0) ... Body(N-1), partitioned into one contiguous index
  /// range per worker, and blocks until all complete.  Exceptions are
  /// collected and the one from the lowest range rethrown after the
  /// join, so a throwing body cannot leave stragglers running.  Inline
  /// (in index order, on the calling thread) when the pool has one
  /// worker or N <= 1.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Range form of parallelFor: Body(Begin, End) once per contiguous
  /// partition, so the body can set up per-range scratch instead of
  /// per-index.  Same inline collapse and exception policy.
  void parallelRanges(size_t N,
                      const std::function<void(size_t, size_t)> &Body);

private:
  void workerLoop();

  unsigned NumWorkers;
  std::vector<std::thread> Threads;
  std::queue<std::function<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable Ready;
  bool Stop = false;
};

/// The process pool, lazily built at globalThreadCount() workers and
/// rebuilt if that count changed since the last call.  Not for use while
/// another thread is inside it — resolve the pool once per solve.
ThreadPool &pool();

} // namespace am::threads

#endif // AM_SUPPORT_THREADPOOL_H
