//===- support/StringInterner.h - Stable string-to-id mapping --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings to dense, stable indices.  Variable names and similar
/// identifiers are interned once so the rest of the library can work with
/// small integer ids and index bit vectors directly.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_STRINGINTERNER_H
#define AM_SUPPORT_STRINGINTERNER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace am {

/// Maps strings to dense indices [0, size()) and back.  Indices are stable
/// for the lifetime of the interner; interning the same string twice yields
/// the same index.
class StringInterner {
public:
  /// Interns \p S, returning its dense index.
  uint32_t intern(std::string_view S) {
    auto It = Index.find(std::string(S));
    if (It != Index.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Strings.size());
    Strings.emplace_back(S);
    Index.emplace(Strings.back(), Id);
    return Id;
  }

  /// Returns the index of \p S, or UINT32_MAX if it was never interned.
  uint32_t lookup(std::string_view S) const {
    auto It = Index.find(std::string(S));
    return It == Index.end() ? UINT32_MAX : It->second;
  }

  /// Returns the string for index \p Id.
  const std::string &str(uint32_t Id) const {
    assert(Id < Strings.size() && "interner index out of range");
    return Strings[Id];
  }

  size_t size() const { return Strings.size(); }

private:
  std::vector<std::string> Strings;
  std::unordered_map<std::string, uint32_t> Index;
};

} // namespace am

#endif // AM_SUPPORT_STRINGINTERNER_H
