//===- support/EventLog.h - Streaming fleet event log ----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `amevents-v1` JSONL event log of a corpus run (tools/ambatch): one
/// header line, then one self-contained JSON record per optimization job
/// — program identity (name + FNV-1a hash of the canonical text), exit
/// status, wall and per-phase timings from the job's session profiler,
/// the machine-independent stats counters, and rollback/limit/remark
/// summaries.  Records are appended under a mutex and flushed per line,
/// so a run killed mid-corpus loses at most the record being written —
/// the reader tolerates (and warns about) a truncated final line.
///
/// The event log is the *raw* layer: it contains wall-clock times and is
/// therefore machine- and run-specific.  The deterministic cross-job
/// summary lives one layer up in support/Aggregate.h, which consumes
/// these records and deliberately drops everything time-like.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_EVENTLOG_H
#define AM_SUPPORT_EVENTLOG_H

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace am::fleet {

/// FNV-1a over \p Text — the program identity hash.  Stable across
/// platforms and runs; two programs with the same canonical
/// `printGraph` text collide by construction (they are the same input).
uint64_t fnv1a64(const std::string &Text);

/// \p V as 16 lowercase hex digits (the textual form of the hash —
/// stored as a string so 64-bit identities survive JSON double readers).
std::string hex16(uint64_t V);

/// One job's record.  Name/value vectors are kept name-sorted by the
/// producers (stats::Registry::counterEntries is; phases follow the
/// profiler's deterministic first-entry order).
struct JobEvent {
  uint64_t Index = 0;      ///< Position in corpus order.
  std::string Name;        ///< File stem or "gen:<seed>".
  std::string Hash;        ///< hex16(fnv1a64(canonical text)).
  std::string Preset;      ///< Corpus group: "examples", "gen", "file".
  std::string Status;      ///< "ok" | "rolled_back" | "limits" | "error".
  std::string Error;       ///< Parse/pipeline error text when Status=="error".
  uint64_t WallNs = 0;     ///< Whole-job wall time.
  uint64_t Rollbacks = 0;  ///< Passes rolled back by the guards.
  bool LimitsHit = false;  ///< A PipelineLimits budget stopped the run.
  uint64_t BlocksBefore = 0, BlocksAfter = 0;
  uint64_t InstrsBefore = 0, InstrsAfter = 0;
  /// Top-level profiler phases (children of the session root): name ->
  /// inclusive wall ns.
  std::vector<std::pair<std::string, uint64_t>> Phases;
  /// Machine-independent stats counters of the job's session.
  std::vector<std::pair<std::string, uint64_t>> Counters;
  /// Remark kind -> count (only kinds that fired).
  std::vector<std::pair<std::string, uint64_t>> RemarkKinds;
};

/// Serializes \p E as one amevents-v1 record (no trailing newline).
void appendEventJson(std::string &Out, const JobEvent &E);

/// Streaming JSONL writer.  append() is thread-safe and flushes each
/// record, honoring the at-most-one-lost-record contract.
class EventLogWriter {
public:
  explicit EventLogWriter(std::ostream &OS) : OS(OS) {}

  /// The header line: {"schema":"amevents-v1","passes":...,"jobs":N}.
  void writeHeader(const std::string &PassSpec, uint64_t Jobs);

  void append(const JobEvent &E);

private:
  std::ostream &OS;
  std::mutex Mu;
};

/// A parsed event log.
struct EventLogFile {
  std::string Schema;  ///< From the header line ("amevents-v1").
  std::string Passes;  ///< Pass spec the corpus ran.
  uint64_t JobsDeclared = 0;
  std::vector<JobEvent> Events;
  /// Malformed or truncated lines skipped while reading (the warnings
  /// name each one).
  uint64_t SkippedLines = 0;
  std::vector<std::string> Warnings;
};

/// Reads an amevents-v1 stream.  A partial (unterminated or unparseable)
/// final line — the signature of a killed run — is skipped with a
/// warning, not an error; malformed interior lines likewise.  False only
/// when the header is missing or announces a different schema.
bool readEventLog(std::istream &In, EventLogFile &Out);

/// readEventLog over a file path; false with \p Error on open failure or
/// header mismatch.
bool readEventLogFile(const std::string &Path, EventLogFile &Out,
                      std::string *Error = nullptr);

} // namespace am::fleet

#endif // AM_SUPPORT_EVENTLOG_H
