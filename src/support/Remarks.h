//===- support/Remarks.h - Optimization remarks & provenance ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide sink of typed *optimization remarks*: one record per
/// transformation decision — a decomposition, a hoist, an elimination, an
/// initialization sink, a deletion, a reconstruction, or a blocked motion
/// — each carrying the decision's position (stable instruction id, block,
/// index), the pass and AM fixpoint round that fired it, and the
/// *justifying dataflow facts* the paper's theorems hang the decision on
/// (e.g. the N-REDUNDANT bit for a rae kill, the latestness frontier
/// DELAYED ∧ frontier ∧ USABLE for a flush placement).
///
/// The remarks double as a provenance stream: every instruction carries a
/// stable id (Instr::Id) assigned on first observation, remarks that
/// create instructions record the parent ids they descend from, and
/// `Provenance` assembles the id-level lineage DAG — an assignment can be
/// followed from its original occurrence through decomposition and motion
/// across rounds to its final position or deleting remark.
///
/// Cost model mirrors support/Stats.h: collection is off by default and
/// every instrumentation site is gated on `AM_REMARKS_ENABLED()` — one
/// relaxed atomic load when the library is built normally, a compile-time
/// `false` (the whole site is dead code) under `-DAM_DISABLE_STATS`.
/// With collection off no instruction ids are assigned and no remark is
/// ever constructed, so optimized output is byte-identical to a build
/// without the subsystem.
///
/// The sink is thread-safe for add/read; the pass/round context is a
/// plain store because the optimizer pipeline is single-threaded (as are
/// the transformations themselves).
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_REMARKS_H
#define AM_SUPPORT_REMARKS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace am::remarks {

/// What kind of decision a remark records.
enum class Kind : uint8_t {
  Decompose,   ///< init: `x := t` split into `h := t; x := h` (or a branch
               ///< operand peeled into an initialization).
  Hoist,       ///< aht: an occurrence removed or an instance inserted at
               ///< the hoisting frontier (see Remark::Action).
  Eliminate,   ///< rae: a redundant occurrence deleted.
  SinkInit,    ///< flush: an initialization materialized at a latest point.
  DeleteInit,  ///< flush: an original initialization instance dropped.
  Reconstruct, ///< flush: a single temporary use rewritten back to its
               ///< expression.
  Blocked,     ///< aht: an occurrence that could not move (a preceding
               ///< blocker in its block).
  Rollback,    ///< guarded pipeline: a pass's result was discarded and its
               ///< input restored (the "reason" fact says why).
};

const char *kindName(Kind K);

/// Whether a Hoist remark records the removal of an occurrence or the
/// insertion of a new instance (None for every other kind).
enum class Action : uint8_t { None, Remove, Insert };

/// Where an inserted instruction was placed relative to its block.
enum class Placement : uint8_t {
  None,
  Entry,        ///< N-INSERT / N-INIT at the block entry.
  Exit,         ///< X-INSERT / X-INIT at the block exit.
  BeforeBranch, ///< X-INSERT placed before a non-blocking branch condition.
  FromPred,     ///< realized at this block's entry on behalf of a
                ///< branching predecessor whose condition blocks the
                ///< pattern (see Remark::FromBlock).
};

const char *placementName(Placement P);

/// One recorded decision.  Block ids are plain uint32_t (= am::BlockId)
/// so this header stays below the IR layer.
struct Remark {
  Kind K = Kind::Eliminate;
  Action Act = Action::None;
  /// Pass that fired the decision: "init", "rae", "aht" or "flush".
  std::string Pass;
  /// AM fixpoint round (1-based) the decision belongs to; 0 outside the
  /// fixpoint (init, flush, standalone passes).
  uint32_t Round = 0;
  /// Stable id of the subject instruction (the deleted occurrence, the
  /// inserted instance, the decomposed assignment, ...).
  uint32_t InstrId = 0;
  /// Block and instruction index of the subject *at decision time* — they
  /// index the graph snapshot the justifying analysis ran over, not the
  /// final program.
  uint32_t Block = 0xFFFFFFFFu;
  uint32_t InstrIndex = 0xFFFFFFFFu;
  /// True when the subject instruction leaves the program with this
  /// remark (its id appears in no later program state).
  bool Terminal = false;
  Placement Place = Placement::None;
  /// For Placement::FromPred: the branching predecessor whose exit
  /// insertion was realized here.
  uint32_t FromBlock = 0xFFFFFFFFu;
  /// The assignment pattern text, e.g. "x := a + b".
  std::string Pattern;
  /// The left-hand side / temporary name, for `--explain=<var>` lookup.
  std::string Var;
  /// Lineage: ids this decision's new instruction(s) descend from.
  std::vector<uint32_t> Parents;
  /// Ids introduced by this decision (Decompose records its two/one new
  /// instructions here; Hoist/SinkInit insertions use InstrId itself).
  std::vector<uint32_t> NewIds;
  /// The dataflow solve serial(s) the cited facts were read from
  /// (DataflowResult::SolveSerial); 0 when no solve was involved.
  uint64_t Solve = 0;
  /// The justifying facts, as (predicate, value) pairs — e.g.
  /// ("N-REDUNDANT", "1"), ("defined_by", "exit(b2)").
  std::vector<std::pair<std::string, std::string>> Facts;

  Remark &fact(std::string Name, std::string Value) {
    Facts.emplace_back(std::move(Name), std::move(Value));
    return *this;
  }
  /// First value recorded for fact \p Name, or "" if absent.
  const std::string &factValue(const std::string &Name) const;
};

/// One session's remark sink.  Mirrors stats::Registry: `get()` resolves
/// to the calling thread's current telemetry session, cheap to consult
/// when disabled; the process-default sink is never deallocated.
class Sink {
public:
  Sink();
  ~Sink();
  Sink(const Sink &) = delete;
  Sink &operator=(const Sink &) = delete;

  /// The calling thread's session sink (telemetry::Session::current).
  static Sink &get();

  /// Runtime switch.  When off (the default), add() drops remarks and
  /// instrumentation sites skip all remark construction.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drops every collected remark and resets the id counter, so a fresh
  /// run numbers instructions deterministically from 1.
  void clear();

  /// Allocates the next stable instruction id (never 0).
  uint32_t freshId() {
    return NextId.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends a remark (stamping the current pass/round when the remark
  /// carries none).  No-op when disabled.
  void add(Remark R);

  size_t size() const;
  uint64_t countKind(Kind K) const;

  /// Copy of the collected remarks, in emission order.
  std::vector<Remark> remarks() const;

  /// One JSON object: {"remarks": [{...}, ...]} — the `amopt
  /// --remarks=out.json` payload.
  std::string toJsonString() const;

  /// Current pass/round context, stamped onto remarks whose Pass is
  /// empty.  Set by the phase drivers (see PassScope); plain stores —
  /// the optimizer is single-threaded.
  void setPass(const char *P) { CurrentPass = P; }
  const char *pass() const { return CurrentPass; }
  void setRound(uint32_t R) { CurrentRound = R; }
  uint32_t round() const { return CurrentRound; }

private:
  struct Impl;
  Impl &impl() const { return *I; }

  std::unique_ptr<Impl> I;
  std::atomic<bool> Enabled{false};
  std::atomic<uint32_t> NextId{1};
  const char *CurrentPass = "";
  uint32_t CurrentRound = 0;
};

/// RAII enable/disable of collection (tests, amopt, the verifier).
class CollectionScope {
public:
  explicit CollectionScope(bool On = true) : Prev(Sink::get().enabled()) {
    Sink::get().setEnabled(On);
  }
  ~CollectionScope() { Sink::get().setEnabled(Prev); }
  CollectionScope(const CollectionScope &) = delete;
  CollectionScope &operator=(const CollectionScope &) = delete;

private:
  bool Prev;
};

/// RAII pass-name context: remarks added inside the scope default to this
/// pass name.
class PassScope {
public:
  explicit PassScope(const char *Pass) : Prev(Sink::get().pass()) {
    Sink::get().setPass(Pass);
  }
  ~PassScope() { Sink::get().setPass(Prev); }
  PassScope(const PassScope &) = delete;
  PassScope &operator=(const PassScope &) = delete;

private:
  const char *Prev;
};

//===----------------------------------------------------------------------===//
// Provenance DAG
//===----------------------------------------------------------------------===//

/// The id-level lineage DAG assembled from a remark stream: a node per
/// instruction id ever mentioned, an edge parent -> child whenever a
/// remark records that the child instruction descends from the parent
/// (Decompose subject -> NewIds; insertion Parents -> subject).
class Provenance {
public:
  static Provenance build(const std::vector<Remark> &Remarks);

  struct Node {
    uint32_t Id = 0;
    /// Indices into the remark stream mentioning this id (as subject or
    /// as a NewId), in emission order.
    std::vector<size_t> Events;
    std::vector<uint32_t> Parents;
    std::vector<uint32_t> Children;
  };

  const Node *node(uint32_t Id) const;

  /// Every id in the lineage of \p Id: its ancestors, itself, and all
  /// descendants of those ancestors (the connected "family" a reader
  /// needs to follow one assignment's history).  Sorted ascending.
  std::vector<uint32_t> family(uint32_t Id) const;

  /// All ids whose remarks carry Var == \p Var (subjects and NewIds).
  std::vector<uint32_t> idsForVar(const std::string &Var,
                                  const std::vector<Remark> &Remarks) const;

private:
  std::vector<Node> Nodes;           // sorted by Id
  const Node *find(uint32_t Id) const;
  Node &getOrCreate(uint32_t Id);
};

/// Renders the full lineage of \p Id as human-readable indented lines:
/// every remark touching the id's family in emission order, then the
/// final location of each surviving id.  \p FinalLocation maps an id to
/// its position in the final program ("" when the id was deleted); pass
/// nullptr to omit the final-position footer.
std::string explainId(uint32_t Id, const std::vector<Remark> &Remarks,
                      const Provenance &Prov,
                      const std::string (*FinalLocation)(uint32_t,
                                                         const void *) = nullptr,
                      const void *FinalCtx = nullptr);

} // namespace am::remarks

//===----------------------------------------------------------------------===//
// Instrumentation macros (mirror AM_STAT_*)
//===----------------------------------------------------------------------===//

#ifndef AM_DISABLE_STATS

/// True when remark collection is on; instrumentation sites wrap all
/// remark construction in `if (AM_REMARKS_ENABLED()) { ... }` so the
/// steady-state disabled cost is one relaxed atomic load.
#define AM_REMARKS_ENABLED() (::am::remarks::Sink::get().enabled())
/// Pass-name context for the rest of the enclosing scope.
#define AM_REMARK_PASS_SCOPE(Name)                                             \
  ::am::remarks::PassScope am_remark_pass_scope_(Name)
/// Stamps the AM fixpoint round onto subsequently added remarks.
#define AM_REMARK_SET_ROUND(N) (::am::remarks::Sink::get().setRound(N))

#else // AM_DISABLE_STATS — remarks compile out entirely.

#define AM_REMARKS_ENABLED() false
#define AM_REMARK_PASS_SCOPE(Name) do { } while (false)
#define AM_REMARK_SET_ROUND(N) do { } while (false)

#endif // AM_DISABLE_STATS

#endif // AM_SUPPORT_REMARKS_H
