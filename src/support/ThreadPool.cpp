//===- support/ThreadPool.cpp - Fixed-size worker pool ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"
#include "support/Telemetry.h"

#include <atomic>
#include <cstdlib>
#include <memory>

using namespace am;
using namespace am::threads;

unsigned am::threads::hardwareConcurrency() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

unsigned am::threads::parseThreadSpec(const std::string &Spec,
                                      std::string *Error) {
  if (Spec == "max")
    return hardwareConcurrency();
  if (Spec.empty() || Spec.find_first_not_of("0123456789") != std::string::npos) {
    if (Error)
      *Error = "expected a positive integer or 'max', got '" + Spec + "'";
    return 0;
  }
  unsigned long N = std::strtoul(Spec.c_str(), nullptr, 10);
  if (N == 0 || N > 4096) {
    if (Error)
      *Error = "thread count out of range (1..4096): '" + Spec + "'";
    return 0;
  }
  return static_cast<unsigned>(N);
}

namespace {
/// 0 = no explicit override; resolution falls through to AM_THREADS.
std::atomic<unsigned> ExplicitThreadCount{0};

unsigned envThreadCount() {
  static unsigned Cached = [] {
    const char *Env = std::getenv("AM_THREADS");
    if (!Env || !*Env)
      return 1u;
    unsigned N = parseThreadSpec(Env);
    return N == 0 ? 1u : N;
  }();
  return Cached;
}
} // namespace

unsigned am::threads::globalThreadCount() {
  unsigned N = ExplicitThreadCount.load(std::memory_order_relaxed);
  return N != 0 ? N : envThreadCount();
}

void am::threads::setGlobalThreadCount(unsigned N) {
  ExplicitThreadCount.store(N, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(unsigned Workers) : NumWorkers(Workers == 0 ? 1 : Workers) {
  if (NumWorkers <= 1)
    return;
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stop = true;
  }
  Ready.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Ready.wait(Lock, [this] { return Stop || !Queue.empty(); });
      if (Queue.empty()) {
        if (Stop)
          return;
        continue;
      }
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  auto Promise = std::make_shared<std::promise<void>>();
  std::future<void> Fut = Promise->get_future();
  // Re-home the task under the submitting thread's telemetry session so
  // worker-side stat updates land in the owning registry (atomic, safe
  // to share).  The session must outlive the task — true for the
  // pipeline, whose SessionScope covers the whole job.
  telemetry::Session *Owner = &telemetry::Session::current();
  auto Run = [Promise, Owner, Task = std::move(Task)]() mutable {
    telemetry::SessionScope Scope(*Owner);
    try {
      Task();
      Promise->set_value();
    } catch (...) {
      Promise->set_exception(std::current_exception());
    }
  };
  if (NumWorkers <= 1) {
    Run();
    return Fut;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push(std::move(Run));
  }
  Ready.notify_one();
  return Fut;
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Body) {
  parallelRanges(N, [&Body](size_t Begin, size_t End) {
    for (size_t I = Begin; I < End; ++I)
      Body(I);
  });
}

void ThreadPool::parallelRanges(size_t N,
                                const std::function<void(size_t, size_t)> &Body) {
  if (N == 0)
    return;
  if (NumWorkers <= 1 || N == 1) {
    Body(0, N);
    return;
  }
  size_t NumRanges = std::min<size_t>(NumWorkers, N);
  std::vector<std::future<void>> Futures;
  Futures.reserve(NumRanges);
  for (size_t R = 0; R < NumRanges; ++R) {
    size_t Begin = N * R / NumRanges;
    size_t End = N * (R + 1) / NumRanges;
    Futures.push_back(submit([&Body, Begin, End] { Body(Begin, End); }));
  }
  // Join everything before rethrowing: a throwing body must not leave
  // other ranges running against state the caller is about to unwind.
  std::exception_ptr First;
  for (std::future<void> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}

ThreadPool &am::threads::pool() {
  static std::mutex PoolMutex;
  static std::unique_ptr<ThreadPool> Pool;
  unsigned Want = globalThreadCount();
  std::lock_guard<std::mutex> Lock(PoolMutex);
  if (!Pool || Pool->workers() != Want)
    Pool = std::make_unique<ThreadPool>(Want);
  return *Pool;
}
