//===- support/Html.cpp - Minimal HTML emission helpers --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Html.h"

using namespace am;

void html::appendEscaped(std::string &Out, const std::string &S) {
  for (char C : S) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    case '\'':
      Out += "&#39;";
      break;
    default:
      Out.push_back(C);
    }
  }
}

std::string html::escaped(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  appendEscaped(Out, S);
  return Out;
}

void html::appendTag(std::string &Out, const char *Tag, const std::string &Text,
                     const char *Cls) {
  Out += '<';
  Out += Tag;
  if (Cls && *Cls) {
    Out += " class=\"";
    Out += Cls;
    Out += '"';
  }
  Out += '>';
  appendEscaped(Out, Text);
  Out += "</";
  Out += Tag;
  Out += '>';
}
