//===- support/Profiler.h - Hierarchical scoped self-profiler --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hierarchical scoped self-profiler for the optimizer: every
/// `AM_PROF_SCOPE("phase")` opens a node in a phase tree keyed by the
/// stack of enclosing scopes, and the node accumulates inclusive wall
/// time, a call count, and the heap-allocation delta (bytes and
/// allocation count) observed while the scope was open.  The tree answers
/// the question the flat stats registry cannot: *where* does the time go
/// — parse vs. the rae/aht fixpoint vs. each Table 1-3 analysis vs. the
/// final flush — and what does each phase allocate.
///
/// Usage inside library code:
///
/// \code
///   void runHoistingPhase(...) {
///     AM_PROF_SCOPE("aht");
///     ...
///   }
/// \endcode
///
/// Cost model mirrors support/Stats.h: a scope costs two thread-local
/// loads and one relaxed atomic load when profiling is off (the common
/// case), and under `-DAM_DISABLE_STATS` the macro expands to nothing at
/// all.  When on, enter/leave each read the steady clock once and the two
/// process-wide allocation counters; total overhead over an uninstrumented
/// run stays below 5% because scopes wrap coarse phases, never per-bit
/// work.  The profiler never mutates the program, so optimized output is
/// byte-identical with profiling on, off, or compiled out.
///
/// Timestamps: every node additionally records the first-entry/last-exit
/// microsecond offsets on the *same* steady-clock epoch the Chrome tracer
/// uses (see trace::epochNowUs), so a phase tree and a `--trace` file from
/// the same run align span for span.
///
/// The profiler is per telemetry session (see support/Telemetry.h) and,
/// like the remark sink's pass/round context, assumes the optimizer
/// pipeline is single-threaded: enter/leave maintain a plain scope stack.
/// Concurrent jobs each install their own session and profile
/// independently.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_PROFILER_H
#define AM_SUPPORT_PROFILER_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace am::stats {
class Registry;
} // namespace am::stats

namespace am::prof {

//===----------------------------------------------------------------------===//
// Process-wide allocation accounting
//===----------------------------------------------------------------------===//

/// Cumulative bytes ever requested through `operator new` (monotonic;
/// deallocation is not subtracted — phase deltas of a monotonic counter
/// attribute allocation churn to the phase that caused it).  Always 0 when
/// allocation interposition is unavailable on this platform.
uint64_t allocatedBytes();

/// Cumulative number of `operator new` calls (monotonic, as above).
uint64_t allocationCount();

/// True when the build interposes `operator new` and the counters above
/// are live.
bool allocTrackingAvailable();

/// Peak resident set size of this process in bytes, via
/// `getrusage(RUSAGE_SELF)` where available; 0 elsewhere.
uint64_t peakRssBytes();

/// Publishes the memory gauges onto \p R: `mem.peak_rss_bytes`,
/// `mem.alloc_bytes` and `mem.alloc_count`.  Gauges that are unavailable
/// on this platform are simply not registered, so `--stats` output stays
/// honest rather than reporting zeros.
void recordMemoryGauges(stats::Registry &R);

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

/// The phase-tree profiler of one telemetry session.
class Profiler {
public:
  /// Index of the implicit root node (the session itself; never entered
  /// or left, carries no time).
  static constexpr uint32_t RootId = 0;

  struct Node {
    std::string Name;
    uint32_t Parent = RootId;
    /// Children in first-entry order — the order is a property of the
    /// program's control flow, so two runs over the same input produce
    /// the same tree shape.
    std::vector<uint32_t> Children;
    uint64_t Calls = 0;
    uint64_t WallNs = 0;     ///< Inclusive wall time over all calls.
    uint64_t AllocBytes = 0; ///< Heap bytes requested while open.
    uint64_t AllocCalls = 0; ///< operator-new calls while open.
    /// First-entry / last-exit offsets (µs) on the tracer's clock epoch.
    uint64_t FirstStartUs = 0;
    uint64_t LastEndUs = 0;
  };

  Profiler() { reset(); }
  Profiler(const Profiler &) = delete;
  Profiler &operator=(const Profiler &) = delete;

  /// The calling thread's session profiler (see telemetry::Session), or
  /// the thread-local override installed by OverrideScope — the hook
  /// worker threads use to profile into a private tree instead of the
  /// shared (non-thread-safe) session one.
  static Profiler &get();

  /// Installs \p P as this thread's profiler (nullptr removes the
  /// override and get() falls back to the session profiler).  Returns
  /// the previous override.  Prefer OverrideScope.
  static Profiler *setThreadOverride(Profiler *P);

  /// Runtime switch.  Off by default; Scope reads it once at entry.
  void setEnabled(bool On) { Enabled.store(On, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Drops every node and open frame (the root survives).
  void reset();

  /// Opens the child \p Name of the innermost open scope, creating the
  /// node on first entry.  \p Name is copied; dynamic names are fine.
  void enter(std::string_view Name);

  /// Closes the innermost open scope.  A leave() without a matching
  /// enter() is ignored — unbalanced instrumentation must never crash the
  /// optimizer it observes.
  void leave();

  /// Number of open scopes.
  size_t depth() const { return Stack.size(); }

  /// Nodes, index 0 is the root.  Stable across enter() calls.
  size_t numNodes() const { return Nodes.size(); }
  const Node &node(uint32_t Id) const { return Nodes[Id]; }

  /// The tree shape as one canonical string — names, call counts and
  /// structure, no times — e.g. `root{parse(1),uniform(1){init(1),am(1)}}`.
  /// Two runs over the same input must agree on this string exactly
  /// (tests/profiler_test.cpp locks it in).
  std::string treeShape() const;

  /// Folds \p Worker's phase tree (the children of its root) into the
  /// innermost open scope of this profiler (the root if none is open):
  /// call counts, wall time and allocation deltas add; FirstStartUs takes
  /// the earliest, LastEndUs the latest.  Children of every merged node
  /// are visited in *name-sorted* order, so the resulting tree shape
  /// depends only on the set of scopes the workers entered — never on
  /// thread scheduling — as long as the caller merges its workers in a
  /// fixed (e.g. batch-index) order.  \p Worker must be quiescent: no
  /// scope open, no other thread inside it.
  void merge(const Profiler &Worker);

  /// Collapsed-stack ("folded") rendering, one line per tree node:
  /// `parse 1234\nuniform;am;rae 5678\n` — exclusive nanoseconds per
  /// stack, the input format of flamegraph.pl / speedscope / inferno.
  std::string toCollapsedString() const;

  /// The full phase tree as one JSON object:
  /// {"schema":"amprof-v1","clock":"steady, shared with --trace",
  ///  "tree":{...recursive nodes...},"collapsed":"..."}.
  std::string toJsonString() const;

  /// Writes toJsonString() to \p Path.  False on I/O error.
  bool writeJsonFile(const std::string &Path) const;

private:
  struct Frame {
    uint32_t NodeId;
    uint64_t StartNs;
    uint64_t StartAllocBytes;
    uint64_t StartAllocCalls;
  };

  uint32_t childNamed(uint32_t Parent, std::string_view Name);
  void mergeNode(uint32_t DstParent, const Profiler &Src, uint32_t SrcId);

  std::vector<Node> Nodes;
  std::vector<Frame> Stack;
  std::atomic<bool> Enabled{false};
};

/// RAII thread-profiler override: while alive, AM_PROF_SCOPE on this
/// thread records into \p P instead of the session profiler.  The worker
/// pattern: give each parallel task its own Profiler, open scopes inside
/// the task, and after the join merge() the task profilers into the
/// session tree in task-index order.
class OverrideScope {
public:
  explicit OverrideScope(Profiler *P) : Prev(Profiler::setThreadOverride(P)) {}
  ~OverrideScope() { Profiler::setThreadOverride(Prev); }
  OverrideScope(const OverrideScope &) = delete;
  OverrideScope &operator=(const OverrideScope &) = delete;

private:
  Profiler *Prev;
};

/// RAII scope — the normal way in.  Captures the session profiler and its
/// enabled bit once at construction, so a scope stays balanced even if
/// the session or switch changes while it is open.
class Scope {
public:
  explicit Scope(std::string_view Name) : P(&Profiler::get()) {
    if (!P->enabled())
      P = nullptr;
    else
      P->enter(Name);
  }
  ~Scope() {
    if (P)
      P->leave();
  }
  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

private:
  Profiler *P;
};

} // namespace am::prof

//===----------------------------------------------------------------------===//
// Instrumentation macro (mirrors AM_STAT_* / AM_REMARKS_*)
//===----------------------------------------------------------------------===//

#ifndef AM_DISABLE_STATS

#define AM_PROF_CONCAT_IMPL(A, B) A##B
#define AM_PROF_CONCAT(A, B) AM_PROF_CONCAT_IMPL(A, B)
/// Profiles the rest of the enclosing scope as phase \p Name.
#define AM_PROF_SCOPE(Name)                                                    \
  ::am::prof::Scope AM_PROF_CONCAT(am_prof_scope_, __LINE__)(Name)

#else // AM_DISABLE_STATS — the scope does not exist at all.

#define AM_PROF_SCOPE(Name) do { } while (false)

#endif // AM_DISABLE_STATS

#endif // AM_SUPPORT_PROFILER_H
