//===- support/Ipc.h - EINTR-safe framed I/O and Unix sockets --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small POSIX layer under the service protocol (support/Service.h)
/// and the long-running tools: EINTR-safe read/write loops, a buffered
/// newline-framed reader with an oversized-line guard, Unix-domain
/// socket helpers, and SIGPIPE suppression.
///
/// Everything here retries `EINTR` — a daemon that installs signal
/// handlers (SIGTERM drain, see tools/amserved.cpp) must not treat an
/// interrupted syscall as a dead peer.  `ignoreSigpipe()` turns the
/// write-to-closed-peer signal (default action: process death) into a
/// plain `EPIPE` error return, so one disconnected client can never
/// kill a server mid-corpus.
///
/// The line reader enforces a maximum frame size: a peer that streams an
/// unterminated megabyte does not grow the buffer without bound.  On an
/// oversized line the reader reports `TooLong` once, then discards input
/// until the terminating newline — the connection stays usable, which is
/// what lets the service answer `oversized` instead of dropping the
/// client (see FaultClass::SvcOversizedRequest's test).
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_IPC_H
#define AM_SUPPORT_IPC_H

#include <cstddef>
#include <string>

namespace am::ipc {

/// Idempotently sets SIGPIPE to SIG_IGN so writes to a closed peer fail
/// with EPIPE instead of killing the process.  Call early in any tool
/// that writes to pipes or sockets it does not control.
void ignoreSigpipe();

/// read(2) retrying EINTR.  Returns bytes read (0 = EOF) or -1 on a real
/// error.
long readRetry(int Fd, void *Buf, size_t Len);

/// Writes all \p Len bytes, retrying EINTR and short writes.  False on a
/// real error (errno is left describing it).
bool writeFull(int Fd, const void *Buf, size_t Len);

/// Writes \p Line plus a terminating '\n' in one writeFull.
bool writeLine(int Fd, const std::string &Line);

/// Buffered newline-framed reader over a file descriptor.
class LineReader {
public:
  enum class Status {
    Line,    ///< \p Out holds one line (newline stripped).
    Eof,     ///< Clean end of stream; no partial line pending.
    TooLong, ///< Frame exceeded the cap; the line was discarded and the
             ///< stream resynchronized at the next newline.
    Error,   ///< read(2) failed (not EINTR — that is retried).
  };

  /// \p MaxLine of 0 means unlimited.
  explicit LineReader(int Fd, size_t MaxLine = 0)
      : Fd(Fd), MaxLine(MaxLine) {}

  /// Blocks until one of the Status conditions holds.  A final line
  /// without a trailing newline is returned as a Line, then Eof.
  Status readLine(std::string &Out);

  /// When set, readLine polls \p Fd alongside the data fd and treats it
  /// becoming readable as end-of-stream.  This is the drain path for
  /// streams that cannot be shutdown(2) from another thread (stdin): the
  /// drain writer pokes a self-pipe and the blocked reader wakes into a
  /// clean Eof instead of sitting in read(2) forever.
  void setWakeFd(int Fd) { WakeFd = Fd; }

private:
  int Fd;
  int WakeFd = -1;
  size_t MaxLine;
  std::string Buf;
  size_t Pos = 0;   ///< Consumed prefix of Buf.
  bool AtEof = false;
  bool Discarding = false; ///< Dropping an oversized frame's tail.
};

/// Creates, binds and listens on a Unix-domain stream socket at \p Path
/// (an existing socket file is unlinked first).  Returns the listening fd
/// or -1 with \p Err filled.
int listenUnix(const std::string &Path, int Backlog, std::string *Err);

/// accept(2) retrying EINTR.  Returns -1 when the listening socket was
/// closed or on a real error.
int acceptRetry(int ListenFd);

/// Connects to the Unix-domain socket at \p Path.  Returns the fd or -1
/// with \p Err filled.  Connection refusal is a normal, retryable
/// outcome for a client racing server startup or drain — the error text
/// says which it was.
int connectUnix(const std::string &Path, std::string *Err);

} // namespace am::ipc

#endif // AM_SUPPORT_IPC_H
