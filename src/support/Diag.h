//===- support/Diag.h - Recoverable diagnostics ----------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recoverable error model for the library's entry points.  A
/// `Diagnostic` is a structured, renderable description of what went wrong
/// (component, severity, message, optional source location, optional
/// notes); `Expected<T>` carries either a value or a Diagnostic.  The
/// parser, the pipeline's spec/limits parsers and the guarded pipeline all
/// report failures through this model instead of asserting, so malformed
/// input or internal inconsistency surfaces as a message with context
/// rather than a crash.
///
/// Diagnostics are plain values: cheap to construct, copy and hand across
/// layer boundaries, and rendered only when someone wants text.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_DIAG_H
#define AM_SUPPORT_DIAG_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace am::diag {

enum class Severity : uint8_t { Note, Warning, Error };

const char *severityName(Severity S);

/// One structured diagnostic.  `Component` names the subsystem that
/// produced it ("parser", "pipeline", "limits", "verifier", ...); Line/Col
/// are 1-based source coordinates, 0 when there is no source location.
struct Diagnostic {
  Severity Sev = Severity::Error;
  std::string Component;
  std::string Message;
  unsigned Line = 0;
  unsigned Col = 0;
  /// Extra context lines rendered as indented "note:" lines.
  std::vector<std::string> Notes;

  bool empty() const { return Message.empty(); }

  Diagnostic &note(std::string N) {
    Notes.push_back(std::move(N));
    return *this;
  }

  /// Renders as "component:line:col: error: message" (location and
  /// component omitted when absent), one indented note line per note.
  std::string render() const;

  static Diagnostic error(std::string Component, std::string Message,
                          unsigned Line = 0, unsigned Col = 0) {
    Diagnostic D;
    D.Sev = Severity::Error;
    D.Component = std::move(Component);
    D.Message = std::move(Message);
    D.Line = Line;
    D.Col = Col;
    return D;
  }
};

/// Either a value or the Diagnostic explaining why there is none.
/// Deliberately minimal: the library's entry points need "value or
/// located error", not a general monad.
template <typename T> class Expected {
public:
  Expected(T Value) : Val(std::move(Value)) {}
  Expected(Diagnostic D) : D(std::move(D)) {
    assert(!this->D.empty() && "error Expected needs a message");
  }

  bool ok() const { return Val.has_value(); }
  explicit operator bool() const { return ok(); }

  const T &operator*() const {
    assert(ok() && "dereferencing an error Expected");
    return *Val;
  }
  T &operator*() {
    assert(ok() && "dereferencing an error Expected");
    return *Val;
  }
  const T *operator->() const { return &**this; }
  T *operator->() { return &**this; }

  /// Moves the value out (valid once, after checking ok()).
  T take() {
    assert(ok() && "taking from an error Expected");
    return std::move(*Val);
  }

  const Diagnostic &diagnostic() const {
    assert(!ok() && "no diagnostic on a success Expected");
    return D;
  }

private:
  std::optional<T> Val;
  Diagnostic D;
};

} // namespace am::diag

#endif // AM_SUPPORT_DIAG_H
