//===- support/Trace.h - Structured Chrome-trace event tracer --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A structured event tracer that renders to the Chrome `trace_event`
/// JSON format, so a run of the optimizer can be opened in
/// `about:tracing` or https://ui.perfetto.dev and inspected span by span:
/// one span per pipeline pass, nested spans per dataflow solve, instant
/// events per AM fixpoint round.
///
/// Tracing is off by default and costs one relaxed atomic load per
/// call site when off.  Turn it on around a region:
///
/// \code
///   am::trace::start();
///   ...run passes...
///   std::string J = am::trace::stopToJson();   // or stopToFile(path)
/// \endcode
///
/// Inside instrumented code:
///
/// \code
///   am::trace::TraceSpan Span("dfa.solve");
///   Span.arg("bits", NumBits);      // attached when the span closes
///   ...
///   am::trace::instant("am.round", {{"eliminated", N}});
/// \endcode
///
/// Events carry steady-clock microsecond timestamps relative to
/// `start()`, a constant pid and the calling thread's id, which is
/// exactly what the Chrome viewer expects.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_TRACE_H
#define AM_SUPPORT_TRACE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace am::trace {

/// One key/value argument rendered into a span's "args" object.
struct Arg {
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  Arg(const char *Key, T Value)
      : Key(Key), Int(static_cast<int64_t>(Value)), IsInt(true) {}
  Arg(const char *Key, std::string Value)
      : Key(Key), Str(std::move(Value)), IsInt(false) {}
  Arg(const char *Key, const char *Value)
      : Key(Key), Str(Value), IsInt(false) {}

  const char *Key;
  int64_t Int = 0;
  std::string Str;
  bool IsInt;
};

/// True while events are being collected.  One relaxed atomic load.
bool enabled();

/// Microseconds since the tracer's timestamp origin (the most recent
/// `start()`).  The phase profiler (support/Profiler.h) stamps its nodes
/// with this clock, so a `--profile` tree and a `--trace` file from the
/// same run align span for span.  Before the first start() the origin is
/// the steady clock's own epoch; offsets are then only self-consistent,
/// not trace-aligned.
uint64_t epochNowUs();

/// Starts collecting (clears any previously collected events; resets the
/// timestamp origin).
void start();

/// Stops collecting and renders everything as a Chrome trace_event JSON
/// object: {"traceEvents": [...], "displayTimeUnit": "ms"}.
std::string stopToJson();

/// Stops collecting and writes the JSON to \p Path.  False on I/O error.
bool stopToFile(const std::string &Path);

/// Emits a zero-duration instant event (phase "i") when enabled.
void instant(const char *Name, std::initializer_list<Arg> Args = {});

/// RAII span: records a complete event ("ph":"X") from construction to
/// destruction.  A span constructed while tracing is disabled is inert,
/// including args added later.  \p Name must outlive the span (string
/// literals in practice).
class TraceSpan {
public:
  explicit TraceSpan(const char *Name);
  ~TraceSpan();
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches an argument, rendered when the span closes.
  void arg(const char *Key, int64_t Value);
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T> &&
                                                    !std::is_same_v<T, int64_t>>>
  void arg(const char *Key, T Value) {
    arg(Key, static_cast<int64_t>(Value));
  }
  void arg(const char *Key, const std::string &Value);

  /// Whether this particular span is recording.
  bool live() const { return Live; }

private:
  const char *Name;
  uint64_t StartUs = 0;
  std::vector<Arg> Args;
  bool Live;
};

/// RAII trace session bound to an output file: construction starts
/// collection, destruction (or an explicit close()) stops and writes the
/// file.  The session also registers a one-time `std::atexit` fallback
/// that flushes the registered file if the process exits while a session
/// is still open — so a pipeline that dies mid-run via exit() (a failed
/// assertion message path, an early fatal error) still leaves its trace
/// on disk instead of losing everything buffered.
class Session {
public:
  explicit Session(std::string Path);
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Stops collection and writes the file now.  Idempotent; returns
  /// false on I/O error (or when already closed).
  bool close();

  /// True until close() (or destruction).
  bool open() const { return Opened; }

private:
  std::string Path;
  bool Opened = false;
};

} // namespace am::trace

#endif // AM_SUPPORT_TRACE_H
