//===- support/EventLog.cpp - Streaming fleet event log ------------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/EventLog.h"
#include "support/Json.h"

#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>

using namespace am;
using namespace am::fleet;

uint64_t fleet::fnv1a64(const std::string &Text) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string fleet::hex16(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

void fleet::appendEventJson(std::string &Out, const JobEvent &E) {
  json::Writer W(Out);
  W.beginObject();
  W.key("index").value(E.Index);
  W.key("name").value(E.Name);
  W.key("hash").value(E.Hash);
  W.key("preset").value(E.Preset);
  W.key("status").value(E.Status);
  if (!E.Error.empty())
    W.key("error").value(E.Error);
  W.key("wall_ns").value(E.WallNs);
  W.key("rollbacks").value(E.Rollbacks);
  W.key("limits_hit").value(E.LimitsHit);
  W.key("blocks_before").value(E.BlocksBefore);
  W.key("blocks_after").value(E.BlocksAfter);
  W.key("instrs_before").value(E.InstrsBefore);
  W.key("instrs_after").value(E.InstrsAfter);
  W.key("phases").beginObject();
  for (const auto &[Name, Ns] : E.Phases)
    W.key(Name).value(Ns);
  W.endObject();
  W.key("counters").beginObject();
  for (const auto &[Name, V] : E.Counters)
    W.key(Name).value(V);
  W.endObject();
  W.key("remarks").beginObject();
  for (const auto &[Kind, N] : E.RemarkKinds)
    W.key(Kind).value(N);
  W.endObject();
  W.endObject();
}

void EventLogWriter::writeHeader(const std::string &PassSpec, uint64_t Jobs) {
  std::string Line;
  json::Writer W(Line);
  W.beginObject();
  W.key("schema").value("amevents-v1");
  W.key("passes").value(PassSpec);
  W.key("jobs").value(Jobs);
  W.endObject();
  std::lock_guard<std::mutex> Lock(Mu);
  OS << Line << '\n';
  OS.flush();
}

void EventLogWriter::append(const JobEvent &E) {
  // Serialize outside the lock; one write + flush per record keeps the
  // at-most-one-lost-record contract even when workers interleave.
  std::string Line;
  appendEventJson(Line, E);
  std::lock_guard<std::mutex> Lock(Mu);
  OS << Line << '\n';
  OS.flush();
}

namespace {

void readPairs(const json::Value &Obj,
               std::vector<std::pair<std::string, uint64_t>> &Out) {
  for (const auto &[Name, V] : Obj.members())
    if (V.isNumber())
      Out.emplace_back(Name, V.asU64());
}

bool parseEvent(const json::Value &V, JobEvent &E) {
  if (!V.isObject())
    return false;
  E.Index = V.getU64("index");
  E.Name = V.getString("name");
  E.Hash = V.getString("hash");
  E.Preset = V.getString("preset");
  E.Status = V.getString("status");
  E.Error = V.getString("error");
  E.WallNs = V.getU64("wall_ns");
  E.Rollbacks = V.getU64("rollbacks");
  if (const json::Value *L = V.find("limits_hit"))
    E.LimitsHit = L->isBool() && L->boolean();
  E.BlocksBefore = V.getU64("blocks_before");
  E.BlocksAfter = V.getU64("blocks_after");
  E.InstrsBefore = V.getU64("instrs_before");
  E.InstrsAfter = V.getU64("instrs_after");
  if (const json::Value *P = V.find("phases"))
    readPairs(*P, E.Phases);
  if (const json::Value *C = V.find("counters"))
    readPairs(*C, E.Counters);
  if (const json::Value *R = V.find("remarks"))
    readPairs(*R, E.RemarkKinds);
  return !E.Status.empty();
}

} // namespace

bool fleet::readEventLog(std::istream &In, EventLogFile &Out) {
  std::string Line;
  uint64_t LineNo = 0;
  bool SawHeader = false;
  while (std::getline(In, Line)) {
    ++LineNo;
    // getline strips '\n'; a line at EOF that was never terminated is a
    // partial record from a killed writer.
    bool Unterminated = In.eof();
    if (Line.empty())
      continue;
    std::string ParseError;
    std::unique_ptr<json::Value> V = json::parse(Line, &ParseError);
    if (!V || !V->isObject()) {
      ++Out.SkippedLines;
      Out.Warnings.push_back(
          "line " + std::to_string(LineNo) +
          (Unterminated ? ": ignoring partial trailing record ("
                        : ": ignoring malformed record (") +
          ParseError + ")");
      continue;
    }
    if (!SawHeader) {
      Out.Schema = V->getString("schema");
      if (Out.Schema != "amevents-v1")
        return false;
      Out.Passes = V->getString("passes");
      Out.JobsDeclared = V->getU64("jobs");
      SawHeader = true;
      continue;
    }
    JobEvent E;
    if (!parseEvent(*V, E)) {
      ++Out.SkippedLines;
      Out.Warnings.push_back("line " + std::to_string(LineNo) +
                             ": ignoring record without a status");
      continue;
    }
    Out.Events.push_back(std::move(E));
  }
  return SawHeader;
}

bool fleet::readEventLogFile(const std::string &Path, EventLogFile &Out,
                             std::string *Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  if (!readEventLog(In, Out)) {
    if (Error)
      *Error = "'" + Path + "' is not an amevents-v1 log (missing or " +
               "mismatched header)";
    return false;
  }
  return true;
}
