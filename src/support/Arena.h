//===- support/Arena.h - Bump-pointer arena allocator ----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for flat, rebuild-in-one-shot storage: the packed
/// bit matrices of the transposed solver and the flat instruction
/// snapshot allocate their backing arrays here, so a rebuild is one
/// pointer bump instead of per-row vector churn, and reset() reclaims
/// everything at once.  Only trivially-destructible element types are
/// allowed — nothing is ever destroyed element-wise.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_ARENA_H
#define AM_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace am::support {

class Arena {
public:
  explicit Arena(size_t SlabBytes = 64 * 1024) : SlabBytes(SlabBytes) {}

  /// Allocates uninitialized storage for \p N objects of \p T, aligned
  /// for T.  The pointer stays valid until reset() or destruction.
  template <typename T> T *allocate(size_t N) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T *>(allocateBytes(N * sizeof(T), alignof(T)));
  }

  /// Drops every allocation.  The largest slab is kept for reuse, so a
  /// steady-state rebuild of same-sized structures does not touch the
  /// heap at all.
  void reset() {
    if (Slabs.size() > 1) {
      // Keep only the biggest slab (the last one: slab sizes grow).
      Slabs.front() = std::move(Slabs.back());
      Slabs.resize(1);
    }
    if (!Slabs.empty())
      Slabs.front().Used = 0;
    TotalUsed = 0;
  }

  /// Bytes handed out since the last reset (excluding alignment pad).
  size_t bytesUsed() const { return TotalUsed; }

private:
  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size = 0;
    size_t Used = 0;
  };

  void *allocateBytes(size_t Bytes, size_t Align) {
    TotalUsed += Bytes;
    if (!Slabs.empty()) {
      Slab &S = Slabs.back();
      size_t Aligned = (S.Used + Align - 1) & ~(Align - 1);
      if (Aligned + Bytes <= S.Size) {
        S.Used = Aligned + Bytes;
        return S.Mem.get() + Aligned;
      }
    }
    size_t NewSize = SlabBytes;
    while (NewSize < Bytes + Align)
      NewSize *= 2;
    // Grow geometrically past what has been used so far, so R rebuilds
    // cost O(log R) slabs rather than one per rebuild.
    if (!Slabs.empty() && Slabs.back().Size * 2 > NewSize)
      NewSize = Slabs.back().Size * 2;
    Slab S;
    S.Mem = std::make_unique<char[]>(NewSize);
    S.Size = NewSize;
    uintptr_t Base = reinterpret_cast<uintptr_t>(S.Mem.get());
    size_t Pad = (Align - (Base & (Align - 1))) & (Align - 1);
    S.Used = Pad + Bytes;
    Slabs.push_back(std::move(S));
    return Slabs.back().Mem.get() + Pad;
  }

  size_t SlabBytes;
  size_t TotalUsed = 0;
  std::vector<Slab> Slabs;
};

} // namespace am::support

#endif // AM_SUPPORT_ARENA_H
