//===- support/BitVector.h - Word-packed dynamic bit set -------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, word-packed bit vector.  Every dataflow fact in this
/// library is a set of assignment or expression patterns represented as one
/// of these; the solvers rely on the bulk boolean operations being cheap
/// (one machine word per 64 patterns).
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_BITVECTOR_H
#define AM_SUPPORT_BITVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace am {

/// A dynamic bit set of fixed logical size with word-granular bulk
/// operations.  Unlike std::vector<bool> it exposes whole-set operations
/// (andNot, unionWith, ...) that the dataflow solvers need, and it keeps the
/// unused high bits of the last word zero so that equality and population
/// counts are word-wise.
class BitVector {
public:
  BitVector() = default;

  /// Creates a vector of \p NumBits bits, all set to \p Value.
  explicit BitVector(size_t NumBits, bool Value = false) { resize(NumBits, Value); }

  /// Number of logical bits.
  size_t size() const { return NumBits; }

  /// Returns true if no bit is set.
  bool none() const {
    for (uint64_t W : Words)
      if (W != 0)
        return false;
    return true;
  }

  /// Returns true if at least one bit is set.
  bool any() const { return !none(); }

  /// Returns true if every bit is set.
  bool all() const {
    if (NumBits == 0)
      return true;
    size_t Full = NumBits / 64;
    for (size_t I = 0; I < Full; ++I)
      if (Words[I] != ~uint64_t(0))
        return false;
    size_t Rem = NumBits % 64;
    if (Rem != 0 && Words[Full] != ((uint64_t(1) << Rem) - 1))
      return false;
    return true;
  }

  /// Number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  /// Word-level synonym for count(): the name the transposed solver and
  /// the bulk-op tests use.  One popcount per 64 bits; correct because
  /// the unused high bits of the last word are invariantly zero.
  size_t popcount() const { return count(); }

  //===--------------------------------------------------------------------===//
  // Word-granular access — the transposed ("bit-slice") solver views a
  // vector of patterns as its sequence of 64-pattern machine words, so it
  // can gather word columns across many vectors into a PackedBitMatrix
  // and scatter solved columns back.  The unused-high-bits-are-zero
  // invariant is maintained by setWord; readers may rely on it.
  //===--------------------------------------------------------------------===//

  /// Number of backing words, (size() + 63) / 64.
  size_t numWords() const { return Words.size(); }

  /// The \p WordIdx'th 64-bit word (bit i of the word is logical bit
  /// WordIdx * 64 + i).
  uint64_t word(size_t WordIdx) const {
    assert(WordIdx < Words.size() && "BitVector::word out of range");
    return Words[WordIdx];
  }

  /// Overwrites the \p WordIdx'th word.  Bits beyond size() in the last
  /// word are masked off, preserving the equality/popcount invariant.
  void setWord(size_t WordIdx, uint64_t W) {
    assert(WordIdx < Words.size() && "BitVector::setWord out of range");
    Words[WordIdx] = W;
    if (WordIdx + 1 == Words.size())
      clearUnusedBits();
  }

  /// Mask with the valid (in-size) bits of word \p WordIdx set: all-ones
  /// for full words, the partial tail mask for the last word of a
  /// non-multiple-of-64 vector.
  uint64_t wordMask(size_t WordIdx) const {
    assert(WordIdx < Words.size() && "BitVector::wordMask out of range");
    size_t Rem = NumBits % 64;
    if (WordIdx + 1 == Words.size() && Rem != 0)
      return (uint64_t(1) << Rem) - 1;
    return ~uint64_t(0);
  }

  /// Calls \p F(wordIdx, word) for every backing word in ascending order.
  template <typename Fn> void forEachWord(Fn F) const {
    for (size_t I = 0, E = Words.size(); I != E; ++I)
      F(I, Words[I]);
  }

  bool test(size_t Idx) const {
    assert(Idx < NumBits && "BitVector::test out of range");
    return (Words[Idx / 64] >> (Idx % 64)) & 1;
  }

  bool operator[](size_t Idx) const { return test(Idx); }

  void set(size_t Idx) {
    assert(Idx < NumBits && "BitVector::set out of range");
    Words[Idx / 64] |= uint64_t(1) << (Idx % 64);
  }

  void reset(size_t Idx) {
    assert(Idx < NumBits && "BitVector::reset out of range");
    Words[Idx / 64] &= ~(uint64_t(1) << (Idx % 64));
  }

  void set(size_t Idx, bool Value) {
    if (Value)
      set(Idx);
    else
      reset(Idx);
  }

  /// Sets every bit.
  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearUnusedBits();
  }

  /// Clears every bit.
  void resetAll() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Resets to \p NewSize bits, all false, reusing existing storage when
  /// the capacity suffices (the allocation-free way to re-issue a scratch
  /// vector in a hot loop).
  void clearAndResize(size_t NewSize) {
    NumBits = NewSize;
    Words.assign((NewSize + 63) / 64, 0);
  }

  /// Grows or shrinks to \p NewSize bits; new bits take \p Value.
  void resize(size_t NewSize, bool Value = false) {
    size_t OldSize = NumBits;
    NumBits = NewSize;
    Words.resize((NewSize + 63) / 64, Value ? ~uint64_t(0) : 0);
    if (Value && OldSize < NewSize) {
      // Set the tail bits of the formerly-last word.
      for (size_t I = OldSize; I < NewSize && I % 64 != 0; ++I)
        Words[I / 64] |= uint64_t(1) << (I % 64);
    }
    clearUnusedBits();
  }

  // The binary operations require matching sizes (asserted).  Release
  // builds clamp to the common word prefix and treat the missing bits of
  // the shorter operand as zero, so a size mismatch that slips past the
  // asserts stays in-bounds instead of reading off the end.

  /// In-place intersection.  Sizes must match.
  BitVector &operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    size_t Common = std::min(Words.size(), RHS.Words.size());
    for (size_t I = 0; I != Common; ++I)
      Words[I] &= RHS.Words[I];
    for (size_t I = Common, E = Words.size(); I != E; ++I)
      Words[I] = 0;
    return *this;
  }

  /// In-place union.  Sizes must match.
  BitVector &operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0, E = std::min(Words.size(), RHS.Words.size()); I != E;
         ++I)
      Words[I] |= RHS.Words[I];
    return *this;
  }

  /// In-place symmetric difference.  Sizes must match.
  BitVector &operator^=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0, E = std::min(Words.size(), RHS.Words.size()); I != E;
         ++I)
      Words[I] ^= RHS.Words[I];
    return *this;
  }

  /// In-place set difference: this &= ~RHS.  Sizes must match.
  BitVector &andNot(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0, E = std::min(Words.size(), RHS.Words.size()); I != E;
         ++I)
      Words[I] &= ~RHS.Words[I];
    return *this;
  }

  /// Compound-assignment name for andNot(), paired with |= and &= in the
  /// bulk-op surface (this &= ~RHS; sizes must match).
  BitVector &andNotAssign(const BitVector &RHS) { return andNot(RHS); }

  /// Bitwise complement of the logical bits.
  void flipAll() {
    for (uint64_t &W : Words)
      W = ~W;
    clearUnusedBits();
  }

  friend BitVector operator&(BitVector LHS, const BitVector &RHS) {
    LHS &= RHS;
    return LHS;
  }

  friend BitVector operator|(BitVector LHS, const BitVector &RHS) {
    LHS |= RHS;
    return LHS;
  }

  friend BitVector operator~(BitVector V) {
    V.flipAll();
    return V;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }

  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Returns true if this is a subset of \p RHS (sizes must match).
  bool isSubsetOf(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    size_t Common = std::min(Words.size(), RHS.Words.size());
    for (size_t I = 0; I != Common; ++I)
      if ((Words[I] & ~RHS.Words[I]) != 0)
        return false;
    for (size_t I = Common, E = Words.size(); I != E; ++I)
      if (Words[I] != 0)
        return false;
    return true;
  }

  /// Returns true if this and \p RHS share at least one set bit.
  bool intersects(const BitVector &RHS) const {
    assert(NumBits == RHS.NumBits && "size mismatch");
    for (size_t I = 0, E = std::min(Words.size(), RHS.Words.size()); I != E;
         ++I)
      if ((Words[I] & RHS.Words[I]) != 0)
        return true;
    return false;
  }

  /// Index of the first set bit, or size() if none.
  size_t findFirst() const { return findNext(0); }

  /// Index of the first set bit at or after \p From, or size() if none.
  size_t findNext(size_t From) const {
    if (From >= NumBits)
      return NumBits;
    size_t WordIdx = From / 64;
    uint64_t W = Words[WordIdx] & (~uint64_t(0) << (From % 64));
    while (true) {
      if (W != 0)
        return WordIdx * 64 + static_cast<size_t>(__builtin_ctzll(W));
      if (++WordIdx == Words.size())
        return NumBits;
      W = Words[WordIdx];
    }
  }

  /// Calls \p F(index) for every set bit in ascending order.  One word
  /// scan, no allocation — use this in hot loops; setBits() below remains
  /// for tests and printing.
  template <typename Fn> void forEachSetBit(Fn F) const {
    for (size_t WordIdx = 0, E = Words.size(); WordIdx != E; ++WordIdx) {
      uint64_t W = Words[WordIdx];
      while (W != 0) {
        size_t Bit = static_cast<size_t>(__builtin_ctzll(W));
        F(WordIdx * 64 + Bit);
        W &= W - 1;
      }
    }
  }

  /// Collects the indices of all set bits (ascending).
  std::vector<size_t> setBits() const {
    std::vector<size_t> Out;
    for (size_t I = findFirst(); I < NumBits; I = findNext(I + 1))
      Out.push_back(I);
    return Out;
  }

  /// Renders as a 0/1 string, bit 0 first (handy in test failures).
  std::string toString() const {
    std::string S;
    S.reserve(NumBits);
    for (size_t I = 0; I < NumBits; ++I)
      S.push_back(test(I) ? '1' : '0');
    return S;
  }

private:
  void clearUnusedBits() {
    size_t Rem = NumBits % 64;
    if (Rem != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << Rem) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace am

#endif // AM_SUPPORT_BITVECTOR_H
