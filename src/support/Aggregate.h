//===- support/Aggregate.h - Deterministic cross-job aggregation -*- C++-*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic summary of a corpus run (`amagg-v1`): per-counter
/// sums, min/max/mean and fixed-boundary log2 histograms with
/// p50/p95/p99 extraction, merged across jobs.  Aggregates are
/// *mergeable* — ambatch builds one per job and folds them together in
/// job-index order at the barrier — and contain only machine-independent
/// facts (counters, IR sizes, statuses, remark kinds; never wall times
/// or thread counts), so the serialized JSON is byte-identical for any
/// `--threads` value and any job completion order.  The histogram
/// geometry is stats::log2BucketIndex — the exact buckets `stats::Timer`
/// uses — so per-job and cross-job distributions read the same way.
///
/// Wall-clock summaries for the dashboard come from the raw event log
/// (support/EventLog.h), which is the explicitly machine-specific layer.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_AGGREGATE_H
#define AM_SUPPORT_AGGREGATE_H

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace am::fleet {

struct JobEvent;

/// Fixed-boundary log-scale histogram over uint64 values: bucket i
/// counts values in [2^i, 2^{i+1}), 0 and 1 share bucket 0 (the
/// stats::Timer geometry, via the shared stats:: helpers).
class Histogram {
public:
  static constexpr size_t NumBuckets = 64;

  void add(uint64_t V);
  void merge(const Histogram &O);

  uint64_t count() const { return Count; }
  uint64_t bucket(size_t I) const { return Buckets[I]; }
  uint64_t maxValue() const { return Max; }

  /// Nearest-rank percentile: midpoint of the bucket holding the
  /// ceil(Q*count)-th smallest value; 0 when empty.
  uint64_t percentile(double Q) const;

private:
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Max = 0;
};

/// One metric's cross-job statistics.
struct MetricAgg {
  uint64_t Jobs = 0; ///< Jobs that reported the metric.
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< Valid when Jobs > 0.
  uint64_t Max = 0;
  Histogram Hist;

  void add(uint64_t V);
  void merge(const MetricAgg &O);
  double mean() const {
    return Jobs ? static_cast<double>(Sum) / static_cast<double>(Jobs) : 0.0;
  }
};

/// The mergeable corpus summary.
class Aggregate {
public:
  /// Folds one job in: status and remark-kind tallies, every stats
  /// counter, and the synthesized IR-size metrics `ir.blocks_before/
  /// after` and `ir.instrs_before/after`.  Wall and phase times are
  /// deliberately NOT taken — see the file comment.
  void addJob(const JobEvent &E);

  /// Folds another aggregate in.  merge(A); merge(B) equals adding A's
  /// and B's jobs directly, so per-job aggregates can be combined at the
  /// barrier in job-index order regardless of completion order.
  void merge(const Aggregate &O);

  /// Records event-log lines the reader had to skip (partial trailing
  /// record of a killed run, malformed interior lines).  Surfaced in the
  /// JSON so downstream checks see data loss instead of a silently
  /// smaller corpus.
  void noteSkippedLines(uint64_t N) { SkippedLines += N; }
  uint64_t skippedLines() const { return SkippedLines; }

  uint64_t jobs() const { return Jobs; }
  const std::map<std::string, uint64_t> &statuses() const { return Statuses; }
  const std::map<std::string, uint64_t> &remarkKinds() const {
    return RemarkKinds;
  }
  const std::map<std::string, MetricAgg> &counters() const { return Counters; }

  /// Serializes as one amagg-v1 JSON object.  Deterministic: map
  /// iteration is name-sorted, histograms are sparse {"bucket":count}
  /// objects, means render via the writer's fixed %.6g.
  void writeJson(std::ostream &OS) const;

private:
  uint64_t Jobs = 0;
  uint64_t SkippedLines = 0;
  std::map<std::string, uint64_t> Statuses;
  std::map<std::string, uint64_t> RemarkKinds;
  std::map<std::string, MetricAgg> Counters;
};

/// One row of a corpus-to-corpus comparison, per counter.
struct DiffRow {
  std::string Counter;
  double MeanA = 0.0, MeanB = 0.0;
  uint64_t SumA = 0, SumB = 0;
  double Delta = 0.0;    ///< MeanB - MeanA.
  double RelDelta = 0.0; ///< Delta / MeanA; +-inf encoded as +-1e9 when
                         ///< a side is 0.
};

/// Per-counter comparison of two aggregates, ranked by |RelDelta|
/// descending (regressions and improvements of the largest relative
/// magnitude first; ties break by name for determinism).  Counters seen
/// in only one run still produce a row.
std::vector<DiffRow> diffAggregates(const Aggregate &A, const Aggregate &B);

} // namespace am::fleet

#endif // AM_SUPPORT_AGGREGATE_H
