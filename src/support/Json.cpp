//===- support/Json.cpp - Minimal JSON emission and validation -----------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>

using namespace am;

namespace {

/// Length of the well-formed UTF-8 sequence starting at S[Pos], or 0 if
/// the bytes there are not valid UTF-8 (overlong encodings, surrogate
/// code points, values above U+10FFFF, truncated or stray continuation
/// bytes all count as invalid, per RFC 3629).
size_t utf8SequenceLength(const std::string &S, size_t Pos) {
  unsigned char C0 = S[Pos];
  if (C0 < 0x80)
    return 1;
  size_t Len;
  uint32_t Cp;
  if ((C0 & 0xE0) == 0xC0) {
    Len = 2;
    Cp = C0 & 0x1F;
  } else if ((C0 & 0xF0) == 0xE0) {
    Len = 3;
    Cp = C0 & 0x0F;
  } else if ((C0 & 0xF8) == 0xF0) {
    Len = 4;
    Cp = C0 & 0x07;
  } else {
    return 0; // stray continuation byte or 0xF8..0xFF lead
  }
  if (Pos + Len > S.size())
    return 0; // truncated sequence
  for (size_t I = 1; I < Len; ++I) {
    unsigned char C = S[Pos + I];
    if ((C & 0xC0) != 0x80)
      return 0;
    Cp = (Cp << 6) | (C & 0x3F);
  }
  if (Len == 2 && Cp < 0x80)
    return 0; // overlong
  if (Len == 3 && Cp < 0x800)
    return 0; // overlong
  if (Len == 4 && Cp < 0x10000)
    return 0; // overlong
  if (Cp >= 0xD800 && Cp <= 0xDFFF)
    return 0; // UTF-16 surrogate half
  if (Cp > 0x10FFFF)
    return 0; // beyond Unicode
  return Len;
}

} // namespace

void json::appendEscaped(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (size_t Pos = 0; Pos < S.size();) {
    unsigned char C = S[Pos];
    switch (C) {
    case '"':
      Out += "\\\"";
      ++Pos;
      continue;
    case '\\':
      Out += "\\\\";
      ++Pos;
      continue;
    case '\b':
      Out += "\\b";
      ++Pos;
      continue;
    case '\f':
      Out += "\\f";
      ++Pos;
      continue;
    case '\n':
      Out += "\\n";
      ++Pos;
      continue;
    case '\r':
      Out += "\\r";
      ++Pos;
      continue;
    case '\t':
      Out += "\\t";
      ++Pos;
      continue;
    default:
      break;
    }
    if (C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      ++Pos;
      continue;
    }
    if (C < 0x80) {
      Out.push_back(static_cast<char>(C));
      ++Pos;
      continue;
    }
    // Multi-byte: pass through well-formed UTF-8 verbatim; replace each
    // invalid byte with U+FFFD so the emitted document is always valid
    // UTF-8 (raw invalid bytes would make the whole JSON unparseable for
    // strict consumers).
    size_t Len = utf8SequenceLength(S, Pos);
    if (Len == 0) {
      Out += "\xEF\xBF\xBD"; // U+FFFD replacement character
      ++Pos;
      continue;
    }
    Out.append(S, Pos, Len);
    Pos += Len;
  }
  Out.push_back('"');
}

std::string json::quoted(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  appendEscaped(Out, S);
  return Out;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void json::Writer::put(char C) {
  if (Str)
    Str->push_back(C);
  else
    OS->put(C);
}

void json::Writer::append(const std::string &S) {
  if (Str)
    *Str += S;
  else
    OS->write(S.data(), static_cast<std::streamsize>(S.size()));
}

void json::Writer::comma() {
  if (Stack.empty())
    return;
  char &Top = Stack.back();
  if (Top == 'O' || Top == 'A')
    put(',');
  else if (Top == 'o')
    Top = 'O';
  else if (Top == 'a')
    Top = 'A';
  else if (Top == 'k')
    Stack.pop_back(); // the value after a key consumes the key marker
}

json::Writer &json::Writer::beginObject() {
  comma();
  if (!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'a'))
    Stack.back() = Stack.back() == 'o' ? 'O' : 'A';
  put('{');
  Stack.push_back('o');
  return *this;
}

json::Writer &json::Writer::endObject() {
  assert(!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'O'));
  Stack.pop_back();
  put('}');
  return *this;
}

json::Writer &json::Writer::beginArray() {
  comma();
  if (!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'a'))
    Stack.back() = Stack.back() == 'o' ? 'O' : 'A';
  put('[');
  Stack.push_back('a');
  return *this;
}

json::Writer &json::Writer::endArray() {
  assert(!Stack.empty() && (Stack.back() == 'a' || Stack.back() == 'A'));
  Stack.pop_back();
  put(']');
  return *this;
}

json::Writer &json::Writer::key(const std::string &K) {
  assert(!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'O'));
  comma();
  std::string Tmp;
  appendEscaped(Tmp, K);
  append(Tmp);
  put(':');
  Stack.push_back('k');
  return *this;
}

json::Writer &json::Writer::value(const std::string &V) {
  comma();
  std::string Tmp;
  appendEscaped(Tmp, V);
  append(Tmp);
  return *this;
}

json::Writer &json::Writer::value(const char *V) {
  return value(std::string(V));
}

json::Writer &json::Writer::value(int64_t V) {
  comma();
  append(std::to_string(V));
  return *this;
}

json::Writer &json::Writer::value(uint64_t V) {
  comma();
  append(std::to_string(V));
  return *this;
}

json::Writer &json::Writer::value(double V) {
  comma();
  if (!std::isfinite(V)) {
    append("null"); // JSON has no inf/nan
    return *this;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  // %g may print an integer-looking value; that is still valid JSON.
  append(Buf);
  return *this;
}

json::Writer &json::Writer::value(bool V) {
  comma();
  append(V ? "true" : "false");
  return *this;
}

//===----------------------------------------------------------------------===//
// Validator and value parser
//===----------------------------------------------------------------------===//

namespace {

/// One recursive-descent pass serving both entry points: with a null
/// \p Into it only checks syntax (the validator), with a Value it also
/// builds the tree — a single grammar implementation instead of two that
/// could drift.
class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool run(json::Value *Into) {
    skipWs();
    if (!parseValue(Into))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters");
    return true;
  }

private:
  bool fail(const char *Msg) {
    if (Error)
      *Error = std::string(Msg) + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  static void appendUtf8(std::string &Out, uint32_t Cp) {
    if (Cp < 0x80) {
      Out.push_back(static_cast<char>(Cp));
    } else if (Cp < 0x800) {
      Out.push_back(static_cast<char>(0xC0 | (Cp >> 6)));
      Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    } else if (Cp < 0x10000) {
      Out.push_back(static_cast<char>(0xE0 | (Cp >> 12)));
      Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    } else {
      Out.push_back(static_cast<char>(0xF0 | (Cp >> 18)));
      Out.push_back(static_cast<char>(0x80 | ((Cp >> 12) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | ((Cp >> 6) & 0x3F)));
      Out.push_back(static_cast<char>(0x80 | (Cp & 0x3F)));
    }
  }

  /// Parses the four hex digits after `\u`; Pos sits on the 'u'.
  bool hex4(uint32_t &Out) {
    Out = 0;
    for (int Hex = 0; Hex < 4; ++Hex) {
      ++Pos;
      if (Pos >= Text.size() || !std::isxdigit((unsigned char)Text[Pos]))
        return fail("bad \\u escape");
      char C = Text[Pos];
      uint32_t D = C <= '9'   ? static_cast<uint32_t>(C - '0')
                   : C <= 'F' ? static_cast<uint32_t>(C - 'A' + 10)
                              : static_cast<uint32_t>(C - 'a' + 10);
      Out = (Out << 4) | D;
    }
    return true;
  }

  bool parseString(std::string *Into) {
    if (Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("truncated escape");
        char E = Text[Pos];
        if (E == 'u') {
          uint32_t Cp;
          if (!hex4(Cp))
            return false;
          if (Cp >= 0xD800 && Cp <= 0xDBFF && Pos + 2 < Text.size() &&
              Text[Pos + 1] == '\\' && Text[Pos + 2] == 'u') {
            // High surrogate followed by an escaped low surrogate: one
            // supplementary-plane code point.
            size_t Save = Pos;
            Pos += 2;
            uint32_t Lo;
            if (!hex4(Lo))
              return false;
            if (Lo >= 0xDC00 && Lo <= 0xDFFF) {
              Cp = 0x10000 + ((Cp - 0xD800) << 10) + (Lo - 0xDC00);
            } else {
              Pos = Save; // unpaired; decode the half as U+FFFD below
            }
          }
          if (Into) {
            if (Cp >= 0xD800 && Cp <= 0xDFFF)
              Cp = 0xFFFD; // unpaired surrogate half
            appendUtf8(*Into, Cp);
          }
        } else if (std::strchr("\"\\/bfnrt", E)) {
          if (Into) {
            switch (E) {
            case 'b':
              Into->push_back('\b');
              break;
            case 'f':
              Into->push_back('\f');
              break;
            case 'n':
              Into->push_back('\n');
              break;
            case 'r':
              Into->push_back('\r');
              break;
            case 't':
              Into->push_back('\t');
              break;
            default:
              Into->push_back(E);
            }
          }
        } else {
          return fail("bad escape character");
        }
      } else if (Into) {
        Into->push_back(static_cast<char>(C));
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber(json::Value *Into) {
    size_t Start = Pos;
    bool Negative = false, IntegralToken = true;
    if (Pos < Text.size() && Text[Pos] == '-') {
      Negative = true;
      ++Pos;
    }
    if (Pos >= Text.size() || !std::isdigit((unsigned char)Text[Pos]))
      return fail("bad number");
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IntegralToken = false;
      ++Pos;
      if (Pos >= Text.size() || !std::isdigit((unsigned char)Text[Pos]))
        return fail("bad fraction");
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IntegralToken = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !std::isdigit((unsigned char)Text[Pos]))
        return fail("bad exponent");
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    }
    if (Into) {
      std::string Token = Text.substr(Start, Pos - Start);
      Into->K = json::Value::Kind::Number;
      Into->Num = std::strtod(Token.c_str(), nullptr);
      if (IntegralToken && !Negative) {
        errno = 0;
        char *End = nullptr;
        uint64_t U = std::strtoull(Token.c_str(), &End, 10);
        if (errno == 0 && End && *End == '\0') {
          Into->Integral = true;
          Into->UInt = U;
        }
      }
    }
    return true;
  }

  bool parseValue(json::Value *Into) {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    bool Ok = parseValueInner(Into);
    --Depth;
    return Ok;
  }

  bool parseValueInner(json::Value *Into) {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{': {
      if (Into)
        Into->K = json::Value::Kind::Object;
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Into ? &Key : nullptr))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        skipWs();
        json::Value *Member = nullptr;
        if (Into) {
          Into->Obj.emplace_back(std::move(Key), json::Value());
          Member = &Into->Obj.back().second;
        }
        if (!parseValue(Member))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    case '[': {
      if (Into)
        Into->K = json::Value::Kind::Array;
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        json::Value *Element = nullptr;
        if (Into) {
          Into->Arr.emplace_back();
          Element = &Into->Arr.back();
        }
        if (!parseValue(Element))
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '"':
      if (Into)
        Into->K = json::Value::Kind::String;
      return parseString(Into ? &Into->S : nullptr);
    case 't':
      if (Into) {
        Into->K = json::Value::Kind::Bool;
        Into->B = true;
      }
      return literal("true");
    case 'f':
      if (Into) {
        Into->K = json::Value::Kind::Bool;
        Into->B = false;
      }
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return parseNumber(Into);
    }
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
  int Depth = 0;
  static constexpr int MaxDepth = 256;
};

} // namespace

bool json::validate(const std::string &Text, std::string *Error) {
  return Parser(Text, Error).run(nullptr);
}

std::unique_ptr<json::Value> json::parse(const std::string &Text,
                                         std::string *Error) {
  auto V = std::make_unique<Value>();
  if (!Parser(Text, Error).run(V.get()))
    return nullptr;
  return V;
}

//===----------------------------------------------------------------------===//
// Value accessors
//===----------------------------------------------------------------------===//

uint64_t json::Value::asU64() const {
  if (Integral)
    return UInt;
  if (Num <= 0.0)
    return 0;
  return static_cast<uint64_t>(Num);
}

const json::Value *json::Value::find(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Obj)
    if (Name == Key)
      return &V;
  return nullptr;
}

uint64_t json::Value::getU64(const std::string &Key, uint64_t Default) const {
  const Value *V = find(Key);
  return V && V->isNumber() ? V->asU64() : Default;
}

std::string json::Value::getString(const std::string &Key,
                                   const std::string &Default) const {
  const Value *V = find(Key);
  return V && V->isString() ? V->S : Default;
}
