//===- support/Json.cpp - Minimal JSON emission and validation -----------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace am;

namespace {

/// Length of the well-formed UTF-8 sequence starting at S[Pos], or 0 if
/// the bytes there are not valid UTF-8 (overlong encodings, surrogate
/// code points, values above U+10FFFF, truncated or stray continuation
/// bytes all count as invalid, per RFC 3629).
size_t utf8SequenceLength(const std::string &S, size_t Pos) {
  unsigned char C0 = S[Pos];
  if (C0 < 0x80)
    return 1;
  size_t Len;
  uint32_t Cp;
  if ((C0 & 0xE0) == 0xC0) {
    Len = 2;
    Cp = C0 & 0x1F;
  } else if ((C0 & 0xF0) == 0xE0) {
    Len = 3;
    Cp = C0 & 0x0F;
  } else if ((C0 & 0xF8) == 0xF0) {
    Len = 4;
    Cp = C0 & 0x07;
  } else {
    return 0; // stray continuation byte or 0xF8..0xFF lead
  }
  if (Pos + Len > S.size())
    return 0; // truncated sequence
  for (size_t I = 1; I < Len; ++I) {
    unsigned char C = S[Pos + I];
    if ((C & 0xC0) != 0x80)
      return 0;
    Cp = (Cp << 6) | (C & 0x3F);
  }
  if (Len == 2 && Cp < 0x80)
    return 0; // overlong
  if (Len == 3 && Cp < 0x800)
    return 0; // overlong
  if (Len == 4 && Cp < 0x10000)
    return 0; // overlong
  if (Cp >= 0xD800 && Cp <= 0xDFFF)
    return 0; // UTF-16 surrogate half
  if (Cp > 0x10FFFF)
    return 0; // beyond Unicode
  return Len;
}

} // namespace

void json::appendEscaped(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (size_t Pos = 0; Pos < S.size();) {
    unsigned char C = S[Pos];
    switch (C) {
    case '"':
      Out += "\\\"";
      ++Pos;
      continue;
    case '\\':
      Out += "\\\\";
      ++Pos;
      continue;
    case '\b':
      Out += "\\b";
      ++Pos;
      continue;
    case '\f':
      Out += "\\f";
      ++Pos;
      continue;
    case '\n':
      Out += "\\n";
      ++Pos;
      continue;
    case '\r':
      Out += "\\r";
      ++Pos;
      continue;
    case '\t':
      Out += "\\t";
      ++Pos;
      continue;
    default:
      break;
    }
    if (C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      ++Pos;
      continue;
    }
    if (C < 0x80) {
      Out.push_back(static_cast<char>(C));
      ++Pos;
      continue;
    }
    // Multi-byte: pass through well-formed UTF-8 verbatim; replace each
    // invalid byte with U+FFFD so the emitted document is always valid
    // UTF-8 (raw invalid bytes would make the whole JSON unparseable for
    // strict consumers).
    size_t Len = utf8SequenceLength(S, Pos);
    if (Len == 0) {
      Out += "\xEF\xBF\xBD"; // U+FFFD replacement character
      ++Pos;
      continue;
    }
    Out.append(S, Pos, Len);
    Pos += Len;
  }
  Out.push_back('"');
}

std::string json::quoted(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  appendEscaped(Out, S);
  return Out;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

void json::Writer::comma() {
  if (Stack.empty())
    return;
  char &Top = Stack.back();
  if (Top == 'O' || Top == 'A')
    Out.push_back(',');
  else if (Top == 'o')
    Top = 'O';
  else if (Top == 'a')
    Top = 'A';
  else if (Top == 'k')
    Stack.pop_back(); // the value after a key consumes the key marker
}

json::Writer &json::Writer::beginObject() {
  comma();
  if (!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'a'))
    Stack.back() = Stack.back() == 'o' ? 'O' : 'A';
  Out.push_back('{');
  Stack.push_back('o');
  return *this;
}

json::Writer &json::Writer::endObject() {
  assert(!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'O'));
  Stack.pop_back();
  Out.push_back('}');
  return *this;
}

json::Writer &json::Writer::beginArray() {
  comma();
  if (!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'a'))
    Stack.back() = Stack.back() == 'o' ? 'O' : 'A';
  Out.push_back('[');
  Stack.push_back('a');
  return *this;
}

json::Writer &json::Writer::endArray() {
  assert(!Stack.empty() && (Stack.back() == 'a' || Stack.back() == 'A'));
  Stack.pop_back();
  Out.push_back(']');
  return *this;
}

json::Writer &json::Writer::key(const std::string &K) {
  assert(!Stack.empty() && (Stack.back() == 'o' || Stack.back() == 'O'));
  comma();
  appendEscaped(Out, K);
  Out.push_back(':');
  Stack.push_back('k');
  return *this;
}

json::Writer &json::Writer::value(const std::string &V) {
  comma();
  appendEscaped(Out, V);
  return *this;
}

json::Writer &json::Writer::value(const char *V) {
  return value(std::string(V));
}

json::Writer &json::Writer::value(int64_t V) {
  comma();
  Out += std::to_string(V);
  return *this;
}

json::Writer &json::Writer::value(uint64_t V) {
  comma();
  Out += std::to_string(V);
  return *this;
}

json::Writer &json::Writer::value(double V) {
  comma();
  if (!std::isfinite(V)) {
    Out += "null"; // JSON has no inf/nan
    return *this;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.6g", V);
  // %g may print an integer-looking value; that is still valid JSON.
  Out += Buf;
  return *this;
}

json::Writer &json::Writer::value(bool V) {
  comma();
  Out += V ? "true" : "false";
  return *this;
}

//===----------------------------------------------------------------------===//
// Validator
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  bool run() {
    skipWs();
    if (!parseValue())
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters");
    return true;
  }

private:
  bool fail(const char *Msg) {
    if (Error)
      *Error = std::string(Msg) + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.compare(Pos, Len, Word) != 0)
      return fail("invalid literal");
    Pos += Len;
    return true;
  }

  bool parseString() {
    if (Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      unsigned char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("unescaped control character in string");
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("truncated escape");
        char E = Text[Pos];
        if (E == 'u') {
          for (int Hex = 0; Hex < 4; ++Hex) {
            ++Pos;
            if (Pos >= Text.size() || !std::isxdigit((unsigned char)Text[Pos]))
              return fail("bad \\u escape");
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return fail("bad escape character");
        }
      }
      ++Pos;
    }
    return fail("unterminated string");
  }

  bool parseNumber() {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || !std::isdigit((unsigned char)Text[Pos]))
      return fail("bad number");
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (Pos >= Text.size() || !std::isdigit((unsigned char)Text[Pos]))
        return fail("bad fraction");
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || !std::isdigit((unsigned char)Text[Pos]))
        return fail("bad exponent");
      while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
        ++Pos;
    }
    (void)Start;
    return true;
  }

  bool parseValue() {
    if (++Depth > MaxDepth)
      return fail("nesting too deep");
    bool Ok = parseValueInner();
    --Depth;
    return Ok;
  }

  bool parseValueInner() {
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{': {
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        if (!parseString())
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        skipWs();
        if (!parseValue())
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    case '[': {
      ++Pos;
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        if (!parseValue())
          return false;
        skipWs();
        if (Pos < Text.size() && Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Pos < Text.size() && Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    case '"':
      return parseString();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return parseNumber();
    }
  }

  const std::string &Text;
  std::string *Error;
  size_t Pos = 0;
  int Depth = 0;
  static constexpr int MaxDepth = 256;
};

} // namespace

bool json::validate(const std::string &Text, std::string *Error) {
  return Parser(Text, Error).run();
}
