//===- support/Profiler.cpp - Hierarchical scoped self-profiler ----------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Profiler.h"
#include "support/Json.h"
#include "support/Stats.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <new>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define AM_PROF_HAVE_RUSAGE 1
#define AM_PROF_INTERPOSE_NEW 1
#endif

using namespace am;
using namespace am::prof;

//===----------------------------------------------------------------------===//
// Allocation accounting: replacement global operator new
//===----------------------------------------------------------------------===//

namespace {

// constinit so the counters are live before any static constructor — the
// replacement operator new below runs for every allocation in the
// process, including those made during static initialization.
constinit std::atomic<uint64_t> GAllocBytes{0};
constinit std::atomic<uint64_t> GAllocCalls{0};

#ifdef AM_PROF_INTERPOSE_NEW

inline void countAlloc(std::size_t Size) noexcept {
  GAllocBytes.fetch_add(Size, std::memory_order_relaxed);
  GAllocCalls.fetch_add(1, std::memory_order_relaxed);
}

void *profAlloc(std::size_t Size) noexcept {
  countAlloc(Size);
  // malloc(0) may return nullptr; operator new must not (for non-throwing
  // success), so never pass 0 through.
  return std::malloc(Size ? Size : 1);
}

void *profAllocAligned(std::size_t Size, std::size_t Align) noexcept {
  countAlloc(Size);
  if (Align < sizeof(void *))
    Align = sizeof(void *);
  void *P = nullptr;
  if (posix_memalign(&P, Align, Size ? Size : Align) != 0)
    return nullptr;
  return P;
}

#endif // AM_PROF_INTERPOSE_NEW

} // namespace

#ifdef AM_PROF_INTERPOSE_NEW

// Replacement allocation functions ([new.delete.single] / [new.delete.array]).
// Everything funnels through malloc/free, so sized and aligned deallocation
// forms all forward to free and sanitizer mallocs stay interposed underneath.

void *operator new(std::size_t Size) {
  if (void *P = profAlloc(Size))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) {
  if (void *P = profAlloc(Size))
    return P;
  throw std::bad_alloc();
}

void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  return profAlloc(Size);
}

void *operator new[](std::size_t Size, const std::nothrow_t &) noexcept {
  return profAlloc(Size);
}

void *operator new(std::size_t Size, std::align_val_t Align) {
  if (void *P = profAllocAligned(Size, static_cast<std::size_t>(Align)))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size, std::align_val_t Align) {
  if (void *P = profAllocAligned(Size, static_cast<std::size_t>(Align)))
    return P;
  throw std::bad_alloc();
}

void *operator new(std::size_t Size, std::align_val_t Align,
                   const std::nothrow_t &) noexcept {
  return profAllocAligned(Size, static_cast<std::size_t>(Align));
}

void *operator new[](std::size_t Size, std::align_val_t Align,
                     const std::nothrow_t &) noexcept {
  return profAllocAligned(Size, static_cast<std::size_t>(Align));
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, const std::nothrow_t &) noexcept { std::free(P); }
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete(void *P, std::align_val_t,
                     const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::align_val_t,
                       const std::nothrow_t &) noexcept {
  std::free(P);
}

#endif // AM_PROF_INTERPOSE_NEW

uint64_t prof::allocatedBytes() {
  return GAllocBytes.load(std::memory_order_relaxed);
}

uint64_t prof::allocationCount() {
  return GAllocCalls.load(std::memory_order_relaxed);
}

bool prof::allocTrackingAvailable() {
#ifdef AM_PROF_INTERPOSE_NEW
  return true;
#else
  return false;
#endif
}

uint64_t prof::peakRssBytes() {
#ifdef AM_PROF_HAVE_RUSAGE
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) != 0)
    return 0;
#ifdef __APPLE__
  return static_cast<uint64_t>(RU.ru_maxrss); // bytes on Darwin
#else
  return static_cast<uint64_t>(RU.ru_maxrss) * 1024; // kilobytes elsewhere
#endif
#else
  return 0;
#endif
}

void prof::recordMemoryGauges(stats::Registry &R) {
  if (uint64_t Peak = peakRssBytes())
    R.gauge("mem.peak_rss_bytes").set(static_cast<int64_t>(Peak));
  if (allocTrackingAvailable()) {
    R.gauge("mem.alloc_bytes").set(static_cast<int64_t>(allocatedBytes()));
    R.gauge("mem.alloc_count").set(static_cast<int64_t>(allocationCount()));
  }
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

namespace {

uint64_t nowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

namespace {
thread_local Profiler *ThreadOverride = nullptr;
} // namespace

Profiler &Profiler::get() {
  if (ThreadOverride)
    return *ThreadOverride;
  return telemetry::Session::current().profiler();
}

Profiler *Profiler::setThreadOverride(Profiler *P) {
  Profiler *Prev = ThreadOverride;
  ThreadOverride = P;
  return Prev;
}

void Profiler::reset() {
  Nodes.clear();
  Stack.clear();
  Node Root;
  Root.Name = "root";
  Nodes.push_back(std::move(Root));
}

uint32_t Profiler::childNamed(uint32_t Parent, std::string_view Name) {
  // Linear scan: phase trees are a few dozen nodes with single-digit
  // fan-out, so a per-node map would cost more than it saves.
  for (uint32_t Child : Nodes[Parent].Children)
    if (Nodes[Child].Name == Name)
      return Child;
  uint32_t Id = static_cast<uint32_t>(Nodes.size());
  Node N;
  N.Name = std::string(Name);
  N.Parent = Parent;
  Nodes.push_back(std::move(N));
  Nodes[Parent].Children.push_back(Id);
  return Id;
}

void Profiler::enter(std::string_view Name) {
  uint32_t Parent = Stack.empty() ? RootId : Stack.back().NodeId;
  uint32_t Id = childNamed(Parent, Name);
  Node &N = Nodes[Id];
  ++N.Calls;
  if (N.Calls == 1)
    N.FirstStartUs = trace::epochNowUs();
  Stack.push_back({Id, nowNs(), allocatedBytes(), allocationCount()});
}

void Profiler::leave() {
  if (Stack.empty())
    return; // tolerate unbalanced instrumentation
  Frame F = Stack.back();
  Stack.pop_back();
  Node &N = Nodes[F.NodeId];
  N.WallNs += nowNs() - F.StartNs;
  N.AllocBytes += allocatedBytes() - F.StartAllocBytes;
  N.AllocCalls += allocationCount() - F.StartAllocCalls;
  N.LastEndUs = trace::epochNowUs();
}

void Profiler::mergeNode(uint32_t DstParent, const Profiler &Src,
                         uint32_t SrcId) {
  const Node &S = Src.Nodes[SrcId];
  uint32_t DstId = childNamed(DstParent, S.Name);
  Node &D = Nodes[DstId];
  bool Fresh = D.Calls == 0;
  D.Calls += S.Calls;
  D.WallNs += S.WallNs;
  D.AllocBytes += S.AllocBytes;
  D.AllocCalls += S.AllocCalls;
  if (Fresh || (S.FirstStartUs != 0 && S.FirstStartUs < D.FirstStartUs))
    D.FirstStartUs = S.FirstStartUs;
  if (S.LastEndUs > D.LastEndUs)
    D.LastEndUs = S.LastEndUs;
  // Name-sorted recursion: the merged shape is a function of the scope
  // *sets*, not of the order worker threads happened to enter them.
  std::vector<uint32_t> Order(S.Children.begin(), S.Children.end());
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return Src.Nodes[A].Name < Src.Nodes[B].Name;
  });
  for (uint32_t Child : Order)
    mergeNode(DstId, Src, Child);
}

void Profiler::merge(const Profiler &Worker) {
  uint32_t DstParent = Stack.empty() ? RootId : Stack.back().NodeId;
  std::vector<uint32_t> Order(Worker.Nodes[RootId].Children.begin(),
                              Worker.Nodes[RootId].Children.end());
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return Worker.Nodes[A].Name < Worker.Nodes[B].Name;
  });
  for (uint32_t Child : Order)
    mergeNode(DstParent, Worker, Child);
}

std::string Profiler::treeShape() const {
  std::string Out;
  // Preorder, children in first-entry order: `name(calls){child,...}`.
  auto Render = [&](auto &&Self, uint32_t Id) -> void {
    const Node &N = Nodes[Id];
    Out += N.Name;
    if (Id != RootId) {
      Out += '(';
      Out += std::to_string(N.Calls);
      Out += ')';
    }
    if (!N.Children.empty()) {
      Out += '{';
      bool First = true;
      for (uint32_t Child : N.Children) {
        if (!First)
          Out += ',';
        First = false;
        Self(Self, Child);
      }
      Out += '}';
    }
  };
  Render(Render, RootId);
  return Out;
}

std::string Profiler::toCollapsedString() const {
  std::string Out;
  std::vector<std::string> Path;
  auto Render = [&](auto &&Self, uint32_t Id) -> void {
    const Node &N = Nodes[Id];
    if (Id != RootId) {
      Path.push_back(N.Name);
      // Exclusive time: inclusive minus the children's inclusive time
      // (clamped — clock jitter can make the sum exceed the parent).
      uint64_t ChildNs = 0;
      for (uint32_t Child : N.Children)
        ChildNs += Nodes[Child].WallNs;
      uint64_t SelfNs = N.WallNs > ChildNs ? N.WallNs - ChildNs : 0;
      for (size_t I = 0; I < Path.size(); ++I) {
        if (I)
          Out += ';';
        Out += Path[I];
      }
      Out += ' ';
      Out += std::to_string(SelfNs);
      Out += '\n';
    }
    for (uint32_t Child : N.Children)
      Self(Self, Child);
    if (Id != RootId)
      Path.pop_back();
  };
  Render(Render, RootId);
  return Out;
}

std::string Profiler::toJsonString() const {
  std::string Out;
  json::Writer W(Out);
  auto RenderNode = [&](auto &&Self, uint32_t Id) -> void {
    const Node &N = Nodes[Id];
    W.beginObject();
    W.key("name").value(N.Name);
    W.key("calls").value(N.Calls);
    W.key("wall_ns").value(N.WallNs);
    W.key("alloc_bytes").value(N.AllocBytes);
    W.key("alloc_calls").value(N.AllocCalls);
    W.key("first_start_us").value(N.FirstStartUs);
    W.key("last_end_us").value(N.LastEndUs);
    W.key("children").beginArray();
    for (uint32_t Child : N.Children)
      Self(Self, Child);
    W.endArray();
    W.endObject();
  };
  W.beginObject();
  W.key("schema").value("amprof-v1");
  W.key("clock").value("steady; *_us offsets share the --trace epoch");
  W.key("shape").value(treeShape());
  W.key("alloc_tracking").value(allocTrackingAvailable());
  W.key("tree");
  RenderNode(RenderNode, RootId);
  W.key("collapsed").value(toCollapsedString());
  W.endObject();
  return Out;
}

bool Profiler::writeJsonFile(const std::string &Path) const {
  std::ofstream OutFile(Path, std::ios::binary);
  if (!OutFile)
    return false;
  OutFile << toJsonString() << "\n";
  return static_cast<bool>(OutFile);
}
