//===- support/ArgParser.cpp - Declarative CLI flag parsing ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include <algorithm>
#include <cassert>

using namespace am::support;

ArgParser::ArgParser(std::string Prog, std::string Overview)
    : Prog(std::move(Prog)), Overview(std::move(Overview)) {}

ArgParser::Spec *ArgParser::find(const std::string &Name) {
  for (Spec &S : Specs)
    if (S.Name == Name)
      return &S;
  return nullptr;
}

void ArgParser::flag(const std::string &Name, bool &Target, std::string Help) {
  assert(!find(Name) && "duplicate flag registration");
  Spec S;
  S.Name = Name;
  S.S = Shape::Flag;
  S.BoolTarget = &Target;
  S.Help = std::move(Help);
  Specs.push_back(std::move(S));
}

void ArgParser::option(const std::string &Name, std::string &Target,
                       std::string Help, std::string Meta) {
  assert(!find(Name) && "duplicate flag registration");
  Spec S;
  S.Name = Name;
  S.S = Shape::Option;
  S.ValueTarget = &Target;
  S.Help = std::move(Help);
  S.Meta = std::move(Meta);
  Specs.push_back(std::move(S));
}

void ArgParser::optionalValue(const std::string &Name, bool &Present,
                              std::string &Value, std::string Help,
                              std::string Meta) {
  assert(!find(Name) && "duplicate flag registration");
  Spec S;
  S.Name = Name;
  S.S = Shape::OptionalValue;
  S.BoolTarget = &Present;
  S.ValueTarget = &Value;
  S.Help = std::move(Help);
  S.Meta = std::move(Meta);
  Specs.push_back(std::move(S));
}

bool ArgParser::parse(int Argc, const char *const *Argv) {
  for (int Idx = 1; Idx < Argc; ++Idx) {
    std::string Arg = Argv[Idx];
    if (Arg == "--help" || Arg == "-h") {
      HelpRequested = true;
      return true;
    }
    if (Arg.rfind("--", 0) != 0) {
      if (!Arg.empty() && Arg[0] == '-') {
        Error = "unknown flag '" + Arg + "'";
        return false;
      }
      Positional.push_back(std::move(Arg));
      continue;
    }
    std::string Name = Arg;
    std::string Value;
    bool HasValue = false;
    size_t Eq = Arg.find('=');
    if (Eq != std::string::npos) {
      Name = Arg.substr(0, Eq);
      Value = Arg.substr(Eq + 1);
      HasValue = true;
    }
    Spec *S = find(Name);
    if (!S) {
      Error = "unknown flag '" + Name + "'";
      return false;
    }
    if (S->Seen) {
      Error = "repeated flag '" + Name + "'";
      return false;
    }
    S->Seen = true;
    switch (S->S) {
    case Shape::Flag:
      if (HasValue) {
        Error = "flag '" + Name + "' does not take a value";
        return false;
      }
      *S->BoolTarget = true;
      break;
    case Shape::Option:
      if (!HasValue || Value.empty()) {
        Error = "flag '" + Name + "' requires =" + S->Meta;
        return false;
      }
      *S->ValueTarget = Value;
      break;
    case Shape::OptionalValue:
      *S->BoolTarget = true;
      if (HasValue)
        *S->ValueTarget = Value;
      break;
    }
  }
  return true;
}

std::string ArgParser::helpText() const {
  std::string Out = "usage: " + Prog + " [flags] [FILE]\n";
  if (!Overview.empty()) {
    Out += "\n";
    Out += Overview;
    if (Overview.back() != '\n')
      Out += '\n';
  }
  Out += "\nflags:\n";
  // Render each flag's left column first so the help column aligns.
  std::vector<std::string> Left;
  size_t Widest = 0;
  for (const Spec &S : Specs) {
    std::string L = "  " + S.Name;
    if (S.S == Shape::Option)
      L += "=" + S.Meta;
    else if (S.S == Shape::OptionalValue)
      L += "[=" + S.Meta + "]";
    Widest = std::max(Widest, L.size());
    Left.push_back(std::move(L));
  }
  Widest = std::max(Widest, std::string("  --help").size());
  for (size_t Idx = 0; Idx < Specs.size(); ++Idx) {
    Out += Left[Idx];
    Out.append(Widest - Left[Idx].size() + 2, ' ');
    Out += Specs[Idx].Help;
    Out += '\n';
  }
  Out += "  --help";
  Out.append(Widest - std::string("  --help").size() + 2, ' ');
  Out += "show this help\n";
  return Out;
}
