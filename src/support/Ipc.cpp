//===- support/Ipc.cpp - EINTR-safe framed I/O and Unix sockets -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Ipc.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace am;
using namespace am::ipc;

void ipc::ignoreSigpipe() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = SIG_IGN;
  sigemptyset(&SA.sa_mask);
  sigaction(SIGPIPE, &SA, nullptr);
}

long ipc::readRetry(int Fd, void *Buf, size_t Len) {
  for (;;) {
    ssize_t N = ::read(Fd, Buf, Len);
    if (N >= 0)
      return static_cast<long>(N);
    if (errno != EINTR)
      return -1;
  }
}

bool ipc::writeFull(int Fd, const void *Buf, size_t Len) {
  const char *P = static_cast<const char *>(Buf);
  while (Len > 0) {
    ssize_t N = ::write(Fd, P, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    P += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool ipc::writeLine(int Fd, const std::string &Line) {
  std::string Framed = Line;
  Framed.push_back('\n');
  return writeFull(Fd, Framed.data(), Framed.size());
}

LineReader::Status LineReader::readLine(std::string &Out) {
  char Chunk[4096];
  for (;;) {
    // Scan what is buffered first.
    size_t Nl = Buf.find('\n', Pos);
    if (Nl != std::string::npos) {
      if (Discarding) {
        // Tail of an oversized frame: drop through the newline and keep
        // scanning for the next (legitimate) frame.
        Buf.erase(0, Nl + 1);
        Pos = 0;
        Discarding = false;
        continue;
      }
      Out.assign(Buf, Pos, Nl - Pos);
      Buf.erase(0, Nl + 1);
      Pos = 0;
      return Status::Line;
    }
    // No newline buffered.  Enforce the frame cap before reading more so
    // an unterminated flood cannot grow Buf without bound.
    if (!Discarding && MaxLine != 0 && Buf.size() - Pos > MaxLine) {
      Buf.clear();
      Pos = 0;
      Discarding = true;
      return Status::TooLong;
    }
    if (Discarding) {
      Buf.clear();
      Pos = 0;
    }
    if (AtEof) {
      if (Discarding || Buf.size() == Pos)
        return Status::Eof;
      // Final unterminated line.
      Out.assign(Buf, Pos, Buf.size() - Pos);
      Buf.clear();
      Pos = 0;
      return Status::Line;
    }
    if (WakeFd >= 0) {
      // Wait for data or the drain poke, whichever first.
      struct pollfd Fds[2];
      Fds[0].fd = Fd;
      Fds[0].events = POLLIN;
      Fds[1].fd = WakeFd;
      Fds[1].events = POLLIN;
      int Rc;
      do {
        Rc = ::poll(Fds, 2, -1);
      } while (Rc < 0 && errno == EINTR);
      if (Rc < 0)
        return Status::Error;
      if ((Fds[1].revents & (POLLIN | POLLHUP)) != 0 &&
          (Fds[0].revents & POLLIN) == 0) {
        AtEof = true;
        continue;
      }
    }
    long N = readRetry(Fd, Chunk, sizeof(Chunk));
    if (N < 0)
      return Status::Error;
    if (N == 0) {
      AtEof = true;
      continue;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

int ipc::listenUnix(const std::string &Path, int Backlog, std::string *Err) {
  auto Fail = [&](const char *What) {
    if (Err)
      *Err = std::string(What) + " " + Path + ": " + std::strerror(errno);
    return -1;
  };
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket");
  ::unlink(Path.c_str()); // stale socket from a previous run
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    ::close(Fd);
    return Fail("bind");
  }
  if (::listen(Fd, Backlog) < 0) {
    ::close(Fd);
    return Fail("listen");
  }
  return Fd;
}

int ipc::acceptRetry(int ListenFd) {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd >= 0)
      return Fd;
    if (errno != EINTR)
      return -1;
  }
}

int ipc::connectUnix(const std::string &Path, std::string *Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    if (Err)
      *Err = "socket path too long: " + Path;
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    if (Err)
      *Err = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  for (;;) {
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) == 0)
      return Fd;
    if (errno == EINTR)
      continue;
    if (Err)
      *Err = "connect " + Path + ": " + std::strerror(errno);
    ::close(Fd);
    return -1;
  }
}
