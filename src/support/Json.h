//===- support/Json.h - Minimal JSON emission and validation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The little JSON the observability layer needs: a streaming writer used
/// by the stats registry and the Chrome-trace emitter, and a syntax
/// validator the tests (and `amopt --trace` smoke checks) use to assert
/// that emitted artifacts are well-formed.  Deliberately not a general
/// JSON library — no DOM, no parsing into values.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_JSON_H
#define AM_SUPPORT_JSON_H

#include <cstdint>
#include <iosfwd>
#include <string>

namespace am::json {

/// Appends \p S to \p Out as a quoted JSON string with escapes.
void appendEscaped(std::string &Out, const std::string &S);

/// Returns \p S as a quoted JSON string literal.
std::string quoted(const std::string &S);

/// A streaming writer for objects/arrays with automatic comma placement.
/// Scopes must be closed in LIFO order; keys are only legal inside
/// objects, bare values only inside arrays.
class Writer {
public:
  explicit Writer(std::string &Out) : Out(Out) {}

  Writer &beginObject();
  Writer &endObject();
  Writer &beginArray();
  Writer &endArray();

  /// Starts `"key":` inside an object; follow with a value or begin*.
  Writer &key(const std::string &K);

  Writer &value(const std::string &V);
  Writer &value(const char *V);
  Writer &value(int64_t V);
  Writer &value(uint64_t V);
  Writer &value(double V);
  Writer &value(bool V);

private:
  void comma();

  std::string &Out;
  // One char per open scope: 'o' (object, no member yet), 'O' (object,
  // needs comma), 'a'/'A' likewise for arrays, 'k' (after key).
  std::string Stack;
};

/// True if \p Text is exactly one well-formed JSON value (RFC 8259
/// syntax; no trailing garbage).  \p Error, when non-null, receives a
/// short description with a byte offset on failure.
bool validate(const std::string &Text, std::string *Error = nullptr);

} // namespace am::json

#endif // AM_SUPPORT_JSON_H
