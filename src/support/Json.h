//===- support/Json.h - Minimal JSON emission and validation ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The little JSON the observability layer needs: a streaming writer used
/// by the stats registry, the Chrome-trace emitter and the fleet event
/// log; a syntax validator the tests (and `amopt --trace` smoke checks)
/// use to assert that emitted artifacts are well-formed; and a small
/// value parser for the consumers that must read artifacts back (the
/// `ambatch --diff` corpus comparison reads amevents-v1 JSONL records).
/// Deliberately not a general JSON library — no pointer/patch, no
/// serialization framework.
///
/// The writer sinks either into a caller-owned std::string (the original
/// interface) or directly into a std::ostream, so large documents — a
/// 100k-job event log, a corpus aggregate — stream to disk instead of
/// being assembled in memory first and spiking `mem.peak_rss_bytes`.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_JSON_H
#define AM_SUPPORT_JSON_H

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace am::json {

/// Appends \p S to \p Out as a quoted JSON string with escapes.
void appendEscaped(std::string &Out, const std::string &S);

/// Returns \p S as a quoted JSON string literal.
std::string quoted(const std::string &S);

/// A streaming writer for objects/arrays with automatic comma placement.
/// Scopes must be closed in LIFO order; keys are only legal inside
/// objects, bare values only inside arrays.  Construct over a string to
/// build the document in memory, or over an ostream to stream it out as
/// it is produced (nothing document-sized is ever buffered; the ostream's
/// own buffering applies).
class Writer {
public:
  explicit Writer(std::string &Out) : Str(&Out) {}
  explicit Writer(std::ostream &OS) : OS(&OS) {}

  Writer &beginObject();
  Writer &endObject();
  Writer &beginArray();
  Writer &endArray();

  /// Starts `"key":` inside an object; follow with a value or begin*.
  Writer &key(const std::string &K);

  Writer &value(const std::string &V);
  Writer &value(const char *V);
  Writer &value(int64_t V);
  Writer &value(uint64_t V);
  Writer &value(double V);
  Writer &value(bool V);

private:
  void comma();
  void put(char C);
  void append(const std::string &S);

  std::string *Str = nullptr;
  std::ostream *OS = nullptr;
  // One char per open scope: 'o' (object, no member yet), 'O' (object,
  // needs comma), 'a'/'A' likewise for arrays, 'k' (after key).
  std::string Stack;
};

/// True if \p Text is exactly one well-formed JSON value (RFC 8259
/// syntax; no trailing garbage).  \p Error, when non-null, receives a
/// short description with a byte offset on failure.
bool validate(const std::string &Text, std::string *Error = nullptr);

//===----------------------------------------------------------------------===//
// Value parser
//===----------------------------------------------------------------------===//

/// One parsed JSON value.  Object members keep document order; lookups
/// are linear (the records this is for — event-log lines, aggregate
/// entries — have a handful of keys).  Numbers carry both the double
/// rendering and, when the token was integral and in range, the exact
/// unsigned value, so 64-bit counters survive a round trip.
class Value {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isString() const { return K == Kind::String; }
  bool isNumber() const { return K == Kind::Number; }
  bool isBool() const { return K == Kind::Bool; }

  bool boolean() const { return B; }
  double number() const { return Num; }
  /// The exact unsigned value when the number token was a non-negative
  /// integer that fits uint64_t; otherwise the (possibly lossy) double,
  /// clamped at 0 for negatives.
  uint64_t asU64() const;
  const std::string &str() const { return S; }

  const std::vector<Value> &array() const { return Arr; }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Obj;
  }

  /// Member lookup on objects; nullptr when absent or not an object.
  const Value *find(const std::string &Key) const;
  /// Convenience accessors returning a fallback when the member is
  /// absent or of the wrong kind.
  uint64_t getU64(const std::string &Key, uint64_t Default = 0) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = std::string()) const;

  // Construction is the parser's business; default is null.
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0.0;
  bool Integral = false;
  uint64_t UInt = 0;
  std::string S;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Obj;
};

/// Parses exactly one JSON value from \p Text (no trailing garbage).
/// Returns nullptr and fills \p Error on malformed input.  String
/// escapes are decoded (\uXXXX becomes UTF-8; surrogate pairs combine).
std::unique_ptr<Value> parse(const std::string &Text,
                             std::string *Error = nullptr);

} // namespace am::json

#endif // AM_SUPPORT_JSON_H
