//===- support/Trace.cpp - Structured Chrome-trace event tracer ----------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"
#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>

using namespace am;
using namespace am::trace;

namespace {

struct Event {
  const char *Name;
  char Phase; // 'X' complete, 'i' instant
  uint64_t TsUs;
  uint64_t DurUs; // complete events only
  uint64_t Tid;
  std::vector<Arg> Args;
};

struct Collector {
  std::mutex Mu;
  std::vector<Event> Events;
  std::chrono::steady_clock::time_point Origin;
};

// Leaked on purpose so spans closing during static destruction stay safe.
Collector &collector() {
  static Collector *C = new Collector();
  return *C;
}

std::atomic<bool> TracingOn{false};

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - collector().Origin)
          .count());
}

uint64_t currentTid() {
  return std::hash<std::thread::id>()(std::this_thread::get_id()) & 0xffff;
}

void appendArgs(json::Writer &W, const std::vector<Arg> &Args) {
  W.key("args").beginObject();
  for (const Arg &A : Args) {
    W.key(A.Key);
    if (A.IsInt)
      W.value(A.Int);
    else
      W.value(A.Str);
  }
  W.endObject();
}

std::string renderJson(std::vector<Event> Events) {
  std::string Out;
  json::Writer W(Out);
  W.beginObject();
  W.key("displayTimeUnit").value("ms");
  W.key("traceEvents").beginArray();
  for (const Event &E : Events) {
    W.beginObject();
    W.key("name").value(E.Name);
    W.key("ph").value(std::string(1, E.Phase));
    W.key("ts").value(E.TsUs);
    if (E.Phase == 'X')
      W.key("dur").value(E.DurUs);
    if (E.Phase == 'i')
      W.key("s").value("t"); // thread-scoped instant
    W.key("pid").value(uint64_t(1));
    W.key("tid").value(E.Tid);
    appendArgs(W, E.Args);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  return Out;
}

} // namespace

bool trace::enabled() { return TracingOn.load(std::memory_order_relaxed); }

uint64_t trace::epochNowUs() { return nowUs(); }

void trace::start() {
  Collector &C = collector();
  std::lock_guard<std::mutex> Lock(C.Mu);
  C.Events.clear();
  C.Origin = std::chrono::steady_clock::now();
  TracingOn.store(true, std::memory_order_relaxed);
}

std::string trace::stopToJson() {
  TracingOn.store(false, std::memory_order_relaxed);
  Collector &C = collector();
  std::vector<Event> Events;
  {
    std::lock_guard<std::mutex> Lock(C.Mu);
    Events.swap(C.Events);
  }
  return renderJson(std::move(Events));
}

bool trace::stopToFile(const std::string &Path) {
  std::string J = stopToJson();
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << J << "\n";
  return static_cast<bool>(Out);
}

void trace::instant(const char *Name, std::initializer_list<Arg> Args) {
  if (!enabled())
    return;
  Collector &C = collector();
  Event E{Name, 'i', nowUs(), 0, currentTid(), std::vector<Arg>(Args)};
  std::lock_guard<std::mutex> Lock(C.Mu);
  if (TracingOn.load(std::memory_order_relaxed))
    C.Events.push_back(std::move(E));
}

TraceSpan::TraceSpan(const char *Name) : Name(Name), Live(trace::enabled()) {
  if (Live)
    StartUs = nowUs();
}

TraceSpan::~TraceSpan() {
  if (!Live)
    return;
  uint64_t EndUs = nowUs();
  Collector &C = collector();
  Event E{Name, 'X', StartUs, EndUs - StartUs, currentTid(), std::move(Args)};
  std::lock_guard<std::mutex> Lock(C.Mu);
  // Spans that straddle a stop() are dropped rather than half-recorded.
  if (TracingOn.load(std::memory_order_relaxed))
    C.Events.push_back(std::move(E));
}

void TraceSpan::arg(const char *Key, int64_t Value) {
  if (Live)
    Args.emplace_back(Key, Value);
}

void TraceSpan::arg(const char *Key, const std::string &Value) {
  if (Live)
    Args.emplace_back(Key, Value);
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

namespace {

// The path of the currently open session, consulted by the atexit
// fallback.  Leaked (like the collector) so the fallback can run safely
// during static destruction.
std::mutex &sessionMu() {
  static std::mutex *M = new std::mutex();
  return *M;
}
std::string *SessionPath = nullptr;

void flushSessionAtExit() {
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(sessionMu());
    if (SessionPath)
      Path = *SessionPath;
  }
  // Only fires when a session is still open: close() clears the path.
  if (!Path.empty() && trace::enabled())
    trace::stopToFile(Path);
}

} // namespace

Session::Session(std::string P) : Path(std::move(P)), Opened(true) {
  {
    std::lock_guard<std::mutex> Lock(sessionMu());
    if (!SessionPath)
      SessionPath = new std::string();
    *SessionPath = Path;
    static bool AtexitRegistered = [] {
      std::atexit(flushSessionAtExit);
      return true;
    }();
    (void)AtexitRegistered;
  }
  start();
}

bool Session::close() {
  if (!Opened)
    return false;
  Opened = false;
  {
    std::lock_guard<std::mutex> Lock(sessionMu());
    if (SessionPath)
      SessionPath->clear();
  }
  return stopToFile(Path);
}

Session::~Session() {
  if (Opened)
    close();
}

