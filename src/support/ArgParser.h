//===- support/ArgParser.h - Declarative CLI flag parsing ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative parser for the `--flag` / `--flag=value` style the
/// tools use, extracted from the ad-hoc loop that had grown inside
/// tools/amopt.cpp.  Three flag shapes:
///
///  * flag          — boolean `--name`; a `=value` suffix is an error;
///  * option        — `--name=value`; the value is required;
///  * optionalValue — `--name` or `--name=value` (e.g. `--stats[=json]`,
///                    `--remarks[=file]`).
///
/// The parser rejects unknown flags and repeated flags with a one-line
/// error naming the offender, recognizes `--help`/`-h` automatically, and
/// renders an aligned help text from the registered descriptions.
/// Everything that does not start with `-` is collected as a positional
/// argument, in order.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_ARGPARSER_H
#define AM_SUPPORT_ARGPARSER_H

#include <string>
#include <vector>

namespace am::support {

class ArgParser {
public:
  /// \p Prog is the program name for the usage line; \p Overview is the
  /// free-text paragraph printed after it in helpText().
  ArgParser(std::string Prog, std::string Overview);

  /// Registers a boolean flag `--Name`.  \p Target is set to true when
  /// the flag appears; passing `--Name=anything` is an error.
  void flag(const std::string &Name, bool &Target, std::string Help);

  /// Registers `--Name=META`; the value is required and stored in
  /// \p Target.  A bare `--Name` is an error.
  void option(const std::string &Name, std::string &Target, std::string Help,
              std::string Meta = "VALUE");

  /// Registers `--Name[=META]`: \p Present is set when the flag appears
  /// at all, \p Value only when a value was attached.
  void optionalValue(const std::string &Name, bool &Present,
                     std::string &Value, std::string Help,
                     std::string Meta = "VALUE");

  /// Parses \p Argv[1..Argc).  Returns false on any error (unknown flag,
  /// repeated flag, missing or forbidden value) — error() then holds a
  /// one-line description.  `--help`/`-h` stops parsing, sets
  /// helpRequested() and returns true.
  bool parse(int Argc, const char *const *Argv);

  bool helpRequested() const { return HelpRequested; }
  const std::string &error() const { return Error; }
  const std::vector<std::string> &positional() const { return Positional; }

  /// Usage line, overview and one aligned line per registered flag.
  std::string helpText() const;

private:
  enum class Shape { Flag, Option, OptionalValue };
  struct Spec {
    std::string Name;
    Shape S;
    bool *BoolTarget = nullptr;
    std::string *ValueTarget = nullptr;
    std::string Help;
    std::string Meta;
    bool Seen = false;
  };

  Spec *find(const std::string &Name);

  std::string Prog;
  std::string Overview;
  std::vector<Spec> Specs;
  std::vector<std::string> Positional;
  std::string Error;
  bool HelpRequested = false;
};

} // namespace am::support

#endif // AM_SUPPORT_ARGPARSER_H
