//===- support/Trend.cpp - Longitudinal trend analytics ------------------===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/Trend.h"
#include "support/History.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

using namespace am;
using namespace am::trend;

namespace {

double medianOf(std::vector<double> V) {
  std::sort(V.begin(), V.end());
  size_t N = V.size();
  return N == 0 ? 0.0 : (N % 2 ? V[N / 2] : (V[N / 2 - 1] + V[N / 2]) / 2.0);
}

/// Mean absolute deviation of [First, Last) around \p Med.  The mean
/// (not median) of the deviations deliberately charges a segment for
/// every point it mis-covers, so the detector's score peaks at the
/// *pure* split: at an off-by-one split the stray point's full
/// deviation lands in the noise term, while a segment-median MAD would
/// ignore it entirely and tie all nearby splits.
double meanAbsDev(const double *First, const double *Last, double Med) {
  if (First == Last)
    return 0.0;
  double Sum = 0.0;
  for (const double *P = First; P != Last; ++P)
    Sum += std::fabs(*P - Med);
  return Sum / static_cast<double>(Last - First);
}

} // namespace

Changepoint trend::detectStep(const std::vector<double> &Values,
                              const StepOptions &Opts) {
  Changepoint Best;
  size_t N = Values.size();
  unsigned MinSeg = std::max(1u, Opts.MinSeg);
  if (N < 2 * static_cast<size_t>(MinSeg))
    return Best;
  for (size_t K = MinSeg; K + MinSeg <= N; ++K) {
    std::vector<double> L(Values.begin(), Values.begin() + K);
    std::vector<double> R(Values.begin() + K, Values.end());
    double MedL = medianOf(L), MedR = medianOf(R);
    double Step = std::fabs(MedR - MedL);
    double Base = std::max(std::fabs(MedL), std::fabs(MedR));
    if (Base == 0.0)
      continue;
    double Rel = Step / std::max(std::fabs(MedL), 1e-12);
    if (Rel < Opts.MinRel)
      continue;
    // Noise floor: identical samples would otherwise make every change
    // infinitely significant; 0.1% of the level is far below anything a
    // wall clock or counter legitimately resolves.
    double Noise = std::max(meanAbsDev(L.data(), L.data() + L.size(), MedL) +
                                meanAbsDev(R.data(), R.data() + R.size(), MedR),
                            1e-3 * Base);
    double Score = Step / Noise;
    if (Score > Opts.KMad && Score > Best.Score) {
      Best.Found = true;
      Best.Index = K;
      Best.Before = MedL;
      Best.After = MedR;
      Best.Score = Score;
      Best.Ratio = MedL > 0 ? MedR / MedL : (MedR > 0 ? 1e9 : 1.0);
    }
  }
  return Best;
}

double trend::theilSenSlope(const std::vector<double> &Values) {
  size_t N = Values.size();
  if (N < 2)
    return 0.0;
  std::vector<double> Slopes;
  Slopes.reserve(N * (N - 1) / 2);
  for (size_t I = 0; I < N; ++I)
    for (size_t J = I + 1; J < N; ++J)
      Slopes.push_back((Values[J] - Values[I]) / static_cast<double>(J - I));
  return medianOf(std::move(Slopes));
}

const char *trend::statusName(SeriesStatus S) {
  switch (S) {
  case SeriesStatus::Flat:
    return "flat";
  case SeriesStatus::Step:
    return "step";
  case SeriesStatus::Regressed:
    return "REGRESSED";
  case SeriesStatus::Improved:
    return "improved";
  case SeriesStatus::Drifting:
    return "drifting";
  }
  return "?";
}

std::vector<Series>
trend::buildSeries(const std::vector<hist::HistoryEntry> &Entries) {
  // std::map keys the result name-sorted — series order must not depend
  // on which entry first mentioned a quantity.
  std::map<std::string, Series> ByName;
  auto Touch = [&ByName](const std::string &Name, SeriesKind Kind) -> Series & {
    Series &S = ByName[Name];
    if (S.Name.empty()) {
      S.Name = Name;
      S.Kind = Kind;
    }
    return S;
  };
  for (size_t I = 0; I < Entries.size(); ++I) {
    const hist::HistoryEntry &E = Entries[I];
    if (E.CalibNs) {
      Series &C = Touch("calib/spin_ns", SeriesKind::Calibration);
      C.Values.push_back(static_cast<double>(E.CalibNs));
      C.Entries.push_back(I);
    }
    for (const auto &[Name, P] : E.Presets) {
      if (E.CalibNs) {
        Series &S = Touch("wall/" + Name, SeriesKind::NormalizedWall);
        S.Values.push_back(static_cast<double>(P.WallNs) /
                           static_cast<double>(E.CalibNs));
        S.Entries.push_back(I);
      }
      for (const auto &[Fact, V] : P.Work) {
        Series &S = Touch("work/" + Name + "/" + Fact, SeriesKind::Work);
        S.Values.push_back(static_cast<double>(V));
        S.Entries.push_back(I);
      }
    }
    for (const auto &[Name, V] : E.Counters) {
      Series &S = Touch("counter/" + Name, SeriesKind::Counter);
      S.Values.push_back(static_cast<double>(V));
      S.Entries.push_back(I);
    }
  }
  std::vector<Series> Out;
  Out.reserve(ByName.size());
  for (auto &[Name, S] : ByName)
    Out.push_back(std::move(S));
  return Out;
}

TrendAnalysis
trend::analyzeHistory(const std::vector<hist::HistoryEntry> &Entries,
                      const TrendOptions &Opts) {
  TrendAnalysis A;
  A.NumEntries = Entries.size();
  uint64_t NoCalib = 0;
  for (const hist::HistoryEntry &E : Entries)
    if (E.CalibNs == 0)
      ++NoCalib;
  if (NoCalib)
    A.Notes.push_back(std::to_string(NoCalib) +
                      " entr(ies) without a calibration spin contribute no "
                      "normalized-wall points");

  std::vector<Series> All = buildSeries(Entries);
  for (Series &S : All) {
    SeriesVerdict V;
    V.CP = detectStep(S.Values, Opts.Step);
    double Med = medianOf(S.Values);
    if (S.Values.size() >= 2 && Med != 0.0)
      V.DriftRel = theilSenSlope(S.Values) *
                   static_cast<double>(S.Values.size() - 1) / std::fabs(Med);
    if (V.CP.Found) {
      bool Up = V.CP.After > V.CP.Before;
      if (!Up)
        V.Status = SeriesStatus::Improved;
      else if (S.Kind == SeriesKind::Calibration || S.Kind == SeriesKind::Work)
        // A faster/slower machine or a changed workload definition is an
        // event to understand, never a code regression to gate on.
        V.Status = SeriesStatus::Step;
      else
        V.Status = V.CP.Ratio >= Opts.GateFactor ? SeriesStatus::Regressed
                                                 : SeriesStatus::Step;
    } else if (std::fabs(V.DriftRel) > Opts.DriftThreshold &&
               S.Values.size() >= 2 * Opts.Step.MinSeg) {
      V.Status = SeriesStatus::Drifting;
    }
    if (S.Kind == SeriesKind::Calibration && V.CP.Found) {
      A.CalibrationStepped = true;
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf),
                    "machine event: calibration spin stepped %.3g -> %.3g ns "
                    "at entry %zu (normalization cancels it)",
                    V.CP.Before, V.CP.After, V.CP.Index);
      A.Notes.push_back(Buf);
    }
    V.S = std::move(S);
    A.Verdicts.push_back(std::move(V));
  }

  auto SeverityRank = [](SeriesStatus S) {
    switch (S) {
    case SeriesStatus::Regressed:
      return 0;
    case SeriesStatus::Step:
      return 1;
    case SeriesStatus::Drifting:
      return 2;
    case SeriesStatus::Improved:
      return 3;
    case SeriesStatus::Flat:
      return 4;
    }
    return 5;
  };
  auto Magnitude = [](const SeriesVerdict &V) {
    if (V.CP.Found)
      return std::fabs(V.CP.After - V.CP.Before) /
             std::max(std::fabs(V.CP.Before), 1e-12);
    return std::fabs(V.DriftRel);
  };
  std::stable_sort(A.Verdicts.begin(), A.Verdicts.end(),
                   [&](const SeriesVerdict &X, const SeriesVerdict &Y) {
                     int RX = SeverityRank(X.Status), RY = SeverityRank(Y.Status);
                     if (RX != RY)
                       return RX < RY;
                     double MX = Magnitude(X), MY = Magnitude(Y);
                     if (MX != MY)
                       return MX > MY;
                     return X.S.Name < Y.S.Name;
                   });
  return A;
}

std::vector<const SeriesVerdict *> trend::gateFailures(const TrendAnalysis &A) {
  std::vector<const SeriesVerdict *> Out;
  for (const SeriesVerdict &V : A.Verdicts)
    if (V.Status == SeriesStatus::Regressed)
      Out.push_back(&V);
  return Out;
}
