//===- support/Html.h - Minimal HTML emission helpers ----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The little HTML the report generator needs, sitting next to the JSON
/// writer (support/Json.h) in spirit: context-correct escaping for text
/// and attribute positions, and a tiny tag helper for the common
/// open-escape-close pattern.  Deliberately not a DOM or a template
/// engine — the report generator (src/report/HtmlReport.cpp) emits its
/// markup as a stream, exactly like the JSON dumps do.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_HTML_H
#define AM_SUPPORT_HTML_H

#include <string>

namespace am::html {

/// Appends \p S to \p Out with the five HTML metacharacters escaped
/// (&, <, >, ", ').  Safe for both element text and double-quoted
/// attribute values.  Bytes outside ASCII pass through verbatim — the
/// report declares UTF-8, matching the JSON layer's encoding contract.
void appendEscaped(std::string &Out, const std::string &S);

/// Returns \p S with HTML metacharacters escaped.
std::string escaped(const std::string &S);

/// Appends `<Tag class="Cls">escaped(Text)</Tag>`.  \p Tag and \p Cls
/// are trusted literals (never user data); \p Text is escaped.  \p Cls
/// may be empty, which omits the class attribute.
void appendTag(std::string &Out, const char *Tag, const std::string &Text,
               const char *Cls = "");

} // namespace am::html

#endif // AM_SUPPORT_HTML_H
