//===- support/History.h - Longitudinal run-history store ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `amhist-v1` JSONL run-history store: an append-only file where
/// each line is one attributable run of the measurement tools.  Where
/// the event log (support/EventLog.h) is the raw record of one corpus
/// run and the aggregate (support/Aggregate.h) its deterministic
/// summary, the history store is the *longitudinal* layer — the series
/// of runs across commits that `tools/amtrend` turns into time series,
/// changepoints and regression gates.
///
/// Every line is a self-contained object carrying its own
/// `"schema":"amhist-v1"` tag (no header line: append-only files grown
/// by many independent tool invocations have no single writer to own a
/// header).  An entry records who measured (machine fingerprint, git
/// commit, solver thread count), how fast the machine was at that
/// moment (the calibration spin, so normalized comparisons cancel
/// CPU-speed differences between hosts), the per-preset wall statistics
/// (median + MAD from ambench presets or per-corpus-group sums from
/// ambatch), the machine-independent counters, and — for fleet runs —
/// a digest of the amagg-v1 aggregate (job/status tallies, the FNV-1a
/// hash of the serialized aggregate, and the event-log reader's
/// skipped-line count).
///
/// The reader shares the event log's crash contract: a partial
/// (unterminated or unparseable) trailing line — the signature of a
/// killed appender — is skipped with a warning, never an error, and
/// malformed interior lines likewise.  Entries from concatenated or
/// interleaved histories may arrive out of chronological order;
/// sortByTime() merges them into one stable timeline.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_HISTORY_H
#define AM_SUPPORT_HISTORY_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace am::hist {

/// One preset's wall statistics inside an entry.  For ambench presets
/// WallNs is the MAD-filtered median of the timed reps and MadNs the
/// MAD of all samples; for ambatch corpus groups WallNs is the summed
/// job wall and MadNs the MAD of the per-job walls.  Work carries the
/// preset's machine-independent facts (instrs_in, jobs, ...).
struct PresetStat {
  uint64_t WallNs = 0;
  uint64_t MadNs = 0;
  std::vector<std::pair<std::string, uint64_t>> Work; ///< name-sorted
};

/// One attributable run.  Name/value vectors are kept name-sorted by
/// the producers so serialization is deterministic.
struct HistoryEntry {
  std::string Source;     ///< "ambench" | "ambatch".
  uint64_t TimeUnixMs = 0; ///< Wall-clock epoch of the run (ordering key).
  /// Machine fingerprint + attribution.
  std::string Host;
  std::string Cpu;
  std::string Compiler;
  std::string GitSha;          ///< From AM_GIT_SHA (env or build), or "unknown".
  uint64_t HwThreads = 0;      ///< std::thread::hardware_concurrency().
  uint64_t SolverThreads = 0;  ///< threads::globalThreadCount() at run time.
  /// The calibration spin median in ns: how slow this machine was when
  /// the entry was recorded.  Preset walls divide by this to become
  /// machine-neutral normalized values.
  uint64_t CalibNs = 0;
  /// Per-preset wall statistics, name-sorted.
  std::vector<std::pair<std::string, PresetStat>> Presets;
  /// Machine-independent counters (ambatch: aggregate sums), name-sorted.
  std::vector<std::pair<std::string, uint64_t>> Counters;
  /// The fleet-aggregate digest; present only for ambatch entries.
  bool HasAggregate = false;
  uint64_t AggJobs = 0;
  std::string AggHash; ///< hex16(fnv1a64(serialized amagg-v1 JSON)).
  uint64_t AggSkippedLines = 0; ///< Event-log reader's skipped-line count.
  std::vector<std::pair<std::string, uint64_t>> AggStatuses; ///< name-sorted
};

/// Serializes \p E as one amhist-v1 line (no trailing newline).
/// Deterministic given the entry: fixed key order, producers keep the
/// vectors name-sorted.
void appendHistoryJson(std::string &Out, const HistoryEntry &E);

/// Appends \p E to \p Path (created if absent) as one flushed line, so
/// a killed appender loses at most the entry being written.  False with
/// \p Error on open/write failure.
bool appendHistoryFile(const std::string &Path, const HistoryEntry &E,
                       std::string *Error = nullptr);

/// A parsed history.
struct HistoryFile {
  std::vector<HistoryEntry> Entries;
  /// Malformed or truncated lines skipped while reading (the warnings
  /// name each one).
  uint64_t SkippedLines = 0;
  std::vector<std::string> Warnings;
};

/// Reads an amhist-v1 stream.  A partial trailing line is skipped with
/// a warning, malformed interior lines likewise.  False only when the
/// first well-formed line announces a different schema (the file is
/// something else entirely).  An empty stream is a valid empty history.
bool readHistory(std::istream &In, HistoryFile &Out);

/// readHistory over a file path; false with \p Error on open failure or
/// schema mismatch.
bool readHistoryFile(const std::string &Path, HistoryFile &Out,
                     std::string *Error = nullptr);

/// Stable-sorts entries by TimeUnixMs (ties keep file order), merging
/// out-of-order appends from concatenated histories into one timeline.
void sortByTime(HistoryFile &H);

/// The attribution commit: $AM_GIT_SHA when set and non-empty, else the
/// AM_GIT_SHA build definition when the build provided one, else
/// "unknown".
std::string gitSha();

/// This machine's host name ("unknown" when unavailable).
std::string hostName();

/// This machine's CPU model string ("unknown" when unavailable).
std::string cpuModel();

/// Fills \p E's attribution fields from this process: wall-clock epoch,
/// host, CPU model, compiler, git commit, hardware thread count.
/// Source, SolverThreads, CalibNs and the measurements stay with the
/// caller.
void stampFingerprint(HistoryEntry &E);

/// The fixed pure-integer xorshift spin the calibration preset times:
/// its runtime depends only on scalar integer throughput, so dividing
/// preset walls by its duration cancels most of the raw CPU-speed
/// difference between machines.  Returns the accumulator so the loop
/// cannot be optimized away.
uint64_t calibrationSpin(uint64_t Iters);

/// Times calibrationSpin(Iters) \p Reps times and returns the median
/// duration in ns — the standalone calibration measurement for tools
/// (ambatch) that do not run the full benchmark harness.
uint64_t measureCalibrationSpin(unsigned Reps = 3,
                                uint64_t Iters = 20'000'000);

} // namespace am::hist

#endif // AM_SUPPORT_HISTORY_H
