//===- support/Service.h - Optimization service failure envelope -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `amserve-v1` optimization service: the newline-framed JSON
/// protocol, the FNV-1a-keyed LRU result cache, the retry/backoff
/// policy, the request engine with its failure envelope, and the
/// long-lived server loop behind `tools/amserved`.
///
/// One request is one JSON object on one line:
///
///   {"id":N,"source":"graph {...}","passes":"uniform",
///    "limits":"wall-ms=500","guarded":true}
///
/// and one response is one JSON object on one line:
///
///   {"schema":"amserve-v1","id":N,"status":"ok","hash":"...",
///    "cached":false,"wall_ns":N,"rollbacks":N,"limits_hit":false,
///    "blocks_before":N,...,"program":"graph {...}",
///    "counters":{...},"remarks":{...}}
///
/// Response statuses — the failure envelope, one per way a request can
/// go wrong without taking the daemon with it:
///
///   ok                  optimized program attached; byte-identical to
///                       one-shot `amopt` output for the same program
///                       and pass spec, cache hit or miss, any thread
///                       count;
///   rolled_back         guarded pipeline rolled back >=1 pass; the
///                       program is still the (safe) pipeline output;
///   bad_request         unparseable JSON, unparseable program, unknown
///                       pass or malformed limits — request rejected,
///                       connection kept;
///   timeout             the per-request deadline fired (watchdog
///                       cancellation or wall budget); the program
///                       attached is the canonical *input* — a clean
///                       rollback, nothing half-transformed;
///   limits              a non-deadline PipelineLimits budget (growth,
///                       sweeps, am-rounds) stopped the run; program is
///                       the canonical input;
///   resource_exhausted  std::bad_alloc during the run, downgraded to a
///                       response; program is the canonical input;
///   oversized           the request frame exceeded max_request_bytes;
///   overloaded          admission queue full — the request was shed
///                       before any work; `retry_after_ms` hints when to
///                       retry;
///   error               any other contained failure (worker exception);
///                       `error` carries the text.
///
/// The engine never lets a request's failure escape: parse errors,
/// thrown worker exceptions and allocation failure are all converted to
/// responses, and the next request on the same worker proceeds with a
/// fresh telemetry session and a reset per-worker AmContext.
///
//===----------------------------------------------------------------------===//

#ifndef AM_SUPPORT_SERVICE_H
#define AM_SUPPORT_SERVICE_H

#include "support/EventLog.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace am::service {

inline constexpr const char *ProtocolSchema = "amserve-v1";

/// Per-service resource policy (the knobs `amserved` exposes).
struct ServiceLimits {
  /// Per-request wall deadline in milliseconds (0 = none).  Folded into
  /// PipelineLimits::MaxWallMs (the tighter of the two wins) and
  /// enforced between passes; the server watchdog additionally cancels
  /// requests that blow the deadline inside a pass.
  double DeadlineMs = 10000.0;
  /// Largest accepted request frame in bytes (0 = unlimited).
  uint64_t MaxRequestBytes = 4u << 20;
  /// Bound on requests admitted but not yet answered; beyond it new
  /// requests are shed with `overloaded`.
  unsigned QueueCapacity = 64;
  /// LRU result cache capacity in entries (0 disables caching).
  unsigned CacheEntries = 256;
  /// The `retry_after_ms` hint attached to `overloaded` responses.
  uint64_t RetryAfterMs = 50;
};

/// One parsed request.
struct Request {
  uint64_t Id = 0;
  std::string Source;           ///< Program text.
  std::string Passes = "uniform";
  std::string LimitsSpec;       ///< parseLimitsSpec syntax; may be empty.
  bool Guarded = true;
};

/// One response.  Counters/RemarkKinds are name-sorted like
/// fleet::JobEvent's (the stats registry emits them sorted).
struct Response {
  uint64_t Id = 0;
  std::string Status;  ///< See the file comment for the envelope.
  std::string Program; ///< Optimized output, or canonical input on
                       ///< timeout/limits/resource_exhausted.
  std::string Error;   ///< Diagnostic text for non-ok statuses.
  std::string Hash;    ///< hex16(fnv1a64(canonical input)); empty if the
                       ///< source never parsed.
  bool Cached = false;
  bool LimitsHit = false;
  uint64_t WallNs = 0;
  uint64_t Rollbacks = 0;
  uint64_t RetryAfterMs = 0; ///< Only meaningful with status overloaded.
  uint64_t BlocksBefore = 0, BlocksAfter = 0;
  uint64_t InstrsBefore = 0, InstrsAfter = 0;
  std::vector<std::pair<std::string, uint64_t>> Counters;
  std::vector<std::pair<std::string, uint64_t>> RemarkKinds;

  bool ok() const { return Status == "ok" || Status == "rolled_back"; }
};

/// Renders \p R as one amserve-v1 request line (no trailing newline).
std::string renderRequest(const Request &R);

/// Parses one request line.  False with \p Err on malformed JSON or a
/// missing `source`; unknown members are ignored (forward compatibility).
bool parseRequest(const std::string &Line, Request &Out, std::string *Err);

/// Renders \p R as one amserve-v1 response line (no trailing newline).
std::string renderResponse(const Response &R);

/// Parses one response line.  False with \p Err on malformed JSON or a
/// schema mismatch.
bool parseResponse(const std::string &Line, Response &Out, std::string *Err);

/// The cache identity of a request: FNV-1a over the canonical program
/// text and every execution-relevant knob (passes, limits, guarded).
/// Textually different sources that parse to the same canonical program
/// share an entry by construction.
uint64_t requestKey(const std::string &CanonicalProgram, const Request &R);

/// Jittered exponential backoff: attempt 0,1,2,... maps to a delay in
/// [Base*2^n / 2, Base*2^n), capped at \p CapMs.  Deterministic in
/// (Attempt, Seed) — the jitter is a hash, not a clock — so tests can
/// assert the schedule and two clients with different seeds still
/// decorrelate.
uint64_t backoffDelayMs(unsigned Attempt, uint64_t BaseMs, uint64_t CapMs,
                        uint64_t Seed);

/// Thread-safe LRU cache of ok responses keyed by requestKey().
class ResultCache {
public:
  explicit ResultCache(unsigned Capacity) : Capacity(Capacity) {}

  /// True on hit; \p Out receives the stored response with Cached set.
  bool lookup(uint64_t Key, Response &Out);

  /// Stores \p R (only ok() responses are worth keeping; the caller
  /// filters).  Evicts the least recently used entry beyond capacity.
  void insert(uint64_t Key, const Response &R);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }
  size_t size() const;

private:
  unsigned Capacity;
  mutable std::mutex Mu;
  std::list<uint64_t> Order; ///< Front = most recently used.
  struct Entry {
    Response R;
    std::list<uint64_t>::iterator It;
  };
  std::unordered_map<uint64_t, Entry> Map;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

/// Executes requests with full crash containment.  One Engine is shared
/// by all workers of a server; handle() is thread-safe (each call runs
/// under its own telemetry::Session and the calling worker's thread-local
/// AmContext, reset per request).
class Engine {
public:
  explicit Engine(const ServiceLimits &L) : L(L), Cache(L.CacheEntries) {}

  /// Handles one request on the calling thread.  \p Cancel, when
  /// non-null, is the watchdog's deadline flag: once set, the pipeline
  /// stops at the next pass boundary and the response reports `timeout`.
  /// Never throws; every failure becomes a response.
  Response handle(const Request &R, std::atomic<bool> *Cancel = nullptr);

  /// The response for a request shed at admission.
  Response overloadedResponse(uint64_t Id) const;

  /// The response for a frame that exceeded MaxRequestBytes.
  Response oversizedResponse(uint64_t Id) const;

  ResultCache &cache() { return Cache; }
  const ServiceLimits &limits() const { return L; }

private:
  ServiceLimits L;
  ResultCache Cache;
};

/// Converts a response into the amevents-v1 record the daemon logs for
/// it (Name = "req:<id>", Preset = "serve").  \p Index is the arrival
/// sequence number.
fleet::JobEvent responseEvent(const Response &R, uint64_t Index);

/// Configuration of one Server.
struct ServerOptions {
  ServiceLimits Limits;
  /// Worker threads executing requests (>=1).
  unsigned Workers = 1;
  /// Unix-domain socket path; empty = stdio mode (read requests from fd
  /// 0, write responses to fd 1 — one process per client, used by the
  /// tests and for piping).
  std::string SocketPath;
  /// Optional amevents-v1 log of every completed request.
  std::string EventsPath;
  /// Print per-request lines to stderr.
  bool Verbose = false;
};

/// The long-lived accept/dispatch loop.  Lifecycle:
///
///   Server S(Opts);
///   // from a signal watcher thread: S.requestDrain();
///   int Rc = S.run();   // 0 on clean drain
///
/// run() accepts connections (or reads stdin), parses frames, sheds
/// beyond-capacity requests with `overloaded`, executes the rest on the
/// worker pool under per-request watchdog deadlines, and writes each
/// response back on the connection it came from.  requestDrain() (safe
/// from any thread; the signal handler itself only writes a self-pipe —
/// see tools/amserved.cpp) stops admission, lets in-flight requests
/// finish or time out, flushes the event log, and makes run() return 0.
class Server {
public:
  explicit Server(const ServerOptions &Opts);
  ~Server();

  int run();
  void requestDrain();

  Engine &engine() { return Eng; }

  struct Stats {
    uint64_t Accepted = 0;  ///< Frames admitted to the queue.
    uint64_t Completed = 0; ///< Responses written for admitted requests.
    uint64_t Shed = 0;      ///< overloaded responses.
    uint64_t Oversized = 0; ///< oversized responses.
    uint64_t BadFrames = 0; ///< bad_request responses for unparseable JSON.
  };
  Stats stats() const;

  /// Completed request events (for the drain-time history rollup).
  std::vector<fleet::JobEvent> takeEvents();

private:
  struct Impl;
  std::unique_ptr<Impl> I;
  Engine Eng;
};

} // namespace am::service

#endif // AM_SUPPORT_SERVICE_H
