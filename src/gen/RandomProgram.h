//===- gen/RandomProgram.h - Seeded workload generators --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random program generators — the workload substrate for the
/// property tests and the complexity/dynamic benchmarks (the paper has no
/// public benchmark suite; Section 4.5's claims are about "realistic
/// structured programs" and the unrestricted worst case, which these
/// generators parameterize).
///
///  * generateStructuredProgram: reducible programs from nested
///    assignments, bounded `while` loops, `if`/`else` and nondeterministic
///    `choose`; always terminates, so output traces are exact.
///  * generateIrreducibleCfg: arbitrary (including irreducible) graphs in
///    the style of the paper's Figure 7; may loop, so equivalence checks
///    use truncated-trace comparison.
///
/// A small shared pool of assignment patterns makes partial redundancies
/// frequent, which is what the transformations feed on.
///
//===----------------------------------------------------------------------===//

#ifndef AM_GEN_RANDOMPROGRAM_H
#define AM_GEN_RANDOMPROGRAM_H

#include "ir/FlowGraph.h"

#include <cstdint>

namespace am {

/// Generator knobs.  Defaults give small, redundancy-rich programs.
struct GenOptions {
  /// Rough number of statements to emit.
  unsigned TargetStmts = 40;
  /// Size of the ordinary variable pool (named v0, v1, ...).
  unsigned NumVars = 6;
  /// Number of distinct assignment patterns in the shared pool.
  unsigned PatternPoolSize = 10;
  /// Maximum structured nesting depth.
  unsigned MaxDepth = 3;
  /// Upper bound for every `while` loop's iteration count.
  unsigned MaxLoopIters = 4;
  /// Probability weights for compound statements.
  double LoopProb = 0.15;
  double IfProb = 0.20;
  double ChooseProb = 0.08;
  /// Probability that an `out` statement is emitted at a given position.
  double OutProb = 0.10;
  /// Number of blocks for the irreducible generator.
  unsigned NumBlocks = 12;
  /// Extra non-tree edges for the irreducible generator.
  unsigned ExtraEdges = 6;
};

/// Generates a terminating, reducible program.  Identical seeds yield
/// identical programs.  The result is always a valid FlowGraph ending in
/// `out(<all pool variables>)`.
FlowGraph generateStructuredProgram(uint64_t Seed, const GenOptions &Opts = {});

/// Generates an arbitrary — frequently irreducible — control-flow graph
/// whose blocks draw from the same pattern pool.  May not terminate;
/// consumers bound execution.
FlowGraph generateIrreducibleCfg(uint64_t Seed, const GenOptions &Opts = {});

} // namespace am

#endif // AM_GEN_RANDOMPROGRAM_H
