//===- gen/RandomProgram.cpp - Workload generator implementation -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "gen/RandomProgram.h"
#include "support/Rng.h"

using namespace am;

namespace {

/// Shared machinery for both generators.
class GenState {
public:
  GenState(uint64_t Seed, const GenOptions &Opts) : R(Seed), Opts(Opts) {
    for (unsigned Idx = 0; Idx < std::max(1u, Opts.NumVars); ++Idx)
      Pool.push_back(G.Vars.getOrCreate("v" + std::to_string(Idx)));
    for (unsigned Idx = 0; Idx < Opts.PatternPoolSize; ++Idx)
      PatternPool.emplace_back(pickVar(), randomTerm());
  }

  VarId pickVar() { return Pool[R.index(Pool.size())]; }

  Operand randomOperand() {
    if (R.chance(0.8))
      return Operand::var(pickVar());
    return Operand::imm(R.range(-4, 9));
  }

  Term randomTerm() {
    Operand A = randomOperand();
    if (R.chance(0.85)) {
      static const OpCode Ops[] = {OpCode::Add, OpCode::Sub, OpCode::Mul};
      return Term::binary(Ops[R.index(3)], A, randomOperand());
    }
    return Term::atom(A);
  }

  Instr randomAssign() {
    // Draw mostly from the shared pattern pool so partial redundancies are
    // common.
    if (!PatternPool.empty() && R.chance(0.75)) {
      const auto &[Lhs, Rhs] = PatternPool[R.index(PatternPool.size())];
      return Instr::assign(Lhs, Rhs);
    }
    return Instr::assign(pickVar(), randomTerm());
  }

  Instr randomOut() {
    std::vector<VarId> Vars;
    size_t Count = 1 + R.index(3);
    for (size_t Idx = 0; Idx < Count; ++Idx)
      Vars.push_back(pickVar());
    return Instr::out(std::move(Vars));
  }

  RelOp randomRel() {
    static const RelOp Rels[] = {RelOp::Lt, RelOp::Le, RelOp::Gt,
                                 RelOp::Ge, RelOp::Eq, RelOp::Ne};
    return Rels[R.index(6)];
  }

  FlowGraph G;
  Rng R;
  GenOptions Opts;
  std::vector<VarId> Pool;
  std::vector<std::pair<VarId, Term>> PatternPool;
};

/// Builder for reducible, always-terminating programs.
class StructuredBuilder : public GenState {
public:
  StructuredBuilder(uint64_t Seed, const GenOptions &Opts)
      : GenState(Seed, Opts), Remaining(Opts.TargetStmts) {}

  FlowGraph build() {
    BlockId Start = G.addBlock();
    G.setStart(Start);
    BlockId Tail = Start;
    // Top level: keep emitting statement runs until the budget is spent,
    // so TargetStmts really controls the program size.
    while (Remaining > 0)
      Tail = emitStmts(Tail, 0);
    G.block(Tail).Instrs.push_back(Instr::out(Pool));
    G.setEnd(Tail);
    assert(G.validate().empty() && "generator produced an invalid graph");
    return std::move(G);
  }

private:
  /// Emits a run of statements starting in \p Cur; returns the fall-out
  /// block.
  BlockId emitStmts(BlockId Cur, unsigned Depth) {
    unsigned RunLength = 1 + static_cast<unsigned>(R.index(8));
    for (unsigned Idx = 0; Idx < RunLength && Remaining > 0; ++Idx) {
      --Remaining;
      double Roll = static_cast<double>(R.index(1000)) / 1000.0;
      bool CanNest = Depth < Opts.MaxDepth;
      if (CanNest && Roll < Opts.LoopProb) {
        // Split loop emissions between while-style (may run zero times)
        // and repeat-style (runs at least once, enabling invariant
        // motion out of the body).
        Cur = R.chance(0.5) ? emitLoop(Cur, Depth) : emitRepeat(Cur, Depth);
      } else if (CanNest && Roll < Opts.LoopProb + Opts.IfProb) {
        Cur = emitIf(Cur, Depth);
      } else if (CanNest &&
                 Roll < Opts.LoopProb + Opts.IfProb + Opts.ChooseProb) {
        Cur = emitChoose(Cur, Depth);
      } else if (Roll <
                 Opts.LoopProb + Opts.IfProb + Opts.ChooseProb + Opts.OutProb) {
        G.block(Cur).Instrs.push_back(randomOut());
      } else {
        G.block(Cur).Instrs.push_back(randomAssign());
      }
    }
    return Cur;
  }

  BlockId emitLoop(BlockId Cur, unsigned Depth) {
    // Dedicated counter variable outside the assignment pool guarantees
    // termination: lc := 0; while (lc < K) { body; lc := lc + 1; }.
    VarId Counter = G.Vars.getOrCreate("lc" + std::to_string(NumLoops++));
    G.block(Cur).Instrs.push_back(Instr::assign(Counter, Term::imm(0)));
    int64_t Bound = 1 + static_cast<int64_t>(R.index(Opts.MaxLoopIters));

    BlockId Header = G.addBlock();
    G.addEdge(Cur, Header);
    G.block(Header).Instrs.push_back(Instr::branch(
        Term::var(Counter), RelOp::Lt, Term::imm(Bound)));

    BlockId Body = G.addBlock();
    BlockId Exit = G.addBlock();
    G.addEdge(Header, Body);
    G.addEdge(Header, Exit);
    BlockId BodyTail = emitStmts(Body, Depth + 1);
    G.block(BodyTail).Instrs.push_back(Instr::assign(
        Counter,
        Term::binary(OpCode::Add, Operand::var(Counter), Operand::imm(1))));
    G.addEdge(BodyTail, Header);
    return Exit;
  }

  BlockId emitRepeat(BlockId Cur, unsigned Depth) {
    // lc := 0; repeat { body; lc := lc + 1 } until (lc >= K);
    VarId Counter = G.Vars.getOrCreate("lc" + std::to_string(NumLoops++));
    G.block(Cur).Instrs.push_back(Instr::assign(Counter, Term::imm(0)));
    int64_t Bound = 1 + static_cast<int64_t>(R.index(Opts.MaxLoopIters));

    BlockId Body = G.addBlock();
    G.addEdge(Cur, Body);
    BlockId Tail = emitStmts(Body, Depth + 1);
    G.block(Tail).Instrs.push_back(Instr::assign(
        Counter,
        Term::binary(OpCode::Add, Operand::var(Counter), Operand::imm(1))));
    G.block(Tail).Instrs.push_back(Instr::branch(
        Term::var(Counter), RelOp::Ge, Term::imm(Bound)));
    BlockId Exit = G.addBlock();
    G.addEdge(Tail, Exit);
    G.addEdge(Tail, Body);
    return Exit;
  }

  BlockId emitIf(BlockId Cur, unsigned Depth) {
    G.block(Cur).Instrs.push_back(
        Instr::branch(randomTerm(), randomRel(), randomTerm()));
    BlockId Then = G.addBlock();
    BlockId Else = G.addBlock();
    BlockId Join = G.addBlock();
    G.addEdge(Cur, Then);
    G.addEdge(Cur, Else);
    G.addEdge(emitStmts(Then, Depth + 1), Join);
    G.addEdge(emitStmts(Else, Depth + 1), Join);
    return Join;
  }

  BlockId emitChoose(BlockId Cur, unsigned Depth) {
    BlockId AltA = G.addBlock();
    BlockId AltB = G.addBlock();
    BlockId Join = G.addBlock();
    G.addEdge(Cur, AltA);
    G.addEdge(Cur, AltB);
    G.addEdge(emitStmts(AltA, Depth + 1), Join);
    G.addEdge(emitStmts(AltB, Depth + 1), Join);
    return Join;
  }

  unsigned Remaining;
  unsigned NumLoops = 0;
};

} // namespace

FlowGraph am::generateStructuredProgram(uint64_t Seed,
                                        const GenOptions &Opts) {
  return StructuredBuilder(Seed, Opts).build();
}

FlowGraph am::generateIrreducibleCfg(uint64_t Seed, const GenOptions &Opts) {
  GenState S(Seed, Opts);
  FlowGraph &G = S.G;
  unsigned N = std::max(3u, Opts.NumBlocks);
  for (unsigned Idx = 0; Idx < N; ++Idx)
    G.addBlock();
  G.setStart(0);
  G.setEnd(N - 1);

  // Straight-line instructions.
  for (BlockId B = 0; B + 1 < N; ++B) {
    size_t Count = S.R.index(4);
    for (size_t Idx = 0; Idx < Count; ++Idx)
      G.block(B).Instrs.push_back(S.randomAssign());
    if (S.R.chance(Opts.OutProb))
      G.block(B).Instrs.push_back(S.randomOut());
  }
  G.block(N - 1).Instrs.push_back(Instr::out(S.Pool));

  // Spine guarantees start-reachability and end-reachability.
  for (BlockId B = 0; B + 1 < N; ++B)
    G.addEdge(B, B + 1);

  // Extra edges create joins, backedges and irreducible regions.  Never
  // into the start node, never out of the end node.
  for (unsigned Idx = 0; Idx < Opts.ExtraEdges; ++Idx) {
    BlockId From = static_cast<BlockId>(S.R.index(N - 1));
    BlockId To = 1 + static_cast<BlockId>(S.R.index(N - 1));
    if (From == To)
      continue;
    G.addEdge(From, To);
  }

  // Some two-way branches get explicit conditions; the rest stay
  // nondeterministic (the paper's default branching model).
  for (BlockId B = 0; B + 1 < N; ++B)
    if (G.block(B).Succs.size() == 2 && S.R.chance(0.5))
      G.block(B).Instrs.push_back(
          Instr::branch(S.randomTerm(), S.randomRel(), S.randomTerm()));

  assert(G.validate().empty() && "generator produced an invalid graph");
  return std::move(G);
}
