//===- ir/Term.h - Operands, three-address terms, conditions ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Terms in the paper's sense: right-hand sides of assignments and operands
/// of branch conditions, restricted to three-address form (at most one
/// operator symbol, Section 2).  A trivial term is a single variable or
/// constant; a non-trivial term applies one binary operator to two atomic
/// operands and is what the paper calls an *expression pattern*.
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_TERM_H
#define AM_IR_TERM_H

#include "ir/Ids.h"

#include <cassert>
#include <cstdint>
#include <functional>

namespace am {

/// An atomic operand: a variable or an integer constant.
struct Operand {
  enum class Kind : uint8_t { Var, Const };

  Kind K = Kind::Const;
  VarId Var = VarId::Invalid;
  int64_t Const = 0;

  static Operand var(VarId V) {
    Operand O;
    O.K = Kind::Var;
    O.Var = V;
    return O;
  }

  static Operand imm(int64_t C) {
    Operand O;
    O.K = Kind::Const;
    O.Const = C;
    return O;
  }

  bool isVar() const { return K == Kind::Var; }
  bool isConst() const { return K == Kind::Const; }

  friend bool operator==(const Operand &A, const Operand &B) {
    if (A.K != B.K)
      return false;
    return A.isVar() ? A.Var == B.Var : A.Const == B.Const;
  }
  friend bool operator!=(const Operand &A, const Operand &B) {
    return !(A == B);
  }
};

/// Binary operators permitted in a non-trivial term.
enum class OpCode : uint8_t { None, Add, Sub, Mul, Div };

/// Relational operators used in branch conditions.
enum class RelOp : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

/// A three-address term: either a single atom (Op == None, atom in A) or a
/// binary application `A Op B`.
struct Term {
  OpCode Op = OpCode::None;
  Operand A;
  Operand B;

  static Term atom(Operand O) {
    Term T;
    T.Op = OpCode::None;
    T.A = O;
    return T;
  }

  static Term var(VarId V) { return atom(Operand::var(V)); }
  static Term imm(int64_t C) { return atom(Operand::imm(C)); }

  static Term binary(OpCode Op, Operand A, Operand B) {
    assert(Op != OpCode::None && "binary term requires an operator");
    Term T;
    T.Op = Op;
    T.A = A;
    T.B = B;
    return T;
  }

  /// True if the term contains an operator symbol (an expression pattern in
  /// the paper's sense).
  bool isNonTrivial() const { return Op != OpCode::None; }

  /// True if the term is exactly the single variable \p V.
  bool isVarAtom(VarId V) const {
    return Op == OpCode::None && A.isVar() && A.Var == V;
  }

  /// True if \p V occurs as an operand.
  bool usesVar(VarId V) const {
    if (A.isVar() && A.Var == V)
      return true;
    return Op != OpCode::None && B.isVar() && B.Var == V;
  }

  /// Invokes \p Fn for every variable operand (at most twice).
  template <typename FnT> void forEachVar(FnT Fn) const {
    if (A.isVar())
      Fn(A.Var);
    if (Op != OpCode::None && B.isVar())
      Fn(B.Var);
  }

  friend bool operator==(const Term &X, const Term &Y) {
    if (X.Op != Y.Op || X.A != Y.A)
      return false;
    return X.Op == OpCode::None || X.B == Y.B;
  }
  friend bool operator!=(const Term &X, const Term &Y) { return !(X == Y); }
};

/// Hash of a term, suitable for interning tables.
inline size_t hashTerm(const Term &T) {
  auto HashOperand = [](const Operand &O) -> size_t {
    size_t H = O.isVar() ? (size_t(index(O.Var)) * 2 + 1)
                         : (std::hash<int64_t>()(O.Const) * 2);
    return H;
  };
  size_t H = static_cast<size_t>(T.Op);
  H = H * 1000003u + HashOperand(T.A);
  if (T.Op != OpCode::None)
    H = H * 1000003u + HashOperand(T.B);
  return H;
}

/// Spelled operator, e.g. "+" for Add.
inline const char *spelling(OpCode Op) {
  switch (Op) {
  case OpCode::None:
    return "";
  case OpCode::Add:
    return "+";
  case OpCode::Sub:
    return "-";
  case OpCode::Mul:
    return "*";
  case OpCode::Div:
    return "/";
  }
  return "";
}

/// Spelled relation, e.g. ">" for Gt.
inline const char *spelling(RelOp R) {
  switch (R) {
  case RelOp::Lt:
    return "<";
  case RelOp::Le:
    return "<=";
  case RelOp::Gt:
    return ">";
  case RelOp::Ge:
    return ">=";
  case RelOp::Eq:
    return "==";
  case RelOp::Ne:
    return "!=";
  }
  return "";
}

} // namespace am

#endif // AM_IR_TERM_H
