//===- ir/ExprTable.h - Expression-pattern interning -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns non-trivial terms as *expression patterns* (the paper's EP) and
/// tracks the unique temporary h_e associated with each pattern.
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_EXPRTABLE_H
#define AM_IR_EXPRTABLE_H

#include "ir/Term.h"
#include "ir/VarTable.h"

#include <cassert>
#include <unordered_map>
#include <vector>

namespace am {

/// Per-graph interner for expression patterns.  Ids are dense and stable;
/// the same syntactic term always interns to the same id.
class ExprTable {
public:
  /// Interns the non-trivial term \p T, returning its pattern id.
  ExprId intern(const Term &T) {
    assert(T.isNonTrivial() && "expression patterns contain one operator");
    size_t H = hashTerm(T);
    auto [It, End] = Index.equal_range(H);
    for (; It != End; ++It)
      if (Exprs[index(It->second)].T == T)
        return It->second;
    ExprId Id = makeExprId(static_cast<uint32_t>(Exprs.size()));
    Exprs.push_back({T, VarId::Invalid});
    Index.emplace(H, Id);
    return Id;
  }

  /// Looks up \p T without interning; returns Invalid if unknown.
  ExprId lookup(const Term &T) const {
    if (!T.isNonTrivial())
      return ExprId::Invalid;
    size_t H = hashTerm(T);
    auto [It, End] = Index.equal_range(H);
    for (; It != End; ++It)
      if (Exprs[index(It->second)].T == T)
        return It->second;
    return ExprId::Invalid;
  }

  const Term &term(ExprId E) const {
    assert(index(E) < Exprs.size() && "expression id out of range");
    return Exprs[index(E)].T;
  }

  /// Returns the unique temporary for pattern \p E, creating it in \p Vars
  /// on first request (named h1, h2, ... in interning order).
  VarId temporary(ExprId E, VarTable &Vars) {
    Entry &Ent = Exprs[index(E)];
    if (!isValid(Ent.Temp))
      Ent.Temp = Vars.createTemp(E, index(E) + 1);
    return Ent.Temp;
  }

  /// Returns the temporary for \p E if one was already created, else
  /// Invalid.
  VarId temporaryIfPresent(ExprId E) const { return Exprs[index(E)].Temp; }

  /// Registers \p Temp as the temporary of \p E (used by the parser when it
  /// re-reads a printed optimized program).
  void setTemporary(ExprId E, VarId Temp) { Exprs[index(E)].Temp = Temp; }

  size_t size() const { return Exprs.size(); }

private:
  struct Entry {
    Term T;
    VarId Temp;
  };

  std::vector<Entry> Exprs;
  std::unordered_multimap<size_t, ExprId> Index;
};

} // namespace am

#endif // AM_IR_EXPRTABLE_H
