//===- ir/Patterns.cpp - Pattern universe implementation -------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "ir/Patterns.h"

using namespace am;

static size_t hashAssignPat(VarId Lhs, const Term &Rhs) {
  return hashTerm(Rhs) * 31u + index(Lhs);
}

bool AssignPatternTable::build(const FlowGraph &G) {
  // Keep the previous pattern list around so the caller can learn whether
  // this rebuild changed the universe (and thus invalidated bit indices).
  PrevPats.swap(Pats);
  Pats.clear();
  Index.clear();

  // Collect patterns in deterministic first-occurrence order.
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (const Instr &I : G.block(B).Instrs) {
      if (!I.isAssign() || I.Rhs.isVarAtom(I.Lhs))
        continue;
      if (indexOf(I.Lhs, I.Rhs) != npos)
        continue;
      size_t Idx = Pats.size();
      Pats.push_back({I.Lhs, I.Rhs});
      Index.emplace(hashAssignPat(I.Lhs, I.Rhs), Idx);
    }
  }

  // Per-variable pattern sets, reusing the vectors' existing storage.
  size_t NumVars = G.Vars.size();
  size_t NumPats = Pats.size();
  PatsWithLhs.resize(NumVars);
  PatsUsingInRhs.resize(NumVars);
  for (size_t V = 0; V < NumVars; ++V) {
    PatsWithLhs[V].clearAndResize(NumPats);
    PatsUsingInRhs[V].clearAndResize(NumPats);
  }
  RedundancyOk.clearAndResize(NumPats);
  TempInit.assign(NumPats, false);
  Empty.clearAndResize(NumPats);

  for (size_t Idx = 0; Idx < NumPats; ++Idx) {
    const AssignPat &P = Pats[Idx];
    PatsWithLhs[index(P.Lhs)].set(Idx);
    P.Rhs.forEachVar(
        [&](VarId V) { PatsUsingInRhs[index(V)].set(Idx); });
    if (!P.Rhs.usesVar(P.Lhs))
      RedundancyOk.set(Idx);
    if (G.Vars.isTemp(P.Lhs) && P.Rhs.isNonTrivial()) {
      ExprId E = G.Exprs.lookup(P.Rhs);
      if (isValid(E) && G.Vars.tempFor(P.Lhs) == E)
        TempInit[Idx] = true;
    }
  }

  return Pats != PrevPats;
}

size_t AssignPatternTable::indexOf(VarId Lhs, const Term &Rhs) const {
  auto [It, End] = Index.equal_range(hashAssignPat(Lhs, Rhs));
  for (; It != End; ++It)
    if (Pats[It->second].Lhs == Lhs && Pats[It->second].Rhs == Rhs)
      return It->second;
  return npos;
}

size_t AssignPatternTable::occurrence(const Instr &I) const {
  if (!I.isAssign() || I.Rhs.isVarAtom(I.Lhs))
    return npos;
  return indexOf(I.Lhs, I.Rhs);
}

const BitVector &AssignPatternTable::lhsPats(VarId V) const {
  size_t Idx = index(V);
  return Idx < PatsWithLhs.size() ? PatsWithLhs[Idx] : Empty;
}

const BitVector &AssignPatternTable::rhsUsePats(VarId V) const {
  size_t Idx = index(V);
  return Idx < PatsUsingInRhs.size() ? PatsUsingInRhs[Idx] : Empty;
}

void AssignPatternTable::blockedBy(const Instr &I, BitVector &Out) const {
  Out = Empty;
  // A modification of x or of an operand of t blocks x := t ...
  VarId Def = I.definedVar();
  if (isValid(Def)) {
    Out |= lhsPats(Def);
    Out |= rhsUsePats(Def);
  }
  // ... and so does a *use* of x.
  I.forEachUsedVar([&](VarId U) { Out |= lhsPats(U); });
}

void AssignPatternTable::killedBy(const Instr &I, BitVector &Out) const {
  Out = Empty;
  VarId Def = I.definedVar();
  if (isValid(Def)) {
    Out |= lhsPats(Def);
    Out |= rhsUsePats(Def);
  }
}

void ExprPatternTable::noteTerm(const Term &T) {
  if (!T.isNonTrivial() || indexOf(T) != npos)
    return;
  size_t Idx = Terms.size();
  Terms.push_back(T);
  Index.emplace(hashTerm(T), Idx);
}

void ExprPatternTable::build(const FlowGraph &G) {
  Terms.clear();
  Index.clear();

  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (const Instr &I : G.block(B).Instrs) {
      if (I.isAssign()) {
        noteTerm(I.Rhs);
      } else if (I.isBranch()) {
        noteTerm(I.CondL);
        noteTerm(I.CondR);
      }
    }
  }

  size_t NumVars = G.Vars.size();
  PatsUsingVar.assign(NumVars, BitVector(Terms.size()));
  Empty = BitVector(Terms.size());
  for (size_t Idx = 0; Idx < Terms.size(); ++Idx)
    Terms[Idx].forEachVar([&](VarId V) { PatsUsingVar[index(V)].set(Idx); });
}

size_t ExprPatternTable::indexOf(const Term &T) const {
  if (!T.isNonTrivial())
    return npos;
  auto [It, End] = Index.equal_range(hashTerm(T));
  for (; It != End; ++It)
    if (Terms[It->second] == T)
      return It->second;
  return npos;
}

const BitVector &ExprPatternTable::usePats(VarId V) const {
  size_t Idx = index(V);
  return Idx < PatsUsingVar.size() ? PatsUsingVar[Idx] : Empty;
}

void ExprPatternTable::computedBy(const Instr &I, BitVector &Out) const {
  Out = Empty;
  auto Note = [&](const Term &T) {
    size_t Idx = indexOf(T);
    if (Idx != npos)
      Out.set(Idx);
  };
  if (I.isAssign()) {
    Note(I.Rhs);
  } else if (I.isBranch()) {
    Note(I.CondL);
    Note(I.CondR);
  }
}

void ExprPatternTable::killedBy(const Instr &I, BitVector &Out) const {
  Out = Empty;
  VarId Def = I.definedVar();
  if (isValid(Def))
    Out |= usePats(Def);
}
