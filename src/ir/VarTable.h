//===- ir/VarTable.h - Variable registry ------------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-graph registry of variables.  Distinguishes original program
/// variables from the temporaries h_e that the initialization phase
/// associates with expression patterns (Section 2: every expression pattern
/// e is associated with a unique temporary h_e).
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_VARTABLE_H
#define AM_IR_VARTABLE_H

#include "ir/Ids.h"

#include <cassert>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace am {

/// Registry of the variables of one FlowGraph.
class VarTable {
public:
  /// Returns the id for \p Name, creating a non-temporary variable if it
  /// does not exist yet.
  VarId getOrCreate(std::string_view Name) {
    auto It = ByName.find(std::string(Name));
    if (It != ByName.end())
      return It->second;
    VarId Id = makeVarId(static_cast<uint32_t>(Infos.size()));
    Infos.push_back({std::string(Name), false, ExprId::Invalid});
    ByName.emplace(Infos.back().Name, Id);
    return Id;
  }

  /// Returns the id for \p Name or Invalid if unknown.
  VarId lookup(std::string_view Name) const {
    auto It = ByName.find(std::string(Name));
    return It == ByName.end() ? VarId::Invalid : It->second;
  }

  /// Creates a fresh temporary associated with expression pattern \p E.
  /// The name is `h<N>` unless that collides with an existing variable, in
  /// which case underscores are appended until it is fresh.
  VarId createTemp(ExprId E, uint32_t PreferredNumber) {
    std::string Name = "h" + std::to_string(PreferredNumber);
    while (ByName.count(Name))
      Name.push_back('_');
    VarId Id = makeVarId(static_cast<uint32_t>(Infos.size()));
    Infos.push_back({Name, true, E});
    ByName.emplace(Infos.back().Name, Id);
    return Id;
  }

  const std::string &name(VarId V) const { return info(V).Name; }

  /// True if \p V is a temporary introduced for an expression pattern.
  bool isTemp(VarId V) const { return info(V).IsTemp; }

  /// The expression pattern a temporary stands for (Invalid for ordinary
  /// variables).
  ExprId tempFor(VarId V) const { return info(V).TempFor; }

  size_t size() const { return Infos.size(); }

  /// Marks an existing variable as the temporary for \p E (used when
  /// cloning graphs or rebuilding temp associations after parsing).
  void markTemp(VarId V, ExprId E) {
    Infos[index(V)].IsTemp = true;
    Infos[index(V)].TempFor = E;
  }

private:
  struct VarInfo {
    std::string Name;
    bool IsTemp;
    ExprId TempFor;
  };

  const VarInfo &info(VarId V) const {
    assert(index(V) < Infos.size() && "variable id out of range");
    return Infos[index(V)];
  }

  std::vector<VarInfo> Infos;
  std::unordered_map<std::string, VarId> ByName;
};

} // namespace am

#endif // AM_IR_VARTABLE_H
