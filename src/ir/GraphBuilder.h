//===- ir/GraphBuilder.h - Fluent programmatic graph construction -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fluent API for building FlowGraphs programmatically — the
/// in-process alternative to the textual front-ends:
///
///   GraphBuilder B;
///   auto Entry = B.block();
///   auto Loop = B.block();
///   auto Exit = B.block();
///   B.at(Entry).assign("x", B.add("a", "b")).jump(Loop);
///   B.at(Loop).assign("y", B.mul("x", 2)).branch(B.lt("i", "n"), Loop, Exit);
///   B.at(Exit).out({"x", "y"}).halt();
///   FlowGraph G = B.take();
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_GRAPHBUILDER_H
#define AM_IR_GRAPHBUILDER_H

#include "ir/FlowGraph.h"

#include <initializer_list>
#include <string>
#include <string_view>

namespace am {

/// Builds a FlowGraph block by block.  The first created block is the
/// start node; the block that calls halt() is the end node.  take()
/// finalizes and asserts validity.
class GraphBuilder {
public:
  GraphBuilder() = default;

  /// Creates a new empty block.
  BlockId block() {
    BlockId Id = G.addBlock();
    if (G.start() == InvalidBlock)
      G.setStart(Id);
    return Id;
  }

  /// Operand helpers: a name makes a variable, an integer a constant.
  Operand op(std::string_view Name) {
    return Operand::var(G.Vars.getOrCreate(Name));
  }
  Operand op(int64_t Value) { return Operand::imm(Value); }

  /// Term helpers.
  template <typename A, typename B> Term add(A Lhs, B Rhs) {
    return Term::binary(OpCode::Add, op(Lhs), op(Rhs));
  }
  template <typename A, typename B> Term sub(A Lhs, B Rhs) {
    return Term::binary(OpCode::Sub, op(Lhs), op(Rhs));
  }
  template <typename A, typename B> Term mul(A Lhs, B Rhs) {
    return Term::binary(OpCode::Mul, op(Lhs), op(Rhs));
  }
  template <typename A, typename B> Term div(A Lhs, B Rhs) {
    return Term::binary(OpCode::Div, op(Lhs), op(Rhs));
  }
  template <typename A> Term atom(A Value) { return Term::atom(op(Value)); }

  /// Condition helper for branch(); holds both sides and the relation.
  struct Cond {
    Term L;
    RelOp Rel;
    Term R;
  };
  template <typename A, typename B> Cond lt(A Lhs, B Rhs) {
    return {Term::atom(op(Lhs)), RelOp::Lt, Term::atom(op(Rhs))};
  }
  template <typename A, typename B> Cond ge(A Lhs, B Rhs) {
    return {Term::atom(op(Lhs)), RelOp::Ge, Term::atom(op(Rhs))};
  }
  Cond cond(Term L, RelOp Rel, Term R) { return {L, Rel, R}; }

  /// Cursor for appending instructions and terminating one block.
  class BlockRef {
  public:
    BlockRef &assign(std::string_view Var, Term Rhs) {
      Builder.G.block(Id).Instrs.push_back(
          Instr::assign(Builder.G.Vars.getOrCreate(Var), Rhs));
      return *this;
    }

    BlockRef &skip() {
      Builder.G.block(Id).Instrs.push_back(Instr::skip());
      return *this;
    }

    BlockRef &out(std::initializer_list<std::string_view> Vars) {
      std::vector<VarId> Ids;
      for (std::string_view Name : Vars)
        Ids.push_back(Builder.G.Vars.getOrCreate(Name));
      Builder.G.block(Id).Instrs.push_back(Instr::out(std::move(Ids)));
      return *this;
    }

    /// Terminators (end the fluent chain).
    void jump(BlockId Target) { Builder.G.addEdge(Id, Target); }

    void branch(Cond C, BlockId Then, BlockId Else) {
      Builder.G.block(Id).Instrs.push_back(Instr::branch(C.L, C.Rel, C.R));
      Builder.G.addEdge(Id, Then);
      Builder.G.addEdge(Id, Else);
    }

    void choose(std::initializer_list<BlockId> Targets) {
      for (BlockId Target : Targets)
        Builder.G.addEdge(Id, Target);
    }

    void halt() { Builder.G.setEnd(Id); }

  private:
    friend class GraphBuilder;
    BlockRef(GraphBuilder &Builder, BlockId Id) : Builder(Builder), Id(Id) {}
    GraphBuilder &Builder;
    BlockId Id;
  };

  /// Returns a cursor for \p Id.
  BlockRef at(BlockId Id) { return BlockRef(*this, Id); }

  /// Finalizes the graph.  Asserts validity in debug builds; use
  /// FlowGraph::validate() for recoverable checking.
  FlowGraph take() {
    assert(G.validate().empty() && "GraphBuilder produced an invalid graph");
    return std::move(G);
  }

  /// Access to the graph under construction (e.g. for validate()).
  FlowGraph &graph() { return G; }

private:
  FlowGraph G;
};

} // namespace am

#endif // AM_IR_GRAPHBUILDER_H
