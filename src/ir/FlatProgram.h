//===- ir/FlatProgram.h - Arena-backed flat instruction snapshot -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat snapshot of a FlowGraph's instruction stream: every instruction
/// pointer in layout order in one contiguous arena-backed array, grouped
/// into per-block spans, each slot keyed by the instruction's stable id.
/// The transposed transfer composer walks this instead of the per-block
/// vectors — one linear pass over the whole program with no per-block
/// indirection — and the stable ids key its packed rows back to
/// instructions when a consumer needs provenance.
///
/// A snapshot borrows the graph's instruction storage, so it is valid
/// only until the next graph mutation; builders stamp the ticks they were
/// taken at and consumers rebuild when the graph moved on.
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_FLATPROGRAM_H
#define AM_IR_FLATPROGRAM_H

#include "ir/FlowGraph.h"
#include "support/Arena.h"

namespace am {

class FlatProgram {
public:
  struct Slot {
    const Instr *I;
    uint32_t Id; ///< The instruction's stable id (0 if never assigned).
  };

  /// Half-open slot range [Begin, End) of one block, in layout order.
  struct Span {
    uint32_t Begin = 0;
    uint32_t End = 0;
  };

  /// Rebuilds the snapshot from \p G (one arena reset + a handful of bump
  /// allocations; no per-block heap traffic).
  void build(const FlowGraph &G) {
    Mem.reset();
    size_t NumBlocks = G.numBlocks();
    size_t Total = 0, PredTotal = 0, SuccTotal = 0;
    for (BlockId B = 0; B < NumBlocks; ++B) {
      Total += G.block(B).Instrs.size();
      PredTotal += G.block(B).Preds.size();
      SuccTotal += G.block(B).Succs.size();
    }
    Spans = Mem.allocate<Span>(NumBlocks);
    Slots = Mem.allocate<Slot>(Total);
    PredOff = Mem.allocate<uint32_t>(NumBlocks + 1);
    SuccOff = Mem.allocate<uint32_t>(NumBlocks + 1);
    PredList = Mem.allocate<BlockId>(PredTotal);
    SuccList = Mem.allocate<BlockId>(SuccTotal);
    NumSlotsVal = Total;
    NumBlocksVal = NumBlocks;
    uint32_t Cursor = 0, PredCursor = 0, SuccCursor = 0;
    for (BlockId B = 0; B < NumBlocks; ++B) {
      Spans[B].Begin = Cursor;
      for (const Instr &I : G.block(B).Instrs)
        Slots[Cursor++] = {&I, I.Id};
      Spans[B].End = Cursor;
      PredOff[B] = PredCursor;
      for (BlockId P : G.block(B).Preds)
        PredList[PredCursor++] = P;
      SuccOff[B] = SuccCursor;
      for (BlockId S : G.block(B).Succs)
        SuccList[SuccCursor++] = S;
    }
    PredOff[NumBlocks] = PredCursor;
    SuccOff[NumBlocks] = SuccCursor;
    BuiltAt = G.modTick();
    StructAt = G.structTick();
  }

  size_t numBlocks() const { return NumBlocksVal; }
  size_t numSlots() const { return NumSlotsVal; }
  Span span(BlockId B) const { return Spans[B]; }
  const Slot &slot(size_t Idx) const { return Slots[Idx]; }

  /// CSR edge lists: the predecessors / successors of \p B as contiguous
  /// half-open ranges.  The solver's slice fixpoints walk these instead
  /// of the Block structs — an eval's control path touches two small flat
  /// arrays, not one Block object per edge.
  struct Edges {
    const BlockId *Begin;
    const BlockId *End;
    const BlockId *begin() const { return Begin; }
    const BlockId *end() const { return End; }
    bool empty() const { return Begin == End; }
  };
  Edges preds(BlockId B) const {
    return {PredList + PredOff[B], PredList + PredOff[B + 1]};
  }
  Edges succs(BlockId B) const {
    return {SuccList + SuccOff[B], SuccList + SuccOff[B + 1]};
  }

  /// The raw CSR arrays, for hot loops that hoist the direction branch
  /// out of their block iteration: block B's edges are
  /// List[Off[B] .. Off[B + 1]).
  struct Csr {
    const uint32_t *Off;
    const BlockId *List;
  };
  Csr predCsr() const { return {PredOff, PredList}; }
  Csr succCsr() const { return {SuccOff, SuccList}; }

  /// The graph tick the snapshot was taken at; stale once the graph's
  /// modTick moves past it.
  Tick builtAt() const { return BuiltAt; }
  /// The graph's structural tick at build time; the edge lists are stale
  /// once the graph's structTick moves past it.
  Tick structAt() const { return StructAt; }

private:
  support::Arena Mem;
  Span *Spans = nullptr;
  Slot *Slots = nullptr;
  uint32_t *PredOff = nullptr;
  uint32_t *SuccOff = nullptr;
  BlockId *PredList = nullptr;
  BlockId *SuccList = nullptr;
  size_t NumBlocksVal = 0;
  size_t NumSlotsVal = 0;
  Tick BuiltAt = 0;
  Tick StructAt = 0;
};

} // namespace am

#endif // AM_IR_FLATPROGRAM_H
