//===- ir/Patterns.h - Assignment and expression pattern universes -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pattern universes of Section 2: the set EP of expression patterns
/// and the set AP of assignment patterns occurring in a program, indexed
/// densely so dataflow facts are bit vectors.  Also provides the
/// per-instruction relations every analysis needs:
///
///  * an instruction *blocks* the hoisting of `x := t` if it modifies an
///    operand of t, or uses or modifies x (Definition 3.2);
///  * an instruction *kills* (is not ASS-TRANSP for) `v := t` if it
///    modifies v or an operand of t (Table 2);
///  * an instruction *kills* an expression pattern e if it modifies an
///    operand of e (classic availability/anticipability).
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_PATTERNS_H
#define AM_IR_PATTERNS_H

#include "ir/FlowGraph.h"
#include "support/BitVector.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace am {

/// An assignment pattern `Lhs := Rhs` (a string pattern, not an occurrence).
struct AssignPat {
  VarId Lhs = VarId::Invalid;
  Term Rhs;

  friend bool operator==(const AssignPat &A, const AssignPat &B) {
    return A.Lhs == B.Lhs && A.Rhs == B.Rhs;
  }
};

/// Dense index over the assignment patterns AP of one program snapshot.
/// Rebuild after every transformation step; indices are only meaningful for
/// the snapshot the table was built from.
class AssignPatternTable {
public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  /// Collects every assignment pattern occurring in \p G, in deterministic
  /// (block-index, instruction-index) first-occurrence order.  Returns
  /// true if the pattern list differs from the previous build (callers
  /// use this to decide whether bit indices — and thus any cached facts
  /// keyed on them — are still meaningful).  Rebuilding reuses the
  /// table's existing storage.
  bool build(const FlowGraph &G);

  size_t size() const { return Pats.size(); }

  const AssignPat &pattern(size_t Idx) const {
    assert(Idx < Pats.size() && "pattern index out of range");
    return Pats[Idx];
  }

  /// Index of pattern `Lhs := Rhs`, or npos.
  size_t indexOf(VarId Lhs, const Term &Rhs) const;

  /// Index of the pattern instruction \p I is an occurrence of, or npos if
  /// \p I is not an assignment (or is an `x := x` pseudo-skip).
  size_t occurrence(const Instr &I) const;

  /// Sets \p Out to the patterns whose *hoisting* \p I blocks.
  void blockedBy(const Instr &I, BitVector &Out) const;

  /// Sets \p Out to the patterns for which \p I is not ASS-TRANSP.
  void killedBy(const Instr &I, BitVector &Out) const;

  /// Patterns `v := t` with v not an operand of t — the only patterns the
  /// redundancy analysis of Table 2 ranges over.
  const BitVector &redundancyEligible() const { return RedundancyOk; }

  /// True if pattern \p Idx has the form `h_e := e` for the temporary
  /// associated with expression pattern e (an *initialization*).
  bool isTempInit(size_t Idx) const { return TempInit[Idx]; }

  /// Returns a fresh all-false fact vector of the right width.
  BitVector makeVector() const { return BitVector(Pats.size()); }

private:
  void notePatternVars(size_t Idx, const AssignPat &P);
  const BitVector &lhsPats(VarId V) const;
  const BitVector &rhsUsePats(VarId V) const;

  std::vector<AssignPat> Pats;
  std::vector<AssignPat> PrevPats; // previous build, for change detection
  std::unordered_multimap<size_t, size_t> Index; // hash -> pattern idx
  std::vector<BitVector> PatsWithLhs;            // var -> patterns with lhs var
  std::vector<BitVector> PatsUsingInRhs;         // var -> patterns using var in rhs
  BitVector RedundancyOk;
  std::vector<bool> TempInit;
  BitVector Empty;
};

/// Dense index over the expression patterns EP of one program snapshot
/// (assignment right-hand sides and branch-condition operands with exactly
/// one operator).  Used by the LCM baseline and by statistics.
class ExprPatternTable {
public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  void build(const FlowGraph &G);

  size_t size() const { return Terms.size(); }

  const Term &term(size_t Idx) const {
    assert(Idx < Terms.size() && "expression index out of range");
    return Terms[Idx];
  }

  size_t indexOf(const Term &T) const;

  /// Sets \p Out to the expression patterns computed by \p I (in its
  /// right-hand side or one of its condition operands).
  void computedBy(const Instr &I, BitVector &Out) const;

  /// Sets \p Out to the expression patterns killed by \p I (an operand is
  /// modified).
  void killedBy(const Instr &I, BitVector &Out) const;

  BitVector makeVector() const { return BitVector(Terms.size()); }

private:
  void noteTerm(const Term &T);
  const BitVector &usePats(VarId V) const;

  std::vector<Term> Terms;
  std::unordered_multimap<size_t, size_t> Index;
  std::vector<BitVector> PatsUsingVar; // var -> patterns with var operand
  BitVector Empty;
};

} // namespace am

#endif // AM_IR_PATTERNS_H
