//===- ir/FlowGraph.cpp - Control-flow graph implementation ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "ir/FlowGraph.h"

#include <algorithm>
#include <unordered_map>

using namespace am;

size_t FlowGraph::numInstrs() const {
  size_t N = 0;
  for (BlockId B = 0; B < numBlocks(); ++B)
    N += block(B).Instrs.size();
  return N;
}

std::vector<std::string> FlowGraph::validate() const {
  std::vector<std::string> Problems;
  auto Complain = [&](std::string Msg) { Problems.push_back(std::move(Msg)); };

  if (Start == InvalidBlock || Start >= numBlocks()) {
    Complain("start node is not set");
    return Problems;
  }
  if (End == InvalidBlock || End >= numBlocks()) {
    Complain("end node is not set");
    return Problems;
  }
  if (!block(Start).Preds.empty())
    Complain("start node has predecessors");
  if (!block(End).Succs.empty())
    Complain("end node has successors");

  // Adjacency lists must be mutually consistent.
  for (BlockId B = 0; B < numBlocks(); ++B) {
    for (BlockId S : block(B).Succs) {
      if (S >= numBlocks()) {
        Complain("block " + std::to_string(B) + " has out-of-range successor");
        continue;
      }
      const auto &P = block(S).Preds;
      if (std::count(P.begin(), P.end(), B) !=
          std::count(block(B).Succs.begin(), block(B).Succs.end(), S))
        Complain("edge " + std::to_string(B) + "->" + std::to_string(S) +
                 " has inconsistent adjacency lists");
    }
    if (B != End && block(B).Succs.empty())
      Complain("non-end block " + std::to_string(B) + " has no successors");
  }

  // Branch conditions: only as the last instruction, only in blocks with
  // more than one successor.
  for (BlockId B = 0; B < numBlocks(); ++B) {
    const auto &Instrs = block(B).Instrs;
    for (size_t I = 0; I < Instrs.size(); ++I)
      if (Instrs[I].isBranch() && I + 1 != Instrs.size())
        Complain("block " + std::to_string(B) +
                 " has a branch condition before its last instruction");
    if (!Instrs.empty() && Instrs.back().isBranch() &&
        block(B).Succs.size() < 2)
      Complain("block " + std::to_string(B) +
               " has a branch condition but fewer than two successors");
  }

  // Every node lies on a path from s to e (Section 2 assumption).
  std::vector<bool> FromStart(numBlocks(), false), ToEnd(numBlocks(), false);
  std::vector<BlockId> Work{Start};
  FromStart[Start] = true;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId S : block(B).Succs)
      if (!FromStart[S]) {
        FromStart[S] = true;
        Work.push_back(S);
      }
  }
  Work.push_back(End);
  ToEnd[End] = true;
  while (!Work.empty()) {
    BlockId B = Work.back();
    Work.pop_back();
    for (BlockId P : block(B).Preds)
      if (!ToEnd[P]) {
        ToEnd[P] = true;
        Work.push_back(P);
      }
  }
  for (BlockId B = 0; B < numBlocks(); ++B) {
    if (!FromStart[B])
      Complain("block " + std::to_string(B) + " unreachable from start");
    else if (!ToEnd[B])
      Complain("block " + std::to_string(B) + " cannot reach end");
  }
  return Problems;
}

namespace {

/// Iterative postorder DFS over an adjacency accessor.
template <typename NextFn>
std::vector<BlockId> postorderFrom(BlockId Root, size_t NumBlocks,
                                   NextFn Next) {
  std::vector<BlockId> Order;
  std::vector<bool> Visited(NumBlocks, false);
  // Stack entries: (block, next child index).
  std::vector<std::pair<BlockId, size_t>> Stack;
  Visited[Root] = true;
  Stack.emplace_back(Root, 0);
  while (!Stack.empty()) {
    auto &[B, ChildIdx] = Stack.back();
    const std::vector<BlockId> &Kids = Next(B);
    if (ChildIdx < Kids.size()) {
      BlockId Kid = Kids[ChildIdx++];
      if (!Visited[Kid]) {
        Visited[Kid] = true;
        Stack.emplace_back(Kid, 0);
      }
      continue;
    }
    Order.push_back(B);
    Stack.pop_back();
  }
  return Order;
}

/// Postorder reversed, with unvisited blocks appended in index order.
std::vector<BlockId> toRpoWithStragglers(std::vector<BlockId> Postorder,
                                         size_t NumBlocks) {
  std::reverse(Postorder.begin(), Postorder.end());
  std::vector<bool> Seen(NumBlocks, false);
  for (BlockId B : Postorder)
    Seen[B] = true;
  for (BlockId B = 0; B < NumBlocks; ++B)
    if (!Seen[B])
      Postorder.push_back(B);
  return Postorder;
}

} // namespace

std::vector<BlockId> FlowGraph::reversePostorder() const {
  assert(Start != InvalidBlock && "graph has no start node");
  auto PO = postorderFrom(Start, numBlocks(), [this](BlockId B) -> const std::vector<BlockId> & {
    return block(B).Succs;
  });
  return toRpoWithStragglers(std::move(PO), numBlocks());
}

std::vector<BlockId> FlowGraph::reverseGraphReversePostorder() const {
  assert(End != InvalidBlock && "graph has no end node");
  auto PO = postorderFrom(End, numBlocks(), [this](BlockId B) -> const std::vector<BlockId> & {
    return block(B).Preds;
  });
  return toRpoWithStragglers(std::move(PO), numBlocks());
}

bool FlowGraph::hasCriticalEdges() const {
  for (BlockId B = 0; B < numBlocks(); ++B) {
    if (block(B).Succs.size() <= 1)
      continue;
    for (BlockId S : block(B).Succs)
      if (block(S).Preds.size() > 1)
        return true;
  }
  return false;
}

unsigned FlowGraph::splitCriticalEdges() {
  unsigned NumSplit = 0;
  size_t OriginalBlocks = numBlocks();
  for (BlockId B = 0; B < OriginalBlocks; ++B) {
    if (block(B).Succs.size() <= 1)
      continue;
    for (size_t SuccIdx = 0; SuccIdx < block(B).Succs.size(); ++SuccIdx) {
      BlockId S = block(B).Succs[SuccIdx];
      if (block(S).Preds.size() <= 1)
        continue;
      // Insert a synthetic node on the edge B -> S, preserving the
      // positional meaning of B's successor list (branch targets).
      BlockId Mid = addBlock();
      block(Mid).Synthetic = true;
      block(B).Succs[SuccIdx] = Mid;
      block(Mid).Preds.push_back(B);
      block(Mid).Succs.push_back(S);
      auto &SPreds = block(S).Preds;
      *std::find(SPreds.begin(), SPreds.end(), B) = Mid;
      touchEdges(B);
      touchEdges(Mid);
      touchEdges(S);
      ++NumSplit;
    }
  }
  return NumSplit;
}

FlowGraph am::simplified(const FlowGraph &G) {
  FlowGraph Work = G;

  // `x := x` is identified with skip (Section 2); drop all skips.
  for (BlockId B = 0; B < Work.numBlocks(); ++B) {
    auto &Instrs = Work.block(B).Instrs;
    std::erase_if(Instrs, [](const Instr &I) {
      return I.isSkip() || (I.isAssign() && I.Rhs.isVarAtom(I.Lhs));
    });
  }

  // Decide which empty synthetic pass-through blocks to splice out.
  std::vector<bool> Dropped(Work.numBlocks(), false);
  for (BlockId B = 0; B < Work.numBlocks(); ++B) {
    const BasicBlock &BB = Work.block(B);
    Dropped[B] = BB.Synthetic && BB.Instrs.empty() && BB.Succs.size() == 1 &&
                 B != Work.start() && B != Work.end() && BB.Succs[0] != B;
  }

  // Resolve a block through chains of dropped blocks; guard against cycles
  // of dropped blocks by keeping the block where the walk would revisit.
  auto Resolve = [&](BlockId B) {
    std::vector<bool> Seen(Work.numBlocks(), false);
    while (Dropped[B] && !Seen[B]) {
      Seen[B] = true;
      B = Work.block(B).Succs[0];
    }
    return B;
  };

  // Rebuild with compacted ids.
  FlowGraph Out;
  Out.Vars = Work.Vars;
  Out.Exprs = Work.Exprs;
  std::vector<BlockId> NewId(Work.numBlocks(), InvalidBlock);
  for (BlockId B = 0; B < Work.numBlocks(); ++B)
    if (!Dropped[B])
      NewId[B] = Out.addBlock();
  for (BlockId B = 0; B < Work.numBlocks(); ++B) {
    if (Dropped[B])
      continue;
    BasicBlock &NewBB = Out.block(NewId[B]);
    NewBB.Instrs = Work.block(B).Instrs;
    NewBB.Synthetic = Work.block(B).Synthetic;
    Out.touchBlock(NewId[B]);
    for (BlockId S : Work.block(B).Succs)
      Out.addEdge(NewId[B], NewId[Resolve(S)]);
  }
  Out.setStart(NewId[Work.start()]);
  Out.setEnd(NewId[Work.end()]);
  return Out;
}

namespace {

/// Compares variables of two graphs: ordinary variables by name, temps up
/// to a growing bijection.
class TempBijection {
public:
  TempBijection(const FlowGraph &A, const FlowGraph &B, bool ByNameOnly)
      : A(A), B(B), ByNameOnly(ByNameOnly) {}

  bool varsMatch(VarId VA, VarId VB) {
    bool TempA = A.Vars.isTemp(VA), TempB = B.Vars.isTemp(VB);
    if (TempA != TempB)
      return false;
    if (!TempA || ByNameOnly)
      return A.Vars.name(VA) == B.Vars.name(VB);
    auto ItF = Fwd.find(VA);
    auto ItR = Rev.find(VB);
    if (ItF == Fwd.end() && ItR == Rev.end()) {
      Fwd.emplace(VA, VB);
      Rev.emplace(VB, VA);
      return true;
    }
    return ItF != Fwd.end() && ItR != Rev.end() && ItF->second == VB &&
           ItR->second == VA;
  }

  bool operandsMatch(const Operand &OA, const Operand &OB) {
    if (OA.K != OB.K)
      return false;
    if (OA.isConst())
      return OA.Const == OB.Const;
    return varsMatch(OA.Var, OB.Var);
  }

  bool termsMatch(const Term &TA, const Term &TB) {
    if (TA.Op != TB.Op)
      return false;
    if (!operandsMatch(TA.A, TB.A))
      return false;
    return TA.Op == OpCode::None || operandsMatch(TA.B, TB.B);
  }

  bool instrsMatch(const Instr &IA, const Instr &IB) {
    if (IA.K != IB.K)
      return false;
    switch (IA.K) {
    case Instr::Kind::Skip:
      return true;
    case Instr::Kind::Assign:
      return varsMatch(IA.Lhs, IB.Lhs) && termsMatch(IA.Rhs, IB.Rhs);
    case Instr::Kind::Out: {
      if (IA.OutVars.size() != IB.OutVars.size())
        return false;
      for (size_t I = 0; I < IA.OutVars.size(); ++I)
        if (!varsMatch(IA.OutVars[I], IB.OutVars[I]))
          return false;
      return true;
    }
    case Instr::Kind::Branch:
      return IA.Rel == IB.Rel && termsMatch(IA.CondL, IB.CondL) &&
             termsMatch(IA.CondR, IB.CondR);
    }
    return false;
  }

private:
  const FlowGraph &A;
  const FlowGraph &B;
  bool ByNameOnly;
  std::unordered_map<VarId, VarId> Fwd;
  std::unordered_map<VarId, VarId> Rev;
};

bool graphsMatch(const FlowGraph &A, const FlowGraph &B, bool ModuloTemps) {
  if (A.numBlocks() != B.numBlocks() || A.start() != B.start() ||
      A.end() != B.end())
    return false;
  TempBijection Map(A, B, /*ByNameOnly=*/!ModuloTemps);
  for (BlockId BlkId = 0; BlkId < A.numBlocks(); ++BlkId) {
    const BasicBlock &BA = A.block(BlkId);
    const BasicBlock &BB = B.block(BlkId);
    if (BA.Succs != BB.Succs || BA.Instrs.size() != BB.Instrs.size())
      return false;
    for (size_t I = 0; I < BA.Instrs.size(); ++I)
      if (!Map.instrsMatch(BA.Instrs[I], BB.Instrs[I]))
        return false;
  }
  return true;
}

} // namespace

bool am::equivalentModuloTemps(const FlowGraph &A, const FlowGraph &B) {
  return graphsMatch(A, B, /*ModuloTemps=*/true);
}

bool am::structurallyEqual(const FlowGraph &A, const FlowGraph &B) {
  return graphsMatch(A, B, /*ModuloTemps=*/false);
}
