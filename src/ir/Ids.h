//===- ir/Ids.h - Strongly-typed dense identifiers ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense identifier types used throughout the IR.  Variables and expression
/// patterns use strong enum ids so they cannot be confused; basic blocks use
/// a plain index type because they are used pervasively as array indices.
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_IDS_H
#define AM_IR_IDS_H

#include <cstdint>
#include <functional>

namespace am {

/// Identifies a program variable (including compiler temporaries) within one
/// FlowGraph's VarTable.
enum class VarId : uint32_t { Invalid = 0xFFFFFFFFu };

/// Identifies an interned non-trivial expression pattern within one
/// FlowGraph's ExprTable.
enum class ExprId : uint32_t { Invalid = 0xFFFFFFFFu };

/// Identifies a basic block by its index in FlowGraph::blocks().
using BlockId = uint32_t;

constexpr BlockId InvalidBlock = 0xFFFFFFFFu;

inline constexpr uint32_t index(VarId V) { return static_cast<uint32_t>(V); }
inline constexpr uint32_t index(ExprId E) { return static_cast<uint32_t>(E); }
inline constexpr bool isValid(VarId V) { return V != VarId::Invalid; }
inline constexpr bool isValid(ExprId E) { return E != ExprId::Invalid; }
inline constexpr VarId makeVarId(uint32_t I) { return static_cast<VarId>(I); }
inline constexpr ExprId makeExprId(uint32_t I) { return static_cast<ExprId>(I); }

} // namespace am

template <> struct std::hash<am::VarId> {
  size_t operator()(am::VarId V) const noexcept {
    return std::hash<uint32_t>()(am::index(V));
  }
};

template <> struct std::hash<am::ExprId> {
  size_t operator()(am::ExprId E) const noexcept {
    return std::hash<uint32_t>()(am::index(E));
  }
};

#endif // AM_IR_IDS_H
