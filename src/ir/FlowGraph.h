//===- ir/FlowGraph.h - Control-flow graphs ---------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Directed flow graphs G = (N, E, s, e) per Section 2 of the paper: nodes
/// are basic blocks of instructions, edges the (possibly nondeterministic)
/// branching structure, with a unique start node s (no predecessors) and a
/// unique end node e (no successors).  Every node is assumed to lie on a
/// path from s to e; validate() checks this.
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_FLOWGRAPH_H
#define AM_IR_FLOWGRAPH_H

#include "ir/ExprTable.h"
#include "ir/Instr.h"
#include "ir/VarTable.h"

#include <string>
#include <vector>

namespace am {

/// A monotonically increasing modification timestamp of one FlowGraph.
/// Ticks order mutations: consumers snapshot `modTick()` and later ask
/// which blocks changed since.  Tick 0 is "before every mutation".
using Tick = uint64_t;

/// A basic block: a straight-line instruction sequence plus its CFG edges.
struct BasicBlock {
  std::vector<Instr> Instrs;
  std::vector<BlockId> Succs;
  std::vector<BlockId> Preds;

  /// True for nodes inserted by critical-edge splitting (Section 2.1);
  /// simplify() may splice them back out when they stay empty.
  bool Synthetic = false;

  /// Returns the branch condition instruction if the block ends in one.
  const Instr *branchInstr() const {
    if (!Instrs.empty() && Instrs.back().isBranch())
      return &Instrs.back();
    return nullptr;
  }
};

/// A whole program: blocks, edges, variables and expression patterns.
/// Copyable by value; transformations mutate in place.
class FlowGraph {
public:
  VarTable Vars;
  ExprTable Exprs;

  /// Appends an empty block and returns its id.
  BlockId addBlock() {
    Blocks.emplace_back();
    StructTick = ++ModTick;
    BlockTicks.push_back(ModTick);
    return static_cast<BlockId>(Blocks.size() - 1);
  }

  /// Adds the edge From -> To, maintaining both adjacency lists.  For
  /// blocks ending in a branch condition, the order of successors is
  /// significant: Succs[0] is the true target, Succs[1] the false target.
  void addEdge(BlockId From, BlockId To) {
    block(From).Succs.push_back(To);
    block(To).Preds.push_back(From);
    StructTick = ++ModTick;
    BlockTicks[From] = ModTick;
    BlockTicks[To] = ModTick;
  }

  BasicBlock &block(BlockId Id) {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }
  const BasicBlock &block(BlockId Id) const {
    assert(Id < Blocks.size() && "block id out of range");
    return Blocks[Id];
  }

  size_t numBlocks() const { return Blocks.size(); }

  /// Total number of instructions over all blocks.
  size_t numInstrs() const;

  BlockId start() const { return Start; }
  BlockId end() const { return End; }
  void setStart(BlockId Id) { Start = Id; }
  void setEnd(BlockId Id) { End = Id; }

  /// Checks the structural invariants (unique start/end, consistent
  /// adjacency, every node on an s-to-e path, branch conditions only at
  /// block ends of multi-successor blocks).  Returns human-readable
  /// problems; empty means valid.
  std::vector<std::string> validate() const;

  /// Reverse postorder over forward edges from the start node.  Unreachable
  /// blocks are appended at the end in index order so analyses still see
  /// every block.
  std::vector<BlockId> reversePostorder() const;

  /// Reverse postorder of the *reverse* graph from the end node (the
  /// canonical iteration order for backward analyses).
  std::vector<BlockId> reverseGraphReversePostorder() const;

  /// Splits every critical edge (from a node with >1 successors to a node
  /// with >1 predecessors) by inserting a synthetic node, per Section 2.1.
  /// Returns the number of edges split.
  unsigned splitCriticalEdges();

  /// True if some edge is critical.
  bool hasCriticalEdges() const;

  //===--------------------------------------------------------------------===//
  // Modification ticks
  //
  // Every mutation of the graph bumps a monotonically increasing tick and
  // stamps the blocks it touched.  Incremental consumers (the dataflow
  // solver's transfer cache, the AM phase's pattern table) snapshot
  // `modTick()` after reading the graph and later recompute only what a
  // younger tick invalidates.  `addBlock`/`addEdge` stamp automatically;
  // code that rewrites a block's instruction list in place must call
  // `touchBlock` (all transformations in src/transform/ do).
  //===--------------------------------------------------------------------===//

  /// Tick of the most recent mutation (0 only for an untouched graph).
  Tick modTick() const { return ModTick; }

  /// Tick of the most recent *structural* mutation (blocks or edges
  /// added/rewired).  Cached block orders and dependence info stay valid
  /// while this stands still.
  Tick structTick() const { return StructTick; }

  /// Tick of the most recent mutation touching block \p B.
  Tick blockTick(BlockId B) const {
    assert(B < BlockTicks.size() && "block id out of range");
    return BlockTicks[B];
  }

  /// Records that \p B's instruction list changed.
  void touchBlock(BlockId B) {
    assert(B < BlockTicks.size() && "block id out of range");
    BlockTicks[B] = ++ModTick;
  }

  /// Records an edge rewrite of \p B (adjacency edited in place rather
  /// than through addEdge).
  void touchEdges(BlockId B) {
    StructTick = ++ModTick;
    BlockTicks[B] = ModTick;
  }

  /// True if any block's instruction list (or the graph structure) changed
  /// after tick \p T.  O(1).
  bool instrsChangedSince(Tick T) const { return ModTick > T; }

private:
  std::vector<BasicBlock> Blocks;
  BlockId Start = InvalidBlock;
  BlockId End = InvalidBlock;
  Tick ModTick = 0;
  Tick StructTick = 0;
  std::vector<Tick> BlockTicks;
};

/// Normalizes a graph for comparison and final output: rewrites `x := x`
/// to skip, deletes skip instructions, splices out empty synthetic
/// pass-through blocks, and compacts block ids (preserving relative
/// order).  Returns the normalized copy.
FlowGraph simplified(const FlowGraph &G);

/// Structural equality that treats compiler temporaries up to a bijective
/// renaming: block structure, edges and instructions must match exactly,
/// ordinary variables must have equal names, and temporaries must map
/// one-to-one.  Used to compare transformation results against the paper's
/// figures regardless of temp numbering.
bool equivalentModuloTemps(const FlowGraph &A, const FlowGraph &B);

/// Exact structural equality including variable names.
bool structurallyEqual(const FlowGraph &A, const FlowGraph &B);

} // namespace am

#endif // AM_IR_FLOWGRAPH_H
