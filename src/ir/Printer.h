//===- ir/Printer.h - Textual and DOT rendering of graphs ------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders flow graphs in the explicit CFG syntax understood by the parser
/// (so print -> parse round-trips) and as Graphviz DOT for visual
/// inspection of the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_PRINTER_H
#define AM_IR_PRINTER_H

#include "ir/FlowGraph.h"

#include <functional>
#include <string>

namespace am {

/// Renders a single term, e.g. "a + b" or "7".
std::string printTerm(const Term &T, const VarTable &Vars);

/// Renders a single instruction, e.g. "x := a + b" or "out(i, x)".
/// Branch conditions render as "if a + b > c" (targets are block syntax).
std::string printInstr(const Instr &I, const VarTable &Vars);

/// Renders the whole graph in the parser's CFG syntax:
///
///   graph {
///   temp h1, h2
///   b0:
///     y := c + d
///     goto b1
///   b1:
///     if x + z > y + i then b2 else b3
///   ...
///   b3:
///     out(i, x, y)
///     halt
///   }
///
/// Blocks are named b<index>.  Multi-successor blocks without a condition
/// print as "br b2 b3" (nondeterministic branch).
std::string printGraph(const FlowGraph &G);

/// Renders Graphviz DOT with one record node per block.
std::string printDot(const FlowGraph &G, const std::string &Title = "G");

/// As above, with a per-instruction annotation: \p Note is invoked for
/// every instruction and its (possibly empty) return value is rendered
/// after the instruction text, separated by two spaces.  Used by `amopt
/// --dot --remarks` to annotate instructions with their remark history.
std::string printDot(const FlowGraph &G, const std::string &Title,
                     const std::function<std::string(const Instr &)> &Note);

} // namespace am

#endif // AM_IR_PRINTER_H
