//===- ir/InstrNumbering.h - Stable instruction ids ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns stable provenance ids (Instr::Id) to every instruction of a
/// graph that does not yet carry one.  The transforms call this at entry
/// while remark collection is enabled so that remarks can name
/// instructions by a token that survives block rebuilds; ids are written
/// directly into the instructions *without* bumping the graph's
/// modification ticks, so numbering never perturbs incremental-solver
/// caching or stats.
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_INSTR_NUMBERING_H
#define AM_IR_INSTR_NUMBERING_H

#include "ir/FlowGraph.h"
#include "support/Remarks.h"

namespace am {

/// Gives every unnumbered instruction in \p G a fresh id from the remark
/// sink's counter.  Idempotent; already-numbered instructions keep their
/// ids.  Returns the number of ids assigned.
inline unsigned ensureInstrIds(FlowGraph &G) {
  unsigned Assigned = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (Instr &I : G.block(B).Instrs)
      if (I.Id == 0) {
        I.Id = remarks::Sink::get().freshId();
        ++Assigned;
      }
  return Assigned;
}

/// Current location of the instruction carrying id \p Id, or {false, 0, 0}
/// if no instruction in \p G carries it (ids survive motion but not
/// elimination).  Linear in the program size; callers that resolve many
/// ids against one graph snapshot should build their own map.
struct InstrLocation {
  bool Found = false;
  BlockId Block = 0;
  size_t Index = 0;
};

inline InstrLocation findInstrById(const FlowGraph &G, unsigned Id) {
  if (Id != 0)
    for (BlockId B = 0; B < G.numBlocks(); ++B) {
      const auto &Instrs = G.block(B).Instrs;
      for (size_t Idx = 0; Idx < Instrs.size(); ++Idx)
        if (Instrs[Idx].Id == Id)
          return {true, B, Idx};
    }
  return {};
}

} // namespace am

#endif // AM_IR_INSTR_NUMBERING_H
