//===- ir/Printer.cpp - Textual and DOT rendering ---------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "support/BitVector.h"

#include <sstream>

using namespace am;

static std::string printOperand(const Operand &O, const VarTable &Vars) {
  if (O.isVar())
    return Vars.name(O.Var);
  return std::to_string(O.Const);
}

std::string am::printTerm(const Term &T, const VarTable &Vars) {
  std::string S = printOperand(T.A, Vars);
  if (T.isNonTrivial()) {
    S += ' ';
    S += spelling(T.Op);
    S += ' ';
    S += printOperand(T.B, Vars);
  }
  return S;
}

std::string am::printInstr(const Instr &I, const VarTable &Vars) {
  switch (I.K) {
  case Instr::Kind::Skip:
    return "skip";
  case Instr::Kind::Assign:
    return Vars.name(I.Lhs) + " := " + printTerm(I.Rhs, Vars);
  case Instr::Kind::Out: {
    std::string S = "out(";
    for (size_t Idx = 0; Idx < I.OutVars.size(); ++Idx) {
      if (Idx)
        S += ", ";
      S += Vars.name(I.OutVars[Idx]);
    }
    return S + ")";
  }
  case Instr::Kind::Branch:
    return "if " + printTerm(I.CondL, Vars) + " " + spelling(I.Rel) + " " +
           printTerm(I.CondR, Vars);
  }
  return "<invalid>";
}

std::string am::printGraph(const FlowGraph &G) {
  std::ostringstream OS;
  OS << "graph {\n";

  // Declare temporaries so a re-parse can restore their temp-ness.  Only
  // temporaries that still occur are declared (the flush may have removed
  // every trace of some), in first-occurrence order — the order in which
  // a re-parse interns them — so print -> parse round-trips exactly.
  BitVector Seen(G.Vars.size());
  std::string Temps;
  auto NoteVar = [&](VarId V) {
    if (Seen.test(index(V)))
      return;
    Seen.set(index(V));
    if (!G.Vars.isTemp(V))
      return;
    if (!Temps.empty())
      Temps += ", ";
    Temps += G.Vars.name(V);
  };
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (const Instr &I : G.block(B).Instrs) {
      if (I.isAssign())
        NoteVar(I.Lhs);
      I.forEachUsedVar(NoteVar);
    }
  }
  if (!Temps.empty())
    OS << "temp " << Temps << "\n";

  auto BlockName = [](BlockId B) { return "b" + std::to_string(B); };

  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    const BasicBlock &BB = G.block(B);
    OS << BlockName(B) << ":";
    if (B == G.start() && B == G.end())
      OS << "    # start, end";
    else if (B == G.start())
      OS << "    # start";
    else if (B == G.end())
      OS << "    # end";
    OS << "\n";
    if (BB.Synthetic)
      OS << "  synthetic\n";

    const Instr *Br = BB.branchInstr();
    for (const Instr &I : BB.Instrs) {
      if (&I == Br)
        continue;
      OS << "  " << printInstr(I, G.Vars) << "\n";
    }

    if (Br != nullptr) {
      assert(BB.Succs.size() == 2 && "branch blocks have two successors");
      OS << "  " << printInstr(*Br, G.Vars) << " then "
         << BlockName(BB.Succs[0]) << " else " << BlockName(BB.Succs[1])
         << "\n";
    } else if (BB.Succs.empty()) {
      OS << "  halt\n";
    } else if (BB.Succs.size() == 1) {
      OS << "  goto " << BlockName(BB.Succs[0]) << "\n";
    } else {
      OS << "  br";
      for (BlockId S : BB.Succs)
        OS << " " << BlockName(S);
      OS << "\n";
    }
  }
  OS << "}\n";
  return OS.str();
}

std::string am::printDot(const FlowGraph &G, const std::string &Title) {
  return printDot(G, Title, nullptr);
}

std::string
am::printDot(const FlowGraph &G, const std::string &Title,
             const std::function<std::string(const Instr &)> &Note) {
  std::ostringstream OS;
  OS << "digraph \"" << Title << "\" {\n";
  OS << "  node [shape=box, fontname=\"monospace\"];\n";
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    const BasicBlock &BB = G.block(B);
    OS << "  b" << B << " [label=\"b" << B;
    if (B == G.start())
      OS << " (start)";
    if (B == G.end())
      OS << " (end)";
    OS << "\\l";
    for (const Instr &I : BB.Instrs) {
      std::string Line = printInstr(I, G.Vars);
      if (Note) {
        std::string N = Note(I);
        if (!N.empty())
          Line += "  " + N;
      }
      // Escape double quotes for DOT.
      std::string Escaped;
      for (char C : Line) {
        if (C == '"')
          Escaped += "\\\"";
        else
          Escaped += C;
      }
      OS << Escaped << "\\l";
    }
    OS << "\"];\n";
  }
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (BlockId S : G.block(B).Succs)
      OS << "  b" << B << " -> b" << S << ";\n";
  OS << "}\n";
  return OS.str();
}
