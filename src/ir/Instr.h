//===- ir/Instr.h - Instructions -------------------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instructions per Section 2 of the paper: assignment statements `v := t`
/// (including the empty statement `skip`), write statements `out(...)`, and
/// boolean branch conditions.  A branch condition may only appear as the
/// last instruction of a block with more than one successor; blocks with
/// more than one successor and no condition branch nondeterministically
/// (the paper's default model).
///
//===----------------------------------------------------------------------===//

#ifndef AM_IR_INSTR_H
#define AM_IR_INSTR_H

#include "ir/Term.h"

#include <vector>

namespace am {

/// One IR instruction.  A tagged flat struct: only the fields for the active
/// kind are meaningful.
struct Instr {
  enum class Kind : uint8_t { Assign, Skip, Out, Branch };

  Kind K = Kind::Skip;

  /// Stable provenance id for the remark subsystem; 0 = unnumbered.  Not
  /// part of the instruction's semantics: excluded from operator== so
  /// value-equality (and the transforms' commit checks) ignore it, and
  /// carried along by copies so an instruction keeps its identity as
  /// blocks are rebuilt.  Assigned lazily by ensureInstrIds() only while
  /// remark collection is enabled.
  uint32_t Id = 0;

  /// Assign: destination variable and three-address right-hand side.
  VarId Lhs = VarId::Invalid;
  Term Rhs;

  /// Out: written variables, in order.
  std::vector<VarId> OutVars;

  /// Branch: `CondL Rel CondR`, each side a (possibly trivial) term.
  RelOp Rel = RelOp::Lt;
  Term CondL;
  Term CondR;

  static Instr assign(VarId Lhs, Term Rhs) {
    Instr I;
    I.K = Kind::Assign;
    I.Lhs = Lhs;
    I.Rhs = Rhs;
    return I;
  }

  static Instr skip() {
    Instr I;
    I.K = Kind::Skip;
    return I;
  }

  static Instr out(std::vector<VarId> Vars) {
    Instr I;
    I.K = Kind::Out;
    I.OutVars = std::move(Vars);
    return I;
  }

  static Instr branch(Term L, RelOp Rel, Term R) {
    Instr I;
    I.K = Kind::Branch;
    I.CondL = std::move(L);
    I.Rel = Rel;
    I.CondR = std::move(R);
    return I;
  }

  bool isAssign() const { return K == Kind::Assign; }
  bool isSkip() const { return K == Kind::Skip; }
  bool isOut() const { return K == Kind::Out; }
  bool isBranch() const { return K == Kind::Branch; }

  /// The variable this instruction modifies, or Invalid.  Note that an
  /// assignment `x := x` is identified with skip (Section 2) and modifies
  /// nothing; callers should normalize such assignments away, but we guard
  /// here as well.
  VarId definedVar() const {
    if (K == Kind::Assign && !Rhs.isVarAtom(Lhs))
      return Lhs;
    return VarId::Invalid;
  }

  /// Invokes \p Fn for every variable this instruction *uses* (reads).
  template <typename FnT> void forEachUsedVar(FnT Fn) const {
    switch (K) {
    case Kind::Assign:
      Rhs.forEachVar(Fn);
      break;
    case Kind::Out:
      for (VarId V : OutVars)
        Fn(V);
      break;
    case Kind::Branch:
      CondL.forEachVar(Fn);
      CondR.forEachVar(Fn);
      break;
    case Kind::Skip:
      break;
    }
    return;
  }

  /// True if this instruction reads variable \p V.
  bool usesVar(VarId V) const {
    bool Found = false;
    forEachUsedVar([&](VarId U) { Found |= (U == V); });
    return Found;
  }

  friend bool operator==(const Instr &A, const Instr &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Assign:
      return A.Lhs == B.Lhs && A.Rhs == B.Rhs;
    case Kind::Skip:
      return true;
    case Kind::Out:
      return A.OutVars == B.OutVars;
    case Kind::Branch:
      return A.Rel == B.Rel && A.CondL == B.CondL && A.CondR == B.CondR;
    }
    return false;
  }
  friend bool operator!=(const Instr &A, const Instr &B) { return !(A == B); }
};

} // namespace am

#endif // AM_IR_INSTR_H
