//===- tests/verify_test.cpp - Adversarial optimality tests ----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The adversarial probe of Theorem 5.2: random members of the EM/AM
/// universe must (a) be semantically equivalent to the original and
/// (b) never evaluate fewer expressions than the uniform algorithm's
/// result on any execution.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "interp/Equivalence.h"
#include "transform/UniformEmAm.h"
#include "verify/AdversarialSearch.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Adversarial, DerivationsAreSemanticallySound) {
  FlowGraph G = figure4();
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    FlowGraph Member = randomUniverseMember(G, Seed);
    EXPECT_TRUE(Member.validate().empty()) << "seed " << Seed;
    auto Rep = checkEquivalent(
        G, Member, {{"c", 1}, {"d", 2}, {"x", 30}, {"z", 5}, {"i", 1}});
    ASSERT_TRUE(Rep.Equivalent)
        << Rep.Detail << "\nseed " << Seed << "\n" << printGraph(Member);
  }
}

TEST(Adversarial, PartialEliminationIsSound) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  x := a + b
  x := a + b
  out(x)
  halt
}
)");
  Rng R(3);
  unsigned Eliminated = eliminateRandomRedundant(G, R, /*KeepProb=*/1.0);
  EXPECT_EQ(Eliminated, 2u); // the first occurrence is not redundant
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 1u);
}

TEST(Adversarial, NoDerivationBeatsUniformOnFigures) {
  for (FlowGraph (*Fig)() : {figure1a, figure2a, figure4, figure8,
                             figure16, figure18b}) {
    FlowGraph G = Fig();
    FlowGraph U = runUniformEmAm(G);
    for (uint64_t Seed = 0; Seed < 30; ++Seed) {
      FlowGraph Member = randomUniverseMember(G, Seed);
      for (uint64_t Run = 0; Run < 3; ++Run) {
        std::unordered_map<std::string, int64_t> In = {
            {"a", 2}, {"b", 3}, {"c", 1}, {"d", 2},
            {"x", 9}, {"y", 4}, {"z", 1}, {"i", 0}};
        Interpreter::Options Opts;
        Opts.MaxSteps = 5000;
        auto RunU = Interpreter::execute(U, In, Run, Opts);
        auto RunM = Interpreter::execute(Member, In, Run, Opts);
        if (!RunU.finished() || !RunM.finished())
          continue;
        ASSERT_LE(RunU.Stats.ExprEvaluations, RunM.Stats.ExprEvaluations)
            << "an EM/AM-universe member beat the 'optimal' result!\n"
            << "derivation seed " << Seed << " run " << Run << "\n"
            << printGraph(Member);
      }
    }
  }
}

class AdversarialSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdversarialSweep, NoDerivationBeatsUniformOnRandomPrograms) {
  GenOptions Opts;
  Opts.TargetStmts = 25;
  FlowGraph G = generateStructuredProgram(GetParam(), Opts);
  FlowGraph U = runUniformEmAm(G);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    FlowGraph Member = randomUniverseMember(G, GetParam() * 100 + Seed);
    for (uint64_t Run = 0; Run < 2; ++Run) {
      std::unordered_map<std::string, int64_t> In = {
          {"v0", int64_t(Run) - 1}, {"v1", 5}, {"v2", -3}};
      auto Rep = checkEquivalent(G, Member, In, Run);
      ASSERT_TRUE(Rep.Equivalent)
          << Rep.Detail << "\nprogram seed " << GetParam()
          << " derivation seed " << Seed;
      auto RunU = Interpreter::execute(U, In, Run);
      ASSERT_LE(RunU.Stats.ExprEvaluations, Rep.Rhs.Stats.ExprEvaluations)
          << "program seed " << GetParam() << " derivation seed " << Seed
          << "\nmember:\n" << printGraph(Member);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialSweep,
                         ::testing::Range<uint64_t>(0, 15));
