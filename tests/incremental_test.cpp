//===- tests/incremental_test.cpp - Incremental solver equivalence -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential tests for the incremental fixpoint machinery: a reused
/// DataflowSolver / AmContext must produce *bit-identical* results to
/// from-scratch analysis at every round of the AM fixpoint, over the
/// paper's figures and a random-program corpus.  Also covers the cheap
/// observable contracts: a fully cached solve does zero block work, an
/// incremental re-solve after a local edit does strictly less work than
/// the initial solve, and pattern generations only advance when the
/// pattern universe actually changes.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/PaperAnalyses.h"
#include "dfa/Dataflow.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "ir/Patterns.h"
#include "transform/AssignmentHoisting.h"
#include "transform/AssignmentMotion.h"
#include "transform/RedundantAssignElim.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

/// Forward must-analysis over variables ("definitely assigned"), small
/// enough to reason about and structurally identical to the paper
/// problems (gen at defs, empty kill).
class TinyAssigned : public DataflowProblem {
public:
  explicit TinyAssigned(const FlowGraph &G) : NumVars(G.Vars.size()) {}

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return NumVars; }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    VarId Def = I.definedVar();
    if (isValid(Def))
      Out.set(index(Def));
  }
  void kill(BlockId, size_t, const Instr &, BitVector &Out) const override {
    Out = BitVector(NumVars);
  }

private:
  size_t NumVars;
};

void expectSameFacts(const FlowGraph &G, const DataflowResult &A,
                     const DataflowResult &B, const std::string &Context) {
  for (BlockId Blk = 0; Blk < G.numBlocks(); ++Blk) {
    EXPECT_EQ(A.entry(Blk), B.entry(Blk)) << Context << " entry of " << Blk;
    EXPECT_EQ(A.exit(Blk), B.exit(Blk)) << Context << " exit of " << Blk;
  }
}

/// Drives the AM fixpoint round by round with a persistent AmContext,
/// checking at every round that the context-backed (incremental) analyses
/// agree bit-for-bit with from-scratch ones.
void expectIncrementalMatchesFresh(FlowGraph G, const std::string &Context) {
  G.splitCriticalEdges();
  AmContext Ctx;
  for (unsigned Round = 0; Round < 64; ++Round) {
    std::string Where = Context + ", round " + std::to_string(Round);
    Ctx.refreshPatterns(G);
    const AssignPatternTable &Pats = Ctx.patterns();
    if (Pats.size() != 0) {
      RedundancyAnalysis IncRed = RedundancyAnalysis::run(
          G, Pats, Ctx.redundancySolver(), Ctx.patternGeneration());
      RedundancyAnalysis FreshRed = RedundancyAnalysis::run(G, Pats);
      HoistabilityAnalysis IncHoist =
          HoistabilityAnalysis::run(G, Pats, Ctx.hoistSolver(),
                                    Ctx.hoistLocals(),
                                    Ctx.patternGeneration());
      HoistabilityAnalysis FreshHoist = HoistabilityAnalysis::run(G, Pats);
      for (BlockId B = 0; B < G.numBlocks(); ++B) {
        EXPECT_EQ(IncRed.entry(B), FreshRed.entry(B)) << Where << " red " << B;
        EXPECT_EQ(IncRed.exit(B), FreshRed.exit(B)) << Where << " red " << B;
        EXPECT_EQ(IncHoist.entryHoistable(B), FreshHoist.entryHoistable(B))
            << Where << " hoist " << B;
        EXPECT_EQ(IncHoist.exitHoistable(B), FreshHoist.exitHoistable(B))
            << Where << " hoist " << B;
        EXPECT_EQ(IncHoist.locBlocked(B), FreshHoist.locBlocked(B))
            << Where << " locBlocked " << B;
        EXPECT_EQ(IncHoist.locHoistable(B), FreshHoist.locHoistable(B))
            << Where << " locHoistable " << B;
      }
    }
    unsigned Eliminated = runRedundantAssignmentElimination(G, Ctx);
    bool Hoisted = runAssignmentHoisting(G, Ctx);
    if (Eliminated == 0 && !Hoisted)
      return;
  }
  FAIL() << Context << ": AM fixpoint did not stabilize within 64 rounds";
}

/// Runs the AM phase once with a persistent context and once as a pure
/// from-scratch alternation; the final programs must print identically.
void expectSameFinalProgram(const FlowGraph &Base, const std::string &Context) {
  FlowGraph WithCtx = Base;
  WithCtx.splitCriticalEdges();
  AmContext Ctx;
  AmPhaseStats StatsCtx = runAssignmentMotionPhase(WithCtx, Ctx);

  FlowGraph Scratch = Base;
  Scratch.splitCriticalEdges();
  AmPhaseStats StatsScratch;
  while (true) {
    ++StatsScratch.Iterations;
    // One-shot entry points: every call re-derives everything.
    unsigned Eliminated = runRedundantAssignmentElimination(Scratch);
    StatsScratch.Eliminated += Eliminated;
    bool Hoisted = runAssignmentHoisting(Scratch);
    if (Hoisted)
      ++StatsScratch.HoistRounds;
    if (Eliminated == 0 && !Hoisted)
      break;
    ASSERT_LT(StatsScratch.Iterations, 256u) << Context;
  }

  EXPECT_EQ(printGraph(WithCtx), printGraph(Scratch)) << Context;
  EXPECT_EQ(StatsCtx.Iterations, StatsScratch.Iterations) << Context;
  EXPECT_EQ(StatsCtx.Eliminated, StatsScratch.Eliminated) << Context;
  EXPECT_EQ(StatsCtx.HoistRounds, StatsScratch.HoistRounds) << Context;
}

} // namespace

//===----------------------------------------------------------------------===//
// Solver-level contracts
//===----------------------------------------------------------------------===//

TEST(IncrementalSolver, FullyCachedSolveDoesNoBlockWork) {
  FlowGraph G = generateStructuredProgram(7);
  TinyAssigned P(G);
  DataflowSolver Solver;
  DataflowResult First = Solver.solve(G, P, SolverKind::Worklist);
  EXPECT_GT(First.BlocksProcessed, 0u);
  DataflowResult Second = Solver.solve(G, P, SolverKind::Worklist);
  EXPECT_EQ(Second.BlocksProcessed, 0u);
  expectSameFacts(G, First, Second, "cached re-solve");
}

TEST(IncrementalSolver, LocalEditResolvesIncrementallyAndExactly) {
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    TinyAssigned P(G);
    DataflowSolver Solver;
    DataflowResult First = Solver.solve(G, P, SolverKind::Worklist);

    // Append a definition of an existing variable to one mid block —
    // a stamped local edit, as every transform performs.
    BlockId Target = G.numBlocks() / 2;
    G.block(Target).Instrs.insert(G.block(Target).Instrs.begin(),
                                  G.block(0).Instrs.empty()
                                      ? Instr::skip()
                                      : G.block(0).Instrs.front());
    G.touchBlock(Target);

    DataflowResult Incremental = Solver.solve(G, P, SolverKind::Worklist);
    DataflowSolver FreshSolver;
    DataflowResult Fresh = FreshSolver.solve(G, P, SolverKind::Worklist);
    expectSameFacts(G, Incremental, Fresh,
                    "seed " + std::to_string(Seed));
    // The dirty closure is a strict subset of the graph here, so the
    // incremental solve must touch fewer blocks than the fresh one.
    EXPECT_LT(Incremental.BlocksProcessed, Fresh.BlocksProcessed)
        << "seed " << Seed;
  }
}

TEST(IncrementalSolver, RoundRobinStillMatchesWorklistAfterEdits) {
  for (uint64_t Seed = 20; Seed < 24; ++Seed) {
    FlowGraph G = generateIrreducibleCfg(Seed);
    TinyAssigned P(G);
    DataflowSolver Solver;
    Solver.solve(G, P, SolverKind::Worklist);
    if (!G.block(1).Instrs.empty()) {
      G.block(1).Instrs.pop_back();
      G.touchBlock(1);
    }
    DataflowResult Incremental = Solver.solve(G, P, SolverKind::Worklist);
    DataflowResult RoundRobin = solve(G, P, SolverKind::RoundRobin);
    expectSameFacts(G, Incremental, RoundRobin,
                    "irreducible seed " + std::to_string(Seed));
  }
}

TEST(IncrementalSolver, StructuralChangeInvalidatesAndStaysExact) {
  FlowGraph G = figure10a();
  TinyAssigned P(G);
  DataflowSolver Solver;
  Solver.solve(G, P, SolverKind::Worklist);
  G.splitCriticalEdges(); // structural: new blocks and rewired edges
  DataflowResult AfterSplit = Solver.solve(G, P, SolverKind::Worklist);
  DataflowResult Fresh = solve(G, P, SolverKind::Worklist);
  expectSameFacts(G, AfterSplit, Fresh, "after split");
}

//===----------------------------------------------------------------------===//
// Pattern table generations
//===----------------------------------------------------------------------===//

TEST(AmContextTest, PatternGenerationAdvancesOnlyOnUniverseChange) {
  FlowGraph G = figure4();
  G.splitCriticalEdges();
  AmContext Ctx;
  Ctx.refreshPatterns(G);
  uint64_t Gen0 = Ctx.patternGeneration();

  // No mutation: refresh is a no-op.
  Ctx.refreshPatterns(G);
  EXPECT_EQ(Ctx.patternGeneration(), Gen0);

  // A stamped mutation that leaves the pattern universe unchanged (the
  // block merely gets touched) rebuilds the table but must keep the
  // generation, so solver caches keyed on it survive.
  G.touchBlock(G.start());
  Ctx.refreshPatterns(G);
  EXPECT_EQ(Ctx.patternGeneration(), Gen0);

  // Removing every occurrence of some pattern shrinks the universe: the
  // generation must advance.
  bool Removed = false;
  for (BlockId B = 0; B < G.numBlocks() && !Removed; ++B) {
    auto &Instrs = G.block(B).Instrs;
    for (size_t Idx = 0; Idx < Instrs.size(); ++Idx) {
      if (Instrs[Idx].isAssign()) {
        Instrs.erase(Instrs.begin() + static_cast<long>(Idx));
        G.touchBlock(B);
        Removed = true;
        break;
      }
    }
  }
  ASSERT_TRUE(Removed);
  AssignPatternTable Check;
  Check.build(G);
  Ctx.refreshPatterns(G);
  if (Check.size() != 0 && Check.size() == Ctx.patterns().size()) {
    // The removed occurrence was a duplicate; universe unchanged.
    EXPECT_EQ(Ctx.patternGeneration(), Gen0);
  } else {
    EXPECT_NE(Ctx.patternGeneration(), Gen0);
  }
}

//===----------------------------------------------------------------------===//
// Differential sweeps: incremental vs from-scratch
//===----------------------------------------------------------------------===//

TEST(IncrementalAm, MatchesFreshAnalysesOnPaperFigures) {
  expectIncrementalMatchesFresh(figure1a(), "figure1a");
  expectIncrementalMatchesFresh(figure4(), "figure4");
  expectIncrementalMatchesFresh(figure5(), "figure5");
  expectIncrementalMatchesFresh(figure10a(), "figure10a");
  expectIncrementalMatchesFresh(figure16(), "figure16");
  expectIncrementalMatchesFresh(figure17a(), "figure17a");
}

TEST(IncrementalAm, MatchesFreshAnalysesOnRandomCorpus) {
  for (uint64_t Seed = 0; Seed < 12; ++Seed)
    expectIncrementalMatchesFresh(generateStructuredProgram(Seed),
                                  "structured seed " + std::to_string(Seed));
  for (uint64_t Seed = 100; Seed < 106; ++Seed)
    expectIncrementalMatchesFresh(generateIrreducibleCfg(Seed),
                                  "irreducible seed " + std::to_string(Seed));
}

TEST(IncrementalAm, PhaseProducesIdenticalFinalPrograms) {
  expectSameFinalProgram(figure4(), "figure4");
  expectSameFinalProgram(figure10a(), "figure10a");
  for (uint64_t Seed = 0; Seed < 10; ++Seed)
    expectSameFinalProgram(generateStructuredProgram(Seed),
                           "structured seed " + std::to_string(Seed));
  for (uint64_t Seed = 200; Seed < 205; ++Seed)
    expectSameFinalProgram(generateIrreducibleCfg(Seed),
                           "irreducible seed " + std::to_string(Seed));
}

//===----------------------------------------------------------------------===//
// Support pieces
//===----------------------------------------------------------------------===//

TEST(WorklistRingTest, DrainsInIterationOrderWithWraparound) {
  WorklistRing Ring;
  Ring.reset(8);
  EXPECT_TRUE(Ring.empty());
  EXPECT_EQ(Ring.pop(), WorklistRing::npos);

  Ring.push(5);
  Ring.push(2);
  Ring.push(2); // idempotent
  EXPECT_EQ(Ring.pop(), 2u);
  EXPECT_EQ(Ring.pop(), 5u);
  EXPECT_EQ(Ring.pop(), WorklistRing::npos);

  // After popping 5 the cursor sits past it; a lower index must still be
  // found on the wrap-around scan.
  Ring.push(1);
  EXPECT_EQ(Ring.pop(), 1u);
  EXPECT_TRUE(Ring.empty());
}

TEST(BitVectorTest, ForEachSetBitMatchesSetBits) {
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    BitVector V(131);
    for (size_t Idx = Seed; Idx < V.size(); Idx += (Seed + 3))
      V.set(Idx);
    std::vector<size_t> Walked;
    V.forEachSetBit([&](size_t Idx) { Walked.push_back(Idx); });
    EXPECT_EQ(Walked, V.setBits()) << "seed " << Seed;
  }
}
