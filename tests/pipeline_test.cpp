//===- tests/pipeline_test.cpp - Pipeline and LVN tests --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "interp/Equivalence.h"
#include "support/Json.h"
#include "support/Trace.h"
#include "transform/LocalValueNumbering.h"
#include "transform/Pipeline.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace am;
using namespace am::test;

//===----------------------------------------------------------------------===//
// Local value numbering
//===----------------------------------------------------------------------===//

TEST(Lvn, ReusesLocalValues) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := a + b
  out(x, y)
  halt
}
)");
  EXPECT_EQ(runLocalValueNumbering(G), 1u);
  EXPECT_EQ(countAssigns(G, "y", "x"), 1u);
  EXPECT_EQ(run(G, {{"a", 1}, {"b", 2}}).Stats.ExprEvaluations, 1u);
}

TEST(Lvn, RespectsKills) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  a := 5
  y := a + b
  out(x, y)
  halt
}
)");
  EXPECT_EQ(runLocalValueNumbering(G), 0u);
}

TEST(Lvn, HolderRedefinitionInvalidates) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  x := 7
  y := a + b
  out(x, y)
  halt
}
)");
  // x no longer holds a+b when y needs it.
  EXPECT_EQ(runLocalValueNumbering(G), 0u);
}

TEST(Lvn, SelfConsumingAssignmentsAreNotRecorded) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := x + 1
  y := x + 1
  out(x, y)
  halt
}
)");
  // The first x+1 refers to the *old* x: reusing it for y would be wrong.
  EXPECT_EQ(runLocalValueNumbering(G), 0u);
  EXPECT_EQ(run(G, {{"x", 5}}).Output, (std::vector<int64_t>{6, 7}));
}

TEST(Lvn, ExactRecomputationIntoSameVarBecomesSkipAndVanishes) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  x := a + b
  out(x)
  halt
}
)");
  EXPECT_EQ(runLocalValueNumbering(G), 1u);
  EXPECT_EQ(G.block(0).Instrs.size(), 2u); // x := x removed
}

TEST(Lvn, IsLocalOnly) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  goto b1
b1:
  y := a + b
  out(x, y)
  halt
}
)");
  EXPECT_EQ(runLocalValueNumbering(G), 0u); // cross-block is EM's job
}

TEST(Lvn, PreservesSemanticsOnRandomPrograms) {
  for (uint64_t Seed = 0; Seed < 15; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    FlowGraph T = G;
    runLocalValueNumbering(T);
    for (uint64_t Run = 0; Run < 2; ++Run) {
      auto Rep =
          checkEquivalent(G, T, {{"v0", 3}, {"v1", int64_t(Seed)}}, Run);
      ASSERT_TRUE(Rep.Equivalent) << Rep.Detail << " seed " << Seed;
      auto Before = Interpreter::execute(G, {{"v0", 3}}, Run);
      auto After = Interpreter::execute(T, {{"v0", 3}}, Run);
      EXPECT_LE(After.Stats.ExprEvaluations, Before.Stats.ExprEvaluations);
    }
  }
}

//===----------------------------------------------------------------------===//
// Pipelines
//===----------------------------------------------------------------------===//

TEST(Pipeline, RejectsUnknownAndEmptySpecs) {
  EXPECT_FALSE(runPipeline(figure4(), "bogus").ok());
  EXPECT_FALSE(runPipeline(figure4(), "lcm,bogus,cp").ok());
  EXPECT_FALSE(runPipeline(figure4(), "").ok());
  EXPECT_TRUE(isKnownPass("uniform"));
  EXPECT_FALSE(isKnownPass("uniformx"));
}

TEST(Pipeline, UniformSpecMatchesDirectCall) {
  PipelineResult R = runPipeline(figure4(), "uniform");
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(equivalentModuloTemps(R.Graph, runUniformEmAm(figure4())));
  ASSERT_EQ(R.Log.size(), 1u);
  EXPECT_NE(R.Log[0].find("AM iterations"), std::string::npos);
}

TEST(Pipeline, PhaseSpecReproducesThePaperPipeline) {
  // split+init+am-fixpoint+flush+simplify spelled out by hand.
  PipelineResult R = runPipeline(
      figure4(), "split, init, rae, aht, rae, aht, rae, aht, rae, aht, "
                 "rae, aht, flush, simplify");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_TRUE(equivalentModuloTemps(R.Graph, figure5()))
      << printGraph(R.Graph);
}

TEST(Pipeline, EmCpInterleavingFromSpec) {
  PipelineResult R = runPipeline(figure18b(), "lcm,cp,lcm,cp,lcm");
  ASSERT_TRUE(R.ok());
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    auto Rep = checkEquivalent(figure18b(), R.Graph,
                               {{"a", 1}, {"b", 2}, {"c", 3}}, Seed);
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(Pipeline, UniformThenPdeComposes) {
  PipelineResult R = runPipeline(figure4(), "uniform,pde,simplify");
  ASSERT_TRUE(R.ok());
  for (auto [X, Z] : {std::pair<int64_t, int64_t>{40, 2}, {0, 0}}) {
    auto Rep = checkEquivalent(figure4(), R.Graph,
                               {{"c", 1}, {"d", 2}, {"x", X}, {"z", Z}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(Pipeline, LvnPlusLcmApproachesUniformOnFig1) {
  // Figure 1's within-block double computation falls to LVN; LCM then
  // handles the cross-block part: together they reach the uniform
  // algorithm's evaluation count on this example.
  FlowGraph G = figure1a();
  PipelineResult R = runPipeline(G, "lvn,lcm");
  ASSERT_TRUE(R.ok());
  FlowGraph U = runUniformEmAm(G);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    std::unordered_map<std::string, int64_t> In = {{"a", 1}, {"b", 2}};
    auto RunPipe = Interpreter::execute(R.Graph, In, Seed);
    auto RunU = Interpreter::execute(U, In, Seed);
    EXPECT_EQ(RunPipe.Stats.ExprEvaluations, RunU.Stats.ExprEvaluations);
    EXPECT_EQ(RunPipe.Output, RunU.Output);
  }
}

TEST(Pipeline, SplitOnDemandIsLogged) {
  PipelineResult R = runPipeline(figure10a(), "aht");
  ASSERT_TRUE(R.ok());
  ASSERT_GE(R.Log.size(), 2u);
  EXPECT_NE(R.Log[0].find("split"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Pass records and tracing
//===----------------------------------------------------------------------===//

TEST(Pipeline, RecordsCaptureIrDeltasOnTheRunningExample) {
  // The paper's running example (Figure 4): the uniform algorithm must
  // observably eliminate assignments and do real dataflow work.
  FlowGraph G = figure4();
  PipelineResult R = runPipeline(G, "uniform");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Records.size(), 1u);
  ASSERT_EQ(R.Records.size(), R.Log.size());

  const PassRecord &Rec = R.Records[0];
  EXPECT_EQ(Rec.Name, "uniform");
  EXPECT_NE(Rec.Detail.find("AM iterations"), std::string::npos);
  EXPECT_EQ(Rec.BlocksBefore, G.numBlocks());
  EXPECT_EQ(Rec.InstrsBefore, G.numInstrs());
  EXPECT_EQ(Rec.BlocksAfter, R.Graph.numBlocks());
  EXPECT_EQ(Rec.InstrsAfter, R.Graph.numInstrs());
  EXPECT_GT(Rec.AmRounds, 0u);
  EXPECT_GT(Rec.AmEliminated, 0u); // assignments eliminated > 0
  EXPECT_GT(Rec.DfaSolves, 0u);
  // Sweeps are a round-robin notion; the paper analyses default to the
  // worklist schedule, so the solver-independent work metric is blocks
  // processed.
  EXPECT_GT(Rec.DfaBlocksProcessed, 0u);
  EXPECT_GT(Rec.FlushInitsDeleted, 0u); // the flush drops unjustified inits
  EXPECT_GE(Rec.WallMs, 0.0);
}

TEST(Pipeline, RecordsCoverEveryPassIncludingImplicitSplits) {
  PipelineResult R = runPipeline(figure10a(), "aht,rae");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Records.size(), R.Log.size());
  ASSERT_EQ(R.Records.size(), 3u); // (split), aht, rae
  EXPECT_EQ(R.Records[0].Name, "(split)");
  EXPECT_EQ(R.Records[1].Name, "aht");
  EXPECT_EQ(R.Records[2].Name, "rae");
  // The split introduced blocks; the record captures the growth.
  EXPECT_GT(R.Records[0].BlocksAfter, R.Records[0].BlocksBefore);
}

TEST(Pipeline, PassRecordsRenderAsValidJson) {
  PipelineResult R = runPipeline(figure4(), "uniform,pde,simplify");
  ASSERT_TRUE(R.ok());
  std::string J = passRecordsJson(R.Records);
  std::string Error;
  EXPECT_TRUE(json::validate(J, &Error)) << Error << "\n" << J;
  EXPECT_NE(J.find("\"name\":\"uniform\""), std::string::npos);
  EXPECT_NE(J.find("\"am_eliminated\""), std::string::npos);
}

TEST(Pipeline, TraceOfAPipelineRunIsValidChromeTraceJson) {
  trace::start();
  PipelineResult R = runPipeline(figure4(), "uniform");
  ASSERT_TRUE(R.ok());
  std::string Path = testing::TempDir() + "pipeline_trace.json";
  ASSERT_TRUE(trace::stopToFile(Path));

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Trace = Buf.str();
  std::string Error;
  EXPECT_TRUE(json::validate(Trace, &Error)) << Error;
  // One span per pass, nested spans per dataflow solve, instants per AM
  // fixpoint round.
  EXPECT_NE(Trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Trace.find("\"pipeline.pass\""), std::string::npos);
  EXPECT_NE(Trace.find("\"dfa.solve\""), std::string::npos);
  EXPECT_NE(Trace.find("\"am.round\""), std::string::npos);
  EXPECT_NE(Trace.find("\"flush.run\""), std::string::npos);
}

TEST(Pipeline, RandomProgramsSurviveLongPipelines) {
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    PipelineResult R =
        runPipeline(G, "lvn,lcm,cp,uniform,pde,simplify");
    ASSERT_TRUE(R.ok());
    EXPECT_TRUE(R.Graph.validate().empty()) << "seed " << Seed;
    auto Rep = checkEquivalent(G, R.Graph, {{"v0", 1}, {"v1", -4}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail << " seed " << Seed;
  }
}
