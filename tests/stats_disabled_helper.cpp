//===- tests/stats_disabled_helper.cpp - Compiled-out stats TU -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// This translation unit is compiled with -DAM_DISABLE_STATS (see
// tests/CMakeLists.txt): every AM_STAT_* and AM_REMARK_* macro below must
// expand to nothing, so none of the "test.compiled_out_*" instruments may
// ever appear in the registry and no remark instrumentation can run.
// stats_test.cpp asserts exactly that.
//
//===----------------------------------------------------------------------===//

#ifndef AM_DISABLE_STATS
#error "this file must be compiled with -DAM_DISABLE_STATS"
#endif

#include "support/Remarks.h"
#include "support/Stats.h"

namespace am::test {

void bumpCompiledOutStats() {
  AM_STAT_COUNTER(Ctr, "test.compiled_out_counter");
  AM_STAT_INC(Ctr);
  AM_STAT_ADD(Ctr, 41);
  AM_STAT_GAUGE(Gauge, "test.compiled_out_gauge");
  AM_STAT_SET(Gauge, 7);
  AM_STAT_TIMER(Tmr, "test.compiled_out_timer");
  AM_STAT_TIME_SCOPE(Tmr);
}

bool compiledOutRemarksEnabled() {
  AM_REMARK_PASS_SCOPE("test.compiled_out_pass");
  AM_REMARK_SET_ROUND(42);
  // AM_REMARKS_ENABLED() is a compile-time `false` here: the body of an
  // `if (AM_REMARKS_ENABLED())` instrumentation site is dead code, so the
  // whole function must return false no matter what the sink says.
  if (AM_REMARKS_ENABLED())
    return true;
  return false;
}

} // namespace am::test
