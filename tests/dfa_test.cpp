//===- tests/dfa_test.cpp - Dataflow framework tests -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dfa/Dataflow.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

/// Liveness of single-letter variables: backward, any-path.
class TinyLiveness : public DataflowProblem {
public:
  explicit TinyLiveness(const FlowGraph &G) : NumVars(G.Vars.size()) {}

  Direction direction() const override { return Direction::Backward; }
  Meet meet() const override { return Meet::Any; }
  size_t numBits() const override { return NumVars; }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    I.forEachUsedVar([&](VarId V) { Out.set(index(V)); });
  }
  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    VarId Def = I.definedVar();
    if (isValid(Def))
      Out.set(index(Def));
  }

private:
  size_t NumVars;
};

/// Forward must-analysis: "definitely assigned at least once".
class TinyAssigned : public DataflowProblem {
public:
  explicit TinyAssigned(const FlowGraph &G) : NumVars(G.Vars.size()) {}

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return NumVars; }

  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    VarId Def = I.definedVar();
    if (isValid(Def))
      Out.set(index(Def));
  }
  void kill(BlockId, size_t, const Instr &, BitVector &Out) const override {
    Out = BitVector(NumVars);
  }

private:
  size_t NumVars;
};

} // namespace

TEST(Dataflow, BackwardAnyLiveness) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  y := 2
  goto b1
b1:
  if x > 0 then b2 else b3
b2:
  out(y)
  goto b3
b3:
  halt
}
)");
  TinyLiveness P(G);
  DataflowResult R = solve(G, P);
  uint32_t X = index(G.Vars.lookup("x"));
  uint32_t Y = index(G.Vars.lookup("y"));
  // At b0 entry nothing is live (x, y are assigned constants first).
  EXPECT_FALSE(R.entry(0).test(X));
  EXPECT_FALSE(R.entry(0).test(Y));
  // After the defs, both x (branch) and y (out in b2) are live.
  EXPECT_TRUE(R.exit(0).test(X));
  EXPECT_TRUE(R.exit(0).test(Y));
  // y is live into b1 (may reach out(y)), x only up to the branch.
  EXPECT_TRUE(R.entry(1).test(Y));
  EXPECT_TRUE(R.entry(1).test(X));
  EXPECT_FALSE(R.exit(2).test(Y));
  EXPECT_TRUE(R.entry(2).test(Y));
}

TEST(Dataflow, InstrFactsMatchBlockBoundaries) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  y := x + 1
  out(y)
  halt
}
)");
  TinyLiveness P(G);
  DataflowResult R = solve(G, P);
  auto F = R.instrFacts(0);
  ASSERT_EQ(F.Before.size(), 3u);
  EXPECT_EQ(F.Before[0], R.entry(0));
  EXPECT_EQ(F.After[2], R.exit(0));
  // x is live exactly between its def and its use.
  uint32_t X = index(G.Vars.lookup("x"));
  EXPECT_FALSE(F.Before[0].test(X));
  EXPECT_TRUE(F.After[0].test(X));
  EXPECT_TRUE(F.Before[1].test(X));
  EXPECT_FALSE(F.After[1].test(X));
}

TEST(Dataflow, ForwardAllDefiniteAssignment) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := 1
  goto b3
b2:
  y := 1
  goto b3
b3:
  out(x, y)
  halt
}
)");
  TinyAssigned P(G);
  DataflowResult R = solve(G, P);
  uint32_t X = index(G.Vars.lookup("x"));
  uint32_t Y = index(G.Vars.lookup("y"));
  // Only on one path each: the all-paths meet clears both at the join.
  EXPECT_FALSE(R.entry(3).test(X));
  EXPECT_FALSE(R.entry(3).test(Y));
  EXPECT_TRUE(R.exit(1).test(X));
  EXPECT_TRUE(R.exit(2).test(Y));
}

TEST(Dataflow, GreatestFixpointOnLoops) {
  // A fact generated before a loop must survive a loop that does not kill
  // it — the greatest-fixpoint initialization is what makes this work for
  // all-path problems with cycles.
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  goto b1
b1:
  y := y + 1
  br b1 b2
b2:
  out(x, y)
  halt
}
)");
  TinyAssigned P(G);
  DataflowResult R = solve(G, P);
  uint32_t X = index(G.Vars.lookup("x"));
  EXPECT_TRUE(R.entry(1).test(X));
  EXPECT_TRUE(R.entry(2).test(X));
  EXPECT_GE(R.Sweeps, 2u);
}

TEST(Dataflow, EmptyBlocksAreIdentityTransfers) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  goto b1
b1:
  goto b2
b2:
  out(x)
  halt
}
)");
  TinyAssigned P(G);
  DataflowResult R = solve(G, P);
  EXPECT_EQ(R.entry(1), R.exit(1));
  auto F = R.instrFacts(1);
  EXPECT_TRUE(F.Before.empty());
}
