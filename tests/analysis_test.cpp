//===- tests/analysis_test.cpp - Dataflow analyses tests -------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Direct checks of the equation systems of Tables 1-3 and of the baseline
/// analyses (LCM, liveness, reaching copies) on hand-built programs.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/CopyAnalysis.h"
#include "analysis/LcmAnalyses.h"
#include "analysis/Liveness.h"
#include "analysis/PaperAnalyses.h"
#include "figures/PaperFigures.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

size_t patIdx(const FlowGraph &G, const AssignPatternTable &Pats,
              const char *Lhs, const char *RhsText) {
  for (size_t Idx = 0; Idx < Pats.size(); ++Idx) {
    const AssignPat &P = Pats.pattern(Idx);
    if (G.Vars.name(P.Lhs) == Lhs && printTerm(P.Rhs, G.Vars) == RhsText)
      return Idx;
  }
  return AssignPatternTable::npos;
}

} // namespace

//===----------------------------------------------------------------------===//
// Table 2: redundancy
//===----------------------------------------------------------------------===//

TEST(Redundancy, OccurrenceGeneratesDespiteSelfKill) {
  // X-REDUNDANT = EXECUTED + ASS-TRANSP · N-REDUNDANT: the occurrence of
  // v := t itself modifies v, yet redundancy holds right after it.
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := 1
  out(x, y)
  halt
}
)");
  AssignPatternTable Pats;
  Pats.build(G);
  RedundancyAnalysis R = RedundancyAnalysis::run(G, Pats);
  size_t X = patIdx(G, Pats, "x", "a + b");
  auto F = R.facts(0);
  EXPECT_FALSE(F.Before[0].test(X));
  EXPECT_TRUE(F.After[0].test(X));
  EXPECT_TRUE(F.Before[1].test(X)); // y := 1 is transparent
  EXPECT_TRUE(F.After[1].test(X));
}

TEST(Redundancy, MeetOverAllPathsAtJoins) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  x := a + b
  goto b3
b3:
  x := a + b
  out(x)
  halt
}
)");
  AssignPatternTable Pats;
  Pats.build(G);
  RedundancyAnalysis R = RedundancyAnalysis::run(G, Pats);
  size_t X = patIdx(G, Pats, "x", "a + b");
  EXPECT_TRUE(R.entry(3).test(X));

  // Remove the occurrence on one branch: no longer redundant at the join.
  FlowGraph G2 = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  goto b3
b3:
  x := a + b
  out(x)
  halt
}
)");
  AssignPatternTable Pats2;
  Pats2.build(G2);
  RedundancyAnalysis R2 = RedundancyAnalysis::run(G2, Pats2);
  EXPECT_FALSE(R2.entry(3).test(patIdx(G2, Pats2, "x", "a + b")));
}

TEST(Redundancy, LoopCarriedRedundancy) {
  // In the running example, the loop body's y := c+d is redundant at its
  // entry (reached via node 1 on entry and via its own occurrence around
  // the loop).
  FlowGraph G = figure4();
  AssignPatternTable Pats;
  Pats.build(G);
  RedundancyAnalysis R = RedundancyAnalysis::run(G, Pats);
  size_t Y = patIdx(G, Pats, "y", "c + d");
  ASSERT_NE(Y, AssignPatternTable::npos);
  EXPECT_TRUE(R.entry(2).test(Y)); // loop body block
}

//===----------------------------------------------------------------------===//
// Table 1: hoistability
//===----------------------------------------------------------------------===//

TEST(Hoistability, EndNodeBoundaryIsFalse) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  goto b1
b1:
  out(x)
  halt
}
)");
  AssignPatternTable Pats;
  Pats.build(G);
  HoistabilityAnalysis H = HoistabilityAnalysis::run(G, Pats);
  size_t X = patIdx(G, Pats, "x", "a + b");
  EXPECT_TRUE(H.entryHoistable(0).test(X));
  EXPECT_FALSE(H.exitHoistable(1).test(X));
  // The candidate can reach the start node's entry: N-INSERT at b0.
  EXPECT_TRUE(H.entryInsert(0).test(X));
}

TEST(Hoistability, LocalPredicates) {
  FlowGraph G = parse(R"(
graph {
b0:
  a := 1
  x := a + b
  y := 2
  out(x, y, a)
  halt
}
)");
  AssignPatternTable Pats;
  Pats.build(G);
  HoistabilityAnalysis H = HoistabilityAnalysis::run(G, Pats);
  size_t X = patIdx(G, Pats, "x", "a + b");
  size_t A = patIdx(G, Pats, "a", "1");
  // x := a+b is preceded by a blocker: not a candidate.
  EXPECT_FALSE(H.locHoistable(0).test(X));
  EXPECT_TRUE(H.locBlocked(0).test(X));
  // a := 1 is the first instruction: a candidate.
  EXPECT_TRUE(H.locHoistable(0).test(A));
}

TEST(Hoistability, MeetRequiresAllSuccessors) {
  FlowGraph G = figure8();
  AssignPatternTable Pats;
  Pats.build(G);
  HoistabilityAnalysis H = HoistabilityAnalysis::run(G, Pats);
  size_t A = patIdx(G, Pats, "a", "x + y");
  ASSERT_NE(A, AssignPatternTable::npos);
  // a := x+y hoists out of b3 through both branch blocks...
  EXPECT_TRUE(H.entryHoistable(3).test(A));
  // ...is blocked inside b1 (x := y+z modifies x) — exit insertion there...
  EXPECT_TRUE(H.exitInsert(1).test(A));
  // ...and reaches the entry of the empty b2 branch.
  EXPECT_TRUE(H.entryInsert(2).test(A));
  // It must not reach b0's entry (b1 blocks it).
  EXPECT_FALSE(H.entryHoistable(0).test(A));
}

//===----------------------------------------------------------------------===//
// Table 3: delayability / usability / placement
//===----------------------------------------------------------------------===//

namespace {

/// Builds the canonical post-AM shape: an initialization whose use sits a
/// few instructions later.
FlowGraph flushExample() {
  return parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  c := 1
  x := h1
  y := h1
  out(x, y, c)
  halt
}
)");
}

} // namespace

TEST(Flush, DelayabilityStopsAtUsesAndBlockers) {
  FlowGraph G = flushExample();
  FlushAnalysis F = FlushAnalysis::run(G);
  ASSERT_EQ(F.universe().size(), 1u);
  auto D = F.delayability().instrFacts(0);
  EXPECT_TRUE(D.After[0].test(0));  // right after the init
  EXPECT_TRUE(D.Before[2].test(0)); // c := 1 is neutral
  EXPECT_FALSE(D.After[2].test(0)); // the use x := h1 ends the region
}

TEST(Flush, UsabilityCountsAnyFollowingUse) {
  FlowGraph G = flushExample();
  FlushAnalysis F = FlushAnalysis::run(G);
  auto U = F.usability().instrFacts(0);
  EXPECT_TRUE(U.After[0].test(0));  // used below
  EXPECT_TRUE(U.After[2].test(0));  // still one more use below
  EXPECT_FALSE(U.After[3].test(0)); // no further use
}

TEST(Flush, PlanKeepsMultiUseInitAndLeavesNoExitInits) {
  FlowGraph G = flushExample();
  FlushAnalysis F = FlushAnalysis::run(G);
  auto Plan = F.plan(0);
  // Init is re-placed immediately before the first use (index 2).
  EXPECT_TRUE(Plan.InitBefore[2].test(0));
  EXPECT_TRUE(Plan.Reconstruct[2].none()); // two uses: no reconstruction
  EXPECT_TRUE(Plan.InitAtExit.none());
}

TEST(Flush, SingleUseIsReconstructed) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  c := 1
  x := h1
  out(x, c)
  halt
}
)");
  FlushAnalysis F = FlushAnalysis::run(G);
  auto Plan = F.plan(0);
  EXPECT_TRUE(Plan.Reconstruct[2].test(0));
  EXPECT_TRUE(Plan.InitBefore[2].none());
}

TEST(Flush, DeadInitializationVanishes) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  out(a)
  halt
}
)");
  FlushAnalysis F = FlushAnalysis::run(G);
  auto Plan = F.plan(0);
  EXPECT_TRUE(Plan.InitAtExit.none());
  for (const BitVector &V : Plan.InitBefore)
    EXPECT_TRUE(V.none());
}

TEST(Flush, BlockerForcesEarlyPlacement) {
  // The initialization cannot be delayed past a modification of an
  // operand; with a later use it must be placed right before the blocker.
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  a := 2
  x := h1
  y := h1
  out(x, y)
  halt
}
)");
  FlushAnalysis F = FlushAnalysis::run(G);
  auto Plan = F.plan(0);
  EXPECT_TRUE(Plan.InitBefore[1].test(0)); // before a := 2
  EXPECT_TRUE(Plan.InitBefore[2].none());
}

//===----------------------------------------------------------------------===//
// LCM analyses
//===----------------------------------------------------------------------===//

TEST(Lcm, DiamondInsertsOnEmptyBranchEdge) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  goto b3
b3:
  y := a + b
  out(x, y)
  halt
}
)");
  ExprPatternTable Exprs;
  Exprs.build(G);
  LcmAnalysis L = LcmAnalysis::run(G, Exprs);
  size_t E = Exprs.indexOf(G.block(1).Instrs[0].Rhs);
  ASSERT_NE(E, ExprPatternTable::npos);
  EXPECT_TRUE(L.antIn(3).test(E));
  EXPECT_TRUE(L.avOut(1).test(E));
  EXPECT_FALSE(L.avOut(2).test(E));
  // INSERT on the edge b2 -> b3, nowhere else.
  EXPECT_TRUE(L.insertOnEdge(2, 0).test(E));
  EXPECT_FALSE(L.insertOnEdge(1, 0).test(E));
  EXPECT_TRUE(L.deleteIn(3).test(E));
  EXPECT_FALSE(L.deleteIn(1).test(E));
}

TEST(Lcm, LoopInvariantNotDownSafeStaysPut) {
  // Classic safety: a+b computed only inside the loop body must not be
  // hoisted above the loop test.
  FlowGraph G = parse(R"(
program {
  i := 0;
  while (i < n) {
    x := a + b;
    i := i + 1;
  }
  out(x, i);
}
)");
  G.splitCriticalEdges();
  ExprPatternTable Exprs;
  Exprs.build(G);
  LcmAnalysis L = LcmAnalysis::run(G, Exprs);
  Term AB = Term::binary(OpCode::Add, Operand::var(G.Vars.lookup("a")),
                         Operand::var(G.Vars.lookup("b")));
  size_t E = Exprs.indexOf(AB);
  ASSERT_NE(E, ExprPatternTable::npos);
  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    for (size_t S = 0; S < G.block(B).Succs.size(); ++S)
      EXPECT_FALSE(L.insertOnEdge(B, S).test(E))
          << "unsafe insertion on edge from " << B;
    EXPECT_FALSE(L.deleteIn(B).test(E));
  }
}

TEST(Lcm, TransparencyAndAntloc) {
  FlowGraph G = parse(R"(
graph {
b0:
  a := 1
  x := a + b
  y := a + b
  out(x, y)
  halt
}
)");
  ExprPatternTable Exprs;
  Exprs.build(G);
  LcmAnalysis L = LcmAnalysis::run(G, Exprs);
  size_t E = Exprs.indexOf(G.block(0).Instrs[1].Rhs);
  EXPECT_FALSE(L.antloc(0).test(E)); // killed by a := 1 before computation
  EXPECT_FALSE(L.transp(0).test(E));
}

//===----------------------------------------------------------------------===//
// Liveness and reaching copies
//===----------------------------------------------------------------------===//

TEST(Liveness, LiveRangesOnDiamond) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  y := 2
  br b1 b2
b1:
  out(x)
  goto b3
b2:
  out(y)
  goto b3
b3:
  halt
}
)");
  LivenessAnalysis L = LivenessAnalysis::run(G);
  uint32_t X = index(G.Vars.lookup("x"));
  uint32_t Y = index(G.Vars.lookup("y"));
  EXPECT_TRUE(L.liveOut(0).test(X));
  EXPECT_TRUE(L.liveOut(0).test(Y));
  EXPECT_FALSE(L.liveIn(1).test(Y));
  EXPECT_FALSE(L.liveIn(2).test(X));
  EXPECT_FALSE(L.liveOut(1).test(X));
}

TEST(Copies, ReachingCopiesKilledByEitherSide) {
  FlowGraph G = parse(R"(
graph {
b0:
  t := a
  u := t
  a := 2
  x := t + u
  out(x)
  halt
}
)");
  CopyAnalysis C = CopyAnalysis::run(G);
  ASSERT_EQ(C.universe().size(), 2u);
  auto F = C.facts(0);
  // After a := 2 the copy t := a is dead, u := t still reaches.
  size_t TA = C.universe().occurrence(G.block(0).Instrs[0]);
  size_t UT = C.universe().occurrence(G.block(0).Instrs[1]);
  EXPECT_TRUE(F.Before[2].test(TA));
  EXPECT_FALSE(F.Before[3].test(TA));
  EXPECT_TRUE(F.Before[3].test(UT));
}
