//===- tests/report_test.cpp - Flight recorder and HTML report -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The RecorderSession contracts (see report/Recorder.h):
//
//  * golden facts — recording the uniform pipeline over the paper's
//    running example reproduces the Table 1-3 predicate vectors for the
//    paper's blocks, bit for bit;
//  * transparency — the optimized program is byte-identical with and
//    without a session installed;
//  * determinism — two recordings of the same run produce byte-identical
//    facts JSON, despite the process-wide solve serial counter;
//  * diff classification — inserted/deleted/moved/rewritten keyed on
//    stable instruction ids;
//  * the HTML generator marks its counter panels unavailable instead of
//    dropping them when the stats registry is off.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "ir/InstrNumbering.h"
#include "report/HtmlReport.h"
#include "report/Recorder.h"
#include "support/Remarks.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace am::test {
// Defined in report_disabled_helper.cpp, compiled with -DAM_DISABLE_STATS.
bool recorderHookFires();
} // namespace am::test

namespace {

// The paper's running example (Figure 4) — same program as
// examples/programs/running_example.am, which the amopt smoke tests and
// the CI report job feed through `--facts`.
const char *RunningExample = R"(graph {
b1:
  y := c + d
  goto b2
b2:
  if x + z > y + i then b3 else b4
b3:
  y := c + d
  x := y + z
  i := i + x
  goto b2
b4:
  x := y + z
  x := c + d
  out(i, x, y)
  halt
}
)";

/// One full recorded run of the uniform pipeline, the way amopt wires it:
/// clear the sink, number the input, snapshot it, run, snapshot the
/// result.  Returns the optimized program; the session holds the record.
FlowGraph recordUniform(const FlowGraph &G, report::RecorderSession &S) {
  remarks::CollectionScope Scope(true);
  remarks::Sink::get().clear();
  FlowGraph Input = G;
  ensureInstrIds(Input);
  S.install();
  S.snapshot(Input, "input");
  FlowGraph Out = runUniformEmAm(Input);
  S.snapshot(Out, "final");
  S.uninstall();
  return Out;
}

const report::FactTable *findTable(const report::RecorderSession &S,
                                   const std::string &Analysis,
                                   uint32_t Round) {
  for (const report::FactTable &T : S.facts())
    if (T.Analysis == Analysis && T.Round == Round)
      return &T;
  return nullptr;
}

std::vector<std::string> universeText(const report::RecorderSession &S,
                                      const report::FactTable &T) {
  std::vector<std::string> Out;
  for (uint32_t Idx : T.Universe)
    Out.push_back(S.text(Idx));
  return Out;
}

TEST(ReportGolden, RedundancyTable2RoundOne) {
  report::RecorderSession S;
  recordUniform(parse(RunningExample), S);

  const report::FactTable *T = findTable(S, "redundancy", 1);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Pass, "rae");
  // The decomposed universe after initialization: one (h := t, x := h)
  // pair per original assignment, first-occurrence order.
  EXPECT_EQ(universeText(S, *T),
            (std::vector<std::string>{"h1 := c + d", "y := h1", "h2 := x + z",
                                      "h3 := y + i", "h4 := y + z", "x := h4",
                                      "h5 := i + x", "i := h5", "x := h1"}));
  // Table 2 (redundant assignment occurrences), forward all-path facts at
  // the first rae round.  Bit k of the string is pattern k above.  b1
  // makes h1/y := h1 available; the loop body recomputes them; nothing is
  // redundant at the branch block's entry beyond what b1 and b3 agree on.
  ASSERT_EQ(T->Rows.size(), 4u);
  EXPECT_EQ(T->Rows[0].Entry, "000000000");
  EXPECT_EQ(T->Rows[0].Exit, "110000000");
  EXPECT_EQ(T->Rows[1].Entry, "110000000");
  EXPECT_EQ(T->Rows[1].Exit, "111100000");
  EXPECT_EQ(T->Rows[2].Entry, "111100000");
  EXPECT_EQ(T->Rows[2].Exit, "110011010");
  EXPECT_EQ(T->Rows[3].Entry, "111100000");
  EXPECT_EQ(T->Rows[3].Exit, "100110001");
}

TEST(ReportGolden, HoistabilityTable1RoundOne) {
  report::RecorderSession S;
  recordUniform(parse(RunningExample), S);

  const report::FactTable *T = findTable(S, "hoistability", 1);
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->Pass, "aht");
  ASSERT_EQ(T->Rows.size(), 4u);
  // Table 1 (assignment hoistability), backward all-path facts at the
  // first aht round, plus the local predicates and the insertion points
  // the hoist derives from them.
  EXPECT_EQ(T->Rows[0].Entry, "101000000");
  EXPECT_EQ(T->Rows[0].Exit, "001100000");
  EXPECT_EQ(T->Rows[1].Entry, "001100000");
  EXPECT_EQ(T->Rows[1].Exit, "000000000");
  EXPECT_EQ(T->Rows[2].Entry, "010000000");
  EXPECT_EQ(T->Rows[2].Exit, "001100000");
  EXPECT_EQ(T->Rows[3].Entry, "000010000");
  EXPECT_EQ(T->Rows[3].Exit, "000000000");

  ASSERT_EQ(T->Extras.size(), 4u);
  EXPECT_EQ(T->Extras[0].Name, "LOC-BLOCKED");
  EXPECT_EQ(T->Extras[0].PerBlock,
            (std::vector<std::string>{"110110001", "011101011", "111111111",
                                      "111011111"}));
  EXPECT_EQ(T->Extras[1].Name, "LOC-HOISTABLE");
  EXPECT_EQ(T->Extras[1].PerBlock,
            (std::vector<std::string>{"100000000", "001100000", "010000000",
                                      "000010000"}));
  EXPECT_EQ(T->Extras[2].Name, "N-INSERT");
  EXPECT_EQ(T->Extras[2].PerBlock,
            (std::vector<std::string>{"101000000", "000000000", "010000000",
                                      "000010000"}));
  EXPECT_EQ(T->Extras[3].Name, "X-INSERT");
  EXPECT_EQ(T->Extras[3].PerBlock,
            (std::vector<std::string>{"000100000", "000000000", "001100000",
                                      "000000000"}));
}

TEST(ReportGolden, FlushTable3) {
  report::RecorderSession S;
  recordUniform(parse(RunningExample), S);

  // Table 3 runs over the temporaries' initialization universe.
  const std::vector<std::string> FlushUniverse{
      "h1 := c + d", "h2 := x + z", "h3 := y + i", "h4 := y + z",
      "h5 := i + x"};

  const report::FactTable *Delay = findTable(S, "delayability", 0);
  ASSERT_NE(Delay, nullptr);
  EXPECT_EQ(Delay->Pass, "flush");
  EXPECT_EQ(universeText(S, *Delay), FlushUniverse);
  ASSERT_EQ(Delay->Rows.size(), 4u);
  // Only h3 := y + i is delayable past b1's exit (used once, in the
  // branch), and h3/h4 through the loop body's exit.
  EXPECT_EQ(Delay->Rows[0].Entry, "00000");
  EXPECT_EQ(Delay->Rows[0].Exit, "00100");
  EXPECT_EQ(Delay->Rows[1].Entry, "00100");
  EXPECT_EQ(Delay->Rows[1].Exit, "00000");
  EXPECT_EQ(Delay->Rows[2].Entry, "00000");
  EXPECT_EQ(Delay->Rows[2].Exit, "01100");
  EXPECT_EQ(Delay->Rows[3].Entry, "00000");
  EXPECT_EQ(Delay->Rows[3].Exit, "00000");

  const report::FactTable *Use = findTable(S, "usability", 0);
  ASSERT_NE(Use, nullptr);
  EXPECT_EQ(Use->Pass, "flush");
  EXPECT_EQ(universeText(S, *Use), FlushUniverse);
  ASSERT_EQ(Use->Rows.size(), 4u);
  EXPECT_EQ(Use->Rows[0].Entry, "00000");
  EXPECT_EQ(Use->Rows[0].Exit, "11100");
  EXPECT_EQ(Use->Rows[1].Entry, "11100");
  EXPECT_EQ(Use->Rows[1].Exit, "10000");
  EXPECT_EQ(Use->Rows[2].Entry, "10000");
  EXPECT_EQ(Use->Rows[2].Exit, "11100");
  EXPECT_EQ(Use->Rows[3].Entry, "10000");
  EXPECT_EQ(Use->Rows[3].Exit, "00000");
}

TEST(Report, TimelineCoversEveryPhaseAndRound) {
  report::RecorderSession S;
  recordUniform(parse(RunningExample), S);

  std::vector<std::pair<std::string, uint32_t>> Timeline;
  for (const report::Snapshot &Snap : S.snapshots())
    Timeline.emplace_back(Snap.Label, Snap.Round);
  ASSERT_GE(Timeline.size(), 7u);
  EXPECT_EQ(Timeline.front(), (std::pair<std::string, uint32_t>{"input", 0}));
  EXPECT_EQ(Timeline[1], (std::pair<std::string, uint32_t>{"split", 0}));
  EXPECT_EQ(Timeline[2], (std::pair<std::string, uint32_t>{"init", 0}));
  EXPECT_EQ(Timeline[3], (std::pair<std::string, uint32_t>{"rae", 1}));
  EXPECT_EQ(Timeline[4], (std::pair<std::string, uint32_t>{"aht", 1}));
  EXPECT_EQ(Timeline[Timeline.size() - 2],
            (std::pair<std::string, uint32_t>{"flush", 0}));
  EXPECT_EQ(Timeline.back(), (std::pair<std::string, uint32_t>{"final", 0}));

  // One solve record per rae/aht round plus the two flush analyses, each
  // attributed to the pipeline point whose analysis ran it.
  EXPECT_GE(S.solves().size(), Timeline.size() - 5);
  for (const report::SolveRecord &R : S.solves())
    EXPECT_TRUE(R.Label == "rae" || R.Label == "aht" || R.Label == "flush")
        << R.Label;
}

TEST(Report, OptimizedOutputByteIdenticalWithRecordingOn) {
  FlowGraph G = parse(RunningExample);
  FlowGraph Plain = runUniformEmAm(G);

  report::RecorderSession S;
  FlowGraph Recorded = recordUniform(G, S);
  EXPECT_EQ(printGraph(Plain), printGraph(Recorded));
}

TEST(Report, FactsJsonDeterministicAcrossRecordings) {
  // The process-wide solve serial keeps climbing between the two runs and
  // the stats counters carry over; deltas and serial normalization must
  // hide both.
  report::RecorderSession A;
  recordUniform(parse(RunningExample), A);
  std::vector<remarks::Remark> FirstRemarks = remarks::Sink::get().remarks();
  std::string FirstFacts = A.toJsonString(&FirstRemarks);
  report::ReportMeta FirstMeta;
  FirstMeta.Title = "running_example";
  FirstMeta.PassSpec = "uniform";
  FirstMeta.Remarks = FirstRemarks;
  std::string FirstHtml = renderHtmlReport(A, FirstMeta);

  report::RecorderSession B;
  recordUniform(parse(RunningExample), B);
  std::vector<remarks::Remark> SecondRemarks = remarks::Sink::get().remarks();
  EXPECT_EQ(FirstFacts, B.toJsonString(&SecondRemarks));
  report::ReportMeta SecondMeta;
  SecondMeta.Title = "running_example";
  SecondMeta.PassSpec = "uniform";
  SecondMeta.Remarks = SecondRemarks;
  EXPECT_EQ(FirstHtml, renderHtmlReport(B, SecondMeta));
}

TEST(Report, DiffClassifiesInsertDeleteMoveRewrite) {
  // Before: two blocks with hand-assigned stable ids.
  FlowGraph Before = parse("graph {\n"
                           "b1:\n  x := a + b\n  y := x + c\n  goto b2\n"
                           "b2:\n  z := y + d\n  out(z)\n  halt\n}\n");
  Before.block(0).Instrs[0].Id = 1; // x := a + b
  Before.block(0).Instrs[1].Id = 2; // y := x + c
  Before.block(1).Instrs[0].Id = 3; // z := y + d
  Before.block(1).Instrs[1].Id = 4; // out(z)

  // After: id 1 moved to the end of b2, id 2 deleted, id 3 rewritten in
  // place, id 5 inserted, id 4 untouched at b2[1].
  FlowGraph After = parse("graph {\n"
                          "b1:\n  w := a + a\n  goto b2\n"
                          "b2:\n  z := d + d\n  out(z)\n  x := a + b\n"
                          "  halt\n}\n");
  After.block(0).Instrs[0].Id = 5; // w := a + a (inserted)
  After.block(1).Instrs[0].Id = 3; // z := d + d (rewritten, still b2[0])
  After.block(1).Instrs[1].Id = 4; // out(z)     (still b2[1])
  After.block(1).Instrs[2].Id = 1; // x := a + b (moved b1[0] -> b2[2])

  report::RecorderSession S;
  S.install();
  S.snapshot(Before, "before");
  S.snapshot(After, "after");
  S.uninstall();

  report::SnapshotDiff D = S.diff(0, 1);
  ASSERT_EQ(D.Inserted.size(), 1u);
  EXPECT_EQ(D.Inserted[0].Id, 5u);
  EXPECT_EQ(D.Inserted[0].Block, 0u);

  ASSERT_EQ(D.Deleted.size(), 1u);
  EXPECT_EQ(D.Deleted[0].Id, 2u);
  EXPECT_EQ(D.Deleted[0].Block, 0u);
  EXPECT_EQ(D.Deleted[0].Index, 1u);

  ASSERT_EQ(D.Moved.size(), 1u);
  EXPECT_EQ(D.Moved[0].Id, 1u);
  EXPECT_EQ(D.Moved[0].FromBlock, 0u);
  EXPECT_EQ(D.Moved[0].ToBlock, 1u);
  EXPECT_EQ(D.Moved[0].ToIndex, 2u);

  ASSERT_EQ(D.Rewritten.size(), 1u);
  EXPECT_EQ(D.Rewritten[0].Id, 3u);
  EXPECT_EQ(S.text(D.Rewritten[0].OldText), "z := y + d");
  EXPECT_EQ(S.text(D.Rewritten[0].NewText), "z := d + d");

  EXPECT_EQ(D.UnkeyedFrom, 0u);
  EXPECT_EQ(D.UnkeyedTo, 0u);
  EXPECT_TRUE(S.resolvesId(5));
  EXPECT_FALSE(S.resolvesId(99));
}

TEST(Report, IdenticalSnapshotsDiffEmpty) {
  FlowGraph G = parse("program { x := a + b; out(x); }");
  ensureInstrIds(G);
  report::RecorderSession S;
  S.install();
  S.snapshot(G, "one");
  S.snapshot(G, "two");
  S.uninstall();
  EXPECT_TRUE(S.diff(0, 1).empty());
}

TEST(Report, CountersAreDeltasFromInstall) {
  // A session installed after earlier work must start every counter at
  // zero — the first snapshot happens before any recorded solve.
  report::RecorderSession Warmup;
  recordUniform(parse(RunningExample), Warmup); // bump the registry

  report::RecorderSession S;
  recordUniform(parse(RunningExample), S);
  ASSERT_FALSE(S.snapshots().empty());
  const report::Snapshot &First = S.snapshots().front();
  if (First.HasCounters)
    for (uint64_t C : First.Counters)
      EXPECT_EQ(C, 0u);
}

TEST(Report, HtmlMarksPanelsUnavailableWithoutStats) {
  report::RecorderSession S;
  S.setCaptureCounters(false);
  recordUniform(parse(RunningExample), S);

  report::ReportMeta Meta;
  Meta.Title = "running_example";
  Meta.PassSpec = "uniform";
  Meta.StatsAvailable = false;
  std::string Html = renderHtmlReport(S, Meta);
  EXPECT_NE(Html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(Html.find("class=\"unavailable\""), std::string::npos);
  // The structural panels are all still present.
  for (const char *Panel : {"Timeline", "Phase steps", "Dataflow facts",
                            "Dataflow solves", "Convergence"})
    EXPECT_NE(Html.find(Panel), std::string::npos) << Panel;
}

TEST(Report, HookFiresFromStatsDisabledTranslationUnit) {
  // The helper TU is compiled with -DAM_DISABLE_STATS; the transforms'
  // `if (RecorderSession::current())` hook pattern must behave
  // identically there — recording does not depend on the stats macros.
  EXPECT_FALSE(recorderHookFires());
  report::RecorderSession S;
  S.install();
  EXPECT_TRUE(recorderHookFires());
  S.uninstall();
  EXPECT_FALSE(recorderHookFires());
}

TEST(Report, HtmlEscapesTitle) {
  report::RecorderSession S;
  S.install();
  S.uninstall();
  report::ReportMeta Meta;
  Meta.Title = "<script>alert(1)</script>";
  Meta.PassSpec = "uniform";
  std::string Html = renderHtmlReport(S, Meta);
  EXPECT_EQ(Html.find("<script>"), std::string::npos);
  EXPECT_NE(Html.find("&lt;script&gt;"), std::string::npos);
}

} // namespace
