//===- tests/ir_test.cpp - IR, graph and pattern tests ---------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "ir/Patterns.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

/// `x := a + b` convenience.
Instr assignAdd(FlowGraph &G, const char *Lhs, const char *A, const char *B) {
  return Instr::assign(G.Vars.getOrCreate(Lhs),
                       Term::binary(OpCode::Add,
                                    Operand::var(G.Vars.getOrCreate(A)),
                                    Operand::var(G.Vars.getOrCreate(B))));
}

} // namespace

TEST(Term, UsesVarAndAtoms) {
  FlowGraph G;
  VarId X = G.Vars.getOrCreate("x");
  VarId Y = G.Vars.getOrCreate("y");
  Term T = Term::binary(OpCode::Add, Operand::var(X), Operand::imm(3));
  EXPECT_TRUE(T.isNonTrivial());
  EXPECT_TRUE(T.usesVar(X));
  EXPECT_FALSE(T.usesVar(Y));
  EXPECT_FALSE(Term::var(X).isNonTrivial());
  EXPECT_TRUE(Term::var(X).isVarAtom(X));
  EXPECT_FALSE(Term::imm(5).isVarAtom(X));
}

TEST(Term, EqualityIgnoresBForAtoms) {
  FlowGraph G;
  VarId X = G.Vars.getOrCreate("x");
  Term A = Term::var(X);
  Term B = Term::var(X);
  B.B = Operand::imm(99); // must be irrelevant for atoms
  EXPECT_EQ(A, B);
  EXPECT_EQ(hashTerm(A), hashTerm(B));
}

TEST(Instr, DefinedAndUsedVars) {
  FlowGraph G;
  VarId X = G.Vars.getOrCreate("x");
  VarId Y = G.Vars.getOrCreate("y");
  Instr I = Instr::assign(X, Term::var(Y));
  EXPECT_EQ(I.definedVar(), X);
  EXPECT_TRUE(I.usesVar(Y));
  EXPECT_FALSE(I.usesVar(X));

  // x := x is identified with skip: it defines nothing.
  Instr Self = Instr::assign(X, Term::var(X));
  EXPECT_EQ(Self.definedVar(), VarId::Invalid);

  Instr Out = Instr::out({X, Y});
  EXPECT_EQ(Out.definedVar(), VarId::Invalid);
  EXPECT_TRUE(Out.usesVar(X));

  Instr Br = Instr::branch(Term::var(X), RelOp::Lt, Term::imm(3));
  EXPECT_TRUE(Br.usesVar(X));
  EXPECT_EQ(Br.definedVar(), VarId::Invalid);
}

TEST(VarTable, TempNamingAvoidsCollisions) {
  VarTable V;
  V.getOrCreate("h1");
  VarId T = V.createTemp(makeExprId(0), 1);
  EXPECT_EQ(V.name(T), "h1_");
  EXPECT_TRUE(V.isTemp(T));
  EXPECT_FALSE(V.isTemp(V.lookup("h1")));
}

TEST(ExprTable, InternsStructurally) {
  FlowGraph G;
  VarId A = G.Vars.getOrCreate("a");
  VarId B = G.Vars.getOrCreate("b");
  Term T1 = Term::binary(OpCode::Add, Operand::var(A), Operand::var(B));
  Term T2 = Term::binary(OpCode::Add, Operand::var(A), Operand::var(B));
  Term T3 = Term::binary(OpCode::Add, Operand::var(B), Operand::var(A));
  ExprId E1 = G.Exprs.intern(T1);
  EXPECT_EQ(G.Exprs.intern(T2), E1);
  EXPECT_NE(G.Exprs.intern(T3), E1); // syntactic patterns: a+b != b+a
  VarId H = G.Exprs.temporary(E1, G.Vars);
  EXPECT_EQ(G.Exprs.temporary(E1, G.Vars), H);
  EXPECT_EQ(G.Vars.tempFor(H), E1);
}

TEST(FlowGraph, ValidateAcceptsGoodGraph) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := 1
  goto b1
b1:
  out(x)
  halt
}
)");
  EXPECT_TRUE(G.validate().empty());
  EXPECT_EQ(G.numBlocks(), 2u);
  EXPECT_EQ(G.numInstrs(), 2u);
}

TEST(FlowGraph, ValidateFlagsUnreachableAndDeadEnds) {
  FlowGraph G;
  BlockId A = G.addBlock();
  BlockId B = G.addBlock();
  BlockId C = G.addBlock(); // disconnected
  (void)C;
  G.addEdge(A, B);
  G.setStart(A);
  G.setEnd(B);
  auto Problems = G.validate();
  ASSERT_FALSE(Problems.empty());
  bool FoundUnreachable = false;
  for (const auto &P : Problems)
    FoundUnreachable |= P.find("unreachable") != std::string::npos;
  EXPECT_TRUE(FoundUnreachable);
}

TEST(FlowGraph, ValidateFlagsBranchArity) {
  FlowGraph G;
  BlockId A = G.addBlock();
  BlockId B = G.addBlock();
  G.addEdge(A, B);
  G.setStart(A);
  G.setEnd(B);
  G.block(A).Instrs.push_back(
      Instr::branch(Term::imm(1), RelOp::Lt, Term::imm(2)));
  auto Problems = G.validate();
  ASSERT_EQ(Problems.size(), 1u);
  EXPECT_NE(Problems[0].find("fewer than two successors"), std::string::npos);
}

TEST(FlowGraph, ReversePostorderVisitsPredsFirstOnDags) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  goto b3
b2:
  goto b3
b3:
  halt
}
)");
  auto Rpo = G.reversePostorder();
  ASSERT_EQ(Rpo.size(), 4u);
  EXPECT_EQ(Rpo.front(), G.start());
  EXPECT_EQ(Rpo.back(), G.end());
}

TEST(FlowGraph, SplitCriticalEdgesInsertsSynthetics) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := 1
  goto b2
b2:
  out(x)
  halt
}
)");
  // Edge b0 -> b2 is critical (b0 has 2 succs, b2 has 2 preds).
  EXPECT_TRUE(G.hasCriticalEdges());
  unsigned NumSplit = G.splitCriticalEdges();
  EXPECT_EQ(NumSplit, 1u);
  EXPECT_FALSE(G.hasCriticalEdges());
  EXPECT_TRUE(G.validate().empty());
  EXPECT_EQ(G.numBlocks(), 4u);
  EXPECT_TRUE(G.block(3).Synthetic);
  // Branch target order preserved: succ 0 still reaches b1 directly.
  EXPECT_EQ(G.block(0).Succs[0], 1u);
  EXPECT_EQ(G.block(0).Succs[1], 3u);
}

TEST(FlowGraph, SplitSelfLoopOnBranchingBlock) {
  FlowGraph G = parse(R"(
graph {
b0:
  goto b1
b1:
  x := x + 1
  br b1 b2
b2:
  out(x)
  halt
}
)");
  EXPECT_TRUE(G.hasCriticalEdges()); // b1 -> b1
  G.splitCriticalEdges();
  EXPECT_FALSE(G.hasCriticalEdges());
  EXPECT_TRUE(G.validate().empty());
}

TEST(FlowGraph, SimplifiedDropsSkipsAndEmptySynthetics) {
  FlowGraph G = parse(R"(
graph {
b0:
  skip
  x := x
  br b1 b2
b1:
  x := 1
  goto b2
b2:
  out(x)
  halt
}
)");
  G.splitCriticalEdges();
  FlowGraph S = simplified(G);
  EXPECT_TRUE(S.validate().empty());
  EXPECT_EQ(S.numBlocks(), 3u); // synthetic dropped again
  EXPECT_EQ(S.block(S.start()).Instrs.size(), 0u);
}

TEST(FlowGraph, SimplifiedKeepsNonEmptySynthetics) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := 1
  goto b2
b2:
  out(x)
  halt
}
)");
  G.splitCriticalEdges();
  G.block(3).Instrs.push_back(assignAdd(G, "y", "a", "b"));
  FlowGraph S = simplified(G);
  EXPECT_EQ(S.numBlocks(), 4u);
}

TEST(FlowGraph, StructuralEqualityAndTempBijection) {
  FlowGraph A = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  x := h1
  out(x)
  halt
}
)");
  FlowGraph B = parse(R"(
graph {
temp h9
b0:
  h9 := a + b
  x := h9
  out(x)
  halt
}
)");
  EXPECT_TRUE(equivalentModuloTemps(A, B));
  EXPECT_FALSE(structurallyEqual(A, B)); // names differ
  EXPECT_TRUE(structurallyEqual(A, A));

  FlowGraph C = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  x := x
  out(x)
  halt
}
)");
  EXPECT_FALSE(equivalentModuloTemps(A, C));
}

TEST(FlowGraph, TempBijectionRejectsMerging) {
  // Two distinct temps on one side cannot both map to the same temp.
  FlowGraph A = parse(R"(
graph {
temp h1, h2
b0:
  h1 := a + b
  h2 := a + b
  x := h1
  out(x)
  halt
}
)");
  FlowGraph B = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  h1 := a + b
  x := h1
  out(x)
  halt
}
)");
  EXPECT_FALSE(equivalentModuloTemps(A, B));
}

TEST(AssignPatternTable, CollectsAndIndexesPatterns) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := a + b
  x := a + b
  i := i + 1
  goto b1
b1:
  out(x, y, i)
  halt
}
)");
  AssignPatternTable Pats;
  Pats.build(G);
  // x := a+b, y := a+b, i := i+1 — three distinct patterns.
  EXPECT_EQ(Pats.size(), 3u);
  const Instr &First = G.block(0).Instrs[0];
  EXPECT_EQ(Pats.occurrence(First), 0u);
  EXPECT_EQ(Pats.occurrence(G.block(0).Instrs[2]), 0u);
  EXPECT_EQ(Pats.occurrence(G.block(1).Instrs[0]),
            AssignPatternTable::npos); // out
  // i := i+1 has its lhs among the operands: not redundancy-eligible.
  size_t IdxI = Pats.indexOf(G.Vars.lookup("i"),
                             Term::binary(OpCode::Add,
                                          Operand::var(G.Vars.lookup("i")),
                                          Operand::imm(1)));
  ASSERT_NE(IdxI, AssignPatternTable::npos);
  EXPECT_FALSE(Pats.redundancyEligible().test(IdxI));
  EXPECT_TRUE(Pats.redundancyEligible().test(0));
}

TEST(AssignPatternTable, BlockedByAndKilledBy) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  a := 1
  z := x + 1
  out(z)
  halt
}
)");
  AssignPatternTable Pats;
  Pats.build(G);
  size_t XPat = 0; // x := a + b (first occurrence order)
  BitVector Blocked = Pats.makeVector();
  BitVector Killed = Pats.makeVector();

  // a := 1 modifies an operand of a+b: blocks and kills x := a+b.
  Pats.blockedBy(G.block(0).Instrs[1], Blocked);
  Pats.killedBy(G.block(0).Instrs[1], Killed);
  EXPECT_TRUE(Blocked.test(XPat));
  EXPECT_TRUE(Killed.test(XPat));

  // z := x + 1 *uses* x: blocks the hoisting of x := a+b but does not kill
  // its redundancy.
  Pats.blockedBy(G.block(0).Instrs[2], Blocked);
  Pats.killedBy(G.block(0).Instrs[2], Killed);
  EXPECT_TRUE(Blocked.test(XPat));
  EXPECT_FALSE(Killed.test(XPat));

  // out(z) uses z: blocks z-lhs patterns only.
  Pats.blockedBy(G.block(0).Instrs[3], Blocked);
  size_t ZPat = Pats.indexOf(G.Vars.lookup("z"),
                             Term::binary(OpCode::Add,
                                          Operand::var(G.Vars.lookup("x")),
                                          Operand::imm(1)));
  EXPECT_TRUE(Blocked.test(ZPat));
  EXPECT_FALSE(Blocked.test(XPat));
}

TEST(ExprPatternTable, CollectsFromBranchesToo) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  if a + b > c + 1 then b1 else b2
b1:
  goto b2
b2:
  out(x)
  halt
}
)");
  ExprPatternTable Exprs;
  Exprs.build(G);
  EXPECT_EQ(Exprs.size(), 2u); // a+b, c+1
  BitVector Computed = Exprs.makeVector();
  Exprs.computedBy(G.block(0).Instrs[1], Computed);
  EXPECT_EQ(Computed.count(), 2u);
  BitVector Killed = Exprs.makeVector();
  Exprs.killedBy(G.block(0).Instrs[0], Killed); // defines x: kills nothing
  EXPECT_TRUE(Killed.none());
}

TEST(Printer, RoundTripsThroughParser) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  x := h1
  if x > 0 then b1 else b2
b1:
  out(x)
  br b1 b2
b2:
  y := -3
  halt
}
)");
  std::string Printed = printGraph(G);
  FlowGraph Re = parse(Printed);
  EXPECT_TRUE(structurallyEqual(G, Re));
  EXPECT_EQ(printGraph(Re), Printed);
}

TEST(Printer, DotContainsAllBlocksAndEdges) {
  FlowGraph G = figure4();
  std::string Dot = printDot(G, "fig4");
  EXPECT_NE(Dot.find("digraph \"fig4\""), std::string::npos);
  EXPECT_NE(Dot.find("b0 -> b1"), std::string::npos);
  EXPECT_NE(Dot.find("out(i, x, y)"), std::string::npos);
}
