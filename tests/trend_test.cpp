//===- tests/trend_test.cpp - Trend analytics tests ------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The changepoint detector and analysis layer behind tools/amtrend: a
// genuine step is found at its exact index, a lone 3.5-MAD outlier in a
// noisy flat series is not a step, slow drift is reported as drift (not
// gated as a step), calibration and workload series never gate, and the
// trend dashboard renders byte-identically.
//
//===----------------------------------------------------------------------===//

#include "report/TrendReport.h"
#include "support/History.h"
#include "support/Trend.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace am;
using trend::SeriesStatus;

namespace {

/// +-1% deterministic noise pattern.
const double Noise1[20] = {1.000, 0.995, 1.004, 0.992, 1.008, 0.997, 1.003,
                           0.990, 1.006, 0.999, 1.002, 0.994, 1.001, 0.996,
                           1.007, 0.993, 1.005, 0.998, 1.009, 0.991};

std::vector<double> stepSeries(size_t N, size_t At, double Before,
                               double After) {
  std::vector<double> V;
  for (size_t I = 0; I < N; ++I)
    V.push_back((I < At ? Before : After) * Noise1[I % 20]);
  return V;
}

hist::HistoryEntry makeEntry(uint64_t TimeMs, uint64_t WallNs,
                             uint64_t CalibNs = 100'000'000,
                             uint64_t Counter = 42, uint64_t Work = 1000) {
  hist::HistoryEntry E;
  E.Source = "ambench";
  E.TimeUnixMs = TimeMs;
  E.GitSha = "sha" + std::to_string(TimeMs);
  E.CalibNs = CalibNs;
  hist::PresetStat P;
  P.WallNs = WallNs;
  P.MadNs = WallNs / 100;
  P.Work.emplace_back("instrs_in", Work);
  E.Presets.emplace_back("dfa/solve", std::move(P));
  E.Counters.emplace_back("dfa.iterations", Counter);
  return E;
}

//===----------------------------------------------------------------------===//
// Step detector
//===----------------------------------------------------------------------===//

TEST(DetectStep, FindsCleanStepAtExactIndex) {
  std::vector<double> V = stepSeries(20, 12, 2.5, 5.0);
  trend::Changepoint CP = trend::detectStep(V);
  ASSERT_TRUE(CP.Found);
  EXPECT_EQ(CP.Index, 12u);
  EXPECT_NEAR(CP.Before, 2.5, 0.05);
  EXPECT_NEAR(CP.After, 5.0, 0.1);
  EXPECT_NEAR(CP.Ratio, 2.0, 0.05);
  EXPECT_GT(CP.Score, 4.0);
}

TEST(DetectStep, FindsStepDown) {
  std::vector<double> V = stepSeries(20, 10, 5.0, 2.5);
  trend::Changepoint CP = trend::detectStep(V);
  ASSERT_TRUE(CP.Found);
  EXPECT_EQ(CP.Index, 10u);
  EXPECT_LT(CP.After, CP.Before);
  EXPECT_NEAR(CP.Ratio, 0.5, 0.05);
}

TEST(DetectStep, ZeroNoiseStepStaysFinite) {
  // Identical samples on both sides: the noise floor keeps the score
  // finite (and huge), not a division by zero.
  std::vector<double> V(6, 100.0);
  for (size_t I = 3; I < 6; ++I)
    V[I] = 200.0;
  trend::Changepoint CP = trend::detectStep(V);
  ASSERT_TRUE(CP.Found);
  EXPECT_EQ(CP.Index, 3u);
  EXPECT_NEAR(CP.Ratio, 2.0, 1e-9);
}

TEST(DetectStep, SingleOutlierInNoisyFlatIsNotAStep) {
  // +-10% noise around 2.5 with one sample far outside — the lone
  // hiccup cannot move a segment median, so no changepoint.
  const double Noise10[20] = {1.00, 0.92, 1.07, 0.95, 1.09, 0.91, 1.04,
                              0.97, 1.08, 0.93, 1.02, 0.96, 1.06, 0.94,
                              1.01, 0.98, 1.05, 0.90, 1.03, 0.99};
  std::vector<double> V;
  for (size_t I = 0; I < 20; ++I)
    V.push_back(2.5 * Noise10[I]);
  V[9] = 2.5 * 1.55; // ~3.5 MADs out
  trend::Changepoint CP = trend::detectStep(V);
  EXPECT_FALSE(CP.Found);
}

TEST(DetectStep, SlowDriftIsNotAStep) {
  // Linear 2.5 -> 5.0 over 20 points: large in-segment deviations at
  // every split keep the score below threshold.
  std::vector<double> V;
  for (size_t I = 0; I < 20; ++I)
    V.push_back(2.5 + 2.5 * static_cast<double>(I) / 19.0);
  trend::Changepoint CP = trend::detectStep(V);
  EXPECT_FALSE(CP.Found);
  // ...but the Theil-Sen drift estimate sees it clearly.
  double Slope = trend::theilSenSlope(V);
  EXPECT_NEAR(Slope, 2.5 / 19.0, 1e-9);
}

TEST(DetectStep, SubMinRelShiftIsNotAStep) {
  std::vector<double> V = stepSeries(20, 10, 100.0, 105.0); // 5% < MinRel
  EXPECT_FALSE(trend::detectStep(V).Found);
}

TEST(DetectStep, TooShortSeriesNeverSteps) {
  std::vector<double> V = {1.0, 1.0, 5.0, 5.0, 5.0}; // < 2 * MinSeg
  EXPECT_FALSE(trend::detectStep(V).Found);
}

TEST(DetectStep, MinSegExcludesOutlierSegments) {
  // 17 flat points then 3 high ones: with MinSeg=3 this IS a step (a
  // sustained new level), with MinSeg=4 it is not yet.
  std::vector<double> V = stepSeries(20, 17, 2.5, 5.0);
  EXPECT_TRUE(trend::detectStep(V).Found);
  trend::StepOptions Opts;
  Opts.MinSeg = 4;
  EXPECT_FALSE(trend::detectStep(V, Opts).Found);
}

//===----------------------------------------------------------------------===//
// Series extraction
//===----------------------------------------------------------------------===//

TEST(BuildSeries, ExtractsNormalizedWallCountersWorkAndCalibration) {
  std::vector<hist::HistoryEntry> Entries;
  Entries.push_back(makeEntry(1, 250'000'000));
  Entries.push_back(makeEntry(2, 260'000'000));
  std::vector<trend::Series> All = trend::buildSeries(Entries);
  ASSERT_EQ(All.size(), 4u); // name-sorted
  EXPECT_EQ(All[0].Name, "calib/spin_ns");
  EXPECT_EQ(All[1].Name, "counter/dfa.iterations");
  EXPECT_EQ(All[2].Name, "wall/dfa/solve");
  EXPECT_EQ(All[3].Name, "work/dfa/solve/instrs_in");
  ASSERT_EQ(All[2].Values.size(), 2u);
  EXPECT_NEAR(All[2].Values[0], 2.5, 1e-9);
  EXPECT_NEAR(All[2].Values[1], 2.6, 1e-9);
}

TEST(BuildSeries, EntryWithoutCalibrationContributesNoWallPoint) {
  std::vector<hist::HistoryEntry> Entries;
  Entries.push_back(makeEntry(1, 250'000'000));
  Entries.push_back(makeEntry(2, 260'000'000, /*CalibNs=*/0));
  std::vector<trend::Series> All = trend::buildSeries(Entries);
  for (const trend::Series &S : All)
    if (S.Name == "wall/dfa/solve") {
      ASSERT_EQ(S.Values.size(), 1u);
      ASSERT_EQ(S.Entries.size(), 1u);
      EXPECT_EQ(S.Entries[0], 0u);
    }
}

TEST(BuildSeries, NormalizationCancelsMachineSpeed) {
  // Same workload on a machine twice as slow: raw wall doubles, the
  // calibration spin doubles, the normalized series is flat.
  std::vector<hist::HistoryEntry> Entries;
  for (uint64_t I = 0; I < 10; ++I)
    Entries.push_back(makeEntry(I, 250'000'000));
  for (uint64_t I = 10; I < 20; ++I)
    Entries.push_back(makeEntry(I, 500'000'000, 200'000'000));
  trend::TrendAnalysis A = trend::analyzeHistory(Entries);
  for (const trend::SeriesVerdict &V : A.Verdicts)
    if (V.S.Name == "wall/dfa/solve") {
      EXPECT_FALSE(V.CP.Found);
    }
  // The calibration series itself stepped: a machine event, not a gate.
  EXPECT_TRUE(A.CalibrationStepped);
  EXPECT_TRUE(trend::gateFailures(A).empty());
}

//===----------------------------------------------------------------------===//
// Analysis and gate
//===----------------------------------------------------------------------===//

std::vector<hist::HistoryEntry> stepHistory(double Factor) {
  std::vector<hist::HistoryEntry> Entries;
  for (uint64_t I = 0; I < 20; ++I) {
    double Base = I < 12 ? 250'000'000.0 : 250'000'000.0 * Factor;
    Entries.push_back(makeEntry(I, static_cast<uint64_t>(Base * Noise1[I])));
  }
  return Entries;
}

TEST(AnalyzeHistory, TwoXStepRegressesAndRanksFirst) {
  trend::TrendAnalysis A = trend::analyzeHistory(stepHistory(2.0));
  std::vector<const trend::SeriesVerdict *> Fails = trend::gateFailures(A);
  ASSERT_EQ(Fails.size(), 1u);
  EXPECT_EQ(Fails[0]->S.Name, "wall/dfa/solve");
  EXPECT_EQ(Fails[0]->CP.Index, 12u);
  // Ranking: the regression leads the verdict list.
  ASSERT_FALSE(A.Verdicts.empty());
  EXPECT_EQ(A.Verdicts[0].S.Name, "wall/dfa/solve");
  EXPECT_EQ(A.Verdicts[0].Status, SeriesStatus::Regressed);
}

TEST(AnalyzeHistory, SubFactorStepReportsButDoesNotGate) {
  // A 1.3x step is detected but stays below the 1.5x gate factor.
  trend::TrendAnalysis A = trend::analyzeHistory(stepHistory(1.3));
  EXPECT_TRUE(trend::gateFailures(A).empty());
  bool Seen = false;
  for (const trend::SeriesVerdict &V : A.Verdicts)
    if (V.S.Name == "wall/dfa/solve") {
      Seen = true;
      EXPECT_TRUE(V.CP.Found);
      EXPECT_EQ(V.Status, SeriesStatus::Step);
    }
  EXPECT_TRUE(Seen);
}

TEST(AnalyzeHistory, StepDownIsImproved) {
  std::vector<hist::HistoryEntry> Entries;
  for (uint64_t I = 0; I < 20; ++I) {
    double Base = I < 10 ? 500'000'000.0 : 250'000'000.0;
    Entries.push_back(makeEntry(I, static_cast<uint64_t>(Base * Noise1[I])));
  }
  trend::TrendAnalysis A = trend::analyzeHistory(Entries);
  EXPECT_TRUE(trend::gateFailures(A).empty());
  for (const trend::SeriesVerdict &V : A.Verdicts)
    if (V.S.Name == "wall/dfa/solve") {
      EXPECT_EQ(V.Status, SeriesStatus::Improved);
    }
}

TEST(AnalyzeHistory, CounterStepGates) {
  // Machine-independent counters gate exactly like normalized wall: a
  // 2x jump in solver iterations is an algorithmic regression.
  std::vector<hist::HistoryEntry> Entries;
  for (uint64_t I = 0; I < 20; ++I)
    Entries.push_back(
        makeEntry(I, 250'000'000, 100'000'000, I < 12 ? 420 : 840));
  trend::TrendAnalysis A = trend::analyzeHistory(Entries);
  std::vector<const trend::SeriesVerdict *> Fails = trend::gateFailures(A);
  ASSERT_EQ(Fails.size(), 1u);
  EXPECT_EQ(Fails[0]->S.Name, "counter/dfa.iterations");
}

TEST(AnalyzeHistory, WorkloadShapeStepNeverGates) {
  // The workload itself was redefined (twice the instructions): a Step
  // to understand, not a regression.
  std::vector<hist::HistoryEntry> Entries;
  for (uint64_t I = 0; I < 20; ++I)
    Entries.push_back(makeEntry(I, 250'000'000, 100'000'000, 420,
                                I < 12 ? 1000 : 2000));
  trend::TrendAnalysis A = trend::analyzeHistory(Entries);
  EXPECT_TRUE(trend::gateFailures(A).empty());
  for (const trend::SeriesVerdict &V : A.Verdicts)
    if (V.S.Name == "work/dfa/solve/instrs_in") {
      EXPECT_TRUE(V.CP.Found);
      EXPECT_EQ(V.Status, SeriesStatus::Step);
    }
}

TEST(AnalyzeHistory, SlowDriftIsReportedAsDrifting) {
  std::vector<hist::HistoryEntry> Entries;
  for (uint64_t I = 0; I < 20; ++I)
    Entries.push_back(makeEntry(
        I, static_cast<uint64_t>(250'000'000.0 * (1.0 + I / 19.0))));
  trend::TrendAnalysis A = trend::analyzeHistory(Entries);
  EXPECT_TRUE(trend::gateFailures(A).empty());
  for (const trend::SeriesVerdict &V : A.Verdicts)
    if (V.S.Name == "wall/dfa/solve") {
      EXPECT_FALSE(V.CP.Found);
      EXPECT_EQ(V.Status, SeriesStatus::Drifting);
      EXPECT_GT(V.DriftRel, 0.25);
    }
}

TEST(AnalyzeHistory, GateFactorIsConfigurable) {
  trend::TrendOptions Opts;
  Opts.GateFactor = 2.5;
  trend::TrendAnalysis A = trend::analyzeHistory(stepHistory(2.0), Opts);
  EXPECT_TRUE(trend::gateFailures(A).empty()); // 2.0x < 2.5x
}

//===----------------------------------------------------------------------===//
// Trend dashboard
//===----------------------------------------------------------------------===//

TEST(TrendReport, RendersByteIdentically) {
  hist::HistoryFile H;
  H.Entries = stepHistory(2.0);
  trend::TrendAnalysis A = trend::analyzeHistory(H.Entries);
  report::TrendReportOptions Opts;
  std::string First = report::renderTrendDashboard(H, A, Opts);
  std::string Second = report::renderTrendDashboard(H, A, Opts);
  EXPECT_EQ(First, Second);
  EXPECT_NE(First.find("<svg"), std::string::npos);
  EXPECT_NE(First.find("REGRESSED"), std::string::npos);
  EXPECT_NE(First.find("wall/dfa/solve"), std::string::npos);
  // The analysis must re-render identically too.
  trend::TrendAnalysis B = trend::analyzeHistory(H.Entries);
  EXPECT_EQ(First, report::renderTrendDashboard(H, B, Opts));
}

TEST(TrendReport, EmptyHistoryRenders) {
  hist::HistoryFile H;
  trend::TrendAnalysis A = trend::analyzeHistory(H.Entries);
  std::string Out =
      report::renderTrendDashboard(H, A, report::TrendReportOptions());
  EXPECT_NE(Out.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(Out.find("0 entries"), std::string::npos);
}

TEST(TrendReport, EscapesSeriesNames) {
  hist::HistoryFile H;
  hist::HistoryEntry E = makeEntry(1, 250'000'000);
  E.Counters.emplace_back("evil<script>&", 1);
  H.Entries.push_back(E);
  trend::TrendAnalysis A = trend::analyzeHistory(H.Entries);
  std::string Out =
      report::renderTrendDashboard(H, A, report::TrendReportOptions());
  EXPECT_EQ(Out.find("evil<script>"), std::string::npos);
  EXPECT_NE(Out.find("evil&lt;script&gt;&amp;"), std::string::npos);
}

TEST(TrendReport, SkippedLinesSurfaceInDashboard) {
  hist::HistoryFile H;
  H.Entries = stepHistory(1.0);
  H.SkippedLines = 3;
  H.Warnings.push_back("line 7: ignoring malformed record (synthetic)");
  trend::TrendAnalysis A = trend::analyzeHistory(H.Entries);
  std::string Out =
      report::renderTrendDashboard(H, A, report::TrendReportOptions());
  EXPECT_NE(Out.find("3 line(s) skipped"), std::string::npos);
  EXPECT_NE(Out.find("ignoring malformed record"), std::string::npos);
}

} // namespace
