//===- tests/parser_fuzz_test.cpp - Front-end robustness --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The front-end must never crash: every input, however malformed, either
// parses to a validated graph or produces a located diagnostic.  Two
// layers of coverage: a hand-written corpus of known-nasty inputs, and a
// deterministic mutation fuzzer over valid sources (byte deletions,
// substitutions, truncations — seeded LCG, no wall-clock randomness, so
// a failure reproduces exactly).
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

using namespace am;

namespace {

/// The invariant every input must satisfy: either a valid graph or a
/// located error, never a crash or a half-state.
void expectWellBehaved(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_EQ(R.ok(), R.Error.empty());
  if (!R.ok()) {
    // The structured diagnostic mirrors the string error and carries a
    // 1-based location.
    EXPECT_FALSE(R.Diag.empty()) << "error without diagnostic: " << R.Error;
    EXPECT_EQ(R.Diag.Component, "parse");
    EXPECT_GE(R.Diag.Line, 1u) << R.Error;
    EXPECT_GE(R.Diag.Col, 1u) << R.Error;
  } else {
    EXPECT_TRUE(R.Graph.validate().empty())
        << "parser accepted a structurally invalid graph";
  }
}

const char *ValidStructured = R"(program {
  x := (a + b) * c + d;
  while (i < n) { i := i + 1; out(i); }
  if (x > 0) { y := x + 1; } else { y := 2; }
  choose { z := 1; } or { z := 2; }
  out(x, y, z);
})";

const char *ValidCfg = R"(graph {
b0:
  x := a + b
  goto b1
b1:
  if x > 0 then b2 else b3
b2:
  out(x)
  br b1 b3
b3:
  halt
})";

} // namespace

TEST(ParserFuzz, MalformedCorpusNeverCrashes) {
  const char *Corpus[] = {
      "",
      "   \n\t  ",
      "graph",
      "program",
      "graph {",
      "program {",
      "program { x := ; }",
      "program { x := a + ; }",
      "program { := a; }",
      "program { x := a + b }",       // missing semicolon
      "program { if (x) { } }",       // missing relation
      "program { while x < 1 { } }",  // missing parens
      "program { out(); }",
      "program { out(x }",
      "program { repeat { x := 1; } }", // missing until
      "program { choose { x := 1; } }", // missing or
      "graph { b0: goto b9 }",          // undefined label
      "graph { b0: x := a + b }",       // no halt
      "graph { b0: halt b0: halt }",    // duplicate label
      "graph { b0: halt b1: halt }",    // two end nodes
      "graph { b0: if x then b0 else }",
      "graph { temp }",
      "program { x := 99999999999999999999999999; }", // overflow
      "program { x := 9223372036854775807; }",        // INT64_MAX is fine
      "program { x\xc3\xa9 := 1; }",                  // non-ASCII byte
      "program { x := 1; \x01 }",                     // control byte
      "program { x := a @ b; }",                      // unknown operator
      "program { out(x,, y); }",
      "wibble { x := 1; }",
      "{ x := 1; }",
      "program { } trailing garbage",
      "graph { b0: halt } trailing",
  };
  for (const char *Src : Corpus) {
    SCOPED_TRACE(std::string("input: ") + Src);
    expectWellBehaved(Src);
  }
}

TEST(ParserFuzz, OverflowingLiteralsAreDiagnosed) {
  ParseResult R = parseProgram("program { x := 18446744073709551617; }");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("too large"), std::string::npos) << R.Error;
}

TEST(ParserFuzz, NonAsciiBytesAreDiagnosedAsHex) {
  ParseResult R = parseProgram("program { \xff := 1; }");
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("0xff"), std::string::npos) << R.Error;
}

TEST(ParserFuzz, DeepNestingHitsTheLimitInsteadOfTheStack) {
  // 5000 nested parens would overflow the recursive-descent stack without
  // the depth guard.
  std::string Src = "program { x := ";
  for (int I = 0; I < 5000; ++I)
    Src += '(';
  Src += 'a';
  for (int I = 0; I < 5000; ++I)
    Src += ')';
  Src += "; }";
  ParseResult R = parseProgram(Src);
  ASSERT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("nesting too deep"), std::string::npos) << R.Error;

  // Statement nesting (if inside if inside ...) hits the same guard.
  std::string Stmts = "program { ";
  for (int I = 0; I < 5000; ++I)
    Stmts += "if (a < 1) { ";
  Stmts += "x := 1; ";
  for (int I = 0; I < 5000; ++I)
    Stmts += "} ";
  Stmts += "}";
  ParseResult R2 = parseProgram(Stmts);
  ASSERT_FALSE(R2.ok());
  EXPECT_NE(R2.Error.find("nesting too deep"), std::string::npos) << R2.Error;
}

TEST(ParserFuzz, DiagnosticsCarryPlausibleLocations) {
  ParseResult R = parseProgram("program {\n  x := a + b;\n  y := ;\n}");
  ASSERT_FALSE(R.ok());
  EXPECT_EQ(R.Diag.Line, 3u) << R.Error;
  EXPECT_GE(R.Diag.Col, 1u) << R.Error;
}

namespace {

/// Deterministic LCG so every mutation reproduces from the test source
/// alone (no time-seeded randomness).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ULL + 1442695040888963407ULL;
    return State >> 33;
  }
};

void mutationFuzz(const std::string &Base, uint64_t Seed, int Rounds) {
  Lcg Rng(Seed);
  // Bytes a mutation may substitute in: structure characters, digits,
  // letters, and a couple of raw non-ASCII bytes.
  const char Alphabet[] = "{}();:=<>+-*/ \n\tabx019#\xff\x01";
  for (int Round = 0; Round < Rounds; ++Round) {
    std::string Mutant = Base;
    switch (Rng.next() % 3) {
    case 0: // delete one byte
      Mutant.erase(Rng.next() % Mutant.size(), 1);
      break;
    case 1: // substitute one byte
      Mutant[Rng.next() % Mutant.size()] =
          Alphabet[Rng.next() % (sizeof(Alphabet) - 1)];
      break;
    case 2: // truncate
      Mutant.resize(Rng.next() % Mutant.size());
      break;
    }
    SCOPED_TRACE("seed " + std::to_string(Seed) + " round " +
                 std::to_string(Round) + ":\n" + Mutant);
    expectWellBehaved(Mutant);
  }
}

} // namespace

TEST(ParserFuzz, MutatedStructuredSourcesNeverCrash) {
  mutationFuzz(ValidStructured, 0x5eed0001, 400);
}

TEST(ParserFuzz, MutatedCfgSourcesNeverCrash) {
  mutationFuzz(ValidCfg, 0x5eed0002, 400);
}

TEST(ParserFuzz, ValidSourcesStillParse) {
  for (const char *Src : {ValidStructured, ValidCfg}) {
    ParseResult R = parseProgram(Src);
    EXPECT_TRUE(R.ok()) << R.Error;
    EXPECT_TRUE(R.Diag.empty());
  }
}
