//===- tests/service_test.cpp - Optimization service tests -----*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
//
// The amserve-v1 engine and its failure envelope: protocol round-trips,
// the FNV-keyed LRU result cache, deterministic backoff, byte-identity of
// engine responses against direct runPipeline output (cold, cached, and
// across per-worker context reuse), the timeout path's clean-rollback
// contract under thread contention, and the injected service fault
// matrix.  The daemon loop itself (sockets, drain, admission) is covered
// end-to-end by tools/serve_check.py.
//
//===----------------------------------------------------------------------===//

#include "support/Service.h"

#include "gen/RandomProgram.h"
#include "ir/InstrNumbering.h"
#include "ir/Printer.h"
#include "parser/Parser.h"
#include "support/ThreadPool.h"
#include "transform/Pipeline.h"
#include "verify/FaultInjector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <vector>

using namespace am;
using namespace am::service;

namespace {

std::string genSource(uint64_t Seed, unsigned Stmts = 24) {
  GenOptions Opts;
  Opts.TargetStmts = Stmts;
  return printGraph(generateStructuredProgram(Seed, Opts));
}

/// What one-shot amopt would print: the canonical text of the pipeline's
/// output for the parsed program.
std::string directPipeline(const std::string &Source,
                           const std::string &Passes, bool Guarded = true) {
  ParseResult P = parseProgram(Source);
  EXPECT_TRUE(P.ok()) << P.Error;
  FlowGraph G = std::move(P.Graph);
  ensureInstrIds(G);
  PipelineOptions Opts;
  Opts.Guarded = Guarded;
  PipelineResult R = runPipeline(G, Passes, Opts);
  EXPECT_TRUE(R.ok()) << R.Error;
  return printGraph(R.Graph);
}

std::string canonical(const std::string &Source) {
  ParseResult P = parseProgram(Source);
  EXPECT_TRUE(P.ok()) << P.Error;
  return printGraph(P.Graph);
}

//===----------------------------------------------------------------------===//
// Protocol
//===----------------------------------------------------------------------===//

TEST(ServiceProtocol, RequestRoundTrip) {
  Request R;
  R.Id = 42;
  R.Source = "graph { b1: x := a + b\n out(x) halt }";
  R.Passes = "lcm,cp,lcm";
  R.LimitsSpec = "wall-ms=500";
  R.Guarded = false;

  Request Back;
  std::string Err;
  ASSERT_TRUE(parseRequest(renderRequest(R), Back, &Err)) << Err;
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.Source, R.Source);
  EXPECT_EQ(Back.Passes, R.Passes);
  EXPECT_EQ(Back.LimitsSpec, R.LimitsSpec);
  EXPECT_EQ(Back.Guarded, R.Guarded);
}

TEST(ServiceProtocol, RequestDefaultsAndErrors) {
  Request R;
  std::string Err;
  ASSERT_TRUE(
      parseRequest("{\"id\":1,\"source\":\"graph { b1: halt }\"}", R, &Err));
  EXPECT_EQ(R.Passes, "uniform");
  EXPECT_TRUE(R.Guarded);
  EXPECT_TRUE(R.LimitsSpec.empty());

  EXPECT_FALSE(parseRequest("not json at all", R, &Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseRequest("[1,2,3]", R, &Err));
  EXPECT_FALSE(parseRequest("{\"id\":1}", R, &Err)); // no source
  EXPECT_FALSE(parseRequest("{\"source\":7}", R, &Err));
}

TEST(ServiceProtocol, ResponseRoundTrip) {
  Response R;
  R.Id = 9;
  R.Status = "rolled_back";
  R.Program = "graph {\nb0:\n  halt\n}\n";
  R.Error = "pass 'aht' rolled back";
  R.Hash = "00ff00ff00ff00ff";
  R.Cached = true;
  R.LimitsHit = true;
  R.WallNs = 123456;
  R.Rollbacks = 2;
  R.RetryAfterMs = 75;
  R.BlocksBefore = 3;
  R.BlocksAfter = 4;
  R.InstrsBefore = 10;
  R.InstrsAfter = 8;
  R.Counters.emplace_back("dfa.solves", 17);
  R.RemarkKinds.emplace_back("hoist", 3);

  Response Back;
  std::string Err;
  ASSERT_TRUE(parseResponse(renderResponse(R), Back, &Err)) << Err;
  EXPECT_EQ(Back.Id, R.Id);
  EXPECT_EQ(Back.Status, R.Status);
  EXPECT_EQ(Back.Program, R.Program);
  EXPECT_EQ(Back.Error, R.Error);
  EXPECT_EQ(Back.Hash, R.Hash);
  EXPECT_EQ(Back.Cached, R.Cached);
  EXPECT_EQ(Back.LimitsHit, R.LimitsHit);
  EXPECT_EQ(Back.WallNs, R.WallNs);
  EXPECT_EQ(Back.Rollbacks, R.Rollbacks);
  EXPECT_EQ(Back.RetryAfterMs, R.RetryAfterMs);
  EXPECT_EQ(Back.BlocksBefore, R.BlocksBefore);
  EXPECT_EQ(Back.BlocksAfter, R.BlocksAfter);
  EXPECT_EQ(Back.InstrsBefore, R.InstrsBefore);
  EXPECT_EQ(Back.InstrsAfter, R.InstrsAfter);
  EXPECT_EQ(Back.Counters, R.Counters);
  EXPECT_EQ(Back.RemarkKinds, R.RemarkKinds);
  EXPECT_TRUE(Back.ok());
}

TEST(ServiceProtocol, ResponseSchemaMismatchRejected) {
  Response R;
  std::string Err;
  EXPECT_FALSE(parseResponse("{\"schema\":\"amserve-v0\",\"id\":1,"
                             "\"status\":\"ok\"}",
                             R, &Err));
  EXPECT_NE(Err.find("amserve-v1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Cache identity and backoff
//===----------------------------------------------------------------------===//

TEST(ServiceKey, DependsOnEveryExecutionKnob) {
  Request A;
  A.Source = "ignored — identity is the canonical text";
  const std::string Canon = "graph {\nb0:\n  halt\n}\n";
  uint64_t Base = requestKey(Canon, A);
  EXPECT_EQ(requestKey(Canon, A), Base); // stable

  Request B = A;
  B.Id = 999; // the id is NOT part of the identity
  EXPECT_EQ(requestKey(Canon, B), Base);

  B = A;
  B.Passes = "lcm,cp";
  EXPECT_NE(requestKey(Canon, B), Base);
  B = A;
  B.LimitsSpec = "am-rounds=2";
  EXPECT_NE(requestKey(Canon, B), Base);
  B = A;
  B.Guarded = false;
  EXPECT_NE(requestKey(Canon, B), Base);
  EXPECT_NE(requestKey(Canon + " ", A), Base);
}

TEST(ServiceBackoff, DeterministicJitterWithinExponentialWindow) {
  for (unsigned Attempt = 0; Attempt < 6; ++Attempt) {
    uint64_t Window = std::min<uint64_t>(10ull << Attempt, 200);
    uint64_t D = backoffDelayMs(Attempt, 10, 200, /*Seed=*/7);
    EXPECT_EQ(D, backoffDelayMs(Attempt, 10, 200, 7)) << Attempt;
    EXPECT_GE(D, Window / 2) << Attempt;
    EXPECT_LT(D, Window) << Attempt;
  }
  // Different seeds decorrelate at least somewhere in the schedule.
  bool Differs = false;
  for (unsigned Attempt = 0; Attempt < 6 && !Differs; ++Attempt)
    Differs = backoffDelayMs(Attempt, 10, 200, 1) !=
              backoffDelayMs(Attempt, 10, 200, 2);
  EXPECT_TRUE(Differs);
}

TEST(ServiceCache, LruEvictionAndCounters) {
  ResultCache Cache(2);
  Response R;
  R.Status = "ok";
  R.Program = "one";
  Cache.insert(1, R);
  R.Program = "two";
  Cache.insert(2, R);

  Response Out;
  EXPECT_TRUE(Cache.lookup(1, Out)); // 1 becomes most recently used
  EXPECT_EQ(Out.Program, "one");
  EXPECT_TRUE(Out.Cached);

  R.Program = "three";
  Cache.insert(3, R); // evicts 2, the least recently used
  EXPECT_FALSE(Cache.lookup(2, Out));
  EXPECT_TRUE(Cache.lookup(1, Out));
  EXPECT_TRUE(Cache.lookup(3, Out));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.hits(), 3u);
  EXPECT_EQ(Cache.misses(), 1u);
}

//===----------------------------------------------------------------------===//
// Engine: byte-identity with one-shot runs
//===----------------------------------------------------------------------===//

TEST(ServiceEngine, ResponsesByteIdenticalToDirectPipeline) {
  ServiceLimits L;
  L.DeadlineMs = 0; // no deadline: identity must hold unconditionally
  Engine Eng(L);
  // Several programs through ONE engine on one thread: the per-worker
  // AmContext is reused and reset between requests, and every response
  // must still match a fresh, context-free run.
  for (uint64_t Seed : {1, 2, 3, 4}) {
    for (const char *Passes : {"uniform", "lcm,cp,lcm"}) {
      Request Req;
      Req.Id = Seed;
      Req.Source = genSource(Seed);
      Req.Passes = Passes;
      Response R = Eng.handle(Req);
      ASSERT_EQ(R.Status, "ok") << "seed " << Seed << ": " << R.Error;
      EXPECT_EQ(R.Program, directPipeline(Req.Source, Passes))
          << "seed " << Seed << " passes " << Passes;
      EXPECT_FALSE(R.Cached);
      EXPECT_EQ(R.Hash.size(), 16u);
      EXPECT_GT(R.InstrsBefore, 0u);
    }
  }
}

TEST(ServiceEngine, CacheHitReplaysExactBody) {
  Engine Eng(ServiceLimits{});
  Request Req;
  Req.Id = 1;
  Req.Source = genSource(11);
  Response Cold = Eng.handle(Req);
  ASSERT_EQ(Cold.Status, "ok") << Cold.Error;

  Req.Id = 2; // a different request id must still hit
  Response Warm = Eng.handle(Req);
  EXPECT_TRUE(Warm.Cached);
  EXPECT_EQ(Warm.Id, 2u);
  EXPECT_EQ(Warm.Program, Cold.Program);
  EXPECT_EQ(Warm.Hash, Cold.Hash);
  EXPECT_EQ(Warm.Counters, Cold.Counters);
  EXPECT_EQ(Warm.RemarkKinds, Cold.RemarkKinds);
  EXPECT_EQ(Eng.cache().hits(), 1u);

  // Same source, different knobs: a miss, not a poisoned hit.
  Req.Guarded = false;
  Response Other = Eng.handle(Req);
  EXPECT_FALSE(Other.Cached);
  EXPECT_EQ(Other.Program, Cold.Program); // unguarded output still agrees
}

TEST(ServiceEngine, CacheDisabledNeverHits) {
  ServiceLimits L;
  L.CacheEntries = 0;
  Engine Eng(L);
  Request Req;
  Req.Source = genSource(5);
  EXPECT_EQ(Eng.handle(Req).Status, "ok");
  EXPECT_FALSE(Eng.handle(Req).Cached);
}

TEST(ServiceEngine, BadRequests) {
  Engine Eng(ServiceLimits{});
  Request Req;
  Req.Source = "graph { not a program";
  Response R = Eng.handle(Req);
  EXPECT_EQ(R.Status, "bad_request");
  EXPECT_FALSE(R.Error.empty());
  EXPECT_TRUE(R.Program.empty()); // never parsed: nothing to echo

  Req.Source = "graph { b1: halt }";
  Req.Passes = "bogus-pass";
  EXPECT_EQ(Eng.handle(Req).Status, "bad_request");

  Req.Passes = "uniform";
  Req.LimitsSpec = "frobs=1";
  EXPECT_EQ(Eng.handle(Req).Status, "bad_request");

  Req.LimitsSpec.clear();
  EXPECT_EQ(Eng.handle(Req).Status, "ok"); // the engine is unharmed
}

TEST(ServiceEngine, EnvelopeResponses) {
  ServiceLimits L;
  L.QueueCapacity = 3;
  L.RetryAfterMs = 40;
  L.MaxRequestBytes = 1000;
  Engine Eng(L);
  Response Shed = Eng.overloadedResponse(7);
  EXPECT_EQ(Shed.Id, 7u);
  EXPECT_EQ(Shed.Status, "overloaded");
  EXPECT_EQ(Shed.RetryAfterMs, 40u);
  EXPECT_FALSE(Shed.ok());
  Response Big = Eng.oversizedResponse(8);
  EXPECT_EQ(Big.Status, "oversized");
  EXPECT_NE(Big.Error.find("1000"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Timeout: the clean-rollback contract under contention
//===----------------------------------------------------------------------===//

// A request that blows its wall budget must report `timeout` and return
// the byte-identical canonical *input* — never a half-transformed graph —
// no matter how many workers are hammering the engine.
TEST(ServiceEngine, TimeoutReturnsByteIdenticalInputUnderContention) {
  ServiceLimits L;
  L.DeadlineMs = 0.000001; // immediately exceeded at the first boundary
  Engine Eng(L);
  for (unsigned Threads : {1u, 8u}) {
    threads::ThreadPool Pool(Threads);
    std::vector<std::future<void>> Futures;
    for (uint64_t Seed = 1; Seed <= 16; ++Seed)
      Futures.push_back(Pool.submit([&Eng, Seed] {
        Request Req;
        Req.Id = Seed;
        Req.Source = genSource(Seed, 40);
        Response R = Eng.handle(Req);
        ASSERT_EQ(R.Status, "timeout") << "seed " << Seed;
        EXPECT_EQ(R.Program, canonical(Req.Source)) << "seed " << Seed;
        EXPECT_EQ(R.InstrsAfter, R.InstrsBefore);
        EXPECT_EQ(R.BlocksAfter, R.BlocksBefore);
      }));
    for (auto &F : Futures)
      F.get();
  }
}

TEST(ServiceEngine, WatchdogCancelFlagForcesTimeout) {
  ServiceLimits L;
  L.DeadlineMs = 60000; // the deadline itself is far away
  Engine Eng(L);
  std::atomic<bool> Cancel{true}; // watchdog already fired
  Request Req;
  Req.Source = genSource(3);
  Response R = Eng.handle(Req, &Cancel);
  EXPECT_EQ(R.Status, "timeout");
  EXPECT_EQ(R.Program, canonical(Req.Source));
}

TEST(ServiceEngine, NonDeadlineBudgetReportsLimitsNotTimeout) {
  ServiceLimits L;
  L.DeadlineMs = 0; // no deadline: exhaustion cannot be a timeout
  Engine Eng(L);
  Request Req;
  Req.Source = genSource(6, 60);
  Req.Passes = "split,init,rae";
  Req.LimitsSpec = "growth=1.0001";
  Response R = Eng.handle(Req);
  EXPECT_EQ(R.Status, "limits");
  EXPECT_TRUE(R.LimitsHit);
  EXPECT_EQ(R.Program, canonical(Req.Source));
}

//===----------------------------------------------------------------------===//
// Injected service faults
//===----------------------------------------------------------------------===//

TEST(ServiceEngine, InjectedFaultMatrix) {
  struct Case {
    fault::FaultClass Class;
    const char *Status;
  };
  const Case Matrix[] = {
      {fault::FaultClass::SvcWorkerThrow, "error"},
      {fault::FaultClass::SvcBadAlloc, "resource_exhausted"},
      {fault::FaultClass::SvcSlowRequest, "timeout"},
  };
  for (const Case &C : Matrix) {
    ServiceLimits L;
    L.DeadlineMs = 50; // keeps the slow-request case fast
    L.CacheEntries = 0; // the recovery run must really execute
    Engine Eng(L);
    fault::FaultInjector FI;
    FI.arm(C.Class);
    FI.install();
    Request Req;
    Req.Source = genSource(8);
    Response R = Eng.handle(Req);
    EXPECT_EQ(R.Status, C.Status) << fault::faultClassName(C.Class);
    EXPECT_EQ(R.Program, canonical(Req.Source))
        << "contained failure must echo the input";
    EXPECT_EQ(FI.firedCount(), 1u);
    // The fault fired once; the very next request on the same engine
    // must succeed — the process survives its workers.
    Response Ok = Eng.handle(Req);
    EXPECT_EQ(Ok.Status, "ok") << fault::faultClassName(C.Class);
    EXPECT_EQ(Ok.Program, directPipeline(Req.Source, "uniform"));
    FI.uninstall();
  }
}

//===----------------------------------------------------------------------===//
// Event mapping
//===----------------------------------------------------------------------===//

TEST(ServiceEvent, ResponseEventCarriesEverything) {
  Engine Eng(ServiceLimits{});
  Request Req;
  Req.Id = 77;
  Req.Source = genSource(9);
  Response R = Eng.handle(Req);
  ASSERT_EQ(R.Status, "ok");
  fleet::JobEvent E = responseEvent(R, /*Index=*/3);
  EXPECT_EQ(E.Index, 3u);
  EXPECT_EQ(E.Name, "req:77");
  EXPECT_EQ(E.Preset, "serve");
  EXPECT_EQ(E.Status, "ok");
  EXPECT_EQ(E.Hash, R.Hash);
  EXPECT_EQ(E.WallNs, R.WallNs);
  EXPECT_EQ(E.Counters, R.Counters);
  EXPECT_EQ(E.RemarkKinds, R.RemarkKinds);
  EXPECT_EQ(E.InstrsBefore, R.InstrsBefore);
  EXPECT_EQ(E.InstrsAfter, R.InstrsAfter);
}

} // namespace
