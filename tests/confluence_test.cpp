//===- tests/confluence_test.cpp - Lemma 3.6 confluence tests --*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lemma 3.6: the rewriting relation of admissible hoistings and
/// eliminations is locally confluent, so exhaustive application reaches
/// the same optimum regardless of interleaving.  We run the AM phase
/// under different step orders and assert the results are dynamically
/// indistinguishable (identical outputs *and* identical evaluation and
/// assignment counts on every execution).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "gen/RandomProgram.h"
#include "transform/AssignmentHoisting.h"
#include "transform/Initialization.h"
#include "transform/Normalize.h"
#include "transform/RedundantAssignElim.h"
#include "transform/FinalFlush.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

/// The AM phase with rae first in each round (the production order).
FlowGraph fixpointRaeFirst(FlowGraph G) {
  for (unsigned Round = 0; Round < 1000; ++Round) {
    unsigned E = runRedundantAssignmentElimination(G);
    bool H = runAssignmentHoisting(G);
    if (!E && !H)
      break;
  }
  return G;
}

/// The AM phase with aht first in each round.
FlowGraph fixpointAhtFirst(FlowGraph G) {
  for (unsigned Round = 0; Round < 1000; ++Round) {
    bool H = runAssignmentHoisting(G);
    unsigned E = runRedundantAssignmentElimination(G);
    if (!E && !H)
      break;
  }
  return G;
}

/// Exhaustive hoisting first, then exhaustive elimination, repeated.
FlowGraph fixpointPhased(FlowGraph G) {
  for (unsigned Round = 0; Round < 1000; ++Round) {
    bool Any = false;
    while (runAssignmentHoisting(G))
      Any = true;
    while (runRedundantAssignmentElimination(G) > 0)
      Any = true;
    if (!Any)
      break;
  }
  return G;
}

FlowGraph prepared(const FlowGraph &Input, bool Initialize) {
  FlowGraph G = Input;
  removeSkips(G);
  G.splitCriticalEdges();
  if (Initialize)
    runInitializationPhase(G);
  return G;
}

void expectDynamicallyIdentical(const FlowGraph &A, const FlowGraph &B,
                                const std::string &Context) {
  for (uint64_t Seed = 0; Seed < 6; ++Seed) {
    std::unordered_map<std::string, int64_t> In = {
        {"a", 2}, {"b", 3},  {"c", 1}, {"d", 5}, {"x", 11},
        {"y", 4}, {"z", -2}, {"i", 0}, {"n", 4}, {"v0", 7},
        {"v1", -3}, {"v2", 2}};
    Interpreter::Options Opts;
    Opts.MaxSteps = 5000;
    auto RunA = Interpreter::execute(A, In, Seed, Opts);
    auto RunB = Interpreter::execute(B, In, Seed, Opts);
    ASSERT_EQ(RunA.Output, RunB.Output) << Context << " seed " << Seed;
    ASSERT_EQ(RunA.Stats.ExprEvaluations, RunB.Stats.ExprEvaluations)
        << Context << " seed " << Seed;
    ASSERT_EQ(RunA.Stats.AssignExecutions, RunB.Stats.AssignExecutions)
        << Context << " seed " << Seed;
  }
}

} // namespace

TEST(Confluence, OrderOfStepsIsIrrelevantOnTheFigures) {
  for (FlowGraph (*Fig)() : {figure1a, figure2a, figure4, figure8,
                             figure10a, figure16, figure18b}) {
    for (bool Initialize : {false, true}) {
      FlowGraph Base = prepared(Fig(), Initialize);
      FlowGraph A = fixpointRaeFirst(Base);
      FlowGraph B = fixpointAhtFirst(Base);
      FlowGraph C = fixpointPhased(Base);
      std::string Context =
          std::string("figure, init=") + (Initialize ? "yes" : "no");
      expectDynamicallyIdentical(A, B, Context + " (rae-first vs aht-first)");
      expectDynamicallyIdentical(A, C, Context + " (rae-first vs phased)");
    }
  }
}

class ConfluenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConfluenceSweep, OrderOfStepsIsIrrelevantOnRandomPrograms) {
  GenOptions Opts;
  Opts.TargetStmts = 30;
  FlowGraph Base = prepared(generateStructuredProgram(GetParam(), Opts),
                            /*Initialize=*/true);
  FlowGraph A = fixpointRaeFirst(Base);
  FlowGraph B = fixpointAhtFirst(Base);
  expectDynamicallyIdentical(A, B,
                             "seed " + std::to_string(GetParam()));
  // The flush on top of either fixpoint is also order-insensitive.
  FlowGraph FlushA = A;
  runFinalFlush(FlushA);
  FlowGraph FlushB = B;
  runFinalFlush(FlushB);
  expectDynamicallyIdentical(FlushA, FlushB,
                             "flushed seed " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfluenceSweep,
                         ::testing::Range<uint64_t>(0, 20));
