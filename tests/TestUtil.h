//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#ifndef AM_TESTS_TESTUTIL_H
#define AM_TESTS_TESTUTIL_H

#include "interp/Interpreter.h"
#include "ir/FlowGraph.h"
#include "ir/Printer.h"
#include "parser/Parser.h"

#include <gtest/gtest.h>

namespace am::test {

/// Parses a program (either syntax), failing the test on errors.
inline FlowGraph parse(const std::string &Src) {
  ParseResult R = parseProgram(Src);
  EXPECT_TRUE(R.ok()) << "parse error: " << R.Error << "\nsource:\n" << Src;
  return std::move(R.Graph);
}

/// Counts the occurrences of assignment `LhsName := <term printed as RhsText>`
/// anywhere in \p G; term text uses the printer's spelling, e.g. "a + b".
inline unsigned countAssigns(const FlowGraph &G, const std::string &LhsName,
                             const std::string &RhsText) {
  unsigned N = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (const Instr &I : G.block(B).Instrs)
      if (I.isAssign() && G.Vars.name(I.Lhs) == LhsName &&
          printTerm(I.Rhs, G.Vars) == RhsText)
        ++N;
  return N;
}

/// Counts instructions in block \p B whose printed form equals \p Text.
inline unsigned countInBlock(const FlowGraph &G, BlockId B,
                             const std::string &Text) {
  unsigned N = 0;
  for (const Instr &I : G.block(B).Instrs)
    if (printInstr(I, G.Vars) == Text)
      ++N;
  return N;
}

/// Counts computations (assignment rhs or branch operand) of the printed
/// term \p TermText anywhere in \p G.
inline unsigned countComputations(const FlowGraph &G,
                                  const std::string &TermText) {
  unsigned N = 0;
  for (BlockId B = 0; B < G.numBlocks(); ++B)
    for (const Instr &I : G.block(B).Instrs) {
      if (I.isAssign() && I.Rhs.isNonTrivial() &&
          printTerm(I.Rhs, G.Vars) == TermText)
        ++N;
      if (I.isBranch()) {
        if (I.CondL.isNonTrivial() && printTerm(I.CondL, G.Vars) == TermText)
          ++N;
        if (I.CondR.isNonTrivial() && printTerm(I.CondR, G.Vars) == TermText)
          ++N;
      }
    }
  return N;
}

/// Runs \p G on inputs where every listed variable gets the paired value.
inline ExecResult
run(const FlowGraph &G,
    std::initializer_list<std::pair<const char *, int64_t>> Inputs,
    uint64_t Seed = 0) {
  std::unordered_map<std::string, int64_t> Map;
  for (const auto &[Name, Value] : Inputs)
    Map.emplace(Name, Value);
  return Interpreter::execute(G, Map, Seed);
}

} // namespace am::test

#endif // AM_TESTS_TESTUTIL_H
