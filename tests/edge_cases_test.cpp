//===- tests/edge_cases_test.cpp - Corner-case coverage --------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Corner cases across the whole stack: degenerate programs, traps,
/// multi-way nondeterminism, pipeline options, and baseline edge
/// behaviour.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "transform/BusyCodeMotion.h"
#include "transform/LazyCodeMotion.h"
#include "transform/RestrictedAssignmentMotion.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

//===----------------------------------------------------------------------===//
// Degenerate programs through every pass
//===----------------------------------------------------------------------===//

namespace {

const char *DegenerateSources[] = {
    // Single empty block.
    "graph { b0:\n halt\n }",
    // Only an out.
    "graph { b0:\n out(x)\n halt\n }",
    // Only skips.
    "graph { b0:\n skip\n skip\n halt\n }",
    // Empty structured program.
    "program { }",
    // A single copy.
    "program { x := y; out(x); }",
    // Constants only.
    "program { x := 1; y := 2; out(x, y); }",
};

} // namespace

TEST(EdgeCases, EveryPassHandlesDegeneratePrograms) {
  for (const char *Src : DegenerateSources) {
    FlowGraph G = parse(Src);
    for (int Pass = 0; Pass < 4; ++Pass) {
      FlowGraph T = Pass == 0   ? runUniformEmAm(G)
                    : Pass == 1 ? runLazyCodeMotion(G)
                    : Pass == 2 ? runBusyCodeMotion(G)
                                : runAssignmentMotionOnly(G);
      EXPECT_TRUE(T.validate().empty()) << Src << " pass " << Pass;
      auto Rep = checkEquivalent(G, T, {{"x", 3}, {"y", 4}});
      EXPECT_TRUE(Rep.Equivalent) << Src << " pass " << Pass << ": "
                                  << Rep.Detail;
    }
  }
}

TEST(EdgeCases, SingleBlockStartIsEnd) {
  FlowGraph G = parse("graph { b0:\n x := a + b\n x := a + b\n out(x)\n halt\n }");
  EXPECT_EQ(G.start(), G.end());
  FlowGraph U = runUniformEmAm(G);
  auto Rep = checkEquivalent(G, U, {{"a", 1}, {"b", 2}});
  ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  // The duplicate evaluation disappears.
  EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, 1u);
  EXPECT_EQ(Rep.Lhs.Stats.ExprEvaluations, 2u);
}

//===----------------------------------------------------------------------===//
// Traps
//===----------------------------------------------------------------------===//

TEST(EdgeCases, UniformPreservesTrapsOnStraightLine) {
  FlowGraph G = parse(R"(
graph {
b0:
  q := a / b
  q := a / b
  out(q)
  halt
}
)");
  FlowGraph U = runUniformEmAm(G);
  // Trapping input: both trap.
  auto RepTrap = checkEquivalent(G, U, {{"a", 1}, {"b", 0}});
  EXPECT_TRUE(RepTrap.Equivalent) << RepTrap.Detail;
  EXPECT_EQ(RepTrap.Lhs.St, ExecResult::Status::Trapped);
  EXPECT_EQ(RepTrap.Rhs.St, ExecResult::Status::Trapped);
  // Non-trapping input: identical outputs, one division saved.
  auto Rep = checkEquivalent(G, U, {{"a", 12}, {"b", 3}});
  EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  EXPECT_LT(Rep.Rhs.Stats.ExprEvaluations, Rep.Lhs.Stats.ExprEvaluations);
}

TEST(EdgeCases, RedundantTrappingAssignmentStillTrapsOnce) {
  // rae may remove the second division — the first still traps.
  FlowGraph G = parse(R"(
graph {
b0:
  q := a / b
  c := 1
  q := a / b
  out(q, c)
  halt
}
)");
  FlowGraph Am = runAssignmentMotionOnly(G);
  EXPECT_EQ(countAssigns(Am, "q", "a / b"), 1u);
  EXPECT_EQ(Interpreter::execute(Am, {{"a", 1}, {"b", 0}}).St,
            ExecResult::Status::Trapped);
}

//===----------------------------------------------------------------------===//
// Nondeterminism corner cases
//===----------------------------------------------------------------------===//

TEST(EdgeCases, ThreeWayNondeterministicBranch) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2 b3
b1:
  x := 1
  goto b4
b2:
  x := 2
  goto b4
b3:
  x := 3
  goto b4
b4:
  out(x)
  halt
}
)");
  EXPECT_TRUE(G.validate().empty());
  bool Saw[4] = {false, false, false, false};
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    auto Out = run(G, {}, Seed).Output;
    ASSERT_EQ(Out.size(), 1u);
    ASSERT_GE(Out[0], 1);
    ASSERT_LE(Out[0], 3);
    Saw[Out[0]] = true;
  }
  EXPECT_TRUE(Saw[1] && Saw[2] && Saw[3]);
  // Passes handle >2-way branches.
  FlowGraph U = runUniformEmAm(G);
  EXPECT_TRUE(U.validate().empty());
  for (uint64_t Seed = 0; Seed < 8; ++Seed)
    EXPECT_TRUE(checkEquivalent(G, U, {}, Seed).Equivalent);
}

TEST(EdgeCases, HoistingAcrossThreeWayBranchNeedsAllArms) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2 b3
b1:
  x := a + b
  goto b4
b2:
  x := a + b
  goto b4
b3:
  x := a + b
  goto b4
b4:
  out(x)
  halt
}
)");
  FlowGraph Am = runAssignmentMotionOnly(G);
  EXPECT_EQ(countAssigns(Am, "x", "a + b"), 1u);
  EXPECT_EQ(countInBlock(Am, Am.start(), "x := a + b"), 1u);
}

//===----------------------------------------------------------------------===//
// Pipeline options
//===----------------------------------------------------------------------===//

TEST(EdgeCases, MaxAmIterationsCapsTheFixpoint) {
  UniformOptions OneRound;
  OneRound.MaxAmIterations = 1;
  UniformStats Stats;
  runUniformEmAm(figure4(), OneRound, &Stats);
  EXPECT_EQ(Stats.AmPhase.Iterations, 1u);

  UniformStats Full;
  runUniformEmAm(figure4(), UniformOptions(), &Full);
  EXPECT_GT(Full.AmPhase.Iterations, 1u);
}

TEST(EdgeCases, SimplifyResultFalseKeepsSynthetics) {
  UniformOptions Keep;
  Keep.SimplifyResult = false;
  FlowGraph U = runUniformEmAm(figure10a(), Keep);
  bool HasSynthetic = false;
  for (BlockId B = 0; B < U.numBlocks(); ++B)
    HasSynthetic |= U.block(B).Synthetic;
  EXPECT_TRUE(HasSynthetic);
  EXPECT_TRUE(U.validate().empty());
}

TEST(EdgeCases, StatsPointerIsOptional) {
  // Must not crash without a stats out-parameter.
  FlowGraph U = runUniformEmAm(figure4());
  EXPECT_TRUE(U.validate().empty());
}

//===----------------------------------------------------------------------===//
// Baseline corner cases
//===----------------------------------------------------------------------===//

TEST(EdgeCases, RestrictedAmStillDoesPlainEliminations) {
  // Fully redundant assignments need no hoisting; restricted AM removes
  // them like the unrestricted variant.
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := 1
  x := a + b
  out(x, y)
  halt
}
)");
  FlowGraph R = runRestrictedAssignmentMotion(G);
  EXPECT_EQ(countAssigns(R, "x", "a + b"), 1u);
}

TEST(EdgeCases, RestrictedAmPerformsProfitableHoistings) {
  // Figure 2's motion *is* immediately profitable, so the restricted
  // variant finds it too.
  FlowGraph R = runRestrictedAssignmentMotion(figure2a());
  EXPECT_EQ(countAssigns(R, "x", "a + b"), 1u);
  for (uint64_t Seed = 0; Seed < 4; ++Seed)
    EXPECT_TRUE(
        checkEquivalent(figure2a(), R, {{"a", 1}, {"b", 2}}, Seed).Equivalent);
}

TEST(EdgeCases, LcmReplacesBranchConditionOperands) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  if a + b > 0 then b1 else b2
b1:
  goto b2
b2:
  out(x)
  halt
}
)");
  FlowGraph Em = runLazyCodeMotion(G);
  auto Rep = checkEquivalent(G, Em, {{"a", 2}, {"b", 5}});
  ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  // One evaluation instead of two: the condition reuses the temporary.
  EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, 1u);
  EXPECT_EQ(Rep.Lhs.Stats.ExprEvaluations, 2u);
}

TEST(EdgeCases, SameExpressionOnBothConditionSides) {
  FlowGraph G = parse(R"(
graph {
b0:
  if a + b >= a + b then b1 else b2
b1:
  x := 1
  goto b3
b2:
  x := 2
  goto b3
b3:
  out(x)
  halt
}
)");
  FlowGraph U = runUniformEmAm(G);
  auto Rep = checkEquivalent(G, U, {{"a", 1}, {"b", 2}});
  ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  EXPECT_EQ(Rep.Lhs.Output, (std::vector<int64_t>{1}));
  // The duplicated operand evaluation is shared.
  EXPECT_LT(Rep.Rhs.Stats.ExprEvaluations, Rep.Lhs.Stats.ExprEvaluations);
}

TEST(EdgeCases, SelfReferentialChainsSurviveEveryPass) {
  FlowGraph G = parse(R"(
program {
  i := 0;
  repeat {
    i := i + 1;
    j := j + i;
    j := j + i;
  } until (i >= 5);
  out(i, j);
}
)");
  for (int Pass = 0; Pass < 3; ++Pass) {
    FlowGraph T = Pass == 0   ? runUniformEmAm(G)
                  : Pass == 1 ? runLazyCodeMotion(G)
                              : runAssignmentMotionOnly(G);
    auto Rep = checkEquivalent(G, T, {});
    EXPECT_TRUE(Rep.Equivalent) << "pass " << Pass << ": " << Rep.Detail;
  }
}

TEST(EdgeCases, OutOrderingIsPreservedExactly) {
  FlowGraph G = parse(R"(
program {
  x := a + b;
  out(x);
  y := a + b;
  out(y, x);
  out(x, y, a);
}
)");
  FlowGraph U = runUniformEmAm(G);
  auto Rep = checkEquivalent(G, U, {{"a", 3}, {"b", 4}});
  ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  EXPECT_EQ(Rep.Lhs.Output, (std::vector<int64_t>{7, 7, 7, 7, 7, 3}));
}
