//===- tests/roundtrip_test.cpp - Print/parse & solver properties -*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-cutting property sweeps:
///  * printGraph -> parseCfg -> printGraph is the identity, for random
///    structured programs, irreducible CFGs, and optimizer *outputs*
///    (which contain temporaries);
///  * the dataflow solver's solutions actually satisfy their equation
///    systems (meet consistency at every block, boundary values, and
///    transfer consistency at every instruction).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/Liveness.h"
#include "analysis/PaperAnalyses.h"
#include "gen/RandomProgram.h"
#include "ir/Patterns.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

void expectRoundTrip(const FlowGraph &G, const std::string &Context) {
  std::string Printed = printGraph(G);
  ParseResult R = parseCfg(Printed);
  ASSERT_TRUE(R.ok()) << Context << ": " << R.Error << "\n" << Printed;
  EXPECT_TRUE(structurallyEqual(G, R.Graph)) << Context << "\n" << Printed;
  EXPECT_EQ(printGraph(R.Graph), Printed) << Context;
}

/// Re-derives the meet and transfer relations of a solved problem and
/// checks the stored solution satisfies them.
void expectSolutionConsistent(const FlowGraph &G, const DataflowProblem &P,
                              const DataflowResult &R) {
  bool Forward = P.direction() == Direction::Forward;
  BitVector Boundary;
  P.boundary(Boundary);

  for (BlockId B = 0; B < G.numBlocks(); ++B) {
    // Meet consistency.
    const BitVector &MeetSide = Forward ? R.entry(B) : R.exit(B);
    BlockId BoundaryBlock = Forward ? G.start() : G.end();
    if (B == BoundaryBlock) {
      EXPECT_EQ(MeetSide, Boundary) << "boundary at block " << B;
    } else {
      const auto &Edges = Forward ? G.block(B).Preds : G.block(B).Succs;
      ASSERT_FALSE(Edges.empty());
      BitVector Expect = Forward ? R.exit(Edges[0]) : R.entry(Edges[0]);
      for (size_t Idx = 1; Idx < Edges.size(); ++Idx) {
        const BitVector &V =
            Forward ? R.exit(Edges[Idx]) : R.entry(Edges[Idx]);
        if (P.meet() == Meet::All)
          Expect &= V;
        else
          Expect |= V;
      }
      EXPECT_EQ(MeetSide, Expect) << "meet at block " << B;
    }

    // Transfer consistency, instruction by instruction.
    DataflowResult::InstrFacts F = R.instrFacts(B);
    BitVector Gen(P.numBits()), Kill(P.numBits());
    for (size_t Idx = 0; Idx < G.block(B).Instrs.size(); ++Idx) {
      const Instr &I = G.block(B).Instrs[Idx];
      P.gen(B, Idx, I, Gen);
      P.kill(B, Idx, I, Kill);
      const BitVector &In = Forward ? F.Before[Idx] : F.After[Idx];
      const BitVector &Out = Forward ? F.After[Idx] : F.Before[Idx];
      BitVector Expect = In;
      Expect.andNot(Kill);
      Expect |= Gen;
      EXPECT_EQ(Out, Expect) << "transfer at block " << B << " instr " << Idx;
    }
  }
}

/// Minimal re-declaration of the liveness problem for the consistency
/// check (the production one lives in an anonymous namespace).
class CheckLiveness : public DataflowProblem {
public:
  explicit CheckLiveness(size_t NumVars) : NumVars(NumVars) {}
  Direction direction() const override { return Direction::Backward; }
  Meet meet() const override { return Meet::Any; }
  size_t numBits() const override { return NumVars; }
  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    I.forEachUsedVar([&](VarId V) { Out.set(index(V)); });
  }
  void kill(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    VarId Def = I.definedVar();
    if (isValid(Def))
      Out.set(index(Def));
  }

private:
  size_t NumVars;
};

/// Forward all-path "definitely assigned" problem for the must-analysis
/// consistency check.
class CheckAssigned : public DataflowProblem {
public:
  explicit CheckAssigned(size_t NumVars) : NumVars(NumVars) {}
  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::All; }
  size_t numBits() const override { return NumVars; }
  void gen(BlockId, size_t, const Instr &I, BitVector &Out) const override {
    Out = BitVector(NumVars);
    VarId Def = I.definedVar();
    if (isValid(Def))
      Out.set(index(Def));
  }
  void kill(BlockId, size_t, const Instr &, BitVector &Out) const override {
    Out = BitVector(NumVars);
  }

private:
  size_t NumVars;
};

} // namespace

class RoundTripSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripSweep, StructuredProgramsRoundTrip) {
  expectRoundTrip(generateStructuredProgram(GetParam()), "structured");
}

TEST_P(RoundTripSweep, IrreducibleCfgsRoundTrip) {
  expectRoundTrip(generateIrreducibleCfg(GetParam()), "irreducible");
}

TEST_P(RoundTripSweep, OptimizedProgramsWithTempsRoundTrip) {
  FlowGraph G = generateStructuredProgram(GetParam());
  expectRoundTrip(runUniformEmAm(G), "uniform output");
  expectRoundTrip(runLazyCodeMotion(G), "LCM output");
}

TEST_P(RoundTripSweep, ReparsedOptimizedProgramsBehaveIdentically) {
  FlowGraph U = runUniformEmAm(generateStructuredProgram(GetParam()));
  ParseResult R = parseCfg(printGraph(U));
  ASSERT_TRUE(R.ok()) << R.Error;
  for (uint64_t Run = 0; Run < 2; ++Run) {
    auto RunA = Interpreter::execute(U, {{"v0", 3}, {"v1", -1}}, Run);
    auto RunB = Interpreter::execute(R.Graph, {{"v0", 3}, {"v1", -1}}, Run);
    EXPECT_EQ(RunA.Output, RunB.Output);
    EXPECT_EQ(RunA.Stats.TempAssignExecutions,
              RunB.Stats.TempAssignExecutions)
        << "temp-ness lost in the round trip";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripSweep,
                         ::testing::Range<uint64_t>(0, 20));

class SolverConsistencySweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverConsistencySweep, LivenessSolutionSatisfiesEquations) {
  FlowGraph G = generateIrreducibleCfg(GetParam());
  CheckLiveness P(G.Vars.size());
  expectSolutionConsistent(G, P, solve(G, P));
}

TEST_P(SolverConsistencySweep, MustAnalysisSolutionSatisfiesEquations) {
  FlowGraph G = generateStructuredProgram(GetParam());
  CheckAssigned P(G.Vars.size());
  expectSolutionConsistent(G, P, solve(G, P));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverConsistencySweep,
                         ::testing::Range<uint64_t>(0, 12));

class SolverEquivalenceSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverEquivalenceSweep, WorklistMatchesRoundRobin) {
  for (int Which = 0; Which < 2; ++Which) {
    FlowGraph G = Which ? generateIrreducibleCfg(GetParam())
                        : generateStructuredProgram(GetParam());
    CheckLiveness Live(G.Vars.size());
    CheckAssigned Assigned(G.Vars.size());
    for (const DataflowProblem *P :
         {static_cast<const DataflowProblem *>(&Live),
          static_cast<const DataflowProblem *>(&Assigned)}) {
      DataflowResult A = solve(G, *P, SolverKind::RoundRobin);
      DataflowResult B = solve(G, *P, SolverKind::Worklist);
      for (BlockId Blk = 0; Blk < G.numBlocks(); ++Blk) {
        ASSERT_EQ(A.entry(Blk), B.entry(Blk))
            << "entry mismatch at block " << Blk << " seed " << GetParam();
        ASSERT_EQ(A.exit(Blk), B.exit(Blk))
            << "exit mismatch at block " << Blk << " seed " << GetParam();
      }
      // The worklist solution must also satisfy the equations.
      expectSolutionConsistent(G, *P, B);
    }
  }
}

TEST_P(SolverEquivalenceSweep, WorklistDoesNoMoreWorkOnStructuredCode) {
  GenOptions Opts;
  Opts.TargetStmts = 120;
  FlowGraph G = generateStructuredProgram(GetParam(), Opts);
  CheckAssigned P(G.Vars.size());
  DataflowResult RoundRobin = solve(G, P, SolverKind::RoundRobin);
  DataflowResult Worklist = solve(G, P, SolverKind::Worklist);
  EXPECT_LE(Worklist.BlocksProcessed, RoundRobin.BlocksProcessed)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverEquivalenceSweep,
                         ::testing::Range<uint64_t>(0, 12));
