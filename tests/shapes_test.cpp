//===- tests/shapes_test.cpp - Workload-shape sweeps -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The property suite re-run over very different program *shapes*:
/// branch-free straight-line code, loop-heavy nests, deep conditionals,
/// tiny pattern pools (maximal redundancy) and huge pools (minimal
/// redundancy).  Catches shape-dependent bugs the default generator
/// settings would miss.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/RandomProgram.h"
#include "interp/Equivalence.h"
#include "transform/LazyCodeMotion.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

namespace {

struct Shape {
  const char *Name;
  GenOptions Opts;
};

std::vector<Shape> shapes() {
  std::vector<Shape> Out;

  GenOptions StraightLine;
  StraightLine.LoopProb = 0;
  StraightLine.IfProb = 0;
  StraightLine.ChooseProb = 0;
  StraightLine.TargetStmts = 60;
  Out.push_back({"straight-line", StraightLine});

  GenOptions LoopHeavy;
  LoopHeavy.LoopProb = 0.45;
  LoopHeavy.IfProb = 0.05;
  LoopHeavy.MaxDepth = 4;
  Out.push_back({"loop-heavy", LoopHeavy});

  GenOptions BranchHeavy;
  BranchHeavy.LoopProb = 0.02;
  BranchHeavy.IfProb = 0.5;
  BranchHeavy.MaxDepth = 5;
  Out.push_back({"branch-heavy", BranchHeavy});

  GenOptions TinyPool;
  TinyPool.PatternPoolSize = 2;
  TinyPool.NumVars = 3;
  Out.push_back({"tiny-pool", TinyPool});

  GenOptions HugePool;
  HugePool.PatternPoolSize = 64;
  HugePool.NumVars = 16;
  Out.push_back({"huge-pool", HugePool});

  GenOptions NondetHeavy;
  NondetHeavy.ChooseProb = 0.35;
  NondetHeavy.IfProb = 0.1;
  Out.push_back({"nondet-heavy", NondetHeavy});

  return Out;
}

} // namespace

class ShapeSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ShapeSweep, UniformIsSoundAndNeverWorseAcrossShapes) {
  for (const Shape &S : shapes()) {
    FlowGraph G = generateStructuredProgram(GetParam(), S.Opts);
    ASSERT_TRUE(G.validate().empty()) << S.Name;
    FlowGraph U = runUniformEmAm(G);
    EXPECT_TRUE(U.validate().empty()) << S.Name;
    for (uint64_t Run = 0; Run < 2; ++Run) {
      std::unordered_map<std::string, int64_t> In = {
          {"v0", int64_t(GetParam()) - 2}, {"v1", 3}, {"v2", -1}};
      auto Rep = checkEquivalent(G, U, In, Run);
      ASSERT_TRUE(Rep.Equivalent)
          << S.Name << " seed " << GetParam() << ": " << Rep.Detail;
      EXPECT_LE(Rep.Rhs.Stats.ExprEvaluations, Rep.Lhs.Stats.ExprEvaluations)
          << S.Name << " seed " << GetParam();
    }
  }
}

TEST_P(ShapeSweep, LcmIsSoundAcrossShapes) {
  for (const Shape &S : shapes()) {
    FlowGraph G = generateStructuredProgram(GetParam() + 77, S.Opts);
    FlowGraph Em = runLazyCodeMotion(G);
    std::unordered_map<std::string, int64_t> In = {{"v0", 5}, {"v3", -9}};
    auto Rep = checkEquivalent(G, Em, In, GetParam());
    ASSERT_TRUE(Rep.Equivalent)
        << S.Name << " seed " << GetParam() << ": " << Rep.Detail;
  }
}

TEST_P(ShapeSweep, StraightLineUniformLeavesNoRedundancy) {
  // On branch-free code the uniform result must evaluate each *available*
  // pattern at most once between kills — idempotence plus a second
  // uniform run finding nothing is the cheap proxy.
  GenOptions Opts;
  Opts.LoopProb = 0;
  Opts.IfProb = 0;
  Opts.ChooseProb = 0;
  Opts.TargetStmts = 50;
  FlowGraph U = runUniformEmAm(generateStructuredProgram(GetParam(), Opts));
  FlowGraph Twice = runUniformEmAm(U);
  EXPECT_TRUE(equivalentModuloTemps(U, Twice)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeSweep, ::testing::Range<uint64_t>(0, 10));
