//===- tests/transform_test.cpp - Phase and figure tests -------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the individual phases plus the paper-figure
/// reproductions: each test encodes what the corresponding figure of the
/// paper claims.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "figures/PaperFigures.h"
#include "interp/Equivalence.h"
#include "transform/AssignmentHoisting.h"
#include "transform/AssignmentMotion.h"
#include "transform/CopyPropagation.h"
#include "transform/FinalFlush.h"
#include "transform/Initialization.h"
#include "transform/LazyCodeMotion.h"
#include "transform/Normalize.h"
#include "transform/RedundantAssignElim.h"
#include "transform/RestrictedAssignmentMotion.h"
#include "transform/UniformEmAm.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

//===----------------------------------------------------------------------===//
// Phase units
//===----------------------------------------------------------------------===//

TEST(Normalize, RemovesSkipsAndSelfAssigns) {
  FlowGraph G = parse(R"(
graph {
b0:
  skip
  x := x
  y := 1
  skip
  out(y)
  halt
}
)");
  EXPECT_EQ(removeSkips(G), 3u);
  EXPECT_EQ(G.block(0).Instrs.size(), 2u);
  EXPECT_EQ(removeSkips(G), 0u);
}

TEST(Initialization, DecomposesAssignmentsAndConditions) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := x
  if x + z > 3 then b1 else b2
b1:
  goto b2
b2:
  out(x, y)
  halt
}
)");
  unsigned N = runInitializationPhase(G);
  EXPECT_EQ(N, 2u); // a+b and x+z; the copy y := x stays
  // x := a+b became h := a+b; x := h.
  EXPECT_EQ(countAssigns(G, "h1", "a + b"), 1u);
  EXPECT_EQ(countAssigns(G, "x", "h1"), 1u);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 0u);
  // The branch side was rewritten to the temporary.
  const Instr *Br = G.block(0).branchInstr();
  ASSERT_NE(Br, nullptr);
  EXPECT_FALSE(Br->CondL.isNonTrivial());
  EXPECT_TRUE(G.Vars.isTemp(Br->CondL.A.Var));
  EXPECT_TRUE(G.validate().empty());

  // Idempotent.
  FlowGraph Before = G;
  EXPECT_EQ(runInitializationPhase(G), 0u);
  EXPECT_TRUE(structurallyEqual(Before, G));
}

TEST(Initialization, PreservesSemantics) {
  FlowGraph G = figure4();
  FlowGraph Init = G;
  Init.splitCriticalEdges();
  runInitializationPhase(Init);
  for (int64_t X : {0, 3}) {
    auto Rep = checkEquivalent(G, Init,
                               {{"c", 2}, {"d", 5}, {"x", X}, {"z", 1}});
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(RedundantAssignElim, EliminatesStraightLineDuplicates) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  y := x + 1
  x := a + b
  out(x, y)
  halt
}
)");
  EXPECT_EQ(runRedundantAssignmentElimination(G), 1u);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 1u);
}

TEST(RedundantAssignElim, RespectsKills) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  a := 1
  x := a + b
  x := a + b
  out(x)
  halt
}
)");
  // Only the third occurrence is redundant (the first is killed by a := 1).
  EXPECT_EQ(runRedundantAssignmentElimination(G), 1u);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 2u);
}

TEST(RedundantAssignElim, AllPathsRequired) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  goto b3
b3:
  x := a + b
  out(x)
  halt
}
)");
  // Partially redundant only: rae alone must not touch it.
  EXPECT_EQ(runRedundantAssignmentElimination(G), 0u);
}

TEST(RedundantAssignElim, SelfReferentialPatternsAreNeverRedundant) {
  FlowGraph G = parse(R"(
graph {
b0:
  i := i + 1
  i := i + 1
  out(i)
  halt
}
)");
  EXPECT_EQ(runRedundantAssignmentElimination(G), 0u);
}

TEST(RedundantAssignElim, CopiesCanBeRedundant) {
  FlowGraph G = parse(R"(
graph {
b0:
  y := x
  z := y + 1
  y := x
  out(y, z)
  halt
}
)");
  EXPECT_EQ(runRedundantAssignmentElimination(G), 1u);
}

TEST(AssignmentHoisting, MovesCandidateToBlockEntry) {
  // out(q) is not an assignment, so the candidate x := a+b moves above it.
  FlowGraph G = parse(R"(
graph {
b0:
  out(q)
  x := a + b
  out(x)
  halt
}
)");
  EXPECT_TRUE(runAssignmentHoisting(G));
  EXPECT_EQ(printInstr(G.block(0).Instrs[0], G.Vars), "x := a + b");
  // Re-running reaches a fixpoint.
  EXPECT_FALSE(runAssignmentHoisting(G));
}

TEST(AssignmentHoisting, CoLocatedCandidatesKeepTheirOrder) {
  // Two independent candidates hoisting to the same point are inserted in
  // pattern order; here that reproduces the original program exactly, so
  // the pass reports a fixpoint.
  FlowGraph G = parse(R"(
graph {
b0:
  y := 1
  x := a + b
  out(x, y)
  halt
}
)");
  EXPECT_FALSE(runAssignmentHoisting(G));
}

TEST(AssignmentHoisting, StopsAtBlockers) {
  FlowGraph G = parse(R"(
graph {
b0:
  a := 1
  x := a + b
  out(x, a)
  halt
}
)");
  EXPECT_FALSE(runAssignmentHoisting(G));
  EXPECT_EQ(printInstr(G.block(0).Instrs[1], G.Vars), "x := a + b");
}

TEST(AssignmentHoisting, RequiresAllSuccessorsHoistable) {
  // x := a+b occurs on only one branch: hoisting above the split would not
  // be justified, so nothing may move into b0.
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  goto b3
b3:
  out(x)
  halt
}
)");
  EXPECT_FALSE(runAssignmentHoisting(G));
}

TEST(AssignmentHoisting, HoistsAcrossBothBranches) {
  const char *Src = R"(
graph {
b0:
  br b1 b2
b1:
  x := a + b
  goto b3
b2:
  x := a + b
  goto b3
b3:
  out(x)
  halt
}
)";
  FlowGraph G = parse(Src);
  EXPECT_TRUE(runAssignmentHoisting(G));
  EXPECT_EQ(countInBlock(G, 0, "x := a + b"), 1u);
  EXPECT_EQ(countAssigns(G, "x", "a + b"), 1u);
  for (uint64_t Seed = 0; Seed < 4; ++Seed) {
    auto Rep = checkEquivalent(parse(Src), G, {{"a", 2}, {"b", 3}}, Seed);
    EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

//===----------------------------------------------------------------------===//
// Figures 1-3: motivation
//===----------------------------------------------------------------------===//

TEST(Figures, Fig1ExpressionMotionShape) {
  // EM (LCM) must leave at most one evaluation of a+b per executed path.
  FlowGraph G = figure1a();
  FlowGraph Em = runLazyCodeMotion(G);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto Rep = checkEquivalent(G, Em, {{"a", 1}, {"b", 2}, {"y", 5}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    // Original: 2 evaluations on the z-branch; EM: exactly 1 evaluation of
    // a+b however often the loop runs.
    EXPECT_LE(Rep.Rhs.Stats.ExprEvaluations, Rep.Lhs.Stats.ExprEvaluations);
    EXPECT_GE(Rep.Rhs.Stats.ExprEvaluations, 1u);
  }
}

TEST(Figures, Fig2AssignmentMotionResult) {
  FlowGraph G = figure2a();
  FlowGraph Am = runAssignmentMotionOnly(G);
  // The paper's Figure 2(b) claims: x := a+b is hoisted to node 1 and the
  // loop's re-execution is eliminated.  (Our result may place the loop-side
  // residue on the split loop-entry edges rather than inside the loop node
  // — an equally early placement with identical dynamic behaviour.)
  EXPECT_EQ(countInBlock(Am, Am.start(), "x := a + b"), 1u)
      << printGraph(Am);
  EXPECT_EQ(countAssigns(Am, "x", "a + b"), 1u);
  EXPECT_EQ(countAssigns(Am, "z", "a + b"), 1u);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto Rep = checkEquivalent(G, Am, {{"a", 1}, {"b", 2}, {"y", 5}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    EXPECT_LE(Rep.Rhs.Stats.AssignExecutions, Rep.Lhs.Stats.AssignExecutions);
    // Figure 2(b) executes exactly the same assignments as the drawn
    // solution.
    auto Paper = Interpreter::execute(figure2b(),
                                      {{"a", 1}, {"b", 2}, {"y", 5}}, Seed);
    EXPECT_EQ(Rep.Rhs.Stats.AssignExecutions, Paper.Stats.AssignExecutions);
    EXPECT_EQ(Rep.Rhs.Output, Paper.Output);
  }
}

TEST(Figures, Fig3InitializationMakesAmSubsumeEm) {
  // Init + AM + flush on Figure 1(a) must reach EM-or-better expression
  // counts.
  FlowGraph G = figure1a();
  FlowGraph Uniform = runUniformEmAm(G);
  FlowGraph Em = runLazyCodeMotion(G);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto RepU = checkEquivalent(G, Uniform, {{"a", 1}, {"b", 2}}, Seed);
    auto RepE = checkEquivalent(G, Em, {{"a", 1}, {"b", 2}}, Seed);
    ASSERT_TRUE(RepU.Equivalent) << RepU.Detail;
    ASSERT_TRUE(RepE.Equivalent) << RepE.Detail;
    EXPECT_LE(RepU.Rhs.Stats.ExprEvaluations, RepE.Rhs.Stats.ExprEvaluations);
  }
}

//===----------------------------------------------------------------------===//
// Figures 4/5/12/14/15: the running example
//===----------------------------------------------------------------------===//

TEST(Figures, Fig12InitializationPhase) {
  FlowGraph G = figure4();
  G.splitCriticalEdges();
  unsigned N = runInitializationPhase(G);
  EXPECT_EQ(N, 8u); // 6 assignments + 2 condition operands
  // Figure 12 spot checks.
  EXPECT_EQ(countAssigns(G, "h1", "c + d"), 3u);
  EXPECT_EQ(countAssigns(G, "y", "h1"), 2u);
  EXPECT_EQ(countAssigns(G, "h2", "x + z"), 1u);
  EXPECT_EQ(countAssigns(G, "h3", "y + i"), 1u);
  EXPECT_EQ(countAssigns(G, "h4", "y + z"), 2u);
  EXPECT_EQ(countAssigns(G, "h5", "i + x"), 1u);
}

TEST(Figures, Fig5UniformResultExactly) {
  FlowGraph Result = runUniformEmAm(figure4());
  EXPECT_TRUE(equivalentModuloTemps(Result, figure5()))
      << "got:\n" << printGraph(Result)
      << "want (Figure 5):\n" << printGraph(figure5());
}

TEST(Figures, Fig5SemanticsAndCounts) {
  FlowGraph G = figure4();
  FlowGraph Result = runUniformEmAm(G);
  // Inputs that iterate the loop several times.
  for (auto [X, Z, I] : {std::tuple<int64_t, int64_t, int64_t>{50, 1, 0},
                         {10, 0, 3},
                         {0, 0, 0},
                         {-5, 2, 1}}) {
    auto Rep = checkEquivalent(
        G, Result, {{"c", 1}, {"d", 2}, {"x", X}, {"z", Z}, {"i", I}});
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    EXPECT_LE(Rep.Rhs.Stats.ExprEvaluations, Rep.Lhs.Stats.ExprEvaluations);
  }
}

TEST(Figures, Fig6aSeparateEmFailsOnLoopInvariant) {
  // EM alone cannot remove the computation of y+z from the loop body.
  FlowGraph Em = runLazyCodeMotion(figure4());
  bool LoopStillComputesYZ = false;
  // Find the loop body: the block that targets the branch block backwards.
  for (BlockId B = 0; B < Em.numBlocks(); ++B)
    for (const Instr &I : Em.block(B).Instrs)
      if (I.isAssign() && I.Rhs.isNonTrivial() &&
          printTerm(I.Rhs, Em.Vars) == "y + z" && B != Em.start())
        LoopStillComputesYZ |= B == 2; // figure4's loop body block
  EXPECT_TRUE(LoopStillComputesYZ) << printGraph(Em);
}

TEST(Figures, Fig6bSeparateAmOnlyRemovesTheRedundantAssignment) {
  FlowGraph Am = runAssignmentMotionOnly(figure4());
  // y := c+d disappears from the loop body...
  EXPECT_EQ(countInBlock(Am, 2, "y := c + d"), 0u);
  // ...but x := y+z stays inside the loop (blocked by the condition's use
  // of x and the assignment to y).
  EXPECT_EQ(countInBlock(Am, 2, "x := y + z"), 1u);
  EXPECT_EQ(countAssigns(Am, "y", "c + d"), 1u);
}

//===----------------------------------------------------------------------===//
// Figure 7: loops and irreducibility
//===----------------------------------------------------------------------===//

TEST(Figures, Fig7MotionAcrossIrreducibleLoops) {
  FlowGraph G = figure7();
  FlowGraph Am = runAssignmentMotionOnly(G);

  // Claim 1: the occurrences below the irreducible loop are gone — the
  // irreducible loop blocks (b7, b8 in the source numbering) no longer
  // contain x := y+z, and neither does anything below them.
  unsigned Total = countAssigns(Am, "x", "y + z");
  EXPECT_EQ(Total, 2u) << printGraph(Am);

  // Claim 2: nothing was moved into the first loop (its body kills x via
  // x := 1; the block containing x := 1 must contain nothing else).
  for (BlockId B = 0; B < Am.numBlocks(); ++B)
    for (const Instr &I : Am.block(B).Instrs)
      if (printInstr(I, Am.Vars) == "x := 1") {
        EXPECT_EQ(Am.block(B).Instrs.size(), 1u);
      }

  // Claim 3: semantics preserved on many nondeterministic paths.
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    Interpreter::Options Opts;
    Opts.MaxSteps = 2000;
    auto Rep = checkEquivalent(G, Am, {{"y", 7}, {"z", 4}}, Seed, Opts);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail << " seed " << Seed;
  }
}

TEST(Figures, Fig7ResidualPartialRedundancyIsExpected) {
  // The copy that remains on the first loop's exit edge is partially
  // redundant, and that is optimal: eliminating it would require moving
  // x := y+z into the first loop.  We check it is *not* fully redundant:
  // rae on the result finds nothing.
  FlowGraph Am = runAssignmentMotionOnly(figure7());
  Am.splitCriticalEdges();
  EXPECT_EQ(runRedundantAssignmentElimination(Am), 0u);
}

//===----------------------------------------------------------------------===//
// Figures 8/9: restricted vs unrestricted AM
//===----------------------------------------------------------------------===//

TEST(Figures, Fig8RestrictedAmHasNoEffect) {
  FlowGraph G = figure8();
  FlowGraph Restricted = runRestrictedAssignmentMotion(G);
  EXPECT_TRUE(equivalentModuloTemps(Restricted, simplified(G)))
      << printGraph(Restricted);
}

TEST(Figures, Fig9UnrestrictedAmSucceeds) {
  FlowGraph G = figure8();
  FlowGraph Am = runAssignmentMotionOnly(G);
  EXPECT_TRUE(equivalentModuloTemps(Am, figure9b()))
      << "got:\n" << printGraph(Am)
      << "want (Figure 9b):\n" << printGraph(figure9b());
  for (int64_t Y : {-3, 0, 9}) {
    auto Rep = checkEquivalent(G, Am, {{"x", 1}, {"y", Y}, {"z", 2}});
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

//===----------------------------------------------------------------------===//
// Figure 10: critical edges
//===----------------------------------------------------------------------===//

TEST(Figures, Fig10SplittingEnablesElimination) {
  FlowGraph G = figure10a();
  EXPECT_TRUE(G.hasCriticalEdges());
  FlowGraph Am = runAssignmentMotionOnly(G);
  // x := a+b occurs twice afterwards (node 1 and the synthetic node), and
  // the join's occurrence is gone.
  EXPECT_EQ(countAssigns(Am, "x", "a + b"), 2u);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto Rep = checkEquivalent(G, Am, {{"a", 4}, {"b", 5}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(Figures, Fig10WithoutSplittingNothingHappens) {
  UniformOptions Options;
  Options.SplitCriticalEdges = false;
  Options.RunInitialization = false;
  Options.RunFinalFlush = false;
  FlowGraph G = figure10a();
  FlowGraph NoSplit = runUniformEmAm(G, Options);
  // The pipeline refuses to run on critical edges: result is the input.
  EXPECT_TRUE(equivalentModuloTemps(NoSplit, simplified(G)));
}

//===----------------------------------------------------------------------===//
// Figures 16/17: optimality boundary
//===----------------------------------------------------------------------===//

TEST(Figures, Fig16UniformIsExpressionOptimal) {
  FlowGraph G = figure16();
  FlowGraph U = runUniformEmAm(G);
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    auto Rep = checkEquivalent(G, U, {{"c", 1}, {"d", 2}, {"b", 7}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
    // Optimal: exactly 2 evaluations (c+d once, a+b once) on every path;
    // the original needs 3.
    EXPECT_EQ(Rep.Rhs.Stats.ExprEvaluations, 2u);
    EXPECT_EQ(Rep.Lhs.Stats.ExprEvaluations, 3u);
  }
}

TEST(Figures, Fig17VariantsAreExpressionOptimalButIncomparable) {
  FlowGraph G = figure16();
  FlowGraph A = figure17a();
  FlowGraph B = figure17b();
  // Both variants are semantically equal to Figure 16 and expression
  // optimal...
  bool AWinsSomewhere = false, BWinsSomewhere = false;
  for (uint64_t Seed = 0; Seed < 32; ++Seed) {
    auto RepA = checkEquivalent(G, A, {{"c", 1}, {"d", 2}}, Seed);
    auto RepB = checkEquivalent(G, B, {{"c", 1}, {"d", 2}}, Seed);
    ASSERT_TRUE(RepA.Equivalent) << RepA.Detail;
    ASSERT_TRUE(RepB.Equivalent) << RepB.Detail;
    EXPECT_EQ(RepA.Rhs.Stats.ExprEvaluations, 2u);
    EXPECT_EQ(RepB.Rhs.Stats.ExprEvaluations, 2u);
    // Same seed = same path through both variants.
    uint64_t CountA = RepA.Rhs.Stats.AssignExecutions;
    uint64_t CountB = RepB.Rhs.Stats.AssignExecutions;
    AWinsSomewhere |= CountA < CountB;
    BWinsSomewhere |= CountB < CountA;
  }
  // ...but their assignment counts are incomparable across paths
  // (Figure 17: 4/4 versus 3/5 on the paper's two spine paths).
  EXPECT_TRUE(AWinsSomewhere);
  EXPECT_TRUE(BWinsSomewhere);
}

//===----------------------------------------------------------------------===//
// Figures 18-20: the 3-address problem
//===----------------------------------------------------------------------===//

TEST(Figures, Fig19EmAloneGetsStuck) {
  FlowGraph Em = runLazyCodeMotion(figure18b());
  // Some computation (t+c or its temp image) must remain in the loop.
  bool LoopComputes = false;
  for (const Instr &I : Em.block(1).Instrs)
    LoopComputes |= I.isAssign() && I.Rhs.isNonTrivial();
  EXPECT_TRUE(LoopComputes) << printGraph(Em);
}

TEST(Figures, Fig20bUniformEmptiesTheLoop) {
  FlowGraph G = figure18b();
  FlowGraph U = runUniformEmAm(G);
  // The loop block retains no assignments at all (both t := a+b and
  // x := t+c move to the preheader).
  unsigned LoopAssigns = 0;
  for (const Instr &I : U.block(1).Instrs)
    LoopAssigns += I.isAssign();
  EXPECT_EQ(LoopAssigns, 0u) << printGraph(U);
  for (uint64_t Seed = 0; Seed < 8; ++Seed) {
    auto Rep = checkEquivalent(G, U, {{"a", 1}, {"b", 2}, {"c", 3}}, Seed);
    ASSERT_TRUE(Rep.Equivalent) << Rep.Detail;
  }
}

TEST(Figures, Fig20aEmPlusCpStillPaysInTheLoop) {
  // EM followed by CP (iterated) still executes assignments in the loop
  // every iteration; uniform EM&AM executes none.
  FlowGraph G = figure18b();
  FlowGraph EmCp = runLazyCodeMotion(G);
  for (int Round = 0; Round < 4; ++Round) {
    if (runCopyPropagation(EmCp) == 0)
      break;
    EmCp = runLazyCodeMotion(EmCp);
  }
  FlowGraph U = runUniformEmAm(G);
  uint64_t Seed = 3; // some seed that iterates the loop at least once
  Interpreter::Options Opts;
  Opts.MaxSteps = 4000;
  auto RepCp = checkEquivalent(G, EmCp, {{"a", 1}, {"b", 2}, {"c", 3}}, Seed,
                               Opts);
  auto RepU = checkEquivalent(G, U, {{"a", 1}, {"b", 2}, {"c", 3}}, Seed,
                              Opts);
  ASSERT_TRUE(RepCp.Equivalent) << RepCp.Detail;
  ASSERT_TRUE(RepU.Equivalent) << RepU.Detail;
  EXPECT_LE(RepU.Rhs.Stats.AssignExecutions,
            RepCp.Rhs.Stats.AssignExecutions);
  EXPECT_LE(RepU.Rhs.Stats.ExprEvaluations,
            RepCp.Rhs.Stats.ExprEvaluations);
}

//===----------------------------------------------------------------------===//
// Pipeline-level properties on the figures
//===----------------------------------------------------------------------===//

TEST(Pipeline, UniformIsIdempotentOnFigures) {
  for (FlowGraph (*Fig)() : {figure1a, figure2a, figure4, figure8,
                             figure10a, figure16, figure18b}) {
    FlowGraph Once = runUniformEmAm(Fig());
    FlowGraph Twice = runUniformEmAm(Once);
    EXPECT_TRUE(equivalentModuloTemps(Once, Twice))
        << "not idempotent:\nonce:\n" << printGraph(Once)
        << "twice:\n" << printGraph(Twice);
  }
}

TEST(Pipeline, FlushIsIdempotent) {
  FlowGraph G = figure4();
  G.splitCriticalEdges();
  runInitializationPhase(G);
  runAssignmentMotionPhase(G);
  runFinalFlush(G);
  FlowGraph Before = G;
  EXPECT_FALSE(runFinalFlush(G));
  EXPECT_TRUE(structurallyEqual(Before, G));
}

TEST(Pipeline, StatsAreReported) {
  UniformStats Stats;
  runUniformEmAm(figure4(), UniformOptions(), &Stats);
  EXPECT_EQ(Stats.Decompositions, 8u);
  EXPECT_GE(Stats.AmPhase.Iterations, 3u);
  EXPECT_GE(Stats.AmPhase.Eliminated, 3u);
  EXPECT_TRUE(Stats.FlushChanged);
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

TEST(CopyPropagation, PropagatesThroughChains) {
  FlowGraph G = parse(R"(
graph {
b0:
  t := a
  u := t
  x := u + 1
  out(x)
  halt
}
)");
  EXPECT_GT(runCopyPropagation(G), 0u);
  EXPECT_EQ(countAssigns(G, "x", "a + 1"), 1u);
}

TEST(CopyPropagation, StopsAtRedefinitions) {
  FlowGraph G = parse(R"(
graph {
b0:
  t := a
  a := 5
  x := t + 1
  out(x)
  halt
}
)");
  EXPECT_EQ(runCopyPropagation(G), 0u);
  EXPECT_EQ(countAssigns(G, "x", "t + 1"), 1u);
}

TEST(CopyPropagation, NeedsAllPaths) {
  FlowGraph G = parse(R"(
graph {
b0:
  br b1 b2
b1:
  t := a
  goto b3
b2:
  t := b
  goto b3
b3:
  x := t + 1
  out(x)
  halt
}
)");
  EXPECT_EQ(runCopyPropagation(G), 0u);
}

TEST(CopyPropagation, PreservesSemantics) {
  FlowGraph G = parse(R"(
program {
  t := a;
  i := 0;
  while (i < 3) {
    x := t + i;
    out(x);
    i := i + 1;
  }
  out(t, x);
}
)");
  FlowGraph Cp = G;
  runCopyPropagation(Cp);
  auto Rep = checkEquivalent(G, Cp, {{"a", 11}});
  EXPECT_TRUE(Rep.Equivalent) << Rep.Detail;
}
