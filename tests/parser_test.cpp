//===- tests/parser_test.cpp - Lexer and parser tests ----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "parser/Lexer.h"

#include <gtest/gtest.h>

using namespace am;
using namespace am::test;

TEST(Lexer, TokenizesOperatorsAndIdents) {
  auto Toks = tokenize("x := a + b # comment\n y <= 3");
  ASSERT_GE(Toks.size(), 9u);
  EXPECT_EQ(Toks[0].K, TokKind::Ident);
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].K, TokKind::Assign);
  EXPECT_EQ(Toks[3].K, TokKind::Plus);
  EXPECT_EQ(Toks[5].K, TokKind::Ident);
  EXPECT_EQ(Toks[5].Line, 2u);
  EXPECT_EQ(Toks[6].K, TokKind::Le);
  EXPECT_EQ(Toks[7].K, TokKind::Number);
  EXPECT_EQ(Toks[7].Value, 3);
  EXPECT_EQ(Toks.back().K, TokKind::Eof);
}

TEST(Lexer, EqualsVariantsAndErrors) {
  auto Toks = tokenize("= == != < <= > >= :=");
  EXPECT_EQ(Toks[0].K, TokKind::Assign);
  EXPECT_EQ(Toks[1].K, TokKind::EqEq);
  EXPECT_EQ(Toks[2].K, TokKind::Ne);
  EXPECT_EQ(Toks[3].K, TokKind::Lt);
  EXPECT_EQ(Toks[4].K, TokKind::Le);
  EXPECT_EQ(Toks[5].K, TokKind::Gt);
  EXPECT_EQ(Toks[6].K, TokKind::Ge);
  EXPECT_EQ(Toks[7].K, TokKind::Assign);

  auto Bad = tokenize("x ? y");
  EXPECT_EQ(Bad.back().K, TokKind::Error);
}

TEST(CfgParser, ParsesBranchesAndNondet) {
  FlowGraph G = parse(R"(
graph {
b0:
  x := a + b
  if x > 0 then b1 else b2
b1:
  out(x)
  br b1 b2
b2:
  halt
}
)");
  EXPECT_EQ(G.numBlocks(), 3u);
  EXPECT_EQ(G.start(), 0u);
  EXPECT_EQ(G.end(), 2u);
  ASSERT_EQ(G.block(0).Succs.size(), 2u);
  EXPECT_NE(G.block(0).branchInstr(), nullptr);
  EXPECT_EQ(G.block(1).branchInstr(), nullptr); // nondeterministic br
  EXPECT_EQ(G.block(1).Succs.size(), 2u);
}

TEST(CfgParser, ForwardReferencesAndNegativeConstants) {
  FlowGraph G = parse(R"(
graph {
entry:
  x := -5
  y := x - -3
  goto exit
exit:
  out(x, y)
  halt
}
)");
  const Instr &I0 = G.block(0).Instrs[0];
  EXPECT_EQ(I0.Rhs.A.Const, -5);
  const Instr &I1 = G.block(0).Instrs[1];
  EXPECT_EQ(I1.Rhs.Op, OpCode::Sub);
  EXPECT_EQ(I1.Rhs.B.Const, -3);
}

TEST(CfgParser, TempDeclarationRestoresExprAssociation) {
  FlowGraph G = parse(R"(
graph {
temp h1
b0:
  h1 := a + b
  x := h1
  out(x)
  halt
}
)");
  VarId H = G.Vars.lookup("h1");
  ASSERT_TRUE(isValid(H));
  EXPECT_TRUE(G.Vars.isTemp(H));
  ExprId E = G.Vars.tempFor(H);
  ASSERT_TRUE(isValid(E));
  EXPECT_EQ(printTerm(G.Exprs.term(E), G.Vars), "a + b");
  EXPECT_EQ(G.Exprs.temporaryIfPresent(E), H);
}

TEST(CfgParser, ErrorMessages) {
  EXPECT_NE(parseCfg("graph { b0: goto b1 }").Error.find("never defined"),
            std::string::npos);
  EXPECT_NE(parseCfg("graph { b0: x := 1 }").Error.find("expected"),
            std::string::npos);
  EXPECT_NE(parseCfg(R"(
graph {
b0:
  halt
b1:
  halt
}
)").Error.find("multiple 'halt'"),
            std::string::npos);
  EXPECT_NE(parseCfg(R"(
graph {
b0:
  goto b0
}
)").Error.find("halt"),
            std::string::npos);
  // `out` is a keyword: `out := 1` reads as an out statement missing '('.
  EXPECT_FALSE(parseCfg(R"(
graph {
b0:
  out := 1
  halt
}
)").ok());
  // `goto := 1` hits the keyword-as-variable diagnostic.
  EXPECT_NE(parseCfg(R"(
graph {
b0:
  x := then
  halt
}
)").Error.find("keyword"),
            std::string::npos);
  EXPECT_NE(parseCfg(R"(
graph {
b0:
  br b1
b1:
  halt
}
)").Error.find("at least two targets"),
            std::string::npos);
  // Block defined twice.
  EXPECT_NE(parseCfg(R"(
graph {
b0:
  goto b1
b1:
  halt
b1:
  skip
  goto b0
}
)").Error.find("defined twice"),
            std::string::npos);
}

TEST(CfgParser, RejectsInvalidGraphs) {
  // Unreachable block.
  ParseResult R = parseCfg(R"(
graph {
b0:
  halt
b1:
  goto b0
}
)");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("invalid graph"), std::string::npos);
}

TEST(StructuredParser, LowersSequenceAndIf) {
  FlowGraph G = parse(R"(
program {
  x := a + b;
  if (x > 0) {
    y := 1;
  } else {
    y := 2;
  }
  out(x, y);
}
)");
  EXPECT_TRUE(G.validate().empty());
  // start, then, else, join
  EXPECT_EQ(G.numBlocks(), 4u);
  EXPECT_NE(G.block(G.start()).branchInstr(), nullptr);
  ExecResult Pos = run(G, {{"a", 1}, {"b", 1}});
  EXPECT_EQ(Pos.Output, (std::vector<int64_t>{2, 1}));
  ExecResult Neg = run(G, {{"a", -1}, {"b", 0}});
  EXPECT_EQ(Neg.Output, (std::vector<int64_t>{-1, 2}));
}

TEST(StructuredParser, IfWithoutElse) {
  FlowGraph G = parse(R"(
program {
  if (a > 0) {
    x := 1;
  }
  out(x);
}
)");
  EXPECT_TRUE(G.validate().empty());
  EXPECT_EQ(run(G, {{"a", 5}}).Output, (std::vector<int64_t>{1}));
  EXPECT_EQ(run(G, {{"a", -5}}).Output, (std::vector<int64_t>{0}));
}

TEST(StructuredParser, WhileLoopLowering) {
  FlowGraph G = parse(R"(
program {
  i := 0;
  s := 0;
  while (i < n) {
    s := s + i;
    i := i + 1;
  }
  out(s, i);
}
)");
  EXPECT_TRUE(G.validate().empty());
  ExecResult R = run(G, {{"n", 5}});
  EXPECT_EQ(R.Output, (std::vector<int64_t>{10, 5}));
  EXPECT_EQ(run(G, {{"n", 0}}).Output, (std::vector<int64_t>{0, 0}));
}

TEST(StructuredParser, RepeatUntilRunsBodyAtLeastOnce) {
  FlowGraph G = parse(R"(
program {
  i := 0;
  repeat {
    i := i + 1;
  } until (i >= n);
  out(i);
}
)");
  EXPECT_TRUE(G.validate().empty());
  // Body executes once even when the condition is initially true.
  EXPECT_EQ(run(G, {{"n", 0}}).Output, (std::vector<int64_t>{1}));
  EXPECT_EQ(run(G, {{"n", 5}}).Output, (std::vector<int64_t>{5}));
}

TEST(StructuredParser, RepeatErrors) {
  EXPECT_FALSE(parseStructured(
                   "program { repeat { x := 1; } }").ok());
  EXPECT_FALSE(parseStructured(
                   "program { repeat { x := 1; } until (x > 0) }").ok());
}

TEST(StructuredParser, ChooseProducesNondeterministicBranch) {
  FlowGraph G = parse(R"(
program {
  choose {
    x := 1;
  } or {
    x := 2;
  }
  out(x);
}
)");
  EXPECT_TRUE(G.validate().empty());
  // Both alternatives are reachable across seeds.
  bool SawOne = false, SawTwo = false;
  for (uint64_t Seed = 0; Seed < 16; ++Seed) {
    auto Out = run(G, {}, Seed).Output;
    ASSERT_EQ(Out.size(), 1u);
    SawOne |= Out[0] == 1;
    SawTwo |= Out[0] == 2;
  }
  EXPECT_TRUE(SawOne);
  EXPECT_TRUE(SawTwo);
}

TEST(StructuredParser, NestedControlFlow) {
  FlowGraph G = parse(R"(
program {
  t := 0;
  i := 0;
  while (i < 3) {
    if (i == 1) {
      t := t + 10;
    } else {
      t := t + 1;
    }
    i := i + 1;
  }
  out(t);
}
)");
  EXPECT_EQ(run(G, {}).Output, (std::vector<int64_t>{12}));
}

TEST(StructuredParser, Errors) {
  EXPECT_FALSE(parseStructured("program { x := ; }").ok());
  EXPECT_FALSE(parseStructured("program { if x > 0 { } }").ok());
  EXPECT_FALSE(parseStructured("program { choose { x := 1; } }").ok());
  EXPECT_FALSE(parseStructured("program { x := 1 }").ok()); // missing ';'
  EXPECT_FALSE(parseStructured("program { while (1 < 2) { x := 1; }").ok());
}

TEST(ParseProgram, DispatchesOnKeyword) {
  EXPECT_TRUE(parseProgram("program { out(); }").ok());
  EXPECT_TRUE(parseProgram("graph { b0:\n halt\n }").ok());
}
