//===- tests/gen_test.cpp - Workload generator tests -----------*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "gen/RandomProgram.h"

#include <gtest/gtest.h>

#include <map>

using namespace am;
using namespace am::test;

TEST(Generator, StructuredProgramsAreValid) {
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    EXPECT_TRUE(G.validate().empty()) << "seed " << Seed;
  }
}

TEST(Generator, StructuredProgramsAreDeterministic) {
  FlowGraph A = generateStructuredProgram(123);
  FlowGraph B = generateStructuredProgram(123);
  EXPECT_TRUE(structurallyEqual(A, B));
  FlowGraph C = generateStructuredProgram(124);
  EXPECT_FALSE(structurallyEqual(A, C));
}

TEST(Generator, StructuredProgramsTerminate) {
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed);
    for (uint64_t Run = 0; Run < 3; ++Run) {
      ExecResult R = run(G, {{"v0", int64_t(Run)}, {"v1", 7}}, Run);
      EXPECT_TRUE(R.finished())
          << "seed " << Seed << " run " << Run << " status "
          << static_cast<int>(R.St);
      EXPECT_FALSE(R.Output.empty()); // trailing out(<pool>)
    }
  }
}

TEST(Generator, SizeKnobScalesBlocks) {
  GenOptions Small;
  Small.TargetStmts = 10;
  GenOptions Large;
  Large.TargetStmts = 400;
  size_t SmallInstrs = 0, LargeInstrs = 0;
  for (uint64_t Seed = 0; Seed < 5; ++Seed) {
    SmallInstrs += generateStructuredProgram(Seed, Small).numInstrs();
    LargeInstrs += generateStructuredProgram(Seed, Large).numInstrs();
  }
  EXPECT_GT(LargeInstrs, SmallInstrs * 4);
}

TEST(Generator, IrreducibleCfgsAreValid) {
  unsigned SawIrreducibleOrJoin = 0;
  for (uint64_t Seed = 0; Seed < 50; ++Seed) {
    FlowGraph G = generateIrreducibleCfg(Seed);
    EXPECT_TRUE(G.validate().empty()) << "seed " << Seed;
    for (BlockId B = 0; B < G.numBlocks(); ++B)
      if (G.block(B).Preds.size() > 1) {
        ++SawIrreducibleOrJoin;
        break;
      }
  }
  EXPECT_GT(SawIrreducibleOrJoin, 25u);
}

TEST(Generator, IrreducibleCfgsRespectStartEndInvariants) {
  for (uint64_t Seed = 0; Seed < 20; ++Seed) {
    FlowGraph G = generateIrreducibleCfg(Seed);
    EXPECT_TRUE(G.block(G.start()).Preds.empty());
    EXPECT_TRUE(G.block(G.end()).Succs.empty());
  }
}

TEST(Generator, PatternPoolCreatesRepeatedPatterns) {
  // Redundancy-rich workloads are the point of the generator: at least
  // some pattern should occur more than once in a typical program.
  GenOptions Opts;
  Opts.TargetStmts = 80;
  unsigned ProgramsWithRepeats = 0;
  for (uint64_t Seed = 0; Seed < 10; ++Seed) {
    FlowGraph G = generateStructuredProgram(Seed, Opts);
    std::map<std::string, unsigned> Counts;
    for (BlockId B = 0; B < G.numBlocks(); ++B)
      for (const Instr &I : G.block(B).Instrs)
        if (I.isAssign())
          ++Counts[printInstr(I, G.Vars)];
    for (const auto &[Text, N] : Counts)
      if (N > 1) {
        ++ProgramsWithRepeats;
        break;
      }
  }
  EXPECT_GE(ProgramsWithRepeats, 8u);
}
