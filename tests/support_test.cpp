//===- tests/support_test.cpp - BitVector/interner/Rng tests ---*- C++ -*-===//
//
// Part of the assignment-motion reproduction library.
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"
#include "support/Json.h"
#include "support/Rng.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <set>

using namespace am;

//===----------------------------------------------------------------------===//
// JSON string escaping: control characters and UTF-8 hygiene
//===----------------------------------------------------------------------===//

TEST(JsonEscaping, ControlCharactersBecomeEscapes) {
  EXPECT_EQ(json::quoted("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json::quoted("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json::quoted(std::string("nul\0!", 5)), "\"nul\\u0000!\"");
  EXPECT_EQ(json::quoted("\x1f"), "\"\\u001f\"");
  EXPECT_EQ(json::quoted("quote\"back\\slash"), "\"quote\\\"back\\\\slash\"");
}

TEST(JsonEscaping, ValidUtf8PassesThroughVerbatim) {
  // 2-byte (é), 3-byte (€), 4-byte (𝄞) sequences survive unchanged.
  for (const char *S : {"caf\xC3\xA9", "\xE2\x82\xAC 42", "\xF0\x9D\x84\x9E"}) {
    std::string Q = json::quoted(S);
    EXPECT_EQ(Q, std::string("\"") + S + "\"");
    EXPECT_TRUE(json::validate(Q));
  }
}

TEST(JsonEscaping, InvalidUtf8ReplacedWithReplacementChar) {
  const std::string Fffd = "\xEF\xBF\xBD";
  // Stray continuation byte.
  EXPECT_EQ(json::quoted("a\x80z"), "\"a" + Fffd + "z\"");
  // Truncated 3-byte lead at end of string.
  EXPECT_EQ(json::quoted("x\xE2\x82"), "\"x" + Fffd + Fffd + "\"");
  // Overlong encoding of '/' (0xC0 0xAF).
  EXPECT_EQ(json::quoted("\xC0\xAF"), "\"" + Fffd + Fffd + "\"");
  // UTF-16 surrogate half U+D800 (0xED 0xA0 0x80).
  EXPECT_EQ(json::quoted("\xED\xA0\x80"), "\"" + Fffd + Fffd + Fffd + "\"");
  // Beyond U+10FFFF (0xF4 0x90 0x80 0x80) and an invalid 0xFF lead.
  EXPECT_EQ(json::quoted("\xF4\x90\x80\x80"),
            "\"" + Fffd + Fffd + Fffd + Fffd + "\"");
  EXPECT_EQ(json::quoted("\xFF"), "\"" + Fffd + "\"");
  // The result is always parseable JSON.
  EXPECT_TRUE(json::validate(json::quoted("mix\x80\xC3\xA9\xFFok")));
}

TEST(BitVector, EmptyDefaults) {
  BitVector V;
  EXPECT_EQ(V.size(), 0u);
  EXPECT_TRUE(V.none());
  EXPECT_FALSE(V.any());
  EXPECT_TRUE(V.all());
  EXPECT_EQ(V.count(), 0u);
  EXPECT_EQ(V.findFirst(), 0u);
}

TEST(BitVector, SetResetTest) {
  BitVector V(130);
  EXPECT_TRUE(V.none());
  V.set(0);
  V.set(64);
  V.set(129);
  EXPECT_TRUE(V.test(0));
  EXPECT_TRUE(V.test(64));
  EXPECT_TRUE(V.test(129));
  EXPECT_FALSE(V.test(1));
  EXPECT_EQ(V.count(), 3u);
  V.reset(64);
  EXPECT_FALSE(V.test(64));
  EXPECT_EQ(V.count(), 2u);
  V.set(5, true);
  V.set(5, false);
  EXPECT_FALSE(V.test(5));
}

TEST(BitVector, AllTrueConstruction) {
  BitVector V(100, true);
  EXPECT_TRUE(V.all());
  EXPECT_EQ(V.count(), 100u);
  V.reset(99);
  EXPECT_FALSE(V.all());
  EXPECT_EQ(V.count(), 99u);
}

TEST(BitVector, SetAllResetAll) {
  BitVector V(70);
  V.setAll();
  EXPECT_TRUE(V.all());
  EXPECT_EQ(V.count(), 70u);
  V.resetAll();
  EXPECT_TRUE(V.none());
}

TEST(BitVector, BooleanOps) {
  BitVector A(10), B(10);
  A.set(1);
  A.set(3);
  B.set(3);
  B.set(5);
  BitVector And = A & B;
  EXPECT_EQ(And.setBits(), (std::vector<size_t>{3}));
  BitVector Or = A | B;
  EXPECT_EQ(Or.setBits(), (std::vector<size_t>{1, 3, 5}));
  BitVector Diff = A;
  Diff.andNot(B);
  EXPECT_EQ(Diff.setBits(), (std::vector<size_t>{1}));
  BitVector Xor = A;
  Xor ^= B;
  EXPECT_EQ(Xor.setBits(), (std::vector<size_t>{1, 5}));
}

TEST(BitVector, ComplementKeepsTailClear) {
  BitVector V(67);
  V.set(0);
  BitVector NotV = ~V;
  EXPECT_EQ(NotV.count(), 66u);
  EXPECT_FALSE(NotV.test(0));
  EXPECT_TRUE(NotV.test(66));
  // Complementing twice is identity; tail bits beyond size stay clear so
  // equality and all() remain meaningful.
  EXPECT_EQ(~NotV, V);
  NotV.setAll();
  EXPECT_TRUE(NotV.all());
  EXPECT_EQ(NotV.count(), 67u);
}

TEST(BitVector, SubsetAndIntersects) {
  BitVector A(40), B(40);
  A.set(7);
  B.set(7);
  B.set(20);
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(A.intersects(B));
  A.reset(7);
  EXPECT_FALSE(A.intersects(B));
  EXPECT_TRUE(A.isSubsetOf(B));
}

TEST(BitVector, FindNextAcrossWords) {
  BitVector V(200);
  V.set(3);
  V.set(63);
  V.set(64);
  V.set(199);
  EXPECT_EQ(V.findFirst(), 3u);
  EXPECT_EQ(V.findNext(4), 63u);
  EXPECT_EQ(V.findNext(64), 64u);
  EXPECT_EQ(V.findNext(65), 199u);
  EXPECT_EQ(V.findNext(200), 200u);
  EXPECT_EQ(V.setBits(), (std::vector<size_t>{3, 63, 64, 199}));
}

TEST(BitVector, ResizeGrowWithValue) {
  BitVector V(10);
  V.set(9);
  V.resize(70, true);
  EXPECT_TRUE(V.test(9));
  EXPECT_FALSE(V.test(0));
  for (size_t I = 10; I < 70; ++I)
    EXPECT_TRUE(V.test(I)) << I;
  V.resize(5);
  EXPECT_EQ(V.size(), 5u);
  EXPECT_TRUE(V.none());
}

TEST(BitVector, EqualityRequiresSameSize) {
  BitVector A(10), B(11);
  EXPECT_NE(A, B);
  BitVector C(10);
  EXPECT_EQ(A, C);
  C.set(2);
  EXPECT_NE(A, C);
}

TEST(BitVector, ToStringRendersBitZeroFirst) {
  BitVector V(4);
  V.set(1);
  EXPECT_EQ(V.toString(), "0100");
}

/// Property sweep: random ops against a std::set<size_t> model.
class BitVectorModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitVectorModelTest, MatchesSetModel) {
  Rng R(GetParam());
  size_t Size = 1 + R.index(300);
  BitVector V(Size);
  std::set<size_t> Model;
  for (int Step = 0; Step < 400; ++Step) {
    size_t Idx = R.index(Size);
    switch (R.index(3)) {
    case 0:
      V.set(Idx);
      Model.insert(Idx);
      break;
    case 1:
      V.reset(Idx);
      Model.erase(Idx);
      break;
    case 2:
      ASSERT_EQ(V.test(Idx), Model.count(Idx) != 0);
      break;
    }
  }
  ASSERT_EQ(V.count(), Model.size());
  ASSERT_EQ(V.setBits(), std::vector<size_t>(Model.begin(), Model.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitVectorModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(StringInterner, InternIsIdempotent) {
  StringInterner SI;
  uint32_t A = SI.intern("foo");
  uint32_t B = SI.intern("bar");
  EXPECT_NE(A, B);
  EXPECT_EQ(SI.intern("foo"), A);
  EXPECT_EQ(SI.str(A), "foo");
  EXPECT_EQ(SI.lookup("bar"), B);
  EXPECT_EQ(SI.lookup("baz"), UINT32_MAX);
  EXPECT_EQ(SI.size(), 2u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, RangeStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-3, 5);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 5);
  }
  for (int I = 0; I < 100; ++I)
    EXPECT_LT(R.index(4), 4u);
}

//===----------------------------------------------------------------------===//
// BitVector hardening: word-boundary sizes and mismatched-size behaviour.
//===----------------------------------------------------------------------===//

TEST(BitVectorEdge, WordBoundarySizes) {
  for (size_t N : {size_t(63), size_t(64), size_t(65), size_t(127),
                   size_t(128), size_t(129)}) {
    BitVector V(N, true);
    EXPECT_EQ(V.count(), N) << N;
    EXPECT_TRUE(V.all()) << N;
    V.flipAll();
    EXPECT_TRUE(V.none()) << N;
    V.set(N - 1);
    EXPECT_EQ(V.findFirst(), N - 1) << N;
    EXPECT_EQ(V.findNext(N - 1), N - 1) << N;
    EXPECT_EQ(V.findNext(N), N) << N;
  }
}

TEST(BitVectorEdge, ResizeAcrossWordBoundaries) {
  BitVector V(10, true);
  V.resize(64, true);
  EXPECT_EQ(V.count(), 64u);
  V.resize(65, true);
  EXPECT_EQ(V.count(), 65u);
  EXPECT_TRUE(V.test(64));
  // Shrinking must clear the abandoned tail so a later grow-with-false
  // does not resurrect stale bits.
  V.resize(3);
  V.resize(130, false);
  EXPECT_EQ(V.count(), 3u);
  EXPECT_FALSE(V.test(64));
  EXPECT_FALSE(V.test(129));
}

TEST(BitVectorEdge, ForEachSetBitVisitsTrailingWordBits) {
  BitVector V(131);
  const size_t Expected[] = {0, 63, 64, 127, 128, 130};
  for (size_t I : Expected)
    V.set(I);
  std::vector<size_t> Seen;
  V.forEachSetBit([&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, std::vector<size_t>(std::begin(Expected),
                                      std::end(Expected)));
  EXPECT_EQ(V.setBits(), Seen);
}

TEST(BitVectorWords, PopcountMatchesCountAtWordBoundaries) {
  for (size_t N : {size_t(63), size_t(64), size_t(65), size_t(127),
                   size_t(128), size_t(129)}) {
    BitVector V(N);
    V.set(0);
    V.set(N / 2);
    V.set(N - 1);
    EXPECT_EQ(V.popcount(), V.count()) << N;
    EXPECT_EQ(V.popcount(), 3u) << N;
    V.setAll();
    EXPECT_EQ(V.popcount(), N) << N;
  }
}

TEST(BitVectorWords, WordAndSetWordRoundTrip) {
  for (size_t N : {size_t(63), size_t(64), size_t(65), size_t(129)}) {
    BitVector V(N);
    EXPECT_EQ(V.numWords(), (N + 63) / 64) << N;
    for (size_t W = 0; W < V.numWords(); ++W)
      V.setWord(W, ~uint64_t(0));
    // setWord masks write beyond the width, preserving the tail-clear
    // invariant count() and operator== rely on.
    EXPECT_EQ(V.count(), N) << N;
    EXPECT_TRUE(V.all()) << N;
    for (size_t W = 0; W < V.numWords(); ++W)
      EXPECT_EQ(V.word(W), V.wordMask(W)) << N << " word " << W;
  }
}

TEST(BitVectorWords, WordMaskCoversExactlyTheWidth) {
  BitVector V(65);
  EXPECT_EQ(V.wordMask(0), ~uint64_t(0));
  EXPECT_EQ(V.wordMask(1), uint64_t(1));
  BitVector W(128);
  EXPECT_EQ(W.wordMask(1), ~uint64_t(0));
}

TEST(BitVectorWords, ForEachWordVisitsEveryWordInOrder) {
  BitVector V(130);
  V.set(0);
  V.set(64);
  V.set(129);
  std::vector<size_t> Idx;
  std::vector<uint64_t> Words;
  V.forEachWord([&](size_t I, uint64_t W) {
    Idx.push_back(I);
    Words.push_back(W);
  });
  ASSERT_EQ(Words.size(), 3u);
  EXPECT_EQ(Idx, (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(Words[0], uint64_t(1));
  EXPECT_EQ(Words[1], uint64_t(1));
  EXPECT_EQ(Words[2], uint64_t(1) << 1);
}

TEST(BitVectorWords, AndNotAssignMatchesPerBitAndNot) {
  for (size_t N : {size_t(63), size_t(64), size_t(65), size_t(129)}) {
    BitVector A(N), B(N);
    for (size_t I = 0; I < N; I += 3)
      A.set(I);
    for (size_t I = 0; I < N; I += 2)
      B.set(I);
    BitVector Expected(N);
    for (size_t I = 0; I < N; ++I)
      if (A.test(I) && !B.test(I))
        Expected.set(I);
    A.andNotAssign(B);
    EXPECT_EQ(A, Expected) << N;
  }
}

TEST(BitVectorEdge, MismatchedSizesAssertInDebugAndClampInRelease) {
  // The binary ops assert matching sizes; release builds clamp to the
  // common word prefix instead of reading out of bounds.  The death-test
  // macro checks the assert fires in debug builds and that the statement
  // is well-behaved (no crash) under NDEBUG.
  BitVector Big(130, true), Small(40, true);
  EXPECT_DEBUG_DEATH(
      {
        BitVector B = Big;
        B &= Small;
        // Clamp semantics: bits beyond the shorter operand read as zero.
        EXPECT_EQ(B.count(), 40u);
      },
      "size mismatch");
  EXPECT_DEBUG_DEATH(
      {
        BitVector B = Big;
        B.andNot(Small);
        EXPECT_EQ(B.count(), 130u - 40u);
      },
      "size mismatch");
  EXPECT_DEBUG_DEATH(
      {
        BitVector S = Small;
        EXPECT_FALSE(Big.isSubsetOf(S));
        EXPECT_TRUE(S.isSubsetOf(Big));
      },
      "size mismatch");
}
